// Batch single-source shortest paths on the parallel heap.
//
// Shortest paths and branch-and-bound are the non-simulation applications
// the parallel-heap papers motivate. This example runs Dijkstra with a
// *batch* frontier: per cycle the r tentatively-closest queue entries come
// out together, and an entry is settled if its distance is within the
// graph's minimum edge weight of the batch minimum — the same conservative
// lookahead window as the DES simulators (any future relaxation must exceed
// batch_min + w_min). Unsettled entries are deferred back into the queue;
// stale entries (already beaten) are dropped. The result is exact and is
// validated against a textbook serial Dijkstra.
//
// Build & run:  ./build/examples/parallel_sssp [grid_side]
#include <cstdio>
#include <cstdlib>
#include <cstdint>
#include <limits>
#include <vector>

#include "baselines/binary_heap.hpp"
#include "core/parallel_heap.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

constexpr std::uint32_t kMinW = 1, kMaxW = 10;

struct Graph {
  std::size_t n;
  // CSR-ish: 4-neighborhood grid with random weights.
  std::vector<std::uint32_t> head, dst, w;
};

Graph make_grid(std::size_t side, std::uint64_t seed) {
  ph::Xoshiro256 rng(seed);
  Graph g;
  g.n = side * side;
  g.head.assign(g.n + 1, 0);
  auto id = [side](std::size_t r, std::size_t c) { return r * side + c; };
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> adj(g.n);
  for (std::size_t r = 0; r < side; ++r) {
    for (std::size_t c = 0; c < side; ++c) {
      const auto u = id(r, c);
      const auto wt = [&] {
        return static_cast<std::uint32_t>(kMinW + rng.next_below(kMaxW - kMinW + 1));
      };
      if (c + 1 < side) {
        const auto v = id(r, c + 1);
        const auto x = wt();
        adj[u].push_back({static_cast<std::uint32_t>(v), x});
        adj[v].push_back({static_cast<std::uint32_t>(u), x});
      }
      if (r + 1 < side) {
        const auto v = id(r + 1, c);
        const auto x = wt();
        adj[u].push_back({static_cast<std::uint32_t>(v), x});
        adj[v].push_back({static_cast<std::uint32_t>(u), x});
      }
    }
  }
  for (std::size_t u = 0; u < g.n; ++u) {
    g.head[u + 1] = g.head[u] + static_cast<std::uint32_t>(adj[u].size());
    for (auto [v, x] : adj[u]) {
      g.dst.push_back(v);
      g.w.push_back(x);
    }
  }
  return g;
}

struct Entry {
  std::uint64_t d;
  std::uint32_t v;
};
struct ByDist {
  bool operator()(const Entry& a, const Entry& b) const { return a.d < b.d; }
};

std::vector<std::uint64_t> serial_dijkstra(const Graph& g, std::uint32_t src) {
  std::vector<std::uint64_t> dist(g.n, std::numeric_limits<std::uint64_t>::max());
  ph::BinaryHeap<Entry, ByDist> pq;
  dist[src] = 0;
  pq.push({0, src});
  while (!pq.empty()) {
    const Entry e = pq.pop();
    if (e.d != dist[e.v]) continue;  // stale
    for (std::uint32_t i = g.head[e.v]; i < g.head[e.v + 1]; ++i) {
      const std::uint64_t nd = e.d + g.w[i];
      if (nd < dist[g.dst[i]]) {
        dist[g.dst[i]] = nd;
        pq.push({nd, g.dst[i]});
      }
    }
  }
  return dist;
}

std::vector<std::uint64_t> batch_dijkstra(const Graph& g, std::uint32_t src,
                                          std::size_t r, std::uint64_t* cycles_out) {
  std::vector<std::uint64_t> dist(g.n, std::numeric_limits<std::uint64_t>::max());
  ph::ParallelHeap<Entry, ByDist> pq(r);
  dist[src] = 0;
  std::vector<Entry> fresh{{0, src}}, batch;
  std::uint64_t cycles = 0;
  while (true) {
    batch.clear();
    pq.cycle(fresh, r, batch);
    fresh.clear();
    if (batch.empty()) break;
    ++cycles;
    const std::uint64_t window = batch.front().d + kMinW;
    for (const Entry& e : batch) {
      if (e.d != dist[e.v]) continue;  // stale: a shorter path won already
      if (e.d >= window) {
        fresh.push_back(e);  // not provably settled yet: defer
        continue;
      }
      // Settled: relax. (All entries in [batch_min, batch_min + w_min) are
      // final because any later relaxation is ≥ batch_min + w_min.)
      for (std::uint32_t i = g.head[e.v]; i < g.head[e.v + 1]; ++i) {
        const std::uint64_t nd = e.d + g.w[i];
        if (nd < dist[g.dst[i]]) {
          dist[g.dst[i]] = nd;
          fresh.push_back({nd, g.dst[i]});
        }
      }
    }
  }
  if (cycles_out != nullptr) *cycles_out = cycles;
  return dist;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t side = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 512;
  const Graph g = make_grid(side, 7);
  std::printf("grid %zux%zu: %zu vertices, %zu edges\n", side, side, g.n,
              g.dst.size() / 2);

  ph::Timer ts;
  const auto want = serial_dijkstra(g, 0);
  const double serial_s = ts.seconds();

  std::uint64_t cycles = 0;
  ph::Timer tb;
  const auto got = batch_dijkstra(g, 0, 1024, &cycles);
  const double batch_s = tb.seconds();

  const bool exact = got == want;
  std::printf("serial dijkstra : %.3fs\n", serial_s);
  std::printf("batch  dijkstra : %.3fs, %llu cycles of up to 1024 settles\n",
              batch_s, static_cast<unsigned long long>(cycles));
  std::printf("result          : %s (farthest dist %llu)\n",
              exact ? "EXACT" : "MISMATCH!",
              static_cast<unsigned long long>(want[g.n - 1]));
  return exact ? 0 : 1;
}
