// Best-first branch-and-bound 0/1 knapsack on the parallel heap.
//
// Branch-and-bound is the other application family the Parallel Heap papers
// target (alongside DES): the open list is a priority queue ordered by bound,
// and a batch structure lets many workers expand the most promising subtree
// nodes simultaneously. Here the engine's think workers expand the r
// best-bound nodes per cycle, pruning against a shared incumbent.
//
// The result is validated against an exact dynamic-programming solution.
//
// Build & run:  ./build/examples/branch_and_bound [items seed]
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/engine.hpp"
#include "util/rng.hpp"

namespace {

struct Item {
  int value;
  int weight;
};

struct Node {
  double bound = 0;  // fractional-relaxation upper bound from this node
  int level = 0;     // next item index to decide
  int value = 0;
  int weight = 0;
};

/// Max-queue on the bound: "min" under this comparator is the best bound.
struct ByBoundDesc {
  bool operator()(const Node& a, const Node& b) const { return a.bound > b.bound; }
};

/// Fractional (LP-relaxation) bound: greedily fill remaining capacity with
/// items sorted by density, splitting the last one.
double fractional_bound(const Node& n, const std::vector<Item>& items, int capacity) {
  double bound = n.value;
  int w = n.weight;
  for (std::size_t i = static_cast<std::size_t>(n.level); i < items.size(); ++i) {
    if (w + items[i].weight <= capacity) {
      w += items[i].weight;
      bound += items[i].value;
    } else {
      bound += items[i].value * static_cast<double>(capacity - w) / items[i].weight;
      break;
    }
  }
  return bound;
}

/// Exact DP reference.
int knapsack_dp(const std::vector<Item>& items, int capacity) {
  std::vector<int> best(static_cast<std::size_t>(capacity) + 1, 0);
  for (const Item& it : items) {
    for (int w = capacity; w >= it.weight; --w) {
      best[static_cast<std::size_t>(w)] =
          std::max(best[static_cast<std::size_t>(w)],
                   best[static_cast<std::size_t>(w - it.weight)] + it.value);
    }
  }
  return best[static_cast<std::size_t>(capacity)];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ph;

  const int n_items = argc > 1 ? std::atoi(argv[1]) : 36;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;

  // Correlated instance (weights ~ values) — the hard kind for B&B.
  Xoshiro256 rng(seed);
  std::vector<Item> items(static_cast<std::size_t>(n_items));
  int total_weight = 0;
  for (auto& it : items) {
    it.weight = 20 + static_cast<int>(rng.next_below(80));
    it.value = it.weight + static_cast<int>(rng.next_below(30));
    total_weight += it.weight;
  }
  const int capacity = total_weight / 2;
  // Density order maximizes bound tightness.
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    return static_cast<double>(a.value) / a.weight >
           static_cast<double>(b.value) / b.weight;
  });

  const int optimal = knapsack_dp(items, capacity);

  std::atomic<int> incumbent{0};
  std::atomic<std::uint64_t> expanded{0};

  EngineConfig cfg;
  cfg.node_capacity = 128;  // expand up to 128 best-bound nodes per cycle
  cfg.think_threads = 2;
  ParallelHeapEngine<Node, ByBoundDesc> engine(cfg);

  Node root;
  root.bound = fractional_bound(root, items, capacity);
  engine.seed(std::vector<Node>{root});

  const EngineReport rep = engine.run([&](unsigned, std::span<const Node> mine,
                                          std::span<const Node>,
                                          std::vector<Node>& out) {
    for (const Node& n : mine) {
      // Prune: bound can't beat the incumbent (monotone non-increasing down
      // any path, so children are pruned too).
      if (n.bound <= incumbent.load(std::memory_order_relaxed)) continue;
      expanded.fetch_add(1, std::memory_order_relaxed);
      if (n.level == n_items) continue;
      const Item& it = items[static_cast<std::size_t>(n.level)];
      // Child 1: take the item (if it fits).
      if (n.weight + it.weight <= capacity) {
        Node take{0, n.level + 1, n.value + it.value, n.weight + it.weight};
        take.bound = fractional_bound(take, items, capacity);
        int best = incumbent.load(std::memory_order_relaxed);
        while (take.value > best &&
               !incumbent.compare_exchange_weak(best, take.value,
                                                std::memory_order_relaxed)) {
        }
        if (take.bound > incumbent.load(std::memory_order_relaxed)) {
          out.push_back(take);
        }
      }
      // Child 2: skip the item.
      Node skip{0, n.level + 1, n.value, n.weight};
      skip.bound = fractional_bound(skip, items, capacity);
      if (skip.bound > incumbent.load(std::memory_order_relaxed)) {
        out.push_back(skip);
      }
    }
  });

  std::printf("knapsack: %d items, capacity %d\n", n_items, capacity);
  std::printf("B&B best value  : %d\n", incumbent.load());
  std::printf("DP optimum      : %d   %s\n", optimal,
              incumbent.load() == optimal ? "(match)" : "(MISMATCH!)");
  std::printf("nodes expanded  : %llu in %llu cycles, %.3fs\n",
              static_cast<unsigned long long>(expanded.load()),
              static_cast<unsigned long long>(rep.cycles), rep.seconds);
  return incumbent.load() == optimal ? 0 : 1;
}
