// Quickstart: the Parallel Heap in five minutes.
//
// Shows the three layers of the library:
//   1. ParallelHeap           — batch priority queue, synchronous maintenance
//   2. PipelinedParallelHeap  — the paper's level-pipelined maintenance
//   3. ParallelHeapEngine     — think workers + maintenance workers
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "core/engine.hpp"
#include "core/parallel_heap.hpp"
#include "core/pipelined_heap.hpp"
#include "util/rng.hpp"

int main() {
  using namespace ph;

  // ---------------------------------------------------------------- layer 1
  // A parallel heap with node capacity r = 4: every node holds up to 4
  // sorted items, the root always holds the 4 smallest, and a delete batch
  // hands them out in one O(log n) operation.
  ParallelHeap<int> heap(/*node_capacity=*/4);

  heap.insert_batch(std::vector<int>{42, 7, 19, 3, 99, 1, 65, 23});
  std::printf("size=%zu min=%d nodes=%zu levels=%zu\n", heap.size(), heap.min(),
              heap.num_nodes(), heap.levels());

  std::vector<int> batch;
  heap.delete_min_batch(4, batch);  // the 4 smallest, ascending
  std::printf("smallest four:");
  for (int v : batch) std::printf(" %d", v);
  std::printf("\n");

  // The paper's primitive — one combined insert-delete cycle: remove the k
  // smallest of (heap ∪ new items) and insert the rest.
  batch.clear();
  heap.cycle(std::vector<int>{2, 50}, /*k=*/3, batch);
  std::printf("cycle deleted:");
  for (int v : batch) std::printf(" %d", v);
  std::printf("  (heap now %zu items)\n", heap.size());

  // ---------------------------------------------------------------- layer 2
  // Same data structure, but maintenance is pipelined: each step services
  // odd levels, does the root work, services even levels; repair processes
  // from previous steps keep flowing down in the background.
  PipelinedParallelHeap<std::uint64_t> pipe(/*node_capacity=*/256);
  Xoshiro256 rng(42);
  std::vector<std::uint64_t> init(100000);
  for (auto& x : init) x = rng.next_below(1u << 30);
  pipe.build(init);  // O(n log n) bulk load

  std::vector<std::uint64_t> out;
  for (int step = 0; step < 64; ++step) {
    std::vector<std::uint64_t> fresh(256);
    for (auto& x : fresh) x = rng.next_below(1u << 30);
    out.clear();
    pipe.step(fresh, 256, out);  // delete 256 earliest, insert 256 new
  }
  std::printf("pipelined heap: %zu items, %zu processes in flight, peak %llu\n",
              pipe.size(), pipe.inflight(),
              static_cast<unsigned long long>(pipe.pipeline_stats().max_inflight));

  // ---------------------------------------------------------------- layer 3
  // The engine runs the full paper system: per cycle the k earliest items
  // are dealt round-robin to think workers while maintenance advances the
  // pipeline; anything a worker appends to `out` is inserted next cycle.
  EngineConfig cfg;
  cfg.node_capacity = 512;
  cfg.think_threads = 2;
  ParallelHeapEngine<std::uint64_t> engine(cfg);
  engine.seed(init);

  EngineReport rep = engine.run(
      [](unsigned, std::span<const std::uint64_t> mine,
         std::span<const std::uint64_t> batch_all, std::vector<std::uint64_t>& out) {
        // Hold model: advance each item past the batch minimum and put it back.
        for (std::uint64_t v : mine) {
          out.push_back(v + (v % 97) + 1 + (batch_all.front() & 0));
        }
      },
      /*max_items=*/1 << 18);

  std::printf("engine: %llu items in %llu cycles, %.3fs wall\n",
              static_cast<unsigned long long>(rep.items_processed),
              static_cast<unsigned long long>(rep.cycles), rep.seconds);
  return 0;
}
