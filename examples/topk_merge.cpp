// Streaming multiway merge across many producers — a pure data-structure
// demonstration of the batch API: S sorted streams are merged through the
// parallel heap by feeding one cycle per round (insert stream chunks, delete
// the globally smallest batch), i.e. an online multiway merge whose output
// arrives r items at a time.
//
// Exactness scheme (the same shape as the DES window): an emitted item is
// only committed if it does not exceed the least buffered *horizon* over
// all streams with unread data — anything beyond is deferred back into the
// heap and the limiting streams are refilled. This guarantees no unseen
// stream item can undercut committed output, even for adversarial streams
// (e.g. one stream entirely below all others).
//
// Checks the output against std::sort ground truth and prints the heap's
// maintenance statistics.
//
// Build & run:  ./build/examples/topk_merge [streams items_per_stream]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <vector>

#include "core/pipelined_heap.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace ph;

  const std::size_t streams = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 64;
  const std::size_t per_stream =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1 << 14;
  const std::size_t r = 512;
  const std::size_t chunk = 64;
  constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();

  // Generate sorted input streams; stream 0 is adversarial (all its values
  // below everyone else's) to exercise the horizon logic.
  Xoshiro256 rng(99);
  std::vector<std::vector<std::uint64_t>> input(streams);
  std::vector<std::uint64_t> all;
  for (std::size_t s = 0; s < streams; ++s) {
    input[s].resize(per_stream);
    for (auto& x : input[s]) {
      x = s == 0 ? rng.next_below(1u << 16) : (1ull << 20) + rng.next_below(1ull << 40);
    }
    std::sort(input[s].begin(), input[s].end());
    all.insert(all.end(), input[s].begin(), input[s].end());
  }

  Timer t;
  PipelinedParallelHeap<std::uint64_t> heap(r);
  std::vector<std::size_t> cursor(streams, 0);
  std::vector<std::uint64_t> horizon(streams, 0);  // last buffered value
  std::vector<std::uint64_t> fresh, merged, out;

  auto refill = [&](std::size_t s) {
    const std::size_t take = std::min(chunk, per_stream - cursor[s]);
    if (take == 0) {
      horizon[s] = kInf;
      return;
    }
    fresh.insert(fresh.end(), input[s].begin() + static_cast<std::ptrdiff_t>(cursor[s]),
                 input[s].begin() + static_cast<std::ptrdiff_t>(cursor[s] + take));
    cursor[s] += take;
    horizon[s] = cursor[s] == per_stream ? kInf : fresh.back();
  };
  for (std::size_t s = 0; s < streams; ++s) refill(s);

  const std::size_t total = streams * per_stream;
  while (merged.size() < total) {
    const std::uint64_t safe = *std::min_element(horizon.begin(), horizon.end());
    out.clear();
    heap.step(fresh, r, out);
    fresh.clear();
    bool deferred = false;
    for (std::uint64_t v : out) {
      if (v <= safe) {
        merged.push_back(v);
      } else {
        fresh.push_back(v);  // beyond some stream's horizon: defer
        deferred = true;
      }
    }
    if (deferred || out.empty()) {
      // Advance the limiting streams (and any stream equally behind).
      for (std::size_t s = 0; s < streams; ++s) {
        if (horizon[s] <= safe) refill(s);
      }
    }
  }
  const double secs = t.seconds();

  std::sort(all.begin(), all.end());
  const bool exact = merged == all;

  const HeapStats& st = heap.stats();
  std::printf("merged %zu streams x %zu items = %zu total in %.3fs (%.1f M/s)\n",
              streams, per_stream, total, secs, total / secs / 1e6);
  std::printf("result: %s\n", exact ? "EXACT (matches std::sort)" : "MISMATCH!");
  std::printf("heap cycles=%llu nodes_touched=%llu items_merged=%llu\n",
              static_cast<unsigned long long>(st.cycles),
              static_cast<unsigned long long>(st.nodes_touched),
              static_cast<unsigned long long>(st.items_merged));
  return exact ? 0 : 1;
}
