// Discrete-event simulation of a queueing network — the application the
// Parallel Heap was built for: a global event queue whose root node IS the
// next batch of earliest events (and whose first element is the GVT).
//
// Simulates a torus network of logical processes three ways and compares:
//   serial      — classic one-event-at-a-time reference
//   locked GQ   — global binary heap behind a lock (the lineage's "heap
//                 version") driven in synchronous windows
//   parheap GQ  — the parallel-heap engine with think workers
//
// All three produce identical results (same processed-event fingerprint);
// what differs is structure: batch width, deferral counts, lock pressure.
//
// Build & run:  ./build/examples/des_queueing_network [rows cols end_time]
#include <cstdio>
#include <cstdlib>

#include "baselines/binary_heap.hpp"
#include "baselines/locked_pq.hpp"
#include "sim/engine_sim.hpp"
#include "sim/model.hpp"
#include "sim/network.hpp"
#include "sim/serial_sim.hpp"
#include "sim/sync_sim.hpp"

int main(int argc, char** argv) {
  using namespace ph;
  using namespace ph::sim;

  const std::size_t rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 64;
  const std::size_t cols = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 64;
  const double end_time = argc > 3 ? std::strtod(argv[3], nullptr) : 60.0;

  // The lineage's setup: per-LP service times in [1, 5], 10% "hot" LPs with
  // near-zero service to make the event population fine-grained.
  const Topology topo = make_torus(rows, cols);
  ModelConfig mc;
  mc.seed = 7;
  const Model model(topo, mc);

  std::printf("torus %zux%zu (%zu LPs), horizon t<%.1f, lookahead %.3f\n\n", rows,
              cols, topo.num_lps, end_time, model.lookahead());

  // 1. Serial reference.
  const SimResult serial = run_serial_sim(model, end_time);
  std::printf("%-12s %9llu events  %8.0f ev/s\n", "serial",
              static_cast<unsigned long long>(serial.processed),
              static_cast<double>(serial.processed) / serial.seconds);

  // 2. Locked global binary heap, synchronous windows of 256.
  {
    LockedPQ<BinaryHeap<Event, EventOrder>, Event> gq;
    const SimResult r = run_sync_sim(gq, model, end_time, 256);
    std::printf("%-12s %9llu events  %8.0f ev/s  %llu deferred  %llu lock-acq  %s\n",
                "locked-heap", static_cast<unsigned long long>(r.processed),
                static_cast<double>(r.processed) / r.seconds,
                static_cast<unsigned long long>(r.deferred),
                static_cast<unsigned long long>(gq.lock_acquisitions()),
                r.same_outcome(serial) ? "EXACT" : "MISMATCH!");
  }

  // 3. Parallel-heap engine, 2 think workers, batch = r = 256.
  {
    EngineSimConfig cfg;
    cfg.node_capacity = 256;
    cfg.think_threads = 2;
    const EngineSimResult r = run_engine_sim(model, end_time, cfg);
    std::printf("%-12s %9llu events  %8.0f ev/s  %llu deferred  %llu cycles    %s\n",
                "parheap", static_cast<unsigned long long>(r.sim.processed),
                static_cast<double>(r.sim.processed) / r.sim.seconds,
                static_cast<unsigned long long>(r.sim.deferred),
                static_cast<unsigned long long>(r.engine.cycles),
                r.sim.same_outcome(serial) ? "EXACT" : "MISMATCH!");
  }

  std::printf(
      "\nThe parallel heap hands the engine the %u earliest events per cycle;\n"
      "the batch minimum is the GVT — no extra GVT computation is needed.\n",
      256u);
  return 0;
}
