// E1 — cycle cost vs heap size (google-benchmark).
//
// Claim (ICPP'90 / J.Supercomputing'92 complexity): one insert-delete cycle
// of r items costs O(r log n) total work and O(r) critical-path work; at
// fixed r, per-cycle time should grow logarithmically in n, not linearly.
// Counters report items merged per cycle, whose growth rate is the
// hardware-independent check of the same claim.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "core/parallel_heap.hpp"
#include "core/pipelined_heap.hpp"
#include "util/rng.hpp"
#include "workloads/distributions.hpp"
#include "workloads/hold_model.hpp"

namespace {

constexpr std::size_t kR = 512;

std::vector<std::uint64_t> content(std::size_t n) {
  ph::Xoshiro256 rng(7);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.next_below(1ull << 40);
  return v;
}

void BM_SyncHeapCycle(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ph::ParallelHeap<std::uint64_t> heap(kR);
  heap.build(content(n));
  ph::Xoshiro256 rng(11);
  std::vector<std::uint64_t> fresh(kR), out;
  std::uint64_t floor = 0;
  heap.reset_stats();
  for (auto _ : state) {
    for (auto& x : fresh) x = floor + ph::to_fixed(ph::draw_increment(rng, ph::Dist::kExponential));
    out.clear();
    heap.cycle(fresh, kR, out);
    floor = out.back();
    benchmark::DoNotOptimize(out.data());
  }
  const auto& st = heap.stats();
  state.counters["items_merged_per_cycle"] =
      benchmark::Counter(static_cast<double>(st.items_merged) /
                         static_cast<double>(st.cycles));
  state.counters["nodes_touched_per_cycle"] =
      benchmark::Counter(static_cast<double>(st.nodes_touched) /
                         static_cast<double>(st.cycles));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kR));
}
BENCHMARK(BM_SyncHeapCycle)->RangeMultiplier(4)->Range(1 << 12, 1 << 22);

void BM_PipelinedHeapStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ph::PipelinedParallelHeap<std::uint64_t> heap(kR);
  heap.build(content(n));
  ph::Xoshiro256 rng(11);
  std::vector<std::uint64_t> fresh(kR), out;
  std::uint64_t floor = 0;
  heap.reset_stats();
  for (auto _ : state) {
    for (auto& x : fresh) x = floor + ph::to_fixed(ph::draw_increment(rng, ph::Dist::kExponential));
    out.clear();
    heap.step(fresh, kR, out);
    floor = out.back();
    benchmark::DoNotOptimize(out.data());
  }
  const auto& st = heap.stats();
  const auto& ps = heap.pipeline_stats();
  state.counters["items_merged_per_cycle"] =
      benchmark::Counter(static_cast<double>(st.items_merged) /
                         static_cast<double>(st.cycles));
  state.counters["inflight_peak"] = benchmark::Counter(static_cast<double>(ps.max_inflight));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kR));
}
BENCHMARK(BM_PipelinedHeapStep)->RangeMultiplier(4)->Range(1 << 12, 1 << 22);

}  // namespace

BENCHMARK_MAIN();
