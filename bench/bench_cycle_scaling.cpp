// E1 — cycle cost vs heap size (google-benchmark).
//
// Claim (ICPP'90 / J.Supercomputing'92 complexity): one insert-delete cycle
// of r items costs O(r log n) total work and O(r) critical-path work; at
// fixed r, per-cycle time should grow logarithmically in n, not linearly.
// Counters report items merged per cycle, whose growth rate is the
// hardware-independent check of the same claim.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <span>
#include <vector>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "core/parallel_heap.hpp"
#include "core/pipelined_heap.hpp"
#include "util/rng.hpp"
#include "workloads/distributions.hpp"
#include "workloads/hold_model.hpp"

namespace {

constexpr std::size_t kR = 512;

std::vector<std::uint64_t> content(std::size_t n) {
  ph::Xoshiro256 rng(7);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.next_below(1ull << 40);
  return v;
}

void BM_SyncHeapCycle(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ph::ParallelHeap<std::uint64_t> heap(kR);
  heap.build(content(n));
  ph::Xoshiro256 rng(11);
  std::vector<std::uint64_t> fresh(kR), out;
  std::uint64_t floor = 0;
  heap.reset_stats();
  for (auto _ : state) {
    for (auto& x : fresh) x = floor + ph::to_fixed(ph::draw_increment(rng, ph::Dist::kExponential));
    out.clear();
    heap.cycle(fresh, kR, out);
    floor = out.back();
    benchmark::DoNotOptimize(out.data());
  }
  const auto& st = heap.stats();
  state.counters["items_merged_per_cycle"] =
      benchmark::Counter(static_cast<double>(st.items_merged) /
                         static_cast<double>(st.cycles));
  state.counters["nodes_touched_per_cycle"] =
      benchmark::Counter(static_cast<double>(st.nodes_touched) /
                         static_cast<double>(st.cycles));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kR));
}
BENCHMARK(BM_SyncHeapCycle)->RangeMultiplier(4)->Range(1 << 12, 1 << 22);

void BM_PipelinedHeapStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ph::PipelinedParallelHeap<std::uint64_t> heap(kR);
  heap.build(content(n));
  ph::Xoshiro256 rng(11);
  std::vector<std::uint64_t> fresh(kR), out;
  std::uint64_t floor = 0;
  heap.reset_stats();
  for (auto _ : state) {
    for (auto& x : fresh) x = floor + ph::to_fixed(ph::draw_increment(rng, ph::Dist::kExponential));
    out.clear();
    heap.step(fresh, kR, out);
    floor = out.back();
    benchmark::DoNotOptimize(out.data());
  }
  const auto& st = heap.stats();
  const auto& ps = heap.pipeline_stats();
  state.counters["items_merged_per_cycle"] =
      benchmark::Counter(static_cast<double>(st.items_merged) /
                         static_cast<double>(st.cycles));
  state.counters["inflight_peak"] = benchmark::Counter(static_cast<double>(ps.max_inflight));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kR));
}
BENCHMARK(BM_PipelinedHeapStep)->RangeMultiplier(4)->Range(1 << 12, 1 << 22);

// The full multithreaded engine on a hold-model workload: per cycle the
// think team processes the r smallest while the maintenance worker advances
// the pipeline. This is the variant whose --trace output shows the
// think/maintenance overlap (driver, think-*, and maint-* tracks).
void BM_EngineCycle(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ph::EngineConfig cfg;
  cfg.node_capacity = kR;
  cfg.think_threads = 2;
  cfg.maintenance_threads = 1;
  ph::ParallelHeapEngine<std::uint64_t> eng(cfg);
  eng.seed(content(n));
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    const ph::EngineReport rep = eng.run(
        [](unsigned, std::span<const std::uint64_t> mine,
           std::span<const std::uint64_t>, std::vector<std::uint64_t>& out) {
          for (std::uint64_t v : mine) {
            out.push_back(v + 1 + (v * 2654435761u) % (1u << 20));
          }
        },
        /*max_items=*/kR * 8);
    cycles += rep.cycles;
    benchmark::DoNotOptimize(cycles);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kR) * 8);
}
BENCHMARK(BM_EngineCycle)->Arg(1 << 14);

}  // namespace

int main(int argc, char** argv) {
  ph::bench::parse_args(argc, argv);  // strips --json/--trace first
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
