// E4 — event-grain sensitivity (lineage: SPDP'95 "fine-to-medium grained").
//
// Claim: the heavier the per-item think work, the smaller the heap
// maintenance share of each cycle and the better the engine amortizes —
// coarser grain moves the crossover vs the serial binary heap toward the
// parallel structure. Rows report the engine's phase split (maintenance and
// root share shrink as grain grows) next to the serial baseline.
#include <cstdint>
#include <vector>

#include "baselines/binary_heap.hpp"
#include "bench_common.hpp"
#include "core/engine.hpp"
#include "util/timer.hpp"
#include "workloads/grain.hpp"
#include "workloads/hold_model.hpp"

namespace {
std::uint64_t g_sink = 0;
}

int main(int argc, char** argv) {
  ph::bench::parse_args(argc, argv);
  using namespace ph;
  using namespace ph::bench;

  header("E4 event-grain sweep (hold model)",
         "claim: engine's maintenance share falls as grain grows; crossover "
         "vs serial heap moves toward the engine");
  columns("grain,engine_Mops,engine_maint_share,engine_root_share,serial_Mops,ratio");

  HoldConfig cfg;
  cfg.n = 1 << 16;
  cfg.ops = 1 << 19;

  for (std::uint64_t grain : {0ull, 64ull, 256ull, 1024ull, 4096ull}) {
    // Engine (2 think workers; maintenance on the driver, overlapped).
    EngineConfig ecfg;
    ecfg.node_capacity = 1024;
    ecfg.think_threads = 2;
    ParallelHeapEngine<std::uint64_t> eng(ecfg);
    eng.seed(hold_initial(cfg));
    Timer te;
    const EngineReport rep = eng.run(
        [&](unsigned, std::span<const std::uint64_t> mine,
            std::span<const std::uint64_t>, std::vector<std::uint64_t>& out) {
          std::uint64_t sink = 0;
          for (std::uint64_t v : mine) {
            if (grain != 0) sink ^= spin_work(grain, v);
            out.push_back(v + 1 + (v * 2654435761u) % to_fixed(2.0));
          }
          g_sink ^= sink;
        },
        cfg.ops);
    const double esecs = te.seconds();
    const double eops = static_cast<double>(rep.items_processed) / esecs / 1e6;

    // Serial binary heap.
    BinaryHeap<std::uint64_t> bh;
    bh.build(hold_initial(cfg));
    HoldConfig scfg = cfg;
    scfg.grain = grain;
    Timer ts;
    const HoldResult sres = scalar_hold(bh, scfg);
    const double ssecs = ts.seconds();
    const double sops = static_cast<double>(sres.ops) / ssecs / 1e6;
    g_sink ^= sres.sink;

    row("%llu,%.2f,%.2f,%.2f,%.2f,%.2f", static_cast<unsigned long long>(grain),
        eops, rep.maint_seconds / esecs, rep.root_seconds / esecs, sops,
        eops / sops);
  }
  note("sink=%llu (anti-DCE)", static_cast<unsigned long long>(g_sink));
  return 0;
}
