// E5 — serial hold-op cost across priority-queue structures
// (google-benchmark). The lineage's serial comparators: array heaps,
// pointer heaps (skew/pairing/leftist), Brown's calendar queue, and the
// parallel heap driven one batch at a time on a single thread.
//
// Claim: per-op the calendar queue is O(1) on well-behaved distributions,
// the heaps are O(log n), and the batch-driven parallel heap amortizes its
// O(r log n) cycle over r items — competitive per item at large n despite
// doing strictly more data movement.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "bench_common.hpp"
#include <vector>

#include "baselines/binary_heap.hpp"
#include "baselines/calendar_queue.hpp"
#include "baselines/dary_heap.hpp"
#include "baselines/leftist_heap.hpp"
#include "baselines/pairing_heap.hpp"
#include "baselines/skew_heap.hpp"
#include "core/parallel_heap.hpp"
#include "workloads/hold_model.hpp"

namespace {

template <typename Q>
void scalar_hold_bench(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ph::HoldConfig cfg;
  cfg.n = n;
  Q q;
  for (auto v : ph::hold_initial(cfg)) q.push(v);
  ph::Xoshiro256 rng(3);
  for (auto _ : state) {
    const std::uint64_t t = q.pop();
    q.push(t + ph::to_fixed(ph::draw_increment(rng, ph::Dist::kExponential)));
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_BinaryHeap(benchmark::State& s) { scalar_hold_bench<ph::BinaryHeap<std::uint64_t>>(s); }
void BM_Dary4Heap(benchmark::State& s) { scalar_hold_bench<ph::DaryHeap<std::uint64_t, 4>>(s); }
void BM_Dary8Heap(benchmark::State& s) { scalar_hold_bench<ph::DaryHeap<std::uint64_t, 8>>(s); }
void BM_SkewHeap(benchmark::State& s) { scalar_hold_bench<ph::SkewHeap<std::uint64_t>>(s); }
void BM_PairingHeap(benchmark::State& s) { scalar_hold_bench<ph::PairingHeap<std::uint64_t>>(s); }
void BM_LeftistHeap(benchmark::State& s) { scalar_hold_bench<ph::LeftistHeap<std::uint64_t>>(s); }

struct FixedKey {
  double operator()(std::uint64_t v) const { return ph::from_fixed(v); }
};

void BM_CalendarQueue(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ph::HoldConfig cfg;
  cfg.n = n;
  ph::CalendarQueue<std::uint64_t, FixedKey> q;
  for (auto v : ph::hold_initial(cfg)) q.push(v);
  ph::Xoshiro256 rng(3);
  for (auto _ : state) {
    const std::uint64_t t = q.pop();
    q.push(t + ph::to_fixed(ph::draw_increment(rng, ph::Dist::kExponential)));
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ParallelHeapBatch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kR = 512;
  ph::HoldConfig cfg;
  cfg.n = n;
  ph::ParallelHeap<std::uint64_t> q(kR);
  q.build(ph::hold_initial(cfg));
  ph::Xoshiro256 rng(3);
  std::vector<std::uint64_t> out, fresh;
  for (auto _ : state) {
    out.clear();
    q.cycle(fresh, kR, out);
    fresh.clear();
    for (std::uint64_t t : out) {
      fresh.push_back(t + ph::to_fixed(ph::draw_increment(rng, ph::Dist::kExponential)));
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kR));
}

constexpr std::int64_t kLo = 1 << 10;
constexpr std::int64_t kHi = 1 << 20;

BENCHMARK(BM_BinaryHeap)->RangeMultiplier(32)->Range(kLo, kHi);
BENCHMARK(BM_Dary4Heap)->RangeMultiplier(32)->Range(kLo, kHi);
BENCHMARK(BM_Dary8Heap)->RangeMultiplier(32)->Range(kLo, kHi);
BENCHMARK(BM_SkewHeap)->RangeMultiplier(32)->Range(kLo, kHi);
BENCHMARK(BM_PairingHeap)->RangeMultiplier(32)->Range(kLo, kHi);
BENCHMARK(BM_LeftistHeap)->RangeMultiplier(32)->Range(kLo, kHi);
BENCHMARK(BM_CalendarQueue)->RangeMultiplier(32)->Range(kLo, kHi);
BENCHMARK(BM_ParallelHeapBatch)->RangeMultiplier(32)->Range(kLo, kHi);

}  // namespace

int main(int argc, char** argv) {
  ph::bench::parse_args(argc, argv);  // strips --json/--trace first
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
