// E3 — thread scaling of the global queues (lineage: "speedup vs number of
// processors", where the parallel heap keeps scaling and the single locked
// heap flattens/degrades by ~8 processors).
//
// Claim: with t threads, the parallel-heap engine's per-thread critical-path
// share falls as r/t per cycle while its serialized section stays O(r) per
// r items; the locked heap serializes *every* operation (2 lock
// acquisitions per hold op, a constant serial section per item). On this
// host wall-clock speedup cannot exceed 1 (see EXPERIMENTS.md), so the rows
// report both wall throughput and the serialization counters that carry the
// shape: locked-heap lock acquisitions grow linearly in ops regardless of t,
// while the engine's per-cycle independent task groups (parallelism width)
// and round-robin deal keep per-thread work at items/t.
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "baselines/binary_heap.hpp"
#include "baselines/concurrent_heap.hpp"
#include "baselines/local_heaps.hpp"
#include "baselines/locked_pq.hpp"
#include "bench_common.hpp"
#include "core/engine.hpp"
#include "util/timer.hpp"
#include "workloads/grain.hpp"
#include "workloads/hold_model.hpp"

namespace {

constexpr std::size_t kN = 1 << 16;
constexpr std::uint64_t kOps = 1 << 20;
constexpr std::uint64_t kGrain = 256;  // medium event grain, as in the lineage

std::uint64_t advance_key(std::uint64_t v) {
  return v + 1 + (v * 2654435761u) % ph::to_fixed(2.0);
}

std::atomic<std::uint64_t> benchmark_sink{0};

}  // namespace

int main(int argc, char** argv) {
  ph::bench::parse_args(argc, argv);
  using namespace ph;
  using namespace ph::bench;

  header("E3 thread scaling (hold model, grain=256 spins)",
         "claim: parallel heap scales (per-thread share r/t); locked heap "
         "serializes every op");

  HoldConfig cfg;
  cfg.n = kN;
  cfg.ops = kOps;

  columns("structure,threads,Mops,wall_s,serialized_ops,parallel_width");

  // --- parallel-heap engine: think team does the grain + re-insertion.
  for (unsigned t : {1u, 2u, 4u, 8u}) {
    EngineConfig ecfg;
    ecfg.node_capacity = 1024;
    ecfg.think_threads = t;
    ParallelHeapEngine<std::uint64_t> eng(ecfg);
    eng.seed(hold_initial(cfg));
    Timer timer;
    const EngineReport rep = eng.run(
        [&](unsigned, std::span<const std::uint64_t> mine,
            std::span<const std::uint64_t>, std::vector<std::uint64_t>& out) {
          std::uint64_t sink = 0;
          for (std::uint64_t v : mine) {
            sink ^= spin_work(kGrain, v);
            out.push_back(advance_key(v));
          }
          benchmark_sink.fetch_add(sink, std::memory_order_relaxed);
        },
        kOps);
    const double secs = timer.seconds();
    // Serialized work: root phase only (one merge of ≤ 2r per cycle).
    const auto& ps = eng.heap().pipeline_stats();
    row("parheap,%u,%.2f,%.3f,%llu,%.1f", t,
        static_cast<double>(rep.items_processed) / secs / 1e6, secs,
        static_cast<unsigned long long>(rep.cycles),
        ps.half_steps > 0 ? static_cast<double>(ps.task_groups) /
                                static_cast<double>(ps.half_steps)
                          : 0.0);
    json_metric("parheap_t" + std::to_string(t) + "_mops",
                static_cast<double>(rep.items_processed) / secs / 1e6);
  }

  // --- locked global binary heap: every op takes the one lock.
  for (unsigned t : {1u, 2u, 4u, 8u}) {
    LockedPQ<BinaryHeap<std::uint64_t>, std::uint64_t> q;
    q.insert_batch(hold_initial(cfg));
    std::atomic<std::int64_t> remaining{static_cast<std::int64_t>(kOps)};
    Timer timer;
    std::vector<std::thread> workers;
    for (unsigned w = 0; w < t; ++w) {
      workers.emplace_back([&] {
        std::uint64_t v;
        std::uint64_t sink = 0;
        while (remaining.fetch_sub(1, std::memory_order_relaxed) > 0) {
          if (!q.try_pop(v)) break;
          sink ^= spin_work(kGrain, v);
          q.push(advance_key(v));
        }
        benchmark_sink.fetch_add(sink, std::memory_order_relaxed);
      });
    }
    for (auto& w : workers) w.join();
    const double secs = timer.seconds();
    const std::uint64_t done = kOps;  // each fetch_sub consumed one op budget
    row("locked-heap,%u,%.2f,%.3f,%llu,%.1f", t,
        static_cast<double>(done) / secs / 1e6, secs,
        static_cast<unsigned long long>(q.lock_acquisitions()), 1.0);
  }

  // --- insert-concurrent fine-grained heap (Rao–Kumar-style top-down
  //     insertions pipeline; deletions exclusive).
  for (unsigned t : {1u, 2u, 4u, 8u}) {
    InsertConcurrentHeap<std::uint64_t> q(kN * 2);
    for (auto v : hold_initial(cfg)) q.push(v);
    std::atomic<std::int64_t> remaining{static_cast<std::int64_t>(kOps)};
    Timer timer;
    std::vector<std::thread> workers;
    for (unsigned w = 0; w < t; ++w) {
      workers.emplace_back([&] {
        std::uint64_t v;
        std::uint64_t sink = 0;
        while (remaining.fetch_sub(1, std::memory_order_relaxed) > 0) {
          if (!q.try_pop(v)) break;
          sink ^= spin_work(kGrain, v);
          q.push(advance_key(v));
        }
        benchmark_sink.fetch_add(sink, std::memory_order_relaxed);
      });
    }
    for (auto& w : workers) w.join();
    const double secs = timer.seconds();
    row("finegrained,%u,%.2f,%.3f,%llu,%.1f", t,
        static_cast<double>(kOps) / secs / 1e6, secs,
        static_cast<unsigned long long>(q.pops()),
        static_cast<double>(q.max_inflight()));
  }

  // --- per-thread local heaps (relaxed semantics).
  for (unsigned t : {1u, 2u, 4u, 8u}) {
    LocalHeaps<std::uint64_t> q(t);
    {
      auto init = hold_initial(cfg);
      for (std::size_t i = 0; i < init.size(); ++i) q.push(init[i], i);
    }
    std::atomic<std::int64_t> remaining{static_cast<std::int64_t>(kOps)};
    Timer timer;
    std::vector<std::thread> workers;
    for (unsigned w = 0; w < t; ++w) {
      workers.emplace_back([&, w] {
        std::uint64_t v;
        std::uint64_t sink = 0;
        std::uint64_t rr = w;
        while (remaining.fetch_sub(1, std::memory_order_relaxed) > 0) {
          if (!q.try_pop(w, v)) break;
          sink ^= spin_work(kGrain, v);
          q.push(advance_key(v), rr++);
        }
        benchmark_sink.fetch_add(sink, std::memory_order_relaxed);
      });
    }
    for (auto& w : workers) w.join();
    const double secs = timer.seconds();
    row("local-heaps,%u,%.2f,%.3f,%llu,%.1f", t,
        static_cast<double>(kOps) / secs / 1e6, secs,
        static_cast<unsigned long long>(q.lock_acquisitions()),
        static_cast<double>(t));
  }

  note("this host has %u hardware CPU(s): wall Mops cannot scale past 1 CPU; "
       "shape evidence is in serialized_ops (locked heap: ~2 per op at any t) "
       "and parallel_width (independent node groups per half-step)",
       std::thread::hardware_concurrency());
  return 0;
}
