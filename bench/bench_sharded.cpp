// E13 — key-range sharding: 1–8 shard engines behind the sharded front end
// (core/sharded_heap.hpp) on the hold model and on DES (sim/sharded_sim.hpp).
//
// Claim shapes: the routing/merge overhead of K > 1 is bounded and visible
// as putback traffic and merge width (≈ 1 when the partition map is good, so
// the delete path stays effectively single-shard); rebalancing keeps the
// routing imbalance near 1 under the hold model's advancing key horizon; the
// DES outcome is bit-exact at every shard count (checked here against the
// serial reference). On a 1-core container the win is architectural — K
// independent pipelines that *could* run on K hosts — so the numbers to
// watch are the hardware-independent counters, not wall clock.
#include <cstdint>
#include <vector>

#include "bench_common.hpp"
#include "core/sharded_heap.hpp"
#include "sim/model.hpp"
#include "sim/network.hpp"
#include "sim/serial_sim.hpp"
#include "sim/sharded_sim.hpp"
#include "util/timer.hpp"
#include "workloads/hold_model.hpp"

namespace {

struct HoldRow {
  double ns_per_op = 0;
  ph::ShardedStats stats;
};

HoldRow time_sharded_hold(std::size_t shards, std::size_t n, std::uint64_t ops,
                          std::size_t r) {
  ph::HoldConfig cfg;
  cfg.n = n;
  cfg.ops = ops;
  ph::ShardedHeap<std::uint64_t> q(
      r, ph::ShardedHeap<std::uint64_t>::Config{shards, /*rebalance_interval=*/64,
                                                /*sample_capacity=*/2048});
  // Live gauges: with --metrics-port/--metrics-file a scraper watches this
  // run's per-shard sizes and cycle counters advance mid-benchmark.
  q.register_gauges("hold-k" + std::to_string(shards));
  q.build(ph::hold_initial(cfg));
  ph::Timer t;
  const ph::HoldResult res = ph::batch_hold(q, cfg, r);
  HoldRow out;
  out.ns_per_op = t.seconds() / static_cast<double>(res.ops) * 1e9;
  out.stats = q.sharded_stats();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ph::bench::parse_args(argc, argv);
  using namespace ph;
  using namespace ph::bench;

  const std::size_t kShardCounts[] = {1, 2, 4, 8};

  header("E13 key-range sharding: 1-8 shard engines, hold model + DES",
         "claim: merge width ~1 and bounded putback traffic with a rebalanced "
         "partition map; DES outcome exact at every shard count");

  columns("workload,shards,ns_per_op,imbalance,merge_width,putback_frac,rebalances");
  for (const std::size_t shards : kShardCounts) {
    const HoldRow h = time_sharded_hold(shards, 1 << 16, 1 << 17, 512);
    const double putback_frac =
        h.stats.routed ? static_cast<double>(h.stats.putbacks) /
                             static_cast<double>(h.stats.routed)
                       : 0.0;
    row("hold,%zu,%.0f,%.2f,%.2f,%.3f,%llu", shards, h.ns_per_op,
        h.stats.imbalance(shards), h.stats.avg_merge_width(), putback_frac,
        static_cast<unsigned long long>(h.stats.rebalances));
    json_metric("hold_ns_per_op_shards" + std::to_string(shards), h.ns_per_op);
    json_metric("hold_imbalance_shards" + std::to_string(shards),
                h.stats.imbalance(shards));
    json_metric("hold_merge_width_shards" + std::to_string(shards),
                h.stats.avg_merge_width());
    json_metric("hold_putback_frac_shards" + std::to_string(shards), putback_frac);
  }

  const sim::Topology topo = sim::make_torus(64, 64);
  sim::ModelConfig mc;
  mc.seed = 11;
  const sim::Model model(topo, mc);
  const double horizon = 30.0;
  const sim::SimResult serial = sim::run_serial_sim(model, horizon);

  columns("workload,shards,events,ev_per_s,imbalance,merge_width,putback_frac,exact");
  for (const std::size_t shards : kShardCounts) {
    sim::ShardedSimConfig cfg;
    cfg.shards = shards;
    cfg.node_capacity = 256;
    cfg.batch = 256;
    const sim::ShardedSimResult res = sim::run_sharded_sim(model, horizon, cfg);
    const double putback_frac =
        res.shard.routed ? static_cast<double>(res.shard.putbacks) /
                               static_cast<double>(res.shard.routed)
                         : 0.0;
    const bool exact = res.sim.same_outcome(serial);
    row("des_torus64,%zu,%llu,%.0f,%.2f,%.2f,%.3f,%d", shards,
        static_cast<unsigned long long>(res.sim.processed),
        static_cast<double>(res.sim.processed) / res.sim.seconds,
        res.shard.imbalance(shards), res.shard.avg_merge_width(), putback_frac,
        exact ? 1 : 0);
    json_metric("des_ev_per_s_shards" + std::to_string(shards),
                static_cast<double>(res.sim.processed) / res.sim.seconds);
    json_metric("des_merge_width_shards" + std::to_string(shards),
                res.shard.avg_merge_width());
    json_metric("des_exact_shards" + std::to_string(shards), exact ? 1.0 : 0.0);
  }
  note("exact=1 means processed count and fingerprint match the serial "
       "reference; sharded DES is exact by construction at any K");
  return 0;
}
