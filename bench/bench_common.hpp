// Shared helpers for the experiment harness.
//
// Every experiment binary prints (a) a header naming the experiment and the
// lineage figure/table it reconstructs, (b) CSV-style rows, and (c) the
// hardware-independent counters that carry the scalability shape on hosts
// where wall-clock speedup cannot manifest (see DESIGN.md). Keep output
// grep-friendly: one "row," prefix per data point.
//
// Machine-readable output: every binary additionally understands
//   --json <file>    merged telemetry metrics (counters + per-phase latency
//                    percentiles) as one JSON document
//   --trace <file>   Chrome trace_event JSON of the run's per-thread phase
//                    spans (open in https://ui.perfetto.dev)
// parse_args() strips these before the binary's own argument handling and
// registers an atexit hook, so rows stay on stdout and the files appear on
// any exit path. Benches can attach scalar results to the JSON document via
// json_metric().
#pragma once

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/provenance.hpp"
#include "obs/publisher.hpp"
#include "telemetry/telemetry.hpp"

namespace ph::bench {

struct OutputConfig {
  std::string json_path;
  std::string trace_path;
  std::string experiment;  ///< last header() line, embedded in the JSON
  std::vector<std::pair<std::string, double>> metrics;  ///< json_metric() rows
};

inline OutputConfig& output() {
  static OutputConfig cfg;
  return cfg;
}

/// The live publisher serving this bench's metrics (started by parse_args
/// when --metrics-file/--metrics-port is given; null otherwise).
inline std::unique_ptr<obs::SnapshotPublisher>& publisher() {
  static std::unique_ptr<obs::SnapshotPublisher> p;
  return p;
}

inline void header(const char* experiment, const char* claim) {
  std::printf("\n=== %s ===\n--- %s\n", experiment, claim);
  output().experiment = experiment;
}

[[gnu::format(printf, 1, 2)]] inline void columns(const char* fmt, ...) {
  std::printf("cols,");
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

[[gnu::format(printf, 1, 2)]] inline void row(const char* fmt, ...) {
  std::printf("row,");
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

[[gnu::format(printf, 1, 2)]] inline void note(const char* fmt, ...) {
  std::printf("note,");
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

/// Attaches a named scalar to the --json document's "bench" section.
inline void json_metric(std::string name, double value) {
  output().metrics.emplace_back(std::move(name), value);
}

/// Writes the requested --json / --trace files. Installed atexit by
/// parse_args(); idempotent only in the sense that it rewrites the files.
inline void finish() {
  OutputConfig& cfg = output();
  // Stop the live publisher first: its stop() writes one final snapshot, so
  // even sub-cadence runs leave a readable metrics file behind.
  publisher().reset();
  if (!cfg.json_path.empty()) {
    std::ofstream os(cfg.json_path);
    if (!os) {
      std::fprintf(stderr, "bench: cannot open --json file %s\n",
                   cfg.json_path.c_str());
    } else {
      telemetry::JsonWriter w(os);
      w.begin_object();
      w.kv("experiment", cfg.experiment);
      w.kv("telemetry_enabled", telemetry::kEnabled);
      w.key("provenance");
      obs::write_provenance_json(w);
      w.key("bench").begin_object();
      for (const auto& [name, value] : cfg.metrics) w.kv(name, value);
      w.end_object();
      w.key("telemetry");
      telemetry::Registry::instance().collect().write_json(w);
      w.end_object();
      os << '\n';
    }
  }
  if (!cfg.trace_path.empty()) {
    std::ofstream os(cfg.trace_path);
    if (!os) {
      std::fprintf(stderr, "bench: cannot open --trace file %s\n",
                   cfg.trace_path.c_str());
    } else {
      telemetry::write_chrome_trace(os);
      os << '\n';
    }
  }
}

/// Strips "--json <file>"/"--json=<file>" and "--trace <file>"/"--trace=<file>"
/// from argv (so they compose with google-benchmark's own flags) and arranges
/// for finish() to run at exit.
inline void parse_args(int& argc, char** argv) {
  auto take = [&](int& i, const char* flag, std::string& dst) -> bool {
    // An empty path would make finish() silently skip the file the caller
    // asked for; reject it up front on both spellings.
    auto require_nonempty = [&](const char* value) {
      if (value[0] == '\0') {
        std::fprintf(stderr, "bench: %s requires a non-empty file argument\n", flag);
        std::exit(2);
      }
    };
    const std::size_t len = std::strlen(flag);
    if (std::strcmp(argv[i], flag) == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench: %s requires a file argument\n", flag);
        std::exit(2);
      }
      require_nonempty(argv[i + 1]);
      dst = argv[i + 1];
      i += 2;
      return true;
    }
    if (std::strncmp(argv[i], flag, len) == 0 && argv[i][len] == '=') {
      require_nonempty(argv[i] + len + 1);
      dst = argv[i] + len + 1;
      i += 1;
      return true;
    }
    return false;
  };

  int out = 1;
  int i = 1;
  std::string metrics_file, metrics_port, metrics_period;
  while (i < argc) {
    if (take(i, "--json", output().json_path)) continue;
    if (take(i, "--trace", output().trace_path)) continue;
    if (take(i, "--metrics-file", metrics_file)) continue;
    if (take(i, "--metrics-port", metrics_port)) continue;
    if (take(i, "--metrics-period-ms", metrics_period)) continue;
    argv[out++] = argv[i++];
  }
  argc = out;
  argv[argc] = nullptr;

  // Live observability plane: --metrics-file writes snapshots at a cadence
  // (.json → JSON, else Prometheus text); --metrics-port serves them over
  // localhost HTTP (0 = ephemeral, the bound port is announced on stderr).
  // Like the --json= empty-path check above: a typo'd number must not
  // silently become port 0 (ephemeral!) or a default cadence — reject the
  // whole flag loudly instead, even when the flag alone starts no publisher.
  // Full-consumption strtol + range check.
  auto parse_long = [](const char* flag, const std::string& text, long lo,
                       long hi) -> long {
    errno = 0;
    char* end = nullptr;
    const long v = std::strtol(text.c_str(), &end, 10);
    if (errno != 0 || end == text.c_str() || *end != '\0' || v < lo || v > hi) {
      std::fprintf(stderr, "bench: %s requires an integer in [%ld, %ld], got '%s'\n",
                   flag, lo, hi, text.c_str());
      std::exit(2);
    }
    return v;
  };
  obs::SnapshotPublisher::Config pc;
  pc.file_path = metrics_file;
  if (!metrics_port.empty()) {
    pc.port = static_cast<int>(parse_long("--metrics-port", metrics_port, 0, 65535));
  }
  if (!metrics_period.empty()) {
    pc.period_ms = static_cast<unsigned>(
        parse_long("--metrics-period-ms", metrics_period, 1, 3'600'000));
  }
  // Either alone suffices; a failed bind warns and the bench runs on.
  if (!metrics_file.empty() || !metrics_port.empty()) {
    publisher() = std::make_unique<obs::SnapshotPublisher>(pc);
    if (!publisher()->start()) {
      std::fprintf(stderr, "bench: metrics publisher failed to start (port %s)\n",
                   metrics_port.c_str());
      publisher().reset();
    } else if (publisher()->port() >= 0) {
      std::fprintf(stderr, "bench: serving metrics on http://127.0.0.1:%d/metrics\n",
                   publisher()->port());
    }
  }

  // Default the experiment label to the binary name; header() (which the
  // table-printing binaries call) overwrites it with the real title.
  if (output().experiment.empty() && argv[0] != nullptr) {
    const char* base = std::strrchr(argv[0], '/');
    output().experiment = base != nullptr ? base + 1 : argv[0];
  }

  // Touch the registry before registering the atexit hook: function-local
  // statics are destroyed in reverse construction/registration order, so the
  // registry must exist first for the hook to run before its destructor.
  (void)telemetry::Registry::instance().local();
  static const bool registered = [] {
    std::atexit([] { finish(); });
    return true;
  }();
  (void)registered;
}

}  // namespace ph::bench
