// Shared helpers for the experiment harness.
//
// Every experiment binary prints (a) a header naming the experiment and the
// lineage figure/table it reconstructs, (b) CSV-style rows, and (c) the
// hardware-independent counters that carry the scalability shape on hosts
// where wall-clock speedup cannot manifest (see DESIGN.md). Keep output
// grep-friendly: one "row," prefix per data point.
#pragma once

#include <cstdarg>
#include <cstdio>

namespace ph::bench {

inline void header(const char* experiment, const char* claim) {
  std::printf("\n=== %s ===\n--- %s\n", experiment, claim);
}

inline void columns(const char* fmt, ...) {
  std::printf("cols,");
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

inline void row(const char* fmt, ...) {
  std::printf("row,");
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

inline void note(const char* fmt, ...) {
  std::printf("note,");
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

}  // namespace ph::bench
