// E12 — node fan-out (arity) ablation of the synchronous parallel heap.
//
// Claim: larger fan-out shortens the tree (levels ~ log_d(n/r)) which cuts
// the repair path length, but each repair merges up to (d+1)·r items, so the
// per-op merge volume grows; the sweet spot is small (d = 2..4), mirroring
// the d-ary-heap trade-off. (The paper's structure is binary; this ablates
// that design choice.)
#include <cstdint>
#include <functional>
#include <vector>

#include "bench_common.hpp"
#include "core/parallel_heap.hpp"
#include "util/timer.hpp"
#include "workloads/hold_model.hpp"

int main(int argc, char** argv) {
  ph::bench::parse_args(argc, argv);
  using namespace ph;
  using namespace ph::bench;

  header("E12 arity ablation (hold model, r=512, n=2^18)",
         "claim: fan-out shortens the tree but widens repairs; binary/quad "
         "near-optimal");
  columns("arity,levels,Mops,items_moved_per_op,nodes_touched_per_cycle");

  HoldConfig cfg;
  cfg.n = 1 << 18;
  cfg.ops = 1 << 20;

  for (std::size_t d : {2u, 3u, 4u, 6u, 8u, 12u, 16u}) {
    ParallelHeap<std::uint64_t> q(512, std::less<std::uint64_t>{}, d);
    q.build(hold_initial(cfg));
    q.reset_stats();
    Timer t;
    const HoldResult res = batch_hold(q, cfg, 512);
    const double secs = t.seconds();
    const auto& st = q.stats();
    row("%zu,%zu,%.2f,%.1f,%.1f", d, q.levels(),
        static_cast<double>(res.ops) / secs / 1e6,
        static_cast<double>(st.items_merged) / static_cast<double>(res.ops),
        static_cast<double>(st.nodes_touched) / static_cast<double>(st.cycles));
  }
  return 0;
}
