// E15 — the parallel cycle: concurrent shard pipelines (PR7's tentpole)
// against the two classic frontends that bracket the design space.
//
//  * strict sharded  — ShardedHeap with K=4 shard pipelines pulled by a
//    worker team (W∈{0,1,2,4,6}; W=6 > K exercises the crew split of odd/
//    even levels within one shard), putback overlapped with the caller's
//    think phase, cross-shard min hint on. EXACT: the deletion stream is
//    REQUIRED to be bit-identical to the W=0 serial run — the bench hashes
//    the full stream and exits nonzero on any mismatch, making it a
//    correctness gate as well as a measurement.
//  * relaxed MultiQueues-style — LocalHeaps with 2 partitions per thread,
//    random-partition inserts, partition-local pops (the "just relax the
//    semantics" school; pops are NOT global minima).
//  * flat combining — FlatCombiningPQ: exact global-min pops, all ops
//    serialized through one combiner lock that batches them.
//
// On a single-core container the strict rows cannot show wall-clock speedup;
// the hardware-independent evidence is (a) exact=1 at every W, (b) per-worker
// occupancy from the Live mirror (busy-ns / wall-ns — the work really ran on
// the team), and (c) hint_skips/putback counters showing the min hint
// removing the putback round-trips. EXPERIMENTS.md E15 documents the bound.
#include <cstdint>
#include <string>
#include <vector>

#include "baselines/flat_combining_pq.hpp"
#include "baselines/local_heaps.hpp"
#include "bench_common.hpp"
#include "core/sharded_heap.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "workloads/hold_model.hpp"

namespace {

using U64 = std::uint64_t;

constexpr std::size_t kShards = 4;
constexpr std::size_t kNodeCap = 512;

ph::HoldConfig hold_cfg() {
  ph::HoldConfig cfg;
  cfg.n = 1 << 15;
  cfg.ops = 1 << 17;
  return cfg;
}

struct StrictRow {
  double ns_per_op = 0;
  std::uint64_t ops = 0;
  std::uint64_t hash = 0;  ///< order-sensitive fold of the deletion stream
  double occupancy = 0;    ///< mean worker busy-ns / wall-ns (0 when W=0)
  ph::ShardedStats stats;
};

/// Hold run over the sharded heap that hashes the deletion stream in order
/// (position-dependent, so any reordering or substitution flips it) — the
/// bit-exactness witness the strict rows are compared by.
StrictRow run_strict(unsigned workers, bool overlap) {
  const ph::HoldConfig cfg = hold_cfg();
  ph::ShardedHeap<U64>::Config qcfg;
  qcfg.shards = kShards;
  qcfg.rebalance_interval = 64;
  qcfg.sample_capacity = 2048;
  qcfg.workers = workers;
  qcfg.overlap_putback = overlap;
  ph::ShardedHeap<U64> q(kNodeCap, qcfg);
  q.register_gauges("parallel-w" + std::to_string(workers));
  q.build(ph::hold_initial(cfg));

  ph::Xoshiro256 rng(cfg.seed ^ 0x9e3779b97f4a7c15ull);
  StrictRow out;
  std::vector<U64> deleted, fresh;
  ph::Timer t;
  while (out.ops < cfg.ops) {
    const std::size_t k = static_cast<std::size_t>(
        std::min<std::uint64_t>(kNodeCap, cfg.ops - out.ops));
    deleted.clear();
    q.cycle(fresh, k, deleted);
    fresh.clear();
    for (U64 v : deleted) {
      out.hash = (out.hash ^ v) * 0x100000001b3ull;  // FNV-style, order-sensitive
      fresh.push_back(v + ph::to_fixed(ph::draw_increment(rng, cfg.dist)));
    }
    out.ops += deleted.size();
    if (deleted.empty()) break;
  }
  std::vector<U64> sink;
  q.cycle(fresh, 0, sink);
  q.quiesce();  // join any overlapped putback before reading the clock
  const double wall_ns = t.seconds() * 1e9;
  out.ns_per_op = wall_ns / static_cast<double>(out.ops);
  out.stats = q.sharded_stats();
  if (workers > 0) {
    std::uint64_t busy = 0;
    for (const auto& b : q.live().worker_busy_ns)
      busy += b.load(std::memory_order_relaxed);
    out.occupancy = static_cast<double>(busy) /
                    (wall_ns * static_cast<double>(workers));
  }
  return out;
}

/// MultiQueues-style relaxed hold: each thread pops its own partition's min
/// (stealing only when empty) and reinserts into a random partition.
double run_multiqueue(unsigned threads, std::uint64_t total_ops) {
  ph::LocalHeaps<U64> q(2 * threads);
  const ph::HoldConfig cfg = hold_cfg();
  {
    std::size_t i = 0;
    for (U64 v : ph::hold_initial(cfg)) q.push(v, i++);
  }
  ph::ThreadTeam team(threads, /*pin=*/false, "bench-mq");
  ph::Timer t;
  team.run([&](unsigned tid) {
    ph::Xoshiro256 rng(cfg.seed ^ (0xabcdull + tid));
    const std::uint64_t mine = total_ops / threads;
    for (std::uint64_t i = 0; i < mine; ++i) {
      U64 v = 0;
      if (!q.try_pop(tid, v)) break;
      q.push(v + ph::to_fixed(ph::draw_increment(rng, cfg.dist)),
             static_cast<std::size_t>(rng() % (2 * threads)));
    }
  });
  return static_cast<double>(total_ops) / t.seconds();
}

struct FcRow {
  double ops_per_s = 0;
  double ops_per_combine = 0;
};

/// Flat-combining hold: exact global-min pops, every op funneled through
/// whichever thread holds the combiner lock.
FcRow run_flat_combining(unsigned threads, std::uint64_t total_ops) {
  ph::FlatCombiningPQ<U64> q(threads);
  const ph::HoldConfig cfg = hold_cfg();
  for (U64 v : ph::hold_initial(cfg)) q.push(0, v);
  const std::uint64_t base_combines = q.combines();
  const std::uint64_t base_ops = q.combined_ops();
  ph::ThreadTeam team(threads, /*pin=*/false, "bench-fc");
  ph::Timer t;
  team.run([&](unsigned tid) {
    ph::Xoshiro256 rng(cfg.seed ^ (0x5151ull + tid));
    const std::uint64_t mine = total_ops / threads;
    for (std::uint64_t i = 0; i < mine; ++i) {
      U64 v = 0;
      if (!q.try_pop(tid, v)) break;
      q.push(tid, v + ph::to_fixed(ph::draw_increment(rng, cfg.dist)));
    }
  });
  FcRow out;
  out.ops_per_s = static_cast<double>(total_ops) / t.seconds();
  const std::uint64_t combines = q.combines() - base_combines;
  out.ops_per_combine =
      combines ? static_cast<double>(q.combined_ops() - base_ops) /
                     static_cast<double>(combines)
               : 0.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ph::bench::parse_args(argc, argv);
  using namespace ph::bench;

  header("E15 parallel cycle: concurrent shard pipelines vs relaxed and "
         "flat-combining frontends",
         "claim: worker-team pulls keep the deletion stream bit-exact at any "
         "W (gated here), with per-worker occupancy and hint-skip counters "
         "carrying the scalability shape on single-core hosts");

  const unsigned kWorkers[] = {0, 1, 2, 4, 6};
  bool all_exact = true;
  StrictRow serial;

  columns("mode,workers,ns_per_op,occupancy,hint_skips,putbacks,par_cycles,exact");
  for (const unsigned w : kWorkers) {
    const StrictRow r = run_strict(w, /*overlap=*/w > 0);
    const bool exact =
        w == 0 || (r.hash == serial.hash && r.ops == serial.ops);
    if (w == 0) serial = r;
    all_exact = all_exact && exact;
    row("strict,%u,%.0f,%.2f,%llu,%llu,%llu,%d", w, r.ns_per_op, r.occupancy,
        static_cast<unsigned long long>(r.stats.hint_skips),
        static_cast<unsigned long long>(r.stats.putbacks),
        static_cast<unsigned long long>(r.stats.parallel_cycles), exact ? 1 : 0);
    json_metric("strict_ns_per_op_w" + std::to_string(w), r.ns_per_op);
    json_metric("strict_occupancy_w" + std::to_string(w), r.occupancy);
    json_metric("strict_exact_w" + std::to_string(w), exact ? 1.0 : 0.0);
    json_metric("strict_hint_skips_w" + std::to_string(w),
                static_cast<double>(r.stats.hint_skips));
  }

  // The min hint's effect in isolation: same serial run with the hint off.
  {
    ph::ShardedHeap<U64>::Config qcfg;
    qcfg.shards = kShards;
    qcfg.rebalance_interval = 64;
    qcfg.sample_capacity = 2048;
    qcfg.min_hint = false;
    ph::ShardedHeap<U64> q(kNodeCap, qcfg);
    q.build(ph::hold_initial(hold_cfg()));
    const ph::HoldResult res = ph::batch_hold(q, hold_cfg(), kNodeCap);
    (void)res;
    note("min_hint off: putbacks=%llu (vs %llu with the hint on)",
         static_cast<unsigned long long>(q.sharded_stats().putbacks),
         static_cast<unsigned long long>(serial.stats.putbacks));
    json_metric("strict_putbacks_nohint",
                static_cast<double>(q.sharded_stats().putbacks));
    json_metric("strict_putbacks_hint",
                static_cast<double>(serial.stats.putbacks));
  }

  const std::uint64_t kOps = hold_cfg().ops;
  columns("mode,threads,ops_per_s,ops_per_combine,exact");
  for (const unsigned t : {1u, 2u, 4u}) {
    const double mq = run_multiqueue(t, kOps);
    row("multiqueue,%u,%.0f,,0", t, mq);
    json_metric("mq_ops_per_s_t" + std::to_string(t), mq);
  }
  for (const unsigned t : {1u, 2u, 4u}) {
    const FcRow fc = run_flat_combining(t, kOps);
    row("flat_combining,%u,%.0f,%.1f,1", t, fc.ops_per_s, fc.ops_per_combine);
    json_metric("fc_ops_per_s_t" + std::to_string(t), fc.ops_per_s);
    json_metric("fc_ops_per_combine_t" + std::to_string(t), fc.ops_per_combine);
  }

  note("strict rows are a correctness gate: exact=0 fails the binary; "
       "multiqueue pops are partition minima (relaxed), flat_combining pops "
       "are exact but serialized");
  if (!all_exact) {
    std::fprintf(stderr,
                 "bench_parallel_cycle: FAIL — deletion stream diverged from "
                 "the serial reference\n");
    return 1;
  }
  return 0;
}
