// E8 — DES on static random networks (lineage: the random-network
// experiments; their observation is that both schemes behave consistently
// with the torus but with *much higher* rollback counts, random wiring
// being the ill-behaved case).
//
// Claim: per processed event, the local-queue scheme's causality violations
// (rollback analogue) are higher on the random network than on an
// equal-sized torus; the global-queue schemes stay exact with zero
// violations on both.
#include <cstdint>

#include "bench_common.hpp"
#include "sim/engine_sim.hpp"
#include "sim/local_sim.hpp"
#include "sim/model.hpp"
#include "sim/network.hpp"
#include "sim/serial_sim.hpp"

int main(int argc, char** argv) {
  ph::bench::parse_args(argc, argv);
  using namespace ph;
  using namespace ph::bench;
  using namespace ph::sim;

  header("E8 DES on random networks vs torus (65,536 LPs each)",
         "claim: random wiring raises the rollback analogue; global queue "
         "stays exact on both");

  ModelConfig mc;
  mc.seed = 13;
  mc.grain = 128;
  const double horizon = 12.0;

  columns("network,scheduler,threads,events,ev_per_s,violations_per_kevent,exact");

  struct Net {
    const char* name;
    Topology topo;
  };
  Net nets[] = {{"torus", make_torus(256, 256)},
                {"random", make_random_network(65536, 2, 17)}};

  for (auto& net : nets) {
    const Model model(net.topo, mc);
    const SimResult serial = run_serial_sim(model, horizon);
    row("%s,serial,1,%llu,%.0f,0,1", net.name,
        static_cast<unsigned long long>(serial.processed),
        static_cast<double>(serial.processed) / serial.seconds);

    for (unsigned t : {2u, 4u, 8u}) {
      LocalSimConfig cfg;
      cfg.threads = t;
      cfg.mode = LocalSimMode::kDistributed;
      const SimResult r = run_local_sim(model, horizon, cfg);
      row("%s,local-queues,%u,%llu,%.0f,%.2f,%d", net.name, t,
          static_cast<unsigned long long>(r.processed),
          static_cast<double>(r.processed) / r.seconds,
          static_cast<double>(r.violations) * 1000.0 /
              static_cast<double>(r.processed),
          r.same_outcome(serial) ? 1 : 0);
    }

    for (unsigned t : {2u, 4u}) {
      EngineSimConfig cfg;
      cfg.node_capacity = 512;
      cfg.think_threads = t;
      const EngineSimResult r = run_engine_sim(model, horizon, cfg);
      row("%s,parheap,%u,%llu,%.0f,0,%d", net.name, t,
          static_cast<unsigned long long>(r.sim.processed),
          static_cast<double>(r.sim.processed) / r.sim.seconds,
          r.sim.same_outcome(serial) ? 1 : 0);
    }
  }
  return 0;
}
