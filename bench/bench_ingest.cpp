// E16 — the ingestion tier: PIPQ-style per-producer staging buffers in
// front of the batch-cycle heaps (PR8's tentpole; DESIGN.md §13).
//
// Two phases:
//
//  * exactness gate — strict mode must be BIT-EXACT against direct
//    insertion at every producer count P∈{1,2,4,8}: real producer threads
//    stage their slices concurrently, the driver cycles, and the deletion
//    stream is compared item-for-item per cycle against a reference heap
//    fed the same items directly. Any divergence exits nonzero — the CI
//    smoke runs this binary as a correctness gate. The gate runs over both
//    a pipelined inner heap and a worker-team sharded one (the full
//    producer → staging → route → shard pipeline).
//  * throughput — sustained hold-model ops/sec across r∈{64..1024} and
//    P∈{1,2,4} producer threads, strict vs bounded-staleness (S=4,
//    admit_min_items=2r), over the pipelined inner heap. On a single-core
//    container wall-clock speedup cannot manifest; the hardware-independent
//    evidence is the staged/admitted counter balance and the run-size
//    telemetry (wide coalesced runs = fewer root-merge entries per item).
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/pipelined_heap.hpp"
#include "core/sharded_heap.hpp"
#include "ingest/ingest_tier.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using U64 = std::uint64_t;

/// Deterministic per-cycle batch of fresh keys (same stream every run —
/// the gate's two sides must consume identical items).
std::vector<U64> gen_batch(ph::Xoshiro256& rng, std::size_t n, U64 bound) {
  std::vector<U64> v(n);
  for (auto& x : v) x = rng() % bound;
  return v;
}

/// Strict-mode exactness gate for one inner-heap maker: P producer threads
/// stage slices of each cycle's batch concurrently (joined at the cycle
/// boundary), the reference gets the identical batch directly. Returns true
/// iff every cycle's deletion stream matched.
template <typename MakeInner>
bool run_gate(const char* label, std::size_t r, unsigned producers,
              std::size_t cycles, MakeInner make_inner) {
  ph::ingest::IngestConfig ic;
  ic.producers = producers;
  ph::ingest::IngestTier<decltype(make_inner())> tier(make_inner(), ic);
  auto ref = make_inner();

  ph::Xoshiro256 rng(0x51c9 ^ (r * 131) ^ producers);
  ph::ThreadTeam team(producers, /*pin=*/false, "ingest-prod");
  std::vector<U64> got, want;
  for (std::size_t c = 0; c < cycles; ++c) {
    const std::vector<U64> batch = gen_batch(rng, r, U64{1} << 20);
    team.run([&](unsigned tid) {
      // Producer tid stages its contiguous slice — real concurrent stage()
      // calls racing each other (and nothing else: cycle() is driver-only).
      const std::size_t per = (batch.size() + producers - 1) / producers;
      const std::size_t lo = std::min<std::size_t>(tid * per, batch.size());
      const std::size_t hi = std::min<std::size_t>(lo + per, batch.size());
      tier.stage(tid, std::span<const U64>(batch).subspan(lo, hi - lo));
    });
    got.clear();
    want.clear();
    tier.cycle({}, r / 2, got);
    ref.cycle(batch, r / 2, want);
    if (got != want) {
      std::fprintf(stderr,
                   "bench_ingest: GATE FAIL %s r=%zu P=%u cycle %zu: strict "
                   "stream diverged from direct insertion (%zu vs %zu items)\n",
                   label, r, producers, c, got.size(), want.size());
      return false;
    }
  }
  // Drain both sides to empty through the same interface.
  for (int guard = 0; guard < 1 << 14; ++guard) {
    got.clear();
    want.clear();
    const std::size_t nq = tier.cycle({}, r, got);
    const std::size_t no = ref.cycle({}, r, want);
    if (got != want) {
      std::fprintf(stderr, "bench_ingest: GATE FAIL %s r=%zu P=%u: drain diverged\n",
                   label, r, producers);
      return false;
    }
    if (nq == 0 && no == 0) break;
  }
  return true;
}

struct ThroughputRow {
  double mops = 0;             ///< staged+deleted ops per second, millions
  std::uint64_t staged = 0;
  std::uint64_t admitted = 0;
  std::uint64_t runs = 0;
  double mean_run = 0;
};

/// Hold-style throughput: P producers re-stage the previous cycle's
/// deletions (bumped) while the driver cycles the tier. Item count is fixed
/// so strict and relaxed rows do identical logical work.
ThroughputRow run_throughput(std::size_t r, unsigned producers,
                             std::size_t staleness, std::size_t ops_target) {
  ph::ingest::IngestConfig ic;
  ic.producers = producers;
  ic.staleness = staleness;
  ic.admit_min_items = staleness == 0 ? 0 : 2 * r;
  ph::ingest::IngestTier<ph::PipelinedParallelHeap<U64>> tier(
      ph::PipelinedParallelHeap<U64>(r), ic);
  tier.register_gauges("e16-r" + std::to_string(r) + "-p" + std::to_string(producers));

  ph::Xoshiro256 rng(0xe16 ^ (r * 31) ^ producers ^ staleness);
  {
    const std::vector<U64> seed = gen_batch(rng, 1 << 12, U64{1} << 30);
    tier.inner().build(seed);
  }
  ph::ThreadTeam team(producers, /*pin=*/false, "ingest-hold");
  std::vector<U64> deleted;
  std::uint64_t ops = 0;
  ph::Timer t;
  while (ops < ops_target) {
    deleted.clear();
    tier.cycle({}, r, deleted);
    ops += deleted.size();
    if (deleted.empty() && tier.empty()) break;
    team.run([&](unsigned tid) {
      // Each producer re-stages its slice of the deletions with a hold bump.
      const std::size_t per = (deleted.size() + producers - 1) / producers;
      const std::size_t lo = std::min<std::size_t>(tid * per, deleted.size());
      const std::size_t hi = std::min<std::size_t>(lo + per, deleted.size());
      for (std::size_t i = lo; i < hi; ++i) {
        tier.stage(tid, deleted[i] + 1 + (deleted[i] & 0x3ff));
      }
    });
  }
  const double secs = t.seconds();
  const auto& st = tier.ingest_stats();
  ThroughputRow out;
  // Each logical op is one staged insert + one delete-min; ops counts cycles'
  // deletions, and every deletion was staged first.
  out.mops = 2.0 * static_cast<double>(ops) / secs / 1e6;
  out.staged = st.staged;
  out.admitted = st.admitted_items;
  out.runs = st.runs;
  out.mean_run = st.runs ? static_cast<double>(st.staged) / static_cast<double>(st.runs) : 0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ph::bench::parse_args(argc, argv);
  using namespace ph::bench;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  header("E16 ingestion tier: staged producer buffers vs direct insertion",
         "claim: strict staging is bit-exact against direct insertion at any "
         "producer count (gated here), and coalesced sorted runs sustain "
         "insert throughput that direct root-merge insertion cannot");

  // Phase 1: strict-mode exactness gate (the CI contract).
  const std::size_t gate_cycles = quick ? 40 : 120;
  bool all_exact = true;
  columns("gate,inner,r,producers,exact");
  for (const std::size_t r : {std::size_t{64}, std::size_t{256}}) {
    for (const unsigned p : {1u, 2u, 4u, 8u}) {
      const bool ok_pipe = run_gate("pipelined", r, p, gate_cycles, [&] {
        return ph::PipelinedParallelHeap<U64>(r);
      });
      row("gate,pipelined,%zu,%u,%d", r, p, ok_pipe ? 1 : 0);
      const bool ok_shard = run_gate("sharded", r, p, gate_cycles, [&] {
        ph::ShardedHeap<U64>::Config c;
        c.shards = 3;
        c.rebalance_interval = 16;
        c.workers = 2;
        c.overlap_putback = true;
        return ph::ShardedHeap<U64>(r, c);
      });
      row("gate,sharded,%zu,%u,%d", r, p, ok_shard ? 1 : 0);
      all_exact = all_exact && ok_pipe && ok_shard;
      json_metric("gate_exact_r" + std::to_string(r) + "_p" + std::to_string(p),
                  (ok_pipe && ok_shard) ? 1.0 : 0.0);
    }
  }

  // Phase 2: sustained throughput, strict vs bounded staleness.
  const std::size_t ops_target = quick ? 1 << 15 : 1 << 17;
  columns("mode,r,producers,mops_per_s,staged,admitted,runs,mean_run");
  for (const std::size_t r :
       {std::size_t{64}, std::size_t{128}, std::size_t{256}, std::size_t{512},
        std::size_t{1024}}) {
    for (const unsigned p : {1u, 2u, 4u}) {
      for (const std::size_t s : {std::size_t{0}, std::size_t{4}}) {
        const ThroughputRow tr = run_throughput(r, p, s, ops_target);
        const char* mode = s == 0 ? "strict" : "relaxed";
        row("%s,%zu,%u,%.2f,%llu,%llu,%llu,%.1f", mode, r, p, tr.mops,
            static_cast<unsigned long long>(tr.staged),
            static_cast<unsigned long long>(tr.admitted),
            static_cast<unsigned long long>(tr.runs), tr.mean_run);
        json_metric(std::string(mode) + "_mops_r" + std::to_string(r) + "_p" +
                        std::to_string(p),
                    tr.mops);
      }
    }
  }

  note("gate rows are a correctness contract: exact=0 fails the binary; "
       "relaxed rows lag admission by <= 4 cycles (bounded staleness), "
       "trading freshness for wider coalesced runs");
  if (!all_exact) {
    std::fprintf(stderr,
                 "bench_ingest: FAIL — strict staging diverged from direct "
                 "insertion\n");
    return 1;
  }
  return 0;
}
