// E10 — splitting t threads between think and maintenance work (lineage:
// their Figure on "total processors used and the number of participating
// simulation processors", which tunes (t, s) and finds most threads should
// think while few maintain).
//
// Claim: at medium grain the best split gives (almost) all threads to the
// think phase, because maintenance is O(r log n) total per cycle against
// O(r·grain) think work; dedicated maintenance threads only pay off when
// grain is tiny and n is huge. Rows sweep s (think) for fixed t = s + m.
#include <atomic>
#include <cstdint>
#include <vector>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "util/timer.hpp"
#include "workloads/grain.hpp"
#include "workloads/hold_model.hpp"

namespace {
std::atomic<std::uint64_t> g_sink{0};
}

int main(int argc, char** argv) {
  ph::bench::parse_args(argc, argv);
  using namespace ph;
  using namespace ph::bench;

  header("E10 think/maintenance thread split",
         "claim: most threads should think; maintenance needs at most a "
         "small team");
  columns("total_t,think_s,maint_m,grain,Mops,maint_share,stall_share");

  HoldConfig cfg;
  cfg.n = 1 << 18;
  cfg.ops = 1 << 19;

  for (std::uint64_t grain : {64ull, 1024ull}) {
    for (unsigned total : {2u, 4u, 8u}) {
      for (unsigned maint = 0; maint < total; maint = maint == 0 ? 1 : maint * 2) {
        const unsigned think = total - maint;
        EngineConfig ecfg;
        ecfg.node_capacity = 1024;
        ecfg.think_threads = think;
        ecfg.maintenance_threads = maint;
        ParallelHeapEngine<std::uint64_t> eng(ecfg);
        eng.seed(hold_initial(cfg));
        Timer t;
        const EngineReport rep = eng.run(
            [&](unsigned, std::span<const std::uint64_t> mine,
                std::span<const std::uint64_t>, std::vector<std::uint64_t>& out) {
              std::uint64_t sink = 0;
              for (std::uint64_t v : mine) {
                sink ^= spin_work(grain, v);
                out.push_back(v + 1 + (v * 2654435761u) % to_fixed(2.0));
              }
              g_sink.fetch_add(sink, std::memory_order_relaxed);
            },
            cfg.ops);
        const double secs = t.seconds();
        row("%u,%u,%u,%llu,%.2f,%.2f,%.2f", total, think, maint,
            static_cast<unsigned long long>(grain),
            static_cast<double>(rep.items_processed) / secs / 1e6,
            rep.maint_seconds / secs, rep.think_stall_seconds / secs);
      }
    }
  }
  return 0;
}
