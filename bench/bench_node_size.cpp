// E2 — effect of node size r (lineage: "speedup vs parallel heap node size",
// where the plotted curves peak at an interior r).
//
// Claim: throughput as a function of r has an interior optimum — tiny nodes
// cannot amortize per-cycle overheads or expose batch parallelism; huge
// nodes waste merge work and (in simulation use) defer more events. We run
// the hold model at fixed n and sweep r, reporting throughput plus the two
// work counters whose opposing trends produce the optimum:
//   merge work per item  (falls then flattens as r grows)
//   root-phase share     (serial fraction; falls with r)
#include <cstdint>
#include <vector>

#include "bench_common.hpp"
#include "core/pipelined_heap.hpp"
#include "util/timer.hpp"
#include "workloads/hold_model.hpp"

int main(int argc, char** argv) {
  ph::bench::parse_args(argc, argv);
  using namespace ph;
  using namespace ph::bench;

  header("E2 node-size sweep (hold model, pipelined parallel heap)",
         "claim: interior optimum in r; merge work per item falls with r");
  columns("r,Mops,us_per_cycle,items_merged_per_op,nodes_touched_per_cycle");

  HoldConfig cfg;
  cfg.n = 1 << 18;
  cfg.ops = 1 << 21;
  cfg.dist = Dist::kExponential;

  for (std::size_t r = 16; r <= (1u << 15); r *= 4) {
    PipelinedParallelHeap<std::uint64_t> q(r);
    q.build(hold_initial(cfg));
    q.reset_stats();
    Timer t;
    const HoldResult res = batch_hold(q, cfg, r);
    const double secs = t.seconds();
    const auto& st = q.stats();
    row("%zu,%.2f,%.2f,%.2f,%.2f", r,
        static_cast<double>(res.ops) / secs / 1e6,
        secs / static_cast<double>(st.cycles) * 1e6,
        static_cast<double>(st.items_merged) / static_cast<double>(res.ops),
        static_cast<double>(st.nodes_touched) / static_cast<double>(st.cycles));
  }
  note("n=%zu ops=%llu; r is also the batch width handed to workers per cycle",
       cfg.n, static_cast<unsigned long long>(cfg.ops));
  return 0;
}
