// E7 — DES on a large torus network (lineage: the torus-network experiments
// comparing the parallel-heap global queue against a single locked heap and
// per-processor local queues; their Figures plot speedup and rollback
// counts vs processors).
//
// Here (conservative reproduction, see DESIGN.md): all schedulers produce
// exact results; the rollback analogue is `violations` for the local-queue
// scheme (events handled behind their LP clock — each would be a rollback
// in an optimistic run) and `deferred` for the window schemes. Claims:
//  * local queues suffer causality violations that grow with thread count,
//    while the global-queue schemes have zero — the lineage's central
//    global-vs-local finding;
//  * the locked global heap serializes every event (2 lock acquisitions per
//    event at any thread count);
//  * the parallel heap delivers the same global-queue semantics with O(r)
//    critical path per batch and no per-item lock.
#include <cstdint>
#include <thread>

#include "baselines/binary_heap.hpp"
#include "baselines/locked_pq.hpp"
#include "bench_common.hpp"
#include "sim/engine_sim.hpp"
#include "sim/local_sim.hpp"
#include "sim/model.hpp"
#include "sim/network.hpp"
#include "sim/serial_sim.hpp"
#include "sim/sync_sim.hpp"

int main(int argc, char** argv) {
  ph::bench::parse_args(argc, argv);
  using namespace ph;
  using namespace ph::bench;
  using namespace ph::sim;

  header("E7 DES on a 256x256 torus (65,536 LPs)",
         "claim: global queue eliminates causality violations; parallel heap "
         "provides it without per-event locking");

  const Topology topo = make_torus(256, 256);
  ModelConfig mc;
  mc.seed = 11;
  mc.grain = 128;  // medium event grain, as in the lineage
  const Model model(topo, mc);
  const double horizon = 12.0;

  const SimResult serial = run_serial_sim(model, horizon);
  columns("scheduler,threads,events,ev_per_s,violations,deferred,lock_acq,exact");
  row("serial,1,%llu,%.0f,0,0,0,1",
      static_cast<unsigned long long>(serial.processed),
      static_cast<double>(serial.processed) / serial.seconds);

  for (unsigned t : {1u, 2u, 4u, 8u}) {
    LocalSimConfig cfg;
    cfg.threads = t;
    cfg.mode = LocalSimMode::kDistributed;
    const SimResult r = run_local_sim(model, horizon, cfg);
    row("local-queues,%u,%llu,%.0f,%llu,0,0,%d", t,
        static_cast<unsigned long long>(r.processed),
        static_cast<double>(r.processed) / r.seconds,
        static_cast<unsigned long long>(r.violations),
        r.same_outcome(serial) ? 1 : 0);
  }

  {
    LockedPQ<BinaryHeap<Event, EventOrder>, Event> gq;
    const SimResult r = run_sync_sim(gq, model, horizon, 512);
    row("locked-heap,1,%llu,%.0f,0,%llu,%llu,%d",
        static_cast<unsigned long long>(r.processed),
        static_cast<double>(r.processed) / r.seconds,
        static_cast<unsigned long long>(r.deferred),
        static_cast<unsigned long long>(gq.lock_acquisitions()),
        r.same_outcome(serial) ? 1 : 0);
  }

  for (unsigned t : {1u, 2u, 4u, 8u}) {
    EngineSimConfig cfg;
    cfg.node_capacity = 512;
    cfg.think_threads = t;
    const EngineSimResult r = run_engine_sim(model, horizon, cfg);
    row("parheap,%u,%llu,%.0f,0,%llu,0,%d", t,
        static_cast<unsigned long long>(r.sim.processed),
        static_cast<double>(r.sim.processed) / r.sim.seconds,
        static_cast<unsigned long long>(r.sim.deferred),
        r.sim.same_outcome(serial) ? 1 : 0);
  }

  note("host has %u hardware CPU(s); wall rates cannot scale here — the "
       "violations/lock_acq columns carry the shape",
       std::thread::hardware_concurrency());
  return 0;
}
