// E14 — durability tax: WAL overhead per op versus fsync policy, checkpoint
// publication latency versus heap size, and restart (recovery) latency for
// checkpoint-dominated and WAL-replay-dominated directories.
//
// Claim shapes: FsyncPolicy::kNever logs at memcpy+write(2) cost (small
// constant factor over the bare heap on the hold model); kEveryRecord pays
// one fsync per cycle and is storage-latency-bound — the interesting number
// is ns/op *overhead*, not absolute throughput. Checkpoint cost is O(n) in
// heap size with a bandwidth-shaped constant; recovery from a checkpoint is
// O(n) load while WAL-tail replay is O(ops) re-execution, which is why the
// checkpoint interval knob trades runtime overhead against restart time.
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/pipelined_heap.hpp"
#include "persist/checkpoint.hpp"
#include "persist/recovery.hpp"
#include "util/timer.hpp"
#include "workloads/hold_model.hpp"

namespace {

using U64 = std::uint64_t;
using ph::persist::DurableHeap;
using ph::persist::DurableOptions;
using ph::persist::FsyncPolicy;
using DH = DurableHeap<ph::PipelinedParallelHeap<U64>>;

struct TempDir {
  std::string path;
  TempDir() : path(ph::persist::make_temp_dir("ph-bench-persist")) {}
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

double hold_ns_per_op_bare(const ph::HoldConfig& cfg, std::size_t r) {
  ph::PipelinedParallelHeap<U64> q(r);
  q.build(ph::hold_initial(cfg));
  ph::Timer t;
  const ph::HoldResult res = ph::batch_hold(q, cfg, r);
  return t.seconds() / static_cast<double>(res.ops) * 1e9;
}

double hold_ns_per_op_durable(const ph::HoldConfig& cfg, std::size_t r,
                              FsyncPolicy fsync, std::size_t interval) {
  TempDir dir;
  DurableOptions d;
  d.dir = dir.path;
  d.fsync = fsync;
  d.checkpoint_interval = interval;
  d.checkpoint_on_open = false;
  DH q(ph::PipelinedParallelHeap<U64>(r), d);
  q.build(ph::hold_initial(cfg));
  ph::Timer t;
  const ph::HoldResult res = ph::batch_hold(q, cfg, r);
  return t.seconds() / static_cast<double>(res.ops) * 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  ph::bench::parse_args(argc, argv);
  using namespace ph;
  using namespace ph::bench;

  header("E14 durability tax: WAL fsync policies, checkpoint + recovery latency",
         "claim: kNever logging costs a small constant factor over the bare "
         "heap; kEveryRecord is fsync-latency-bound; checkpoint write and "
         "checkpoint-based recovery are O(n), WAL replay is O(ops)");

  // --- WAL overhead per hold op, by fsync policy --------------------------
  HoldConfig hc;
  hc.n = 1 << 14;
  hc.ops = 1 << 16;
  const std::size_t r = 512;
  const double bare = hold_ns_per_op_bare(hc, r);

  columns("mode,fsync,ns_per_op,overhead_x");
  row("bare,-,%.0f,1.00", bare);
  json_metric("hold_ns_per_op_bare", bare);
  struct PolicyCase {
    FsyncPolicy fsync;
    std::size_t interval;
  };
  const PolicyCase cases[] = {{FsyncPolicy::kNever, 0},
                              {FsyncPolicy::kOnCheckpoint, 64},
                              {FsyncPolicy::kEveryRecord, 64}};
  for (const auto& c : cases) {
    const double ns = hold_ns_per_op_durable(hc, r, c.fsync, c.interval);
    const char* name = persist::fsync_policy_name(c.fsync);
    row("wal,%s,%.0f,%.2f", name, ns, ns / bare);
    json_metric(std::string("hold_ns_per_op_wal_") + name, ns);
    json_metric(std::string("wal_overhead_x_") + name, ns / bare);
  }

  // --- checkpoint write + load latency vs heap size -----------------------
  columns("op,n,millis,mb");
  for (const std::size_t n : {std::size_t{1} << 14, std::size_t{1} << 16,
                              std::size_t{1} << 18}) {
    TempDir dir;
    HoldConfig init;
    init.n = n;
    PipelinedParallelHeap<U64> q(r);
    q.build(hold_initial(init));

    Timer tw;
    persist::write_checkpoint(dir.path, 1, persist::to_image(q),
                              FsyncPolicy::kNever);
    const double write_ms = tw.seconds() * 1e3;
    const auto ckpts = persist::list_checkpoints(dir.path);
    const double mb = ckpts.empty()
                          ? 0.0
                          : static_cast<double>(std::filesystem::file_size(
                                ckpts[0].second)) /
                                (1024.0 * 1024.0);

    Timer tl;
    persist::CheckpointImage<U64> img;
    std::uint64_t seq = 0;
    (void)persist::load_checkpoint(ckpts[0].second, img, seq);
    PipelinedParallelHeap<U64> q2(r);
    persist::from_image(q2, img);
    const double load_ms = tl.seconds() * 1e3;

    row("ckpt_write,%zu,%.2f,%.2f", n, write_ms, mb);
    row("ckpt_load,%zu,%.2f,%.2f", n, load_ms, mb);
    json_metric("ckpt_write_ms_n" + std::to_string(n), write_ms);
    json_metric("ckpt_load_ms_n" + std::to_string(n), load_ms);
  }

  // --- restart latency: checkpoint-dominated vs replay-dominated ----------
  columns("recovery,ops_in_wal,millis,replayed");
  for (const std::size_t interval : {std::size_t{0}, std::size_t{8}}) {
    TempDir dir;
    DurableOptions d;
    d.dir = dir.path;
    d.fsync = FsyncPolicy::kNever;
    d.checkpoint_interval = interval;
    d.checkpoint_on_open = false;
    {
      DH q(PipelinedParallelHeap<U64>(r), d);
      HoldConfig wc;
      wc.n = 1 << 14;
      wc.ops = 1 << 14;
      q.build(hold_initial(wc));
      batch_hold(q, wc, r);
    }
    Timer t;
    DH q(PipelinedParallelHeap<U64>(r), d);
    const double ms = t.seconds() * 1e3;
    const char* kind = interval == 0 ? "wal_replay" : "from_checkpoint";
    row("%s,%llu,%.2f,%llu", kind,
        static_cast<unsigned long long>(q.op_seq()), ms,
        static_cast<unsigned long long>(q.recovery_info().replayed));
    json_metric(std::string("recover_ms_") + kind, ms);
  }

  note("one run per point; rerun with scripts/collect_bench.sh for medians");
  return 0;
}
