// E17 — the scheduler service core: multi-tenant fairness, backpressure,
// and exactly-once delivery over the WAL (PR10's tentpole; DESIGN.md §15).
//
// Four phases, all in-process against SchedulerCore (the TCP edge is phd's
// job; scripts/service_smoke.sh drives that end — this bench measures the
// engine under it):
//
//  * exactness gate — a randomized schedule/cancel/poll workload against a
//    client-side oracle: every acked uncancelled job delivered EXACTLY once,
//    cancelled jobs never, ledger conservation at every checkpoint. Any
//    divergence exits nonzero (CI runs this binary as a gate).
//  * recovery gate — the same core reopened from its WAL mid-history: the
//    per-tenant ledger must replay bit-exactly (acked/delivered/cancelled/
//    requeued equal row for row) with the backlog intact.
//  * throughput — enqueue (schedule+group-commit), dispatch (poll cycles
//    over a due backlog), and a mixed 80/20 loop; ops/sec rows across
//    shard counts. Single-core wall numbers — the evidence is relative.
//  * fairness under overload — 64 Zipf-loaded tenants with weights cycling
//    1..4, admission deliberately saturated: delivered shares must track
//    weights (Jain index over delivered/weight, max relative error) while
//    kOverloaded sheds the excess instead of letting the backlog run away.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "svc/core.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using ph::svc::Admit;
using ph::svc::Job;
using ph::svc::SchedulerCore;
using ph::svc::SvcConfig;

std::atomic<std::uint64_t>& fake_now() {
  static std::atomic<std::uint64_t> now{1'000'000'000ull};
  return now;
}
std::uint64_t fake_clock() { return fake_now().load(std::memory_order_relaxed); }

struct Dir {
  std::string path;
  explicit Dir() : path(ph::persist::make_temp_dir("ph-bench-svc")) {}
  ~Dir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

SvcConfig base_cfg(const std::string& dir, std::size_t shards) {
  SvcConfig cfg;
  cfg.dir = dir;
  cfg.shards = shards;
  cfg.node_capacity = 64;
  cfg.producers = 4;
  cfg.clock = &fake_clock;
  return cfg;
}

/// Oracle-checked randomized workload; returns false on any exactness hole.
bool exactness_gate(std::size_t ops) {
  Dir dir;
  SchedulerCore core(base_cfg(dir.path, 4));
  ph::Xoshiro256 rng(0xE17);
  std::map<std::pair<std::uint32_t, std::uint64_t>, int> seen;
  std::set<std::pair<std::uint32_t, std::uint64_t>> cancelled;
  std::vector<Job> due;
  std::string why;
  for (std::uint64_t i = 0; i < ops; ++i) {
    const std::uint32_t t = static_cast<std::uint32_t>(rng() % 32);
    std::uint64_t deadline = 0;
    if (core.schedule(t, rng() % 20'000'000, i + 1, rng(), 0, &deadline) !=
        Admit::kOk) {
      return false;
    }
    seen[{t, i + 1}] = 0;
    if (rng() % 6 == 0) {
      if (core.cancel(t, deadline, i + 1) != Admit::kOk) return false;
      cancelled.insert({t, i + 1});
    }
    if (i % 16 == 15) {
      fake_now().fetch_add(5'000'000, std::memory_order_relaxed);
      due.clear();
      core.poll_due(1 + rng() % 32, due);
      for (const Job& j : due) {
        auto it = seen.find({j.tenant, j.id});
        if (it == seen.end() || ++it->second > 1) return false;
        if (cancelled.count({j.tenant, j.id}) != 0) return false;
      }
      if (i % 512 == 511 && !core.check_invariants(&why)) {
        std::fprintf(stderr, "bench_svc: %s\n", why.c_str());
        return false;
      }
    }
  }
  fake_now().fetch_add(3'600'000'000'000ull, std::memory_order_relaxed);
  for (int it2 = 0; it2 < 2000 && core.backlog() > 0; ++it2) {
    due.clear();
    core.poll_due(128, due);
    for (const Job& j : due) {
      auto it = seen.find({j.tenant, j.id});
      if (it == seen.end() || ++it->second > 1) return false;
    }
  }
  if (core.backlog() != 0) return false;
  for (const auto& [key, times] : seen) {
    const int expect = cancelled.count(key) != 0 ? 0 : 1;
    if (times != expect) return false;
  }
  const ph::svc::SvcStats st = core.stats();
  return st.acked == st.delivered + st.cancelled && core.check_invariants(&why);
}

/// WAL-replay ledger equality across a close/reopen mid-history.
bool recovery_gate(std::size_t ops) {
  Dir dir;
  std::vector<ph::svc::TenantStatRow> before;
  std::size_t backlog_before = 0;
  {
    SchedulerCore core(base_cfg(dir.path, 4));
    ph::Xoshiro256 rng(0x517);
    std::vector<Job> due;
    for (std::uint64_t i = 0; i < ops; ++i) {
      const std::uint32_t t = static_cast<std::uint32_t>(rng() % 16);
      std::uint64_t deadline = 0;
      if (core.schedule(t, rng() % 20'000'000, i + 1, 0, 0, &deadline) !=
          Admit::kOk) {
        return false;
      }
      if (rng() % 7 == 0 && core.cancel(t, deadline, i + 1) != Admit::kOk) {
        return false;
      }
      if (i % 64 == 63) {
        fake_now().fetch_add(5'000'000, std::memory_order_relaxed);
        due.clear();
        core.poll_due(32, due);
      }
    }
    core.commit();
    before = core.stat_rows();
    backlog_before = core.backlog();
  }
  SchedulerCore core(base_cfg(dir.path, 4));
  if (core.backlog() != backlog_before) return false;
  const auto after = core.stat_rows();
  if (after.size() != before.size()) return false;
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (after[i].tenant != before[i].tenant || after[i].acked != before[i].acked ||
        after[i].cancel_reqs != before[i].cancel_reqs ||
        after[i].delivered != before[i].delivered ||
        after[i].cancelled != before[i].cancelled ||
        after[i].requeued != before[i].requeued) {
      return false;
    }
  }
  std::string why;
  return core.check_invariants(&why);
}

struct Tput {
  double enqueue_mops = 0, dispatch_mops = 0, mixed_mops = 0;
};

Tput throughput(std::size_t shards, std::size_t ops) {
  Tput r;
  {  // enqueue: schedule + group commit every 64
    Dir dir;
    SchedulerCore core(base_cfg(dir.path, shards));
    ph::Xoshiro256 rng(1);
    ph::Timer t;
    for (std::uint64_t i = 0; i < ops; ++i) {
      core.schedule(static_cast<std::uint32_t>(i % 64), 1'000'000'000ull, i + 1,
                    0, 0);
      if (i % 64 == 63) core.commit();
    }
    core.commit();
    r.enqueue_mops = static_cast<double>(ops) / t.seconds() / 1e6;
  }
  {  // dispatch: drain a fully-due backlog through poll cycles
    Dir dir;
    SchedulerCore core(base_cfg(dir.path, shards));
    for (std::uint64_t i = 0; i < ops; ++i) {
      core.schedule(static_cast<std::uint32_t>(i % 64), 0, i + 1, 0, 0);
      if (i % 256 == 255) core.commit();
    }
    core.commit();
    fake_now().fetch_add(1'000'000'000ull, std::memory_order_relaxed);
    std::vector<Job> due;
    ph::Timer t;
    std::size_t delivered = 0;
    while (core.backlog() > 0) {
      due.clear();
      core.poll_due(1024, due);
      delivered += due.size();
    }
    r.dispatch_mops = static_cast<double>(delivered) / t.seconds() / 1e6;
  }
  {  // mixed: bursts of schedules with interleaved polls (the phd loop shape)
    Dir dir;
    SchedulerCore core(base_cfg(dir.path, shards));
    ph::Xoshiro256 rng(2);
    std::vector<Job> due;
    ph::Timer t;
    for (std::uint64_t i = 0; i < ops; ++i) {
      core.schedule(static_cast<std::uint32_t>(rng() % 64), rng() % 10'000'000,
                    i + 1, 0, 0);
      if (i % 64 == 63) {
        fake_now().fetch_add(2'000'000, std::memory_order_relaxed);
        due.clear();
        core.poll_due(64, due);
      }
    }
    r.mixed_mops = static_cast<double>(ops) / t.seconds() / 1e6;
  }
  return r;
}

struct Fairness {
  double jain = 0, max_rel_err = 0, shed_frac = 0;
  bool bounded = false;  ///< backlog respected the wall
};

constexpr std::size_t kTenants = 64;

double weight_of(std::uint32_t t) {
  return 1.0 + static_cast<double>(t % 4);
}

/// Jain's index over x_t = delivered_t / weight_t, restricted to `in`;
/// also the worst relative error vs the weighted fair share of the
/// restricted set's total.
std::pair<double, double> jain_weighted(
    const std::vector<std::uint64_t>& delivered,
    const std::vector<bool>& in) {
  double s1 = 0, s2 = 0, total = 0, wsum = 0, max_err = 0;
  std::size_t n = 0;
  for (std::size_t t = 0; t < kTenants; ++t) {
    if (!in[t]) continue;
    total += static_cast<double>(delivered[t]);
    wsum += weight_of(static_cast<std::uint32_t>(t));
  }
  for (std::size_t t = 0; t < kTenants; ++t) {
    if (!in[t]) continue;
    const double w = weight_of(static_cast<std::uint32_t>(t));
    const double x = static_cast<double>(delivered[t]) / w;
    s1 += x;
    s2 += x * x;
    ++n;
    const double expect = total * w / wsum;
    if (expect > 0) {
      const double err =
          std::abs(static_cast<double>(delivered[t]) - expect) / expect;
      if (err > max_err) max_err = err;
    }
  }
  const double jain = (n == 0 || s2 == 0)
                          ? 0.0
                          : (s1 * s1) / (static_cast<double>(n) * s2);
  return {jain, max_err};
}

/// Flood `floods` schedules (tenant chosen by `pick(i)`, deadlines
/// rank-major so the popped frontier interleaves tenants), then dispatch
/// `polls` scarce polls of `max` and count per-tenant deliveries.
struct OverloadRun {
  std::vector<std::uint64_t> delivered;
  double shed_frac = 0;
  bool bounded = false;
  std::vector<std::uint64_t> acked;  ///< admitted per tenant (demand proxy)
};

template <typename Pick>
OverloadRun overload_run(Pick pick, std::uint64_t floods, int polls,
                         std::size_t max) {
  OverloadRun r;
  Dir dir;
  SvcConfig cfg = base_cfg(dir.path, 4);
  cfg.weight = [](std::uint32_t t) { return weight_of(t); };
  cfg.overload_watermark = 1u << 12;
  cfg.max_backlog = 1u << 15;
  cfg.admit_rate = 200000.0;
  cfg.burst = 64.0;
  // DRR's weighted-share guarantee holds for tenants continuously backlogged
  // *inside the popped window* — in steady state, delivered mix necessarily
  // equals arrival mix (queues conserve mass), so the measurement uses a
  // wide window and few scarce polls: every tenant's due queue must outlast
  // all rounds, or the surplus credit leaks to whoever is left.
  cfg.poll_over_pull = 16;
  cfg.max_poll_batch = 1u << 14;
  SchedulerCore core(cfg);

  // Flood WAY past the watermark. Open loop: every refusal counts.
  std::uint64_t sent = 0, shed = 0, id = 0;
  std::vector<Job> due;
  for (std::uint64_t i = 0; i < floods; ++i) {
    const std::uint32_t t = pick(i);
    ++sent;
    const std::uint64_t rank = i / kTenants;
    if (core.schedule(t, rank * 1000, ++id, 0, 0) == Admit::kOverloaded) ++shed;
    if (i % 128 == 127) core.commit();
    fake_now().fetch_add(5'000, std::memory_order_relaxed);  // 5us per op
  }
  core.commit();
  r.shed_frac = static_cast<double>(shed) / static_cast<double>(sent);
  r.bounded = core.backlog() <= cfg.max_backlog;

  // Dispatch under poll scarcity — fairness is DRR's to deliver.
  fake_now().fetch_add(3'600'000'000'000ull, std::memory_order_relaxed);
  r.delivered.assign(kTenants, 0);
  for (int p = 0; p < polls; ++p) {
    due.clear();
    core.poll_due(max, due);
    for (const Job& j : due) ++r.delivered[j.tenant % kTenants];
  }
  r.acked.assign(kTenants, 0);
  for (const auto& row : core.stat_rows()) {
    if (row.tenant < kTenants) r.acked[row.tenant] = row.acked;
  }
  return r;
}

/// THE fairness gate: uniform demand (round-robin tenants), weights cycling
/// 1..4, admission saturated. Every tenant stays backlogged with jobs in
/// every popped window, so delivered shares must track weights — this is
/// the condition DRR's guarantee is stated under.
Fairness fairness_under_overload() {
  const OverloadRun r = overload_run(
      [](std::uint64_t i) { return static_cast<std::uint32_t>(i % kTenants); },
      60000, 6, 1024);
  Fairness f;
  f.shed_frac = r.shed_frac;
  f.bounded = r.bounded;
  std::vector<bool> in(kTenants, true);
  std::tie(f.jain, f.max_rel_err) = jain_weighted(r.delivered, in);
  return f;
}

/// Zipf-skewed demand: gates that shedding engages and the backlog stays
/// bounded; the Jain figure is computed over *supply-eligible* tenants only
/// (admitted demand at least twice the all-tenant fair share) — a tail
/// tenant with three jobs queued cannot absorb its weighted share, and no
/// scheduler could deliver it.
Fairness zipf_overload() {
  // Zipf CDF over tenants (s = 1: harmonic).
  std::vector<double> cdf(kTenants);
  double sum = 0;
  for (std::size_t i = 0; i < kTenants; ++i) {
    sum += 1.0 / static_cast<double>(i + 1);
    cdf[i] = sum;
  }
  ph::Xoshiro256 rng(0xFA1);
  auto pick = [&](std::uint64_t) {
    const double u = static_cast<double>(rng() % 100000) / 100000.0;
    for (std::size_t i = 0; i < kTenants; ++i) {
      if (u * sum <= cdf[i]) return static_cast<std::uint32_t>(i);
    }
    return static_cast<std::uint32_t>(kTenants - 1);
  };
  const OverloadRun r = overload_run(pick, 60000, 6, 1024);
  Fairness f;
  f.shed_frac = r.shed_frac;
  f.bounded = r.bounded;
  double total_delivered = 0, wsum_all = 0;
  for (std::size_t t = 0; t < kTenants; ++t) {
    total_delivered += static_cast<double>(r.delivered[t]);
    wsum_all += weight_of(static_cast<std::uint32_t>(t));
  }
  std::vector<bool> eligible(kTenants, false);
  for (std::size_t t = 0; t < kTenants; ++t) {
    const double fair =
        total_delivered * weight_of(static_cast<std::uint32_t>(t)) / wsum_all;
    eligible[t] = static_cast<double>(r.acked[t]) >= 2.0 * fair;
  }
  std::tie(f.jain, f.max_rel_err) = jain_weighted(r.delivered, eligible);
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  ph::bench::parse_args(argc, argv);
  using ph::bench::header;
  using ph::bench::json_metric;
  using ph::bench::note;
  using ph::bench::row;

  std::size_t ops = 40000;
  std::size_t gate_ops = 4000;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--ops" && i + 1 < argc) {
      ops = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::string(argv[i]) == "--gate-ops" && i + 1 < argc) {
      gate_ops = std::strtoull(argv[++i], nullptr, 10);
    }
  }

  header("E17 scheduler service: fairness, backpressure, exactly-once delivery",
         "multi-tenant service semantics over DurableHeap<ShardedHeap> — "
         "delivered shares track weights under overload, acked jobs survive "
         "replay, nothing is lost or duplicated");

  const bool exact = exactness_gate(gate_ops);
  row("gate,exactness,%d", exact ? 1 : 0);
  json_metric("svc_exactness_ok", exact ? 1 : 0);
  const bool recovered = recovery_gate(gate_ops);
  row("gate,recovery,%d", recovered ? 1 : 0);
  json_metric("svc_recovery_ok", recovered ? 1 : 0);

  ph::bench::columns("phase,shards,enqueue_mops,dispatch_mops,mixed_mops");
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    const Tput t = throughput(shards, ops);
    row("tput,%zu,%.3f,%.3f,%.3f", shards, t.enqueue_mops, t.dispatch_mops,
        t.mixed_mops);
    json_metric("svc_enqueue_mops_s" + std::to_string(shards), t.enqueue_mops);
    json_metric("svc_dispatch_mops_s" + std::to_string(shards), t.dispatch_mops);
    json_metric("svc_mixed_mops_s" + std::to_string(shards), t.mixed_mops);
  }

  const Fairness f = fairness_under_overload();
  row("fairness,64,%.4f,%.4f,%.3f,%d", f.jain, f.max_rel_err, f.shed_frac,
      f.bounded ? 1 : 0);
  json_metric("svc_fairness_jain", f.jain);
  json_metric("svc_fairness_max_rel_err", f.max_rel_err);

  const Fairness z = zipf_overload();
  row("zipf,64,%.4f,%.4f,%.3f,%d", z.jain, z.max_rel_err, z.shed_frac,
      z.bounded ? 1 : 0);
  json_metric("svc_zipf_jain_eligible", z.jain);
  json_metric("svc_overload_shed_frac", z.shed_frac);
  json_metric("svc_backlog_bounded", z.bounded ? 1 : 0);

  note("gate rows are correctness contracts (0 fails the binary); fairness "
       "row: uniform-demand overload — jain over delivered/weight across all "
       "64 tenants, max relative error vs weighted fair share; zipf row: "
       "skewed demand — jain over supply-eligible tenants, shed fraction, "
       "backlog bounded by the wall");

  if (!exact || !recovered) {
    std::fprintf(stderr, "bench_svc: FAIL — correctness gate\n");
    return 1;
  }
  if (f.jain < 0.90 || !f.bounded || z.shed_frac <= 0.0 || !z.bounded) {
    std::fprintf(stderr,
                 "bench_svc: FAIL — fairness/backpressure gate (jain=%.4f "
                 "bounded=%d/%d zipf_shed=%.3f)\n",
                 f.jain, f.bounded ? 1 : 0, z.bounded ? 1 : 0, z.shed_frac);
    return 1;
  }
  return 0;
}
