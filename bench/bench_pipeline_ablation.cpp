// E9 — design ablation: pipelined vs synchronous maintenance.
//
// Claim (the reason the paper pipelines): both variants do the same total
// merge work per cycle in steady state, but the synchronous variant performs
// all of it *inside* the cycle (critical path O(r log n)), while the
// pipelined variant performs only the root work plus one level-service per
// half-step (critical path O(r)), spreading the rest across later cycles.
// We report per-cycle wall time and the work counters at growing n: the
// synchronous per-cycle cost grows with log n, the pipelined one stays flat.
#include <cstdint>
#include <vector>

#include "bench_common.hpp"
#include "core/parallel_heap.hpp"
#include "core/pipelined_heap.hpp"
#include "util/timer.hpp"
#include "workloads/hold_model.hpp"

namespace {
constexpr std::size_t kR = 512;
constexpr std::uint64_t kOps = 1 << 20;
}  // namespace

int main(int argc, char** argv) {
  ph::bench::parse_args(argc, argv);
  using namespace ph;
  using namespace ph::bench;

  header("E9 ablation: synchronous vs pipelined maintenance",
         "claim: equal total work; pipelined flattens the per-cycle critical "
         "path from O(r log n) to O(r)");
  columns("n,sync_us_per_cycle,pipe_us_per_cycle,sync_merged_per_cycle,"
          "pipe_merged_per_cycle,pipe_inflight_peak");

  for (std::size_t n = 1 << 12; n <= (1u << 22); n <<= 2) {
    HoldConfig cfg;
    cfg.n = n;
    cfg.ops = kOps;

    ParallelHeap<std::uint64_t> sync(kR);
    sync.build(hold_initial(cfg));
    sync.reset_stats();
    Timer ts;
    batch_hold(sync, cfg, kR);
    const double sync_secs = ts.seconds();

    PipelinedParallelHeap<std::uint64_t> pipe(kR);
    pipe.build(hold_initial(cfg));
    pipe.reset_stats();
    Timer tp;
    batch_hold(pipe, cfg, kR);
    const double pipe_secs = tp.seconds();

    const auto& ss = sync.stats();
    const auto& sp = pipe.stats();
    row("%zu,%.2f,%.2f,%.0f,%.0f,%llu", n,
        sync_secs / static_cast<double>(ss.cycles) * 1e6,
        pipe_secs / static_cast<double>(sp.cycles) * 1e6,
        static_cast<double>(ss.items_merged) / static_cast<double>(ss.cycles),
        static_cast<double>(sp.items_merged) / static_cast<double>(sp.cycles),
        static_cast<unsigned long long>(pipe.pipeline_stats().max_inflight));
  }
  note("in a threaded engine the pipelined half-steps also overlap the think "
       "phase, which the synchronous variant cannot do at all");
  return 0;
}
