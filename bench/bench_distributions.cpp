// E11 — priority-increment distribution sensitivity (classic PQ methodology;
// the lineage cites Brown'88 and the concurrent-queue studies that show the
// calendar queue's O(1) behaviour is distribution-dependent).
//
// Claim: the calendar queue's advantage collapses on clustered/bimodal
// distributions (bucket skew and width mis-estimation), while the heaps —
// including the parallel heap — are distribution-insensitive.
#include <cstdint>
#include <vector>

#include "baselines/binary_heap.hpp"
#include "baselines/calendar_queue.hpp"
#include "bench_common.hpp"
#include "core/parallel_heap.hpp"
#include "util/timer.hpp"
#include "workloads/hold_model.hpp"

namespace {

struct FixedKey {
  double operator()(std::uint64_t v) const { return ph::from_fixed(v); }
};

}  // namespace

int main(int argc, char** argv) {
  ph::bench::parse_args(argc, argv);
  using namespace ph;
  using namespace ph::bench;

  header("E11 distribution sensitivity (hold model, n=2^17)",
         "claim: calendar queue is distribution-sensitive; heaps are not");
  columns("distribution,binary_ns,calendar_ns,parheap_ns");

  for (Dist d : {Dist::kExponential, Dist::kUniform, Dist::kBimodal,
                 Dist::kTriangular, Dist::kCamel}) {
    HoldConfig cfg;
    cfg.n = 1 << 17;
    cfg.ops = 1 << 18;
    cfg.dist = d;

    BinaryHeap<std::uint64_t> bh;
    for (auto v : hold_initial(cfg)) bh.push(v);
    Timer tb;
    scalar_hold(bh, cfg);
    const double bin = tb.seconds() / static_cast<double>(cfg.ops) * 1e9;

    CalendarQueue<std::uint64_t, FixedKey> cq;
    for (auto v : hold_initial(cfg)) cq.push(v);
    Timer tc;
    scalar_hold(cq, cfg);
    const double cal = tc.seconds() / static_cast<double>(cfg.ops) * 1e9;

    ParallelHeap<std::uint64_t> php(512);
    php.build(hold_initial(cfg));
    Timer tp;
    const HoldResult pres = batch_hold(php, cfg, 512);
    const double par = tp.seconds() / static_cast<double>(pres.ops) * 1e9;

    row("%s,%.0f,%.0f,%.0f", dist_name(d), bin, cal, par);
  }
  return 0;
}
