// E6 — classic hold curves: per-op cost vs queue size for each structure
// (the standard presentation from the priority-queue literature the lineage
// builds on).
//
// Claim shapes: heaps grow ~logarithmically in n; the calendar queue stays
// ~flat on the exponential distribution; the batch-driven parallel heap's
// per-item cost stays within a small factor of the binary heap while doing
// its work in r-item batches.
#include <cstdint>
#include <cstring>
#include <vector>

#include "baselines/binary_heap.hpp"
#include "baselines/calendar_queue.hpp"
#include "baselines/dary_heap.hpp"
#include "baselines/pairing_heap.hpp"
#include "baselines/skew_heap.hpp"
#include "bench_common.hpp"
#include "core/parallel_heap.hpp"
#include "core/pipelined_heap.hpp"
#include "util/timer.hpp"
#include "workloads/hold_model.hpp"

namespace {

struct FixedKey {
  double operator()(std::uint64_t v) const { return ph::from_fixed(v); }
};

template <typename Q>
double time_scalar(std::size_t n, std::uint64_t ops) {
  ph::HoldConfig cfg;
  cfg.n = n;
  cfg.ops = ops;
  Q q;
  for (auto v : ph::hold_initial(cfg)) q.push(v);
  ph::Timer t;
  ph::scalar_hold(q, cfg);
  return t.seconds() / static_cast<double>(ops) * 1e9;  // ns/op
}

template <typename Q>
double time_batch(Q& q, std::size_t n, std::uint64_t ops, std::size_t r) {
  ph::HoldConfig cfg;
  cfg.n = n;
  cfg.ops = ops;
  q.build(ph::hold_initial(cfg));
  ph::Timer t;
  const ph::HoldResult res = ph::batch_hold(q, cfg, r);
  return t.seconds() / static_cast<double>(res.ops) * 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  ph::bench::parse_args(argc, argv);
  using namespace ph;
  using namespace ph::bench;

  // --quick: one mid-size point instead of the full curve. This is what the
  // CI telemetry-overhead gate runs twice (telemetry ON vs OFF build) — the
  // full sweep would dominate the job for no extra signal.
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  header("E6 hold curves: ns per hold op vs queue size",
         "claim: heaps ~log n; calendar ~flat; parallel heap within a small "
         "factor of binary heap at scale");
  columns("n,binary,dary4,skew,pairing,calendar,parheap_r512,pipelined_r512");

  const std::size_t n_lo = quick ? (1u << 14) : (1u << 8);
  const std::size_t n_hi = quick ? (1u << 14) : (1u << 21);
  for (std::size_t n = n_lo; n <= n_hi; n <<= 3) {
    const std::uint64_t ops = quick ? (1 << 16) : (1 << 18);
    const double bin = time_scalar<BinaryHeap<std::uint64_t>>(n, ops);
    const double d4 = time_scalar<DaryHeap<std::uint64_t, 4>>(n, ops);
    const double skew = time_scalar<SkewHeap<std::uint64_t>>(n, ops);
    const double pair = time_scalar<PairingHeap<std::uint64_t>>(n, ops);
    const double cal = time_scalar<CalendarQueue<std::uint64_t, FixedKey>>(n, ops);
    ParallelHeap<std::uint64_t> php(512);
    const double par = time_batch(php, n, ops, 512);
    PipelinedParallelHeap<std::uint64_t> pip(512);
    const double pipe = time_batch(pip, n, ops, 512);
    row("%zu,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f", n, bin, d4, skew, pair, cal,
        par, pipe);
    json_metric("binary_ns_n" + std::to_string(n), bin);
    json_metric("pipelined_ns_n" + std::to_string(n), pipe);
  }
  return 0;
}
