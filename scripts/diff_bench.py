#!/usr/bin/env python3
"""Diff two bench trajectory files (BENCH_pr<N>.json).

Compares the per-binary bench scalars and telemetry counters between a
baseline trajectory file and a new one, printing a delta table so a PR's
bench run can be eyeballed against the previous PR's committed file.

    scripts/diff_bench.py BENCH_pr3.json BENCH_pr4.json
    scripts/diff_bench.py --baseline-latest BENCH_pr4.json
    scripts/diff_bench.py --fail-over 25 old.json new.json

By default the diff is report-only: bench timings on shared CI runners are
noisy, so regressions are surfaced, not enforced. --fail-over PCT turns any
scalar whose |delta| exceeds PCT percent into a nonzero exit (counters whose
baseline is 0 are reported as "new" and never fail). Telemetry *counters*
(deterministic work counts: items, procs, cycles) get the same threshold —
those SHOULD be reproducible, so an unexplained counter jump is signal even
when timings wobble.
"""

import argparse
import glob
import json
import os
import re
import sys


def load(path):
    with open(path) as fh:
        doc = json.load(fh)
    if "benches" not in doc:
        sys.exit(f"diff_bench: {path}: not a trajectory file (no 'benches' key)")
    return doc


def load_baseline(path):
    """Baseline-side load degrades instead of failing: a PR that introduces a
    new schema, new binaries, or new counters must not be failed by the OLD
    file's shape. Returns None (diff skipped, exit 0) when the baseline is
    missing, unparsable, or schema-less; the NEW side stays strict."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except OSError as e:
        print(f"diff_bench: WARNING: baseline {path}: {e.strerror or e}; "
              "skipping diff (report-only)")
        return None
    except json.JSONDecodeError as e:
        print(f"diff_bench: WARNING: baseline {path}: unparsable JSON ({e}); "
              "skipping diff (report-only)")
        return None
    if "benches" not in doc:
        print(f"diff_bench: WARNING: baseline {path}: no 'benches' key "
              "(pre-trajectory schema); skipping diff (report-only)")
        return None
    return doc


def latest_trajectory(root, exclude):
    """Highest-numbered BENCH_pr<N>.json under root, excluding `exclude`."""
    best, best_n = None, -1
    for path in glob.glob(os.path.join(root, "BENCH_pr*.json")):
        if os.path.abspath(path) == os.path.abspath(exclude):
            continue
        m = re.fullmatch(r"BENCH_pr(\d+)\.json", os.path.basename(path))
        if m and int(m.group(1)) > best_n:
            best, best_n = path, int(m.group(1))
    return best


def provenance_of(doc):
    """First provenance block found among the file's bench documents (all
    binaries in one trajectory run share a build, so any one is
    representative). None for pre-provenance schemas."""
    for bench_doc in doc.get("benches", {}).values():
        prov = bench_doc.get("provenance")
        if isinstance(prov, dict):
            return prov
    return None


def print_provenance_diff(old_doc, new_doc):
    """Surface build-config skew between the two runs: a timing delta against
    a baseline built with different flags / telemetry state / hardware is not
    a regression signal, so say so before the delta table."""
    old_p, new_p = provenance_of(old_doc), provenance_of(new_doc)
    if old_p is None or new_p is None:
        if new_p is not None:
            print("diff_bench: note: baseline predates provenance capture; "
                  "build-config comparability unknown")
        return
    keys = sorted(set(old_p) | set(new_p))
    diffs = [(k, old_p.get(k, "<absent>"), new_p.get(k, "<absent>"))
             for k in keys if old_p.get(k) != new_p.get(k)]
    if not diffs:
        return
    print("diff_bench: WARNING: build/host provenance differs — timing deltas "
          "below may reflect the build, not the code:")
    for k, o, n in diffs:
        print(f"  provenance.{k}: {o!r} -> {n!r}")


def scalars(bench_doc):
    """Flatten one binary's document into {metric_name: number}."""
    out = {}
    for k, v in bench_doc.get("bench", {}).items():
        if isinstance(v, (int, float)):
            out[f"bench.{k}"] = float(v)
    for k, v in bench_doc.get("telemetry", {}).get("counters", {}).items():
        if isinstance(v, (int, float)):
            out[f"counter.{k}"] = float(v)
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", nargs="?", help="baseline BENCH_pr<N>.json")
    ap.add_argument("new", help="new BENCH_pr<N>.json")
    ap.add_argument("--baseline-latest", action="store_true",
                    help="use the highest-numbered committed BENCH_pr*.json "
                         "(other than NEW) as the baseline")
    ap.add_argument("--fail-over", type=float, metavar="PCT", default=None,
                    help="exit 1 if any scalar moved more than PCT percent")
    ap.add_argument("--min-delta", type=float, metavar="PCT", default=1.0,
                    help="hide rows that moved less than PCT percent (default 1)")
    args = ap.parse_args()

    if args.baseline_latest:
        root = os.path.dirname(os.path.abspath(args.new)) or "."
        args.baseline = latest_trajectory(root, args.new)
        if args.baseline is None:
            print("diff_bench: no prior BENCH_pr*.json found; nothing to diff")
            return 0
    elif args.baseline is None:
        ap.error("baseline file required (or pass --baseline-latest)")

    new_doc = load(args.new)
    old_doc = load_baseline(args.baseline)
    if old_doc is None:
        return 0
    print(f"diff_bench: pr{old_doc.get('pr', '?')} -> pr{new_doc.get('pr', '?')} "
          f"({args.baseline} -> {args.new})")
    print_provenance_diff(old_doc, new_doc)

    old_b, new_b = old_doc["benches"], new_doc["benches"]
    for name in sorted(set(old_b) - set(new_b)):
        print(f"  {name}: REMOVED")
    for name in sorted(set(new_b) - set(old_b)):
        print(f"  {name}: NEW")

    worst = 0.0
    rows = hidden = 0
    for name in sorted(set(old_b) & set(new_b)):
        so, sn = scalars(old_b[name]), scalars(new_b[name])
        for metric in sorted(set(so) & set(sn)):
            o, n = so[metric], sn[metric]
            if o == n:
                continue
            if o == 0:
                print(f"  {name}/{metric}: 0 -> {n:g} (new)")
                continue
            pct = 100.0 * (n - o) / abs(o)
            worst = max(worst, abs(pct))
            if abs(pct) < args.min_delta:
                hidden += 1
                continue
            rows += 1
            print(f"  {name}/{metric}: {o:g} -> {n:g}  ({pct:+.1f}%)")
        for metric in sorted(set(sn) - set(so)):
            print(f"  {name}/{metric}: (new metric) {sn[metric]:g}")

    print(f"diff_bench: {rows} deltas shown, {hidden} below {args.min_delta}% "
          f"hidden, worst |delta| {worst:.1f}%")
    if args.fail_over is not None and worst > args.fail_over:
        print(f"diff_bench: FAIL — worst delta {worst:.1f}% exceeds "
              f"--fail-over {args.fail_over:g}%")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
