#!/usr/bin/env bash
# Collects the bench suite's machine-readable output into one trajectory
# file, BENCH_pr<N>.json, at the repo root — automating what used to be a
# manual step (ROADMAP: "bench trajectory files are still produced
# manually"). Each bench binary is run once with --json; the per-binary
# documents (bench scalars + merged telemetry) are merged keyed by binary
# name, so successive PRs' files diff cleanly.
#
# usage: scripts/collect_bench.sh <pr-number> [build-dir]
#   <pr-number>  suffix of the output file, e.g. 3 -> BENCH_pr3.json
#   [build-dir]  build tree containing bench/ (default: build)
#
# environment:
#   BENCH_ONLY=bench_sharded,bench_hold   comma-separated subset to run
set -euo pipefail

PR="${1:?usage: collect_bench.sh <pr-number> [build-dir]}"
BUILD="${2:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BENCH_DIR="$ROOT/$BUILD/bench"
if [ ! -d "$BENCH_DIR" ]; then
  echo "collect_bench: no such directory $BENCH_DIR (build the tree first)" >&2
  exit 1
fi

OUT="$ROOT/BENCH_pr${PR}.json"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

only="${BENCH_ONLY:-}"
ran=0
for bin in "$BENCH_DIR"/bench_*; do
  [ -x "$bin" ] && [ -f "$bin" ] || continue
  name="$(basename "$bin")"
  if [ -n "$only" ]; then
    case ",$only," in
      *",$name,"*) ;;
      *) continue ;;
    esac
  fi
  echo "collect_bench: running $name"
  "$bin" --json "$TMP/$name.json" > "$TMP/$name.out"
  ran=$((ran + 1))
done
if [ "$ran" -eq 0 ]; then
  echo "collect_bench: no bench binaries matched (BENCH_ONLY=$only)" >&2
  exit 1
fi

python3 - "$PR" "$TMP" "$OUT" <<'EOF'
import json
import os
import sys

pr, tmp, out = sys.argv[1], sys.argv[2], sys.argv[3]
benches = {}
for f in sorted(os.listdir(tmp)):
    if f.endswith(".json"):
        with open(os.path.join(tmp, f)) as fh:
            benches[f[:-5]] = json.load(fh)
doc = {"pr": int(pr), "benches": benches}
with open(out, "w") as fh:
    json.dump(doc, fh, indent=1, sort_keys=True)
    fh.write("\n")
print(f"collect_bench: wrote {out} ({len(benches)} benches)")
EOF
