#!/usr/bin/env bash
# CI smoke for the black-box flight recorder: run the end-to-end drill
# (ph_stress --flightrec-smoke: a fail-point trips a shard into quarantine,
# then a real watchdog stall verdict persists the event ring), then assert
# the dump file exists, parses as JSON, and holds the causal chain in order:
# failpoint_fire(shard_cycle) -> quarantine -> watchdog_stall ->
# watchdog_report.
#
# usage: scripts/flightrec_smoke.sh [build-dir]   (default: build-release)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-release}"
STRESS="$BUILD/tools/ph_stress"
if [ ! -x "$STRESS" ]; then
  echo "flightrec_smoke: $STRESS missing (build the tree first)" >&2
  exit 2
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

out="$(PH_FLIGHTREC_DIR="$TMP" "$STRESS" --flightrec-smoke)"
echo "$out"
dump="${out#flightrec-smoke: dump }"
if [ ! -f "$dump" ]; then
  echo "flightrec_smoke: reported dump '$dump' does not exist" >&2
  exit 1
fi

python3 - "$dump" <<'EOF'
import json
import sys

path = sys.argv[1]
with open(path) as fh:
    doc = json.load(fh)  # must parse: the dump is a single JSON document

for key in ("reason", "pid", "total_events", "dropped_events", "events"):
    assert key in doc, f"dump missing key {key!r}"
assert doc["reason"] == "watchdog-stall", doc["reason"]
events = doc["events"]
assert events, "dump has no events"

def first_index(pred):
    return next((i for i, e in enumerate(events) if pred(e)), None)

fire = first_index(lambda e: e["kind"] == "failpoint_fire"
                   and e.get("a_name") == "shard_cycle")
quar = first_index(lambda e: e["kind"] == "quarantine")
stall = first_index(lambda e: e["kind"] == "watchdog_stall")
report = first_index(lambda e: e["kind"] == "watchdog_report")
for name, idx in [("failpoint_fire", fire), ("quarantine", quar),
                  ("watchdog_stall", stall), ("watchdog_report", report)]:
    assert idx is not None, f"dump missing {name} event"
assert fire < quar < stall < report, (
    f"causal order broken: fire@{fire} quarantine@{quar} "
    f"stall@{stall} report@{report}")
print(f"flightrec_smoke: OK — {len(events)} events, causal chain "
      f"fire@{fire} < quarantine@{quar} < stall@{stall} < report@{report}")
EOF
