#!/usr/bin/env bash
# Pre-merge gate: build and test the release preset, then re-run the
# concurrency-sensitive tests under thread sanitizer.
#
# Usage: scripts/check.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc)}

echo "== release: configure + build =="
cmake --preset release >/dev/null
cmake --build --preset release -j "$JOBS"

echo "== release: ctest =="
ctest --preset release -j "$JOBS" "$@"

echo "== tsan: configure + build =="
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "$JOBS"

echo "== tsan: pipeline + telemetry concurrency tests =="
ctest --preset tsan "$@" -R \
  'PipelineParallel|ConcurrentCounterMergeIsExact|CollectWhileWritersRunIsMonotone'

echo "check.sh: all green"
