#!/usr/bin/env bash
# Pre-merge gate: build and test the release preset, run the bounded
# differential stress soak (including the proof that the harness detects the
# re-injected pipelined delete-update bug) and the fail-point fault matrix,
# then re-run the concurrency-sensitive tests and the fault matrix under
# thread sanitizer.
#
# Usage: scripts/check.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc)}
STRESS_BUDGET=${STRESS_BUDGET:-60}

echo "== release: configure + build =="
cmake --preset release >/dev/null
cmake --build --preset release -j "$JOBS"

echo "== release: ctest =="
ctest --preset release -j "$JOBS" "$@"

echo "== release: differential stress soak (budget ${STRESS_BUDGET}s) =="
REPRO_DIR=$(mktemp -d)
trap 'rm -rf "$REPRO_DIR"' EXIT
build-release/tools/ph_stress --budget "$STRESS_BUDGET" --repro-dir "$REPRO_DIR"

echo "== release: fault-detection proof (pipelined_heap_faulty must be caught) =="
build-release/tools/ph_stress --structures pipelined_heap_faulty \
  --rounds 2 --must-fail --repro-dir "$REPRO_DIR" 2>/dev/null
for repro in "$REPRO_DIR"/pipelined_heap_faulty_*.repro; do
  [ -e "$repro" ] || { echo "check.sh: no reproducer written" >&2; exit 1; }
  echo "== release: replaying reproducer $repro =="
  build-release/tools/ph_repro "$repro" --expect-fail
done

echo "== release: fault matrix (every fail-point site fires and recovers) =="
build-release/tools/ph_stress --failpoint

echo "== release: crash-recovery sweep (kill -9 at every persist site) =="
build-release/tools/ph_crash --seeds 8

echo "== tsan: configure + build =="
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "$JOBS"

echo "== tsan: pipeline + telemetry + substrate concurrency tests =="
ctest --preset tsan "$@" -R \
  'PipelineParallel|ConcurrentCounterMergeIsExact|CollectWhileWritersRunIsMonotone|SchedStress'

echo "== tsan: fault matrix =="
build-tsan/tools/ph_stress --failpoint

echo "check.sh: all green"
