#!/usr/bin/env bash
# CI gate: the always-on telemetry hooks must stay cheap. Runs bench_hold
# --quick in a telemetry-ON release tree and a telemetry-OFF (-DPH_TELEMETRY=
# OFF) release tree and compares the per-op timings; fails if the ON build is
# slower by more than the threshold.
#
# Noise handling for 1-core shared runners: each build is run REPS times and
# the per-metric MINIMUM is compared (the minimum is the least contaminated
# estimate of the true cost), and a delta only fails if it exceeds BOTH the
# relative threshold and an absolute ns/op floor — a 40% blowup of a 10ns
# metric is jitter, not regression.
#
# usage: scripts/telemetry_overhead.sh [threshold_pct] [floor_ns] [reps]
#   threshold_pct  max allowed (on-off)/off percent     (default 35)
#   floor_ns       min absolute ns/op delta to count    (default 40)
#   reps           runs per build, min taken            (default 3)
#
# environment:
#   ON_BUILD / OFF_BUILD   override the build trees
#                          (default build-release / build-release-notel)
set -euo pipefail

THRESHOLD="${1:-35}"
FLOOR_NS="${2:-40}"
REPS="${3:-3}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
ON_BUILD="${ON_BUILD:-$ROOT/build-release}"
OFF_BUILD="${OFF_BUILD:-$ROOT/build-release-notel}"

for build in "$ON_BUILD" "$OFF_BUILD"; do
  if [ ! -x "$build/bench/bench_hold" ]; then
    echo "telemetry_overhead: $build/bench/bench_hold missing — build the" \
         "release and release-notel presets first" >&2
    exit 2
  fi
done

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

run_reps() {  # $1=build dir  $2=tag
  local i
  for i in $(seq 1 "$REPS"); do
    "$1/bench/bench_hold" --quick --json "$TMP/$2-$i.json" > /dev/null
  done
}

echo "telemetry_overhead: ${REPS}x bench_hold --quick per build"
run_reps "$ON_BUILD" on
run_reps "$OFF_BUILD" off

python3 - "$TMP" "$THRESHOLD" "$FLOOR_NS" <<'EOF'
import glob
import json
import os
import sys

tmp, threshold, floor_ns = sys.argv[1], float(sys.argv[2]), float(sys.argv[3])


def best(tag):
    """Per-metric minimum across the repetitions of one build."""
    out = {}
    for path in glob.glob(os.path.join(tmp, f"{tag}-*.json")):
        with open(path) as fh:
            bench = json.load(fh).get("bench", {})
        for k, v in bench.items():
            if isinstance(v, (int, float)):
                out[k] = min(out.get(k, float("inf")), float(v))
    return out


on, off = best("on"), best("off")
shared = sorted(set(on) & set(off))
if not shared:
    sys.exit("telemetry_overhead: no shared bench metrics between builds")

failed = False
for k in shared:
    delta_ns = on[k] - off[k]
    pct = 100.0 * delta_ns / off[k] if off[k] else 0.0
    verdict = "ok"
    if pct > threshold and delta_ns > floor_ns:
        verdict = "FAIL"
        failed = True
    print(f"  {k}: off={off[k]:.0f}ns on={on[k]:.0f}ns "
          f"delta={delta_ns:+.0f}ns ({pct:+.1f}%)  {verdict}")

if failed:
    print(f"telemetry_overhead: FAIL — telemetry costs more than "
          f"{threshold:g}% (and more than {floor_ns:g}ns/op) somewhere above")
    sys.exit(1)
print(f"telemetry_overhead: OK — overhead within {threshold:g}% "
      f"(or under the {floor_ns:g}ns/op noise floor)")
EOF
