#!/usr/bin/env bash
# End-to-end crash smoke for the scheduler service (phd): start the daemon,
# drive it with ph_loadgen under tenant skew, kill -9 mid-flight, restart on
# the same state dir, drain the survivor, and differentially check the two
# runs' ledgers — every delivered job must have been scheduled, nothing in
# the committed set may vanish or double-deliver, cancels and the in-flight
# reply-loss window are honoured as at-most-once.
#
# usage: scripts/service_smoke.sh [build-dir]   (default: build-release)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-release}"
PHD="$BUILD/tools/phd"
LOADGEN="$BUILD/tools/ph_loadgen"
for bin in "$PHD" "$LOADGEN"; do
  if [ ! -x "$bin" ]; then
    echo "service_smoke: $bin missing (build the tree first)" >&2
    exit 2
  fi
done

TMP="$(mktemp -d)"
PHD_PID=""
cleanup() {
  [ -n "$PHD_PID" ] && kill -9 "$PHD_PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

PORT=$((20000 + RANDOM % 20000))
STATE="$TMP/state"

start_phd() {
  # Watermark + admit rate sized well below the offered load so the
  # admission gate genuinely engages (phase 1 asserts shed > 0).
  "$PHD" --dir "$STATE" --port "$PORT" --shards 4 \
    --overload-watermark 1024 --max-backlog 65536 \
    --admit-rate 30000 > "$TMP/phd_$1.log" 2>&1 &
  PHD_PID=$!
  # Wait for the listen line (the daemon prints it once bound).
  for _ in $(seq 1 100); do
    grep -q "listening" "$TMP/phd_$1.log" 2>/dev/null && return 0
    kill -0 "$PHD_PID" 2>/dev/null || break
    sleep 0.1
  done
  echo "service_smoke: phd ($1) failed to start" >&2
  cat "$TMP/phd_$1.log" >&2
  exit 1
}

echo "service_smoke: phase 1 — load + kill -9"
start_phd run1
"$LOADGEN" --port "$PORT" --tenants 64 --zipf 1.1 --rate 120000 \
  --seconds 4 --cancel-frac 0.05 --seed 7 --json \
  --ledger "$TMP/ledger1" > "$TMP/loadgen1.json"
cat "$TMP/loadgen1.json"
python3 -c '
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["shed"] > 0, "overload never engaged (shed == 0)"
assert doc["acked"] > 0, "nothing was admitted"
' "$TMP/loadgen1.json"
kill -9 "$PHD_PID"
wait "$PHD_PID" 2>/dev/null || true
PHD_PID=""

echo "service_smoke: phase 2 — restart on the same WAL, drain, shutdown"
start_phd run2
grep -E "recovered" "$TMP/phd_run2.log" || true
"$LOADGEN" --port "$PORT" --tenants 64 --seed 8 --json --verify --shutdown \
  --ledger "$TMP/ledger2" > "$TMP/loadgen2.json"
cat "$TMP/loadgen2.json"
wait "$PHD_PID" 2>/dev/null || true
PHD_PID=""
grep -q '"server_alive": *true' "$TMP/loadgen2.json" || {
  echo "service_smoke: survivor daemon died during drain" >&2
  exit 1
}

echo "service_smoke: phase 3 — differential ledger check"
python3 - "$TMP/ledger1" "$TMP/ledger2" <<'EOF'
import sys
from collections import Counter

# Ledger grammar (one event per line):
#   S tenant id deadline   acked schedule (durably committed by the server)
#   C tenant id            cancel SENT (may or may not have landed)
#   D tenant id            delivery observed by the client
#   U tenant id            sent but never acked (durability unknown)
#   W outstanding batch    poll replies lost at exit x max jobs per reply
sched, cancelled, unacked = set(), set(), set()
delivered = Counter()
window = 0
for path in sys.argv[1:3]:
    with open(path) as fh:
        for line in fh:
            parts = line.split()
            if not parts:
                continue
            tag = parts[0]
            key = (int(parts[1]), int(parts[2])) if tag in "SCDU" else None
            if tag == "S":
                sched.add(key)
            elif tag == "C":
                cancelled.add(key)
            elif tag == "D":
                delivered[key] += 1
            elif tag == "U":
                unacked.add(key)
            elif tag == "W":
                window += int(parts[1]) * int(parts[2])

known = sched | unacked
fabricated = [k for k in delivered if k not in known]
assert not fabricated, f"delivered jobs never scheduled: {fabricated[:5]}"

doubles = [k for k, n in delivered.items() if n > 1]
assert not doubles, f"jobs delivered more than once: {doubles[:5]}"

# Every acked, uncancelled job must be delivered exactly once across both
# runs — except up to `window` jobs whose delivery reply was in flight when
# the daemon was killed (at-most-once toward the client, never the WAL).
must = {k for k in sched if k not in cancelled}
missing = [k for k in must if delivered[k] == 0]
assert len(missing) <= window, (
    f"{len(missing)} committed jobs lost (> reply-loss window {window}): "
    f"{missing[:5]}")

print(f"service_smoke: ledger OK — {len(sched)} acked, "
      f"{len(cancelled)} cancels, {sum(delivered.values())} delivered, "
      f"{len(missing)} in reply-loss window (bound {window}), "
      f"{len(unacked)} unacked")
EOF

echo "service_smoke: PASS"
