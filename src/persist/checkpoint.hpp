// Durable checkpoints: a cycle-boundary snapshot serialized to one
// versioned, checksummed file and published atomically.
//
// File layout (every unit a CRC-framed payload — format.hpp):
//
//   frame 0  header   magic "PHCKPT01", version, item size, op sequence,
//                     split/active/run counts
//   frame 1  map      the sharded partition map: split values + active mask
//                     (both empty for an unsharded heap)
//   frame 2..N runs   one frame per sorted run: item count + raw items
//
// Publication: the frames are written to `<final>.tmp`, fsync'd (unless
// FsyncPolicy::kNever), rename(2)'d to `ckpt-<seq>.phc`, and the directory
// is fsync'd. Readers therefore see either the previous checkpoint set or
// the previous set plus one complete new file — never a partial file under
// a final name.
//
// Validation on load is frame-by-frame: any CRC mismatch, count mismatch, or
// short file fails the WHOLE checkpoint (load_checkpoint returns false) and
// the recovery layer falls back to the next-newest file. A corrupt
// checkpoint is renamed aside (recovery.hpp), never silently loaded.
//
// The neutral interchange struct is CheckpointImage<T>; to_image/from_image
// overloads adapt it to PipelinedParallelHeap (one run, no map) and
// ShardedHeap (per-shard runs + partition map). New PQ types join the
// durability layer by adding an overload pair, not by touching the format.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "core/pipelined_heap.hpp"
#include "core/sharded_heap.hpp"
#include "obs/flight_recorder.hpp"
#include "persist/format.hpp"
#include "robustness/failpoint.hpp"
#include "telemetry/telemetry.hpp"

namespace ph::persist {

inline constexpr char kCkptMagic[8] = {'P', 'H', 'C', 'K', 'P', 'T', '0', '1'};
inline constexpr std::uint32_t kCkptVersion = 1;

/// Neutral serialized form of a PQ at a cycle boundary: the sharded
/// partition map (empty for unsharded heaps) plus one sorted run per
/// shard/node group. `runs` carries the full multiset of stored items.
template <typename T>
struct CheckpointImage {
  std::vector<T> splits;
  std::vector<std::uint8_t> active;
  bool seeded = false;
  std::vector<std::vector<T>> runs;

  std::size_t total_items() const noexcept {
    std::size_t n = 0;
    for (const auto& r : runs) n += r.size();
    return n;
  }
};

// ------------------------------------------------------- file name scheme

inline std::string checkpoint_filename(std::uint64_t seq) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "ckpt-%020llu.phc",
                static_cast<unsigned long long>(seq));
  return buf;
}

inline std::string wal_filename(std::uint64_t seq) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "wal-%020llu.phw",
                static_cast<unsigned long long>(seq));
  return buf;
}

/// Parses `<prefix>-<decimal seq><suffix>`; false on any other shape.
inline bool parse_seq_filename(const std::string& name, const char* prefix,
                               const char* suffix, std::uint64_t& seq) {
  const std::size_t plen = std::strlen(prefix);
  const std::size_t slen = std::strlen(suffix);
  if (name.size() <= plen + slen) return false;
  if (name.compare(0, plen, prefix) != 0) return false;
  if (name.compare(name.size() - slen, slen, suffix) != 0) return false;
  seq = 0;
  for (std::size_t i = plen; i < name.size() - slen; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return true;
}

/// All `<prefix>-<seq><suffix>` files in `dir`, sorted ascending by seq.
inline std::vector<std::pair<std::uint64_t, std::string>> list_seq_files(
    const std::string& dir, const char* prefix, const char* suffix) {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::uint64_t seq = 0;
    const std::string name = entry.path().filename().string();
    if (parse_seq_filename(name, prefix, suffix, seq)) {
      out.emplace_back(seq, entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Per-shard durable subdirectory used by the dist supervisor: each shard's
/// WAL segments and checkpoints live under their own `shard-<i>` directory,
/// so a shard checkpoints, prunes, and recovers independently of siblings.
inline std::string shard_dir(const std::string& base, std::size_t shard) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/shard-%04zu", shard);
  return base + buf;
}

inline std::vector<std::pair<std::uint64_t, std::string>> list_checkpoints(
    const std::string& dir) {
  return list_seq_files(dir, "ckpt-", ".phc");
}
inline std::vector<std::pair<std::uint64_t, std::string>> list_wal_segments(
    const std::string& dir) {
  return list_seq_files(dir, "wal-", ".phw");
}

// ------------------------------------------------------------ write / read

/// Serializes `img` as checkpoint `seq` in `dir` and publishes it
/// atomically. The kCkptWrite crash site evaluates between frames, so an
/// injected crash leaves a stale .tmp (swept by recovery), never a bad
/// final file. Throws PersistError on real I/O failure and InjectedFault
/// when the site fires without a crash hook; in both cases the .tmp is
/// unlinked and no final file appears.
template <typename T>
void write_checkpoint(const std::string& dir, std::uint64_t seq,
                      const CheckpointImage<T>& img, FsyncPolicy policy) {
  static_assert(std::is_trivially_copyable_v<T>,
                "checkpoint serialization requires trivially copyable items");
  telemetry::SpanScope span(telemetry::Phase::kCkptWrite);
  const std::string final_path = dir + "/" + checkpoint_filename(seq);
  const std::string tmp_path = final_path + ".tmp";

  FileWriter f;
  try {
    f.open_truncate(tmp_path);
    std::vector<std::uint8_t> frame;
    std::vector<std::uint8_t> payload;

    // Header.
    put_raw(payload, kCkptMagic, sizeof(kCkptMagic));
    put_u32(payload, kCkptVersion);
    put_u32(payload, static_cast<std::uint32_t>(sizeof(T)));
    put_u64(payload, seq);
    put_u64(payload, img.splits.size());
    put_u64(payload, img.active.size());
    put_u64(payload, (img.seeded ? 1u : 0u));
    put_u64(payload, img.runs.size());
    append_frame(frame, payload);
    f.write_all(frame.data(), frame.size());
    robustness::fire_crash(robustness::FailSite::kCkptWrite);

    // Partition map.
    frame.clear();
    payload.clear();
    put_raw(payload, img.splits.data(), img.splits.size() * sizeof(T));
    put_raw(payload, img.active.data(), img.active.size());
    append_frame(frame, payload);
    f.write_all(frame.data(), frame.size());

    // Runs.
    for (const std::vector<T>& run : img.runs) {
      robustness::fire_crash(robustness::FailSite::kCkptWrite);
      frame.clear();
      payload.clear();
      put_u64(payload, run.size());
      put_raw(payload, run.data(), run.size() * sizeof(T));
      append_frame(frame, payload);
      f.write_all(frame.data(), frame.size());
    }

    const std::uint64_t bytes = f.offset();
    if (policy != FsyncPolicy::kNever) f.sync();
    f.close();
    if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
      throw PersistError("persist: rename " + tmp_path + " -> " + final_path +
                         " failed: " + std::strerror(errno));
    }
    if (policy != FsyncPolicy::kNever) fsync_dir(dir);
    telemetry::count(telemetry::Counter::kCkptWrites);
    telemetry::count(telemetry::Counter::kCkptBytes, bytes);
    obs::flight(obs::FlightKind::kCkptPublish, seq, bytes);
  } catch (...) {
    f.close();
    ::unlink(tmp_path.c_str());
    throw;
  }
}

/// Deserializes and fully validates one checkpoint file. Returns false on
/// ANY validation failure (missing file, bad magic/version/item size, CRC
/// mismatch, count mismatch) — the caller falls back, never half-loads.
template <typename T>
bool load_checkpoint(const std::string& path, CheckpointImage<T>& img,
                     std::uint64_t& seq) {
  static_assert(std::is_trivially_copyable_v<T>);
  img = CheckpointImage<T>{};
  std::vector<std::uint8_t> bytes;
  if (!read_entire_file(path, bytes)) return false;

  FrameCursor cur(bytes);
  std::span<const std::uint8_t> payload;
  std::uint64_t nsplits = 0, nactive = 0, seeded = 0, nruns = 0;
  if (!cur.next(payload)) return false;
  {
    PayloadReader hdr(payload);
    char magic[8];
    std::uint32_t ver = 0, item_size = 0;
    if (!hdr.get_raw(magic, sizeof(magic)) ||
        std::memcmp(magic, kCkptMagic, sizeof(magic)) != 0 ||
        !hdr.get_u32(ver) || ver != kCkptVersion || !hdr.get_u32(item_size) ||
        item_size != sizeof(T) || !hdr.get_u64(seq) || !hdr.get_u64(nsplits) ||
        !hdr.get_u64(nactive) || !hdr.get_u64(seeded) || !hdr.get_u64(nruns) ||
        hdr.remaining() != 0) {
      return false;
    }
  }

  if (!cur.next(payload)) return false;
  {
    PayloadReader map(payload);
    if (map.remaining() != nsplits * sizeof(T) + nactive) return false;
    img.splits.resize(nsplits);
    if (nsplits > 0 && !map.get_raw(img.splits.data(), nsplits * sizeof(T))) {
      return false;
    }
    img.active.resize(nactive);
    if (nactive > 0 && !map.get_raw(img.active.data(), nactive)) return false;
  }
  img.seeded = seeded != 0;

  img.runs.resize(nruns);
  for (std::uint64_t r = 0; r < nruns; ++r) {
    if (!cur.next(payload)) return false;
    PayloadReader rd(payload);
    std::uint64_t count = 0;
    if (!rd.get_u64(count) || rd.remaining() != count * sizeof(T)) return false;
    img.runs[r].resize(count);
    if (count > 0 && !rd.get_raw(img.runs[r].data(), count * sizeof(T))) {
      return false;
    }
  }
  return true;
}

// ------------------------------------------- PQ <-> image adapter overloads

template <typename T, typename Compare>
CheckpointImage<T> to_image(const PipelinedParallelHeap<T, Compare>& pq) {
  CheckpointImage<T> img;
  img.runs.push_back(std::move(pq.snapshot().items));
  return img;
}

template <typename T, typename Compare>
void from_image(PipelinedParallelHeap<T, Compare>& pq,
                const CheckpointImage<T>& img) {
  if (img.runs.size() == 1) {
    typename PipelinedParallelHeap<T, Compare>::Snapshot snap;
    snap.items = img.runs[0];
    pq.restore(snap);
    return;
  }
  std::vector<T> all;
  all.reserve(img.total_items());
  for (const auto& run : img.runs) all.insert(all.end(), run.begin(), run.end());
  pq.build(std::span<const T>(all));
}

// Non-const: snapshot() first quiesces any putback overlapped with the
// caller (PR7), so imaging a live heap always captures a settled state.
template <typename T, typename Compare>
CheckpointImage<T> to_image(ShardedHeap<T, Compare>& pq) {
  typename ShardedHeap<T, Compare>::Snapshot snap = pq.snapshot();
  CheckpointImage<T> img;
  img.splits = std::move(snap.splits);
  img.active = std::move(snap.active);
  img.seeded = snap.seeded;
  img.runs = std::move(snap.shard_items);
  return img;
}

template <typename T, typename Compare>
void from_image(ShardedHeap<T, Compare>& pq, const CheckpointImage<T>& img) {
  if (img.runs.size() == pq.num_shards() &&
      img.active.size() == pq.num_shards()) {
    typename ShardedHeap<T, Compare>::Snapshot snap;
    snap.splits = img.splits;
    snap.active = img.active;
    snap.seeded = img.seeded;
    snap.shard_items = img.runs;
    pq.restore(snap);
    return;
  }
  // Shard-count mismatch (checkpoint from a differently-configured heap):
  // fall back to a flat rebuild — contents are exact, layout is reseeded.
  std::vector<T> all;
  all.reserve(img.total_items());
  for (const auto& run : img.runs) all.insert(all.end(), run.begin(), run.end());
  pq.build(std::span<const T>(all));
}

}  // namespace ph::persist
