// Exact restart recovery + the DurableHeap<PQ> adoption wrapper.
//
// Recovery state machine (run once, in the DurableHeap constructor):
//
//   1. SWEEP      unlink stray *.tmp files (a crash mid-checkpoint-write).
//   2. LOAD       walk checkpoints newest-first; the first one that passes
//                 full CRC/shape validation is restored into the PQ. A
//                 checkpoint that FAILS validation is renamed aside to
//                 `<name>.corrupt` — detected and skipped loudly (counted in
//                 RecoveryInfo::corrupt_checkpoints), never silently loaded,
//                 and never reconsidered. No valid checkpoint ⇒ start empty.
//   3. REPLAY     walk WAL segments in sequence order, applying each record
//                 whose op sequence extends the recovered state by exactly
//                 one. Records at or below the checkpoint's sequence are
//                 skipped (idempotence); a sequence HOLE — the next readable
//                 record skips ahead — throws CorruptStateError, because a
//                 hole means acknowledged operations are unrecoverable and
//                 continuing would silently drop them. A torn tail (crash
//                 mid-append) is benign: replay simply ends there.
//   4. VERIFY     the PQ's own invariant checker must pass over the
//                 recovered state.
//   5. REBASE     publish a fresh checkpoint at the recovered sequence and
//                 rotate to a new WAL segment. Crucially, recovery never
//                 MUTATES pre-existing checkpoint or segment files — so a
//                 crash during recovery (fail-point kRecoverReplay, or a
//                 real one) leaves the directory exactly as recoverable as
//                 before: re-running recovery is idempotent.
//
// Why replay is exact: the library's comparators are total orders, so "the
// k smallest of multiset M" is a unique multiset. Re-executing the logged
// multiset transitions therefore reaches the identical logical state — and
// the identical future delete-min stream — regardless of the PQ's internal
// layout, partition map, or pipeline schedule (DESIGN.md §10).
//
// DurableHeap<PQ> wraps any batch PQ (PipelinedParallelHeap, ShardedHeap)
// with write-ahead logging: every state-changing call appends a WAL record
// BEFORE mutating the PQ, fsyncs per policy, then applies. It forwards the
// pipeline-driver surface (root_work_public / advance / merge_ctx / drain),
// so the engine and the DES simulators adopt durability by substituting the
// type — no call-site churn.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics_registry.hpp"
#include "persist/checkpoint.hpp"
#include "persist/format.hpp"
#include "persist/wal.hpp"
#include "robustness/failpoint.hpp"
#include "telemetry/telemetry.hpp"
#include "util/assert.hpp"

namespace ph::persist {

/// Unrecoverable durable-state damage: a sequence hole in the WAL, or a
/// recovered state that fails the PQ's invariants. Deliberately loud —
/// proceeding would fabricate or drop acknowledged operations.
class CorruptStateError : public PersistError {
 public:
  explicit CorruptStateError(const std::string& what) : PersistError(what) {}
};

struct DurableOptions {
  std::string dir;                    ///< durable directory (created if absent)
  FsyncPolicy fsync = FsyncPolicy::kEveryRecord;
  /// Auto-checkpoint after this many logged ops (0 = manual checkpoints).
  std::size_t checkpoint_interval = 0;
  /// Checkpoints retained after each new publication (min 1; default 2 so a
  /// corrupted newest file can fall back with full WAL coverage).
  std::size_t keep_checkpoints = 2;
  /// Publish a fresh checkpoint at the end of recovery (step 5). Turning
  /// this off skips the O(n) write for open-inspect-close uses; the next
  /// explicit/auto checkpoint rebases instead.
  bool checkpoint_on_open = true;
};

/// What recovery found and did (DurableHeap::recovery_info()).
struct RecoveryInfo {
  std::uint64_t op_seq = 0;             ///< recovered operation sequence
  bool checkpoint_loaded = false;
  std::uint64_t checkpoint_seq = 0;     ///< seq of the loaded checkpoint
  std::uint64_t replayed = 0;           ///< WAL records applied
  std::uint64_t corrupt_checkpoints = 0;///< checkpoints rejected by validation
  bool wal_torn = false;                ///< a torn/garbage WAL tail was cut
};

template <typename PQ>
class DurableHeap {
 public:
  using value_type = typename PQ::value_type;
  using ServiceCtx = typename PQ::ServiceCtx;
  using T = value_type;

  /// Observes every logged state transition — live ops as they apply AND
  /// replayed records during recovery, in the identical (type, k, items,
  /// outputs) shape. Layers that derive state from the op stream (the svc
  /// tenant ledger) route BOTH paths through one observer, so what recovery
  /// rebuilds is what the live path built, by construction. Replay exactness
  /// (multiset semantics, DESIGN.md §10) extends to the outputs: a replayed
  /// record regenerates the same popped multiset the live run produced.
  /// Must not throw; must not call back into the heap.
  using OpObserver =
      std::function<void(RecType, std::uint64_t, std::span<const T>, std::span<const T>)>;

  /// Wraps `pq` (which supplies configuration: node capacity, comparator,
  /// shard layout) and recovers state from `opt.dir`. Any content `pq`
  /// arrived with is REPLACED by the recovered state (empty when the
  /// directory holds none) — durable content lives in the directory, not in
  /// the constructor argument; seed fresh content with build(). An observer
  /// passed here sees the recovery replay too.
  DurableHeap(PQ pq, DurableOptions opt, OpObserver observer = nullptr)
      : pq_(std::move(pq)), opt_(std::move(opt)), observer_(std::move(observer)) {
    PH_ASSERT_MSG(!opt_.dir.empty(), "DurableHeap: empty durable directory");
    if (opt_.keep_checkpoints == 0) opt_.keep_checkpoints = 1;
    recover();
  }

  DurableHeap(DurableHeap&&) = default;
  DurableHeap& operator=(DurableHeap&&) = default;

  // ------------------------------------------------------- logged mutators

  /// Replaces the content (logged as a kBuild record: replay re-executes the
  /// replacement, so a build is durable the same way any op is).
  void build(std::span<const T> items) {
    log_op(RecType::kBuild, 0, items);
    apply_guard([&] { pq_.build(items); });
    notify(RecType::kBuild, 0, items, {});
    finish_op();
  }

  std::size_t cycle(std::span<const T> fresh, std::size_t k, std::vector<T>& out) {
    log_op(RecType::kCycle, k, fresh);
    const std::size_t entry = out.size();
    std::size_t n = 0;
    apply_guard([&] { n = pq_.cycle(fresh, k, out); });
    notify(RecType::kCycle, k, fresh,
           std::span<const T>(out.data() + entry, out.size() - entry));
    finish_op();
    return n;
  }

  void insert_batch(std::span<const T> items) {
    log_op(RecType::kInsert, 0, items);
    apply_guard([&] { pq_.insert_batch(items); });
    notify(RecType::kInsert, 0, items, {});
    finish_op();
  }

  std::size_t delete_min_batch(std::size_t k, std::vector<T>& out) {
    log_op(RecType::kDelete, k, {});
    const std::size_t entry = out.size();
    std::size_t n = 0;
    apply_guard([&] { n = pq_.delete_min_batch(k, out); });
    notify(RecType::kDelete, k, {},
           std::span<const T>(out.data() + entry, out.size() - entry));
    finish_op();
    return n;
  }

  // --------------------------------- pipeline-driver surface (engine seam)
  //
  // root_work_public is the cycle's logged boundary (it consumes the fresh
  // batch and fixes k); the half-step advances that follow are deterministic
  // maintenance of the same logical transition, so they are forwarded
  // unlogged — replay applies the whole transition as one cycle().

  std::size_t root_work_public(std::span<const T> fresh, std::size_t k,
                               std::vector<T>& out) {
    log_op(RecType::kCycle, k, fresh);
    const std::size_t entry = out.size();
    std::size_t n = 0;
    apply_guard([&] { n = pq_.root_work_public(fresh, k, out); });
    notify(RecType::kCycle, k, fresh,
           std::span<const T>(out.data() + entry, out.size() - entry));
    finish_op();
    return n;
  }

  void advance(std::size_t parity) { pq_.advance(parity); }
  template <typename Runner>
  void advance_with(std::size_t parity, Runner&& runner) {
    pq_.advance_with(parity, static_cast<Runner&&>(runner));
  }
  void merge_ctx(ServiceCtx& ctx) { pq_.merge_ctx(ctx); }
  void drain() { pq_.drain(); }

  // ------------------------------------------------------------ checkpoint

  /// Publishes a checkpoint at the current op sequence, rotates to a fresh
  /// WAL segment, and prunes files outside the retention window. Returns
  /// false if an INJECTED failure aborted the write (counted, recovered:
  /// the heap keeps running on the previous checkpoint + live WAL); real
  /// I/O errors throw PersistError.
  bool checkpoint_now() {
    try {
      write_checkpoint(opt_.dir, op_seq_, to_image(pq_), opt_.fsync);
    } catch (const robustness::InjectedFailure& f) {
      robustness::note_recovery(f.site);
      return false;
    }
    rotate_wal();
    prune();
    ops_since_ckpt_ = 0;
    live_->checkpoints.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  // -------------------------------------------------------------- observers

  PQ& heap() noexcept { return pq_; }
  const PQ& heap() const noexcept { return pq_; }
  const RecoveryInfo& recovery_info() const noexcept { return info_; }
  const DurableOptions& options() const noexcept { return opt_; }
  /// Sequence of the last logged-and-applied operation.
  std::uint64_t op_seq() const noexcept { return op_seq_; }

  std::size_t size() const noexcept { return pq_.size(); }
  bool empty() const noexcept { return pq_.empty(); }
  std::size_t node_capacity() const noexcept { return pq_.node_capacity(); }

  bool check_invariants(std::string* why = nullptr) {
    return pq_.check_invariants(why);
  }

  /// Lock-free mirror for gauge callbacks (same convention as
  /// ShardedHeap::Live): recovery updates `replayed` per applied record, so
  /// a scrape DURING a long replay shows advancing progress, not a stall.
  struct Live {
    std::atomic<std::uint64_t> op_seq{0};
    std::atomic<std::uint64_t> replayed{0};
    std::atomic<std::uint64_t> checkpoints{0};
    std::atomic<std::uint64_t> recovering{0};  ///< 1 while recover() runs
  };

  const Live& live() const noexcept { return *live_; }

  /// Publishes durability gauges (op sequence, replay progress, checkpoint
  /// count) in the process-wide MetricsRegistry under the `heap` label.
  void register_gauges(const std::string& heap = "durable") {
    gauges_.clear();
    Live* lv = live_.get();
    struct Simple { const char* name; const char* help; std::atomic<std::uint64_t> Live::*field; };
    static constexpr Simple kSimple[] = {
        {"durable_op_seq", "Last logged-and-applied operation sequence.", &Live::op_seq},
        {"durable_replayed", "WAL records applied by the current/last recovery.", &Live::replayed},
        {"durable_checkpoints", "Checkpoints published by this instance.", &Live::checkpoints},
        {"durable_recovering", "1 while a recovery pass is running.", &Live::recovering},
    };
    for (const Simple& g : kSimple) {
      auto field = g.field;
      gauges_.add(
          obs::GaugeDesc{g.name, {{"heap", heap}}, g.help},
          [lv, field] { return static_cast<double>(
                            (lv->*field).load(std::memory_order_relaxed)); });
    }
  }

 private:
  // WAL-first with a repair path on both sides: a failed append truncates
  // itself (WalWriter); a PQ apply that throws AFTER the append un-logs the
  // record, so disk never claims an op memory refused.
  void log_op(RecType type, std::uint64_t k, std::span<const T> items) {
    pre_off_ = wal_->offset();
    wal_->append(type, op_seq_ + 1, k, items);
  }

  template <typename Fn>
  void apply_guard(Fn&& fn) {
    try {
      fn();
    } catch (...) {
      wal_->truncate_to(pre_off_);
      throw;
    }
  }

  void finish_op() {
    ++op_seq_;
    live_->op_seq.store(op_seq_, std::memory_order_relaxed);
    ++ops_since_ckpt_;
    if (opt_.checkpoint_interval != 0 &&
        ops_since_ckpt_ >= opt_.checkpoint_interval) {
      checkpoint_now();  // injected failures swallowed inside (counted)
    }
  }

  void rotate_wal() {
    wal_.reset();  // close the old segment before the new one takes over
    wal_ = std::make_unique<WalWriter<T>>(
        opt_.dir + "/" + wal_filename(op_seq_), op_seq_, opt_.fsync);
  }

  /// Deletes checkpoints beyond the retention window and WAL segments that
  /// start before the oldest retained checkpoint (their records are all at
  /// or below its sequence). Best-effort: a failed unlink only delays reuse.
  void prune() {
    auto ckpts = list_checkpoints(opt_.dir);
    if (ckpts.size() > opt_.keep_checkpoints) {
      const std::size_t drop = ckpts.size() - opt_.keep_checkpoints;
      for (std::size_t i = 0; i < drop; ++i) ::unlink(ckpts[i].second.c_str());
      ckpts.erase(ckpts.begin(), ckpts.begin() + static_cast<std::ptrdiff_t>(drop));
    }
    if (!ckpts.empty()) {
      const std::uint64_t floor_seq = ckpts.front().first;
      for (const auto& [sseq, spath] : list_wal_segments(opt_.dir)) {
        if (sseq < floor_seq) ::unlink(spath.c_str());
      }
    }
    if (opt_.fsync != FsyncPolicy::kNever) fsync_dir(opt_.dir);
  }

  /// Observer entry for both paths. The live mutators call it with their
  /// real outputs; apply_record calls it with the replay-regenerated ones.
  void notify(RecType type, std::uint64_t k, std::span<const T> items,
              std::span<const T> out) {
    if (observer_) observer_(type, k, items, out);
  }

  void apply_record(const WalRecord<T>& rec) {
    sink_.clear();
    switch (rec.type) {
      case RecType::kCycle:
        pq_.cycle(std::span<const T>(rec.items), rec.k, sink_);
        break;
      case RecType::kInsert:
        pq_.cycle(std::span<const T>(rec.items), 0, sink_);
        break;
      case RecType::kDelete:
        // Mirrors the live path: delete_min_batch chunks k into <= r-sized
        // steps, so a logged k may legally exceed the node capacity. PQs
        // without that surface (ShardedHeap) accept any k in cycle().
        if constexpr (requires(PQ& q, std::vector<T>& o) {
                        q.delete_min_batch(std::size_t{}, o);
                      }) {
          pq_.delete_min_batch(rec.k, sink_);
        } else {
          pq_.cycle(std::span<const T>(), rec.k, sink_);
        }
        break;
      case RecType::kBuild:
        pq_.build(std::span<const T>(rec.items));
        break;
    }
    notify(rec.type, rec.k, std::span<const T>(rec.items),
           std::span<const T>(sink_));
  }

  void recover() {
    telemetry::SpanScope span(telemetry::Phase::kRecoverReplay);
    obs::flight(obs::FlightKind::kRecoveryStart);
    live_->recovering.store(1, std::memory_order_relaxed);
    std::error_code ec;
    std::filesystem::create_directories(opt_.dir, ec);
    if (ec) {
      throw PersistError("persist: cannot create " + opt_.dir + ": " + ec.message());
    }

    // 1. SWEEP stray tmp files.
    for (const auto& entry : std::filesystem::directory_iterator(opt_.dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
        ::unlink(entry.path().string().c_str());
      }
    }

    // 2. LOAD the newest valid checkpoint; quarantine rejects.
    std::uint64_t base = 0;
    bool loaded = false;
    auto ckpts = list_checkpoints(opt_.dir);
    for (auto it = ckpts.rbegin(); it != ckpts.rend(); ++it) {
      CheckpointImage<T> img;
      std::uint64_t seq = 0;
      if (load_checkpoint(path_of(*it), img, seq) && seq == it->first) {
        from_image(pq_, img);
        base = seq;
        loaded = true;
        break;
      }
      ++info_.corrupt_checkpoints;
      ::rename(path_of(*it).c_str(), (path_of(*it) + ".corrupt").c_str());
    }
    if (!loaded) pq_.build(std::span<const T>());
    info_.checkpoint_loaded = loaded;
    info_.checkpoint_seq = base;

    // A loaded checkpoint must be covered by the segment file set: every
    // publication rotates to a segment starting at the checkpoint's sequence
    // (and pruning only deletes segments below the oldest retained
    // checkpoint), so "no segment file at or below the checkpoint" can only
    // mean segment files were deleted out from under us — and with them,
    // possibly, acknowledged operations. That must be a loud failure, not a
    // silent heap frozen at the stale image. Coverage is judged by filename
    // alone: a zero-length or torn covering segment is the benign
    // crash-during-rotation case and stays recoverable.
    const auto segments = list_wal_segments(opt_.dir);
    if (loaded && base > 0) {
      bool covered = false;
      for (const auto& [sseq, spath] : segments) {
        if (sseq <= base) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        throw CorruptStateError(
            "persist: checkpoint " + std::to_string(base) + " in " + opt_.dir +
            " has no covering WAL segment (start <= " + std::to_string(base) +
            ") — segments were deleted; acknowledged ops may be lost");
      }
    }

    // 3. REPLAY the WAL tail.
    std::uint64_t expected = base;  // seq of the last applied op
    for (const auto& [sseq, spath] : segments) {
      const SegmentContents<T> seg = read_segment<T>(spath);
      if (!seg.header_ok) {
        // Unreadable segment: its records (if any existed) are gone. If they
        // mattered, a later record's sequence will jump and the hole check
        // below goes off; if they were all shadowed by the checkpoint, this
        // is a stale husk.
        info_.wal_torn = true;
        continue;
      }
      for (const WalRecord<T>& rec : seg.records) {
        if (rec.seq <= expected) continue;  // shadowed by the checkpoint
        if (rec.seq != expected + 1) {
          throw CorruptStateError(
              "persist: WAL hole in " + spath + ": expected op " +
              std::to_string(expected + 1) + ", found op " +
              std::to_string(rec.seq) + " — acknowledged ops are missing");
        }
        robustness::fire_crash(robustness::FailSite::kRecoverReplay);
        apply_record(rec);
        expected = rec.seq;
        ++info_.replayed;
        live_->replayed.store(info_.replayed, std::memory_order_relaxed);
        telemetry::count(telemetry::Counter::kWalReplayed);
      }
      if (seg.torn_tail) info_.wal_torn = true;
    }
    op_seq_ = expected;
    info_.op_seq = expected;

    // 4. VERIFY the recovered state before acknowledging anything on top.
    std::string why;
    if (!verify_recovered(&why)) {
      throw CorruptStateError("persist: recovered state failed invariants: " + why);
    }

    // 5. REBASE: fresh checkpoint + fresh segment. Old files are never
    // mutated, so a crash anywhere in recovery replays identically.
    rotate_wal();
    if (opt_.checkpoint_on_open) checkpoint_now();
    telemetry::count(telemetry::Counter::kRecoveries);
    live_->op_seq.store(op_seq_, std::memory_order_relaxed);
    live_->recovering.store(0, std::memory_order_relaxed);
    obs::flight(obs::FlightKind::kRecoveryDone, op_seq_, info_.replayed);
  }

  bool verify_recovered(std::string* why) {
    if constexpr (requires(PQ& p) { p.verify_invariants(why); }) {
      return pq_.verify_invariants(why);
    } else {
      return pq_.check_invariants(why);
    }
  }

  static const std::string& path_of(const std::pair<std::uint64_t, std::string>& e) {
    return e.second;
  }

  PQ pq_;
  DurableOptions opt_;
  OpObserver observer_;
  // Initialized before the ctor body runs recover(); heap-allocated so the
  // wrapper stays movable and gauge callbacks hold a stable pointer.
  std::unique_ptr<Live> live_ = std::make_unique<Live>();
  obs::GaugeSet gauges_;
  std::unique_ptr<WalWriter<T>> wal_;
  std::uint64_t op_seq_ = 0;
  std::size_t ops_since_ckpt_ = 0;
  std::uint64_t pre_off_ = 0;
  RecoveryInfo info_;
  std::vector<T> sink_;  ///< replay scratch: regenerated outputs are discarded
};

}  // namespace ph::persist
