// On-disk format primitives shared by the durability subsystem (checkpoint
// files and write-ahead log segments): CRC-32 framing, little-endian scalar
// encoding, fsync policies, and the POSIX file helpers that give the layer
// precise control over WHEN bytes reach the kernel and WHEN they are forced
// to stable storage.
//
// Framing. Every logical unit on disk is a *frame*:
//
//     [u32 payload length][u32 CRC-32 of payload][payload bytes]
//
// A reader walks frames front to back and stops at the first frame whose
// length runs past the file or whose CRC does not match — which is exactly
// how a torn tail (a crash mid-append) presents. Torn-tail detection is
// therefore not a special case but the ordinary termination condition of
// FrameCursor::next(). A frame that fails its CRC mid-file is reported the
// same way; the recovery layer decides whether a stop is a benign tail or a
// hole (recovery.hpp).
//
// Atomic publication. Checkpoint files are written to a temporary name,
// fsync'd, and rename(2)'d into place, then the directory is fsync'd so the
// rename itself is durable. A reader can never observe a half-written
// checkpoint under its final name; a crash mid-write leaves only a stale
// tmp file that the next recovery sweeps away.
//
// Item encoding. Serialized item types must be trivially copyable (enforced
// by static_assert at the call sites); bytes are written in host order and
// the item size is recorded in every file header, so a file from a
// different-width or different-endian host is *rejected*, never
// misinterpreted. This is a deliberate v1 simplification — the library's
// keys are u64 / POD event records — and is called out in DESIGN.md §10.
#pragma once

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <span>
#include <string>
#include <system_error>
#include <vector>

#include "util/assert.hpp"

namespace ph::persist {

/// When the durability layer forces bytes to stable storage.
///   kNever        no fsync anywhere: contents reach disk when the OS
///                 flushes; a crash can lose an arbitrary recent suffix
///                 (and the atomic-rename guarantee degrades to "atomic in
///                 the file system's view, durable eventually").
///   kOnCheckpoint fsync only when publishing a checkpoint; WAL appends are
///                 buffered by the kernel. Durable state = last checkpoint
///                 plus whatever WAL suffix happened to reach disk.
///   kEveryRecord  fsync after every WAL append (and at checkpoints): a
///                 record that was acknowledged is never lost.
enum class FsyncPolicy : std::uint8_t { kNever = 0, kOnCheckpoint, kEveryRecord };

inline const char* fsync_policy_name(FsyncPolicy p) noexcept {
  switch (p) {
    case FsyncPolicy::kNever: return "never";
    case FsyncPolicy::kOnCheckpoint: return "checkpoint";
    case FsyncPolicy::kEveryRecord: return "every";
  }
  return "unknown";
}

inline bool fsync_policy_from_name(std::string_view name, FsyncPolicy& out) noexcept {
  for (FsyncPolicy p : {FsyncPolicy::kNever, FsyncPolicy::kOnCheckpoint,
                        FsyncPolicy::kEveryRecord}) {
    if (name == fsync_policy_name(p)) {
      out = p;
      return true;
    }
  }
  return false;
}

/// Durability-layer I/O or state error (missing coverage, unwritable file).
/// Corruption that recovery can *route around* (a bad checkpoint frame with
/// an older checkpoint to fall back to) is handled silently-with-accounting;
/// this exception is for the cases where proceeding would fabricate state.
class PersistError : public std::runtime_error {
 public:
  explicit PersistError(const std::string& what) : std::runtime_error(what) {}
};

// ---------------------------------------------------------------- CRC-32

namespace fmt_detail {
inline const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace fmt_detail

/// CRC-32 (IEEE 802.3, the zlib polynomial) of a byte span.
inline std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept {
  const auto& t = fmt_detail::crc_table();
  std::uint32_t c = 0xffffffffu;
  for (std::uint8_t b : bytes) c = t[(c ^ b) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

// ------------------------------------------------- scalar / raw encoding

inline void put_u32(std::vector<std::uint8_t>& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
inline void put_u64(std::vector<std::uint8_t>& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
inline void put_raw(std::vector<std::uint8_t>& buf, const void* p, std::size_t n) {
  const auto* b = static_cast<const std::uint8_t*>(p);
  buf.insert(buf.end(), b, b + n);
}

/// Bounds-checked decoder over a payload span; every get_* returns false at
/// exhaustion instead of reading past the end, so a malformed payload is a
/// clean decode failure, not UB.
class PayloadReader {
 public:
  explicit PayloadReader(std::span<const std::uint8_t> payload) noexcept
      : p_(payload.data()), n_(payload.size()) {}

  std::size_t remaining() const noexcept { return n_ - off_; }

  bool get_u32(std::uint32_t& v) noexcept {
    if (remaining() < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(p_[off_ + static_cast<std::size_t>(i)]) << (8 * i);
    }
    off_ += 4;
    return true;
  }
  bool get_u64(std::uint64_t& v) noexcept {
    if (remaining() < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(p_[off_ + static_cast<std::size_t>(i)]) << (8 * i);
    }
    off_ += 8;
    return true;
  }
  bool get_raw(void* dst, std::size_t n) noexcept {
    if (remaining() < n) return false;
    std::memcpy(dst, p_ + off_, n);
    off_ += n;
    return true;
  }

 private:
  const std::uint8_t* p_;
  std::size_t n_;
  std::size_t off_ = 0;
};

// ----------------------------------------------------------------- frames

/// Upper bound on a single frame's payload: rejects absurd lengths from a
/// corrupt length field before any allocation happens.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 30;

/// Appends one frame (length + CRC + payload) to a byte buffer.
inline void append_frame(std::vector<std::uint8_t>& file,
                         std::span<const std::uint8_t> payload) {
  PH_ASSERT(payload.size() <= kMaxFramePayload);
  put_u32(file, static_cast<std::uint32_t>(payload.size()));
  put_u32(file, crc32(payload));
  put_raw(file, payload.data(), payload.size());
}

/// Walks frames over an in-memory file image. next() yields payload views
/// until the bytes run out or a frame fails validation; valid_end() is the
/// byte offset just past the last frame that validated — the truncation
/// point for a torn tail.
class FrameCursor {
 public:
  explicit FrameCursor(std::span<const std::uint8_t> file) noexcept : file_(file) {}

  bool next(std::span<const std::uint8_t>& payload) noexcept {
    if (file_.size() - off_ < 8) return false;
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    PayloadReader hdr(file_.subspan(off_, 8));
    hdr.get_u32(len);
    hdr.get_u32(crc);
    if (len > kMaxFramePayload || file_.size() - off_ - 8 < len) return false;
    const auto body = file_.subspan(off_ + 8, len);
    if (crc32(body) != crc) return false;
    payload = body;
    off_ += 8 + len;
    return true;
  }

  /// Offset just past the last frame that validated.
  std::size_t valid_end() const noexcept { return off_; }
  /// True iff bytes remain past the last valid frame (torn or corrupt tail).
  bool has_garbage_tail() const noexcept { return off_ < file_.size(); }

 private:
  std::span<const std::uint8_t> file_;
  std::size_t off_ = 0;
};

// -------------------------------------------------------------- file I/O

/// Thin POSIX write handle: explicit control over write boundaries (a crash
/// site between two write(2) calls leaves a genuinely torn frame) and over
/// fsync. Not copyable; movable so owners can live in movable wrappers.
class FileWriter {
 public:
  FileWriter() = default;
  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;
  FileWriter(FileWriter&& o) noexcept : fd_(o.fd_), off_(o.off_) { o.fd_ = -1; }
  FileWriter& operator=(FileWriter&& o) noexcept {
    if (this != &o) {
      close();
      fd_ = o.fd_;
      off_ = o.off_;
      o.fd_ = -1;
    }
    return *this;
  }
  ~FileWriter() { close(); }

  /// Opens (creating or truncating) for writing. Throws PersistError.
  void open_truncate(const std::string& path) {
    close();
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd_ < 0) {
      throw PersistError("persist: cannot open " + path + ": " +
                         std::strerror(errno));
    }
    off_ = 0;
  }

  bool is_open() const noexcept { return fd_ >= 0; }
  std::uint64_t offset() const noexcept { return off_; }

  /// Writes all of `n` bytes (retrying short writes). Throws PersistError.
  void write_all(const void* p, std::size_t n) {
    PH_ASSERT(fd_ >= 0);
    const auto* b = static_cast<const std::uint8_t*>(p);
    while (n > 0) {
      const ::ssize_t w = ::write(fd_, b, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        throw PersistError(std::string("persist: write failed: ") +
                           std::strerror(errno));
      }
      b += w;
      n -= static_cast<std::size_t>(w);
      off_ += static_cast<std::uint64_t>(w);
    }
  }

  void sync() {
    PH_ASSERT(fd_ >= 0);
    if (::fsync(fd_) != 0) {
      throw PersistError(std::string("persist: fsync failed: ") +
                         std::strerror(errno));
    }
  }

  /// Truncates back to `len` (un-publishing a torn or rolled-back suffix)
  /// and repositions the append offset there.
  void truncate_to(std::uint64_t len) {
    PH_ASSERT(fd_ >= 0);
    if (::ftruncate(fd_, static_cast<::off_t>(len)) != 0) {
      throw PersistError(std::string("persist: ftruncate failed: ") +
                         std::strerror(errno));
    }
    if (::lseek(fd_, static_cast<::off_t>(len), SEEK_SET) < 0) {
      throw PersistError(std::string("persist: lseek failed: ") +
                         std::strerror(errno));
    }
    off_ = len;
  }

  void close() noexcept {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
  std::uint64_t off_ = 0;
};

/// Reads a whole file into memory. Returns false (empty out) if the file
/// does not exist or cannot be read — recovery treats that as "no data",
/// never as an error.
inline bool read_entire_file(const std::string& path, std::vector<std::uint8_t>& out) {
  out.clear();
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  struct ::stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return false;
  }
  out.resize(static_cast<std::size_t>(st.st_size));
  std::size_t got = 0;
  while (got < out.size()) {
    const ::ssize_t r = ::read(fd, out.data() + got, out.size() - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      out.clear();
      return false;
    }
    if (r == 0) break;  // shrank under us; treat what we have as the file
    got += static_cast<std::size_t>(r);
  }
  out.resize(got);
  ::close(fd);
  return true;
}

/// fsync on a directory, making a completed rename/unlink durable.
inline void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;  // best-effort: some filesystems refuse dir fds
  ::fsync(fd);
  ::close(fd);
}

/// Creates a fresh uniquely-named temp directory (under TMPDIR or /tmp) for
/// tests, the stress registry, and drills. Caller removes it.
inline std::string make_temp_dir(const std::string& prefix) {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = (base != nullptr && base[0] != '\0' ? std::string(base)
                                                         : std::string("/tmp")) +
                     "/" + prefix + ".XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    throw PersistError(std::string("persist: mkdtemp failed: ") +
                       std::strerror(errno));
  }
  return std::string(buf.data());
}

}  // namespace ph::persist
