// Write-ahead op log: append-only segments of framed operation records.
//
// One segment file (`wal-<startseq>.phw`) holds the operations issued since
// the checkpoint with the same sequence number; DurableHeap rotates to a new
// segment each time it publishes a checkpoint, so "which WAL tail do I
// replay" is answered by file names alone. Records carry their own op
// sequence number, making replay idempotent (records at or below the loaded
// checkpoint's sequence are skipped) and making a *hole* — a sequence jump
// with no covering checkpoint — detectable as corruption rather than
// silently absorbable.
//
// Record kinds mirror the batch PQ API surface exactly:
//   kCycle   one cycle(fresh, k): the fresh batch's items plus k
//   kInsert  insert_batch(items)
//   kDelete  delete_min_batch(k)
// Replay re-executes the same multiset transitions; because the library's
// comparators are total orders, the k smallest of a multiset is a unique
// multiset, so replay lands on the identical logical state regardless of the
// PQ's internal layout (DESIGN.md §10).
//
// Crash sites: kWalAppend evaluates between the two write(2) calls of an
// append — dying there leaves a genuinely torn frame on disk for the reader
// to detect. kWalFsync evaluates before and after the per-record fsync —
// the before/after distinction is what separates "acknowledged and durable"
// from "acknowledged but lost" under FsyncPolicy::kEveryRecord.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "persist/format.hpp"
#include "robustness/failpoint.hpp"
#include "telemetry/telemetry.hpp"

namespace ph::persist {

inline constexpr char kWalMagic[8] = {'P', 'H', 'W', 'A', 'L', '0', '0', '1'};
inline constexpr std::uint32_t kWalVersion = 1;

enum class RecType : std::uint8_t {
  kCycle = 1,   ///< cycle(fresh, k)
  kInsert = 2,  ///< insert_batch(items)
  kDelete = 3,  ///< delete_min_batch(k)
  kBuild = 4,   ///< build(items): replaces the whole content
};

/// One decoded WAL record. `seq` is the op sequence the record *produces*
/// (the first op ever logged has seq 1).
template <typename T>
struct WalRecord {
  RecType type = RecType::kCycle;
  std::uint64_t seq = 0;
  std::uint64_t k = 0;       ///< delete count (kCycle / kDelete)
  std::vector<T> items;      ///< fresh batch (kCycle / kInsert)
};

/// Append side of one segment. Owns the fd; movable (held by value inside a
/// movable DurableHeap).
template <typename T>
class WalWriter {
  static_assert(std::is_trivially_copyable_v<T>,
                "WAL serialization requires trivially copyable items");

 public:
  WalWriter(const std::string& path, std::uint64_t start_seq, FsyncPolicy policy)
      : policy_(policy) {
    file_.open_truncate(path);
    std::vector<std::uint8_t> payload;
    put_raw(payload, kWalMagic, sizeof(kWalMagic));
    put_u32(payload, kWalVersion);
    put_u32(payload, static_cast<std::uint32_t>(sizeof(T)));
    put_u64(payload, start_seq);
    std::vector<std::uint8_t> frame;
    append_frame(frame, payload);
    file_.write_all(frame.data(), frame.size());
    telemetry::count(telemetry::Counter::kWalBytes, frame.size());
    obs::flight(obs::FlightKind::kWalRotate, start_seq);
    if (policy_ == FsyncPolicy::kEveryRecord) sync();
  }

  WalWriter(WalWriter&&) = default;
  WalWriter& operator=(WalWriter&&) = default;

  /// Appends one record. Under FsyncPolicy::kEveryRecord the record is
  /// durable when this returns. Strong guarantee against *injected* faults:
  /// a fault thrown from the kWalAppend / kWalFsync sites (no crash hook
  /// installed) truncates the segment back to the pre-append length before
  /// rethrowing, so the on-disk log never holds a record the caller was told
  /// failed. A real write error leaves the torn tail for the frame reader to
  /// discard at recovery.
  void append(RecType type, std::uint64_t seq, std::uint64_t k,
              std::span<const T> items) {
    telemetry::SpanScope span(telemetry::Phase::kWalAppend);
    std::vector<std::uint8_t> payload;
    payload.reserve(1 + 8 + 8 + 8 + items.size_bytes());
    payload.push_back(static_cast<std::uint8_t>(type));
    put_u64(payload, seq);
    put_u64(payload, k);
    put_u64(payload, items.size());
    put_raw(payload, items.data(), items.size_bytes());
    std::vector<std::uint8_t> frame;
    append_frame(frame, payload);

    const std::uint64_t pre = file_.offset();
    try {
      // Two writes with the crash site between them: a crash here leaves a
      // frame whose length field promises more bytes than exist — the
      // canonical torn tail.
      const std::size_t head = frame.size() < 8 ? frame.size() : 8;
      file_.write_all(frame.data(), head);
      robustness::fire_crash(robustness::FailSite::kWalAppend);
      file_.write_all(frame.data() + head, frame.size() - head);
      if (policy_ == FsyncPolicy::kEveryRecord) {
        robustness::fire_crash(robustness::FailSite::kWalFsync);  // pre-fsync
        sync();
        robustness::fire_crash(robustness::FailSite::kWalFsync);  // post-fsync
      }
    } catch (const robustness::InjectedFailure&) {
      file_.truncate_to(pre);
      throw;
    }
    telemetry::count(telemetry::Counter::kWalAppends);
    telemetry::count(telemetry::Counter::kWalBytes, frame.size());
  }

  void sync() {
    // Fsync latency is the durability tax every kEveryRecord append pays —
    // first-class phase so dashboards see its distribution, not just counts.
    telemetry::SpanScope span(telemetry::Phase::kWalFsync);
    file_.sync();
    telemetry::count(telemetry::Counter::kWalFsyncs);
  }

  /// Un-logs everything past `off` — DurableHeap's repair path for a record
  /// whose PQ apply threw after the append already landed.
  void truncate_to(std::uint64_t off) { file_.truncate_to(off); }

  std::uint64_t offset() const noexcept { return file_.offset(); }
  FsyncPolicy policy() const noexcept { return policy_; }

 private:
  FileWriter file_;
  FsyncPolicy policy_;
};

/// Decoded contents of one segment file.
template <typename T>
struct SegmentContents {
  bool header_ok = false;     ///< magic/version/item-size all matched
  bool torn_tail = false;     ///< bytes remained past the last valid frame
  std::uint64_t start_seq = 0;
  std::vector<WalRecord<T>> records;
};

/// Reads a segment, stopping cleanly at the first invalid frame (torn tail)
/// or undecodable record. Never throws on bad data — corruption shows up as
/// header_ok=false or a short record list with torn_tail=true; the recovery
/// layer decides whether that is benign.
template <typename T>
SegmentContents<T> read_segment(const std::string& path) {
  static_assert(std::is_trivially_copyable_v<T>);
  SegmentContents<T> out;
  std::vector<std::uint8_t> bytes;
  if (!read_entire_file(path, bytes)) return out;

  FrameCursor cur(bytes);
  std::span<const std::uint8_t> payload;
  if (!cur.next(payload)) return out;
  {
    PayloadReader hdr(payload);
    char magic[8];
    std::uint32_t ver = 0;
    std::uint32_t item_size = 0;
    if (!hdr.get_raw(magic, sizeof(magic)) ||
        std::memcmp(magic, kWalMagic, sizeof(magic)) != 0 ||
        !hdr.get_u32(ver) || ver != kWalVersion || !hdr.get_u32(item_size) ||
        item_size != sizeof(T) || !hdr.get_u64(out.start_seq)) {
      return out;
    }
  }
  out.header_ok = true;

  while (cur.next(payload)) {
    PayloadReader rd(payload);
    WalRecord<T> rec;
    std::uint8_t type = 0;
    std::uint64_t count = 0;
    if (!rd.get_raw(&type, 1) || !rd.get_u64(rec.seq) || !rd.get_u64(rec.k) ||
        !rd.get_u64(count) || rd.remaining() != count * sizeof(T)) {
      out.torn_tail = true;  // framed but undecodable: treat like a torn frame
      return out;
    }
    rec.type = static_cast<RecType>(type);
    if (rec.type != RecType::kCycle && rec.type != RecType::kInsert &&
        rec.type != RecType::kDelete && rec.type != RecType::kBuild) {
      out.torn_tail = true;
      return out;
    }
    rec.items.resize(count);
    if (count > 0) rd.get_raw(rec.items.data(), count * sizeof(T));
    out.records.push_back(std::move(rec));
  }
  out.torn_tail = cur.has_garbage_tail();
  return out;
}

}  // namespace ph::persist
