// Per-tenant accounting: the durable ledger, weighted admission buckets,
// and deficit-round-robin dispatch state (DESIGN.md §15).
//
// One TenantState per tenant id, three lifetimes of state side by side:
//
//   ledger      acked / cancel_reqs / delivered / cancelled / requeued are
//               derived EXCLUSIVELY from the WAL op stream (core.hpp routes
//               live ops and recovery replay through the same observer), so
//               they are bit-exact across kill -9. The conservation law the
//               smoke test audits: acked = delivered + cancelled + queued.
//   admission   a weighted token bucket, refilled lazily at touch time at
//               rate admit_rate * weight / total_active_weight. Volatile by
//               design: rate limits meter the FUTURE; replaying the past
//               into them would double-charge tenants for work already
//               admitted. Buckets gate only above the overload watermark
//               (core.hpp), so an underloaded server never queues a token.
//   dispatch    the DRR deficit. Each dispatch round credits quantum *
//               weight and serving one job costs 1, so over any backlogged
//               interval tenant shares converge to their weights. Also
//               volatile: a deficit is a sub-job rounding remainder, worth
//               less than one job across a restart.
//
// The table iterates in tenant-id order (std::map) so DRR rounds are
// deterministic — same backlog, same weights, same deliveries, every run.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>

#include "svc/proto.hpp"

namespace ph::svc {

struct TenantState {
  double weight = 1.0;

  // ----- durable ledger (WAL-derived; see core.hpp absorb_record) -----
  std::uint64_t acked = 0;
  std::uint64_t cancel_reqs = 0;
  std::uint64_t delivered = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t requeued = 0;

  // ----- volatile service state -----
  std::uint64_t shed = 0;       ///< kOverloaded refusals (since this boot)
  double tokens = 0.0;          ///< admission bucket level, in jobs
  std::uint64_t refill_ns = 0;  ///< clock of the last bucket refill
  double deficit = 0.0;         ///< DRR credit, in jobs

  /// Jobs this tenant has been acked for that are not yet resolved — the
  /// per-tenant share of the durable backlog.
  std::uint64_t queued() const noexcept {
    const std::uint64_t resolved = delivered + cancelled;
    return acked > resolved ? acked - resolved : 0;
  }
};

class TenantTable {
 public:
  using WeightFn = std::function<double(std::uint32_t)>;

  /// `weight` maps tenant id -> fair-share weight (>0); unset = 1.0 for all.
  explicit TenantTable(WeightFn weight = nullptr) : weight_(std::move(weight)) {}

  /// The tenant's state, created (and its weight fixed) on first touch.
  TenantState& at(std::uint32_t tenant) {
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) {
      TenantState st;
      if (weight_) st.weight = std::max(weight_(tenant), 1e-9);
      total_weight_ += st.weight;
      it = tenants_.emplace(tenant, st).first;
    }
    return it->second;
  }

  /// Lazy weighted refill + take: true when a token was available. Refill
  /// rate is this tenant's weighted slice of `admit_rate_per_sec`; capacity
  /// `burst` lets an idle tenant absorb its own arrival bursts without
  /// touching anyone else's slice.
  bool try_take_token(std::uint32_t tenant, std::uint64_t now_ns,
                      double admit_rate_per_sec, double burst) {
    TenantState& st = at(tenant);
    const double rate =
        admit_rate_per_sec * st.weight / std::max(total_weight_, 1e-9);
    if (st.refill_ns == 0) {
      st.tokens = burst;  // first touch starts full: bursts are the norm
    } else if (now_ns > st.refill_ns) {
      st.tokens = std::min(
          burst, st.tokens + rate * static_cast<double>(now_ns - st.refill_ns) / 1e9);
    }
    st.refill_ns = now_ns;
    if (st.tokens < 1.0) return false;
    st.tokens -= 1.0;
    return true;
  }

  std::size_t size() const noexcept { return tenants_.size(); }
  double total_weight() const noexcept { return total_weight_; }

  /// Tenant-id-ordered iteration (deterministic DRR rounds).
  auto begin() noexcept { return tenants_.begin(); }
  auto end() noexcept { return tenants_.end(); }
  auto begin() const noexcept { return tenants_.begin(); }
  auto end() const noexcept { return tenants_.end(); }

  /// Ledger rows for kStatsReply, tenant-id ordered.
  std::vector<TenantStatRow> stat_rows() const {
    std::vector<TenantStatRow> rows;
    rows.reserve(tenants_.size());
    for (const auto& [id, st] : tenants_) {
      TenantStatRow r;
      r.tenant = id;
      r.acked = st.acked;
      r.cancel_reqs = st.cancel_reqs;
      r.delivered = st.delivered;
      r.cancelled = st.cancelled;
      r.requeued = st.requeued;
      r.shed = st.shed;
      rows.push_back(r);
    }
    return rows;
  }

 private:
  WeightFn weight_;
  std::map<std::uint32_t, TenantState> tenants_;
  double total_weight_ = 0.0;
};

}  // namespace ph::svc
