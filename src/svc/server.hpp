// The phd event loop: framed requests over localhost TCP into SchedulerCore
// (DESIGN.md §15).
//
// One thread, poll(2), nonblocking fds — the same stance as the metrics
// publisher. Concurrency lives where the library already earns it (the
// sharded cycle, the staging slots); the protocol edge stays serial so
// every WAL record, ack, and ledger transition has one total order.
//
// Request handling per loop iteration:
//
//   read      every readable connection feeds its FrameParser; complete
//             frames decode (strictly) and dispatch. Schedule/Cancel stage
//             into the core and park their ack in the connection's deferred
//             queue — acks are withheld until the op's admission record is
//             durable. PollDue/Stats execute inline. A poisoned parser or
//             undecodable frame kills the connection (kError first when the
//             stream still parses).
//   commit    one group commit admits everything staged this iteration as
//             ONE WAL record (+ one fsync under kEveryRecord); then every
//             parked ack flushes. This is the fsync-policy/latency tradeoff
//             made real: batching N acks behind one record.
//   write     drain outbufs; a connection whose outbuf exceeds the cap is a
//             dead-slow consumer and is dropped (backpressure, not OOM).
//
// Backpressure ladder (client-visible order): parked-ack depth over
// max_inflight => immediate kOverloaded (cheapest — core untouched); then
// the core's hard max_backlog wall; then per-tenant token debt above the
// overload watermark (core.hpp).
//
// Drain sequence (kShutdown or stop()): stop accepting; stop reading;
// execute what's already parsed; final commit; flush every outbuf (bounded
// by drain_timeout); ack the shutdown requester last; exit. kill -9 instead
// of drain is the recovery path's job, and the service-smoke CI job does
// exactly that.
//
// Liveness: a PhaseWatchdog channel beats once per loop iteration; its
// monitor thread dumps the flight recorder on a stall. The SnapshotPublisher
// serves /metrics, /metrics.json and /healthz with the svc_* gauges.
#pragma once

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "dist/frame.hpp"
#include "obs/publisher.hpp"
#include "robustness/watchdog.hpp"
#include "svc/core.hpp"
#include "svc/proto.hpp"

namespace ph::svc {

struct ServerConfig {
  SvcConfig core;
  std::uint16_t port = 0;          ///< 0 = ephemeral (read back via port())
  std::size_t max_conns = 256;
  std::size_t max_inflight = 4096; ///< parked (unacked) ops before kOverloaded
  std::size_t max_outbuf = 16u << 20;  ///< per-conn write backlog before drop
  int idle_timeout_ms = 10;        ///< poll timeout = commit cadence when idle
  std::uint64_t drain_timeout_ms = 2000;
  int metrics_port = -1;           ///< -1 off; 0 ephemeral (SnapshotPublisher)
  std::string metrics_file;
  bool watchdog = true;
  std::uint64_t watchdog_stall_ms = 2000;
};

class Server {
 public:
  explicit Server(ServerConfig cfg) : cfg_(std::move(cfg)), core_(cfg_.core) {
    core_.register_gauges("svc");
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) throw std::runtime_error("svc: socket() failed");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    ::sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(cfg_.port);
    if (::bind(listen_fd_, reinterpret_cast<::sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 128) != 0) {
      ::close(listen_fd_);
      throw std::runtime_error("svc: cannot listen on 127.0.0.1:" +
                               std::to_string(cfg_.port));
    }
    ::socklen_t alen = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<::sockaddr*>(&addr), &alen);
    port_ = ntohs(addr.sin_port);

    if (cfg_.metrics_port >= 0 || !cfg_.metrics_file.empty()) {
      obs::SnapshotPublisher::Config pc;
      pc.port = cfg_.metrics_port;
      pc.file_path = cfg_.metrics_file;
      publisher_ = std::make_unique<obs::SnapshotPublisher>(pc);
      publisher_->start();
    }
    if (cfg_.watchdog) {
      robustness::PhaseWatchdog::Config wc;
      wc.stall_timeout_ns = cfg_.watchdog_stall_ms * 1000000ull;
      watchdog_ = std::make_unique<robustness::PhaseWatchdog>(wc);
      loop_channel_ = watchdog_->add_channel("svc_loop");
      watchdog_->start();
    }
  }

  ~Server() {
    watchdog_.reset();  // stop the monitor before tearing the loop state down
    publisher_.reset();
    for (auto& c : conns_) {
      if (c->fd >= 0) ::close(c->fd);
    }
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  std::uint16_t port() const noexcept { return port_; }
  SchedulerCore& core() noexcept { return core_; }
  int metrics_port() const noexcept {
    return publisher_ ? publisher_->port() : -1;
  }

  /// Requests drain-and-exit from another thread (or a signal handler via a
  /// self-pipe — phd uses a flag poked by SIGTERM).
  void stop() noexcept { stop_.store(true, std::memory_order_release); }

  /// Runs the event loop until a drain completes. Returns the number of
  /// requests served.
  std::uint64_t run() {
    std::uint64_t drain_deadline = 0;
    while (true) {
      if (watchdog_) watchdog_->beat(loop_channel_);
      if (!draining_ && stop_.load(std::memory_order_acquire)) begin_drain();

      build_pollfds();
      const int pr = ::poll(pfds_.data(), static_cast<nfds_t>(pfds_.size()),
                            cfg_.idle_timeout_ms);
      if (pr < 0 && errno != EINTR) break;

      std::size_t pi = 0;
      if (!draining_) {
        if ((pfds_[pi].revents & POLLIN) != 0) accept_new();
        ++pi;
      }
      for (std::size_t ci = 0; ci < conns_.size(); ++ci, ++pi) {
        Conn& c = *conns_[ci];
        if (c.fd < 0) continue;
        const short re = pfds_[pi].revents;
        if ((re & (POLLERR | POLLHUP | POLLNVAL)) != 0 && c.outbuf_empty()) {
          close_conn(c);
          continue;
        }
        if (!draining_ && (re & POLLIN) != 0) read_conn(c);
      }

      // Group commit: one admission record covers every op staged above,
      // then the parked acks become sendable.
      core_.commit();
      flush_parked_acks();

      for (auto& c : conns_) {
        if (c->fd >= 0 && !c->outbuf_empty()) write_conn(*c);
      }
      reap_closed();

      if (draining_) {
        if (drain_deadline == 0) {
          drain_deadline = mono_ms() + cfg_.drain_timeout_ms;
        }
        const bool flushed = all_flushed();
        if (flushed || mono_ms() >= drain_deadline) {
          if (shutdown_conn_ != nullptr && shutdown_conn_->fd >= 0) {
            // The shutdown requester is acked dead last, after the final
            // commit — its ack means "everything acked before this is on
            // disk and every outbuf drained".
            SvcMsg ack;
            ack.type = SvcType::kAck;
            ack.c = core_.now_ns();
            ack.d = core_.durable().op_seq();
            send_now(*shutdown_conn_, ack);
            flush_blocking(*shutdown_conn_, mono_ms() + cfg_.drain_timeout_ms);
          }
          break;
        }
      }
    }
    return served_;
  }

 private:
  struct Parked {
    SvcMsg ack;  ///< ready-to-send kAck, parked until the commit
  };

  struct Conn {
    int fd = -1;
    dist::FrameParser parser;
    std::vector<std::uint8_t> out;     ///< pending wire bytes
    std::size_t out_off = 0;
    std::vector<Parked> parked;        ///< acks awaiting durability
    bool kill = false;                 ///< close once outbuf drains

    bool outbuf_empty() const noexcept { return out_off >= out.size(); }
  };

  static std::uint64_t mono_ms() {
    ::timespec ts{};
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000ull +
           static_cast<std::uint64_t>(ts.tv_nsec) / 1000000ull;
  }

  void build_pollfds() {
    pfds_.clear();
    if (!draining_) {
      const bool room = conns_.size() < cfg_.max_conns;
      pfds_.push_back(::pollfd{listen_fd_, static_cast<short>(room ? POLLIN : 0), 0});
    }
    for (auto& c : conns_) {
      short ev = 0;
      if (c->fd >= 0) {
        if (!draining_) ev |= POLLIN;
        if (!c->outbuf_empty()) ev |= POLLOUT;
      }
      pfds_.push_back(::pollfd{c->fd, ev, 0});
    }
  }

  void accept_new() {
    while (conns_.size() < cfg_.max_conns) {
      const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) return;  // EAGAIN or transient: next poll round retries
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto c = std::make_unique<Conn>();
      c->fd = fd;
      conns_.push_back(std::move(c));
    }
  }

  void read_conn(Conn& c) {
    std::uint8_t chunk[16384];
    while (true) {
      const ::ssize_t r = ::recv(c.fd, chunk, sizeof(chunk), 0);
      if (r < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_conn(c);
        return;
      }
      if (r == 0) {  // EOF — peer is done sending; finish writes, then close
        c.kill = true;
        break;
      }
      c.parser.feed(std::span<const std::uint8_t>(chunk, static_cast<std::size_t>(r)));
      if (static_cast<std::size_t>(r) < sizeof(chunk)) break;
    }
    std::vector<std::uint8_t> payload;
    while (c.fd >= 0) {
      const dist::FrameStatus st = c.parser.next(payload);
      if (st == dist::FrameStatus::kNeedMore) break;
      if (st == dist::FrameStatus::kBad) {
        // Corrupt stream: no error frame — the stream itself is the casualty.
        close_conn(c);
        return;
      }
      handle_frame(c, payload);
    }
  }

  void handle_frame(Conn& c, std::span<const std::uint8_t> payload) {
    ++served_;
    SvcMsg m;
    if (!decode_svc(payload, m)) {
      SvcMsg err;
      err.type = SvcType::kError;
      err.a = kErrBadRequest;
      send_now(c, err);
      c.kill = true;  // protocol skew: answer loudly, then hang up
      return;
    }
    switch (m.type) {
      case SvcType::kSchedule:
      case SvcType::kCancel: {
        if (draining_) return reply_error(c, m, kErrDraining);
        if (parked_total_ >= cfg_.max_inflight) {
          // Cheapest shed: the loop itself is the bottleneck; don't even
          // touch the core.
          return reply_overloaded(c, m);
        }
        std::uint64_t deadline = m.a;
        const Admit a =
            m.type == SvcType::kSchedule
                ? core_.schedule(m.tenant, m.a, m.b, m.c, m.d, &deadline)
                : core_.cancel(m.tenant, m.a, m.b);
        if (a == Admit::kOverloaded) return reply_overloaded(c, m);
        if (a == Admit::kTransient) return reply_error(c, m, kErrTransient);
        Parked p;
        p.ack.type = SvcType::kAck;
        p.ack.tenant = m.tenant;
        p.ack.a = deadline;
        p.ack.b = m.b;
        c.parked.push_back(std::move(p));
        ++parked_total_;
        return;
      }
      case SvcType::kPollDue: {
        jobs_scratch_.clear();
        std::uint64_t now = 0;
        core_.poll_due(static_cast<std::size_t>(m.a), jobs_scratch_, &now);
        // poll_due commits staged work as a side effect: parked acks from
        // earlier in this iteration are durable too. Flush them FIRST so no
        // client can see its own job delivered before it was acked.
        flush_parked_acks();
        SvcMsg rep;
        rep.type = SvcType::kDueReply;
        rep.tenant = m.tenant;
        rep.a = now;
        rep.b = core_.backlog();
        rep.jobs = jobs_scratch_;
        send_now(c, rep);
        return;
      }
      case SvcType::kStats: {
        SvcMsg rep;
        rep.type = SvcType::kStatsReply;
        rep.tenant = m.tenant;
        rep.a = core_.now_ns();
        rep.b = core_.backlog();
        rep.c = core_.durable().op_seq();
        rep.stats = core_.stat_rows();
        rep.d = rep.stats.size();
        send_now(c, rep);
        return;
      }
      case SvcType::kShutdown: {
        begin_drain();
        shutdown_conn_ = &c;
        return;
      }
      default:
        return reply_error(c, m, kErrBadRequest);
    }
  }

  void reply_overloaded(Conn& c, const SvcMsg& m) {
    SvcMsg rep;
    rep.type = SvcType::kOverloaded;
    rep.tenant = m.tenant;
    rep.a = m.a;
    rep.b = m.b;
    rep.c = core_.now_ns();
    send_now(c, rep);
  }

  void reply_error(Conn& c, const SvcMsg& m, std::uint64_t code) {
    SvcMsg rep;
    rep.type = SvcType::kError;
    rep.tenant = m.tenant;
    rep.a = code;
    rep.b = m.b;
    send_now(c, rep);
  }

  /// Encodes + frames a reply into the connection's outbuf (sent by the
  /// write phase). Oversized outbuf = dead-slow consumer: drop it.
  void send_now(Conn& c, const SvcMsg& m) {
    if (c.fd < 0) return;
    encode_svc(m, enc_scratch_);
    const std::size_t live = c.out.size() - c.out_off;
    if (live + enc_scratch_.size() + 8 > cfg_.max_outbuf) {
      close_conn(c);
      return;
    }
    if (c.out_off > 0 && c.out_off == c.out.size()) {
      c.out.clear();
      c.out_off = 0;
    }
    persist::append_frame(c.out, std::span<const std::uint8_t>(enc_scratch_));
  }

  /// After a commit with the staging fully drained, every parked ack's
  /// admission record is on disk (per fsync policy): release them in order.
  void flush_parked_acks() {
    if (!core_.staged_fully_admitted()) return;  // injected flush fault: the
                                                 // restaged ops commit later
    const std::uint64_t now = core_.now_ns();
    const std::uint64_t seq = core_.durable().op_seq();
    for (auto& c : conns_) {
      if (c->parked.empty()) continue;
      // send_now can close_conn(*c) (outbuf cap), which clears c->parked —
      // detach the batch first so the loop never walks a mutated vector.
      auto parked = std::move(c->parked);
      c->parked.clear();
      parked_total_ -= parked.size();
      for (Parked& p : parked) {
        if (c->fd < 0) break;
        p.ack.c = now;
        p.ack.d = seq;
        send_now(*c, p.ack);
      }
    }
  }

  /// Bounded blocking flush for the final shutdown ack: the loop is about to
  /// exit, so a healthy-but-momentarily-full socket (EAGAIN, partial write)
  /// must not cost the requester its ack. Polls for POLLOUT until the outbuf
  /// drains or deadline_ms passes.
  void flush_blocking(Conn& c, std::uint64_t deadline_ms) {
    while (c.fd >= 0 && !c.outbuf_empty()) {
      write_conn(c);
      if (c.fd < 0 || c.outbuf_empty()) return;
      const std::uint64_t now = mono_ms();
      if (now >= deadline_ms) return;
      ::pollfd p{c.fd, POLLOUT, 0};
      const int pr = ::poll(&p, 1, static_cast<int>(deadline_ms - now));
      if (pr < 0 && errno != EINTR) return;
      if (pr > 0 && (p.revents & (POLLERR | POLLNVAL)) != 0) return;
    }
  }

  void write_conn(Conn& c) {
    while (c.fd >= 0 && !c.outbuf_empty()) {
      const ::ssize_t w = ::send(c.fd, c.out.data() + c.out_off,
                                 c.out.size() - c.out_off, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        close_conn(c);
        return;
      }
      c.out_off += static_cast<std::size_t>(w);
    }
    if (c.outbuf_empty()) {
      c.out.clear();
      c.out_off = 0;
      if (c.kill) close_conn(c);
    }
  }

  void close_conn(Conn& c) {
    if (c.fd < 0) return;
    ::close(c.fd);
    c.fd = -1;
    parked_total_ -= c.parked.size();
    c.parked.clear();
    if (shutdown_conn_ == &c) shutdown_conn_ = nullptr;
  }

  void reap_closed() {
    for (std::size_t i = 0; i < conns_.size();) {
      if (conns_[i]->fd < 0) {
        if (shutdown_conn_ == conns_[i].get()) shutdown_conn_ = nullptr;
        conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }

  void begin_drain() {
    if (draining_) return;
    draining_ = true;
    core_.drain();
  }

  bool all_flushed() const {
    if (!core_.staged_fully_admitted()) return false;
    for (const auto& c : conns_) {
      if (c->fd >= 0 && (!c->outbuf_empty() || !c->parked.empty())) return false;
    }
    return true;
  }

  ServerConfig cfg_;
  SchedulerCore core_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::vector<::pollfd> pfds_;
  std::vector<Job> jobs_scratch_;
  std::vector<std::uint8_t> enc_scratch_;
  std::size_t parked_total_ = 0;
  std::uint64_t served_ = 0;
  bool draining_ = false;
  Conn* shutdown_conn_ = nullptr;
  std::atomic<bool> stop_{false};
  std::unique_ptr<obs::SnapshotPublisher> publisher_;
  std::unique_ptr<robustness::PhaseWatchdog> watchdog_;
  std::size_t loop_channel_ = 0;
};

}  // namespace ph::svc
