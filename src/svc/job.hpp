// The scheduler service's unit of work: one delayed job owned by a tenant.
//
// A Job is deliberately a POD the rest of the tree already knows how to
// handle: it flows through ShardedHeap as the value_type, through the WAL as
// a raw trivially-copyable record item, and over the wire inside CRC frames.
// All service-level state distinctions ride in `flags`:
//
//   kCancelFlag    this is a cancel MARKER, not a job. Cancellation goes
//                  through the same logged insert path as scheduling, so it
//                  is durable for free; the ordering below guarantees the
//                  marker pops no later than its target, and the core
//                  annihilates the pair at pop time (core.hpp).
//   kRequeuedFlag  this job was popped by a PollDue transaction but not
//                  delivered (not due yet, or past the poller's budget /
//                  fair share) and is being re-inserted by the closing
//                  record. The flag is excluded from identity so a requeued
//                  job still matches its ledger entry and any cancel marker.
//
// Ordering (JobLess) is deadline-major — the heap IS the timer wheel — with
// (tenant, id) tie-breaks so the order is total and replay-stable, and a
// final rule putting cancel markers AHEAD of their victim at equal identity:
// a marker never pops after its target when both are queued.
#pragma once

#include <cstdint>
#include <type_traits>

namespace ph::svc {

inline constexpr std::uint32_t kCancelFlag = 1u << 0;
inline constexpr std::uint32_t kRequeuedFlag = 1u << 1;

struct Job {
  std::uint64_t deadline_ns = 0;  ///< absolute due time on the server clock
  std::uint64_t id = 0;           ///< client-chosen, unique per (tenant, id)
  std::uint32_t tenant = 0;
  std::uint32_t flags = 0;
  std::uint64_t payload0 = 0;     ///< opaque to the service
  std::uint64_t payload1 = 0;
};
static_assert(std::is_trivially_copyable_v<Job>);
static_assert(sizeof(Job) == 40, "Job is a wire/WAL record item: keep it packed");

/// Identity: what Cancel targets and what the ledger counts. Excludes flags
/// (a requeued job is the same job) and payload.
inline bool same_job(const Job& a, const Job& b) noexcept {
  return a.deadline_ns == b.deadline_ns && a.id == b.id && a.tenant == b.tenant;
}

struct JobLess {
  bool operator()(const Job& a, const Job& b) const noexcept {
    if (a.deadline_ns != b.deadline_ns) return a.deadline_ns < b.deadline_ns;
    if (a.tenant != b.tenant) return a.tenant < b.tenant;
    if (a.id != b.id) return a.id < b.id;
    // Equal identity: cancel markers first, so annihilation happens at the
    // marker's pop, never after its victim was already handed out.
    return (a.flags & kCancelFlag) > (b.flags & kCancelFlag);
  }
};

}  // namespace ph::svc
