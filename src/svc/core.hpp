// SchedulerCore: the multi-tenant event-scheduler engine behind phd
// (DESIGN.md §15). Composes the tree's existing layers —
//
//   IngestTier< DurableHeap< ShardedHeap<Job> > >
//
// staging-buffered enqueue (PR 8), WAL-first durability (PR 5), key-range
// sharded batch cycles (PR 3/7) — and adds the service semantics on top:
// weighted fair admission, deficit-round-robin dispatch, durable cancel,
// and an exactly-once delivery protocol whose ONLY durable artifact is the
// WAL the heap already writes.
//
// ## The ledger is a function of the WAL
//
// Every piece of service state that must survive kill -9 — per-tenant
// acked/delivered/cancelled counts, cancel tombstones, the set of popped-
// but-uncommitted jobs — is derived from the op stream via DurableHeap's
// OpObserver, which fires identically for live ops and for recovery replay.
// There is no second log and no checkpointed sidecar: checkpoints are
// DISABLED (checkpoint_on_open=false, interval=0), recovery replays the
// full WAL from sequence 0, and the observer rebuilds the ledger record by
// record. What recovery computes is what the live path computed, by
// construction. (Tradeoff: the WAL grows without bound — see the ROADMAP
// durability item; delta checkpoints would need a ledger image alongside.)
//
// ## Exactly-once delivery over cycle() records
//
// A PollDue is a WAL transaction of exactly two records:
//
//   1. POP      cycle(staged-admissions, budget) — pops the budget smallest
//               jobs. Cancel markers annihilate their victims here (marker
//               sorts first; victim hits the tombstone). Survivors become
//               `pending_delivery`.
//   2. CLOSE    cycle(requeues, 0) — the not-delivered survivors (not due,
//               or past the poller's max / DRR share) re-inserted with
//               kRequeuedFlag. This record is the COMMIT MARKER: absorbing
//               a k==0 record resolves every still-pending job as
//               delivered. The reply frame is sent only after it lands.
//
// Replay sees the same two records and resolves them the same way. A crash
// BETWEEN the records leaves an unterminated transaction: recovery finds
// pending_delivery non-empty at end of WAL and requeues those jobs — the
// client never got a reply, so nothing is lost and nothing duplicates. The
// remaining window (CLOSE durable, reply frame lost in the crash) is
// at-most-once toward the client and exactly-once in the server ledger; the
// service-smoke job bounds it to one in-flight poll.
//
// ## Fairness
//
// Admission: per-tenant token buckets refilled at admit_rate * weight /
// total_weight, gating only above the overload watermark (an underloaded
// server admits everyone); above the hard max_backlog wall everything sheds.
// Dispatch: deficit round robin across tenants over the popped due set, so
// when polls are the scarce resource, delivered shares track weights.
//
// Threading: stage()-bearing schedule()/cancel() are safe from any thread;
// commit()/poll_due()/stats are driver-only, like every cycle() in the tree.
#pragma once

#include <time.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "core/sharded_heap.hpp"
#include "ingest/ingest_tier.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics_registry.hpp"
#include "persist/recovery.hpp"
#include "robustness/failpoint.hpp"
#include "svc/job.hpp"
#include "svc/tenant.hpp"
#include "telemetry/telemetry.hpp"
#include "util/assert.hpp"

namespace ph::svc {

struct SvcConfig {
  std::string dir;                    ///< durable directory (WAL home)
  std::size_t shards = 4;
  std::size_t node_capacity = 128;
  std::size_t workers = 0;            ///< ShardedHeap worker team (0 = serial)
  std::size_t producers = 4;          ///< ingest staging slots (tenant-hashed)
  persist::FsyncPolicy fsync = persist::FsyncPolicy::kNever;

  // Backpressure: above `overload_watermark` jobs in the tier, schedules are
  // token-gated per tenant; at `max_backlog` everything sheds (the OOM wall).
  std::size_t max_backlog = 1u << 20;
  std::size_t overload_watermark = 1u << 14;
  double admit_rate = 250000.0;       ///< jobs/sec shared across tenants
  double burst = 512.0;               ///< per-tenant bucket capacity, in jobs

  double drr_quantum = 4.0;           ///< jobs credited per DRR round per weight
  std::size_t poll_over_pull = 2;     ///< pop budget = max * this (headroom for
                                      ///< markers + non-due + DRR skips)
  std::size_t max_poll_batch = 8192;  ///< hard cap on one POP record
  std::size_t max_tombstones = 1u << 20;  ///< unmatched-cancel cap (best effort)

  TenantTable::WeightFn weight;       ///< tenant -> fair weight (unset = 1.0)
  std::uint64_t (*clock)() = nullptr; ///< ns clock (nullptr = CLOCK_REALTIME);
                                      ///< wall time so deadlines survive restarts
};

enum class Admit : std::uint8_t {
  kOk = 0,        ///< staged; durable + acked after the next commit()
  kOverloaded,    ///< shed by backpressure — client should back off
  kTransient,     ///< internal fault absorbed (injected); safe to retry
};

enum class PollStatus : std::uint8_t {
  kOk = 0,
  kAborted,       ///< dispatch fault absorbed: everything requeued, deliver
                  ///< nothing — the transaction machinery ate the failure
};

/// Aggregate service counters (sum over tenants + transaction counts).
struct SvcStats {
  std::uint64_t acked = 0;
  std::uint64_t cancel_reqs = 0;
  std::uint64_t delivered = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t requeued = 0;
  std::uint64_t shed = 0;
  std::uint64_t polls = 0;
  std::uint64_t commits = 0;
  std::uint64_t aborted_polls = 0;
  std::uint64_t recovered_inflight = 0;  ///< jobs requeued from an unterminated
                                         ///< poll transaction at recovery
};

class SchedulerCore {
 public:
  using Inner = persist::DurableHeap<ShardedHeap<Job, JobLess>>;
  using Tier = ingest::IngestTier<Inner, Job, JobLess>;

  explicit SchedulerCore(SvcConfig cfg)
      : cfg_(std::move(cfg)),
        tenants_(cfg_.weight),
        tier_(make_inner(), make_ingest_cfg(), JobLess{}) {
    recovering_ = false;
    if (durable().recovery_info().checkpoint_loaded) {
      // A checkpoint would have let replay start mid-history, which the
      // ledger cannot survive. The service never writes one; finding one
      // means this directory belongs to something else.
      throw persist::CorruptStateError(
          "svc: durable dir " + cfg_.dir +
          " contains a checkpoint — the scheduler ledger needs full-WAL "
          "replay; refusing a foreign/partial directory");
    }
    if (!pending_delivery_.empty()) {
      // Unterminated poll transaction: the crash hit between POP and CLOSE,
      // so no client was answered. Requeue the orphans; they stay queued.
      stats_.recovered_inflight = pending_delivery_.size();
      obs::flight(obs::FlightKind::kRecoveryDone,
                  pending_delivery_.size(), /*b=*/1);
      close_transaction(/*requeue_everything=*/true, /*truncated=*/true);
    }
    refresh_live();
  }

  SchedulerCore(const SchedulerCore&) = delete;
  SchedulerCore& operator=(const SchedulerCore&) = delete;

  // ------------------------------------------------------------- enqueue side

  /// Stages one job. kOk means "will be durable + acked at the next
  /// commit()/poll_due()" — callers must not acknowledge before then.
  /// Thread-safe (stage() is), though admission accounting is exact only
  /// from the driver thread; phd calls everything from its event loop.
  Admit schedule(std::uint32_t tenant, std::uint64_t delay_ns, std::uint64_t id,
                 std::uint64_t payload0, std::uint64_t payload1,
                 std::uint64_t* deadline_out = nullptr) {
    try {
      robustness::fire_fault(robustness::FailSite::kSvcAccept);
    } catch (const robustness::InjectedFailure& f) {
      robustness::note_recovery(f.site);
      return Admit::kTransient;  // nothing staged; clean refusal
    }
    const std::uint64_t now = now_ns();
    const std::size_t backlog = tier_.size();
    if (backlog >= cfg_.max_backlog) return shed(tenant, backlog);
    if (backlog >= cfg_.overload_watermark &&
        !tenants_.try_take_token(tenant, now, cfg_.admit_rate, cfg_.burst)) {
      return shed(tenant, backlog);
    }
    if (overloaded_) {
      overloaded_ = false;
      live_.overloaded.store(0, std::memory_order_relaxed);
    }
    Job j;
    // Saturate: delay_ns is client-controlled, and a wrapped sum would turn
    // a far-future job into one that is immediately due.
    j.deadline_ns = delay_ns > std::numeric_limits<std::uint64_t>::max() - now
                        ? std::numeric_limits<std::uint64_t>::max()
                        : now + delay_ns;
    j.id = id;
    j.tenant = tenant;
    j.payload0 = payload0;
    j.payload1 = payload1;
    tier_.stage(tenant, j);
    if (deadline_out != nullptr) *deadline_out = j.deadline_ns;
    return Admit::kOk;
  }

  /// Stages a durable cancel marker for job (tenant, deadline, id). Cancels
  /// bypass the token gate — refusing load-shedding work is self-defeating —
  /// but still shed at the hard wall (markers occupy heap space too).
  Admit cancel(std::uint32_t tenant, std::uint64_t deadline_ns, std::uint64_t id) {
    try {
      robustness::fire_fault(robustness::FailSite::kSvcAccept);
    } catch (const robustness::InjectedFailure& f) {
      robustness::note_recovery(f.site);
      return Admit::kTransient;
    }
    if (tier_.size() >= cfg_.max_backlog) return shed(tenant, tier_.size());
    Job marker;
    marker.deadline_ns = deadline_ns;
    marker.id = id;
    marker.tenant = tenant;
    marker.flags = kCancelFlag;
    tier_.stage(tenant, marker);
    return Admit::kOk;
  }

  /// Group commit: admits everything staged as ONE logged record (one WAL
  /// append, one fsync under kEveryRecord) and returns the admitted count.
  /// The server acks every outstanding schedule/cancel after this returns
  /// with the staging fully drained.
  std::size_t commit() {
    if (tier_.live().staged_depth.load(std::memory_order_relaxed) == 0 &&
        tier_.pending_items() == 0) {
      return 0;  // nothing staged: don't write an empty record per tick
    }
    telemetry::SpanScope span(telemetry::Phase::kSvcCommit);
    PH_ASSERT_MSG(pending_delivery_.empty(), "svc: commit inside a poll txn");
    admitted_in_record_ = 0;
    sink_.clear();
    tier_.cycle({}, 0, sink_);
    ++stats_.commits;
    refresh_live();
    return admitted_in_record_;
  }

  /// True when no staged op is awaiting its admission record — the server's
  /// signal that every outstanding ack is now durable.
  bool staged_fully_admitted() const noexcept {
    return tier_.live().staged_depth.load(std::memory_order_relaxed) == 0 &&
           tier_.pending_items() == 0;
  }

  // ------------------------------------------------------------ dispatch side

  /// One due-dispatch transaction: admit staged work, pop up to the budget,
  /// annihilate cancels, select due jobs fairly (DRR), requeue the rest,
  /// commit, and return the delivered jobs. `out` is appended to.
  PollStatus poll_due(std::size_t max, std::vector<Job>& out,
                      std::uint64_t* server_now = nullptr) {
    telemetry::SpanScope span(telemetry::Phase::kSvcDispatch);
    const std::uint64_t now = now_ns();
    if (server_now != nullptr) *server_now = now;
    ++stats_.polls;
    telemetry::count(telemetry::Counter::kSvcPolls);

    commit();  // staged jobs may be due right now
    if (max == 0 || tier_.size() == 0 || next_due_lb_ > now) {
      refresh_live();
      return PollStatus::kOk;  // provably nothing due: skip the pop churn
    }

    const std::size_t budget =
        std::min(cfg_.max_poll_batch,
                 std::max<std::size_t>(max * std::max<std::size_t>(cfg_.poll_over_pull, 1),
                                       max));
    // 1. POP records. One cycle() pops at most node_capacity (the sharded
    //    heap's k <= r contract), so a large window is a run of POP records;
    //    each stacks into pending_delivery_ via the observer and the single
    //    CLOSE record below commits them all (recovery requeues the whole
    //    stack if we die first). Staged admissions ride the first pop; the
    //    observer routes markers/tombstones and leaves survivors pending.
    std::size_t popped = 0;
    while (popped < budget) {
      const std::size_t k = std::min(budget - popped, cfg_.node_capacity);
      sink_.clear();
      const std::size_t got = tier_.cycle({}, k, sink_);
      popped += got;
      if (got < k) break;  // heap ran dry inside the window
    }

    const bool truncated = popped == budget;
    try {
      robustness::fire_fault(robustness::FailSite::kSvcDispatch);
    } catch (const robustness::InjectedFailure& f) {
      // Mid-transaction death, absorbed: close by requeueing EVERYTHING.
      // Deliver nothing; the jobs stay queued and the ledger stays exact —
      // the same path recovery takes for an unterminated transaction.
      delivered_buf_.clear();
      close_transaction(/*requeue_everything=*/true, truncated);
      ++stats_.aborted_polls;
      robustness::note_recovery(f.site);
      refresh_live();
      return PollStatus::kAborted;
    }

    // 2. Partition survivors: due jobs compete in DRR for `max` slots.
    select_drr(max, now);

    // 3. CLOSE record: requeues in, remaining pending resolve as delivered.
    delivered_buf_.clear();
    close_transaction(/*requeue_everything=*/false, truncated);
    out.insert(out.end(), delivered_buf_.begin(), delivered_buf_.end());
    telemetry::count(telemetry::Counter::kSvcDelivered, delivered_buf_.size());
    refresh_live();
    return PollStatus::kOk;
  }

  /// Graceful drain: make every staged op durable. The heap's remaining
  /// content IS the durable state — nothing else to flush.
  void drain() {
    obs::flight(obs::FlightKind::kSvcDrain,
                tier_.live().staged_depth.load(std::memory_order_relaxed),
                tier_.size());
    commit();
    live_.draining.store(1, std::memory_order_relaxed);
  }

  // -------------------------------------------------------------- observers

  std::uint64_t now_ns() const {
    if (cfg_.clock != nullptr) return cfg_.clock();
    ::timespec ts{};
    ::clock_gettime(CLOCK_REALTIME, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
  }

  std::size_t backlog() const noexcept { return tier_.size(); }
  const SvcConfig& config() const noexcept { return cfg_; }
  Tier& tier() noexcept { return tier_; }
  Inner& durable() noexcept { return tier_.inner(); }
  const Inner& durable() const noexcept { return tier_.inner(); }
  TenantTable& tenants() noexcept { return tenants_; }
  std::vector<TenantStatRow> stat_rows() const { return tenants_.stat_rows(); }

  SvcStats stats() const {
    SvcStats s = stats_;
    for (const auto& [id, st] : tenants_) {
      (void)id;
      s.acked += st.acked;
      s.cancel_reqs += st.cancel_reqs;
      s.delivered += st.delivered;
      s.cancelled += st.cancelled;
      s.requeued += st.requeued;
      s.shed += st.shed;
    }
    return s;
  }

  /// Ledger + tier invariants. Exact only at quiescent points with the
  /// staging drained (the ledger counts durable ops; staged ones are in
  /// flight). The conservation law: every acked job is delivered, cancelled,
  /// or still in the heap — and the heap's size agrees item for item.
  bool check_invariants(std::string* why = nullptr) {
    if (!tier_.check_invariants(why)) return false;
    if (!staged_fully_admitted()) return true;  // mid-flight: size not exact
    std::uint64_t queued_jobs = 0, acked = 0, markers_alive = 0;
    std::uint64_t unmatched = 0;
    for (const auto& [key, n] : tombstones_) {
      (void)key;
      unmatched += n;
    }
    std::uint64_t cancel_reqs = 0, cancelled = 0;
    for (const auto& [id, st] : tenants_) {
      (void)id;
      queued_jobs += st.queued();
      acked += st.acked;
      cancel_reqs += st.cancel_reqs;
      cancelled += st.cancelled;
    }
    markers_alive = cancel_reqs - cancelled - unmatched - pruned_tombstones_;
    const std::uint64_t expect = queued_jobs + markers_alive +
                                 static_cast<std::uint64_t>(pending_delivery_.size());
    if (expect != tier_.size()) {
      if (why != nullptr) {
        *why = "svc ledger conservation broken: queued " +
               std::to_string(queued_jobs) + " + live markers " +
               std::to_string(markers_alive) + " + pending " +
               std::to_string(pending_delivery_.size()) + " != tier size " +
               std::to_string(tier_.size());
      }
      return false;
    }
    return true;
  }

  /// Lock-free gauge mirror (same convention as every other component).
  struct Live {
    std::atomic<std::uint64_t> tenants{0};
    std::atomic<std::uint64_t> queue_depth{0};   ///< jobs anywhere in the tier
    std::atomic<std::uint64_t> pending{0};       ///< popped, uncommitted
    std::atomic<std::uint64_t> tombstones{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> delivered{0};
    std::atomic<std::uint64_t> acked{0};
    std::atomic<std::uint64_t> overloaded{0};    ///< 1 while shedding
    std::atomic<std::uint64_t> draining{0};
  };
  const Live& live() const noexcept { return live_; }

  /// Publishes the svc_* gauges ph_top renders (tenants, queue depth, shed,
  /// delivered/acked totals) under the `heap` label.
  void register_gauges(const std::string& heap = "svc") {
    gauges_.clear();
    tier_.register_gauges(heap);
    durable().register_gauges(heap);
    Live* lv = &live_;
    struct Simple { const char* name; const char* help; std::atomic<std::uint64_t> Live::*field; };
    static constexpr Simple kSimple[] = {
        {"svc_tenants", "Tenants seen by the scheduler service.", &Live::tenants},
        {"svc_queue_depth", "Jobs anywhere in the service tier (staged+queued).", &Live::queue_depth},
        {"svc_pending_delivery", "Jobs popped but not yet committed to a poller.", &Live::pending},
        {"svc_tombstones", "Unmatched cancel tombstones held.", &Live::tombstones},
        {"svc_shed_total", "Requests refused with kOverloaded (since boot).", &Live::shed},
        {"svc_delivered_total", "Jobs delivered to pollers (WAL-derived).", &Live::delivered},
        {"svc_acked_total", "Schedules made durable and acked (WAL-derived).", &Live::acked},
        {"svc_overloaded", "1 while admission is shedding.", &Live::overloaded},
        {"svc_draining", "1 once drain has begun.", &Live::draining},
    };
    for (const Simple& g : kSimple) {
      auto field = g.field;
      gauges_.add(obs::GaugeDesc{g.name, {{"heap", heap}}, g.help},
                  [lv, field] { return static_cast<double>(
                                    (lv->*field).load(std::memory_order_relaxed)); });
    }
  }

 private:
  using TombKey = std::tuple<std::uint64_t, std::uint64_t, std::uint32_t>;
  static TombKey tomb_key(const Job& j) noexcept {
    return TombKey{j.deadline_ns, j.id, j.tenant};
  }

  Inner make_inner() {
    persist::DurableOptions opt;
    opt.dir = cfg_.dir;
    opt.fsync = cfg_.fsync;
    opt.checkpoint_interval = 0;   // never: the ledger needs full-WAL replay
    opt.checkpoint_on_open = false;
    ShardedHeap<Job, JobLess>::Config sc;
    sc.shards = cfg_.shards == 0 ? 1 : cfg_.shards;
    sc.workers = cfg_.workers;
    return Inner(
        ShardedHeap<Job, JobLess>(cfg_.node_capacity, sc, JobLess{}),
        std::move(opt),
        [this](persist::RecType type, std::uint64_t k, std::span<const Job> items,
               std::span<const Job> out) { absorb_record(type, k, items, out); });
  }

  ingest::IngestConfig make_ingest_cfg() const {
    ingest::IngestConfig ic;
    ic.producers = cfg_.producers == 0 ? 1 : cfg_.producers;
    ic.staleness = 0;  // strict: an acked op is durable, no lag window
    return ic;
  }

  Admit shed(std::uint32_t tenant, std::size_t backlog) {
    TenantState& st = tenants_.at(tenant);
    ++st.shed;
    telemetry::count(telemetry::Counter::kSvcShed);
    live_.shed.fetch_add(1, std::memory_order_relaxed);
    if (!overloaded_) {
      overloaded_ = true;
      obs::flight(obs::FlightKind::kSvcOverload, tenant, backlog);
    }
    live_.overloaded.store(1, std::memory_order_relaxed);
    return Admit::kOverloaded;
  }

  /// THE single source of ledger truth: called by DurableHeap for every
  /// applied op — live and replayed — in identical shape (see file header).
  void absorb_record(persist::RecType, std::uint64_t k, std::span<const Job> items,
                     std::span<const Job> out) {
    // Admissions (and requeue-returns) in the record's fresh items.
    for (const Job& j : items) {
      TenantState& st = tenants_.at(j.tenant);
      if ((j.flags & kRequeuedFlag) != 0 && (j.flags & kCancelFlag) == 0) {
        take_pending(j);
        ++st.requeued;
      } else if ((j.flags & kCancelFlag) != 0) {
        ++st.cancel_reqs;
        ++admitted_in_record_;
        note_admitted(j);
      } else {
        ++st.acked;
        ++admitted_in_record_;
        note_admitted(j);
        if (!recovering_) telemetry::count(telemetry::Counter::kSvcAcked);
      }
    }
    // Pops: markers arm tombstones, tombstoned jobs annihilate, survivors
    // await the transaction's CLOSE.
    for (const Job& j : out) {
      if ((j.flags & kCancelFlag) != 0) {
        ++tombstones_[tomb_key(j)];
        prune_tombstones();
      } else if (take_tombstone(j)) {
        ++tenants_.at(j.tenant).cancelled;
      } else {
        pending_delivery_.push_back(j);
      }
    }
    // A k==0 record is a commit point: whatever is still pending was not
    // requeued, so it was delivered.
    if (k == 0 && !pending_delivery_.empty()) {
      for (const Job& j : pending_delivery_) {
        ++tenants_.at(j.tenant).delivered;
        if (!recovering_) delivered_buf_.push_back(j);
      }
      pending_delivery_.clear();
    }
  }

  /// Removes one pending entry matching `j`'s identity (requeue return).
  void take_pending(const Job& j) {
    for (auto it = pending_delivery_.begin(); it != pending_delivery_.end(); ++it) {
      if (same_job(*it, j)) {
        pending_delivery_.erase(it);
        return;
      }
    }
    // A requeue with no matching pop means the WAL lied; recovery's hole
    // check should have caught it. Keep the ledger loud in debug builds.
    PH_ASSERT_MSG(false, "svc: requeue record without a matching popped job");
  }

  bool take_tombstone(const Job& j) {
    auto it = tombstones_.find(tomb_key(j));
    if (it == tombstones_.end()) return false;
    if (--it->second == 0) tombstones_.erase(it);
    return true;
  }

  /// Best-effort bound on cancels whose victim was already delivered: drop
  /// the smallest-keyed entries (deterministic — replay prunes identically,
  /// because pruning depends only on the op stream). `pruned_tombstones_`
  /// keeps the conservation law exact.
  void prune_tombstones() {
    while (tombstones_.size() > cfg_.max_tombstones) {
      auto it = tombstones_.begin();
      ++pruned_tombstones_;
      if (--it->second == 0) tombstones_.erase(it);
    }
  }

  void note_admitted(const Job& j) noexcept {
    next_due_lb_ = std::min(next_due_lb_, j.deadline_ns);
  }

  /// DRR over the due survivors: each round credits quantum*weight, serving
  /// one job costs 1. Non-due survivors go straight to requeue_. Deficits
  /// persist across polls only while a tenant stays backlogged.
  void select_drr(std::size_t max, std::uint64_t now) {
    requeue_.clear();
    due_by_tenant_.clear();
    for (Job& j : pending_delivery_) {
      if (j.deadline_ns <= now) {
        due_by_tenant_[j.tenant].jobs.push_back(j);
      } else {
        requeue_.push_back(j);
      }
    }
    std::size_t remaining = 0;
    for (auto& [t, q] : due_by_tenant_) remaining += q.jobs.size();
    std::size_t granted = 0;
    while (granted < max && remaining > 0) {
      bool progressed = false;
      // Tenant-id order, rotated past the last served tenant so small `max`
      // doesn't starve high ids.
      auto serve = [&](std::uint32_t t, DueQueue& q) {
        if (q.head >= q.jobs.size() || granted >= max) return;
        TenantState& st = tenants_.at(t);
        st.deficit = std::min(st.deficit + cfg_.drr_quantum * st.weight,
                              2.0 * cfg_.drr_quantum * st.weight + 1.0);
        while (st.deficit >= 1.0 && q.head < q.jobs.size() && granted < max) {
          ++q.head;  // delivered: stays out of requeue_ below
          st.deficit -= 1.0;
          ++granted;
          --remaining;
          progressed = true;
          drr_cursor_ = t;
        }
        if (q.head >= q.jobs.size()) st.deficit = 0.0;  // classic DRR: credit
                                                        // dies with the queue
      };
      auto start = due_by_tenant_.upper_bound(drr_cursor_);
      for (auto it = start; it != due_by_tenant_.end(); ++it) serve(it->first, it->second);
      for (auto it = due_by_tenant_.begin(); it != start; ++it) serve(it->first, it->second);
      if (!progressed) break;  // max smaller than any one credit step — done
    }
    for (auto& [t, q] : due_by_tenant_) {
      for (std::size_t i = q.head; i < q.jobs.size(); ++i) {
        requeue_.push_back(q.jobs[i]);  // due but past max / fair share
      }
    }
  }

  /// Writes the CLOSE record. With requeue_everything, every pending job
  /// returns (the abort/recovery path); otherwise requeue_ holds the DRR
  /// losers and the rest resolve as delivered inside absorb_record.
  ///
  /// Due-hint bookkeeping: every job left in the heap after this transaction
  /// is >= the popped frontier, and requeues are a subset of the pops — so
  /// min(requeue deadlines) lower-bounds everything undelivered. The hint is
  /// RAISED to that bound BEFORE the close record applies; admissions riding
  /// the record lower it again through note_admitted. A raise is only legal
  /// from this proof; everywhere else the hint only ever goes down.
  void close_transaction(bool requeue_everything, bool truncated) {
    if (requeue_everything) {
      requeue_.assign(pending_delivery_.begin(), pending_delivery_.end());
    }
    std::uint64_t lb = std::numeric_limits<std::uint64_t>::max();
    if (!requeue_.empty()) {
      for (const Job& j : requeue_) lb = std::min(lb, j.deadline_ns);
    } else if (truncated) {
      // Budget-limited pop, everything delivered: the remainder is >= the
      // popped frontier but its successor is unknown — poll next time.
      lb = 0;
    }
    next_due_lb_ = lb;
    for (Job& j : requeue_) j.flags |= kRequeuedFlag;
    if (pending_delivery_.empty() && requeue_.empty()) return;  // all annihilated
    sink_.clear();
    tier_.cycle(std::span<const Job>(requeue_), 0, sink_);
    PH_ASSERT_MSG(pending_delivery_.empty(), "svc: CLOSE left pending jobs");
    requeue_.clear();
  }

  void refresh_live() noexcept {
    live_.tenants.store(tenants_.size(), std::memory_order_relaxed);
    live_.queue_depth.store(tier_.size(), std::memory_order_relaxed);
    live_.pending.store(pending_delivery_.size(), std::memory_order_relaxed);
    live_.tombstones.store(tombstones_.size(), std::memory_order_relaxed);
    std::uint64_t acked = 0, delivered = 0;
    for (const auto& [id, st] : tenants_) {
      (void)id;
      acked += st.acked;
      delivered += st.delivered;
    }
    live_.acked.store(acked, std::memory_order_relaxed);
    live_.delivered.store(delivered, std::memory_order_relaxed);
  }

  SvcConfig cfg_;
  // Ledger state MUST precede tier_: the observer fires during tier_'s
  // construction (recovery replay) and touches these members.
  struct DueQueue {
    std::vector<Job> jobs;
    std::size_t head = 0;  ///< delivered prefix
  };

  TenantTable tenants_;
  std::map<TombKey, std::uint32_t> tombstones_;
  std::uint64_t pruned_tombstones_ = 0;
  std::vector<Job> pending_delivery_;
  std::vector<Job> delivered_buf_;
  std::vector<Job> requeue_;
  std::map<std::uint32_t, DueQueue> due_by_tenant_;
  std::vector<Job> sink_;
  SvcStats stats_;
  bool recovering_ = true;   ///< true while tier_ construction replays
  bool overloaded_ = false;
  std::uint32_t drr_cursor_ = std::numeric_limits<std::uint32_t>::max();
  std::uint64_t next_due_lb_ = 0;  ///< 0 = unknown: must pop
  std::size_t admitted_in_record_ = 0;
  Live live_;
  obs::GaugeSet gauges_;
  Tier tier_;
};

}  // namespace ph::svc
