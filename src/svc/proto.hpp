// Client <-> phd wire protocol (DESIGN.md §15).
//
// Requests and replies share one shape riding the CRC frame codec
// (dist/frame.hpp — the same [u32 len][u32 crc][payload] unit as the WAL
// and the shard transport):
//
//   payload := [u8 type][u32 tenant][u64 a][u64 b][u64 c][u64 d]
//              [u32 item_size][u64 nitems][raw items]
//
// a/b/c/d per type:
//
//   requests (client -> phd)
//     kSchedule   a=delay_ns, b=job id, c/d=payload      -> kAck | kOverloaded
//     kCancel     a=deadline_ns, b=job id                -> kAck | kOverloaded
//     kPollDue    a=max jobs wanted                      -> kDueReply
//     kStats                                             -> kStatsReply
//     kShutdown   drain-and-exit (a/b/c/d ignored)       -> kAck (post-drain)
//   replies (phd -> client)
//     kAck        a=deadline_ns, b=job id, c=server now, d=op seq
//     kDueReply   a=server now, b=backlog size           items = Job[]
//     kStatsReply a=server now, b=backlog, c=op seq,     items = TenantStatRow[]
//                 d=active tenants
//     kOverloaded a=deadline_ns, b=job id, c=server now  (admission shed)
//     kError      a=error code (kErr*)
//
// Schedule/Cancel acks are sent only after the group-commit WAL record that
// made the op durable landed (core.hpp) — an acked op survives kill -9 under
// the configured fsync policy. item_size in the header plays the same role
// as in the persist layer: a peer compiled against a different Job/stat
// layout is rejected loudly, never misparsed.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "persist/format.hpp"
#include "svc/job.hpp"

namespace ph::svc {

enum class SvcType : std::uint8_t {
  kSchedule = 1,
  kCancel,
  kPollDue,
  kStats,
  kShutdown,
  kAck,
  kDueReply,
  kStatsReply,
  kOverloaded,
  kError,
};

inline const char* svc_type_name(SvcType t) noexcept {
  switch (t) {
    case SvcType::kSchedule: return "schedule";
    case SvcType::kCancel: return "cancel";
    case SvcType::kPollDue: return "poll_due";
    case SvcType::kStats: return "stats";
    case SvcType::kShutdown: return "shutdown";
    case SvcType::kAck: return "ack";
    case SvcType::kDueReply: return "due_reply";
    case SvcType::kStatsReply: return "stats_reply";
    case SvcType::kOverloaded: return "overloaded";
    case SvcType::kError: return "error";
  }
  return "unknown";
}

/// kError codes (SvcMsg::a).
inline constexpr std::uint64_t kErrBadRequest = 1;  ///< undecodable/wrong-shape
inline constexpr std::uint64_t kErrTransient = 2;   ///< injected/internal fault; retry
inline constexpr std::uint64_t kErrDraining = 3;    ///< server is shutting down

/// One tenant's durable ledger row (kStatsReply items). Counters are the
/// replay-derived truth the smoke test audits: acked = delivered + cancelled
/// + still-queued, across restarts.
struct TenantStatRow {
  std::uint32_t tenant = 0;
  std::uint32_t pad = 0;
  std::uint64_t acked = 0;        ///< schedules made durable and acknowledged
  std::uint64_t cancel_reqs = 0;  ///< cancel markers made durable
  std::uint64_t delivered = 0;    ///< jobs handed to pollers (committed)
  std::uint64_t cancelled = 0;    ///< jobs annihilated by a marker before delivery
  std::uint64_t requeued = 0;     ///< popped-but-not-delivered re-inserts
  std::uint64_t shed = 0;         ///< requests refused with kOverloaded (volatile)
};
static_assert(std::is_trivially_copyable_v<TenantStatRow>);

struct SvcMsg {
  SvcType type = SvcType::kError;
  std::uint32_t tenant = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::uint64_t d = 0;
  std::vector<Job> jobs;            ///< kDueReply only
  std::vector<TenantStatRow> stats; ///< kStatsReply only
};

namespace proto_detail {
template <typename Item>
inline void put_items(std::vector<std::uint8_t>& out, const std::vector<Item>& v) {
  persist::put_u32(out, static_cast<std::uint32_t>(sizeof(Item)));
  persist::put_u64(out, v.size());
  if (!v.empty()) persist::put_raw(out, v.data(), v.size() * sizeof(Item));
}
template <typename Item>
inline bool get_items(persist::PayloadReader& rd, std::uint32_t item_size,
                      std::uint64_t nitems, std::vector<Item>& v) {
  if (item_size != sizeof(Item)) return false;
  // Divide, never multiply: `nitems * sizeof(Item)` is u64 arithmetic a
  // crafted frame can wrap (huge nitems whose product aliases the few bytes
  // actually present), and the resulting resize() would throw through the
  // server loop. nitems is bounded by remaining()/sizeof(Item), so the
  // resize below is bounded by the frame size cap.
  if (rd.remaining() % sizeof(Item) != 0 ||
      nitems != rd.remaining() / sizeof(Item)) {
    return false;
  }
  v.resize(static_cast<std::size_t>(nitems));
  return nitems == 0 || rd.get_raw(v.data(), v.size() * sizeof(Item));
}
}  // namespace proto_detail

inline void encode_svc(const SvcMsg& m, std::vector<std::uint8_t>& out) {
  out.clear();
  out.push_back(static_cast<std::uint8_t>(m.type));
  persist::put_u32(out, m.tenant);
  persist::put_u64(out, m.a);
  persist::put_u64(out, m.b);
  persist::put_u64(out, m.c);
  persist::put_u64(out, m.d);
  if (m.type == SvcType::kDueReply) {
    proto_detail::put_items(out, m.jobs);
  } else if (m.type == SvcType::kStatsReply) {
    proto_detail::put_items(out, m.stats);
  } else {
    persist::put_u32(out, 0);
    persist::put_u64(out, 0);
  }
}

/// Strict decode, same stance as dist::decode_msg: unknown types, short
/// payloads, trailing bytes, and item-size drift all fail loudly. The frame
/// CRC already rejected corruption; this rejects protocol skew.
inline bool decode_svc(std::span<const std::uint8_t> payload, SvcMsg& m) {
  if (payload.empty()) return false;
  const auto raw_type = payload[0];
  if (raw_type < static_cast<std::uint8_t>(SvcType::kSchedule) ||
      raw_type > static_cast<std::uint8_t>(SvcType::kError)) {
    return false;
  }
  m.type = static_cast<SvcType>(raw_type);
  persist::PayloadReader rd(payload.subspan(1));
  std::uint32_t item_size = 0;
  std::uint64_t nitems = 0;
  if (!rd.get_u32(m.tenant) || !rd.get_u64(m.a) || !rd.get_u64(m.b) ||
      !rd.get_u64(m.c) || !rd.get_u64(m.d) || !rd.get_u32(item_size) ||
      !rd.get_u64(nitems)) {
    return false;
  }
  m.jobs.clear();
  m.stats.clear();
  if (m.type == SvcType::kDueReply) {
    if (!proto_detail::get_items(rd, item_size, nitems, m.jobs)) return false;
  } else if (m.type == SvcType::kStatsReply) {
    if (!proto_detail::get_items(rd, item_size, nitems, m.stats)) return false;
  } else {
    if (item_size != 0 || nitems != 0) return false;
  }
  return rd.remaining() == 0;
}

}  // namespace ph::svc
