// Sorted-multiset oracle for the differential stress harness.
//
// The semantic contract every batch PQ in this library implements:
//   cycle(fresh, k, out)  ==  "insert all of fresh, then remove the k
//   globally smallest (fewer only if the structure holds fewer), appending
//   them to out in ascending order".
// Keys are std::uint64_t, so equal keys are indistinguishable and multiset
// semantics make the deletion stream unique — the oracle's output must match
// any correct structure's output byte for byte.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

namespace ph::testing {

class SortedOracle {
 public:
  std::size_t cycle(std::span<const std::uint64_t> fresh, std::size_t k,
                    std::vector<std::uint64_t>& out) {
    const auto old = static_cast<std::ptrdiff_t>(items_.size());
    items_.insert(items_.end(), fresh.begin(), fresh.end());
    std::sort(items_.begin() + old, items_.end());
    std::inplace_merge(items_.begin(), items_.begin() + old, items_.end());
    const std::size_t take = std::min(k, items_.size());
    out.insert(out.end(), items_.begin(),
               items_.begin() + static_cast<std::ptrdiff_t>(take));
    items_.erase(items_.begin(), items_.begin() + static_cast<std::ptrdiff_t>(take));
    return take;
  }

  std::size_t size() const noexcept { return items_.size(); }
  bool empty() const noexcept { return items_.empty(); }

  /// All held items, ascending.
  const std::vector<std::uint64_t>& contents() const noexcept { return items_; }

 private:
  std::vector<std::uint64_t> items_;  // always sorted ascending
};

}  // namespace ph::testing
