// Stress driver: the long-running randomized differential soak.
//
// Sweeps (structure × node capacity × key bound × seed round), generating an
// adversarial trace per combination and running it differentially against
// the oracle (differential.hpp). On failure the trace is minimized
// (shrink.hpp) and written as a self-contained reproducer file that
// tools/ph_repro replays from the file alone. Everything is derived from one
// master seed, so a whole soak is reproducible by seed; a wall-clock budget
// bounds CI runs without sacrificing that determinism for the traces that
// did run (the sweep order is fixed — a budget only truncates it).
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <string>
#include <vector>

#include "testing/differential.hpp"
#include "testing/op_trace.hpp"
#include "testing/shrink.hpp"
#include "testing/structures.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace ph::testing {

struct StressConfig {
  std::vector<std::string> structures;  ///< empty → default_structures()
  std::vector<std::size_t> r_values = {1, 2, 3, 8, 32};
  std::vector<std::uint64_t> key_bounds = {std::uint64_t{1} << 16,
                                           std::uint64_t{1} << 40};
  std::size_t cycles = 400;     ///< ops per trace
  std::size_t rounds = 2;       ///< seeds per (structure, r, key bound)
  std::uint64_t seed = 1;       ///< master seed
  double time_budget_s = 0;     ///< stop starting new traces after this (0 = off)
  bool shrink = true;           ///< minimize failing traces
  std::size_t shrink_attempts = 4000;
  std::size_t max_failures = 4;  ///< stop the soak after this many failures
  std::string repro_dir;         ///< write reproducer files here ("" = don't)
};

struct StressFailure {
  OpTrace trace;        ///< minimized (if cfg.shrink) failing trace
  DiffFailure failure;  ///< failure the minimized trace reproduces
  std::string repro_path;  ///< reproducer file ("" if repro_dir unset or write failed)
};

struct StressReport {
  std::size_t traces_run = 0;
  std::size_t cycles_run = 0;
  std::size_t traces_skipped = 0;  ///< sweep combinations unvisited (budget/failure cap)
  double seconds = 0;
  std::vector<StressFailure> failures;

  bool ok() const noexcept { return failures.empty(); }
};

namespace stress_detail {
inline std::string repro_filename(const OpTrace& t) {
  return t.structure + "_r" + std::to_string(t.r) + "_seed" +
         std::to_string(t.seed) + ".repro";
}
}  // namespace stress_detail

inline StressReport run_stress(const StressConfig& cfg, std::ostream* log = nullptr) {
  const std::vector<std::string>& structures =
      cfg.structures.empty() ? default_structures() : cfg.structures;
  StressReport rep;
  Timer wall;
  SplitMix64 seeder(cfg.seed ^ 0x5bf0f5b7c0e1a2d3ull);

  for (const std::string& structure : structures) {
    for (const std::size_t r : cfg.r_values) {
      for (const std::uint64_t key_bound : cfg.key_bounds) {
        for (std::size_t round = 0; round < cfg.rounds; ++round) {
          // Seeds are consumed in fixed sweep order, so every trace is
          // reproducible from the master seed regardless of failures.
          const std::uint64_t trace_seed = seeder.next();
          const bool out_of_budget =
              cfg.time_budget_s > 0 && wall.seconds() >= cfg.time_budget_s;
          if (out_of_budget || rep.failures.size() >= cfg.max_failures) {
            ++rep.traces_skipped;
            continue;
          }
          GenConfig gen;
          gen.r = r;
          gen.cycles = cfg.cycles;
          gen.key_bound = key_bound;
          gen.seed = trace_seed;
          OpTrace trace = generate_trace(gen);
          trace.structure = structure;
          ++rep.traces_run;
          rep.cycles_run += trace.ops.size();
          DiffFailure f = run_trace(trace);
          if (!f.failed) continue;

          if (log) {
            *log << "stress: FAIL " << structure << " r=" << r
                 << " seed=" << trace_seed << ": " << f.message << "\n";
          }
          StressFailure sf;
          if (cfg.shrink) {
            ShrinkStats st;
            sf.trace = shrink_trace(trace, run_trace, cfg.shrink_attempts, &st);
            sf.failure = run_trace(sf.trace);
            if (log) {
              *log << "stress: shrunk to " << sf.trace.ops.size() << " ops / "
                   << sf.trace.total_keys() << " keys ("
                   << st.attempts << " attempts)\n";
            }
          } else {
            sf.trace = std::move(trace);
            sf.failure = std::move(f);
          }
          if (!cfg.repro_dir.empty()) {
            // CI passes a directory that doesn't exist yet; a reproducer
            // that silently fails to write defeats the whole harness.
            std::error_code ec;
            std::filesystem::create_directories(cfg.repro_dir, ec);
            const std::string path =
                cfg.repro_dir + "/" + stress_detail::repro_filename(sf.trace);
            std::ofstream os(path);
            if (os) {
              os << sf.trace.to_text();
              sf.repro_path = path;
              if (log) *log << "stress: reproducer written to " << path << "\n";
            } else if (log) {
              *log << "stress: cannot write reproducer " << path << "\n";
            }
          }
          rep.failures.push_back(std::move(sf));
        }
      }
    }
  }
  rep.seconds = wall.seconds();
  return rep;
}

}  // namespace ph::testing
