// Schedule perturbation hooks — seeded yield/backoff injection at the
// threading substrate's synchronization points, so sanitizer runs (TSan
// especially) explore interleavings the quiet single-core schedule would
// never produce.
//
// ThreadTeam and SenseBarrier call sched_point() at their crossing points
// (dispatch, task start/finish, barrier arrive/release/spin). Like the
// telemetry hooks, the whole layer compiles to empty inlines unless the
// build enables it (-DPH_SCHED_FUZZ=ON → PH_SCHED_FUZZ_ENABLED=1), so the
// engine's hot loops carry zero cost in normal builds — not even a load.
//
// When compiled in, the layer is still inert until sched_fuzz_enable(seed):
// each thread then derives a SplitMix64 stream from the seed and, per
// sched_point, yields or spin-backs-off with the configured probability.
// Perturbation decisions are seeded (a soak is reproducible in
// distribution), but thread stream assignment follows OS scheduling order —
// exact interleavings are explored, not replayed; correctness replay is the
// op-trace reproducer's job (op_trace.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#ifndef PH_SCHED_FUZZ_ENABLED
#define PH_SCHED_FUZZ_ENABLED 0
#endif

namespace ph::testing {

/// Where in the threading substrate a perturbation may be injected.
enum class SchedPoint : std::uint8_t {
  kTeamDispatch,   ///< ThreadTeam::begin, before waking the members
  kTeamTaskStart,  ///< worker woke up, about to run the phase task
  kTeamTaskDone,   ///< worker finished the task, about to report completion
  kBarrierArrive,  ///< SenseBarrier::arrive_and_wait entry
  kBarrierRelease, ///< last arriver, about to flip the sense
  kBarrierSpin,    ///< non-last arriver, about to spin on the sense flag
};

#if PH_SCHED_FUZZ_ENABLED

inline constexpr bool kSchedFuzz = true;

namespace sched_detail {
inline std::atomic<bool> g_enabled{false};
inline std::atomic<std::uint64_t> g_seed{0};
inline std::atomic<std::uint32_t> g_yield_permille{200};
inline std::atomic<std::uint32_t> g_max_spin{128};
inline std::atomic<std::uint64_t> g_epoch{0};
inline std::atomic<std::uint64_t> g_perturbations{0};
inline std::atomic<std::uint64_t> g_thread_ordinal{0};

struct ThreadState {
  std::uint64_t epoch = ~std::uint64_t{0};
  std::uint64_t state = 0;
};
inline thread_local ThreadState tls;

inline std::uint64_t splitmix(std::uint64_t& s) noexcept {
  std::uint64_t z = (s += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace sched_detail

/// Arms the hooks: from now on every sched_point may perturb. yield_permille
/// is the per-point perturbation probability in 1/1000ths; perturbations
/// alternate between std::this_thread::yield() and a bounded relax spin of
/// up to max_spin iterations.
inline void sched_fuzz_enable(std::uint64_t seed, std::uint32_t yield_permille = 200,
                              std::uint32_t max_spin = 128) {
  using namespace sched_detail;
  g_seed.store(seed, std::memory_order_relaxed);
  g_yield_permille.store(yield_permille > 1000 ? 1000 : yield_permille,
                         std::memory_order_relaxed);
  g_max_spin.store(max_spin == 0 ? 1 : max_spin, std::memory_order_relaxed);
  g_thread_ordinal.store(0, std::memory_order_relaxed);
  g_epoch.fetch_add(1, std::memory_order_relaxed);  // reseed per-thread streams
  g_enabled.store(true, std::memory_order_release);
}

inline void sched_fuzz_disable() {
  sched_detail::g_enabled.store(false, std::memory_order_release);
}

/// Perturbations injected since the hooks were compiled in (diagnostics and
/// the "hooks actually fire" assertions in tests).
inline std::uint64_t sched_fuzz_perturbations() {
  return sched_detail::g_perturbations.load(std::memory_order_relaxed);
}

inline void sched_point(SchedPoint p) noexcept {
  using namespace sched_detail;
  if (!g_enabled.load(std::memory_order_acquire)) return;
  ThreadState& st = tls;
  const std::uint64_t epoch = g_epoch.load(std::memory_order_relaxed);
  if (st.epoch != epoch) {
    st.epoch = epoch;
    const std::uint64_t ordinal =
        g_thread_ordinal.fetch_add(1, std::memory_order_relaxed);
    st.state = g_seed.load(std::memory_order_relaxed) ^
               (ordinal * 0xd1342543de82ef95ull + 0x2545f4914f6cdd1dull);
  }
  const std::uint64_t draw =
      splitmix(st.state) ^ (static_cast<std::uint64_t>(p) << 56);
  if (draw % 1000 >= g_yield_permille.load(std::memory_order_relaxed)) return;
  g_perturbations.fetch_add(1, std::memory_order_relaxed);
  if (draw & 0x1000) {
    std::this_thread::yield();
  } else {
    const std::uint64_t spins =
        (draw >> 13) % g_max_spin.load(std::memory_order_relaxed) + 1;
    for (std::uint64_t i = 0; i < spins; ++i) {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#else
      std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
    }
  }
}

#else  // !PH_SCHED_FUZZ_ENABLED

inline constexpr bool kSchedFuzz = false;

// Inert stubs so callers compile identically in both configurations.
inline void sched_fuzz_enable(std::uint64_t, std::uint32_t = 200,
                              std::uint32_t = 128) noexcept {}
inline void sched_fuzz_disable() noexcept {}
inline std::uint64_t sched_fuzz_perturbations() noexcept { return 0; }
inline void sched_point(SchedPoint) noexcept {}

#endif  // PH_SCHED_FUZZ_ENABLED

}  // namespace ph::testing
