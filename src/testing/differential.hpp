// Differential trace runner: drives one structure through an OpTrace in
// lockstep with the sorted-multiset oracle.
//
// Per cycle the deletion streams must match exactly (uint64 keys → multiset
// semantics make the correct stream unique; see oracle.hpp). Structures that
// expose check_invariants() are additionally scanned every
// `invariant_stride` cycles — note that the pipelined heap's check drains its
// pipeline, so a small stride would serialize the very schedule under test;
// strides are therefore chosen per structure (structures.hpp). At the end of
// the trace the runner exhausts both sides through the same cycle()
// interface and compares the remaining contents, which catches items lost or
// duplicated by in-flight processes when a trace stops mid-pipeline.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "testing/op_trace.hpp"
#include "testing/oracle.hpp"

namespace ph::testing {

struct DiffOptions {
  /// Run check_invariants() every N cycles (0 = only after the final drain).
  std::size_t invariant_stride = 0;
};

struct DiffFailure {
  bool failed = false;
  /// Failing op index; trace.ops.size() means the end-of-trace drain/check.
  std::size_t op_index = 0;
  std::string message;

  explicit operator bool() const noexcept { return failed; }
};

namespace diff_detail {

template <typename Q>
bool maybe_check_invariants(Q& q, std::string* why) {
  if constexpr (requires { q.check_invariants(why); }) {
    return q.check_invariants(why);
  } else {
    (void)q;
    (void)why;
    return true;
  }
}

inline std::string mismatch_message(const std::vector<std::uint64_t>& got,
                                    const std::vector<std::uint64_t>& want) {
  if (got.size() != want.size()) {
    return "deleted " + std::to_string(got.size()) + " items, oracle expects " +
           std::to_string(want.size());
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (got[i] != want[i]) {
      return "deleted item " + std::to_string(i) + " is " + std::to_string(got[i]) +
             ", oracle expects " + std::to_string(want[i]);
    }
  }
  return "streams match";  // unreachable when called on a mismatch
}

}  // namespace diff_detail

template <typename Q>
DiffFailure run_differential(Q& q, const OpTrace& trace, const DiffOptions& opt = {}) {
  SortedOracle oracle;
  std::vector<std::uint64_t> got, want;
  std::string why;

  for (std::size_t i = 0; i < trace.ops.size(); ++i) {
    const Op& op = trace.ops[i];
    const std::size_t k = std::min(op.k, trace.r);
    got.clear();
    want.clear();
    q.cycle(std::span<const std::uint64_t>(op.fresh), k, got);
    oracle.cycle(op.fresh, k, want);
    if (got != want) {
      return {true, i, "cycle " + std::to_string(i) + ": " +
                           diff_detail::mismatch_message(got, want)};
    }
    if (opt.invariant_stride != 0 && (i + 1) % opt.invariant_stride == 0) {
      if (!diff_detail::maybe_check_invariants(q, &why)) {
        return {true, i, "cycle " + std::to_string(i) + ": invariant violated: " + why};
      }
    }
  }

  // End-of-trace: exhaust both sides through the same interface and compare.
  // Bounded so a structure that fabricates items cannot loop forever.
  const std::size_t end = trace.ops.size();
  std::size_t guard = oracle.size() / std::max<std::size_t>(1, trace.r) + 64;
  for (;;) {
    got.clear();
    want.clear();
    const std::size_t nq = q.cycle({}, trace.r, got);
    const std::size_t no = oracle.cycle({}, trace.r, want);
    if (got != want) {
      return {true, end, "final drain: " + diff_detail::mismatch_message(got, want)};
    }
    if (nq == 0 && no == 0) break;
    if (guard-- == 0) {
      return {true, end, "final drain did not converge (structure keeps yielding items)"};
    }
  }
  if (!diff_detail::maybe_check_invariants(q, &why)) {
    return {true, end, "final invariant check: " + why};
  }
  return {};
}

}  // namespace ph::testing
