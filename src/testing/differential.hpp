// Differential trace runner: drives one structure through an OpTrace in
// lockstep with the sorted-multiset oracle.
//
// Per cycle the deletion streams must match exactly (uint64 keys → multiset
// semantics make the correct stream unique; see oracle.hpp). Structures that
// expose check_invariants() are additionally scanned every
// `invariant_stride` cycles — note that the pipelined heap's check drains its
// pipeline, so a small stride would serialize the very schedule under test;
// strides are therefore chosen per structure (structures.hpp). At the end of
// the trace the runner exhausts both sides through the same cycle()
// interface and compares the remaining contents, which catches items lost or
// duplicated by in-flight processes when a trace stops mid-pipeline.
//
// Structures with deliberately relaxed ordering (LocalHeaps: a local pop is a
// partition minimum, not the global minimum) can't pass stream equality, but
// they still owe *conservation*: every cycle must delete exactly
// min(k, size) items, every deleted item must be one that was inserted and
// not yet deleted, and the final drain must return everything. DiffOptions::
// relaxed switches the runner to that multiset-conservation check, which
// catches exactly the bug class such structures can have — lost, duplicated,
// or fabricated items — without over-constraining their ordering.
//
// Feedback ops (op_trace.hpp) re-insert the structure's *own* previous
// deletion stream with an additive bump before the cycle's fresh keys; the
// oracle (or conservation multiset) receives the same materialized items, so
// both sides stay in lockstep even though the trace text doesn't fix the
// keys in advance.
#pragma once

#include <cstdint>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "testing/op_trace.hpp"
#include "testing/oracle.hpp"

namespace ph::testing {

struct DiffOptions {
  /// Run check_invariants() every N cycles (0 = only after the final drain).
  std::size_t invariant_stride = 0;
  /// Conservation-only checking for relaxed-ordering structures (see above).
  bool relaxed = false;
  /// With relaxed: allow a cycle to delete FEWER than min(k, size) items —
  /// for structures that may lawfully hold items back for a bounded number
  /// of cycles (the ingest tier's bounded-staleness mode). Fabrication and
  /// loss are still caught (every deletion must be live, the final drain
  /// must converge to empty), only the per-cycle count check is one-sided.
  bool bounded_lag = false;
};

struct DiffFailure {
  bool failed = false;
  /// Failing op index; trace.ops.size() means the end-of-trace drain/check.
  std::size_t op_index = 0;
  std::string message;

  explicit operator bool() const noexcept { return failed; }
};

namespace diff_detail {

template <typename Q>
bool maybe_check_invariants(Q& q, std::string* why) {
  if constexpr (requires { q.check_invariants(why); }) {
    return q.check_invariants(why);
  } else {
    (void)q;
    (void)why;
    return true;
  }
}

inline std::string mismatch_message(const std::vector<std::uint64_t>& got,
                                    const std::vector<std::uint64_t>& want) {
  if (got.size() != want.size()) {
    return "deleted " + std::to_string(got.size()) + " items, oracle expects " +
           std::to_string(want.size());
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (got[i] != want[i]) {
      return "deleted item " + std::to_string(i) + " is " + std::to_string(got[i]) +
             ", oracle expects " + std::to_string(want[i]);
    }
  }
  return "streams match";  // unreachable when called on a mismatch
}

/// Conservation referee for relaxed structures: tracks the live multiset and
/// validates one deletion batch against it (exact count, no fabrication).
class ConservationOracle {
 public:
  void insert(std::span<const std::uint64_t> items) {
    for (std::uint64_t v : items) live_.insert(v);
  }
  std::size_t size() const noexcept { return live_.size(); }

  /// Checks `got` for a cycle with deletion budget `k`; erases the consumed
  /// items. Returns empty string on success, else the failure description.
  /// `allow_short` relaxes the count check to got.size() <= min(k, size)
  /// for bounded-staleness structures (items may lawfully lag admission).
  std::string consume(const std::vector<std::uint64_t>& got, std::size_t k,
                      bool allow_short = false) {
    const std::size_t want_n = std::min(k, live_.size());
    if (allow_short ? got.size() > want_n : got.size() != want_n) {
      return "deleted " + std::to_string(got.size()) + " items, expected " +
             (allow_short ? "at most " : "") + "min(k, size) = " +
             std::to_string(want_n);
    }
    for (std::uint64_t v : got) {
      auto it = live_.find(v);
      if (it == live_.end()) {
        return "deleted item " + std::to_string(v) +
               " which is not live (fabricated or duplicated)";
      }
      live_.erase(it);
    }
    return {};
  }

 private:
  std::multiset<std::uint64_t> live_;
};

}  // namespace diff_detail

template <typename Q>
DiffFailure run_differential(Q& q, const OpTrace& trace, const DiffOptions& opt = {}) {
  SortedOracle oracle;
  diff_detail::ConservationOracle conserve;
  std::vector<std::uint64_t> got, want, prev_got, fresh_buf;
  std::string why;

  for (std::size_t i = 0; i < trace.ops.size(); ++i) {
    const Op& op = trace.ops[i];
    const std::size_t k = std::min(op.k, trace.r);

    // Materialize feedback: previous cycle's actual deletions, bumped. Both
    // sides see the identical item stream, so wrap-around on the add is fine.
    std::span<const std::uint64_t> fresh(op.fresh);
    if (op.feedback) {
      fresh_buf.assign(op.fresh.begin(), op.fresh.end());
      for (std::uint64_t v : prev_got) fresh_buf.push_back(v + op.feedback_add);
      fresh = fresh_buf;
    }

    got.clear();
    q.cycle(fresh, k, got);
    if (opt.relaxed) {
      conserve.insert(fresh);
      const std::string msg = conserve.consume(got, k, opt.bounded_lag);
      if (!msg.empty()) {
        return {true, i, "cycle " + std::to_string(i) + ": " + msg};
      }
    } else {
      want.clear();
      oracle.cycle(fresh, k, want);
      if (got != want) {
        return {true, i, "cycle " + std::to_string(i) + ": " +
                             diff_detail::mismatch_message(got, want)};
      }
    }
    prev_got = got;
    if (opt.invariant_stride != 0 && (i + 1) % opt.invariant_stride == 0) {
      if (!diff_detail::maybe_check_invariants(q, &why)) {
        return {true, i, "cycle " + std::to_string(i) + ": invariant violated: " + why};
      }
    }
  }

  // End-of-trace: exhaust both sides through the same interface and compare.
  // Bounded so a structure that fabricates items cannot loop forever.
  const std::size_t end = trace.ops.size();
  const std::size_t left = opt.relaxed ? conserve.size() : oracle.size();
  std::size_t guard = left / std::max<std::size_t>(1, trace.r) + 64;
  for (;;) {
    got.clear();
    const std::size_t nq = q.cycle({}, trace.r, got);
    if (opt.relaxed) {
      const std::string msg = conserve.consume(got, trace.r, opt.bounded_lag);
      if (!msg.empty()) {
        return {true, end, "final drain: " + msg};
      }
      if (nq == 0 && conserve.size() == 0) break;
    } else {
      want.clear();
      const std::size_t no = oracle.cycle({}, trace.r, want);
      if (got != want) {
        return {true, end, "final drain: " + diff_detail::mismatch_message(got, want)};
      }
      if (nq == 0 && no == 0) break;
    }
    if (guard-- == 0) {
      return {true, end, "final drain did not converge (structure keeps yielding items)"};
    }
  }
  if (!diff_detail::maybe_check_invariants(q, &why)) {
    return {true, end, "final invariant check: " + why};
  }
  return {};
}

}  // namespace ph::testing
