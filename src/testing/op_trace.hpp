// Deterministic operation traces for the stress/differential-fuzz harness.
//
// A trace is a fully materialized sequence of batch-PQ cycles: per cycle the
// fresh items inserted and the deletion budget k, plus the structure name and
// node capacity r it targets. Traces are (a) generated from a seed by an
// adversarial schedule generator (generate_trace), (b) shrinkable — removing
// ops or keys keeps the trace valid (shrink.hpp), and (c) round-trip
// serializable to a line-based text format, so a failure can be replayed by
// tools/ph_repro from the reproducer file alone (repro format: DESIGN.md §7).
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace ph::testing {

/// One batch-PQ cycle: insert `fresh`, then delete up to `k`.
///
/// A *feedback* op additionally models the engine's think phase: before the
/// cycle runs, the previous cycle's deletion stream is re-inserted with
/// `feedback_add` added to each key (the worker "thought about" its batch and
/// re-scheduled it at a later priority). The runner materializes the feedback
/// items from the structure's actual previous output, so the keys driven
/// through the structure depend on its own behavior — an engine-level trace
/// rather than a fixed one (serialized as "fop", format version 2).
struct Op {
  std::size_t k = 0;
  std::vector<std::uint64_t> fresh;
  bool feedback = false;
  std::uint64_t feedback_add = 0;

  bool operator==(const Op&) const = default;
};

struct OpTrace {
  std::string structure = "pipelined_heap";  ///< registry name (structures.hpp)
  std::size_t r = 8;                         ///< node capacity / batch width
  std::uint64_t seed = 0;                    ///< generator seed (provenance)
  std::vector<Op> ops;

  std::size_t total_keys() const noexcept {
    std::size_t n = 0;
    for (const Op& op : ops) n += op.fresh.size();
    return n;
  }

  bool operator==(const OpTrace&) const = default;

  bool has_feedback() const noexcept {
    for (const Op& op : ops) {
      if (op.feedback) return true;
    }
    return false;
  }

  /// Self-contained reproducer text (parsed back by from_text / ph_repro).
  /// Traces without feedback ops keep emitting format 1 so old reproducers
  /// and old readers stay byte-compatible; feedback ops need format 2.
  std::string to_text() const {
    std::ostringstream os;
    os << "ph-repro " << (has_feedback() ? 2 : 1) << "\n";
    os << "structure " << structure << "\n";
    os << "r " << r << "\n";
    os << "seed " << seed << "\n";
    os << "ops " << ops.size() << "\n";
    for (const Op& op : ops) {
      if (op.feedback) {
        os << "fop " << op.k << " " << op.feedback_add << " " << op.fresh.size();
      } else {
        os << "op " << op.k << " " << op.fresh.size();
      }
      for (std::uint64_t key : op.fresh) os << " " << key;
      os << "\n";
    }
    return os.str();
  }

  /// Parses the to_text() format. Returns false (with *err set) on any
  /// malformed or out-of-bounds input; `out` is only written on success.
  static bool from_text(const std::string& text, OpTrace& out,
                        std::string* err = nullptr) {
    auto fail = [&](const std::string& msg) {
      if (err) *err = msg;
      return false;
    };
    std::istringstream is(text);
    std::string word;
    int version = 0;
    if (!(is >> word >> version) || word != "ph-repro" ||
        (version != 1 && version != 2)) {
      return fail("bad header: expected 'ph-repro 1' or 'ph-repro 2'");
    }
    OpTrace t;
    std::size_t nops = 0;
    if (!(is >> word >> t.structure) || word != "structure") {
      return fail("expected 'structure <name>'");
    }
    if (!(is >> word >> t.r) || word != "r" || t.r == 0) {
      return fail("expected 'r <node capacity >= 1>'");
    }
    if (!(is >> word >> t.seed) || word != "seed") {
      return fail("expected 'seed <seed>'");
    }
    if (!(is >> word >> nops) || word != "ops") {
      return fail("expected 'ops <count>'");
    }
    t.ops.reserve(nops);
    for (std::size_t i = 0; i < nops; ++i) {
      Op op;
      std::size_t nkeys = 0;
      if (!(is >> word) || (word != "op" && (word != "fop" || version < 2))) {
        return fail("op " + std::to_string(i) +
                    ": expected 'op <k> <n> keys...' or (v2) 'fop <k> <add> <n> keys...'");
      }
      op.feedback = (word == "fop");
      if (!(is >> op.k)) {
        return fail("op " + std::to_string(i) + ": missing k");
      }
      if (op.feedback && !(is >> op.feedback_add)) {
        return fail("op " + std::to_string(i) + ": fop missing feedback_add");
      }
      if (!(is >> nkeys)) {
        return fail("op " + std::to_string(i) + ": missing key count");
      }
      if (op.k > t.r) {
        return fail("op " + std::to_string(i) + ": k exceeds r");
      }
      op.fresh.resize(nkeys);
      for (std::size_t j = 0; j < nkeys; ++j) {
        if (!(is >> op.fresh[j])) {
          return fail("op " + std::to_string(i) + ": truncated key list");
        }
      }
      t.ops.push_back(std::move(op));
    }
    out = std::move(t);
    return true;
  }
};

struct GenConfig {
  std::size_t r = 8;
  std::size_t cycles = 400;
  std::uint64_t key_bound = std::uint64_t{1} << 16;
  std::uint64_t seed = 1;
};

/// Generates an adversarial cycle schedule: the generator walks through
/// seeded "modes" — steady-state churn, grow bursts, forced shrink,
/// exhaustion (cycling on an empty heap), duplicate-heavy tiny key alphabets,
/// strictly descending/ascending key runs (every batch a new global
/// min / max), and think-phase feedback (re-insert the previous deletion
/// batch at bumped priorities). Mode runs last a few cycles each, so one trace crosses many
/// regimes while several generations of update processes are in flight; the
/// trace simply ending mid-pipeline is itself an adversary (the differential
/// runner drains and compares final contents).
inline OpTrace generate_trace(const GenConfig& cfg) {
  Xoshiro256 rng(cfg.seed ^ 0xa5a3cd5e12f70c1bull);
  OpTrace t;
  t.r = cfg.r;
  t.seed = cfg.seed;
  t.ops.reserve(cfg.cycles);

  enum Mode : std::uint64_t {
    kSteady = 0,
    kGrow,
    kShrink,
    kExhaust,
    kDupes,
    kDescending,
    kAscending,
    kFeedback,
    kNumModes
  };
  Mode mode = kSteady;
  std::size_t mode_left = 0;
  const std::uint64_t bound = cfg.key_bound == 0 ? 1 : cfg.key_bound;
  std::uint64_t desc_key = bound - rng.next_below(bound / 4 + 1);
  std::uint64_t asc_key = rng.next_below(bound / 4 + 1);
  const std::size_t r = cfg.r;

  for (std::size_t cyc = 0; cyc < cfg.cycles; ++cyc) {
    if (mode_left == 0) {
      mode = static_cast<Mode>(rng.next_below(kNumModes));
      mode_left = 1 + rng.next_below(16);
    }
    --mode_left;
    Op op;
    auto uniform_keys = [&](std::size_t n, std::uint64_t b) {
      for (std::size_t i = 0; i < n; ++i) op.fresh.push_back(rng.next_below(b));
    };
    switch (mode) {
      case kSteady:
        uniform_keys(rng.next_below(2 * r + 2), bound);
        op.k = rng.next_below(r + 1);
        break;
      case kGrow:
        uniform_keys(r + rng.next_below(3 * r + 1), bound);
        op.k = rng.next_below(r / 2 + 1);
        break;
      case kShrink:
        uniform_keys(rng.next_below(r / 4 + 1), bound);
        op.k = r;
        break;
      case kExhaust:
        op.k = r;  // no fresh items: drives to (and keeps cycling on) empty
        break;
      case kDupes:
        uniform_keys(rng.next_below(2 * r + 2), 1 + rng.next_below(3));
        op.k = rng.next_below(r + 1);
        break;
      case kDescending:
        for (std::size_t i = 0; i < r; ++i) {
          op.fresh.push_back(desc_key);
          if (desc_key > 0) --desc_key;
        }
        op.k = rng.next_below(r + 1);
        break;
      case kAscending:
        for (std::size_t i = 0; i < r; ++i) op.fresh.push_back(asc_key++);
        op.k = rng.next_below(r + 1);
        break;
      case kFeedback:
      default:
        // Engine think-phase loop: the previous cycle's deletion batch comes
        // back with bumped priorities (plus some fresh arrivals), so the keys
        // the structure sees depend on what it emitted — closing the
        // delete→think→insert cycle that plain fixed traces cannot express.
        op.feedback = true;
        op.feedback_add = 1 + rng.next_below(bound / 4 + 1);
        uniform_keys(rng.next_below(r + 1), bound);
        op.k = 1 + rng.next_below(r);
        break;
    }
    t.ops.push_back(std::move(op));
  }
  return t;
}

}  // namespace ph::testing
