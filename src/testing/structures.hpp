// Registry of every batch-PQ structure the stress harness can drive.
//
// A structure is named by a string (stored inside each OpTrace, so a
// reproducer file is self-contained) and constructed fresh per run from the
// trace's node capacity r. All structures are driven through the common
// cycle(fresh, k, out) interface; per-structure invariant strides account
// for the cost/side effects of their check_invariants (the pipelined heap's
// check drains the pipeline, so it runs rarely — the per-cycle deletion
// stream is the primary detector there).
//
// "pipelined_heap_faulty" re-introduces the documented delete-update
// revert-note bug (skip the deferred child re-service when the stale
// violation check looks clean; see pipelined_heap.hpp) and exists so the
// harness can prove it detects exactly the class of bug differential testing
// caught historically. It is not part of default_structures().
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "baselines/binary_heap.hpp"
#include "baselines/calendar_queue.hpp"
#include "baselines/flat_combining_pq.hpp"
#include "baselines/dary_heap.hpp"
#include "baselines/leftist_heap.hpp"
#include "baselines/local_heaps.hpp"
#include "baselines/locked_pq.hpp"
#include "baselines/pairing_heap.hpp"
#include "baselines/pq_concepts.hpp"
#include "baselines/skew_heap.hpp"
#include "core/engine.hpp"
#include "core/parallel_heap.hpp"
#include "core/pipelined_heap.hpp"
#include "core/sharded_heap.hpp"
#include "core/stable_heap.hpp"
#include "dist/supervisor.hpp"
#include "ingest/ingest_tier.hpp"
#include <optional>

#include "persist/recovery.hpp"
#include "robustness/failpoint.hpp"
#include "testing/differential.hpp"
#include "testing/op_trace.hpp"
#include "util/thread_pool.hpp"

namespace ph::testing {

/// Drives StableParallelHeap through the plain uint64 cycle interface
/// (entries carry null payloads — allowed by the stable heap's contract).
class StableHeapBatchAdapter {
 public:
  explicit StableHeapBatchAdapter(std::size_t r) : h_(r) {}

  std::size_t cycle(std::span<const std::uint64_t> fresh, std::size_t k,
                    std::vector<std::uint64_t>& out) {
    entries_.clear();
    for (std::uint64_t key : fresh) entries_.push_back({key, nullptr});
    eout_.clear();
    const std::size_t n = h_.cycle(entries_, k, eout_);
    for (const auto& e : eout_) out.push_back(e.key);
    return n;
  }

  bool check_invariants(std::string* why) { return h_.heap().check_invariants(why); }

 private:
  using Heap = StableParallelHeap<std::uint64_t, char>;
  Heap h_;
  std::vector<Heap::Entry> entries_;
  std::vector<Heap::Entry> eout_;
};

namespace structures_detail {
struct U64Key {
  double operator()(std::uint64_t v) const noexcept { return static_cast<double>(v); }
};
}  // namespace structures_detail

/// Pipelined heap whose half-steps dispatch node groups across a real
/// ThreadTeam (the engine's maintenance-path idiom, engine.hpp). The
/// deletion stream must be identical to "pipelined_heap" — group order is
/// irrelevant by design — so this both differentially tests the parallel
/// dispatch path and gives schedule-fuzzed soaks ThreadTeam/SenseBarrier
/// crossings to perturb on every cycle.
class MtPipelinedHeapAdapter {
 public:
  explicit MtPipelinedHeapAdapter(std::size_t r, unsigned threads = 2)
      : q_(r), team_(threads, /*pin=*/false, "stress-maint"), ctx_(threads) {}

  std::size_t cycle(std::span<const std::uint64_t> fresh, std::size_t k,
                    std::vector<std::uint64_t>& out) {
    advance_mt(1);
    const std::size_t n = q_.root_work_public(fresh, k, out);
    advance_mt(0);
    return n;
  }

  bool check_invariants(std::string* why) { return q_.check_invariants(why); }

 private:
  using Heap = PipelinedParallelHeap<std::uint64_t>;

  void advance_mt(std::size_t parity) {
    q_.advance_with(
        parity, [this](std::size_t ngroups,
                       const std::function<void(std::size_t, Heap::ServiceCtx&)>& fn) {
          const unsigned mt = team_.size();
          team_.run([&](unsigned tid) {
            for (std::size_t g = tid; g < ngroups; g += mt) fn(g, ctx_[tid]);
          });
          for (auto& c : ctx_) q_.merge_ctx(c);
        });
  }

  Heap q_;
  ThreadTeam team_;
  std::vector<Heap::ServiceCtx> ctx_;
};

/// LocalHeaps driven as a batch PQ: round-robin pushes across partitions,
/// pops rotate the home partition (steal scan makes try_pop fail only when
/// globally empty, so the batch always returns min(k, size) items). A local
/// pop is a partition minimum, not the global one, so this structure runs
/// under DiffOptions::relaxed (conservation checking).
class LocalHeapsBatchAdapter {
 public:
  explicit LocalHeapsBatchAdapter(std::size_t /*r*/, std::size_t partitions = 4)
      : q_(partitions), parts_(partitions) {}

  std::size_t cycle(std::span<const std::uint64_t> fresh, std::size_t k,
                    std::vector<std::uint64_t>& out) {
    for (std::uint64_t v : fresh) q_.push(v, push_cursor_++ % parts_);
    std::size_t n = 0;
    for (; n < k; ++n) {
      std::uint64_t v = 0;
      if (!q_.try_pop(pop_cursor_++ % parts_, v)) break;
      out.push_back(v);
    }
    return n;
  }

 private:
  LocalHeaps<std::uint64_t> q_;
  std::size_t parts_;
  std::size_t push_cursor_ = 0;
  std::size_t pop_cursor_ = 0;
};

/// LocalHeaps under real thread concurrency: a ThreadTeam pushes the batch
/// (each worker into its own home partition), a barrier, then the team pops
/// its share of k concurrently. The barrier between phases is what makes the
/// *count* deterministic — during the pop phase nothing is pushed, so a
/// partition observed empty stays empty, a fully failed steal scan implies
/// the structure is globally empty, and the batch total is exactly
/// min(k, size) on every schedule even though which thread pops which item
/// (and hence the output order) is schedule-dependent. Conservation checking
/// is order-blind, so this is differentially testable; schedule fuzzing
/// perturbs the team's barrier crossings underneath it.
class MtLocalHeapsAdapter {
 public:
  explicit MtLocalHeapsAdapter(std::size_t /*r*/, unsigned threads = 2)
      : q_(threads), team_(threads, /*pin=*/false, "stress-local"),
        per_thread_(threads) {}

  std::size_t cycle(std::span<const std::uint64_t> fresh, std::size_t k,
                    std::vector<std::uint64_t>& out) {
    const unsigned mt = team_.size();
    team_.run([&](unsigned tid) {
      for (std::size_t i = tid; i < fresh.size(); i += mt) q_.push(fresh[i], tid);
    });
    team_.run([&](unsigned tid) {
      auto& mine = per_thread_[tid];
      mine.clear();
      // Thread tid attempts pops i = tid, tid+mt, ... < k (a fair split of k).
      for (std::size_t i = tid; i < k; i += mt) {
        std::uint64_t v = 0;
        if (!q_.try_pop(tid, v)) break;
        mine.push_back(v);
      }
    });
    std::size_t n = 0;
    for (const auto& mine : per_thread_) {
      out.insert(out.end(), mine.begin(), mine.end());
      n += mine.size();
    }
    return n;
  }

 private:
  LocalHeaps<std::uint64_t> q_;
  ThreadTeam team_;
  std::vector<std::vector<std::uint64_t>> per_thread_;
};

/// The engine's maintenance rotation (engine.hpp advance_both): root work
/// first, then the even and odd half-steps dispatched across a maintenance
/// ThreadTeam. Flattened over repeated cycles this is the same half-step
/// alternation as PipelinedParallelHeap::step() — the leading advance(1) of
/// step() on an empty pipeline is a no-op — so the deletion stream must stay
/// bit-identical to "pipelined_heap"; this covers the engine-level schedule
/// (and its trace points) differentially, which ROADMAP listed as untested.
class EnginePipelineAdapter {
 public:
  explicit EnginePipelineAdapter(std::size_t r, unsigned threads = 2)
      : q_(r), team_(threads, /*pin=*/false, "stress-engine"), ctx_(threads) {}

  std::size_t cycle(std::span<const std::uint64_t> fresh, std::size_t k,
                    std::vector<std::uint64_t>& out) {
    const std::size_t n = q_.root_work_public(fresh, k, out);
    advance_mt(0);
    advance_mt(1);
    return n;
  }

  bool check_invariants(std::string* why) { return q_.check_invariants(why); }

 private:
  using Heap = PipelinedParallelHeap<std::uint64_t>;

  void advance_mt(std::size_t parity) {
    q_.advance_with(
        parity, [this](std::size_t ngroups,
                       const std::function<void(std::size_t, Heap::ServiceCtx&)>& fn) {
          const unsigned mt = team_.size();
          team_.run([&](unsigned tid) {
            for (std::size_t g = tid; g < ngroups; g += mt) fn(g, ctx_[tid]);
          });
          for (auto& c : ctx_) q_.merge_ctx(c);
        });
  }

  Heap q_;
  ThreadTeam team_;
  std::vector<Heap::ServiceCtx> ctx_;
};

/// The engine's public batch surface (engine.hpp cycle()): root work through
/// the engine, then both maintenance half-steps dispatched across its own
/// maintenance ThreadTeam. Unlike EnginePipelineAdapter — which rebuilds the
/// dispatch by hand around a bare heap — this drives ParallelHeapEngine
/// itself, so the engine's worker assignment, trace spans, and watchdog
/// plumbing all sit inside the differentially-tested path. Deletion stream
/// must stay bit-identical to "pipelined_heap".
class EngineTeamAdapter {
 public:
  explicit EngineTeamAdapter(std::size_t r, unsigned maint = 2)
      : eng_(make_cfg(r, maint)) {}

  std::size_t cycle(std::span<const std::uint64_t> fresh, std::size_t k,
                    std::vector<std::uint64_t>& out) {
    return eng_.cycle(fresh, k, out);
  }

  bool check_invariants(std::string* why) {
    return eng_.heap().check_invariants(why);
  }

 private:
  static EngineConfig make_cfg(std::size_t r, unsigned maint) {
    EngineConfig c;
    c.node_capacity = r;
    c.think_threads = 0;  // no think team: cycle() is the driver here
    c.maintenance_threads = maint;
    return c;
  }

  ParallelHeapEngine<std::uint64_t> eng_;
};

/// FlatCombiningPQ under real thread concurrency, same two-phase shape as
/// MtLocalHeapsAdapter: the team pushes the batch through per-thread
/// combining slots, barrier, then pops its fair split of k. Every pop is the
/// true global minimum at its combine-pass linearization point, but which
/// thread receives which item — and hence the output order — is
/// schedule-dependent, so this runs under relaxed (conservation) checking.
/// The barrier between phases makes the *count* exact: nothing is pushed
/// during the pop phase, so the heap drains monotonically and the batch
/// totals min(k, size) on every schedule.
class FlatCombiningMtAdapter {
 public:
  explicit FlatCombiningMtAdapter(std::size_t /*r*/, unsigned threads = 2)
      : q_(threads), team_(threads, /*pin=*/false, "stress-fc"),
        per_thread_(threads) {}

  std::size_t cycle(std::span<const std::uint64_t> fresh, std::size_t k,
                    std::vector<std::uint64_t>& out) {
    const unsigned mt = team_.size();
    team_.run([&](unsigned tid) {
      for (std::size_t i = tid; i < fresh.size(); i += mt) q_.push(tid, fresh[i]);
    });
    team_.run([&](unsigned tid) {
      auto& mine = per_thread_[tid];
      mine.clear();
      for (std::size_t i = tid; i < k; i += mt) {
        std::uint64_t v = 0;
        if (!q_.try_pop(tid, v)) break;
        mine.push_back(v);
      }
    });
    std::size_t n = 0;
    for (const auto& mine : per_thread_) {
      out.insert(out.end(), mine.begin(), mine.end());
      n += mine.size();
    }
    return n;
  }

 private:
  FlatCombiningPQ<std::uint64_t> q_;
  ThreadTeam team_;
  std::vector<std::vector<std::uint64_t>> per_thread_;
};

/// DurableHeap over the pipelined heap, with the recovery path itself inside
/// the soak loop: every `reopen_every` cycles the adapter CLOSES the durable
/// heap and re-opens it from disk (checkpoint load + WAL replay), so a long
/// stress run restarts the structure dozens of times mid-trace. The deletion
/// stream must stay bit-exact against the oracle across every restart —
/// that's the whole durability claim, soak-tested.
class DurablePipelinedAdapter {
 public:
  explicit DurablePipelinedAdapter(std::size_t r, std::size_t reopen_every = 50)
      : r_(r), reopen_every_(reopen_every), dir_(persist::make_temp_dir("ph-durable")) {
    open();
  }

  DurablePipelinedAdapter(const DurablePipelinedAdapter&) = delete;
  DurablePipelinedAdapter& operator=(const DurablePipelinedAdapter&) = delete;

  ~DurablePipelinedAdapter() {
    q_.reset();  // close the WAL before sweeping the directory
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::size_t cycle(std::span<const std::uint64_t> fresh, std::size_t k,
                    std::vector<std::uint64_t>& out) {
    if (++cycles_ % reopen_every_ == 0) {
      q_.reset();
      open();  // full recovery: newest checkpoint + WAL tail replay
    }
    return q_->cycle(fresh, k, out);
  }

  bool check_invariants(std::string* why) { return q_->check_invariants(why); }

 private:
  void open() {
    persist::DurableOptions opt;
    opt.dir = dir_;
    opt.fsync = persist::FsyncPolicy::kNever;  // soak targets logic, not disks
    opt.checkpoint_interval = 24;
    q_.emplace(PipelinedParallelHeap<std::uint64_t>(r_), opt);
  }

  std::size_t r_;
  std::size_t reopen_every_;
  std::string dir_;
  std::size_t cycles_ = 0;
  std::optional<persist::DurableHeap<PipelinedParallelHeap<std::uint64_t>>> q_;
};

/// The shard supervisor (dist/supervisor.hpp) with real child processes:
/// every trace op becomes framed RPCs over Unix socketpairs to K forked
/// shard servers, each journaling to its own WAL directory. The deletion
/// stream must stay bit-exact against the oracle — the distributed cycle
/// decomposition (route/insert/peek/merge/remove) is what's under test.
/// Opt-in via --structures=dist_sharded, NOT in default_structures():
/// forking children per stress instance is too heavy for the default sweep,
/// and tsan presets must not fork a multi-threaded image.
class DistShardedAdapter {
 public:
  explicit DistShardedAdapter(std::size_t r, std::size_t shards = 2,
                              bool use_processes = true)
      : dir_(persist::make_temp_dir("ph-dist")) {
    typename dist::ShardSupervisor<std::uint64_t>::Config cfg;
    cfg.shards = shards;
    cfg.node_capacity = r;
    cfg.dir = dir_;
    cfg.fsync = persist::FsyncPolicy::kNever;  // soak targets logic, not disks
    cfg.use_processes = use_processes;
    q_.emplace(std::move(cfg));
  }

  DistShardedAdapter(const DistShardedAdapter&) = delete;
  DistShardedAdapter& operator=(const DistShardedAdapter&) = delete;

  ~DistShardedAdapter() {
    q_.reset();  // shut the children down before sweeping their directories
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::size_t cycle(std::span<const std::uint64_t> fresh, std::size_t k,
                    std::vector<std::uint64_t>& out) {
    return q_->cycle(fresh, k, out);
  }

  bool check_invariants(std::string* why) { return q_->check_invariants(why); }

 private:
  std::string dir_;
  std::optional<dist::ShardSupervisor<std::uint64_t>> q_;
};

/// The ingestion tier (ingest/ingest_tier.hpp) over an inner batch heap,
/// driven so every trace item arrives through the staging buffers: the
/// adapter stages each fresh item into one of `producers` slots round-robin
/// (standing in for that many producer threads — slot assignment is
/// irrelevant to the admitted multiset), then cycles the tier with NO direct
/// fresh items. In strict mode every staged item is admitted at the next
/// cycle boundary, so the deletion stream must be bit-exact against the
/// oracle — the tier's headline claim, differentially tested. In
/// bounded-staleness mode runs may lawfully lag ≤ S cycles, so the harness
/// runs it under relaxed + bounded_lag conservation.
template <typename Inner>
class IngestTierAdapter {
 public:
  IngestTierAdapter(Inner inner, ingest::IngestConfig cfg)
      : tier_(std::move(inner), cfg) {}

  std::size_t cycle(std::span<const std::uint64_t> fresh, std::size_t k,
                    std::vector<std::uint64_t>& out) {
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      tier_.stage(i % tier_.config().producers, fresh[i]);
    }
    return tier_.cycle({}, k, out);
  }

  bool check_invariants(std::string* why) { return tier_.check_invariants(why); }

 private:
  ingest::IngestTier<Inner, std::uint64_t> tier_;
};

/// The structures every stress run covers by default.
inline const std::vector<std::string>& default_structures() {
  static const std::vector<std::string> names = {
      "parallel_heap",      "parallel_heap_d4",   "pipelined_heap",
      "pipelined_heap_mt",  "stable_heap",        "locked_binary_heap",
      "batch_binary_heap",  "batch_dary4_heap",   "batch_skew_heap",
      "batch_pairing_heap", "batch_leftist_heap", "batch_calendar_queue",
      "sharded_heap",       "sharded_heap_conc",  "sharded_heap_crew",
      "engine_pipeline",    "engine_team",        "local_heaps",
      "local_heaps_mt",     "flat_combining_mt",  "durable_pipelined",
      "ingest_pipelined",   "ingest_sharded_strict", "ingest_sharded_relaxed"};
  return names;
}

/// Runs `trace` against the structure it names (fresh instance) and the
/// oracle. Unknown names fail immediately rather than passing vacuously.
inline DiffFailure run_trace(const OpTrace& t) {
  using U64 = std::uint64_t;
  const std::string& s = t.structure;
  DiffOptions opt;
  if (s == "parallel_heap") {
    opt.invariant_stride = 1;  // non-mutating full-tree scan
    ParallelHeap<U64> q(t.r);
    return run_differential(q, t, opt);
  }
  if (s == "parallel_heap_d4") {
    opt.invariant_stride = 1;
    ParallelHeap<U64> q(t.r, {}, 4);
    return run_differential(q, t, opt);
  }
  if (s == "pipelined_heap" || s == "pipelined_heap_faulty") {
    opt.invariant_stride = 64;  // check drains the pipeline: keep it rare
    PipelinedParallelHeap<U64> q(t.r);
    if (s == "pipelined_heap_faulty") {
      // The historical revert-note bug, re-introduced through the fail-point
      // registry (the one injection mechanism): fire on every evaluation,
      // unbounded — the registry-spec equivalent of the old always-on
      // inject_fault_for_testing(kSkipDeferredReservice). The structure name
      // is what repro files reference; it stays stable across the migration.
      if (!robustness::kFailpoints) {
        DiffFailure f;
        f.failed = true;
        f.message =
            "pipelined_heap_faulty requires a PH_FAILPOINTS=ON build "
            "(fail-point registry compiled out)";
        return f;
      }
      robustness::arm(robustness::FailSite::kSkipReservice,
                      robustness::FireSpec{/*nth=*/1, /*period=*/1,
                                           /*max_fires=*/0, /*stall_us=*/0});
      DiffFailure f = run_differential(q, t, opt);
      robustness::disarm(robustness::FailSite::kSkipReservice);
      return f;
    }
    return run_differential(q, t, opt);
  }
  if (s == "pipelined_heap_mt") {
    opt.invariant_stride = 64;
    MtPipelinedHeapAdapter q(t.r);
    return run_differential(q, t, opt);
  }
  if (s == "stable_heap") {
    opt.invariant_stride = 64;
    StableHeapBatchAdapter q(t.r);
    return run_differential(q, t, opt);
  }
  if (s == "locked_binary_heap") {
    LockedPQ<BinaryHeap<U64>, U64> q;
    return run_differential(q, t, opt);
  }
  if (s == "batch_binary_heap") {
    BatchAdapter<BinaryHeap<U64>, U64> q;
    return run_differential(q, t, opt);
  }
  if (s == "batch_dary4_heap") {
    BatchAdapter<DaryHeap<U64, 4>, U64> q;
    return run_differential(q, t, opt);
  }
  if (s == "batch_skew_heap") {
    BatchAdapter<SkewHeap<U64>, U64> q;
    return run_differential(q, t, opt);
  }
  if (s == "batch_pairing_heap") {
    BatchAdapter<PairingHeap<U64>, U64> q;
    return run_differential(q, t, opt);
  }
  if (s == "batch_leftist_heap") {
    BatchAdapter<LeftistHeap<U64>, U64> q;
    return run_differential(q, t, opt);
  }
  if (s == "batch_calendar_queue") {
    BatchAdapter<CalendarQueue<U64, structures_detail::U64Key>, U64> q;
    return run_differential(q, t, opt);
  }
  if (s == "sharded_heap") {
    opt.invariant_stride = 64;  // drains every shard's pipeline
    ShardedHeap<U64> q(t.r, ShardedHeap<U64>::Config{/*shards=*/3,
                                                     /*rebalance_interval=*/16,
                                                     /*sample_capacity=*/1024});
    return run_differential(q, t, opt);
  }
  if (s == "sharded_heap_conc" || s == "sharded_heap_crew") {
    // The PR7 concurrency paths, pinned bit-exact against the oracle:
    // "conc" runs 2 workers over 3 shards (striped assignment, one worker
    // serially cycling its shards); "crew" runs 5 workers over 3 shards so
    // every shard gets a multi-worker crew and the odd/even level split
    // crosses the SenseBarrier publication protocol each cycle. Both overlap
    // putback with the caller (quiesce handshake) and use the min hint.
    opt.invariant_stride = 64;
    ShardedHeap<U64>::Config c;
    c.shards = 3;
    c.rebalance_interval = 16;
    c.sample_capacity = 1024;
    c.workers = (s == "sharded_heap_crew") ? 5 : 2;
    c.overlap_putback = true;
    ShardedHeap<U64> q(t.r, c);
    return run_differential(q, t, opt);
  }
  if (s == "engine_pipeline") {
    opt.invariant_stride = 64;
    EnginePipelineAdapter q(t.r);
    return run_differential(q, t, opt);
  }
  if (s == "engine_team") {
    opt.invariant_stride = 64;
    EngineTeamAdapter q(t.r);
    return run_differential(q, t, opt);
  }
  if (s == "local_heaps") {
    opt.relaxed = true;  // partition-local pops: conservation, not ordering
    LocalHeapsBatchAdapter q(t.r);
    return run_differential(q, t, opt);
  }
  if (s == "local_heaps_mt") {
    opt.relaxed = true;
    MtLocalHeapsAdapter q(t.r);
    return run_differential(q, t, opt);
  }
  if (s == "flat_combining_mt") {
    opt.relaxed = true;  // exact pops, schedule-dependent output order
    FlatCombiningMtAdapter q(t.r);
    return run_differential(q, t, opt);
  }
  if (s == "durable_pipelined") {
    opt.invariant_stride = 64;
    DurablePipelinedAdapter q(t.r);
    return run_differential(q, t, opt);
  }
  if (s == "ingest_pipelined") {
    // Strict staging over the pipelined heap: 4 producer slots, everything
    // admitted at the next boundary — stream must be bit-exact.
    opt.invariant_stride = 64;
    ingest::IngestConfig ic;
    ic.producers = 4;
    IngestTierAdapter<PipelinedParallelHeap<U64>> q(
        PipelinedParallelHeap<U64>(t.r), ic);
    return run_differential(q, t, opt);
  }
  if (s == "ingest_sharded_strict" || s == "ingest_sharded_relaxed") {
    // Staging over the PR7 concurrent sharded heap (2 workers, overlapped
    // putback) with a key-range router on the shards underneath — the full
    // producer → staging → route → shard pipeline. Strict is bit-exact;
    // relaxed allows runs to lag ≤ 3 cycles (bounded_lag conservation).
    opt.invariant_stride = 64;
    ShardedHeap<U64>::Config c;
    c.shards = 3;
    c.rebalance_interval = 16;
    c.sample_capacity = 1024;
    c.workers = 2;
    c.overlap_putback = true;
    // Banded router (Config::router seam): coalesced runs land on shards by
    // key band, exercising the route-by-run path instead of the quantile map.
    c.router = [](const U64& v) { return static_cast<std::size_t>(v >> 6); };
    ingest::IngestConfig ic;
    ic.producers = 4;
    if (s == "ingest_sharded_relaxed") {
      ic.staleness = 3;
      ic.admit_min_items = 4 * t.r;
      opt.relaxed = true;
      opt.bounded_lag = true;
    }
    IngestTierAdapter<ShardedHeap<U64>> q(ShardedHeap<U64>(t.r, c), ic);
    return run_differential(q, t, opt);
  }
  if (s == "dist_sharded") {
    opt.invariant_stride = 64;
    DistShardedAdapter q(t.r);
    return run_differential(q, t, opt);
  }
  return {true, 0, "unknown structure '" + s + "' (see structures.hpp)"};
}

}  // namespace ph::testing
