// Minimizing shrinker for failing operation traces.
//
// Given a trace that makes some predicate fail (normally: run_trace from
// structures.hpp reports a differential mismatch), repeatedly tries smaller
// candidate traces and keeps any that still fail, until a fixpoint or the
// attempt budget runs out. Reduction passes, in order:
//   1. truncate everything after the failing op,
//   2. delete runs of whole ops (ddmin-style halving chunks),
//   3. delete runs of fresh keys inside each op,
//   4. zero/halve deletion budgets,
//   5. demote feedback ops to plain ops (then shrink their add constants),
//   6. canonicalize key values toward zero (0, then repeated halving).
// Every accepted candidate re-establishes failure by re-running the full
// predicate, so the result is always a genuine reproducer. All passes are
// deterministic — same input trace and predicate, same minimized trace.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "testing/differential.hpp"
#include "testing/op_trace.hpp"

namespace ph::testing {

using TracePredicate = std::function<DiffFailure(const OpTrace&)>;

struct ShrinkStats {
  std::size_t attempts = 0;  ///< candidate traces evaluated
  std::size_t accepted = 0;  ///< candidates that kept failing (reductions)
};

inline OpTrace shrink_trace(const OpTrace& original, const TracePredicate& fails,
                            std::size_t max_attempts = 4000,
                            ShrinkStats* stats_out = nullptr) {
  ShrinkStats st;
  OpTrace cur = original;
  DiffFailure f = fails(cur);
  if (!f.failed) {
    if (stats_out) *stats_out = st;
    return cur;  // not a failing trace; nothing to minimize
  }

  auto attempt = [&](OpTrace cand) -> bool {
    if (st.attempts >= max_attempts) return false;
    ++st.attempts;
    DiffFailure cf = fails(cand);
    if (!cf.failed) return false;
    cur = std::move(cand);
    f = std::move(cf);
    ++st.accepted;
    return true;
  };

  // Pass 1: drop everything after the op the failure was observed at.
  if (f.op_index + 1 < cur.ops.size()) {
    OpTrace cand = cur;
    cand.ops.resize(f.op_index + 1);
    attempt(std::move(cand));
  }

  bool progress = true;
  while (progress && st.attempts < max_attempts) {
    progress = false;

    // Pass 2: remove chunks of ops, chunk size halving down to 1.
    for (std::size_t chunk = cur.ops.size() / 2; chunk >= 1; chunk /= 2) {
      for (std::size_t i = 0; i + chunk <= cur.ops.size();) {
        OpTrace cand = cur;
        cand.ops.erase(cand.ops.begin() + static_cast<std::ptrdiff_t>(i),
                       cand.ops.begin() + static_cast<std::ptrdiff_t>(i + chunk));
        if (attempt(std::move(cand))) {
          progress = true;  // cur shrank; retry the same position
        } else {
          i += chunk;
        }
        if (st.attempts >= max_attempts) break;
      }
      if (chunk == 1 || st.attempts >= max_attempts) break;
    }

    // Pass 3: remove chunks of fresh keys inside each op.
    for (std::size_t oi = 0; oi < cur.ops.size(); ++oi) {
      for (std::size_t chunk = cur.ops[oi].fresh.size() / 2 + 1; chunk >= 1;
           chunk /= 2) {
        for (std::size_t i = 0; oi < cur.ops.size() &&
                                i + chunk <= cur.ops[oi].fresh.size();) {
          OpTrace cand = cur;
          auto& keys = cand.ops[oi].fresh;
          keys.erase(keys.begin() + static_cast<std::ptrdiff_t>(i),
                     keys.begin() + static_cast<std::ptrdiff_t>(i + chunk));
          if (attempt(std::move(cand))) {
            progress = true;
          } else {
            i += chunk;
          }
          if (st.attempts >= max_attempts) break;
        }
        if (chunk == 1 || st.attempts >= max_attempts) break;
      }
    }

    // Pass 4: shrink deletion budgets (zero first, then halving).
    for (std::size_t oi = 0; oi < cur.ops.size(); ++oi) {
      while (cur.ops[oi].k > 0 && st.attempts < max_attempts) {
        OpTrace cand = cur;
        cand.ops[oi].k = cand.ops[oi].k > 2 ? cand.ops[oi].k / 2 : 0;
        if (!attempt(std::move(cand))) break;
        progress = true;
      }
    }

    // Pass 5: demote feedback ops to fixed ops (keeps reproducers in the v1
    // format when the feedback loop isn't essential to the failure), then
    // shrink surviving feedback adds toward zero.
    for (std::size_t oi = 0; oi < cur.ops.size(); ++oi) {
      if (!cur.ops[oi].feedback) continue;
      OpTrace cand = cur;
      cand.ops[oi].feedback = false;
      cand.ops[oi].feedback_add = 0;
      if (attempt(std::move(cand))) {
        progress = true;
        continue;
      }
      while (cur.ops[oi].feedback_add > 0 && st.attempts < max_attempts) {
        cand = cur;
        cand.ops[oi].feedback_add /= 2;
        if (!attempt(std::move(cand))) break;
        progress = true;
      }
      if (st.attempts >= max_attempts) break;
    }

    // Pass 6: canonicalize key values toward zero.
    for (std::size_t oi = 0; oi < cur.ops.size(); ++oi) {
      for (std::size_t j = 0; j < cur.ops[oi].fresh.size(); ++j) {
        if (cur.ops[oi].fresh[j] == 0) continue;
        OpTrace cand = cur;
        cand.ops[oi].fresh[j] = 0;
        if (attempt(std::move(cand))) {
          progress = true;
          continue;
        }
        while (cur.ops[oi].fresh[j] > 1 && st.attempts < max_attempts) {
          cand = cur;
          cand.ops[oi].fresh[j] /= 2;
          if (!attempt(std::move(cand))) break;
          progress = true;
        }
        if (st.attempts >= max_attempts) break;
      }
      if (st.attempts >= max_attempts) break;
    }
  }

  if (stats_out) *stats_out = st;
  return cur;
}

}  // namespace ph::testing
