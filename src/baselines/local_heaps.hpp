// LocalHeaps — per-processor event queues, the "simlocal" configuration of
// the lineage: each of P partitions is a lock-guarded binary heap; a worker
// pops from its own partition and new items are distributed across
// partitions (round-robin here, matching the load-distributed variant).
//
// Semantics are deliberately *relaxed*: a local pop returns the minimum of
// one partition, not the global minimum. That relaxation is exactly why the
// lineage's simlocal suffers more rollbacks than the global queue — the
// DES benchmark quantifies it via the out-of-order metric.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "baselines/binary_heap.hpp"
#include "util/assert.hpp"
#include "util/cacheline.hpp"
#include "util/spinlock.hpp"

namespace ph {

template <typename T, typename Compare = std::less<T>>
class LocalHeaps {
 public:
  explicit LocalHeaps(std::size_t partitions, Compare cmp = Compare())
      : cmp_(cmp), parts_(partitions) {
    PH_ASSERT(partitions >= 1);
    for (auto& p : parts_) p->heap = BinaryHeap<T, Compare>(cmp);
  }

  std::size_t partitions() const noexcept { return parts_.size(); }

  /// Inserts into an explicit partition (callers typically round-robin or
  /// hash; the lineage's localdist inserts into a random partition).
  void push(const T& v, std::size_t partition) {
    Part& p = *parts_[partition % parts_.size()];
    std::lock_guard g(p.lock);
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
    p.heap.push(v);
  }

  /// Pops the minimum of partition `home`; when it is empty, scans the other
  /// partitions (work stealing) so the structure only reports empty when
  /// globally empty. Returns false if no item was found anywhere.
  bool try_pop(std::size_t home, T& out) {
    const std::size_t n = parts_.size();
    for (std::size_t i = 0; i < n; ++i) {
      Part& p = *parts_[(home + i) % n];
      std::lock_guard g(p.lock);
      acquisitions_.fetch_add(1, std::memory_order_relaxed);
      if (!p.heap.empty()) {
        out = p.heap.pop();
        if (i != 0) steals_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  /// Total items across all partitions (takes all locks; O(P)).
  std::size_t size() const {
    std::size_t total = 0;
    for (auto& p : parts_) {
      std::lock_guard g(p->lock);
      total += p->heap.size();
    }
    return total;
  }
  bool empty() const { return size() == 0; }

  std::uint64_t lock_acquisitions() const noexcept {
    return acquisitions_.load(std::memory_order_relaxed);
  }
  std::uint64_t steals() const noexcept {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  struct Part {
    Part() = default;  // non-aggregate so Padded's {} uses direct-init
    mutable Spinlock lock;
    BinaryHeap<T, Compare> heap;
  };

  Compare cmp_;
  std::vector<Padded<Part>> parts_;
  std::atomic<std::uint64_t> acquisitions_{0};
  std::atomic<std::uint64_t> steals_{0};
};

}  // namespace ph
