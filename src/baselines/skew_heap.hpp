// Skew heap — the self-adjusting meldable heap whose concurrent variant
// (Jones 1989, "Concurrent operations on priority queues") is one of the
// concurrent comparators named by the lineage. Meld is the only primitive;
// push and pop are melds. Amortized O(log n).
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace ph {

template <typename T, typename Compare = std::less<T>>
class SkewHeap {
 public:
  explicit SkewHeap(Compare cmp = Compare()) : cmp_(std::move(cmp)) {}
  ~SkewHeap() { clear(); }

  SkewHeap(SkewHeap&& other) noexcept
      : cmp_(std::move(other.cmp_)), root_(other.root_), size_(other.size_) {
    other.root_ = nullptr;
    other.size_ = 0;
  }
  SkewHeap& operator=(SkewHeap&& other) noexcept {
    if (this != &other) {
      clear();
      cmp_ = std::move(other.cmp_);
      root_ = std::exchange(other.root_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  SkewHeap(const SkewHeap&) = delete;
  SkewHeap& operator=(const SkewHeap&) = delete;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  const T& top() const {
    PH_ASSERT(!empty());
    return root_->value;
  }

  void push(const T& v) {
    root_ = meld(root_, new Node{v, nullptr, nullptr});
    ++size_;
  }

  T pop() {
    PH_ASSERT(!empty());
    Node* old = root_;
    T out = std::move(old->value);
    root_ = meld(old->left, old->right);
    delete old;
    --size_;
    return out;
  }

  /// Absorbs the other heap (meld); `other` is left empty.
  void merge(SkewHeap& other) {
    root_ = meld(root_, other.root_);
    size_ += other.size_;
    other.root_ = nullptr;
    other.size_ = 0;
  }

  void clear() noexcept {
    destroy(root_);
    root_ = nullptr;
    size_ = 0;
  }

  bool check_invariants() const { return check(root_); }

 private:
  struct Node {
    T value;
    Node* left;
    Node* right;
  };

  /// Iterative top-down skew meld: walk the right spines, always taking the
  /// smaller root and swapping children (the "skew" that self-balances).
  Node* meld(Node* a, Node* b) {
    if (a == nullptr) return b;
    if (b == nullptr) return a;
    if (cmp_(b->value, a->value)) std::swap(a, b);
    Node* head = a;
    // After taking `a`, its children swap; continue melding `b` into the
    // (new) left slot, which was the right spine.
    for (;;) {
      std::swap(a->left, a->right);
      Node* next = a->left;
      if (next == nullptr) {
        a->left = b;
        break;
      }
      if (cmp_(b->value, next->value)) {
        a->left = b;
        a = b;
        b = next;
      } else {
        a = next;
      }
    }
    return head;
  }

  bool check(const Node* n) const {
    if (n == nullptr) return true;
    if (n->left != nullptr && cmp_(n->left->value, n->value)) return false;
    if (n->right != nullptr && cmp_(n->right->value, n->value)) return false;
    return check(n->left) && check(n->right);
  }

  void destroy(Node* n) noexcept {
    // Iterative to avoid deep recursion on degenerate shapes.
    std::vector<Node*> stack;
    if (n != nullptr) stack.push_back(n);
    while (!stack.empty()) {
      Node* cur = stack.back();
      stack.pop_back();
      if (cur->left != nullptr) stack.push_back(cur->left);
      if (cur->right != nullptr) stack.push_back(cur->right);
      delete cur;
    }
  }

  Compare cmp_;
  Node* root_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace ph
