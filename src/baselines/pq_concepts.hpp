// Shared interface bits for the baseline priority queues.
//
// All baselines expose a scalar interface:
//   void push(const T&);  T pop();  const T& top() const;
//   std::size_t size() const;  bool empty() const;
// BatchAdapter lifts any such queue to the batch interface of the parallel
// heap (insert_batch / delete_min_batch), so the benchmark harness can drive
// every structure through one code path.
#pragma once

#include <concepts>
#include <cstddef>
#include <span>
#include <vector>

namespace ph {

template <typename Q, typename T>
concept ScalarPriorityQueue = requires(Q q, const Q cq, const T v) {
  q.push(v);
  { q.pop() } -> std::convertible_to<T>;
  { cq.top() } -> std::convertible_to<const T&>;
  { cq.size() } -> std::convertible_to<std::size_t>;
  { cq.empty() } -> std::convertible_to<bool>;
};

/// Lifts a scalar priority queue to the batch interface.
template <typename Q, typename T>
  requires ScalarPriorityQueue<Q, T>
class BatchAdapter {
 public:
  template <typename... Args>
  explicit BatchAdapter(Args&&... args) : q_(std::forward<Args>(args)...) {}

  void insert_batch(std::span<const T> items) {
    for (const T& v : items) q_.push(v);
  }

  std::size_t delete_min_batch(std::size_t k, std::vector<T>& out) {
    std::size_t n = 0;
    while (n < k && !q_.empty()) {
      out.push_back(q_.pop());
      ++n;
    }
    return n;
  }

  std::size_t cycle(std::span<const T> new_items, std::size_t k, std::vector<T>& out) {
    insert_batch(new_items);
    return delete_min_batch(k, out);
  }

  std::size_t size() const { return q_.size(); }
  bool empty() const { return q_.empty(); }
  Q& underlying() { return q_; }

 private:
  Q q_;
};

}  // namespace ph
