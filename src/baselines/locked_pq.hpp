// LockedPQ — a global priority queue guarded by a single lock: the
// "heap with locks" comparator of the lineage's experiments (its Figures
// compare the parallel-heap global event queue against exactly this). Every
// operation takes the lock, so the structure serializes all accesses; the
// acquisition counter quantifies that serialization for the
// hardware-independent analysis.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "util/spinlock.hpp"

namespace ph {

template <typename Q, typename T, typename Lock = Spinlock>
class LockedPQ {
 public:
  template <typename... Args>
  explicit LockedPQ(Args&&... args) : q_(std::forward<Args>(args)...) {}

  void push(const T& v) {
    std::lock_guard g(lock_);
    count_acquire();
    q_.push(v);
  }

  /// Pops the minimum into `out`; returns false when empty. (Returning the
  /// value by out-param keeps the empty-check and pop under one acquisition.)
  bool try_pop(T& out) {
    std::lock_guard g(lock_);
    count_acquire();
    if (q_.empty()) return false;
    out = q_.pop();
    return true;
  }

  /// Batch interface for the shared harness; still locks per item, because
  /// the baseline being modeled synchronizes at item granularity.
  void insert_batch(std::span<const T> items) {
    for (const T& v : items) push(v);
  }

  std::size_t delete_min_batch(std::size_t k, std::vector<T>& out) {
    T v{};
    std::size_t n = 0;
    while (n < k && try_pop(v)) {
      out.push_back(v);
      ++n;
    }
    return n;
  }

  std::size_t cycle(std::span<const T> new_items, std::size_t k, std::vector<T>& out) {
    insert_batch(new_items);
    return delete_min_batch(k, out);
  }

  std::size_t size() const {
    std::lock_guard g(lock_);
    return q_.size();
  }
  bool empty() const { return size() == 0; }

  std::uint64_t lock_acquisitions() const noexcept {
    return acquisitions_.load(std::memory_order_relaxed);
  }

 private:
  void count_acquire() noexcept {
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
  }

  mutable Lock lock_;
  Q q_;
  std::atomic<std::uint64_t> acquisitions_{0};
};

}  // namespace ph
