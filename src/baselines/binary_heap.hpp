// Classic implicit-array binary min-heap — the serial baseline every
// parallel-heap comparison in the lineage starts from, and the structure
// wrapped by LockedPQ to form the "global heap with locks" comparator.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace ph {

template <typename T, typename Compare = std::less<T>>
class BinaryHeap {
 public:
  explicit BinaryHeap(Compare cmp = Compare()) : cmp_(std::move(cmp)) {}

  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }
  void reserve(std::size_t n) { data_.reserve(n); }
  void clear() noexcept { data_.clear(); }

  const T& top() const {
    PH_ASSERT(!empty());
    return data_.front();
  }

  void push(const T& v) {
    data_.push_back(v);
    sift_up(data_.size() - 1);
  }

  T pop() {
    PH_ASSERT(!empty());
    T out = std::move(data_.front());
    data_.front() = std::move(data_.back());
    data_.pop_back();
    if (!data_.empty()) sift_down(0);
    return out;
  }

  /// O(n) bottom-up heap construction (Floyd), replacing the content.
  void build(std::vector<T> items) {
    data_ = std::move(items);
    if (data_.size() < 2) return;
    for (std::size_t i = data_.size() / 2; i-- > 0;) sift_down(i);
  }

  bool check_invariants() const {
    for (std::size_t i = 1; i < data_.size(); ++i) {
      if (cmp_(data_[i], data_[(i - 1) / 2])) return false;
    }
    return true;
  }

 private:
  void sift_up(std::size_t i) {
    T v = std::move(data_[i]);
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!cmp_(v, data_[parent])) break;
      data_[i] = std::move(data_[parent]);
      i = parent;
    }
    data_[i] = std::move(v);
  }

  void sift_down(std::size_t i) {
    const std::size_t n = data_.size();
    T v = std::move(data_[i]);
    for (;;) {
      std::size_t c = 2 * i + 1;
      if (c >= n) break;
      if (c + 1 < n && cmp_(data_[c + 1], data_[c])) ++c;
      if (!cmp_(data_[c], v)) break;
      data_[i] = std::move(data_[c]);
      i = c;
    }
    data_[i] = std::move(v);
  }

  Compare cmp_;
  std::vector<T> data_;
};

}  // namespace ph
