// InsertConcurrentHeap — a fine-grained-locking binary heap in the style of
// Rao & Kumar ("Concurrent access of priority queues", IEEE ToC 1988), whose
// key idea is *top-down insertion*: an inserted item descends from the root
// toward its reserved slot with hand-over-hand node locks, swapping itself
// with any larger item it passes. Multiple insertions pipeline down the
// tree concurrently (they cannot overtake one another, so each compares
// against settled values).
//
// Deletions are exclusive in this implementation: a deleter takes the entry
// lock and waits for in-flight insertions to quiesce before extracting the
// root and sifting down. The full Hunt-et-al. tag protocol that also
// pipelines deletions is deliberately out of scope (see DESIGN.md): the
// published races it exists to solve (a delete's sift-down writing above an
// insertion that already passed) are exactly the ones this simplification
// removes. The result is a sound middle point between the single global
// lock (LockedPQ) and the parallel heap: insert-side concurrency only.
//
// Capacity is fixed at construction — slots must never relocate while other
// threads hold their locks.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <utility>

#include "util/assert.hpp"
#include "util/cacheline.hpp"
#include "util/spinlock.hpp"

namespace ph {

template <typename T, typename Compare = std::less<T>>
class InsertConcurrentHeap {
 public:
  explicit InsertConcurrentHeap(std::size_t capacity, Compare cmp = Compare())
      : cmp_(std::move(cmp)),
        capacity_(capacity),
        slots_(std::make_unique<Slot[]>(capacity)) {
    PH_ASSERT(capacity_ >= 1);
  }

  std::size_t capacity() const noexcept { return capacity_; }

  std::size_t size() const {
    std::lock_guard g(entry_);
    return size_;
  }
  bool empty() const { return size() == 0; }

  /// Concurrent-safe insertion; returns false when the heap is full.
  bool try_push(const T& v) {
    entry_.lock();
    if (size_ == capacity_) {
      entry_.unlock();
      return false;
    }
    const std::size_t n = size_++;
    pushes_.fetch_add(1, std::memory_order_relaxed);
    if (n == 0) {
      // Empty heap: place directly; no other operation can be in flight
      // (in-flight insertions are counted in size_).
      slots_[0].item = v;
      slots_[0].full.store(true, std::memory_order_release);
      entry_.unlock();
      return true;
    }
    // Reserve the slot, join the in-flight set, take the root lock, and
    // only then release the entry — the hand-over-hand chain starts at the
    // root so later operations cannot overtake this one.
    slots_[n].full.store(false, std::memory_order_relaxed);
    const std::uint32_t now_inflight =
        1 + inflight_.fetch_add(1, std::memory_order_acq_rel);
    std::uint32_t peak = max_inflight_.load(std::memory_order_relaxed);
    while (now_inflight > peak &&
           !max_inflight_.compare_exchange_weak(peak, now_inflight,
                                                std::memory_order_relaxed)) {
    }
    slots_[0].lock.lock();
    entry_.unlock();

    // Descend from the root along the ancestor path of slot n, carrying the
    // larger of {x, node item} downward. Interior path nodes are always
    // settled when reached (no overtaking), and the reserved slot is ours.
    T x = v;
    std::size_t cur = 0;
    const std::size_t n1 = n + 1;  // 1-based for the path arithmetic
    const auto depth = static_cast<std::size_t>(std::bit_width(n1)) - 1;
    for (std::size_t shift = depth; shift-- > 0;) {
      PH_ASSERT(slots_[cur].full.load(std::memory_order_acquire));
      if (cmp_(x, slots_[cur].item)) {
        std::swap(x, slots_[cur].item);
      }
      const std::size_t child = (n1 >> shift) - 1;
      slots_[child].lock.lock();
      slots_[cur].lock.unlock();
      cur = child;
    }
    PH_ASSERT(cur == n);
    slots_[n].item = x;
    slots_[n].full.store(true, std::memory_order_release);
    slots_[n].lock.unlock();
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    return true;
  }

  void push(const T& v) { PH_ASSERT_MSG(try_push(v), "heap is full"); }

  /// Removes the minimum into `out`; returns false when empty. Exclusive:
  /// waits for in-flight insertions, then runs alone.
  bool try_pop(T& out) {
    entry_.lock();
    while (inflight_.load(std::memory_order_acquire) != 0) {
      // In-flight inserters never need the entry lock; they will finish.
      std::this_thread::yield();
    }
    if (size_ == 0) {
      entry_.unlock();
      return false;
    }
    pops_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t m = --size_;
    T last = std::move(slots_[m].item);
    slots_[m].full.store(false, std::memory_order_relaxed);
    if (m == 0) {
      out = std::move(last);
      entry_.unlock();
      return true;
    }
    out = std::move(slots_[0].item);
    // Sift the displaced last item down; exclusive, so no slot locks needed.
    std::size_t i = 0;
    for (;;) {
      std::size_t c = 2 * i + 1;
      if (c >= m) break;
      if (c + 1 < m && cmp_(slots_[c + 1].item, slots_[c].item)) ++c;
      if (!cmp_(slots_[c].item, last)) break;
      slots_[i].item = std::move(slots_[c].item);
      i = c;
    }
    slots_[i].item = std::move(last);
    entry_.unlock();
    return true;
  }

  std::uint64_t pushes() const noexcept { return pushes_.load(std::memory_order_relaxed); }
  std::uint64_t pops() const noexcept { return pops_.load(std::memory_order_relaxed); }
  std::uint32_t max_inflight() const noexcept {
    return max_inflight_.load(std::memory_order_relaxed);
  }

  /// Quiescent validity check (tests): slots [0, size) settled and
  /// heap-ordered.
  bool check_invariants() {
    std::lock_guard g(entry_);
    while (inflight_.load(std::memory_order_acquire) != 0) std::this_thread::yield();
    for (std::size_t i = 0; i < size_; ++i) {
      if (!slots_[i].full.load(std::memory_order_acquire)) return false;
      if (i > 0 && cmp_(slots_[i].item, slots_[(i - 1) / 2].item)) return false;
    }
    return true;
  }

 private:
  struct alignas(kCacheLine) Slot {
    Spinlock lock;
    std::atomic<bool> full{false};
    T item{};
  };

  Compare cmp_;
  const std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  mutable Spinlock entry_;
  std::size_t size_ = 0;  // guarded by entry_
  std::atomic<std::uint32_t> inflight_{0};
  std::atomic<std::uint64_t> pushes_{0};
  std::atomic<std::uint64_t> pops_{0};
  std::atomic<std::uint32_t> max_inflight_{0};
};

}  // namespace ph
