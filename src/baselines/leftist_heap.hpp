// Leftist heap — meldable heap with worst-case O(log n) meld via the
// null-path-length (npl) invariant; the classical structured counterpart to
// the amortized skew heap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace ph {

template <typename T, typename Compare = std::less<T>>
class LeftistHeap {
 public:
  explicit LeftistHeap(Compare cmp = Compare()) : cmp_(std::move(cmp)) {}
  ~LeftistHeap() { clear(); }

  LeftistHeap(LeftistHeap&& other) noexcept
      : cmp_(std::move(other.cmp_)), root_(other.root_), size_(other.size_) {
    other.root_ = nullptr;
    other.size_ = 0;
  }
  LeftistHeap& operator=(LeftistHeap&& other) noexcept {
    if (this != &other) {
      clear();
      cmp_ = std::move(other.cmp_);
      root_ = std::exchange(other.root_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  LeftistHeap(const LeftistHeap&) = delete;
  LeftistHeap& operator=(const LeftistHeap&) = delete;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  const T& top() const {
    PH_ASSERT(!empty());
    return root_->value;
  }

  void push(const T& v) {
    root_ = meld(root_, new Node{v, nullptr, nullptr, 1});
    ++size_;
  }

  T pop() {
    PH_ASSERT(!empty());
    Node* old = root_;
    T out = std::move(old->value);
    root_ = meld(old->left, old->right);
    delete old;
    --size_;
    return out;
  }

  void merge(LeftistHeap& other) {
    root_ = meld(root_, other.root_);
    size_ += other.size_;
    other.root_ = nullptr;
    other.size_ = 0;
  }

  void clear() noexcept {
    std::vector<Node*> stack;
    if (root_ != nullptr) stack.push_back(root_);
    while (!stack.empty()) {
      Node* cur = stack.back();
      stack.pop_back();
      if (cur->left != nullptr) stack.push_back(cur->left);
      if (cur->right != nullptr) stack.push_back(cur->right);
      delete cur;
    }
    root_ = nullptr;
    size_ = 0;
  }

  bool check_invariants() const { return check(root_).first; }

 private:
  struct Node {
    T value;
    Node* left;
    Node* right;
    std::uint32_t npl;  ///< null path length
  };

  static std::uint32_t npl_of(const Node* n) noexcept { return n == nullptr ? 0 : n->npl; }

  Node* meld(Node* a, Node* b) {
    if (a == nullptr) return b;
    if (b == nullptr) return a;
    if (cmp_(b->value, a->value)) std::swap(a, b);
    a->right = meld(a->right, b);
    if (npl_of(a->left) < npl_of(a->right)) std::swap(a->left, a->right);
    a->npl = npl_of(a->right) + 1;
    return a;
  }

  /// Returns {valid, npl}.
  std::pair<bool, std::uint32_t> check(const Node* n) const {
    if (n == nullptr) return {true, 0};
    if (n->left != nullptr && cmp_(n->left->value, n->value)) return {false, 0};
    if (n->right != nullptr && cmp_(n->right->value, n->value)) return {false, 0};
    auto [lok, lnpl] = check(n->left);
    auto [rok, rnpl] = check(n->right);
    if (!lok || !rok || lnpl < rnpl) return {false, 0};
    if (n->npl != rnpl + 1) return {false, 0};
    return {true, n->npl};
  }

  Compare cmp_;
  Node* root_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace ph
