// FlatCombiningPQ — a flat-combining frontend over the sequential binary
// heap (Hendler, Incze, Shavit & Tzafrir, SPAA'10 technique): each thread
// publishes its operation in a private cache-line-sized slot; whoever grabs
// the combiner lock applies *every* pending operation against the sequential
// heap in one pass and writes the answers back. Threads that lose the lock
// race just spin on their own slot — a single line bouncing once per op —
// instead of contending on the heap's internals.
//
// This is the classic "serialize cheaply" baseline for bench_parallel_cycle:
// it preserves exact global-minimum semantics (every pop is the true min at
// its linearization point inside a combine pass), so it brackets the design
// space opposite the relaxed MultiQueues-style LocalHeaps — the sharded /
// pipelined structures must beat it on throughput while matching its
// exactness. Combine-pass statistics (combines(), combined_ops()) expose the
// batching factor: ops-per-lock-acquisition is the whole point of the
// technique, and the bench reports it.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "baselines/binary_heap.hpp"
#include "util/assert.hpp"
#include "util/cacheline.hpp"
#include "util/spinlock.hpp"

namespace ph {

template <typename T, typename Compare = std::less<T>>
class FlatCombiningPQ {
 public:
  /// `max_threads` fixes the slot array; callers pass a stable tid in
  /// [0, max_threads) with each operation (one slot per thread — two threads
  /// sharing a tid would corrupt the publication protocol).
  explicit FlatCombiningPQ(unsigned max_threads, Compare cmp = Compare())
      : heap_(std::move(cmp)), slots_(max_threads) {
    PH_ASSERT(max_threads >= 1);
  }

  unsigned max_threads() const noexcept {
    return static_cast<unsigned>(slots_.size());
  }

  void push(unsigned tid, const T& v) {
    Slot& s = *slots_[tid];
    s.val = v;
    publish_and_wait(s, kPush);
  }

  /// Pops the global minimum; false iff the heap was empty at the combine
  /// pass that served this request.
  bool try_pop(unsigned tid, T& out) {
    Slot& s = *slots_[tid];
    if (publish_and_wait(s, kPop) == kDoneEmpty) return false;
    out = std::move(s.val);
    return true;
  }

  /// Size is exact only at quiescence (no in-flight operations).
  std::size_t size() {
    lock_.lock();
    const std::size_t n = heap_.size();
    lock_.unlock();
    return n;
  }

  std::uint64_t combines() const noexcept {
    return combines_.load(std::memory_order_relaxed);
  }
  std::uint64_t combined_ops() const noexcept {
    return combined_ops_.load(std::memory_order_relaxed);
  }

 private:
  enum : std::uint32_t {
    kIdle = 0,      // slot free (owned by the thread)
    kPush = 1,      // val holds the item to insert
    kPop = 2,       // combiner should write the min into val
    kDoneOk = 3,    // op served; for pops, val holds the popped min
    kDoneEmpty = 4  // pop served against an empty heap
  };

  // One publication slot per thread, padded so spinning on one thread's
  // state never invalidates a neighbour's line.
  struct Slot {
    std::atomic<std::uint32_t> state{kIdle};
    T val{};
  };

  /// Publishes `op` in `s`, then alternates between watching the slot and
  /// bidding for the combiner lock until some combine pass (possibly our
  /// own) serves it. Returns the terminal state (kDoneOk / kDoneEmpty).
  std::uint32_t publish_and_wait(Slot& s, std::uint32_t op) {
    // release: the combiner's acquire-load of state must see val.
    s.state.store(op, std::memory_order_release);
    std::uint32_t spins = 0;
    for (;;) {
      const std::uint32_t st = s.state.load(std::memory_order_acquire);
      if (st >= kDoneOk) {
        s.state.store(kIdle, std::memory_order_relaxed);
        return st;
      }
      if (lock_.try_lock()) {
        combine();
        lock_.unlock();
        // Our own pass necessarily served our slot (if a concurrent
        // combiner hadn't already).
        const std::uint32_t fin = s.state.load(std::memory_order_relaxed);
        PH_ASSERT(fin >= kDoneOk);
        s.state.store(kIdle, std::memory_order_relaxed);
        return fin;
      }
      if (++spins >= 64) {
        spins = 0;
        std::this_thread::yield();
      }
    }
  }

  /// Lock held. One pass over every slot, applying pending ops in tid order
  /// (the linearization order within this batch).
  void combine() {
    combines_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t served = 0;
    for (auto& ps : slots_) {
      Slot& s = *ps;
      const std::uint32_t st = s.state.load(std::memory_order_acquire);
      if (st == kPush) {
        heap_.push(s.val);
        ++served;
        s.state.store(kDoneOk, std::memory_order_release);
      } else if (st == kPop) {
        ++served;
        if (heap_.empty()) {
          s.state.store(kDoneEmpty, std::memory_order_release);
        } else {
          s.val = heap_.pop();
          s.state.store(kDoneOk, std::memory_order_release);
        }
      }
    }
    combined_ops_.fetch_add(served, std::memory_order_relaxed);
  }

  Spinlock lock_;
  BinaryHeap<T, Compare> heap_;  // guarded by lock_
  std::vector<Padded<Slot>> slots_;
  std::atomic<std::uint64_t> combines_{0};
  std::atomic<std::uint64_t> combined_ops_{0};
};

}  // namespace ph
