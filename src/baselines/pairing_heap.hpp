// Pairing heap — the strongest pointer-based serial comparator in practice
// (O(1) amortized push, O(log n) amortized pop via two-pass pairing).
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace ph {

template <typename T, typename Compare = std::less<T>>
class PairingHeap {
 public:
  explicit PairingHeap(Compare cmp = Compare()) : cmp_(std::move(cmp)) {}
  ~PairingHeap() { clear(); }

  PairingHeap(PairingHeap&& other) noexcept
      : cmp_(std::move(other.cmp_)), root_(other.root_), size_(other.size_) {
    other.root_ = nullptr;
    other.size_ = 0;
  }
  PairingHeap& operator=(PairingHeap&& other) noexcept {
    if (this != &other) {
      clear();
      cmp_ = std::move(other.cmp_);
      root_ = std::exchange(other.root_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  PairingHeap(const PairingHeap&) = delete;
  PairingHeap& operator=(const PairingHeap&) = delete;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  const T& top() const {
    PH_ASSERT(!empty());
    return root_->value;
  }

  void push(const T& v) {
    root_ = meld(root_, new Node{v, nullptr, nullptr});
    ++size_;
  }

  T pop() {
    PH_ASSERT(!empty());
    Node* old = root_;
    T out = std::move(old->value);
    root_ = two_pass_merge(old->child);
    delete old;
    --size_;
    return out;
  }

  void clear() noexcept {
    std::vector<Node*> stack;
    if (root_ != nullptr) stack.push_back(root_);
    while (!stack.empty()) {
      Node* cur = stack.back();
      stack.pop_back();
      if (cur->child != nullptr) stack.push_back(cur->child);
      if (cur->sibling != nullptr) stack.push_back(cur->sibling);
      delete cur;
    }
    root_ = nullptr;
    size_ = 0;
  }

  bool check_invariants() const {
    if (root_ == nullptr) return size_ == 0;
    std::vector<const Node*> stack{root_};
    std::size_t count = 0;
    while (!stack.empty()) {
      const Node* cur = stack.back();
      stack.pop_back();
      ++count;
      for (const Node* c = cur->child; c != nullptr; c = c->sibling) {
        if (cmp_(c->value, cur->value)) return false;
        stack.push_back(c);
      }
    }
    return count == size_;
  }

 private:
  struct Node {
    T value;
    Node* child;    ///< first child
    Node* sibling;  ///< next sibling in the child list
  };

  Node* meld(Node* a, Node* b) {
    if (a == nullptr) return b;
    if (b == nullptr) return a;
    if (cmp_(b->value, a->value)) std::swap(a, b);
    b->sibling = a->child;
    a->child = b;
    return a;
  }

  /// Classic two-pass pairing: left-to-right pairwise meld, then
  /// right-to-left fold.
  Node* two_pass_merge(Node* first) {
    pairs_.clear();
    while (first != nullptr) {
      Node* a = first;
      Node* b = a->sibling;
      if (b == nullptr) {
        a->sibling = nullptr;
        pairs_.push_back(a);
        break;
      }
      first = b->sibling;
      a->sibling = nullptr;
      b->sibling = nullptr;
      pairs_.push_back(meld(a, b));
    }
    Node* result = nullptr;
    for (std::size_t i = pairs_.size(); i-- > 0;) result = meld(result, pairs_[i]);
    return result;
  }

  Compare cmp_;
  Node* root_ = nullptr;
  std::size_t size_ = 0;
  std::vector<Node*> pairs_;  // scratch for two_pass_merge
};

}  // namespace ph
