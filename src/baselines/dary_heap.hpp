// Implicit d-ary min-heap. Wider nodes shorten the tree (fewer cache misses
// on pops for moderate d), making it the strongest *serial* array-heap
// baseline — useful to separate "parallel heap wins by parallelism" from
// "parallel heap wins by better constants".
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace ph {

template <typename T, std::size_t D = 4, typename Compare = std::less<T>>
class DaryHeap {
  static_assert(D >= 2, "arity must be at least 2");

 public:
  explicit DaryHeap(Compare cmp = Compare()) : cmp_(std::move(cmp)) {}

  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }
  void reserve(std::size_t n) { data_.reserve(n); }
  void clear() noexcept { data_.clear(); }

  const T& top() const {
    PH_ASSERT(!empty());
    return data_.front();
  }

  void push(const T& v) {
    data_.push_back(v);
    sift_up(data_.size() - 1);
  }

  T pop() {
    PH_ASSERT(!empty());
    T out = std::move(data_.front());
    data_.front() = std::move(data_.back());
    data_.pop_back();
    if (!data_.empty()) sift_down(0);
    return out;
  }

  bool check_invariants() const {
    for (std::size_t i = 1; i < data_.size(); ++i) {
      if (cmp_(data_[i], data_[(i - 1) / D])) return false;
    }
    return true;
  }

 private:
  void sift_up(std::size_t i) {
    T v = std::move(data_[i]);
    while (i > 0) {
      const std::size_t parent = (i - 1) / D;
      if (!cmp_(v, data_[parent])) break;
      data_[i] = std::move(data_[parent]);
      i = parent;
    }
    data_[i] = std::move(v);
  }

  void sift_down(std::size_t i) {
    const std::size_t n = data_.size();
    T v = std::move(data_[i]);
    for (;;) {
      const std::size_t first = D * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = std::min(first + D, n);
      for (std::size_t c = first + 1; c < last; ++c) {
        if (cmp_(data_[c], data_[best])) best = c;
      }
      if (!cmp_(data_[best], v)) break;
      data_[i] = std::move(data_[best]);
      i = best;
    }
    data_[i] = std::move(v);
  }

  Compare cmp_;
  std::vector<T> data_;
};

}  // namespace ph
