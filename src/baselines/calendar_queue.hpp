// Calendar queue (R. Brown, CACM 1988) — the O(1)-amortized event-set
// structure the lineage repeatedly cites and, in parallelized form, used
// before switching to the parallel heap. Priorities are real-valued "dates":
// a year of `nbuckets` day-buckets of width `width`; an item with priority p
// goes into bucket floor(p / width) mod nbuckets; dequeue scans from the
// current day forward, completing at most one year before falling back to a
// direct minimum search. The bucket count doubles/halves as the queue grows
// and shrinks, and the width is re-estimated from a sample of inter-event
// gaps (Brown's heuristic) — both when a resize triggers it and periodically
// (every ~2·size pops) so a stationary-size queue with a drifting gap
// distribution doesn't keep a stale width forever.
//
// Requirements: Key(T) -> double must be non-negative. Brown designed the
// structure as an *event set*: every insertion is at or after the last
// dequeued priority (true of any causal simulation), and that is the fast
// path here. Unlike the original, insertions behind the clock are still
// *exact*: they arm a guard that resolves the next dequeue by direct
// minimum search (O(buckets)), after which the calendar restarts at the true
// minimum. Monotone workloads never pay for the guard.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/assert.hpp"

namespace ph {

template <typename T, typename KeyFn>
class CalendarQueue {
 public:
  explicit CalendarQueue(KeyFn key = KeyFn(), std::size_t initial_buckets = 2,
                         double initial_width = 1.0)
      : key_(std::move(key)) {
    init(initial_buckets, initial_width, 0.0);
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  void push(const T& v) {
    enqueue(v);
    if (size_ > 2 * buckets_.size() && buckets_.size() < (1u << 22)) {
      resize(2 * buckets_.size());
    }
  }

  T pop() {
    PH_ASSERT(!empty());
    T out = dequeue();
    ++pops_since_estimate_;
    if (size_ < buckets_.size() / 2 && buckets_.size() > 2) {
      resize(buckets_.size() / 2);
    } else if (size_ >= 2 && pops_since_estimate_ > 2 * size_ + 32) {
      // Brown's periodic re-estimation: width was previously refreshed only
      // by resizes, so a queue whose *size* is stationary but whose gap
      // distribution drifts kept a stale width forever — days end up holding
      // ~all events (width too wide) or the year scan walks ~all buckets
      // (width too narrow), degrading dequeue to O(n) scans. Re-sample every
      // ~2·size pops (amortized O(1)) and rebuild only on real drift, so
      // stationary-gap workloads never pay for a rebuild.
      const double w = estimate_width();
      pops_since_estimate_ = 0;
      if (w > 2.0 * width_ || w < 0.5 * width_) {
        rebuild(buckets_.size(), w);
        ++width_reestimates_;
      }
    }
    return out;
  }

  const T& top() const {
    PH_ASSERT(!empty());
    // Locate (without removing) the next event; cache-free implementation
    // simply dequeues and re-enqueues internally would disturb order of
    // equal keys, so we scan the same way dequeue does.
    const T* best = scan_min();
    PH_ASSERT(best != nullptr);
    return *best;
  }

  /// Current day width (testing/diagnostics).
  double current_width() const noexcept { return width_; }
  /// Rebuilds performed by the periodic drift re-estimation (not resizes).
  std::uint64_t width_reestimates() const noexcept { return width_reestimates_; }

  bool check_invariants() const {
    std::size_t n = 0;
    for (const auto& b : buckets_) {
      for (std::size_t i = 1; i < b.size(); ++i) {
        // Buckets are sorted descending so the minimum pops off the back.
        if (key_(b[i - 1]) < key_(b[i])) return false;
      }
      n += b.size();
    }
    return n == size_;
  }

 private:
  using Bucket = std::vector<T>;

  void init(std::size_t nbuckets, double width, double startprio) {
    buckets_.assign(nbuckets, Bucket{});
    width_ = width;
    last_prio_ = startprio;
    cur_day_ = day_of(startprio);
    size_ = 0;
  }

  // Day and bucket indexing. The scan test and bucket placement MUST use the
  // bit-identical floor(p / width_) computation: deriving the scan windows by
  // accumulating `top += width_` instead let an item fall into the seam
  // between two roundings of the same boundary (e.g. width 4.8: 72 enqueues
  // into day floor(14.999…) = 14, but the accumulated window for day 14 ended
  // at exactly 72.0), where it was silently skipped without arming any guard
  // — an out-of-order dequeue caught by the differential stress harness.
  // Days are doubles (integer-valued) so huge priority/width ratios don't
  // overflow an integer cast; fmod on integer-valued doubles is exact.
  double day_of(double prio) const { return std::floor(prio / width_); }

  std::size_t bucket_of_day(double day) const {
    return static_cast<std::size_t>(
        std::fmod(day, static_cast<double>(buckets_.size())));
  }

  std::size_t bucket_of(double prio) const { return bucket_of_day(day_of(prio)); }

  void enqueue(const T& v) {
    const double p = key_(v);
    PH_ASSERT_MSG(p >= 0.0, "calendar queue requires non-negative priorities");
    Bucket& b = buckets_[bucket_of(p)];
    // Insert keeping the bucket sorted descending (min at the back). Equal
    // keys: new item goes nearer the front of the descending order's equal
    // run, i.e. pops after existing equals (FIFO within a key).
    auto it = std::upper_bound(b.begin(), b.end(), p,
                               [this](double x, const T& e) { return x > key_(e); });
    b.insert(it, v);
    ++size_;
    // Insertion behind the clock (outside Brown's contract): remember it so
    // the next dequeue resolves by direct search instead of the year scan.
    if (p < last_prio_) has_past_ = true;
  }

  T dequeue() {
    // Exactness guard: if anything was inserted behind the clock, the year
    // scan's assumptions are void — find the true minimum directly and
    // restart the calendar there.
    if (has_past_) {
      has_past_ = false;
      return direct_min_dequeue();
    }
    // Phase 1: scan from the current day within the current year. An event
    // qualifies only if its own day index matches the scanned day (the same
    // floor(p / width_) that placed it — see day_of); events beyond the year
    // fall through to the phase-2 direct search, which resets the calendar
    // at the true minimum. Events behind the clock cannot appear here: they
    // armed has_past_ at enqueue and were resolved above.
    for (std::size_t scanned = 0; scanned < buckets_.size(); ++scanned) {
      const double day = cur_day_ + static_cast<double>(scanned);
      Bucket& b = buckets_[bucket_of_day(day)];
      if (!b.empty() && day_of(key_(b.back())) == day) {
        T out = std::move(b.back());
        b.pop_back();
        --size_;
        cur_day_ = day;
        last_prio_ = key_(out);
        return out;
      }
    }
    // Phase 2 (rare): nothing within a year — find the global minimum
    // directly and restart the calendar there.
    return direct_min_dequeue();
  }

  T direct_min_dequeue() {
    std::size_t best_bucket = 0;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t bi = 0; bi < buckets_.size(); ++bi) {
      const Bucket& b = buckets_[bi];
      if (!b.empty() && key_(b.back()) < best) {
        best = key_(b.back());
        best_bucket = bi;
      }
    }
    last_prio_ = best;
    cur_day_ = day_of(best);
    Bucket& b = buckets_[best_bucket];
    T out = std::move(b.back());
    b.pop_back();
    --size_;
    return out;
  }

  const T* scan_min() const {
    const T* best = nullptr;
    double bestp = std::numeric_limits<double>::infinity();
    for (const auto& b : buckets_) {
      if (!b.empty() && key_(b.back()) < bestp) {
        bestp = key_(b.back());
        best = &b.back();
      }
    }
    return best;
  }

  /// Brown's width heuristic: dequeue a small sample, average the
  /// inter-event gaps (discarding outliers beyond twice the raw average),
  /// and set the width to 3× the adjusted average.
  double estimate_width() {
    if (size_ < 2) return width_;
    // Brown's newwidth(): the sampling dequeues must not move the queue's
    // position, so save and restore it around the sample.
    const double saved_prio = last_prio_;
    const double saved_day = cur_day_;
    std::size_t ns;
    if (size_ <= 5) {
      ns = size_;
    } else {
      ns = 5 + size_ / 10;
    }
    ns = std::min<std::size_t>(ns, 25);
    sample_.clear();
    for (std::size_t s = 0; s < ns; ++s) sample_.push_back(dequeue());
    double raw = 0;
    for (std::size_t s = 1; s < sample_.size(); ++s) {
      raw += key_(sample_[s]) - key_(sample_[s - 1]);
    }
    raw /= static_cast<double>(sample_.size() - 1);
    double adj = 0;
    std::size_t kept = 0;
    for (std::size_t s = 1; s < sample_.size(); ++s) {
      const double gap = key_(sample_[s]) - key_(sample_[s - 1]);
      if (gap <= 2 * raw) {
        adj += gap;
        ++kept;
      }
    }
    const double avg = kept > 0 ? adj / static_cast<double>(kept) : raw;
    // Restore the position before re-enqueueing so the sample (all at or
    // after the saved clock) does not trip the behind-clock guard.
    last_prio_ = saved_prio;
    cur_day_ = saved_day;
    for (const T& v : sample_) enqueue(v);
    const double w = 3.0 * avg;
    return w > 0 ? w : width_;
  }

  void resize(std::size_t nbuckets) { rebuild(nbuckets, estimate_width()); }

  /// Re-initializes with `nbuckets` buckets of width `w` and re-enqueues
  /// everything (resizes and drift re-estimations share this path).
  void rebuild(std::size_t nbuckets, double w) {
    pops_since_estimate_ = 0;
    old_.clear();
    for (auto& b : buckets_) {
      old_.insert(old_.end(), b.begin(), b.end());
    }
    const double start = size_ > 0 ? last_prio_ : 0.0;
    const std::size_t n = old_.size();
    init(nbuckets, w, std::max(0.0, start));
    for (const T& v : old_) enqueue(v);
    PH_ASSERT(size_ == n);
  }

  KeyFn key_;
  std::vector<Bucket> buckets_;
  double width_ = 1.0;
  double last_prio_ = 0.0;  ///< priority of the last dequeued event
  double cur_day_ = 0.0;    ///< integer day index the calendar is at
  bool has_past_ = false;   ///< an insertion went behind the clock
  std::size_t size_ = 0;
  std::size_t pops_since_estimate_ = 0;   ///< periodic re-estimation clock
  std::uint64_t width_reestimates_ = 0;   ///< drift rebuilds performed
  std::vector<T> sample_, old_;  // scratch
};

}  // namespace ph
