#include "obs/exposition.hpp"

#include <ostream>
#include <string>
#include <vector>

#include "telemetry/json.hpp"

namespace ph::obs {

namespace {

/// Prometheus label-value escaping: backslash, double-quote, newline.
std::string prom_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void prom_labels(std::ostream& os,
                 const std::vector<std::pair<std::string, std::string>>& labels) {
  if (labels.empty()) return;
  os << '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) os << ',';
    first = false;
    os << k << "=\"" << prom_escape(v) << '"';
  }
  os << '}';
}

void prom_header(std::ostream& os, const std::string& name,
                 const std::string& help, const char* type) {
  os << "# HELP " << name << ' ' << help << '\n';
  os << "# TYPE " << name << ' ' << type << '\n';
}

}  // namespace

void write_prometheus(const ObsSnapshot& snap, std::ostream& os) {
  using telemetry::Counter;
  using telemetry::Phase;

  // Snapshot identity: lets a scraper detect publisher restarts and compute
  // rates against the registry timebase instead of its own arrival clock.
  prom_header(os, "ph_obs_snapshot_seq", "Monotone snapshot sequence number.",
              "counter");
  os << "ph_obs_snapshot_seq " << snap.seq << '\n';
  prom_header(os, "ph_obs_uptime_seconds",
              "Seconds since the telemetry registry was constructed.", "gauge");
  os << "ph_obs_uptime_seconds "
     << static_cast<double>(snap.t_ns) / 1e9 << '\n';

  // Merged monotone counters.
  for (std::size_t c = 0; c < telemetry::kNumCounters; ++c) {
    const std::string name =
        std::string("ph_") + telemetry::counter_name(static_cast<Counter>(c)) +
        "_total";
    prom_header(os, name, "Merged per-thread telemetry counter.", "counter");
    os << name << ' ' << snap.telem.counters[c] << '\n';
  }

  // Per-phase latency summaries. One family, (phase, stat) labelled samples;
  // exported as a gauge because percentiles are not aggregatable counters.
  prom_header(os, "ph_phase_latency_ns",
              "Per-phase latency summary (stat: count|min|max|mean|p50|p90|p99).",
              "gauge");
  static constexpr const char* kStats[] = {"count", "min",  "max", "mean",
                                           "p50",   "p90",  "p99"};
  for (std::size_t p = 0; p < telemetry::kNumPhases; ++p) {
    const auto& h = snap.telem.phases[p];
    if (h.count() == 0) continue;
    const double vals[] = {static_cast<double>(h.count()),
                           static_cast<double>(h.min()),
                           static_cast<double>(h.max()),
                           h.mean(),
                           static_cast<double>(h.percentile(50)),
                           static_cast<double>(h.percentile(90)),
                           static_cast<double>(h.percentile(99))};
    for (std::size_t s = 0; s < 7; ++s) {
      os << "ph_phase_latency_ns{phase=\""
         << telemetry::phase_name(static_cast<Phase>(p)) << "\",stat=\""
         << kStats[s] << "\"} " << vals[s] << '\n';
    }
  }

  prom_header(os, "ph_trace_dropped_spans_total",
              "Trace-ring spans overwritten before export.", "counter");
  os << "ph_trace_dropped_spans_total " << snap.telem.dropped_spans << '\n';

  prom_header(os, "ph_flightrec_events_total",
              "Flight-recorder events ever recorded.", "counter");
  os << "ph_flightrec_events_total " << snap.flight_events << '\n';
  prom_header(os, "ph_flightrec_dropped_total",
              "Flight-recorder events overwritten by ring wrap.", "counter");
  os << "ph_flightrec_dropped_total " << snap.flight_dropped << '\n';

  // Registered gauges, grouped by family so every sample sits under its
  // HELP/TYPE header (the text format requires family contiguity).
  std::vector<std::string> family_order;
  for (const GaugeSample& g : snap.gauges) {
    const std::string name = "ph_" + g.desc.name;
    bool seen = false;
    for (const std::string& f : family_order) seen = seen || f == name;
    if (!seen) family_order.push_back(name);
  }
  for (const std::string& family : family_order) {
    bool header_done = false;
    for (const GaugeSample& g : snap.gauges) {
      const std::string name = "ph_" + g.desc.name;
      if (name != family) continue;
      if (!header_done) {
        prom_header(os, family, g.desc.help.empty() ? "Live gauge." : g.desc.help,
                    "gauge");
        header_done = true;
      }
      os << family;
      prom_labels(os, g.desc.labels);
      os << ' ' << g.value << '\n';
    }
  }
}

void write_json(const ObsSnapshot& snap, std::ostream& os) {
  telemetry::JsonWriter w(os);
  w.begin_object();
  w.kv("seq", snap.seq);
  w.kv("t_ns", snap.t_ns);
  w.kv("epoch_unix_ms", snap.epoch_unix_ms);

  w.key("gauges").begin_array();
  for (const GaugeSample& g : snap.gauges) {
    w.begin_object();
    w.kv("name", g.desc.name);
    w.key("labels").begin_object();
    for (const auto& [k, v] : g.desc.labels) w.kv(k, v);
    w.end_object();
    w.kv("value", g.value);
    w.end_object();
  }
  w.end_array();

  w.key("flight").begin_object();
  w.kv("events", snap.flight_events);
  w.kv("dropped", snap.flight_dropped);
  w.end_object();

  w.key("telemetry");
  snap.telem.write_json(w);

  w.end_object();
}

}  // namespace ph::obs
