#include "obs/provenance.hpp"

#include <unistd.h>

#include <thread>

#include "telemetry/json.hpp"

// Build facts arrive as compile definitions (see src/CMakeLists.txt); every
// macro has a fallback so the file also compiles standalone.
#ifndef PH_BUILD_GIT_SHA
#define PH_BUILD_GIT_SHA "unknown"
#endif
#ifndef PH_BUILD_TYPE
#define PH_BUILD_TYPE "unknown"
#endif
#ifndef PH_BUILD_CXX_FLAGS
#define PH_BUILD_CXX_FLAGS ""
#endif
#ifndef PH_TELEMETRY_ENABLED
#define PH_TELEMETRY_ENABLED 1
#endif
#ifndef PH_SCHED_FUZZ_ENABLED
#define PH_SCHED_FUZZ_ENABLED 0
#endif
#ifndef PH_FAILPOINTS_ENABLED
#define PH_FAILPOINTS_ENABLED 0
#endif

namespace ph::obs {

namespace {

Provenance compute() {
  Provenance p;
  p.git_sha = PH_BUILD_GIT_SHA;
#if defined(__clang__)
  p.compiler = std::string("clang ") + __VERSION__;
#elif defined(__GNUC__)
  p.compiler = std::string("gcc ") + __VERSION__;
#else
  p.compiler = "unknown";
#endif
  p.build_type = PH_BUILD_TYPE;
  p.cxx_flags = PH_BUILD_CXX_FLAGS;
  char host[256] = {};
  if (::gethostname(host, sizeof(host) - 1) == 0) p.hostname = host;
  p.cores = std::thread::hardware_concurrency();
  p.telemetry = PH_TELEMETRY_ENABLED != 0;
  p.sched_fuzz = PH_SCHED_FUZZ_ENABLED != 0;
  p.failpoints = PH_FAILPOINTS_ENABLED != 0;
  return p;
}

}  // namespace

const Provenance& provenance() {
  static const Provenance p = compute();
  return p;
}

void write_provenance_json(telemetry::JsonWriter& w) {
  const Provenance& p = provenance();
  w.begin_object();
  w.kv("git_sha", p.git_sha);
  w.kv("compiler", p.compiler);
  w.kv("build_type", p.build_type);
  w.kv("cxx_flags", p.cxx_flags);
  w.kv("hostname", p.hostname);
  w.kv("cores", p.cores);
  w.kv("telemetry", p.telemetry);
  w.kv("sched_fuzz", p.sched_fuzz);
  w.kv("failpoints", p.failpoints);
  w.end_object();
}

}  // namespace ph::obs
