// Always-on black-box flight recorder: a fixed-size, lock-light ring of
// structured events (phase transitions, fail-point fires, watchdog beats and
// escalations, quarantine/recovery, WAL rotations, checkpoint publications).
//
// Purpose: when a run wedges or dies — a watchdog stall verdict, a ph_crash
// child, a fatal PH_ASSERT — the last few thousand events are dumped to a
// timestamped JSON file, turning "it hung in CI" into a replayable causal
// record. The recorder is deliberately NOT behind PH_TELEMETRY: it must be
// present in every build that can crash, and its cost is one relaxed
// fetch_add plus a few plain stores per event at per-cycle (not per-item)
// frequency.
//
// Concurrency: record() is wait-free for writers (atomic cursor fetch_add
// into a power-of-two ring; per-slot seqlock stamps). Readers (dump paths)
// validate each slot's stamp before/after copying and skip torn slots — a
// reader racing a writer loses that one event, never blocks it. A writer
// lapping another writer inside one read is possible only after kCapacity
// further events, which a dump-time reader cannot observe in practice; the
// dump is a best-effort post-mortem, not a transactional log.
//
// Layering: this header depends on nothing but the standard library (plus
// cacheline.hpp), so the LOW layers — failpoint registry, watchdog, WAL —
// can record events without creating an include cycle; the rest of src/obs/
// sits above them as usual. The .cpp resolves site/phase names for dumps.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/cacheline.hpp"

namespace ph::obs {

/// Structured event kinds. Keep names (flight_kind_name) stable: dump files
/// and the CI smoke grep for them.
enum class FlightKind : std::uint8_t {
  kPhase = 0,         ///< cycle-level phase transition; a=telemetry Phase, b=trace id
  kFailpointFire,     ///< a fail-point fired; a=FailSite, b=cumulative fires
  kFailpointRecovery, ///< a recovery path completed; a=FailSite
  kWatchdogBeat,      ///< heartbeat; a=channel id
  kWatchdogStall,     ///< poll found a stalled channel; a=channel, b=consecutive
  kWatchdogReport,    ///< rung-2 escalation (report dumped); a=channel
  kWatchdogAbort,     ///< rung-3 escalation (about to abort); a=channel
  kQuarantine,        ///< shard retired; a=shard slot, b=items drained
  kRebalance,         ///< partition map re-estimated; a=active shards
  kCycle,             ///< sharded cycle started; a=trace id, b=fresh batch size
  kWalRotate,         ///< new WAL segment opened; a=start sequence
  kCkptPublish,       ///< checkpoint published; a=sequence, b=bytes
  kRecoveryStart,     ///< recovery pass began
  kRecoveryDone,      ///< recovery pass finished; a=op seq, b=records replayed
  kNote,              ///< freeform marker; a/b caller-defined
  kLaneQuarantine,    ///< engine think lane retired; a=lane id, b=consecutive faults
  kIngestFlush,       ///< ingest staging buffers flushed; a=runs, b=items
  kTeardownError,     ///< a destructor swallowed a deferred failure; a=source tag
  kShardProcSpawn,    ///< supervisor spawned a shard backend; a=shard, b=pid (0=loopback)
  kShardProcDeath,    ///< shard backend died/was failed; a=shard, b=pid
  kShardTakeover,     ///< supervisor took a shard over in-parent; a=shard, b=replayed ops
  kShardReadmit,      ///< recovered shard re-admitted; a=shard, b=resent ops
  kSvcOverload,       ///< service began shedding; a=tenant, b=backlog depth
  kSvcDrain,          ///< service drain started; a=in-flight, b=backlog depth
  kCount
};
inline constexpr std::size_t kNumFlightKinds =
    static_cast<std::size_t>(FlightKind::kCount);
const char* flight_kind_name(FlightKind k) noexcept;

struct FlightEvent {
  std::uint64_t t_ns = 0;  ///< ns since recorder construction (steady clock)
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint32_t tid = 0;   ///< recorder-local thread id (first-record order)
  FlightKind kind = FlightKind::kNote;
};

class FlightRecorder {
 public:
  /// Ring capacity (power of two). ~4k events ≈ hundreds of sharded cycles
  /// of history at the recorded event density.
  static constexpr std::size_t kCapacity = std::size_t{1} << 12;

  static FlightRecorder& instance();

  /// Wait-free append. Overwrites the oldest event when full (counted by
  /// dropped()); safe from any thread, including inside crash/assert paths.
  void record(FlightKind kind, std::uint64_t a = 0, std::uint64_t b = 0) noexcept {
    const std::uint64_t idx = cursor_.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots_[idx & (kCapacity - 1)];
    s.stamp.store(idx * 2 + 1, std::memory_order_release);  // odd: in progress
    s.ev.t_ns = now_ns();
    s.ev.a = a;
    s.ev.b = b;
    s.ev.tid = local_tid();
    s.ev.kind = kind;
    s.stamp.store(idx * 2 + 2, std::memory_order_release);  // even: published
  }

  /// Events recorded since construction (including overwritten ones).
  std::uint64_t total() const noexcept {
    return cursor_.load(std::memory_order_relaxed);
  }
  /// Events lost to ring wrap-around.
  std::uint64_t dropped() const noexcept {
    const std::uint64_t n = total();
    return n > kCapacity ? n - kCapacity : 0;
  }

  /// Consistent copies of the live slots, oldest-first (skips slots torn by
  /// a concurrent writer). Safe while writers run.
  std::vector<FlightEvent> snapshot() const;

  /// Serializes {epoch info, total/dropped, events[]} as one JSON document.
  void dump(std::ostream& os, const char* reason) const;

  /// Writes dump() to `<dir>/flightrec-<reason>-<unix ms>-<pid>-<n>.json`
  /// where dir is set_dump_dir() if called, else $PH_FLIGHTREC_DIR, else ".".
  /// `<pid>` keeps concurrent processes (supervisor + shard children sharing
  /// one $PH_FLIGHTREC_DIR) apart and `<n>` is a per-process dump counter, so
  /// two dumps can never clobber each other even within one millisecond.
  /// Returns the path ("" on failure — the dump must never throw; it runs on
  /// dying processes). Best-effort by design.
  std::string dump_to_file(const char* reason) const noexcept;

  /// Overrides the dump directory (tests point this at a temp dir so
  /// watchdog/assert dumps don't land in the working tree).
  void set_dump_dir(std::string dir);

  std::uint64_t now_ns() const noexcept;

 private:
  FlightRecorder();

  struct alignas(kCacheLine) Slot {
    std::atomic<std::uint64_t> stamp{0};  ///< 0 empty; odd writing; even published
    FlightEvent ev;
  };

  static std::uint32_t local_tid() noexcept {
    thread_local std::uint32_t tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    return tid;
  }

  static inline std::atomic<std::uint32_t> next_tid_{0};
  std::atomic<std::uint64_t> cursor_{0};
  std::unique_ptr<Slot[]> slots_;
  std::chrono::steady_clock::time_point epoch_;
  std::int64_t epoch_unix_ms_ = 0;  ///< wall clock at construction (dump header)
  std::string dump_dir_;            ///< "" = env / cwd fallback
  mutable std::mutex dump_dir_mu_;
};

/// Convenience free function mirroring telemetry::count — the one-liner the
/// instrumented layers call.
inline void flight(FlightKind kind, std::uint64_t a = 0, std::uint64_t b = 0) noexcept {
  FlightRecorder::instance().record(kind, a, b);
}

}  // namespace ph::obs
