// Provenance: what build, on what machine, with which toggles.
//
// Benchmark JSON without build provenance is a trap: a "regression" between
// two BENCH files is as likely a compiler-flag or PH_TELEMETRY mismatch as
// a real code change. Every bench --json output embeds this block, and
// scripts/diff_bench.py surfaces it whenever two baselines disagree on
// build configuration.
//
// The git sha and flags are burned in at compile time (CMake passes them as
// compile definitions of this one translation unit — changing commit only
// recompiles provenance.cpp, not the world); hostname and core count are
// read at process start.
#pragma once

#include <string>

namespace ph::telemetry {
class JsonWriter;
}

namespace ph::obs {

struct Provenance {
  std::string git_sha;     ///< HEAD at configure time ("unknown" outside git)
  std::string compiler;    ///< e.g. "GNU 13.2.0" (from __VERSION__)
  std::string build_type;  ///< CMAKE_BUILD_TYPE
  std::string cxx_flags;   ///< effective flags for that build type
  std::string hostname;
  unsigned cores = 0;
  bool telemetry = false;  ///< PH_TELEMETRY_ENABLED at compile time
  bool sched_fuzz = false; ///< PH_SCHED_FUZZ_ENABLED at compile time
  bool failpoints = false; ///< PH_FAILPOINTS_ENABLED at compile time
};

/// The process's provenance (computed once, then cached).
const Provenance& provenance();

/// Writes the provenance as one JSON object *value* — caller supplies the
/// key: `w.key("provenance"); write_provenance_json(w);`.
void write_provenance_json(telemetry::JsonWriter& w);

}  // namespace ph::obs
