// Exposition: render an ObsSnapshot for scrapers.
//
// Two formats, same data:
//  - Prometheus text format 0.0.4 (write_prometheus): what `curl
//    localhost:<port>/metrics` and any Prometheus-compatible collector
//    expect. Counters become ph_<name>_total, phase latency percentiles
//    become ph_phase_latency_ns{phase=...,stat=...}, gauges keep their
//    registered names and labels.
//  - JSON (write_json): machine-friendly full detail — nests the complete
//    telemetry snapshot (per-thread breakdown included) plus gauges; this
//    is what tools/ph_top and the tests parse.
#pragma once

#include <iosfwd>

#include "obs/metrics_registry.hpp"

namespace ph::obs {

/// Prometheus text exposition format (one `# HELP`/`# TYPE` pair per metric
/// family, then samples). Ends with a trailing newline as the format requires.
void write_prometheus(const ObsSnapshot& snap, std::ostream& os);

/// Full-detail JSON document (single object, no trailing newline).
void write_json(const ObsSnapshot& snap, std::ostream& os);

}  // namespace ph::obs
