#include "obs/metrics_registry.hpp"

#include <chrono>

#include "obs/flight_recorder.hpp"

namespace ph::obs {

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry reg;
  return reg;
}

std::uint64_t MetricsRegistry::add_gauge(GaugeDesc desc, GaugeFn fn) {
  std::lock_guard lk(mu_);
  const std::uint64_t id = next_id_++;
  entries_.push_back(Entry{id, std::move(desc), std::move(fn)});
  return id;
}

void MetricsRegistry::remove_gauge(std::uint64_t id) {
  std::lock_guard lk(mu_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->id == id) {
      entries_.erase(it);
      return;
    }
  }
}

std::size_t MetricsRegistry::gauge_count() {
  std::lock_guard lk(mu_);
  return entries_.size();
}

ObsSnapshot MetricsRegistry::snapshot() {
  ObsSnapshot out;
  out.seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  out.t_ns = telemetry::Registry::instance().now_ns();
  out.epoch_unix_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  out.telem = telemetry::Registry::instance().collect();
  {
    // Copy the callbacks out under the lock, evaluate them outside it: a
    // gauge that (against convention) blocks must not wedge add/remove.
    std::vector<std::pair<GaugeDesc, GaugeFn>> fns;
    {
      std::lock_guard lk(mu_);
      fns.reserve(entries_.size());
      for (const Entry& e : entries_) fns.emplace_back(e.desc, e.fn);
    }
    out.gauges.reserve(fns.size());
    for (auto& [desc, fn] : fns) {
      out.gauges.push_back(GaugeSample{std::move(desc), fn ? fn() : 0.0});
    }
  }
  FlightRecorder& fr = FlightRecorder::instance();
  out.flight_events = fr.total();
  out.flight_dropped = fr.dropped();
  return out;
}

}  // namespace ph::obs
