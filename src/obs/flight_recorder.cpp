#include "obs/flight_recorder.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "robustness/failpoint.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/json.hpp"
#include "util/assert.hpp"

namespace ph::obs {

namespace {

// Fatal-assert trigger: a failed PH_ASSERT already flushes the telemetry
// counters/trace rings (telemetry/counters.cpp); this second hook writes the
// flight-recorder black box to a file, because stderr of a dying CI job is
// often truncated while an artifact file survives.
void dump_flight_on_assert() {
  const std::string path = FlightRecorder::instance().dump_to_file("assert");
  if (!path.empty()) {
    std::fprintf(stderr, "ph: flight recorder dumped to %s\n", path.c_str());
  }
}

[[maybe_unused]] const bool g_assert_hook_registered = [] {
  ph::add_assert_flush_hook(&dump_flight_on_assert);
  return true;
}();

/// Resolves the human name of an event's `a` argument where the kind gives
/// it a known domain (telemetry phase, fail-point site). Returns nullptr
/// when `a` is a plain number.
const char* arg_name(const FlightEvent& ev) {
  switch (ev.kind) {
    case FlightKind::kPhase:
      return telemetry::phase_name(static_cast<telemetry::Phase>(ev.a));
    case FlightKind::kFailpointFire:
    case FlightKind::kFailpointRecovery:
      return robustness::fail_site_name(static_cast<robustness::FailSite>(ev.a));
    default:
      return nullptr;
  }
}

}  // namespace

const char* flight_kind_name(FlightKind k) noexcept {
  switch (k) {
    case FlightKind::kPhase: return "phase";
    case FlightKind::kFailpointFire: return "failpoint_fire";
    case FlightKind::kFailpointRecovery: return "failpoint_recovery";
    case FlightKind::kWatchdogBeat: return "watchdog_beat";
    case FlightKind::kWatchdogStall: return "watchdog_stall";
    case FlightKind::kWatchdogReport: return "watchdog_report";
    case FlightKind::kWatchdogAbort: return "watchdog_abort";
    case FlightKind::kQuarantine: return "quarantine";
    case FlightKind::kRebalance: return "rebalance";
    case FlightKind::kCycle: return "cycle";
    case FlightKind::kWalRotate: return "wal_rotate";
    case FlightKind::kCkptPublish: return "ckpt_publish";
    case FlightKind::kRecoveryStart: return "recovery_start";
    case FlightKind::kRecoveryDone: return "recovery_done";
    case FlightKind::kNote: return "note";
    case FlightKind::kLaneQuarantine: return "lane_quarantine";
    case FlightKind::kIngestFlush: return "ingest_flush";
    case FlightKind::kTeardownError: return "teardown_error";
    case FlightKind::kShardProcSpawn: return "shard_proc_spawn";
    case FlightKind::kShardProcDeath: return "shard_proc_death";
    case FlightKind::kShardTakeover: return "shard_takeover";
    case FlightKind::kShardReadmit: return "shard_readmit";
    case FlightKind::kSvcOverload: return "svc_overload";
    case FlightKind::kSvcDrain: return "svc_drain";
    case FlightKind::kCount: break;
  }
  return "unknown";
}

FlightRecorder::FlightRecorder()
    : slots_(new Slot[kCapacity]), epoch_(std::chrono::steady_clock::now()) {
  epoch_unix_ms_ = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::system_clock::now().time_since_epoch())
                       .count();
}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder rec;
  return rec;
}

std::uint64_t FlightRecorder::now_ns() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  const std::uint64_t end = cursor_.load(std::memory_order_acquire);
  const std::uint64_t begin = end > kCapacity ? end - kCapacity : 0;
  std::vector<FlightEvent> out;
  out.reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t idx = begin; idx < end; ++idx) {
    const Slot& s = slots_[idx & (kCapacity - 1)];
    const std::uint64_t pre = s.stamp.load(std::memory_order_acquire);
    if (pre != idx * 2 + 2) continue;  // torn, lapped, or not yet published
    FlightEvent ev = s.ev;
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.stamp.load(std::memory_order_relaxed) != pre) continue;
    out.push_back(ev);
  }
  // Cursor order ≈ time order, but two racing writers can publish out of
  // order by a few ns; dumps promise causal order, so sort.
  std::stable_sort(out.begin(), out.end(),
                   [](const FlightEvent& x, const FlightEvent& y) {
                     return x.t_ns < y.t_ns;
                   });
  return out;
}

void FlightRecorder::dump(std::ostream& os, const char* reason) const {
  const std::vector<FlightEvent> events = snapshot();
  telemetry::JsonWriter w(os);
  w.begin_object();
  w.kv("reason", reason);
  w.kv("pid", static_cast<std::int64_t>(::getpid()));
  w.kv("epoch_unix_ms", static_cast<std::int64_t>(epoch_unix_ms_));
  w.kv("total_events", total());
  w.kv("dropped_events", dropped());
  w.key("events").begin_array();
  for (const FlightEvent& ev : events) {
    w.begin_object();
    w.kv("t_ns", ev.t_ns);
    w.kv("kind", flight_kind_name(ev.kind));
    w.kv("tid", ev.tid);
    w.kv("a", ev.a);
    if (const char* name = arg_name(ev)) w.kv("a_name", name);
    w.kv("b", ev.b);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string FlightRecorder::dump_to_file(const char* reason) const noexcept {
  try {
    std::string dir;
    {
      std::lock_guard lk(dump_dir_mu_);
      dir = dump_dir_;
    }
    if (dir.empty()) {
      const char* env = std::getenv("PH_FLIGHTREC_DIR");
      dir = (env != nullptr && env[0] != '\0') ? env : ".";
    }
    const std::int64_t now_ms =
        epoch_unix_ms_ + static_cast<std::int64_t>(now_ns() / 1'000'000);
    // Multi-process runs (supervisor + shard children) share one dump dir, so
    // the name carries the pid; the per-process counter keeps two same-reason
    // dumps from one process apart even within a single millisecond. Note:
    // getpid() must be read per-dump, not cached — a fork()ed child inherits
    // the parent's recorder instance.
    static std::atomic<std::uint64_t> dump_seq{0};
    const std::uint64_t seq = dump_seq.fetch_add(1, std::memory_order_relaxed);
    char name[160];
    std::snprintf(name, sizeof(name), "flightrec-%s-%lld-%d-%llu.json", reason,
                  static_cast<long long>(now_ms), static_cast<int>(::getpid()),
                  static_cast<unsigned long long>(seq));
    const std::string path = dir + "/" + name;
    std::ofstream os(path);
    if (!os) return "";
    dump(os, reason);
    os << '\n';
    os.flush();
    return os.good() ? path : "";
  } catch (...) {
    return "";
  }
}

void FlightRecorder::set_dump_dir(std::string dir) {
  std::lock_guard lk(dump_dir_mu_);
  dump_dir_ = std::move(dir);
}

}  // namespace ph::obs
