// SnapshotPublisher: serve live ObsSnapshots without stopping the engine.
//
// Two transports, either or both:
//  - TCP: a minimal HTTP/1.0 responder on 127.0.0.1:<port> (port 0 binds an
//    ephemeral port, reported by port()). GET /metrics returns Prometheus
//    text, GET /metrics.json the JSON document, GET /healthz "ok". One
//    background thread, one request at a time — a scrape is a snapshot plus
//    a few kilobytes of serialization, so concurrency buys nothing here and
//    a single thread can never amplify load on the engine.
//  - File: at a fixed cadence, write the snapshot to a well-known path
//    (atomically: temp + rename, so readers never see a torn file). Format
//    follows the extension: ".json" → JSON, anything else → Prometheus text.
//
// The publisher holds no engine locks; everything it reads comes through
// MetricsRegistry::snapshot(), whose gauge callbacks are by contract
// lock-free atomic loads.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

namespace ph::obs {

class SnapshotPublisher {
 public:
  struct Config {
    /// If nonempty, write a snapshot here every period_ms (atomic rename).
    std::string file_path;
    /// If >= 0, serve HTTP on 127.0.0.1:<port>; 0 picks an ephemeral port.
    int port = -1;
    /// File-write cadence. Scrapes over TCP always get a fresh snapshot.
    unsigned period_ms = 1000;
  };

  explicit SnapshotPublisher(Config cfg) : cfg_(std::move(cfg)) {}
  ~SnapshotPublisher() { stop(); }

  SnapshotPublisher(const SnapshotPublisher&) = delete;
  SnapshotPublisher& operator=(const SnapshotPublisher&) = delete;

  /// Binds (if TCP requested) and starts the background thread. Returns
  /// false if the socket could not be bound — the publisher then stays
  /// stopped and the engine is unaffected (observability must never be the
  /// reason a run dies).
  bool start();

  /// Stops the thread, closes the socket. Idempotent. A final file write
  /// happens on stop so short runs still leave a snapshot behind.
  void stop();

  bool running() const noexcept { return running_.load(std::memory_order_acquire); }

  /// Actual bound TCP port (after start()), or -1 when TCP is off.
  int port() const noexcept { return bound_port_; }

  /// Completed file publications (tests poll this to await a cadence tick).
  std::uint64_t file_publishes() const noexcept {
    return file_publishes_.load(std::memory_order_acquire);
  }

  /// Requests served over TCP.
  std::uint64_t requests() const noexcept {
    return requests_.load(std::memory_order_acquire);
  }

  /// Synchronously writes the snapshot file once (independent of cadence).
  void publish_file_now();

 private:
  void loop();
  void serve_one(int conn_fd);

  Config cfg_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> file_publishes_{0};
  std::atomic<std::uint64_t> requests_{0};
  int listen_fd_ = -1;
  int bound_port_ = -1;
};

}  // namespace ph::obs
