#include "obs/publisher.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/exposition.hpp"
#include "obs/metrics_registry.hpp"

namespace ph::obs {

namespace {

bool wants_json(const std::string& path) {
  return path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
}

/// Blocking-with-timeout send of the whole buffer. MSG_NOSIGNAL: a scraper
/// that disconnects mid-response must not SIGPIPE the engine process.
void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

std::string http_response(int code, const char* status, const char* ctype,
                          const std::string& body) {
  std::ostringstream os;
  os << "HTTP/1.0 " << code << ' ' << status << "\r\n"
     << "Content-Type: " << ctype << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << body;
  return os.str();
}

}  // namespace

bool SnapshotPublisher::start() {
  if (running_.load(std::memory_order_acquire)) return true;
  stop_.store(false, std::memory_order_release);

  if (cfg_.port >= 0) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return false;
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // localhost only, always
    addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 8) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      bound_port_ = ntohs(bound.sin_port);
    }
  }

  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { loop(); });
  return true;
}

void SnapshotPublisher::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  bound_port_ = -1;
  running_.store(false, std::memory_order_release);
  // Leave one final snapshot behind so even a run shorter than the cadence
  // produces a readable file.
  if (!cfg_.file_path.empty()) publish_file_now();
}

void SnapshotPublisher::publish_file_now() {
  if (cfg_.file_path.empty()) return;
  const ObsSnapshot snap = MetricsRegistry::instance().snapshot();
  const std::string tmp = cfg_.file_path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) return;
    if (wants_json(cfg_.file_path)) {
      write_json(snap, os);
      os << '\n';
    } else {
      write_prometheus(snap, os);
    }
  }
  if (std::rename(tmp.c_str(), cfg_.file_path.c_str()) == 0) {
    file_publishes_.fetch_add(1, std::memory_order_acq_rel);
  }
}

void SnapshotPublisher::loop() {
  using clock = std::chrono::steady_clock;
  auto next_file = clock::now();  // publish immediately on start

  while (!stop_.load(std::memory_order_acquire)) {
    if (!cfg_.file_path.empty() && clock::now() >= next_file) {
      publish_file_now();
      next_file = clock::now() + std::chrono::milliseconds(cfg_.period_ms);
    }

    if (listen_fd_ < 0) {
      // File-only mode: sleep in short slices so stop() stays responsive.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }

    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 100 /* ms */);
    if (rc <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    serve_one(conn);
    ::close(conn);
  }
}

void SnapshotPublisher::serve_one(int conn_fd) {
  // Read until the end of the request line; clients are local curl/ph_top,
  // so one short read almost always suffices. Bounded by size and time.
  std::string req;
  char buf[1024];
  for (int rounds = 0; rounds < 8 && req.find("\r\n") == std::string::npos;
       ++rounds) {
    pollfd pfd{conn_fd, POLLIN, 0};
    if (::poll(&pfd, 1, 250) <= 0) break;
    const ssize_t n = ::recv(conn_fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    req.append(buf, static_cast<std::size_t>(n));
    if (req.size() > 8192) break;
  }

  std::string method, path;
  {
    std::istringstream is(req);
    is >> method >> path;
  }
  if (method != "GET") {
    send_all(conn_fd, http_response(405, "Method Not Allowed", "text/plain",
                                    "GET only\n"));
    return;
  }
  requests_.fetch_add(1, std::memory_order_acq_rel);

  if (path == "/healthz") {
    send_all(conn_fd, http_response(200, "OK", "text/plain", "ok\n"));
    return;
  }
  if (path == "/metrics" || path == "/metrics.json" || path == "/") {
    const ObsSnapshot snap = MetricsRegistry::instance().snapshot();
    std::ostringstream body;
    if (path == "/metrics.json") {
      write_json(snap, body);
      body << '\n';
      send_all(conn_fd,
               http_response(200, "OK", "application/json", body.str()));
    } else {
      write_prometheus(snap, body);
      send_all(conn_fd, http_response(200, "OK",
                                      "text/plain; version=0.0.4", body.str()));
    }
    return;
  }
  send_all(conn_fd, http_response(404, "Not Found", "text/plain",
                                  "unknown path\n"));
}

}  // namespace ph::obs
