// MetricsRegistry: one atomic snapshot of everything observable.
//
// The telemetry registry (counters.hpp) answers "what has the process done"
// — monotone counters and latency histograms merged from per-thread slots.
// It cannot answer "what is the process doing *now*": per-shard heap sizes,
// replay progress, watchdog escalation depth. Those live in component state
// that telemetry deliberately does not know about.
//
// This registry closes the gap with *gauges*: named callbacks registered by
// the component that owns the state (ShardedHeap, PhaseWatchdog, WalWriter,
// DurableHeap) and sampled on demand. snapshot() evaluates every gauge,
// merges the telemetry counters, and stamps the result with a sequence
// number and timestamp — one coherent ObsSnapshot that the exposition layer
// (exposition.hpp) renders as Prometheus text or JSON and the publisher
// (publisher.hpp) serves over TCP or writes to a file.
//
// Gauge callbacks must be safe to invoke from the publisher's thread while
// the engine runs. The convention (see ShardedHeap::LiveStats) is: the
// component keeps relaxed-atomic mirrors updated at phase boundaries and
// the callback only loads them — never walks live data structures.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/counters.hpp"

namespace ph::obs {

/// Samples one live value. Must be thread-safe and non-blocking (load an
/// atomic, don't take engine locks) — it runs on the scrape thread.
using GaugeFn = std::function<double()>;

/// One registered gauge's identity. `labels` distinguish instances of the
/// same metric (e.g. ph_shard_size{shard="3"}).
struct GaugeDesc {
  std::string name;                                        ///< metric name, snake_case
  std::vector<std::pair<std::string, std::string>> labels; ///< sorted as given
  std::string help;                                        ///< one-line meaning
};

/// One gauge's sampled value inside a snapshot.
struct GaugeSample {
  GaugeDesc desc;
  double value = 0.0;
};

/// Everything observable at one instant.
struct ObsSnapshot {
  std::uint64_t seq = 0;        ///< monotone per-process snapshot number
  std::uint64_t t_ns = 0;       ///< telemetry registry timebase at sample time
  std::uint64_t epoch_unix_ms = 0;  ///< wall clock at sample time
  telemetry::MetricsSnapshot telem; ///< merged counters + phase histograms
  std::vector<GaugeSample> gauges;  ///< every registered gauge, sampled
  std::uint64_t flight_events = 0;  ///< flight recorder: events ever recorded
  std::uint64_t flight_dropped = 0; ///< flight recorder: events overwritten
};

/// Process-wide gauge registry + snapshot factory.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Registers a gauge; returns a handle for remove_gauge(). Thread-safe.
  std::uint64_t add_gauge(GaugeDesc desc, GaugeFn fn);

  /// Unregisters; safe to call with a stale id (no-op). Thread-safe.
  void remove_gauge(std::uint64_t id);

  /// Samples every gauge and merges telemetry into one stamped snapshot.
  ObsSnapshot snapshot();

  std::size_t gauge_count();

 private:
  MetricsRegistry() = default;

  struct Entry {
    std::uint64_t id;
    GaugeDesc desc;
    GaugeFn fn;
  };

  std::mutex mu_;
  std::vector<Entry> entries_;
  std::uint64_t next_id_ = 1;
  std::atomic<std::uint64_t> seq_{0};
};

/// RAII bundle of gauge registrations: components register their gauges
/// through one GaugeSet member and deregistration is automatic — no dangling
/// callbacks after the component dies.
class GaugeSet {
 public:
  GaugeSet() = default;
  GaugeSet(const GaugeSet&) = delete;
  GaugeSet& operator=(const GaugeSet&) = delete;
  GaugeSet(GaugeSet&& o) noexcept : ids_(std::move(o.ids_)) { o.ids_.clear(); }
  GaugeSet& operator=(GaugeSet&& o) noexcept {
    if (this != &o) {
      clear();
      ids_ = std::move(o.ids_);
      o.ids_.clear();
    }
    return *this;
  }
  ~GaugeSet() { clear(); }

  void add(GaugeDesc desc, GaugeFn fn) {
    ids_.push_back(MetricsRegistry::instance().add_gauge(std::move(desc), std::move(fn)));
  }

  void clear() {
    for (std::uint64_t id : ids_) MetricsRegistry::instance().remove_gauge(id);
    ids_.clear();
  }

 private:
  std::vector<std::uint64_t> ids_;
};

}  // namespace ph::obs
