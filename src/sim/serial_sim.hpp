// Serial reference simulator: one event at a time off a binary heap — the
// ground truth every parallel scheduler is differential-tested against.
// Simulates every event with ts < end_time; children at or beyond the
// horizon are dropped, which makes the processed event set a pure function
// of the model (schedule-independent).
#pragma once

#include "baselines/binary_heap.hpp"
#include "sim/event.hpp"
#include "sim/model.hpp"
#include "util/timer.hpp"
#include "workloads/grain.hpp"

namespace ph::sim {

inline SimResult run_serial_sim(const Model& model, double end_time) {
  SimResult res;
  Timer wall;
  BinaryHeap<Event, EventOrder> q;
  for (const Event& e : model.initial_events()) {
    if (e.ts < end_time) q.push(e);
  }
  while (!q.empty()) {
    const Event e = q.pop();
    ++res.processed;
    res.fingerprint += event_fingerprint(e);
    if (e.ts > res.max_clock) res.max_clock = e.ts;
    if (model.config().grain != 0) {
      res.sink ^= spin_work(model.config().grain, e.tag);
    }
    const Event child = model.handle(e);
    if (child.ts < end_time) q.push(child);
  }
  res.seconds = wall.seconds();
  return res;
}

}  // namespace ph::sim
