// Sharded DES driver — the first consumer of the key-range-sharded heap
// (core/sharded_heap.hpp), per ROADMAP's "shard the heap by key range across
// engine instances (the DES simulator is the first consumer)".
//
// Nothing about the conservative window scheme changes: ShardedHeap exposes
// the same cycle(span, k, out)-with-sorted-output contract the parallel heap
// does, so it plugs straight into run_sync_sim (sync_sim.hpp) and the result
// is exact by construction — same processed count and order-insensitive
// fingerprint as the serial reference, which test_sharded.cpp asserts via
// SimResult::same_outcome. Sharding by *timestamp* range is a natural fit
// for DES: the hold-model property (children are scheduled at or after their
// parent plus lookahead) keeps the near-future shard hot on the delete side
// while inserts land in later shards, and periodic rebalancing tracks the
// advancing GVT horizon as earlier time ranges drain.
#pragma once

#include <cstddef>

#include "core/sharded_heap.hpp"
#include "sim/event.hpp"
#include "sim/model.hpp"
#include "sim/sync_sim.hpp"

namespace ph::sim {

/// The global queue type DES runs shard: timestamp-ordered events.
using ShardedEventHeap = ShardedHeap<Event, EventOrder>;

struct ShardedSimConfig {
  std::size_t shards = 2;
  std::size_t node_capacity = 64;       ///< r of each shard engine
  std::size_t batch = 64;               ///< deletion budget per cycle (<= r)
  std::size_t rebalance_interval = 32;  ///< cycles between map re-estimations
  bool quarantine = false;              ///< retire a shard that trips a fail-point
  std::uint64_t cycle_deadline_ns = 0;  ///< retire a shard slower than this (0=off)
};

struct ShardedSimResult {
  SimResult sim;
  ShardedStats shard;  ///< routing/putback/merge-width counters of the run
};

/// Runs the conservative window simulation over a key-range-sharded global
/// event queue. Exact for any shard count; cfg.shards == 1 degenerates to
/// run_sync_sim over a single pipelined heap.
inline ShardedSimResult run_sharded_sim(const Model& model, double end_time,
                                        const ShardedSimConfig& cfg) {
  ShardedEventHeap q(cfg.node_capacity,
                     ShardedEventHeap::Config{cfg.shards, cfg.rebalance_interval,
                                              /*sample_capacity=*/1024,
                                              cfg.quarantine, cfg.cycle_deadline_ns});
  ShardedSimResult res;
  res.sim = run_sync_sim(q, model, end_time, cfg.batch);
  res.shard = q.sharded_stats();
  return res;
}

}  // namespace ph::sim
