// Sharded DES driver — the first consumer of the key-range-sharded heap
// (core/sharded_heap.hpp), per ROADMAP's "shard the heap by key range across
// engine instances (the DES simulator is the first consumer)".
//
// Nothing about the conservative window scheme changes: ShardedHeap exposes
// the same cycle(span, k, out)-with-sorted-output contract the parallel heap
// does, so it plugs straight into run_sync_sim (sync_sim.hpp) and the result
// is exact by construction — same processed count and order-insensitive
// fingerprint as the serial reference, which test_sharded.cpp asserts via
// SimResult::same_outcome. Sharding by *timestamp* range is a natural fit
// for DES: the hold-model property (children are scheduled at or after their
// parent plus lookahead) keeps the near-future shard hot on the delete side
// while inserts land in later shards, and periodic rebalancing tracks the
// advancing GVT horizon as earlier time ranges drain.
#pragma once

#include <cstddef>

#include "core/sharded_heap.hpp"
#include "sim/event.hpp"
#include "sim/model.hpp"
#include "sim/sync_sim.hpp"

namespace ph::sim {

/// The global queue type DES runs shard: timestamp-ordered events.
using ShardedEventHeap = ShardedHeap<Event, EventOrder>;

struct ShardedSimConfig {
  std::size_t shards = 2;
  std::size_t node_capacity = 64;       ///< r of each shard engine
  std::size_t batch = 64;               ///< deletion budget per cycle (<= r)
  std::size_t rebalance_interval = 32;  ///< cycles between map re-estimations
  bool quarantine = false;              ///< retire a shard that trips a fail-point
  std::uint64_t cycle_deadline_ns = 0;  ///< retire a shard slower than this (0=off)
  unsigned workers = 0;                 ///< shard-pull worker threads (0 = serial)
  bool overlap_putback = false;         ///< overlap putback with the think phase
  bool min_hint = true;                 ///< cross-shard min hint (exact skip)
  /// Timestamp-band routing (the delete-hotspot fix): events route to shard
  /// floor(ts / band) mod K instead of by key-range quantiles, so one cycle's
  /// delete wave — which is at most `lookahead` wide by the hold-model
  /// property — spans bands instead of hammering the earliest-range shard.
  /// > 0: explicit band width in sim-time units; 0: auto (the model's
  /// lookahead, i.e. one conservative window per band); < 0: disabled, keep
  /// the quantile partitioner.
  double band_width = -1.0;
};

struct ShardedSimResult {
  SimResult sim;
  ShardedStats shard;  ///< routing/putback/merge-width counters of the run
};

/// Runs the conservative window simulation over a key-range-sharded global
/// event queue. Exact for any shard count; cfg.shards == 1 degenerates to
/// run_sync_sim over a single pipelined heap.
inline ShardedSimResult run_sharded_sim(const Model& model, double end_time,
                                        const ShardedSimConfig& cfg) {
  ShardedEventHeap::Config qcfg;
  qcfg.shards = cfg.shards;
  qcfg.rebalance_interval = cfg.rebalance_interval;
  qcfg.sample_capacity = 1024;
  qcfg.quarantine = cfg.quarantine;
  qcfg.cycle_deadline_ns = cfg.cycle_deadline_ns;
  qcfg.workers = cfg.workers;
  qcfg.overlap_putback = cfg.overlap_putback;
  qcfg.min_hint = cfg.min_hint;
  const double band =
      cfg.band_width > 0 ? cfg.band_width
                         : (cfg.band_width == 0 ? model.lookahead() : -1.0);
  if (band > 0) {
    qcfg.router = [band](const Event& e) {
      return static_cast<std::size_t>(e.ts >= 0 ? e.ts / band : 0.0);
    };
  }
  ShardedEventHeap q(cfg.node_capacity, qcfg);
  ShardedSimResult res;
  res.sim = run_sync_sim(q, model, end_time, cfg.batch);
  res.shard = q.sharded_stats();
  return res;
}

}  // namespace ph::sim
