// "simlocal" — the lineage's per-processor event queue configuration: each
// worker pops from its own lock-guarded local heap and pushes produced
// events either to the destination LP's home partition (affinity mode) or to
// an arbitrary partition (distributed mode, the lineage's localdist).
//
// There is no global window, so events are handled out of global timestamp
// order; the model's order-independent handlers keep the *results* exact
// (same fingerprint as the serial reference), and the causality damage is
// measured instead: a `violation` is recorded whenever an LP handles an
// event older than its local clock — precisely the situation that forces a
// rollback in an optimistic simulator. This is the metric behind the
// lineage's rollback-count comparisons, reproduced conservatively.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "baselines/local_heaps.hpp"
#include "sim/event.hpp"
#include "sim/model.hpp"
#include "util/cacheline.hpp"
#include "util/timer.hpp"
#include "workloads/grain.hpp"

namespace ph::sim {

enum class LocalSimMode {
  kAffinity,     ///< events routed to their LP's home partition
  kDistributed,  ///< events routed round-robin (load-balanced, more disorder)
};

struct LocalSimConfig {
  unsigned threads = 1;
  LocalSimMode mode = LocalSimMode::kAffinity;
};

inline SimResult run_local_sim(const Model& model, double end_time,
                               const LocalSimConfig& cfg) {
  const unsigned P = cfg.threads;
  LocalHeaps<Event, EventOrder> queues(P);
  // LP local clocks, written with a CAS max so that distributed mode (where
  // one LP's events can be handled by any worker) stays race-free.
  std::vector<std::atomic<double>> clocks(model.num_lps());
  for (auto& c : clocks) c.store(0.0, std::memory_order_relaxed);

  for (const Event& e : model.initial_events()) {
    if (e.ts < end_time) queues.push(e, e.lp % P);
  }

  struct LaneStats {
    std::uint64_t processed = 0;
    std::uint64_t fingerprint = 0;
    std::uint64_t violations = 0;
    std::uint64_t sink = 0;
    std::uint64_t rr = 0;  // round-robin cursor for distributed routing
    double max_clock = 0;
  };
  std::vector<Padded<LaneStats>> lanes(P);

  Timer wall;
  // Termination: workers run until every queue is empty. Because a worker
  // can race another's push, emptiness is confirmed with a global
  // in-progress counter: only when no worker holds an event and all queues
  // are empty can everyone stop.
  std::atomic<std::uint32_t> active{P};
  auto worker = [&](unsigned tid) {
    LaneStats& ls = *lanes[tid];
    Event e;
    bool counted_active = true;
    for (;;) {
      if (queues.try_pop(tid, e)) {
        if (!counted_active) {
          active.fetch_add(1, std::memory_order_acq_rel);
          counted_active = true;
        }
        double seen = clocks[e.lp].load(std::memory_order_relaxed);
        if (e.ts < seen) {
          ++ls.violations;  // an optimistic simulator would roll back here
        } else {
          while (seen < e.ts && !clocks[e.lp].compare_exchange_weak(
                                    seen, e.ts, std::memory_order_relaxed)) {
          }
        }
        ++ls.processed;
        ls.fingerprint += event_fingerprint(e);
        if (e.ts > ls.max_clock) ls.max_clock = e.ts;
        if (model.config().grain != 0) {
          ls.sink ^= spin_work(model.config().grain, e.tag);
        }
        const Event child = model.handle(e);
        if (child.ts < end_time) {
          const std::size_t dst = cfg.mode == LocalSimMode::kAffinity
                                      ? child.lp % P
                                      : (tid + ls.rr++) % P;
          queues.push(child, dst);
        }
      } else {
        if (counted_active) {
          active.fetch_sub(1, std::memory_order_acq_rel);
          counted_active = false;
        }
        if (active.load(std::memory_order_acquire) == 0) return;
        std::this_thread::yield();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(P);
  for (unsigned t = 0; t < P; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();

  SimResult res;
  res.seconds = wall.seconds();
  for (const auto& ls : lanes) {
    res.processed += ls->processed;
    res.fingerprint += ls->fingerprint;
    res.violations += ls->violations;
    res.sink ^= ls->sink;
    if (ls->max_clock > res.max_clock) res.max_clock = ls->max_clock;
  }
  return res;
}

}  // namespace ph::sim
