// Distributed DES driver — the first consumer of the shard supervisor
// (dist/supervisor.hpp), per ROADMAP's "distribute a simulation across OS
// processes, kill one mid-run, and recover it from its own WAL while
// survivors keep cycling".
//
// The conservative window scheme is untouched: ShardSupervisor exposes the
// same cycle(span, k, out)-with-sorted-output contract, so it plugs straight
// into run_sync_sim and the result is exact by construction — same processed
// count and order-insensitive fingerprint as the serial reference — even
// when a shard process is SIGKILLed mid-run and recovered from its own WAL
// (test_dist.cpp asserts via SimResult::same_outcome). Routing uses the same
// timestamp-band scheme as the sharded driver: a cycle's delete wave is at
// most `lookahead` wide, so banding by one conservative window spreads it.
#pragma once

#include <cstddef>
#include <string>

#include "dist/supervisor.hpp"
#include "sim/event.hpp"
#include "sim/model.hpp"
#include "sim/sync_sim.hpp"

namespace ph::sim {

using DistEventSupervisor = dist::ShardSupervisor<Event, EventOrder>;

struct DistSimConfig {
  std::size_t shards = 2;
  std::size_t node_capacity = 64;
  std::size_t batch = 64;
  std::string dir;  ///< durable base directory (required)
  persist::FsyncPolicy fsync = persist::FsyncPolicy::kNever;
  std::size_t checkpoint_interval = 32;
  bool use_processes = true;
  /// Fault drill: SIGKILL shard `kill_shard` just before this cycle number
  /// (1-based; 0 = no kill). Detection and recovery run mid-simulation.
  std::uint64_t kill_at_cycle = 0;
  std::size_t kill_shard = 0;
  /// Timestamp-band width (sharded_sim.hpp semantics): > 0 explicit,
  /// 0 = the model's lookahead, < 0 = stateless value-hash routing.
  double band_width = 0.0;
};

struct DistSimResult {
  SimResult sim;
  DistEventSupervisor::Stats sup;  ///< spawns/takeovers/respawns of the run
};

namespace dist_detail {
/// Thin cycle adapter: forwards to the supervisor and injects the
/// configured kill at its cycle mark — from the driver's point of view the
/// queue just keeps answering.
struct KillingQueue {
  DistEventSupervisor& sup;
  std::uint64_t kill_at;
  std::size_t victim;
  std::uint64_t cycles = 0;

  std::size_t cycle(std::span<const Event> fresh, std::size_t k,
                    std::vector<Event>& out) {
    ++cycles;
    if (kill_at != 0 && cycles == kill_at) sup.kill_shard(victim);
    return sup.cycle(fresh, k, out);
  }
};
}  // namespace dist_detail

/// Runs the conservative window simulation over supervised shard processes.
/// Exact for any shard count, with or without the configured mid-run kill.
inline DistSimResult run_dist_sim(const Model& model, double end_time,
                                  const DistSimConfig& cfg) {
  DistEventSupervisor::Config qcfg;
  qcfg.shards = cfg.shards;
  qcfg.node_capacity = cfg.node_capacity;
  qcfg.dir = cfg.dir;
  qcfg.fsync = cfg.fsync;
  qcfg.checkpoint_interval = cfg.checkpoint_interval;
  qcfg.use_processes = cfg.use_processes;
  const double band = cfg.band_width > 0
                          ? cfg.band_width
                          : (cfg.band_width == 0 ? model.lookahead() : -1.0);
  if (band > 0) {
    qcfg.router = [band](const Event& e) {
      return static_cast<std::size_t>(e.ts >= 0 ? e.ts / band : 0.0);
    };
  }
  DistEventSupervisor sup(std::move(qcfg));
  dist_detail::KillingQueue q{sup, cfg.kill_at_cycle, cfg.kill_shard};
  DistSimResult res;
  res.sim = run_sync_sim(q, model, end_time, cfg.batch);
  res.sup = sup.stats();
  return res;
}

}  // namespace ph::sim
