// Event type for the discrete-event-simulation substrate.
//
// Determinism design: handlers derive everything (service scaling, output
// channel, the child's identity) from the event's own `tag` via hash mixing,
// never from shared mutable RNG state. Handling is therefore
// order-independent: any schedule that processes the same multiset of events
// produces the same statistics, which is what lets the parallel simulators
// be differential-tested bit-exactly against the serial reference.
#pragma once

#include <cstdint>

namespace ph::sim {

struct Event {
  double ts = 0;         ///< timestamp
  std::uint32_t lp = 0;  ///< destination logical process
  std::uint32_t hop = 0; ///< chain depth since the seeding event
  std::uint64_t tag = 0; ///< lineage id; drives all per-event randomness
};

/// Total order: timestamp, then tag (unique), making every queue's
/// tie-handling deterministic.
struct EventOrder {
  bool operator()(const Event& a, const Event& b) const {
    if (a.ts != b.ts) return a.ts < b.ts;
    return a.tag < b.tag;
  }
};

/// 64-bit mix (splitmix64 finalizer) used for all per-event derivations.
constexpr std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Order-insensitive fingerprint contribution of a processed event; the sum
/// of these over any processing schedule of the same event multiset is
/// identical, so serial and parallel runs can be compared exactly.
inline std::uint64_t event_fingerprint(const Event& e) {
  std::uint64_t h = mix64(e.tag ^ (static_cast<std::uint64_t>(e.lp) << 32));
  h ^= static_cast<std::uint64_t>(e.ts * 1048576.0);
  return mix64(h);
}

}  // namespace ph::sim
