#include "sim/network.hpp"

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace ph::sim {

Topology make_torus(std::size_t rows, std::size_t cols) {
  PH_ASSERT(rows >= 1 && cols >= 1);
  Topology t;
  t.num_lps = rows * cols;
  t.out_degree = 2;
  t.out_edges.resize(t.num_lps * 2);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::size_t lp = r * cols + c;
      t.out_edges[lp * 2 + 0] = static_cast<std::uint32_t>(r * cols + (c + 1) % cols);
      t.out_edges[lp * 2 + 1] = static_cast<std::uint32_t>(((r + 1) % rows) * cols + c);
    }
  }
  return t;
}

Topology make_random_network(std::size_t n, std::size_t degree, std::uint64_t seed) {
  PH_ASSERT(n >= 1 && degree >= 1);
  Topology t;
  t.num_lps = n;
  t.out_degree = degree;
  t.out_edges.resize(n * degree);
  Xoshiro256 rng(seed);
  for (std::size_t lp = 0; lp < n; ++lp) {
    for (std::size_t d = 0; d < degree; ++d) {
      std::uint32_t dst;
      do {
        dst = static_cast<std::uint32_t>(rng.next_below(n));
      } while (n > 1 && dst == lp);
      t.out_edges[lp * degree + d] = dst;
    }
  }
  return t;
}

Topology make_ring(std::size_t n) {
  PH_ASSERT(n >= 1);
  Topology t;
  t.num_lps = n;
  t.out_degree = 1;
  t.out_edges.resize(n);
  for (std::size_t lp = 0; lp < n; ++lp) {
    t.out_edges[lp] = static_cast<std::uint32_t>((lp + 1) % n);
  }
  return t;
}

Topology make_hypercube(std::size_t dim) {
  PH_ASSERT(dim >= 1 && dim <= 24);
  Topology t;
  t.num_lps = std::size_t{1} << dim;
  t.out_degree = dim;
  t.out_edges.resize(t.num_lps * dim);
  for (std::size_t lp = 0; lp < t.num_lps; ++lp) {
    for (std::size_t k = 0; k < dim; ++k) {
      t.out_edges[lp * dim + k] = static_cast<std::uint32_t>(lp ^ (std::size_t{1} << k));
    }
  }
  return t;
}

Topology make_kary_tree(std::size_t n, std::size_t k) {
  PH_ASSERT(n >= 1 && k >= 1);
  Topology t;
  t.num_lps = n;
  t.out_degree = k;
  t.out_edges.resize(n * k);
  for (std::size_t lp = 0; lp < n; ++lp) {
    for (std::size_t c = 0; c < k; ++c) {
      const std::size_t child = k * lp + 1 + c;
      t.out_edges[lp * k + c] = static_cast<std::uint32_t>(child < n ? child : child % n);
    }
  }
  return t;
}

}  // namespace ph::sim
