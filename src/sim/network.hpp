// Logical-process network topologies for the discrete-event-simulation
// substrate. The lineage evaluates on (a) 2-D torus networks, where each LP
// sends to its right and top neighbours, and (b) static random networks,
// where each LP's output channels are chosen uniformly at random. Both are
// generated here as flat adjacency tables.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ph::sim {

/// A fixed-out-degree directed network of logical processes.
struct Topology {
  std::size_t num_lps = 0;
  std::size_t out_degree = 0;
  /// Flattened adjacency: destinations of lp i are
  /// out_edges[i*out_degree .. (i+1)*out_degree).
  std::vector<std::uint32_t> out_edges;

  std::span<const std::uint32_t> out(std::size_t lp) const {
    return {out_edges.data() + lp * out_degree, out_degree};
  }
};

/// rows×cols torus; LP (r, c) sends to its right neighbour (r, c+1) and its
/// top neighbour (r+1, c), wrapping at the edges (out-degree 2, in-degree 2).
Topology make_torus(std::size_t rows, std::size_t cols);

/// n LPs, each with `degree` output channels drawn uniformly at random
/// (self-loops excluded when n > 1). Deterministic in `seed`.
Topology make_random_network(std::size_t n, std::size_t degree, std::uint64_t seed);

/// Unidirectional ring of n LPs (out-degree 1): the minimal-lookahead chain
/// that makes conservative windows narrow — the hardest regular case.
Topology make_ring(std::size_t n);

/// Boolean hypercube on n = 2^dim LPs; LP i sends to i ⊕ 2^k for every
/// dimension k (out-degree dim) — the interconnect of the machines the
/// original papers targeted.
Topology make_hypercube(std::size_t dim);

/// Complete k-ary tree over n LPs; each LP sends to its k children (indices
/// k·i+1 … k·i+k), wrapping to the root family when a child index falls off
/// the end, so every LP keeps out-degree k.
Topology make_kary_tree(std::size_t n, std::size_t k);

}  // namespace ph::sim
