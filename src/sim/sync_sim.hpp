// Synchronous conservative window simulator over a *global* event queue —
// the "global event queue" execution scheme of the lineage, with the
// optimistic rollback machinery replaced by a conservative lookahead window
// (events are only handled when provably safe), so that results are exact by
// construction.
//
// Per cycle: delete the k earliest events; GVT is the batch minimum — with
// the parallel heap this is simply the first element of the root node, which
// is exactly the GVT argument the paper makes. Handle every deleted event
// with ts < GVT + lookahead; re-insert ("defer") the rest. Since each
// handled event spawns children no earlier than its own timestamp plus the
// lookahead, deferred events can never be invalidated: the simulation is
// exact, and `deferred` counts the window losses (the conservative analogue
// of the rollback counts the lineage plots).
//
// Works with any queue exposing cycle(span, k, out) with sorted output:
// the parallel heaps, BatchAdapter-lifted serial heaps, and LockedPQ.
#pragma once

#include <vector>

#include "sim/event.hpp"
#include "sim/model.hpp"
#include "util/timer.hpp"
#include "workloads/grain.hpp"

namespace ph::sim {

template <typename GQ>
SimResult run_sync_sim(GQ& q, const Model& model, double end_time,
                       std::size_t batch) {
  SimResult res;
  Timer wall;
  {
    std::vector<Event> init;
    for (const Event& e : model.initial_events()) {
      if (e.ts < end_time) init.push_back(e);
    }
    std::vector<Event> sink;
    q.cycle(init, 0, sink);
  }
  const double lookahead = model.lookahead();
  std::vector<Event> deleted, fresh;
  for (;;) {
    deleted.clear();
    q.cycle(fresh, batch, deleted);
    fresh.clear();
    if (deleted.empty()) break;
    ++res.cycles;
    const double gvt = deleted.front().ts;  // sorted output: front is min
    const double window = gvt + lookahead;
    for (const Event& e : deleted) {
      if (e.ts < window) {
        ++res.processed;
        res.fingerprint += event_fingerprint(e);
        if (e.ts > res.max_clock) res.max_clock = e.ts;
        if (model.config().grain != 0) {
          res.sink ^= spin_work(model.config().grain, e.tag);
        }
        const Event child = model.handle(e);
        if (child.ts < end_time) fresh.push_back(child);
      } else {
        ++res.deferred;
        fresh.push_back(e);
      }
    }
  }
  res.seconds = wall.seconds();
  return res;
}

}  // namespace ph::sim
