// The queueing-network model simulated throughout the lineage's evaluation:
// a network of logical processes (LPs) with fixed out-degree; each processed
// message occupies its LP for that LP's service time and then departs along
// one output channel as a new message. Per the experiments' setup, each
// LP's service time is drawn once from [1, 5], with a configurable fraction
// of "hot" LPs given a near-zero service time to force fine-grained,
// ill-behaved behaviour. The minimum service time is the model's lookahead,
// which the synchronous window simulators rely on — hence it is floored at a
// small positive epsilon rather than zero.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event.hpp"
#include "sim/network.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace ph::sim {

struct ModelConfig {
  double min_service = 0.05;  ///< service of hot LPs; also the lookahead
  double max_service = 5.0;
  double hot_fraction = 0.10;  ///< fraction of LPs with min_service
  std::uint64_t seed = 1;
  std::uint64_t grain = 0;  ///< spin iterations per handled event
};

class Model {
 public:
  Model(const Topology& topo, const ModelConfig& cfg) : topo_(topo), cfg_(cfg) {
    PH_ASSERT(cfg.min_service > 0);
    PH_ASSERT(cfg.max_service >= cfg.min_service);
    Xoshiro256 rng(cfg.seed);
    service_.resize(topo.num_lps);
    for (double& s : service_) {
      if (rng.next_double() < cfg.hot_fraction) {
        s = cfg.min_service;
      } else {
        s = 1.0 + rng.next_double() * (cfg.max_service - 1.0);
      }
    }
  }

  const Topology& topology() const { return topo_; }
  const ModelConfig& config() const { return cfg_; }
  std::size_t num_lps() const { return topo_.num_lps; }
  double service_of(std::uint32_t lp) const { return service_[lp]; }

  /// Conservative lookahead: no handled event can produce a child earlier
  /// than its own timestamp plus this.
  double lookahead() const { return cfg_.min_service; }

  /// Handles event `e`: the message departs after the LP's service time
  /// along a tag-chosen output channel. Pure function of `e` — see
  /// event.hpp's determinism design.
  Event handle(const Event& e) const {
    const std::uint64_t h = mix64(e.tag);
    const auto out = topo_.out(e.lp);
    const std::uint32_t dst = out[h % out.size()];
    return Event{e.ts + service_[e.lp], dst, e.hop + 1, mix64(h ^ dst)};
  }

  /// One seeding event per LP (the experiments start with one message per
  /// LP), timestamps staggered within one service time.
  std::vector<Event> initial_events() const {
    std::vector<Event> init(topo_.num_lps);
    for (std::uint32_t lp = 0; lp < topo_.num_lps; ++lp) {
      const std::uint64_t tag = mix64(cfg_.seed ^ (0xabcdull + lp));
      const double jitter =
          static_cast<double>(tag % 1024) / 1024.0 * service_[lp];
      init[lp] = Event{jitter, lp, 0, tag};
    }
    return init;
  }

 private:
  Topology topo_;
  ModelConfig cfg_;
  std::vector<double> service_;
};

/// Accumulated simulation outcome; comparable across schedulers.
struct SimResult {
  std::uint64_t processed = 0;      ///< events handled
  std::uint64_t fingerprint = 0;    ///< order-insensitive checksum (sum)
  double max_clock = 0;             ///< largest handled timestamp
  std::uint64_t cycles = 0;         ///< queue cycles (batch schedulers)
  std::uint64_t deferred = 0;       ///< unsafe deletions re-inserted
  std::uint64_t violations = 0;     ///< causality violations (relaxed queues)
  std::uint64_t sink = 0;           ///< grain-spin fold
  double seconds = 0;

  /// Semantic equality: same events processed, same outcome.
  bool same_outcome(const SimResult& o) const {
    return processed == o.processed && fingerprint == o.fingerprint;
  }
};

}  // namespace ph::sim
