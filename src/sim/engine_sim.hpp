// Parallel synchronous window simulator on the ParallelHeapEngine: the
// library's flagship configuration — a global parallel-heap event queue,
// think workers handling each cycle's earliest events in parallel, and heap
// maintenance overlapped with the think phase. Semantics are identical to
// sync_sim.hpp (conservative lookahead window, exact results); GVT per cycle
// is the deleted batch's front, i.e. the first element of the parallel
// heap's root node, exactly as the paper observes.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/engine.hpp"
#include "sim/event.hpp"
#include "sim/model.hpp"
#include "util/cacheline.hpp"
#include "util/timer.hpp"
#include "workloads/grain.hpp"

namespace ph::sim {

struct EngineSimConfig {
  std::size_t node_capacity = 512;  ///< r
  unsigned think_threads = 1;
  unsigned maintenance_threads = 0;
  bool pin_threads = false;
  std::size_t batch = 0;            ///< k per cycle; 0 → node_capacity
  std::size_t lane_fault_limit = 0; ///< retire a lane after this many straight faults
};

struct EngineSimResult {
  SimResult sim;
  EngineReport engine;
};

inline EngineSimResult run_engine_sim(const Model& model, double end_time,
                                      const EngineSimConfig& cfg) {
  EngineConfig ecfg;
  ecfg.node_capacity = cfg.node_capacity;
  ecfg.think_threads = cfg.think_threads;
  ecfg.maintenance_threads = cfg.maintenance_threads;
  ecfg.pin_threads = cfg.pin_threads;
  ecfg.batch = cfg.batch;
  ecfg.lane_fault_limit = cfg.lane_fault_limit;
  ParallelHeapEngine<Event, EventOrder> engine(ecfg);

  {
    std::vector<Event> init;
    for (const Event& e : model.initial_events()) {
      if (e.ts < end_time) init.push_back(e);
    }
    engine.seed(init);
  }

  const double lookahead = model.lookahead();
  const unsigned lanes = cfg.think_threads == 0 ? 1 : cfg.think_threads;
  struct LaneStats {
    std::uint64_t processed = 0;
    std::uint64_t fingerprint = 0;
    std::uint64_t deferred = 0;
    std::uint64_t sink = 0;
    double max_clock = 0;
  };
  std::vector<Padded<LaneStats>> lane_stats(lanes);

  const EngineReport rep = engine.run(
      [&](unsigned tid, std::span<const Event> mine, std::span<const Event> batch,
          std::vector<Event>& out) {
        LaneStats& ls = *lane_stats[tid];
        const double window = batch.front().ts + lookahead;
        for (const Event& e : mine) {
          if (e.ts < window) {
            ++ls.processed;
            ls.fingerprint += event_fingerprint(e);
            if (e.ts > ls.max_clock) ls.max_clock = e.ts;
            if (model.config().grain != 0) {
              ls.sink ^= spin_work(model.config().grain, e.tag);
            }
            const Event child = model.handle(e);
            if (child.ts < end_time) out.push_back(child);
          } else {
            ++ls.deferred;
            out.push_back(e);  // defer: back into the global queue
          }
        }
      });

  EngineSimResult res;
  res.engine = rep;
  res.sim.cycles = rep.cycles;
  res.sim.seconds = rep.seconds;
  for (const auto& ls : lane_stats) {
    res.sim.processed += ls->processed;
    res.sim.fingerprint += ls->fingerprint;
    res.sim.deferred += ls->deferred;
    res.sim.sink ^= ls->sink;
    if (ls->max_clock > res.sim.max_clock) res.sim.max_clock = ls->max_clock;
  }
  return res;
}

}  // namespace ph::sim
