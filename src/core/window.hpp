// LookaheadWindow — the reusable safe-batch pattern on top of any global
// queue with cycle(new_items, k, out) and sorted batch output.
//
// Three of this library's applications (conservative DES, batch Dijkstra,
// streaming multiway merge) independently use the same loop: delete the k
// earliest items, *commit* only those provably final — i.e. within a
// workload-specific lookahead of the batch minimum — and defer the rest back
// into the queue together with newly produced items. This class factors
// that loop. The safety argument is the applications': if every item
// produced while processing a committed item is at least `lookahead` beyond
// that item's key, then every deleted item below batch_min + lookahead is
// final.
//
// Process(fn) is called once per committed item and may append new items to
// the queue via the supplied emit callback.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "util/assert.hpp"

namespace ph {

struct WindowStats {
  std::uint64_t cycles = 0;
  std::uint64_t committed = 0;
  std::uint64_t deferred = 0;
};

/// KeyFn: T -> double (or any type with operator< and operator+ against the
/// lookahead). Queue: cycle(span, k, vector&) with ascending output.
template <typename T, typename Queue, typename KeyFn>
class LookaheadWindow {
 public:
  LookaheadWindow(Queue& queue, double lookahead, KeyFn key = KeyFn())
      : queue_(queue), lookahead_(lookahead), key_(std::move(key)) {
    PH_ASSERT(lookahead > 0);
  }

  /// Runs batches of `k` until the queue is exhausted or `process` calls
  /// stop(). process(item, emit): handle one committed item, optionally
  /// emitting follow-on items (inserted next cycle).
  template <typename ProcessFn>
  WindowStats run(std::size_t k, ProcessFn&& process) {
    WindowStats stats;
    stop_ = false;
    std::vector<T> batch;
    auto emit = [this](const T& item) { fresh_.push_back(item); };
    for (;;) {
      batch.clear();
      queue_.cycle(fresh_, k, batch);
      fresh_.clear();
      if (batch.empty()) break;
      ++stats.cycles;
      const double window = key_(batch.front()) + lookahead_;
      for (const T& item : batch) {
        if (key_(item) < window) {
          ++stats.committed;
          process(item, emit);
        } else {
          ++stats.deferred;
          fresh_.push_back(item);
        }
      }
      if (stop_) break;
    }
    // Anything still pending (deferred after a stop) goes back to the queue.
    if (!fresh_.empty()) {
      std::vector<T> sink;
      queue_.cycle(fresh_, 0, sink);
      fresh_.clear();
    }
    return stats;
  }

  /// Callable from inside process(): finish the current batch, then return.
  void stop() noexcept { stop_ = true; }

 private:
  Queue& queue_;
  double lookahead_;
  KeyFn key_;
  std::vector<T> fresh_;
  bool stop_ = false;
};

}  // namespace ph
