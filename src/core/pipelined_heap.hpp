// PipelinedParallelHeap — the paper's level-pipelined maintenance schedule.
//
// Where ParallelHeap (parallel_heap.hpp) runs every update process to
// quiescence inside each operation, this variant implements the ICPP'90
// pipeline: update processes (insert-updates carrying items toward a tail
// node, delete-updates repairing the order condition behind a deletion) are
// parked per level and advanced in the odd/even half-step schedule of the
// paper's PerformInsertDelete cycle:
//
//   step():  1. service all processes at odd levels   (they move down one)
//            2. root work: merge the new items with the root, extract the k
//               smallest, refill with substitutes if the heap shrank, spawn
//               this generation's processes at the root level
//            3. service all processes at even levels  (they move down one)
//
// (The paper's "think" phase happens between the caller's step() calls.)
// A generation therefore descends two levels per cycle, and successive
// generations stay exactly two levels apart: processes of different
// generations never touch the same node in the same half-step. Better: a
// process at level ℓ touches only nodes at ℓ and ℓ+1, and same-parity
// levels are two apart, so *every process of a half-step that operates on a
// distinct node is independent of every other*. advance_with() exposes
// exactly that parallelism: it groups the half-step's processes by node and
// hands the groups to a caller-supplied runner (the multithreaded engine
// runs them on its maintenance team; the serial API runs them in a loop).
//
// Each cycle is O(r) critical-path work regardless of heap size; total
// maintenance work per cycle is O(r log n) spread across the pipeline.
//
// Substitute fetch under pipelining. A shrinking heap must refill the root
// from its logical tail, but the tail slots may belong to deliveries still
// in flight. We then *steal* the substitutes directly from the in-flight
// carried set that owns those slots (back first — its largest items), which
// keeps the committed-slot arithmetic exact without ever stalling the
// pipeline. Steals are counted in pipeline_stats().
//
// Correctness note. That a deletion (the k smallest of root ∪ new items) is
// globally correct even with processes in flight is the central theorem of
// the paper. This implementation is differential-tested against the
// synchronous reference and a sorted-multiset oracle over randomized and
// adversarial schedules (tests/test_pipelined_heap.cpp).
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/node_fix.hpp"
#include "core/parallel_heap.hpp"  // HeapStats
#include "core/sorted_ops.hpp"
#include "robustness/failpoint.hpp"
#include "telemetry/telemetry.hpp"
#include "util/assert.hpp"

namespace ph {

/// Pipeline-specific counters, additive to HeapStats.
struct PipelineStats {
  std::uint64_t procs_spawned = 0;
  std::uint64_t procs_serviced = 0;
  std::uint64_t steals = 0;        ///< substitute items stolen from carried sets
  std::uint64_t max_inflight = 0;  ///< peak number of pending processes
  std::uint64_t half_steps = 0;    ///< level-service phases executed
  std::uint64_t task_groups = 0;   ///< independent node groups, summed over half-steps
  std::uint64_t max_groups = 0;    ///< peak node groups in one half-step (parallelism width)
};

template <typename T, typename Compare = std::less<T>>
class PipelinedParallelHeap {
 private:
  enum class Kind : std::uint8_t { kDelete, kInsert };

  struct ProcT {
    Kind kind;
    std::size_t node;        ///< node to service next
    std::size_t target;      ///< insert only: destination (tail) node
    std::uint64_t id;        ///< spawn order; later procs own later tail slots
    std::vector<T> carried;  ///< insert only: items in flight (sorted)
  };

 public:
  using value_type = T;

  /// Per-worker service context: scratch buffers, locally spawned processes
  /// and stat deltas, merged back serially after a parallel half-step.
  class ServiceCtx {
   public:
    ServiceCtx() = default;

   private:
    friend class PipelinedParallelHeap;
    std::vector<T> tmp_, kept_, rest_;
    FixScratch<T> fix_;
    std::vector<ProcT> spawned_;
    HeapStats stats_{};
  };

  explicit PipelinedParallelHeap(std::size_t node_capacity, Compare cmp = Compare())
      : r_(node_capacity), cmp_(std::move(cmp)) {
    PH_ASSERT(r_ >= 1);
  }

  /// Committed size: stored items plus items in flight in carried sets.
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t node_capacity() const noexcept { return r_; }
  std::size_t num_nodes() const noexcept { return (size_ + r_ - 1) / r_; }

  /// Pending update processes (0 when quiescent).
  std::size_t inflight() const noexcept { return inflight_; }

  /// The root node's stored items, ascending. Stable across the odd
  /// half-step: advance(1) services only odd levels and a level-1 process
  /// writes nodes at levels 1 and 2 — never node 0 — so a view taken at
  /// cycle entry still describes the root the next root_work() will merge
  /// against. By the paper's delete-correctness theorem the k ≤ r smallest
  /// of (heap ∪ new) lie within (root ∪ new), which makes this span a sound
  /// per-shard candidate bound for the sharded front end's cross-shard min
  /// hint (sharded_heap.hpp).
  std::span<const T> root_items() const noexcept {
    return cnt_.empty() ? std::span<const T>{}
                        : std::span<const T>{arena_.data(), cnt_[0]};
  }

  /// Replaces the content with `items` in one O(n log n) bulk load (sorted
  /// breadth-first layout; see ParallelHeap::build). Any in-flight
  /// processes are discarded together with the old content.
  void build(std::span<const T> items) {
    procs_.clear();
    inflight_ = 0;
    // A throw mid-half-step (injected fault, user comparator) can strand
    // already-spawned continuations in the transient scratch; if they
    // survived a rebuild, the next half-step's merge_ctx would park them
    // again and duplicate their carried items.
    batch_.clear();
    ctx_.spawned_.clear();
    ctx_.stats_ = HeapStats{};
    const std::size_t m = (items.size() + r_ - 1) / r_;
    cnt_.assign(m, 0);
    arena_.assign(m * r_, T{});
    std::copy(items.begin(), items.end(), arena_.begin());
    std::sort(arena_.begin(),
              arena_.begin() + static_cast<std::ptrdiff_t>(items.size()), cmp_);
    size_ = items.size();
    for (std::size_t i = 0; i < m; ++i) {
      cnt_[i] = std::min(r_, items.size() - i * r_);
    }
    stats_.items_inserted += items.size();
  }

  /// One pipelined insert-delete cycle: services odd levels, removes the k
  /// (≤ r) smallest of (heap ∪ new_items) appending them sorted to `out`,
  /// inserts the remaining new items, then services even levels. Returns
  /// the number deleted.
  std::size_t step(std::span<const T> new_items, std::size_t k, std::vector<T>& out) {
    PH_ASSERT_MSG(k <= r_, "step(): k must not exceed the node capacity r");
    ++stats_.cycles;
    stats_.items_inserted += new_items.size();
    advance(/*parity=*/1);
    const std::size_t take = root_work(new_items, k, out);
    advance(/*parity=*/0);
    return take;
  }

  /// The three phases of step(), exposed separately so a driver can overlap
  /// its think phase with maintenance (engine.hpp). The serial-equivalent
  /// schedule is: root_work of cycle g, advance(0), advance(1), root_work of
  /// cycle g+1, ... — identical to repeated step() calls up to the position
  /// of the cycle boundary.
  std::size_t root_work_public(std::span<const T> new_items, std::size_t k,
                               std::vector<T>& out) {
    PH_ASSERT(k <= r_);
    ++stats_.cycles;
    stats_.items_inserted += new_items.size();
    return root_work(new_items, k, out);
  }

  /// Services every process parked at levels of the given parity (0 = even,
  /// 1 = odd) serially on the calling thread.
  void advance(std::size_t parity) {
    advance_with(parity, [this](std::size_t ngroups,
                                const std::function<void(std::size_t, ServiceCtx&)>& fn) {
      for (std::size_t g = 0; g < ngroups; ++g) fn(g, ctx_);
    });
  }

  /// Parallel half-step: collects the parity's processes, groups them by
  /// node (groups are mutually independent — see file comment), and invokes
  ///   runner(ngroups, fn)
  /// which must call fn(g, ctx) exactly once for every g in [0, ngroups),
  /// possibly concurrently, with a distinct ServiceCtx per concurrent
  /// worker. Spawned processes and stat deltas are merged serially after
  /// the runner returns.
  template <typename Runner>
  void advance_with(std::size_t parity, Runner&& runner) {
    ++pstats_.half_steps;
    telemetry::count(telemetry::Counter::kHalfSteps);
    batch_.clear();
    for (std::size_t lvl = 0; lvl < procs_.size(); ++lvl) {
      if (lvl % 2 != parity || procs_[lvl].empty()) continue;
      for (auto& p : procs_[lvl]) batch_.push_back(std::move(p));
      procs_[lvl].clear();
    }
    if (batch_.empty()) return;
    telemetry::SpanScope span(parity == 1 ? telemetry::Phase::kOddHalfStep
                                          : telemetry::Phase::kEvenHalfStep);
    inflight_ -= batch_.size();
    run_batch(std::forward<Runner>(runner));
  }

  /// Harness-interface alias: every global queue in this library exposes
  /// cycle(new_items, k, out); for the pipelined heap a cycle is a step.
  std::size_t cycle(std::span<const T> new_items, std::size_t k, std::vector<T>& out) {
    return step(new_items, k, out);
  }

  /// Convenience wrappers matching the synchronous heap's API. Both carry
  /// the STRONG exception guarantee when guarded (set_batch_guard(true), or
  /// automatically whenever any fail-point is armed): a throw mid-batch —
  /// injected OOM, torn insert, throwing comparator — rolls the heap and the
  /// output vector back to their pre-call state before rethrowing. Unguarded
  /// calls pay nothing (one relaxed load and branch).
  void insert_batch(std::span<const T> items) {
    std::vector<T> sink;
    if (!batch_guarded()) {
      step(items, 0, sink);
      return;
    }
    const Snapshot snap = snapshot();
    try {
      step(items, 0, sink);
    } catch (...) {
      restore(snap);
      throw;
    }
  }
  std::size_t delete_min_batch(std::size_t k, std::vector<T>& out) {
    if (!batch_guarded()) {
      std::size_t removed = 0;
      while (removed < k && size_ > 0) {
        removed += step({}, std::min({k - removed, r_, size_}), out);
      }
      return removed;
    }
    const Snapshot snap = snapshot();
    const std::size_t entry = out.size();
    try {
      std::size_t removed = 0;
      while (removed < k && size_ > 0) {
        removed += step({}, std::min({k - removed, r_, size_}), out);
      }
      return removed;
    } catch (...) {
      restore(snap);
      out.resize(entry);
      throw;
    }
  }

  /// Forces the strong-guarantee path for the batch wrappers even with no
  /// fail-point armed (real allocators and user comparators can throw too).
  void set_batch_guard(bool on) noexcept { batch_guard_ = on; }
  bool batch_guarded() const noexcept {
    return batch_guard_ || robustness::any_armed();
  }

  /// Runs all pending processes to completion (oldest generation first:
  /// deepest level serviced first, so younger processes never observe a
  /// node with an older process still pending below it).
  void drain() {
    while (inflight_ > 0) {
      std::size_t deepest = 0;
      bool found = false;
      for (std::size_t lvl = procs_.size(); lvl-- > 0;) {
        if (!procs_[lvl].empty()) {
          deepest = lvl;
          found = true;
          break;
        }
      }
      if (!found) break;
      batch_.clear();
      for (auto& p : procs_[deepest]) batch_.push_back(std::move(p));
      procs_[deepest].clear();
      inflight_ -= batch_.size();
      run_batch([this](std::size_t ngroups,
                       const std::function<void(std::size_t, ServiceCtx&)>& fn) {
        for (std::size_t g = 0; g < ngroups; ++g) fn(g, ctx_);
      });
    }
  }

  /// Verifies structural invariants. Drains first (so not const).
  bool check_invariants(std::string* why = nullptr) {
    drain();
    const std::size_t m = num_nodes();
    for (std::size_t i = 0; i < m; ++i) {
      if (cnt_[i] != occupancy(i)) {
        return fail(why, "node " + std::to_string(i) + " stored count " +
                             std::to_string(cnt_[i]) + " != occupancy " +
                             std::to_string(occupancy(i)));
      }
      const auto s = node_span(i);
      if (!is_sorted_run(std::span<const T>(s.data(), s.size()), cmp_)) {
        return fail(why, "node " + std::to_string(i) + " is not sorted");
      }
      for (std::size_t c = 2 * i + 1; c <= 2 * i + 2; ++c) {
        if (c >= m || node_count(c) == 0) continue;
        const auto cs = node_span(c);
        if (cmp_(cs.front(), s.back())) {
          return fail(why, "heap condition violated between node " +
                               std::to_string(i) + " and child " + std::to_string(c));
        }
      }
    }
    return true;
  }

  /// All contents in ascending order (drains; testing/diagnostics).
  std::vector<T> sorted_contents() {
    drain();
    std::vector<T> all;
    all.reserve(size_);
    for (std::size_t i = 0; i < num_nodes(); ++i) {
      auto s = node_span(i);
      all.insert(all.end(), s.begin(), s.end());
    }
    std::sort(all.begin(), all.end(), cmp_);
    return all;
  }

  const HeapStats& stats() const noexcept { return stats_; }
  const PipelineStats& pipeline_stats() const noexcept { return pstats_; }
  void reset_stats() noexcept {
    stats_ = HeapStats{};
    pstats_ = PipelineStats{};
  }

  /// A checkpoint of the committed multiset: every stored item plus every
  /// item in flight in a carried set. Taking one is O(n) copying and does
  /// NOT drain — it is valid at any cycle boundary. The pipeline positions
  /// themselves are not captured; restore() rebuilds from the items, which
  /// preserves the deletion stream (the k smallest of a multiset don't
  /// depend on which node holds what).
  struct Snapshot {
    std::vector<T> items;
  };

  Snapshot snapshot() const {
    Snapshot s;
    s.items.reserve(size_);
    for (std::size_t i = 0; i < cnt_.size(); ++i) {
      s.items.insert(s.items.end(), arena_.begin() + static_cast<std::ptrdiff_t>(i * r_),
                     arena_.begin() + static_cast<std::ptrdiff_t>(i * r_ + cnt_[i]));
    }
    for (const auto& lvl : procs_) {
      for (const auto& p : lvl) {
        s.items.insert(s.items.end(), p.carried.begin(), p.carried.end());
      }
    }
    PH_ASSERT_MSG(s.items.size() == size_,
                  ("snapshot(): stored + carried items (" +
                   std::to_string(s.items.size()) + ") must equal committed size (" +
                   std::to_string(size_) + ")")
                      .c_str());
    return s;
  }

  /// Rebuilds the heap from a checkpoint, discarding all in-flight state.
  /// After a poisoned cycle (torn batch, mid-cycle throw) this returns the
  /// structure to exactly the checkpointed multiset.
  void restore(const Snapshot& s) { build(std::span<const T>(s.items)); }

  /// Deep self-check that does NOT drain (usable mid-pipeline, const):
  /// conservation (stored + carried == size_), ledger consistency
  /// (inflight_ == parked processes), per-node capacity and sortedness, and
  /// carried-set sortedness. Heap order between parent and child is only
  /// meaningful at quiescence — check_invariants() (draining) covers it.
  bool verify_invariants(std::string* why = nullptr) const {
    std::size_t stored = 0;
    for (std::size_t i = 0; i < cnt_.size(); ++i) {
      if (cnt_[i] > r_) {
        return fail(why, "node " + std::to_string(i) + " overfull: " +
                             std::to_string(cnt_[i]) + " > r=" + std::to_string(r_));
      }
      stored += cnt_[i];
      const std::span<const T> s{arena_.data() + i * r_, cnt_[i]};
      if (!is_sorted_run(s, cmp_)) {
        return fail(why, "node " + std::to_string(i) + " is not sorted");
      }
    }
    std::size_t carried = 0;
    std::size_t parked = 0;
    for (const auto& lvl : procs_) {
      for (const auto& p : lvl) {
        ++parked;
        carried += p.carried.size();
        if (!is_sorted_run(std::span<const T>(p.carried), cmp_)) {
          return fail(why, "carried set of process " + std::to_string(p.id) +
                               " is not sorted");
        }
        if (p.kind == Kind::kDelete && !p.carried.empty()) {
          return fail(why, "delete-update carries items");
        }
      }
    }
    if (stored + carried != size_) {
      return fail(why, "conservation violated: stored " + std::to_string(stored) +
                           " + carried " + std::to_string(carried) + " != size " +
                           std::to_string(size_));
    }
    if (parked != inflight_) {
      return fail(why, "inflight ledger mismatch: " + std::to_string(parked) +
                           " parked != inflight " + std::to_string(inflight_));
    }
    return true;
  }

 private:
  static bool fail(std::string* why, std::string msg) {
    if (why) *why = std::move(msg);
    return false;
  }

  /// Committed occupancy of node i (stored + in-flight deliveries); implied
  /// by the contiguous-slot rule.
  std::size_t occupancy(std::size_t i) const noexcept {
    const std::size_t lo = i * r_;
    if (lo >= size_) return 0;
    return std::min(r_, size_ - lo);
  }

  std::size_t node_count(std::size_t i) const noexcept {
    return i < cnt_.size() ? cnt_[i] : 0;
  }

  std::span<T> node_span(std::size_t i) noexcept {
    const std::size_t n = node_count(i);
    return n == 0 ? std::span<T>{} : std::span<T>{arena_.data() + i * r_, n};
  }

  void ensure_nodes(std::size_t m) {
    if (cnt_.size() < m) {
      cnt_.resize(m, 0);
      arena_.resize(m * r_);
    }
  }

  static std::size_t level_of(std::size_t i) noexcept {
    return static_cast<std::size_t>(std::bit_width(i + 1)) - 1;
  }

  /// Smallest item among node i's children (nullptr if i has none).
  /// NOT noexcept: calls the user comparator, which may throw.
  const T* grandchild_min(std::size_t i) const {
    const T* best = nullptr;
    for (std::size_t c = 2 * i + 1; c <= 2 * i + 2; ++c) {
      if (node_count(c) == 0) continue;
      const T* m = arena_.data() + c * r_;
      if (best == nullptr || cmp_(*m, *best)) best = m;
    }
    return best;
  }

  void park(ProcT&& p) {
    const std::size_t lvl = level_of(p.node);
    if (procs_.size() <= lvl) procs_.resize(lvl + 1);
    procs_[lvl].push_back(std::move(p));
    ++inflight_;
    ++pstats_.procs_spawned;
    telemetry::count(telemetry::Counter::kProcsSpawned);
    pstats_.max_inflight = std::max<std::uint64_t>(pstats_.max_inflight, inflight_);
  }

  /// Sorts the collected batch into per-node groups and runs them through
  /// the runner; merges spawned processes and stats afterwards.
  template <typename Runner>
  void run_batch(Runner&& runner) {
    // Node order; within a node delete-updates precede insert-updates, and
    // insert-updates run in spawn order — the deterministic composition for
    // same-generation processes sharing a path prefix.
    std::stable_sort(batch_.begin(), batch_.end(), [](const ProcT& a, const ProcT& b) {
      if (a.node != b.node) return a.node < b.node;
      if (a.kind != b.kind) return a.kind == Kind::kDelete;
      return a.id < b.id;
    });
    groups_.clear();
    for (std::size_t i = 0; i < batch_.size(); ++i) {
      if (i == 0 || batch_[i].node != batch_[i - 1].node) groups_.push_back(i);
    }
    groups_.push_back(batch_.size());
    const std::size_t ngroups = groups_.size() - 1;

    // Snapshot the grandchild minima each delete group will consult BEFORE
    // the parallel phase. A same-parity group two levels down rewrites those
    // nodes concurrently, so reading them live from inside a worker is a
    // data race (caught by the schedule-perturbed TSan run) and makes fill
    // routing timing-dependent. The snapshot pins every group to the
    // half-step's start state — the synchronous-step semantics the paper's
    // correctness argument assumes. Within a group the snapshot stays exact:
    // a delete at v writes only v and its children, never its grandchildren.
    gsnap_.assign(ngroups, GrandSnap{});
    for (std::size_t g = 0; g < ngroups; ++g) {
      const ProcT& head = batch_[groups_[g]];
      if (head.kind != Kind::kDelete) continue;  // deletes sort first per node
      GrandSnap& gs = gsnap_[g];
      if (const T* m = grandchild_min(2 * head.node + 1)) {
        gs.lmin = *m;
        gs.has_l = true;
      }
      if (const T* m = grandchild_min(2 * head.node + 2)) {
        gs.rmin = *m;
        gs.has_r = true;
      }
    }
    pstats_.task_groups += ngroups;
    pstats_.max_groups = std::max<std::uint64_t>(pstats_.max_groups, ngroups);
    pstats_.procs_serviced += batch_.size();
    telemetry::count(telemetry::Counter::kProcsServiced, batch_.size());

    std::function<void(std::size_t, ServiceCtx&)> fn = [this](std::size_t g,
                                                              ServiceCtx& ctx) {
      const GrandSnap& gs = gsnap_[g];
      for (std::size_t i = groups_[g]; i < groups_[g + 1]; ++i) {
        ProcT& p = batch_[i];
        if (p.kind == Kind::kDelete) {
          service_delete(p.node, ctx, gs.has_l ? &gs.lmin : nullptr,
                         gs.has_r ? &gs.rmin : nullptr);
        } else {
          service_insert(std::move(p), ctx);
        }
      }
    };
    runner(ngroups, fn);

    // Serial merge of per-worker results. The default serial runner uses
    // ctx_, parallel runners use their own contexts; merge both.
    merge_ctx(ctx_);
  }

 public:
  /// Merges a worker context's spawned processes and stat deltas back into
  /// the heap (must be called serially, once per context, after a parallel
  /// advance_with half-step; the serial paths call it automatically).
  void merge_ctx(ServiceCtx& ctx) {
    for (auto& p : ctx.spawned_) park(std::move(p));
    ctx.spawned_.clear();
    stats_.delete_procs += ctx.stats_.delete_procs;
    stats_.insert_procs += ctx.stats_.insert_procs;
    stats_.nodes_touched += ctx.stats_.nodes_touched;
    stats_.items_merged += ctx.stats_.items_merged;
    stats_.proc_splits += ctx.stats_.proc_splits;
    ctx.stats_ = HeapStats{};
  }

 private:
  /// One node-local delete-update: repairs `v` against its children, pushes
  /// displaced dirty items down, spawns continuations at the children that
  /// received dirty items. `gl`/`gr` are the grandchild minima snapshotted
  /// by run_batch before the parallel phase (nullptr when the child has no
  /// children) — never read live here, see the snapshot comment above.
  void service_delete(std::size_t v, ServiceCtx& c, const T* gl, const T* gr) {
    const std::size_t l = 2 * v + 1;
    const std::size_t rc = 2 * v + 2;
    const std::size_t nl = node_count(l);
    const std::size_t nr = node_count(rc);
    const std::size_t nv = node_count(v);
    if (nv == 0 || (nl == 0 && nr == 0)) return;
    auto sv = node_span(v);
    auto sl = node_span(l);
    auto sr = node_span(rc);
    ++c.stats_.delete_procs;
    const bool viol_l = nl > 0 && cmp_(sl.front(), sv.back());
    const bool viol_r = nr > 0 && cmp_(sr.front(), sv.back());
    if (!viol_l && !viol_r) return;

    // Node-local repair (node_fix.hpp). Unlike the synchronous heap, a
    // child that received fills is *always* re-serviced next half-step —
    // the violation check against currently-stored grandchildren can be
    // stale with respect to in-flight processes below, and the deferred
    // re-service (which early-outs in O(1) when clean) is what makes the
    // pipeline sound.
    const FixOutcome<T> out = fix_node(sv, sl, sr, gl, gr, c.fix_, cmp_);
    // kSkipReservice re-introduces the documented delete-update revert-note
    // bug: spawn a child's deferred re-service only when the stale violation
    // check (the currently-stored grandchildren) looks dirty. Unsound under
    // pipelining — the check can't see in-flight processes below. This is a
    // wrong-answer fault: nothing throws, the harness must DETECT the bad
    // stream (armed with {nth=1, period=1, max_fires=0} it reproduces the
    // old always-on inject_fault_for_testing behavior).
    const bool skip_clean = robustness::fire(robustness::FailSite::kSkipReservice);
    if (out.taken_l > 0 && !(skip_clean && !out.l_violates)) {
      c.spawned_.push_back(ProcT{Kind::kDelete, l, 0, 0, {}});
    }
    if (out.taken_r > 0 && !(skip_clean && !out.r_violates)) {
      c.spawned_.push_back(ProcT{Kind::kDelete, rc, 0, 0, {}});
    }
    if (out.taken_l > 0 && out.taken_r > 0) ++c.stats_.proc_splits;
    ++c.stats_.nodes_touched;
    c.stats_.items_merged += out.items_moved;
  }

  /// One node-local insert-update step: merge the carried set at p.node,
  /// keep the node's r smallest, carry the rest toward p.target; deliver on
  /// arrival.
  void service_insert(ProcT&& p, ServiceCtx& c) {
    ++c.stats_.insert_procs;
    if (p.carried.empty()) return;  // fully stolen while in flight
    const std::size_t v = p.node;
    if (v == p.target) {  // deliver
      const std::size_t have = node_count(v);
      PH_ASSERT(have + p.carried.size() <= r_);
      c.tmp_.clear();
      merge2(std::span<const T>(arena_.data() + v * r_, have),
             std::span<const T>(p.carried), c.tmp_, cmp_);
      std::copy(c.tmp_.begin(), c.tmp_.end(),
                arena_.begin() + static_cast<std::ptrdiff_t>(v * r_));
      cnt_[v] = have + p.carried.size();
      ++c.stats_.nodes_touched;
      c.stats_.items_merged += c.tmp_.size();
      return;
    }
    // Interior path node: full by construction.
    auto sv = node_span(v);
    PH_ASSERT(sv.size() == r_);
    if (cmp_(p.carried.front(), sv.back())) {
      c.kept_.clear();
      c.rest_.clear();
      merge2_split(std::span<const T>(sv.data(), sv.size()),
                   std::span<const T>(p.carried), r_, c.kept_, c.rest_, cmp_);
      std::copy(c.kept_.begin(), c.kept_.end(), sv.begin());
      p.carried.swap(c.rest_);
      ++c.stats_.nodes_touched;
      c.stats_.items_merged += r_ + p.carried.size();
    }
    // Move one level down along the ancestor path of the target.
    p.node = child_toward(v, p.target);
    c.spawned_.push_back(std::move(p));
  }

  /// The child of `v` on the path from `v` to descendant `t` (1-based index
  /// arithmetic: ancestors of t are prefixes of t's binary representation).
  static std::size_t child_toward(std::size_t v, std::size_t t) noexcept {
    const std::size_t v1 = v + 1;
    std::size_t t1 = t + 1;
    const auto dv = static_cast<std::size_t>(std::bit_width(v1));
    const auto dt = static_cast<std::size_t>(std::bit_width(t1));
    PH_ASSERT(dt > dv);
    return (t1 >> (dt - dv - 1)) - 1;
  }

  /// The root-level work of one cycle (paper step 3).
  std::size_t root_work(std::span<const T> new_items, std::size_t k,
                        std::vector<T>& out) {
    telemetry::SpanScope span(telemetry::Phase::kRootWork);
    telemetry::count(telemetry::Counter::kCycles);
    telemetry::count(telemetry::Counter::kItemsInserted, new_items.size());
    // Allocation-failure site at cycle entry: fires before any heap state is
    // touched, modeling the root-work scratch buffers failing to grow.
    robustness::fire_oom(robustness::FailSite::kRootAlloc);
    new_buf_.assign(new_items.begin(), new_items.end());
    std::sort(new_buf_.begin(), new_buf_.end(), cmp_);

    if (size_ == 0) {
      const std::size_t take = std::min(k, new_buf_.size());
      out.insert(out.end(), new_buf_.begin(),
                 new_buf_.begin() + static_cast<std::ptrdiff_t>(take));
      stats_.items_deleted += take;
      telemetry::count(telemetry::Counter::kItemsDeleted, take);
      if (take < new_buf_.size()) {
        spawn_inserts(std::span<const T>(new_buf_).subspan(take));
      }
      return take;
    }

    const std::size_t root_cnt = node_count(0);
    const std::size_t below = size_ - root_cnt;
    merged_.clear();
    merge2(std::span<const T>(arena_.data(), root_cnt), std::span<const T>(new_buf_),
           merged_, cmp_);
    const std::size_t take = std::min(k, merged_.size());
    PH_ASSERT(take == k || below == 0);
    out.insert(out.end(), merged_.begin(),
               merged_.begin() + static_cast<std::ptrdiff_t>(take));
    stats_.items_deleted += take;
    telemetry::count(telemetry::Counter::kItemsDeleted, take);

    const std::size_t rest = merged_.size() - take;
    const std::size_t new_total = size_ + new_buf_.size() - take;
    const std::size_t new_root_cnt = std::min(r_, new_total);
    auto rest_span = std::span<const T>(merged_).subspan(take);

    if (rest >= new_root_cnt) {
      ensure_nodes(1);
      std::copy(rest_span.begin(),
                rest_span.begin() + static_cast<std::ptrdiff_t>(new_root_cnt),
                arena_.begin());
      cnt_[0] = new_root_cnt;
      size_ = below + new_root_cnt;
      if (rest > new_root_cnt) {
        spawn_inserts(rest_span.subspan(new_root_cnt));
      }
    } else {
      const std::size_t need = new_root_cnt - rest;
      PH_ASSERT(need <= below);
      subs_.clear();
      take_tail(need, subs_);
      stats_.substitutes += need;
      tmp_.clear();
      merge2(rest_span, std::span<const T>(subs_), tmp_, cmp_);
      ensure_nodes(1);
      std::copy(tmp_.begin(), tmp_.end(), arena_.begin());
      // take_tail already deducted `need`; swapping the old root for the new
      // one nets the rest of the accounting (old root out, rest+subs in).
      size_ = size_ - root_cnt + new_root_cnt;
      cnt_[0] = new_root_cnt;
    }
    if (size_ > node_count(0)) {
      park(ProcT{Kind::kDelete, 0, 0, next_id_++, {}});
    }
    return take;
  }

  /// Splits the sorted run into tail-aligned chunks (largest items first)
  /// and spawns one insert-update per chunk at the root level; chunks whose
  /// destination is the root itself are merged in place.
  void spawn_inserts(std::span<const T> sorted) {
    std::size_t remaining = sorted.size();
    while (remaining > 0) {
      // Torn-insert site: fires only once at least one chunk has already
      // committed, so a firing always leaves a genuinely torn batch (part of
      // the insert landed, the rest vanished mid-flight) — the case the
      // strong-guarantee rollback must undo.
      if (remaining < sorted.size()) {
        robustness::fire_fault(robustness::FailSite::kTornInsert);
      }
      const std::size_t used = size_ % r_;
      const std::size_t free_slots = used == 0 ? r_ : r_ - used;
      const std::size_t chunk = std::min(free_slots, remaining);
      const std::size_t target = size_ / r_;
      auto items = sorted.subspan(remaining - chunk, chunk);
      ensure_nodes(target + 1);
      if (target == 0) {
        // Root is the tail: place directly.
        tmp_.clear();
        merge2(std::span<const T>(arena_.data(), cnt_[0]), items, tmp_, cmp_);
        std::copy(tmp_.begin(), tmp_.end(), arena_.begin());
        cnt_[0] += chunk;
      } else {
        // Allocation-failure site: the carried-set vector is the one real
        // allocation on this path.
        robustness::fire_oom(robustness::FailSite::kSpawnAlloc);
        park(ProcT{Kind::kInsert, 0, target, next_id_++,
                   std::vector<T>(items.begin(), items.end())});
      }
      size_ += chunk;
      remaining -= chunk;
    }
  }

  /// Removes the last `q` committed items and appends them, sorted, to
  /// `out`. Items still in flight toward the tail are stolen from their
  /// carried sets; materialized items come off stored suffixes. Decrements
  /// size_.
  void take_tail(std::size_t q, std::vector<T>& out) {
    telemetry::SpanScope span(telemetry::Phase::kSteal);
    pieces_.clear();
    while (q > 0) {
      PH_ASSERT(size_ > node_count(0));
      const std::size_t lt = (size_ - 1) / r_;
      // Prefer the youngest in-flight delivery to this node: it owns the
      // hindmost committed slots.
      ProcT* victim = nullptr;
      for (auto& lvl : procs_) {
        for (auto& p : lvl) {
          if (p.kind != Kind::kInsert || p.target != lt || p.carried.empty()) continue;
          if (victim == nullptr || p.id > victim->id) victim = &p;
        }
      }
      std::size_t s;
      if (victim != nullptr) {
        s = std::min(q, victim->carried.size());
        pieces_.emplace_back(victim->carried.end() - static_cast<std::ptrdiff_t>(s),
                             victim->carried.end());
        victim->carried.resize(victim->carried.size() - s);
        pstats_.steals += s;
        telemetry::count(telemetry::Counter::kSteals, s);
        // An emptied process stays parked and retires as a no-op.
      } else {
        // No in-flight delivery owns slots here, so the tail node's
        // occupancy is fully materialized.
        const std::size_t stored = node_count(lt);
        s = std::min(q, stored);
        PH_ASSERT(s > 0);
        auto sp = node_span(lt);
        pieces_.emplace_back(sp.end() - static_cast<std::ptrdiff_t>(s), sp.end());
        cnt_[lt] = stored - s;
      }
      size_ -= s;
      q -= s;
    }
    // Each piece is sorted; merge them all.
    runs_.clear();
    for (const auto& piece : pieces_) runs_.emplace_back(piece.data(), piece.size());
    merge_k(std::span<const std::span<const T>>(runs_), out, cmp_);
  }

  std::size_t r_;
  Compare cmp_;
  bool batch_guard_ = false;
  std::vector<T> arena_;
  std::vector<std::size_t> cnt_;
  std::size_t size_ = 0;
  std::size_t inflight_ = 0;
  std::uint64_t next_id_ = 0;
  std::vector<std::vector<ProcT>> procs_;

  HeapStats stats_;
  PipelineStats pstats_;
  ServiceCtx ctx_;  // context for the serial service paths

  // Per-group grandchild-minima snapshot, taken serially at the top of
  // run_batch (see the comment there).
  struct GrandSnap {
    T lmin{}, rmin{};
    bool has_l = false, has_r = false;
  };

  // Scratch (reused; the hot path is allocation-free after warm-up).
  std::vector<T> new_buf_, merged_, subs_, tmp_;
  std::vector<ProcT> batch_;
  std::vector<std::size_t> groups_;
  std::vector<GrandSnap> gsnap_;
  std::vector<std::vector<T>> pieces_;
  std::vector<std::span<const T>> runs_;
};

}  // namespace ph
