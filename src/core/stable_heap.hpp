// StableParallelHeap — the payload-indirection variant the lineage built for
// its simulators: heap nodes hold {key, pointer} entries while the payloads
// live at *stable addresses*, so application objects (messages that must
// point at their children, B&B nodes referenced by other structures) never
// move when the heap reorganizes. The entry additionally carries the key by
// value, exactly as the lineage's refinement did, so heap maintenance never
// chases the pointer to compare ("it doesn't need the indirect memory access
// to get the time field in updating the Parallel Heap").
//
// Payloads are owned by an internal slab pool: allocation never relocates
// existing payloads (chunked storage), and freed slots are recycled through
// a free list. The heap itself is the pipelined parallel heap over entries.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/pipelined_heap.hpp"
#include "util/assert.hpp"

namespace ph {

/// Chunked object pool with stable addresses and O(1) allocate/release.
template <typename Payload>
class SlabPool {
 public:
  explicit SlabPool(std::size_t chunk_capacity = 1024)
      : chunk_capacity_(chunk_capacity) {
    PH_ASSERT(chunk_capacity_ >= 1);
  }

  template <typename... Args>
  Payload* allocate(Args&&... args) {
    if (free_.empty()) grow();
    Payload* slot = free_.back();
    free_.pop_back();
    ++live_;
    return new (slot) Payload(std::forward<Args>(args)...);
  }

  void release(Payload* p) noexcept {
    PH_ASSERT(p != nullptr);
    p->~Payload();
    free_.push_back(p);
    PH_ASSERT(live_ > 0);
    --live_;
  }

  std::size_t live() const noexcept { return live_; }
  std::size_t capacity() const noexcept { return chunks_.size() * chunk_capacity_; }

 private:
  // Raw storage: payloads are constructed/destroyed manually so the pool
  // can hold non-default-constructible types.
  using Slab = std::unique_ptr<std::byte[]>;

  void grow() {
    chunks_.push_back(
        std::make_unique<std::byte[]>(chunk_capacity_ * sizeof(Payload)));
    auto* base = reinterpret_cast<Payload*>(chunks_.back().get());
    // Push in reverse so allocation order walks the chunk forward.
    for (std::size_t i = chunk_capacity_; i-- > 0;) free_.push_back(base + i);
  }

  std::size_t chunk_capacity_;
  std::vector<Slab> chunks_;
  std::vector<Payload*> free_;
  std::size_t live_ = 0;
};

template <typename Key, typename Payload, typename Compare = std::less<Key>>
class StableParallelHeap {
 public:
  /// What the heap stores and hands back: the ordering key (by value, so
  /// maintenance never dereferences) plus the stable payload address.
  struct Entry {
    Key key{};
    Payload* payload = nullptr;
  };

  struct EntryCompare {
    Compare cmp;
    bool operator()(const Entry& a, const Entry& b) const { return cmp(a.key, b.key); }
  };

  explicit StableParallelHeap(std::size_t node_capacity, Compare cmp = Compare(),
                              std::size_t pool_chunk = 1024)
      : heap_(node_capacity, EntryCompare{std::move(cmp)}), pool_(pool_chunk) {}

  std::size_t size() const noexcept { return heap_.size(); }
  bool empty() const noexcept { return heap_.empty(); }
  std::size_t node_capacity() const noexcept { return heap_.node_capacity(); }

  /// Allocates a payload at a stable address and inserts it with `key`.
  /// The returned pointer stays valid until the caller release()s it —
  /// including across any amount of heap reorganization, and even after the
  /// entry has been deleted from the heap (the lineage keeps processed
  /// messages alive so parents can cancel children).
  template <typename... Args>
  Payload* emplace(const Key& key, Args&&... args) {
    Payload* p = pool_.allocate(std::forward<Args>(args)...);
    const Entry e{key, p};
    heap_.insert_batch(std::span<const Entry>(&e, 1));
    return p;
  }

  /// Re-inserts an existing (still-allocated) payload under a new key.
  void reinsert(const Key& key, Payload* p) {
    const Entry e{key, p};
    heap_.insert_batch(std::span<const Entry>(&e, 1));
  }

  /// Batch cycle: removes the k smallest entries (appended to out) and
  /// re-inserts `fresh` entries (whose payloads must come from this heap's
  /// emplace/release discipline, or be null).
  std::size_t cycle(std::span<const Entry> fresh, std::size_t k,
                    std::vector<Entry>& out) {
    return heap_.step(fresh, k, out);
  }

  /// Returns a deleted payload's storage to the pool. Only call once per
  /// payload, after its entry left the heap.
  void release(Payload* p) { pool_.release(p); }

  std::size_t pool_live() const noexcept { return pool_.live(); }

  /// Underlying heap access for stats/invariant checking.
  PipelinedParallelHeap<Entry, EntryCompare>& heap() noexcept { return heap_; }

 private:
  PipelinedParallelHeap<Entry, EntryCompare> heap_;
  SlabPool<Payload> pool_;
};

}  // namespace ph
