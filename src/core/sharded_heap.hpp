// ShardedHeap — a key-range-sharded front end over K independent
// PipelinedParallelHeap engine instances, the first step of ROADMAP's
// "scale past one engine instance" item.
//
// The parallel heap's per-cycle contract — insert a batch, delete the k
// globally smallest — is preserved across shards by a three-part protocol:
//
//   1. Route. Each cycle's insert batch is split by a key-range partition
//      map (KeyRangePartitioner): shard i owns keys in [split[i-1],
//      split[i]). Splits start as quantiles of the first batch and are
//      periodically re-estimated from a rolling sample of recent inserts
//      (the MultiQueues/PIPQ pressure-relief move: relax one hot structure
//      into many, rebalance instead of serializing).
//
//   2. Pull + K-way merge. Every shard runs one pipelined cycle with a full
//      deletion budget of k, yielding its own k smallest as a sorted
//      prefix. The global k smallest are then selected by a K-way
//      tournament over those prefixes (ties resolved by shard index, which
//      under multiset key semantics matches the sorted-multiset oracle
//      exactly). The global batch is a subset of the union of per-shard
//      prefixes by construction, so the merge never needs to look past
//      them. A shard whose local minimum exceeds another shard's k-th key
//      contributes nothing — its whole prefix is returned in step 3 — and
//      an empty shard participates as an empty prefix.
//
//   3. Putback. Prefix items that lost the tournament are re-inserted into
//      the shard they came from via an insert-only cycle (k = 0). Putback
//      traffic is the price of not peeking across shards and is counted
//      (ShardedStats::putbacks, telemetry kShardPutbacks); a well-balanced
//      partition map keeps it near zero because the winning prefix comes
//      from few shards (merge width ≈ 1).
//
// Rebalancing never migrates stored items: a new partition map only routes
// *future* inserts, so shard contents may overlap in key range after a
// rebalance. Step 2 deliberately assumes nothing about range disjointness —
// the tournament is a general K-way merge — which is what makes "rebalance
// while items are in flight" safe (test_sharded.cpp pins this).
//
// With K = 1 the protocol degenerates to exactly one pipelined cycle per
// global cycle — no routing decisions, no putback — so sharded_heap<K=1>
// is bit-for-bit the unsharded PipelinedParallelHeap (pinned by
// test_sharded.cpp and the differential harness).
// Concurrency (PR 7). With Config::workers > 0 the cycle actually runs in
// parallel, under the same exact-output contract (bit-exact vs workers=0 at
// any K, pinned differentially):
//
//   - Phase 2 (per-shard pulls) dispatches onto a persistent ThreadTeam.
//     With W ≤ A active shards each worker serially cycles the shards
//     i ≡ w (mod W); with W > A the surplus workers form per-shard CREWS
//     that split each half-step's independent node groups across ranks —
//     the paper's odd/even processor assignment within one heap. The K-way
//     tournament (phase 3) is the only cross-shard synchronization point.
//   - Phase 4 (putback) runs on the same team; with Config::overlap_putback
//     the dispatch is asynchronous and cycle() returns right after the
//     tournament, so the caller's think phase overlaps maintenance. The
//     completion handshake happens at the next cycle()/quiesce() call.
//   - The cross-shard min hint (Config::min_hint) predicts each shard's
//     pull prefix from its root node — stable across the odd half-step —
//     replays the tournament over the predictions, and skips the full-k
//     pull on shards that provably contribute nothing (they still run an
//     insert-only cycle so their pipelines advance). This kills the
//     delete-side putback storm without any cross-shard peeking at pull
//     time; see compute_pull_budgets() for the exactness argument.
//
// Injected-fault / deadline / recovery cycles fall back to the serial pull
// loop (fire_fault ordering and checkpoint-rollback are order-sensitive);
// those are the cold paths by construction.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/pipelined_heap.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics_registry.hpp"
#include "robustness/failpoint.hpp"
#include "robustness/watchdog.hpp"
#include "telemetry/telemetry.hpp"
#include "util/assert.hpp"
#include "util/barrier.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace ph {

/// Sharding counters, additive to each shard's own HeapStats/PipelineStats.
struct ShardedStats {
  std::uint64_t cycles = 0;
  std::uint64_t routed = 0;          ///< items routed to shards (inserts)
  std::uint64_t routed_max_sum = 0;  ///< per-cycle max shard share, summed
  std::uint64_t putbacks = 0;        ///< pulled-but-not-taken items returned
  std::uint64_t rebalances = 0;      ///< partition-map re-estimations applied
  std::uint64_t merge_width_sum = 0; ///< shards contributing >=1 item, summed
  std::uint64_t quarantines = 0;     ///< shards retired by fault or deadline
  std::uint64_t hint_skips = 0;      ///< shard pulls skipped by the min hint
  std::uint64_t parallel_cycles = 0; ///< cycles whose pulls ran on the team

  /// Mean routing imbalance: K * max-share / fair-share (1.0 = perfectly
  /// balanced, K = everything lands on one shard). NaN-free: 0 when idle.
  double imbalance(std::size_t shards) const noexcept {
    if (routed == 0) return 0.0;
    return static_cast<double>(shards) * static_cast<double>(routed_max_sum) /
           static_cast<double>(routed);
  }
  /// Mean number of shards contributing to a deletion batch.
  double avg_merge_width() const noexcept {
    if (cycles == 0) return 0.0;
    return static_cast<double>(merge_width_sum) / static_cast<double>(cycles);
  }
};

/// Key-range partition map: K-1 sorted split values of T; an item routes to
/// the number of splits at or below it. Static splits plus sample-based
/// re-estimation (quantiles of a recent-insert sample).
template <typename T, typename Compare = std::less<T>>
class KeyRangePartitioner {
 public:
  explicit KeyRangePartitioner(std::size_t shards, Compare cmp = Compare())
      : shards_(shards), cmp_(std::move(cmp)) {
    PH_ASSERT(shards_ >= 1);
  }

  std::size_t shards() const noexcept { return shards_; }

  /// Partition of `v`: the count of splits <= v, i.e. shard i owns
  /// [split[i-1], split[i]). Total: every value of T routes to exactly one
  /// shard, and route is monotone under Compare.
  std::size_t route(const T& v) const {
    const auto it = std::upper_bound(splits_.begin(), splits_.end(), v,
                                     [this](const T& a, const T& b) {
                                       return cmp_(a, b);
                                     });
    return static_cast<std::size_t>(it - splits_.begin());
  }

  /// Current split values (size shards-1; empty until the first rebalance
  /// when K > 1, which routes everything to the last shard — valid, merely
  /// unbalanced).
  const std::vector<T>& splits() const noexcept { return splits_; }

  /// Installs an explicit map (must be sorted ascending, size shards-1).
  void set_splits(std::vector<T> splits) {
    PH_ASSERT(splits.size() + 1 == shards_);
    PH_ASSERT(std::is_sorted(splits.begin(), splits.end(),
                             [this](const T& a, const T& b) { return cmp_(a, b); }));
    splits_ = std::move(splits);
  }

  /// Re-estimates the splits as the K-quantiles of `sample`. An empty
  /// sample (or K = 1) leaves the map unchanged. Duplicate-heavy samples
  /// may produce equal splits; route() stays total (the duplicated range
  /// simply has empty shards between its bounds).
  void rebalance(std::span<const T> sample) {
    if (shards_ == 1 || sample.empty()) return;
    scratch_.assign(sample.begin(), sample.end());
    std::sort(scratch_.begin(), scratch_.end(),
              [this](const T& a, const T& b) { return cmp_(a, b); });
    splits_.clear();
    splits_.reserve(shards_ - 1);
    for (std::size_t i = 1; i < shards_; ++i) {
      splits_.push_back(scratch_[i * scratch_.size() / shards_]);
    }
  }

 private:
  std::size_t shards_;
  Compare cmp_;
  std::vector<T> splits_;
  std::vector<T> scratch_;
};

template <typename T, typename Compare = std::less<T>>
class ShardedHeap {
 public:
  using Shard = PipelinedParallelHeap<T, Compare>;
  using value_type = T;
  using ServiceCtx = typename Shard::ServiceCtx;

  struct Config {
    std::size_t shards = 1;
    /// Re-estimate the partition map every this many cycles from the
    /// rolling insert sample (0 = static splits after the seeding batch).
    std::size_t rebalance_interval = 0;
    /// Rolling sample size backing re-estimation.
    std::size_t sample_capacity = 1024;
    /// Graceful degradation: a shard whose cycle throws an injected failure
    /// (while quarantine is on and a fail-point is armed) is checkpointed,
    /// rolled back, drained, and retired — its items fold into this cycle's
    /// tournament and its key range is redistributed across the survivors.
    /// The last active shard is never quarantined.
    bool quarantine = false;
    /// Retire a shard whose completed cycle exceeded this wall-clock budget
    /// (0 = no deadline). Same drain/redistribute path as a fault, except
    /// the shard's pulled prefix (a valid deletion candidate set) joins the
    /// recovery run instead of being rolled back.
    std::uint64_t cycle_deadline_ns = 0;
    /// Worker threads running phase 2 (per-shard pulls) and phase 4
    /// (putback) concurrently; 0 = fully serial cycle, which stays the
    /// differential baseline. With more workers than active shards the
    /// surplus forms per-shard crews splitting each half-step's node groups
    /// (the paper's odd/even processor assignment within one heap). Output
    /// is bit-exact vs workers=0 at any count; cold cycles (armed
    /// fail-points, deadlines, recovery) run serial regardless.
    unsigned workers = 0;
    /// With workers > 0: cycle() returns right after the tournament and the
    /// putback runs asynchronously on the team; the completion handshake is
    /// the next cycle()/quiesce() call, so the caller's think phase
    /// overlaps phase-4 maintenance. size()/live() lag until the handshake.
    bool overlap_putback = false;
    /// Cross-shard min hint: before phase 2, predict every shard's pull
    /// prefix from its (half-step-stable) root node, replay the tournament
    /// over the predictions, and drop provably-losing shards' pull budgets
    /// to 0 — insert-only cycles that skip the pull AND the putback
    /// round-trip. Exact (see compute_pull_budgets()); counted by
    /// ShardedStats::hint_skips / telemetry kShardHintSkips.
    bool min_hint = true;
    /// Routing override: item -> band, taken modulo the active shard count
    /// (unset = key-range quantile partitioner). The tournament never
    /// assumes range disjointness, so any router is exact; the DES driver
    /// uses (timestamp / window) bands to spread delete-wave hotspots.
    std::function<std::size_t(const T&)> router = nullptr;
  };

  ShardedHeap(std::size_t node_capacity, Config cfg, Compare cmp = Compare())
      : r_(node_capacity),
        cfg_(cfg),
        cmp_(cmp),
        part_(cfg.shards == 0 ? 1 : cfg.shards, cmp) {
    PH_ASSERT(r_ >= 1);
    if (cfg_.shards == 0) cfg_.shards = 1;
    if (cfg_.sample_capacity == 0) cfg_.sample_capacity = 1;
    shards_.reserve(cfg_.shards);
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      shards_.emplace_back(r_, cmp_);
    }
    route_buf_.resize(cfg_.shards);
    pulled_.resize(cfg_.shards);
    take_.resize(cfg_.shards);
    redist_.resize(cfg_.shards);
    pull_k_.resize(cfg_.shards);
    hint_.resize(cfg_.shards);
    hint_take_.resize(cfg_.shards);
    if (cfg_.workers > 0) {
      team_ = std::make_unique<ThreadTeam>(cfg_.workers, false, "shard");
      worker_exc_.resize(cfg_.workers);
      worker_sink_.resize(cfg_.workers);
    }
    live_ = std::make_unique<Live>(cfg_.shards, cfg_.workers);
    reset_active();
    update_live(0);
  }

  ~ShardedHeap() {
    if (putback_pending_ && team_ != nullptr) {
      try {
        quiesce();
      } catch (...) {
        // A worker exception with no cycle left to surface it in; the
        // structure is being torn down anyway. Throwing out of a destructor
        // is std::terminate, so the failure is swallowed — but not silently:
        // the flight ring keeps the causal record for the post-mortem dump.
        obs::flight(obs::FlightKind::kTeardownError,
                    static_cast<std::uint64_t>(
                        robustness::FailSite::kShardPutback));
      }
    }
  }

  ShardedHeap(ShardedHeap&&) = default;
  ShardedHeap& operator=(ShardedHeap&&) = default;

  ShardedHeap(std::size_t node_capacity, std::size_t shards, Compare cmp = Compare())
      : ShardedHeap(node_capacity, Config{shards, 0, 1024}, std::move(cmp)) {}

  std::size_t node_capacity() const noexcept { return r_; }
  std::size_t num_shards() const noexcept { return shards_.size(); }

  std::size_t size() const noexcept {
    std::size_t n = 0;
    for (const Shard& s : shards_) n += s.size();
    return n;
  }
  bool empty() const noexcept { return size() == 0; }

  const ShardedStats& sharded_stats() const noexcept { return stats_; }
  const KeyRangePartitioner<T, Compare>& partitioner() const noexcept { return part_; }
  Shard& shard(std::size_t i) noexcept { return shards_[i]; }

  /// Shards still serving traffic (== num_shards() until a quarantine).
  std::size_t active_shards() const noexcept { return dense_.size(); }
  bool shard_active(std::size_t i) const noexcept { return active_[i] != 0; }

  /// Cycle-boundary snapshot of the whole sharded structure: the partition
  /// map, the active mask, and every shard's contents. The rolling insert
  /// sample is deliberately NOT captured — it only steers *future*
  /// rebalances, and the delete-min stream is exact under any partition map
  /// (the tournament assumes nothing about range disjointness), so dropping
  /// it cannot change observable output. Same O(n) contract as the
  /// pipelined heap's Snapshot; valid at any cycle boundary.
  struct Snapshot {
    std::vector<T> splits;
    std::vector<std::uint8_t> active;
    bool seeded = false;
    std::vector<std::vector<T>> shard_items;
  };

  Snapshot snapshot() {
    quiesce();
    Snapshot s;
    s.splits = part_.splits();
    s.active = active_;
    s.seeded = seeded_;
    s.shard_items.reserve(shards_.size());
    for (const Shard& sh : shards_) s.shard_items.push_back(sh.snapshot().items);
    return s;
  }

  /// Rebuilds the structure from a snapshot: partition map, active mask,
  /// and per-shard contents all return to their captured values (the
  /// rolling sample restarts empty — see snapshot()).
  void restore(const Snapshot& s) {
    quiesce();
    PH_ASSERT(s.shard_items.size() == shards_.size());
    PH_ASSERT(s.active.size() == shards_.size());
    active_ = s.active;
    dense_.clear();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      if (active_[i] != 0) dense_.push_back(i);
    }
    PH_ASSERT(!dense_.empty());
    part_ = KeyRangePartitioner<T, Compare>(dense_.size(), cmp_);
    if (s.splits.size() + 1 == dense_.size()) {
      part_.set_splits(s.splits);
      seeded_ = s.seeded;
    } else {
      seeded_ = false;  // pre-seed snapshot (or width mismatch): reseed lazily
    }
    sample_.clear();
    sample_cursor_ = 0;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      shards_[i].build(s.shard_items[i]);
    }
    update_live(0);
  }

  /// Wires watchdog stall verdicts into shard retirement: registers one
  /// heartbeat channel per shard (beaten at each shard-cycle completion) and
  /// quarantines any ACTIVE shard whose channel has been stalled for
  /// `polls_to_quarantine` consecutive polls — the same drain/redistribute
  /// retirement as the deadline path, applied at the next cycle boundary
  /// (the quiescent point where the shard's state is consistent). The last
  /// active shard is never retired. Call before the first cycle.
  void attach_watchdog(robustness::PhaseWatchdog& wd,
                       std::uint32_t polls_to_quarantine = 1) {
    wd_ = &wd;
    wd_polls_ = polls_to_quarantine == 0 ? 1 : polls_to_quarantine;
    wd_ch_.clear();
    wd_ch_.reserve(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      wd_ch_.push_back(wd.add_channel("shard-" + std::to_string(s)));
    }
  }

  /// The watchdog channel id serving shard `s` (tests beat/poke these).
  std::size_t watchdog_channel(std::size_t s) const noexcept { return wd_ch_[s]; }

  /// Lock-free mirror of the structure's live state, refreshed at every
  /// cycle boundary (and by build/restore). This is what gauge callbacks
  /// read: a scrape thread never touches the real shards, so it can run
  /// mid-cycle without synchronizing with the engine.
  struct Live {
    Live(std::size_t shards, std::size_t workers)
        : shard_size(shards),
          shard_active(shards),
          worker_busy_ns(workers),
          worker_phases(workers) {}
    std::vector<std::atomic<std::uint64_t>> shard_size;
    std::vector<std::atomic<std::uint64_t>> shard_active;  ///< 0/1
    std::atomic<std::uint64_t> active_shards{0};
    std::atomic<std::uint64_t> total_size{0};
    std::atomic<std::uint64_t> cycles{0};
    std::atomic<std::uint64_t> routed{0};
    std::atomic<std::uint64_t> putbacks{0};
    std::atomic<std::uint64_t> rebalances{0};
    std::atomic<std::uint64_t> quarantines{0};
    std::atomic<std::uint64_t> hint_skips{0};
    std::atomic<std::uint64_t> last_cycle_ns{0};
    /// Per-worker phase occupancy: cumulative ns spent inside pull/putback
    /// stints and the number of stints, written by the workers themselves
    /// as each stint ends (not at cycle boundaries) — a scraper divides
    /// busy-ns deltas by wall-clock to get each worker's occupancy, the
    /// evidence EXPERIMENTS.md E15 leans on. Empty when workers == 0.
    std::vector<std::atomic<std::uint64_t>> worker_busy_ns;
    std::vector<std::atomic<std::uint64_t>> worker_phases;
  };

  const Live& live() const noexcept { return *live_; }

  /// Publishes this heap's live state as named gauges in the process-wide
  /// MetricsRegistry (per-shard size/liveness plus cycle/route/putback
  /// totals a scraper turns into rates). `heap` labels every gauge so
  /// multiple instances coexist. Deregistration is automatic (RAII) when
  /// the heap dies. Call once, before the first scrape matters.
  void register_gauges(const std::string& heap = "sharded") {
    gauges_.clear();
    Live* lv = live_.get();
    auto lab = [&heap](std::initializer_list<std::pair<std::string, std::string>> more) {
      std::vector<std::pair<std::string, std::string>> ls{{"heap", heap}};
      ls.insert(ls.end(), more.begin(), more.end());
      return ls;
    };
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      gauges_.add(
          obs::GaugeDesc{"shard_size", lab({{"shard", std::to_string(s)}}),
                         "Items held by one shard (cycle-boundary mirror)."},
          [lv, s] { return static_cast<double>(
                        lv->shard_size[s].load(std::memory_order_relaxed)); });
      gauges_.add(
          obs::GaugeDesc{"shard_active", lab({{"shard", std::to_string(s)}}),
                         "1 while the shard serves traffic, 0 once quarantined."},
          [lv, s] { return static_cast<double>(
                        lv->shard_active[s].load(std::memory_order_relaxed)); });
    }
    struct Simple { const char* name; const char* help; std::atomic<std::uint64_t> Live::*field; };
    static constexpr Simple kSimple[] = {
        {"active_shards", "Shards currently serving traffic.", &Live::active_shards},
        {"heap_size", "Total items across all shards.", &Live::total_size},
        {"heap_cycles", "Sharded cycles completed.", &Live::cycles},
        {"heap_routed", "Items routed to shards (inserts).", &Live::routed},
        {"heap_putbacks", "Prefix items returned after losing the tournament.", &Live::putbacks},
        {"heap_rebalances", "Partition-map re-estimations applied.", &Live::rebalances},
        {"heap_quarantines", "Shards retired by fault, deadline, or verdict.", &Live::quarantines},
        {"heap_hint_skips", "Shard pulls skipped by the cross-shard min hint.", &Live::hint_skips},
        {"heap_last_cycle_ns", "Wall-clock duration of the last sharded cycle.", &Live::last_cycle_ns},
    };
    for (const Simple& g : kSimple) {
      auto field = g.field;
      gauges_.add(obs::GaugeDesc{g.name, lab({}), g.help},
                  [lv, field] { return static_cast<double>(
                                    (lv->*field).load(std::memory_order_relaxed)); });
    }
    for (std::size_t w = 0; w < lv->worker_busy_ns.size(); ++w) {
      gauges_.add(
          obs::GaugeDesc{"shard_worker_busy_ns", lab({{"worker", std::to_string(w)}}),
                         "Cumulative ns this worker spent in pull/putback stints."},
          [lv, w] { return static_cast<double>(
                        lv->worker_busy_ns[w].load(std::memory_order_relaxed)); });
      gauges_.add(
          obs::GaugeDesc{"shard_worker_phases", lab({{"worker", std::to_string(w)}}),
                         "Pull/putback stints this worker has completed."},
          [lv, w] { return static_cast<double>(
                        lv->worker_phases[w].load(std::memory_order_relaxed)); });
    }
  }

  /// Forces an immediate partition-map re-estimation from the rolling
  /// sample (testing/tuning; the interval path calls this too).
  void rebalance_now() {
    quiesce();
    if (cfg_.router) return;  // banded routing bypasses the partition map
    if (sample_.empty() || active_shards() == 1) return;
    part_.rebalance(std::span<const T>(sample_));
    ++stats_.rebalances;
    telemetry::count(telemetry::Counter::kShardRebalances);
    obs::flight(obs::FlightKind::kRebalance, active_shards());
    if (live_) live_->rebalances.store(stats_.rebalances, std::memory_order_relaxed);
  }

  /// Replaces the content: seeds the partition map from `items` and
  /// bulk-loads each shard with its range. Quarantined shards are
  /// reactivated (build is a full reset).
  void build(std::span<const T> items) {
    quiesce();
    reset_active();
    observe(items);
    if (!seeded_ && !items.empty()) {
      part_.rebalance(items);
      seeded_ = true;
    }
    for (auto& b : route_buf_) b.clear();
    for (const T& v : items) route_buf_[slot_for(v)].push_back(v);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      shards_[s].build(route_buf_[s]);
    }
    update_live(0);
  }

  /// One sharded insert-delete cycle: routes `fresh` across the shards,
  /// pulls every shard's k-smallest prefix through one pipelined cycle
  /// each, K-way-merges the global k smallest into `out` (sorted), and
  /// puts losing prefix items back. Returns the number deleted.
  std::size_t cycle(std::span<const T> fresh, std::size_t k, std::vector<T>& out) {
    PH_ASSERT_MSG(k <= r_, "cycle(): k must not exceed the node capacity r");
    // Overlap handshake, completion side: the previous cycle's putback (if
    // dispatched asynchronously) must finish before anything reads or
    // routes — the caller's think time since then is what got overlapped.
    quiesce();
    ++stats_.cycles;
    recovery_.clear();

    // Causal identity: every span recorded during this cycle — route, each
    // shard's pipeline levels (ThreadTeam propagates the context into its
    // workers), merge, putback — carries this id, so the Chrome exporter can
    // stitch one cycle across all K shards into a single flow. The flight
    // recorder logs the same id, linking black-box events to trace spans.
    const std::uint64_t trace_id = telemetry::new_trace_id();
    telemetry::TraceCtxScope trace_scope(trace_id);
    obs::flight(obs::FlightKind::kCycle, trace_id, fresh.size());
    Timer cycle_timer;

    // Phase 0: watchdog verdicts. A shard whose heartbeat channel has been
    // stalled for wd_polls_ consecutive polls is retired here, at the cycle
    // boundary — its state is quiescent and valid, so it takes the same
    // drain/redistribute path as a deadline miss (extra_ empty) and its
    // items fold into THIS cycle's tournament.
    if (wd_ != nullptr) {
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        if (active_[s] == 0 || active_shards() <= 1) continue;
        if (wd_->consecutive_stalls(wd_ch_[s]) >= wd_polls_) {
          extra_.clear();
          // The shard's last pulled prefix was already put back (phase 4 of
          // the previous cycle), so its survivors are inside the shard and
          // will drain into the recovery run — the stale pulled_ copy must
          // not re-enter the tournament.
          pulled_[s].clear();
          quarantine_shard(s);
        }
      }
    }

    // Phase 1: route. The first nonempty batch seeds the partition map.
    {
      telemetry::SpanScope span(telemetry::Phase::kShardRoute);
      obs::flight(obs::FlightKind::kPhase,
                  static_cast<std::uint64_t>(telemetry::Phase::kShardRoute),
                  trace_id);
      if (!seeded_ && !fresh.empty()) {
        part_.rebalance(fresh);
        seeded_ = true;
      }
      for (auto& b : route_buf_) b.clear();
      for (const T& v : fresh) route_buf_[slot_for(v)].push_back(v);
    }
    if (!fresh.empty()) {
      std::size_t mx = 0;
      for (const auto& b : route_buf_) mx = std::max(mx, b.size());
      stats_.routed += fresh.size();
      stats_.routed_max_sum += mx;
      telemetry::count(telemetry::Counter::kShardRouted, fresh.size());
      observe(fresh);
    }

    // Phase 2: pull per-shard prefixes. Every active shard cycles every
    // global cycle — even an empty one — so parked update processes keep
    // advancing at the global cycle rate. A shard that trips a fail-point
    // here (or finishes past its deadline) is quarantined: rolled back to
    // its pre-cycle checkpoint (fault path only), drained, and folded into
    // this cycle's tournament via the recovery run.
    cycle_slots_.assign(dense_.begin(), dense_.end());
    // Cold cycles — armed fail-points (fire-counter order is global and
    // order-sensitive), deadlines (the pulled prefix doubles as quarantine
    // candidate set), or a phase-0 recovery run — take the serial loop with
    // full budgets; everything else may use the min hint and the team.
    // kShardPutback is excluded from the gate: it exists to fault the TEAM
    // putback path, which a cold cycle would never reach.
    const bool cold =
        robustness::any_armed_except(
            robustness::site_bit(robustness::FailSite::kShardPutback)) ||
        cfg_.cycle_deadline_ns > 0 || !recovery_.empty();
    compute_pull_budgets(k, cold);
    const bool on_team = team_ != nullptr && !cold;
    if (on_team) {
      ++stats_.parallel_cycles;
      telemetry::count(telemetry::Counter::kShardParallelCycles);
      run_parallel_pulls();
    } else {
    for (const std::size_t s : cycle_slots_) {
      pulled_[s].clear();
      telemetry::TraceTagScope shard_tag(static_cast<std::uint32_t>(s));
      // Checkpointing is O(shard size); only pay for it when an injected
      // failure can actually fire and we have a survivor to fail over to.
      const bool guard = cfg_.quarantine && active_shards() > 1 &&
                         robustness::any_armed();
      const bool timed = cfg_.cycle_deadline_ns > 0;
      if (!guard && !timed) {
        shards_[s].cycle(route_buf_[s], pull_k_[s], pulled_[s]);
        if (wd_ != nullptr) wd_->beat(wd_ch_[s]);
        continue;
      }
      typename Shard::Snapshot snap;
      if (guard) snap = shards_[s].snapshot();
      Timer t;
      try {
        if (guard) robustness::fire_fault(robustness::FailSite::kShardCycle);
        shards_[s].cycle(route_buf_[s], pull_k_[s], pulled_[s]);
      } catch (const robustness::InjectedFailure&) {
        if (!guard) throw;
        // The cycle died mid-flight: the shard may be poisoned and its
        // routed batch was never committed. Roll back to the checkpoint,
        // discard any partial pull, and retire the shard; checkpoint items
        // plus the uncommitted routed batch form its recovery content.
        shards_[s].restore(snap);
        pulled_[s].clear();
        extra_.assign(route_buf_[s].begin(), route_buf_[s].end());
        std::sort(extra_.begin(), extra_.end(), cmp_);
        quarantine_shard(s);
        robustness::note_recovery(robustness::FailSite::kShardCycle);
        continue;
      }
      if (timed && t.nanos() > cfg_.cycle_deadline_ns && active_shards() > 1) {
        // Completed, but too slow to keep on the critical path. State is
        // valid: its pulled prefix is a legitimate candidate set, so it
        // joins the recovery run rather than being rolled back.
        extra_.swap(pulled_[s]);  // already sorted
        pulled_[s].clear();
        quarantine_shard(s);
        continue;
      }
      if (wd_ != nullptr) wd_->beat(wd_ch_[s]);
    }
    }

    // Phase 3: K-way tournament over the sorted prefixes (plus the recovery
    // run, if a quarantine happened this cycle); ties go to the lowest
    // shard index, with the recovery run losing all ties (deterministic;
    // invisible under multiset keys).
    std::size_t taken = 0;
    std::size_t rec_take = 0;
    {
      telemetry::SpanScope span(telemetry::Phase::kShardMerge);
      obs::flight(obs::FlightKind::kPhase,
                  static_cast<std::uint64_t>(telemetry::Phase::kShardMerge),
                  trace_id);
      std::fill(take_.begin(), take_.end(), std::size_t{0});
      while (taken < k) {
        std::size_t best = shards_.size();
        for (std::size_t s = 0; s < shards_.size(); ++s) {
          if (take_[s] >= pulled_[s].size()) continue;
          if (best == shards_.size() ||
              cmp_(pulled_[s][take_[s]], pulled_[best][take_[best]])) {
            best = s;
          }
        }
        const bool rec_has = rec_take < recovery_.size();
        if (best == shards_.size()) {
          if (!rec_has) break;  // all runs exhausted
          out.push_back(recovery_[rec_take++]);
        } else if (rec_has &&
                   cmp_(recovery_[rec_take], pulled_[best][take_[best]])) {
          out.push_back(recovery_[rec_take++]);
        } else {
          out.push_back(pulled_[best][take_[best]++]);
        }
        ++taken;
      }
    }
    std::size_t width = 0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (take_[s] > 0) ++width;
    }
    if (rec_take > 0) ++width;
    stats_.merge_width_sum += width;
    telemetry::count(telemetry::Counter::kShardMergeWidth, width);

    // Phase 4: put losing prefix suffixes back where they came from
    // (insert-only cycles; k = 0 advances nothing out of the shard).
    if (on_team) {
      // Per-shard putbacks are independent; stats are accounted here, at
      // dispatch, so the deferred handshake only owes rebalance + Live.
      std::size_t put_total = 0;
      for (const std::size_t s : cycle_slots_) {
        if (take_[s] < pulled_[s].size()) put_total += pulled_[s].size() - take_[s];
      }
      if (put_total > 0) {
        stats_.putbacks += put_total;
        telemetry::count(telemetry::Counter::kShardPutbacks, put_total);
        putback_done_.assign(shards_.size(), std::uint8_t{0});
        putback_fn_ = [this](unsigned w) { putback_worker(w); };
        if (cfg_.overlap_putback) {
          // Overlap handshake, dispatch side: hand phase 4 to the team and
          // return with the tournament result; the caller thinks while the
          // putback cycles run. quiesce() completes the handshake.
          putback_pending_ = true;
          pending_cycle_ns_ = cycle_timer.nanos();
          team_->begin(putback_fn_);
          return taken;
        }
        team_->run(putback_fn_);
        recover_deferred_putbacks();
        rethrow_worker_exc();
      }
    } else {
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        if (take_[s] >= pulled_[s].size()) continue;
        telemetry::TraceTagScope shard_tag(static_cast<std::uint32_t>(s));
        const auto rest = std::span<const T>(pulled_[s]).subspan(take_[s]);
        sink_.clear();
        shards_[s].cycle(rest, 0, sink_);
        stats_.putbacks += rest.size();
        telemetry::count(telemetry::Counter::kShardPutbacks, rest.size());
      }

      // Phase 4b: redistribute the untaken recovery remainder across the
      // survivors through the same insert-only path — routed by the (already
      // rebuilt) partition map, so a quarantined shard's key range is served
      // by the survivors from the very next route.
      if (rec_take < recovery_.size()) {
        for (auto& b : redist_) b.clear();
        for (std::size_t i = rec_take; i < recovery_.size(); ++i) {
          redist_[slot_for(recovery_[i])].push_back(recovery_[i]);
        }
        for (const std::size_t s : dense_) {
          if (redist_[s].empty()) continue;
          sink_.clear();
          shards_[s].cycle(redist_[s], 0, sink_);
          stats_.putbacks += redist_[s].size();
          telemetry::count(telemetry::Counter::kShardPutbacks, redist_[s].size());
        }
      }
    }
    recovery_.clear();

    // Phase 5: periodic partition-map re-estimation, always between cycles
    // (never while shard pipelines are mid-half-step).
    if (cfg_.rebalance_interval != 0 &&
        stats_.cycles % cfg_.rebalance_interval == 0) {
      rebalance_now();
    }
    update_live(cycle_timer.nanos());
    return taken;
  }

  /// Overlap handshake, completion side: joins the worker team if an
  /// asynchronous putback is outstanding, rethrows any worker exception,
  /// applies the deferred rebalance check, and refreshes the Live mirror.
  /// cycle() calls this on entry — that call pair IS the think/maintenance
  /// overlap — and so does every other state-touching entry point; call it
  /// directly only before reading size()/live() at a true quiescent point.
  void quiesce() {
    if (!putback_pending_ || team_ == nullptr) return;
    putback_pending_ = false;
    team_->wait();
    recover_deferred_putbacks();
    rethrow_worker_exc();
    if (cfg_.rebalance_interval != 0 &&
        stats_.cycles % cfg_.rebalance_interval == 0) {
      rebalance_now();
    }
    update_live(pending_cycle_ns_);
  }

  /// True while an overlapped putback is still outstanding.
  bool putback_pending() const noexcept { return putback_pending_; }

  /// Verifies every shard's structural invariants (drains their pipelines).
  bool check_invariants(std::string* why = nullptr) {
    quiesce();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      std::string inner;
      if (!shards_[s].check_invariants(&inner)) {
        if (why) *why = "shard " + std::to_string(s) + ": " + inner;
        return false;
      }
    }
    return true;
  }

  /// All contents ascending (drains; testing/diagnostics).
  std::vector<T> sorted_contents() {
    quiesce();
    std::vector<T> all;
    for (Shard& s : shards_) {
      const std::vector<T> part = s.sorted_contents();
      all.insert(all.end(), part.begin(), part.end());
    }
    std::sort(all.begin(), all.end(), cmp_);
    return all;
  }

  // ---------------------------------------------------- ownership handoff seam
  //
  // An external supervisor (dist/supervisor.hpp) that moves a shard's key
  // range to another execution domain needs a clean ownership boundary:
  // release surrenders a shard's items and removes it from routing (its key
  // range redistributes across survivors, exactly as quarantine does —
  // minus the recovery-run dump, because the caller keeps the items);
  // adopt is the inverse — hand items back, reactivate, rewiden the map.

  /// Surrenders shard `s`: returns its entire contents (ascending) and
  /// deactivates it. Survivors keep cycling; fresh values that would have
  /// routed to `s` spread across the narrowed partition map.
  std::vector<T> release_shard(std::size_t s) {
    quiesce();
    PH_ASSERT_MSG(active_shards() > 1, "cannot release the last active shard");
    PH_ASSERT_MSG(active_[s] != 0, "release_shard: shard already inactive");
    std::vector<T> drained = shards_[s].sorted_contents();
    shards_[s].build(std::span<const T>{});
    active_[s] = 0;
    rebuild_routing();
    obs::flight(obs::FlightKind::kQuarantine, s, drained.size());
    return drained;
  }

  /// Re-admits shard `s` with `items` as its contents (any order) and
  /// restores it to the routing table. Conservation is the caller's
  /// contract: adopt back exactly what release (plus interim ops) left.
  void adopt_shard(std::size_t s, std::span<const T> items) {
    quiesce();
    PH_ASSERT_MSG(active_[s] == 0, "adopt_shard: shard already active");
    shards_[s].build(items);
    active_[s] = 1;
    rebuild_routing();
  }

 private:
  /// Recomputes dense_ from active_ and re-estimates the partition map at
  /// the new width from the rolling sample (quarantine_shard's narrowing
  /// logic, shared with the handoff seam which also widens).
  void rebuild_routing() {
    dense_.clear();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      if (active_[i] != 0) dense_.push_back(i);
    }
    part_ = KeyRangePartitioner<T, Compare>(dense_.size(), cmp_);
    seeded_ = false;
    if (!sample_.empty()) {
      part_.rebalance(std::span<const T>(sample_));
      seeded_ = true;
    }
  }

  /// Slot (index into shards_) serving value v under the current partition
  /// map: the map spans only ACTIVE shards; dense_ translates its range
  /// index to a physical slot. A configured router bypasses the map: its
  /// band, modulo the active count, picks the slot directly.
  std::size_t slot_for(const T& v) const {
    if (cfg_.router) return dense_[cfg_.router(v) % dense_.size()];
    return dense_[part_.route(v)];
  }

  /// Satellite fix (delete-side putback storm): decide every shard's pull
  /// budget BEFORE phase 2. A shard's next pulled prefix is exactly the
  /// first min(k, ·) items of merge(root, sorted(routed batch)) — the
  /// paper's delete-correctness theorem confines the k smallest of
  /// (heap ∪ new) to (root ∪ new), and the root is stable across the odd
  /// half-step (PipelinedParallelHeap::root_items()) — so the driver can
  /// compute each prefix without running any pull. Replaying the
  /// phase-3 tournament over the predictions (same lowest-shard-index
  /// tie-break) yields the exact per-shard take counts; a shard whose
  /// count is zero provably contributes nothing this cycle, so its budget
  /// drops to 0: an insert-only cycle that skips the pull AND the putback
  /// round-trip while its pipeline still advances.
  ///
  /// Exactness: the tournament selects the k smallest candidates under the
  /// (key, shard index, position) priority; removing candidates that were
  /// never selected cannot change the selected multiset (each removed item
  /// ranks strictly after all k winners), so contributing shards take
  /// exactly what they always did. Tie counts depend only on key multisets,
  /// which the prediction reproduces even though payload order within equal
  /// keys may differ from the shard's own merge. Disabled on cold cycles,
  /// where pulled prefixes double as quarantine candidate sets.
  void compute_pull_budgets(std::size_t k, bool cold) {
    for (const std::size_t s : cycle_slots_) pull_k_[s] = k;
    if (!cfg_.min_hint || cold || k == 0 || cycle_slots_.size() < 2) return;
    for (const std::size_t s : cycle_slots_) {
      hint_fresh_.assign(route_buf_[s].begin(), route_buf_[s].end());
      std::sort(hint_fresh_.begin(), hint_fresh_.end(), cmp_);
      auto& h = hint_[s];
      h.clear();
      merge2(shards_[s].root_items(), std::span<const T>(hint_fresh_), h, cmp_);
      if (h.size() > k) h.erase(h.begin() + static_cast<std::ptrdiff_t>(k), h.end());
      hint_take_[s] = 0;
    }
    // Tournament replay over the predictions (cycle_slots_ is ascending, so
    // scanning it in order preserves the lowest-shard-index tie-break).
    std::size_t taken = 0;
    while (taken < k) {
      std::size_t best = shards_.size();
      for (const std::size_t s : cycle_slots_) {
        if (hint_take_[s] >= hint_[s].size()) continue;
        if (best == shards_.size() ||
            cmp_(hint_[s][hint_take_[s]], hint_[best][hint_take_[best]])) {
          best = s;
        }
      }
      if (best == shards_.size()) break;
      ++hint_take_[best];
      ++taken;
    }
    std::size_t skips = 0;
    for (const std::size_t s : cycle_slots_) {
      // An empty prediction means the shard pulls nothing either way; keep
      // its budget at k so behavior matches the pre-hint code exactly.
      if (hint_take_[s] == 0 && !hint_[s].empty()) {
        pull_k_[s] = 0;
        ++skips;
      }
    }
    if (skips > 0) {
      stats_.hint_skips += skips;
      telemetry::count(telemetry::Counter::kShardHintSkips, skips);
    }
  }

  /// Phase 2 on the worker team. With W <= A each worker serially cycles
  /// the shards at positions ≡ its id (mod W) — whole pipelines are the
  /// parallel units. With W > A every shard gets a crew (build_crews) that
  /// splits each half-step's independent node groups across its ranks.
  void run_parallel_pulls() {
    const std::size_t nslots = cycle_slots_.size();
    const unsigned team_w = team_->size();
    if (crew_built_for_ != nslots) build_crews(nslots);
    std::fill(worker_exc_.begin(), worker_exc_.end(), std::exception_ptr{});
    for (const std::size_t s : cycle_slots_) pulled_[s].clear();
    pull_fn_ = [this, nslots, team_w](unsigned w) {
      telemetry::SpanScope span(telemetry::Phase::kShardPull);
      Timer busy;
      if (team_w <= nslots) {
        for (std::size_t i = w; i < nslots; i += team_w) {
          pull_one(w, cycle_slots_[i]);
        }
      } else {
        const std::size_t c = w % nslots;
        if (w / nslots == 0) {
          crew_primary(w, c);
        } else {
          crew_helper(w, c, w / nslots);
        }
      }
      note_worker_busy(w, busy.nanos());
    };
    team_->run(pull_fn_);
    rethrow_worker_exc();
  }

  /// One shard's full pull, run serially by one worker (the W <= A stripes
  /// and single-member crews).
  void pull_one(unsigned w, std::size_t s) {
    telemetry::TraceTagScope shard_tag(static_cast<std::uint32_t>(s));
    try {
      shards_[s].cycle(route_buf_[s], pull_k_[s], pulled_[s]);
    } catch (...) {
      if (!worker_exc_[w]) worker_exc_[w] = std::current_exception();
    }
    if (wd_ != nullptr) wd_->beat(wd_ch_[s]);
  }

  /// Crew primary (rank 0): drives its shard's composed cycle —
  /// advance(1) + root_work + advance(0), the same decomposition step()
  /// makes — publishing each half-step's (ngroups, fn) to the helper ranks.
  /// ngroups/fn are plain fields: the SenseBarrier's acq_rel RMW chain
  /// orders the primary's stores before every helper's loads, and the
  /// helpers' ServiceCtx writes before the primary's merges after the
  /// second crossing. Helpers always see exactly two phases per cycle:
  /// advance_with() returning without calling the runner (empty half-step)
  /// and thrown exceptions both publish empty phases so nobody is left at
  /// the barrier.
  void crew_primary(unsigned w, std::size_t c) {
    const std::size_t s = cycle_slots_[c];
    const std::size_t q = crew_ctx_[c].size();
    if (q == 1) {  // the surplus ranks didn't reach this shard
      pull_one(w, s);
      return;
    }
    CrewSlot& crew = crews_[c];
    telemetry::TraceTagScope shard_tag(static_cast<std::uint32_t>(s));
    bool sense = crew_sense_[w] != 0;
    int published = 0;
    auto runner = [&](std::size_t ngroups,
                      const std::function<void(std::size_t, ServiceCtx&)>& fn) {
      ++published;
      crew.ngroups = ngroups;
      crew.fn = &fn;
      crew.bar->arrive_and_wait(sense);
      try {
        for (std::size_t g = 0; g < ngroups; g += q) fn(g, crew_ctx_[c][0]);
      } catch (...) {
        if (!worker_exc_[w]) worker_exc_[w] = std::current_exception();
      }
      crew.bar->arrive_and_wait(sense);
      // Rank order fixes the spawn/park sequence, keeping the composed
      // cycle bit-identical to the serial one (the MT adapter discipline).
      for (std::size_t rk = 0; rk < q; ++rk) {
        shards_[s].merge_ctx(crew_ctx_[c][rk]);
      }
    };
    auto empty_phase = [&] {
      ++published;
      crew.ngroups = 0;
      crew.fn = nullptr;
      crew.bar->arrive_and_wait(sense);
      crew.bar->arrive_and_wait(sense);
    };
    try {
      int before = published;
      shards_[s].advance_with(1, runner);
      if (published == before) empty_phase();
      shards_[s].root_work_public(route_buf_[s], pull_k_[s], pulled_[s]);
      before = published;
      shards_[s].advance_with(0, runner);
      if (published == before) empty_phase();
    } catch (...) {
      if (!worker_exc_[w]) worker_exc_[w] = std::current_exception();
      while (published < 2) empty_phase();
    }
    crew_sense_[w] = sense ? std::uint8_t{1} : std::uint8_t{0};
    if (wd_ != nullptr) wd_->beat(wd_ch_[s]);
  }

  /// Crew helper (rank > 0): services its stride of each published
  /// half-step's groups into its own ServiceCtx. Never throws past a
  /// barrier — an exception is stashed and the remaining crossings still
  /// happen, so the crew's phase count always balances.
  void crew_helper(unsigned w, std::size_t c, std::size_t rank) {
    const std::size_t s = cycle_slots_[c];
    CrewSlot& crew = crews_[c];
    const std::size_t q = crew_ctx_[c].size();
    telemetry::TraceTagScope shard_tag(static_cast<std::uint32_t>(s));
    bool sense = crew_sense_[w] != 0;
    for (int phase = 0; phase < 2; ++phase) {
      crew.bar->arrive_and_wait(sense);
      const std::size_t n = crew.ngroups;
      const auto* fn = crew.fn;
      try {
        for (std::size_t g = rank; g < n; g += q) {
          (*fn)(g, crew_ctx_[c][rank]);
        }
      } catch (...) {
        if (!worker_exc_[w]) worker_exc_[w] = std::current_exception();
      }
      crew.bar->arrive_and_wait(sense);
    }
    crew_sense_[w] = sense ? std::uint8_t{1} : std::uint8_t{0};
  }

  /// Rebuilds the crew tables for an active-shard count (W > A only): crew
  /// c gets ceil((W - c) / A) members — every crew at least one — plus a
  /// barrier when it has helpers. Barrier senses reset with the tables.
  void build_crews(std::size_t nslots) {
    const unsigned team_w = team_->size();
    crews_.clear();
    crews_.resize(nslots);
    crew_ctx_.clear();
    crew_ctx_.resize(nslots);
    for (std::size_t c = 0; c < nslots; ++c) {
      const std::size_t q =
          team_w > nslots ? (team_w - c + nslots - 1) / nslots : 1;
      crew_ctx_[c].resize(q);
      if (q > 1) {
        crews_[c].bar = std::make_unique<SenseBarrier>(static_cast<std::uint32_t>(q));
      }
    }
    crew_sense_.assign(team_w, std::uint8_t{0});
    crew_built_for_ = nslots;
  }

  /// Phase 4 on the worker team: each worker handles its stripe of shards'
  /// losing suffixes via insert-only cycles (stats were accounted at
  /// dispatch). Runs either synchronously (team_->run) or detached behind
  /// the overlap handshake; either way the scratch it reads (cycle_slots_,
  /// take_, pulled_) is not touched again until quiesce().
  void putback_worker(unsigned w) {
    telemetry::SpanScope span(telemetry::Phase::kShardPutback);
    Timer busy;
    const std::size_t nslots = cycle_slots_.size();
    const unsigned team_w = team_->size();
    for (std::size_t i = w; i < nslots; i += team_w) {
      const std::size_t s = cycle_slots_[i];
      if (take_[s] >= pulled_[s].size()) continue;
      telemetry::TraceTagScope shard_tag(static_cast<std::uint32_t>(s));
      const auto rest = std::span<const T>(pulled_[s]).subspan(take_[s]);
      worker_sink_[w].clear();
      try {
        // Fires BEFORE the shard cycle, so an injected fault leaves the
        // shard untouched and its suffix intact — the handshake can retry
        // the slot serially (recover_deferred_putbacks).
        robustness::fire_fault(robustness::FailSite::kShardPutback);
        shards_[s].cycle(rest, 0, worker_sink_[w]);
        putback_done_[s] = 1;
      } catch (...) {
        if (!worker_exc_[w]) worker_exc_[w] = std::current_exception();
      }
    }
    note_worker_busy(w, busy.nanos());
  }

  /// Completion-side repair for faulted team putbacks: if every stashed
  /// worker exception is an injected fault (real exceptions still surface
  /// via rethrow_worker_exc), retry the unfinished slots serially on the
  /// driver. Worker stripes are disjoint and the team has joined, so
  /// putback_done_ is safely readable here. Each retry still evaluates the
  /// fail-point; a site armed beyond the retry budget leaves one injected
  /// failure stashed for the caller (the destructor path swallows it and
  /// records kTeardownError instead).
  void recover_deferred_putbacks() {
    bool faulted = false;
    for (const auto& e : worker_exc_) {
      if (!e) continue;
      try {
        std::rethrow_exception(e);
      } catch (const robustness::InjectedFailure&) {
        faulted = true;
      } catch (...) {
        return;  // a real failure: leave everything for rethrow_worker_exc
      }
    }
    if (!faulted) return;
    for (auto& e : worker_exc_) e = nullptr;
    for (const std::size_t s : cycle_slots_) {
      if (take_[s] >= pulled_[s].size() || putback_done_[s] != 0) continue;
      const auto rest = std::span<const T>(pulled_[s]).subspan(take_[s]);
      bool ok = false;
      for (int attempt = 0; attempt < 64 && !ok; ++attempt) {
        sink_.clear();
        try {
          robustness::fire_fault(robustness::FailSite::kShardPutback);
          shards_[s].cycle(rest, 0, sink_);
          ok = true;
        } catch (const robustness::InjectedFailure&) {
        }
      }
      if (!ok) {
        worker_exc_[0] = std::make_exception_ptr(
            robustness::InjectedFault(robustness::FailSite::kShardPutback));
        return;
      }
      putback_done_[s] = 1;
      robustness::note_recovery(robustness::FailSite::kShardPutback);
    }
  }

  /// Surfaces the first stashed worker exception (driver thread, after a
  /// join). Clears the slot so a handled failure is not rethrown forever.
  void rethrow_worker_exc() {
    for (auto& e : worker_exc_) {
      if (e) {
        const std::exception_ptr p = e;
        e = nullptr;
        std::rethrow_exception(p);
      }
    }
  }

  /// Per-worker occupancy accounting (Live mirror; workers write their own
  /// slots, relaxed — see Live::worker_busy_ns).
  void note_worker_busy(unsigned w, std::uint64_t ns) noexcept {
    if (live_ == nullptr || w >= live_->worker_busy_ns.size()) return;
    live_->worker_busy_ns[w].fetch_add(ns, std::memory_order_relaxed);
    live_->worker_phases[w].fetch_add(1, std::memory_order_relaxed);
  }

  /// Reactivates every shard and restores the full-width partition map
  /// (no-op unless a quarantine actually happened; ctor bootstrap aside).
  void reset_active() {
    if (!active_.empty() && dense_.size() == shards_.size()) return;
    active_.assign(cfg_.shards, std::uint8_t{1});
    dense_.resize(cfg_.shards);
    for (std::size_t i = 0; i < cfg_.shards; ++i) dense_[i] = i;
    if (part_.shards() != cfg_.shards) {
      part_ = KeyRangePartitioner<T, Compare>(cfg_.shards, cmp_);
      seeded_ = false;
      if (!sample_.empty()) {
        part_.rebalance(std::span<const T>(sample_));
        seeded_ = true;
      }
    }
  }

  /// Retires shard `s`: drains it (plus `extra_`, the caller-supplied
  /// sorted items stranded by the failure) into the cycle's recovery run,
  /// removes it from the routing table, and narrows the partition map to
  /// the survivors — re-estimated from the rolling sample so the dead
  /// shard's key range splits across them instead of piling onto one
  /// neighbor. Conservation: recovery_ gains exactly the shard's committed
  /// items plus extra_; nothing else moves.
  void quarantine_shard(std::size_t s) {
    PH_ASSERT_MSG(active_shards() > 1, "cannot quarantine the last shard");
    PH_ASSERT(active_[s] != 0);
    active_[s] = 0;
    rebuild_routing();
    const std::vector<T> drained = shards_[s].sorted_contents();
    // sorted_contents() copies; actually empty the retired shard so its
    // items *move* into the recovery run — otherwise size()/empty() keep
    // counting the dead shard's stale copy forever.
    shards_[s].build(std::span<const T>{});
    const std::size_t mid = recovery_.size();
    recovery_.insert(recovery_.end(), drained.begin(), drained.end());
    recovery_.insert(recovery_.end(), extra_.begin(), extra_.end());
    extra_.clear();
    // Both pieces are sorted; a repeated quarantine in one cycle appends
    // another pair — sort the whole (cold-path) run once.
    std::sort(recovery_.begin() + static_cast<std::ptrdiff_t>(mid), recovery_.end(),
              cmp_);
    std::inplace_merge(recovery_.begin(),
                       recovery_.begin() + static_cast<std::ptrdiff_t>(mid),
                       recovery_.end(),
                       [this](const T& a, const T& b) { return cmp_(a, b); });
    ++stats_.quarantines;
    telemetry::count(telemetry::Counter::kShardQuarantines);
    obs::flight(obs::FlightKind::kQuarantine, s, drained.size());
  }

  /// Refreshes the lock-free Live mirror from authoritative state. Cycle
  /// boundaries only — the one place shard sizes are consistent.
  void update_live(std::uint64_t cycle_ns) noexcept {
    Live& lv = *live_;
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const std::uint64_t n = shards_[s].size();
      lv.shard_size[s].store(n, std::memory_order_relaxed);
      lv.shard_active[s].store(active_[s] != 0 ? 1 : 0, std::memory_order_relaxed);
      total += n;
    }
    lv.total_size.store(total, std::memory_order_relaxed);
    lv.active_shards.store(dense_.size(), std::memory_order_relaxed);
    lv.cycles.store(stats_.cycles, std::memory_order_relaxed);
    lv.routed.store(stats_.routed, std::memory_order_relaxed);
    lv.putbacks.store(stats_.putbacks, std::memory_order_relaxed);
    lv.rebalances.store(stats_.rebalances, std::memory_order_relaxed);
    lv.quarantines.store(stats_.quarantines, std::memory_order_relaxed);
    lv.hint_skips.store(stats_.hint_skips, std::memory_order_relaxed);
    if (cycle_ns != 0) lv.last_cycle_ns.store(cycle_ns, std::memory_order_relaxed);
  }

  /// Rolling insert sample backing rebalance (overwrite-oldest ring; cheap,
  /// deterministic, biased to recent batches — which is the point: the map
  /// should track where keys are arriving *now*).
  void observe(std::span<const T> items) {
    // Static maps stop sampling after the seed — unless quarantine (or a
    // cycle deadline) is on, where the sample feeds the post-retirement
    // partition re-estimation.
    if (cfg_.rebalance_interval == 0 && !cfg_.quarantine &&
        cfg_.cycle_deadline_ns == 0 && seeded_) {
      return;
    }
    for (const T& v : items) {
      if (sample_.size() < cfg_.sample_capacity) {
        sample_.push_back(v);
      } else {
        sample_[sample_cursor_ % cfg_.sample_capacity] = v;
      }
      ++sample_cursor_;
    }
  }

  std::size_t r_;
  Config cfg_;
  Compare cmp_;
  KeyRangePartitioner<T, Compare> part_;
  std::vector<Shard> shards_;
  bool seeded_ = false;

  // Quarantine bookkeeping: active_[slot] flags live shards; dense_ maps the
  // partition map's [0, active) range index to a physical slot.
  std::vector<std::uint8_t> active_;
  std::vector<std::size_t> dense_;

  ShardedStats stats_;
  std::vector<T> sample_;
  std::size_t sample_cursor_ = 0;

  // Watchdog-driven retirement (attach_watchdog): one channel per shard.
  robustness::PhaseWatchdog* wd_ = nullptr;
  std::vector<std::size_t> wd_ch_;
  std::uint32_t wd_polls_ = 1;

  // Observability: Live is heap-allocated so the heap stays movable (a
  // vector of atomics is not), and gauge callbacks capture the stable Live*
  // — never `this`.
  std::unique_ptr<Live> live_;
  obs::GaugeSet gauges_;

  // Scratch (reused; allocation-free after warm-up).
  std::vector<std::vector<T>> route_buf_, pulled_, redist_;
  std::vector<std::size_t> take_, cycle_slots_;
  std::vector<T> sink_, recovery_, extra_;

  /// One active shard's crew (W > A only): the publication slot its
  /// primary writes and its helpers read, ordered by the barrier's
  /// crossings. bar is null for single-member crews.
  struct CrewSlot {
    std::unique_ptr<SenseBarrier> bar;
    std::size_t ngroups = 0;
    const std::function<void(std::size_t, ServiceCtx&)>* fn = nullptr;
  };

  // Concurrency (Config::workers > 0). The team persists across cycles;
  // pull_fn_/putback_fn_ are members because begin()/wait() pairs (the
  // overlap handshake) must outlive the dispatching call.
  std::unique_ptr<ThreadTeam> team_;
  std::vector<std::exception_ptr> worker_exc_;  ///< first failure per worker
  std::vector<std::vector<T>> worker_sink_;     ///< per-worker putback sinks
  std::vector<std::uint8_t> putback_done_;      ///< per-shard putback landed
  std::function<void(unsigned)> pull_fn_, putback_fn_;
  bool putback_pending_ = false;                ///< overlap handshake open
  std::uint64_t pending_cycle_ns_ = 0;          ///< cycle timer at dispatch

  // Crew tables, rebuilt when the active-shard count changes.
  std::vector<CrewSlot> crews_;
  std::vector<std::vector<ServiceCtx>> crew_ctx_;  ///< [crew][rank]
  std::vector<std::uint8_t> crew_sense_;           ///< per-worker barrier sense
  std::size_t crew_built_for_ = static_cast<std::size_t>(-1);

  // Min-hint scratch (compute_pull_budgets).
  std::vector<std::size_t> pull_k_;   ///< per-slot deletion budget this cycle
  std::vector<std::vector<T>> hint_;  ///< predicted pulled prefixes
  std::vector<std::size_t> hint_take_;
  std::vector<T> hint_fresh_;
};

}  // namespace ph
