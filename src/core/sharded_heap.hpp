// ShardedHeap — a key-range-sharded front end over K independent
// PipelinedParallelHeap engine instances, the first step of ROADMAP's
// "scale past one engine instance" item.
//
// The parallel heap's per-cycle contract — insert a batch, delete the k
// globally smallest — is preserved across shards by a three-part protocol:
//
//   1. Route. Each cycle's insert batch is split by a key-range partition
//      map (KeyRangePartitioner): shard i owns keys in [split[i-1],
//      split[i]). Splits start as quantiles of the first batch and are
//      periodically re-estimated from a rolling sample of recent inserts
//      (the MultiQueues/PIPQ pressure-relief move: relax one hot structure
//      into many, rebalance instead of serializing).
//
//   2. Pull + K-way merge. Every shard runs one pipelined cycle with a full
//      deletion budget of k, yielding its own k smallest as a sorted
//      prefix. The global k smallest are then selected by a K-way
//      tournament over those prefixes (ties resolved by shard index, which
//      under multiset key semantics matches the sorted-multiset oracle
//      exactly). The global batch is a subset of the union of per-shard
//      prefixes by construction, so the merge never needs to look past
//      them. A shard whose local minimum exceeds another shard's k-th key
//      contributes nothing — its whole prefix is returned in step 3 — and
//      an empty shard participates as an empty prefix.
//
//   3. Putback. Prefix items that lost the tournament are re-inserted into
//      the shard they came from via an insert-only cycle (k = 0). Putback
//      traffic is the price of not peeking across shards and is counted
//      (ShardedStats::putbacks, telemetry kShardPutbacks); a well-balanced
//      partition map keeps it near zero because the winning prefix comes
//      from few shards (merge width ≈ 1).
//
// Rebalancing never migrates stored items: a new partition map only routes
// *future* inserts, so shard contents may overlap in key range after a
// rebalance. Step 2 deliberately assumes nothing about range disjointness —
// the tournament is a general K-way merge — which is what makes "rebalance
// while items are in flight" safe (test_sharded.cpp pins this).
//
// With K = 1 the protocol degenerates to exactly one pipelined cycle per
// global cycle — no routing decisions, no putback — so sharded_heap<K=1>
// is bit-for-bit the unsharded PipelinedParallelHeap (pinned by
// test_sharded.cpp and the differential harness).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/pipelined_heap.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics_registry.hpp"
#include "robustness/failpoint.hpp"
#include "robustness/watchdog.hpp"
#include "telemetry/telemetry.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace ph {

/// Sharding counters, additive to each shard's own HeapStats/PipelineStats.
struct ShardedStats {
  std::uint64_t cycles = 0;
  std::uint64_t routed = 0;          ///< items routed to shards (inserts)
  std::uint64_t routed_max_sum = 0;  ///< per-cycle max shard share, summed
  std::uint64_t putbacks = 0;        ///< pulled-but-not-taken items returned
  std::uint64_t rebalances = 0;      ///< partition-map re-estimations applied
  std::uint64_t merge_width_sum = 0; ///< shards contributing >=1 item, summed
  std::uint64_t quarantines = 0;     ///< shards retired by fault or deadline

  /// Mean routing imbalance: K * max-share / fair-share (1.0 = perfectly
  /// balanced, K = everything lands on one shard). NaN-free: 0 when idle.
  double imbalance(std::size_t shards) const noexcept {
    if (routed == 0) return 0.0;
    return static_cast<double>(shards) * static_cast<double>(routed_max_sum) /
           static_cast<double>(routed);
  }
  /// Mean number of shards contributing to a deletion batch.
  double avg_merge_width() const noexcept {
    if (cycles == 0) return 0.0;
    return static_cast<double>(merge_width_sum) / static_cast<double>(cycles);
  }
};

/// Key-range partition map: K-1 sorted split values of T; an item routes to
/// the number of splits at or below it. Static splits plus sample-based
/// re-estimation (quantiles of a recent-insert sample).
template <typename T, typename Compare = std::less<T>>
class KeyRangePartitioner {
 public:
  explicit KeyRangePartitioner(std::size_t shards, Compare cmp = Compare())
      : shards_(shards), cmp_(std::move(cmp)) {
    PH_ASSERT(shards_ >= 1);
  }

  std::size_t shards() const noexcept { return shards_; }

  /// Partition of `v`: the count of splits <= v, i.e. shard i owns
  /// [split[i-1], split[i]). Total: every value of T routes to exactly one
  /// shard, and route is monotone under Compare.
  std::size_t route(const T& v) const {
    const auto it = std::upper_bound(splits_.begin(), splits_.end(), v,
                                     [this](const T& a, const T& b) {
                                       return cmp_(a, b);
                                     });
    return static_cast<std::size_t>(it - splits_.begin());
  }

  /// Current split values (size shards-1; empty until the first rebalance
  /// when K > 1, which routes everything to the last shard — valid, merely
  /// unbalanced).
  const std::vector<T>& splits() const noexcept { return splits_; }

  /// Installs an explicit map (must be sorted ascending, size shards-1).
  void set_splits(std::vector<T> splits) {
    PH_ASSERT(splits.size() + 1 == shards_);
    PH_ASSERT(std::is_sorted(splits.begin(), splits.end(),
                             [this](const T& a, const T& b) { return cmp_(a, b); }));
    splits_ = std::move(splits);
  }

  /// Re-estimates the splits as the K-quantiles of `sample`. An empty
  /// sample (or K = 1) leaves the map unchanged. Duplicate-heavy samples
  /// may produce equal splits; route() stays total (the duplicated range
  /// simply has empty shards between its bounds).
  void rebalance(std::span<const T> sample) {
    if (shards_ == 1 || sample.empty()) return;
    scratch_.assign(sample.begin(), sample.end());
    std::sort(scratch_.begin(), scratch_.end(),
              [this](const T& a, const T& b) { return cmp_(a, b); });
    splits_.clear();
    splits_.reserve(shards_ - 1);
    for (std::size_t i = 1; i < shards_; ++i) {
      splits_.push_back(scratch_[i * scratch_.size() / shards_]);
    }
  }

 private:
  std::size_t shards_;
  Compare cmp_;
  std::vector<T> splits_;
  std::vector<T> scratch_;
};

template <typename T, typename Compare = std::less<T>>
class ShardedHeap {
 public:
  using Shard = PipelinedParallelHeap<T, Compare>;
  using value_type = T;
  using ServiceCtx = typename Shard::ServiceCtx;

  struct Config {
    std::size_t shards = 1;
    /// Re-estimate the partition map every this many cycles from the
    /// rolling insert sample (0 = static splits after the seeding batch).
    std::size_t rebalance_interval = 0;
    /// Rolling sample size backing re-estimation.
    std::size_t sample_capacity = 1024;
    /// Graceful degradation: a shard whose cycle throws an injected failure
    /// (while quarantine is on and a fail-point is armed) is checkpointed,
    /// rolled back, drained, and retired — its items fold into this cycle's
    /// tournament and its key range is redistributed across the survivors.
    /// The last active shard is never quarantined.
    bool quarantine = false;
    /// Retire a shard whose completed cycle exceeded this wall-clock budget
    /// (0 = no deadline). Same drain/redistribute path as a fault, except
    /// the shard's pulled prefix (a valid deletion candidate set) joins the
    /// recovery run instead of being rolled back.
    std::uint64_t cycle_deadline_ns = 0;
  };

  ShardedHeap(std::size_t node_capacity, Config cfg, Compare cmp = Compare())
      : r_(node_capacity),
        cfg_(cfg),
        cmp_(cmp),
        part_(cfg.shards == 0 ? 1 : cfg.shards, cmp) {
    PH_ASSERT(r_ >= 1);
    if (cfg_.shards == 0) cfg_.shards = 1;
    if (cfg_.sample_capacity == 0) cfg_.sample_capacity = 1;
    shards_.reserve(cfg_.shards);
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      shards_.emplace_back(r_, cmp_);
    }
    route_buf_.resize(cfg_.shards);
    pulled_.resize(cfg_.shards);
    take_.resize(cfg_.shards);
    redist_.resize(cfg_.shards);
    live_ = std::make_unique<Live>(cfg_.shards);
    reset_active();
    update_live(0);
  }

  ShardedHeap(std::size_t node_capacity, std::size_t shards, Compare cmp = Compare())
      : ShardedHeap(node_capacity, Config{shards, 0, 1024}, std::move(cmp)) {}

  std::size_t node_capacity() const noexcept { return r_; }
  std::size_t num_shards() const noexcept { return shards_.size(); }

  std::size_t size() const noexcept {
    std::size_t n = 0;
    for (const Shard& s : shards_) n += s.size();
    return n;
  }
  bool empty() const noexcept { return size() == 0; }

  const ShardedStats& sharded_stats() const noexcept { return stats_; }
  const KeyRangePartitioner<T, Compare>& partitioner() const noexcept { return part_; }
  Shard& shard(std::size_t i) noexcept { return shards_[i]; }

  /// Shards still serving traffic (== num_shards() until a quarantine).
  std::size_t active_shards() const noexcept { return dense_.size(); }
  bool shard_active(std::size_t i) const noexcept { return active_[i] != 0; }

  /// Cycle-boundary snapshot of the whole sharded structure: the partition
  /// map, the active mask, and every shard's contents. The rolling insert
  /// sample is deliberately NOT captured — it only steers *future*
  /// rebalances, and the delete-min stream is exact under any partition map
  /// (the tournament assumes nothing about range disjointness), so dropping
  /// it cannot change observable output. Same O(n) contract as the
  /// pipelined heap's Snapshot; valid at any cycle boundary.
  struct Snapshot {
    std::vector<T> splits;
    std::vector<std::uint8_t> active;
    bool seeded = false;
    std::vector<std::vector<T>> shard_items;
  };

  Snapshot snapshot() const {
    Snapshot s;
    s.splits = part_.splits();
    s.active = active_;
    s.seeded = seeded_;
    s.shard_items.reserve(shards_.size());
    for (const Shard& sh : shards_) s.shard_items.push_back(sh.snapshot().items);
    return s;
  }

  /// Rebuilds the structure from a snapshot: partition map, active mask,
  /// and per-shard contents all return to their captured values (the
  /// rolling sample restarts empty — see snapshot()).
  void restore(const Snapshot& s) {
    PH_ASSERT(s.shard_items.size() == shards_.size());
    PH_ASSERT(s.active.size() == shards_.size());
    active_ = s.active;
    dense_.clear();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      if (active_[i] != 0) dense_.push_back(i);
    }
    PH_ASSERT(!dense_.empty());
    part_ = KeyRangePartitioner<T, Compare>(dense_.size(), cmp_);
    if (s.splits.size() + 1 == dense_.size()) {
      part_.set_splits(s.splits);
      seeded_ = s.seeded;
    } else {
      seeded_ = false;  // pre-seed snapshot (or width mismatch): reseed lazily
    }
    sample_.clear();
    sample_cursor_ = 0;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      shards_[i].build(s.shard_items[i]);
    }
    update_live(0);
  }

  /// Wires watchdog stall verdicts into shard retirement: registers one
  /// heartbeat channel per shard (beaten at each shard-cycle completion) and
  /// quarantines any ACTIVE shard whose channel has been stalled for
  /// `polls_to_quarantine` consecutive polls — the same drain/redistribute
  /// retirement as the deadline path, applied at the next cycle boundary
  /// (the quiescent point where the shard's state is consistent). The last
  /// active shard is never retired. Call before the first cycle.
  void attach_watchdog(robustness::PhaseWatchdog& wd,
                       std::uint32_t polls_to_quarantine = 1) {
    wd_ = &wd;
    wd_polls_ = polls_to_quarantine == 0 ? 1 : polls_to_quarantine;
    wd_ch_.clear();
    wd_ch_.reserve(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      wd_ch_.push_back(wd.add_channel("shard-" + std::to_string(s)));
    }
  }

  /// The watchdog channel id serving shard `s` (tests beat/poke these).
  std::size_t watchdog_channel(std::size_t s) const noexcept { return wd_ch_[s]; }

  /// Lock-free mirror of the structure's live state, refreshed at every
  /// cycle boundary (and by build/restore). This is what gauge callbacks
  /// read: a scrape thread never touches the real shards, so it can run
  /// mid-cycle without synchronizing with the engine.
  struct Live {
    explicit Live(std::size_t shards)
        : shard_size(shards), shard_active(shards) {}
    std::vector<std::atomic<std::uint64_t>> shard_size;
    std::vector<std::atomic<std::uint64_t>> shard_active;  ///< 0/1
    std::atomic<std::uint64_t> active_shards{0};
    std::atomic<std::uint64_t> total_size{0};
    std::atomic<std::uint64_t> cycles{0};
    std::atomic<std::uint64_t> routed{0};
    std::atomic<std::uint64_t> putbacks{0};
    std::atomic<std::uint64_t> rebalances{0};
    std::atomic<std::uint64_t> quarantines{0};
    std::atomic<std::uint64_t> last_cycle_ns{0};
  };

  const Live& live() const noexcept { return *live_; }

  /// Publishes this heap's live state as named gauges in the process-wide
  /// MetricsRegistry (per-shard size/liveness plus cycle/route/putback
  /// totals a scraper turns into rates). `heap` labels every gauge so
  /// multiple instances coexist. Deregistration is automatic (RAII) when
  /// the heap dies. Call once, before the first scrape matters.
  void register_gauges(const std::string& heap = "sharded") {
    gauges_.clear();
    Live* lv = live_.get();
    auto lab = [&heap](std::initializer_list<std::pair<std::string, std::string>> more) {
      std::vector<std::pair<std::string, std::string>> ls{{"heap", heap}};
      ls.insert(ls.end(), more.begin(), more.end());
      return ls;
    };
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      gauges_.add(
          obs::GaugeDesc{"shard_size", lab({{"shard", std::to_string(s)}}),
                         "Items held by one shard (cycle-boundary mirror)."},
          [lv, s] { return static_cast<double>(
                        lv->shard_size[s].load(std::memory_order_relaxed)); });
      gauges_.add(
          obs::GaugeDesc{"shard_active", lab({{"shard", std::to_string(s)}}),
                         "1 while the shard serves traffic, 0 once quarantined."},
          [lv, s] { return static_cast<double>(
                        lv->shard_active[s].load(std::memory_order_relaxed)); });
    }
    struct Simple { const char* name; const char* help; std::atomic<std::uint64_t> Live::*field; };
    static constexpr Simple kSimple[] = {
        {"active_shards", "Shards currently serving traffic.", &Live::active_shards},
        {"heap_size", "Total items across all shards.", &Live::total_size},
        {"heap_cycles", "Sharded cycles completed.", &Live::cycles},
        {"heap_routed", "Items routed to shards (inserts).", &Live::routed},
        {"heap_putbacks", "Prefix items returned after losing the tournament.", &Live::putbacks},
        {"heap_rebalances", "Partition-map re-estimations applied.", &Live::rebalances},
        {"heap_quarantines", "Shards retired by fault, deadline, or verdict.", &Live::quarantines},
        {"heap_last_cycle_ns", "Wall-clock duration of the last sharded cycle.", &Live::last_cycle_ns},
    };
    for (const Simple& g : kSimple) {
      auto field = g.field;
      gauges_.add(obs::GaugeDesc{g.name, lab({}), g.help},
                  [lv, field] { return static_cast<double>(
                                    (lv->*field).load(std::memory_order_relaxed)); });
    }
  }

  /// Forces an immediate partition-map re-estimation from the rolling
  /// sample (testing/tuning; the interval path calls this too).
  void rebalance_now() {
    if (sample_.empty() || active_shards() == 1) return;
    part_.rebalance(std::span<const T>(sample_));
    ++stats_.rebalances;
    telemetry::count(telemetry::Counter::kShardRebalances);
    obs::flight(obs::FlightKind::kRebalance, active_shards());
    if (live_) live_->rebalances.store(stats_.rebalances, std::memory_order_relaxed);
  }

  /// Replaces the content: seeds the partition map from `items` and
  /// bulk-loads each shard with its range. Quarantined shards are
  /// reactivated (build is a full reset).
  void build(std::span<const T> items) {
    reset_active();
    observe(items);
    if (!seeded_ && !items.empty()) {
      part_.rebalance(items);
      seeded_ = true;
    }
    for (auto& b : route_buf_) b.clear();
    for (const T& v : items) route_buf_[slot_for(v)].push_back(v);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      shards_[s].build(route_buf_[s]);
    }
    update_live(0);
  }

  /// One sharded insert-delete cycle: routes `fresh` across the shards,
  /// pulls every shard's k-smallest prefix through one pipelined cycle
  /// each, K-way-merges the global k smallest into `out` (sorted), and
  /// puts losing prefix items back. Returns the number deleted.
  std::size_t cycle(std::span<const T> fresh, std::size_t k, std::vector<T>& out) {
    PH_ASSERT_MSG(k <= r_, "cycle(): k must not exceed the node capacity r");
    ++stats_.cycles;
    recovery_.clear();

    // Causal identity: every span recorded during this cycle — route, each
    // shard's pipeline levels (ThreadTeam propagates the context into its
    // workers), merge, putback — carries this id, so the Chrome exporter can
    // stitch one cycle across all K shards into a single flow. The flight
    // recorder logs the same id, linking black-box events to trace spans.
    const std::uint64_t trace_id = telemetry::new_trace_id();
    telemetry::TraceCtxScope trace_scope(trace_id);
    obs::flight(obs::FlightKind::kCycle, trace_id, fresh.size());
    Timer cycle_timer;

    // Phase 0: watchdog verdicts. A shard whose heartbeat channel has been
    // stalled for wd_polls_ consecutive polls is retired here, at the cycle
    // boundary — its state is quiescent and valid, so it takes the same
    // drain/redistribute path as a deadline miss (extra_ empty) and its
    // items fold into THIS cycle's tournament.
    if (wd_ != nullptr) {
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        if (active_[s] == 0 || active_shards() <= 1) continue;
        if (wd_->consecutive_stalls(wd_ch_[s]) >= wd_polls_) {
          extra_.clear();
          // The shard's last pulled prefix was already put back (phase 4 of
          // the previous cycle), so its survivors are inside the shard and
          // will drain into the recovery run — the stale pulled_ copy must
          // not re-enter the tournament.
          pulled_[s].clear();
          quarantine_shard(s);
        }
      }
    }

    // Phase 1: route. The first nonempty batch seeds the partition map.
    {
      telemetry::SpanScope span(telemetry::Phase::kShardRoute);
      obs::flight(obs::FlightKind::kPhase,
                  static_cast<std::uint64_t>(telemetry::Phase::kShardRoute),
                  trace_id);
      if (!seeded_ && !fresh.empty()) {
        part_.rebalance(fresh);
        seeded_ = true;
      }
      for (auto& b : route_buf_) b.clear();
      for (const T& v : fresh) route_buf_[slot_for(v)].push_back(v);
    }
    if (!fresh.empty()) {
      std::size_t mx = 0;
      for (const auto& b : route_buf_) mx = std::max(mx, b.size());
      stats_.routed += fresh.size();
      stats_.routed_max_sum += mx;
      telemetry::count(telemetry::Counter::kShardRouted, fresh.size());
      observe(fresh);
    }

    // Phase 2: pull per-shard prefixes. Every active shard cycles every
    // global cycle — even an empty one — so parked update processes keep
    // advancing at the global cycle rate. A shard that trips a fail-point
    // here (or finishes past its deadline) is quarantined: rolled back to
    // its pre-cycle checkpoint (fault path only), drained, and folded into
    // this cycle's tournament via the recovery run.
    cycle_slots_.assign(dense_.begin(), dense_.end());
    for (const std::size_t s : cycle_slots_) {
      pulled_[s].clear();
      telemetry::TraceTagScope shard_tag(static_cast<std::uint32_t>(s));
      // Checkpointing is O(shard size); only pay for it when an injected
      // failure can actually fire and we have a survivor to fail over to.
      const bool guard = cfg_.quarantine && active_shards() > 1 &&
                         robustness::any_armed();
      const bool timed = cfg_.cycle_deadline_ns > 0;
      if (!guard && !timed) {
        shards_[s].cycle(route_buf_[s], k, pulled_[s]);
        if (wd_ != nullptr) wd_->beat(wd_ch_[s]);
        continue;
      }
      typename Shard::Snapshot snap;
      if (guard) snap = shards_[s].snapshot();
      Timer t;
      try {
        if (guard) robustness::fire_fault(robustness::FailSite::kShardCycle);
        shards_[s].cycle(route_buf_[s], k, pulled_[s]);
      } catch (const robustness::InjectedFailure&) {
        if (!guard) throw;
        // The cycle died mid-flight: the shard may be poisoned and its
        // routed batch was never committed. Roll back to the checkpoint,
        // discard any partial pull, and retire the shard; checkpoint items
        // plus the uncommitted routed batch form its recovery content.
        shards_[s].restore(snap);
        pulled_[s].clear();
        extra_.assign(route_buf_[s].begin(), route_buf_[s].end());
        std::sort(extra_.begin(), extra_.end(), cmp_);
        quarantine_shard(s);
        robustness::note_recovery(robustness::FailSite::kShardCycle);
        continue;
      }
      if (timed && t.nanos() > cfg_.cycle_deadline_ns && active_shards() > 1) {
        // Completed, but too slow to keep on the critical path. State is
        // valid: its pulled prefix is a legitimate candidate set, so it
        // joins the recovery run rather than being rolled back.
        extra_.swap(pulled_[s]);  // already sorted
        pulled_[s].clear();
        quarantine_shard(s);
        continue;
      }
      if (wd_ != nullptr) wd_->beat(wd_ch_[s]);
    }

    // Phase 3: K-way tournament over the sorted prefixes (plus the recovery
    // run, if a quarantine happened this cycle); ties go to the lowest
    // shard index, with the recovery run losing all ties (deterministic;
    // invisible under multiset keys).
    std::size_t taken = 0;
    std::size_t rec_take = 0;
    {
      telemetry::SpanScope span(telemetry::Phase::kShardMerge);
      obs::flight(obs::FlightKind::kPhase,
                  static_cast<std::uint64_t>(telemetry::Phase::kShardMerge),
                  trace_id);
      std::fill(take_.begin(), take_.end(), std::size_t{0});
      while (taken < k) {
        std::size_t best = shards_.size();
        for (std::size_t s = 0; s < shards_.size(); ++s) {
          if (take_[s] >= pulled_[s].size()) continue;
          if (best == shards_.size() ||
              cmp_(pulled_[s][take_[s]], pulled_[best][take_[best]])) {
            best = s;
          }
        }
        const bool rec_has = rec_take < recovery_.size();
        if (best == shards_.size()) {
          if (!rec_has) break;  // all runs exhausted
          out.push_back(recovery_[rec_take++]);
        } else if (rec_has &&
                   cmp_(recovery_[rec_take], pulled_[best][take_[best]])) {
          out.push_back(recovery_[rec_take++]);
        } else {
          out.push_back(pulled_[best][take_[best]++]);
        }
        ++taken;
      }
    }
    std::size_t width = 0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (take_[s] > 0) ++width;
    }
    if (rec_take > 0) ++width;
    stats_.merge_width_sum += width;
    telemetry::count(telemetry::Counter::kShardMergeWidth, width);

    // Phase 4: put losing prefix suffixes back where they came from
    // (insert-only cycles; k = 0 advances nothing out of the shard).
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (take_[s] >= pulled_[s].size()) continue;
      telemetry::TraceTagScope shard_tag(static_cast<std::uint32_t>(s));
      const auto rest = std::span<const T>(pulled_[s]).subspan(take_[s]);
      sink_.clear();
      shards_[s].cycle(rest, 0, sink_);
      stats_.putbacks += rest.size();
      telemetry::count(telemetry::Counter::kShardPutbacks, rest.size());
    }

    // Phase 4b: redistribute the untaken recovery remainder across the
    // survivors through the same insert-only path — routed by the (already
    // rebuilt) partition map, so a quarantined shard's key range is served
    // by the survivors from the very next route.
    if (rec_take < recovery_.size()) {
      for (auto& b : redist_) b.clear();
      for (std::size_t i = rec_take; i < recovery_.size(); ++i) {
        redist_[slot_for(recovery_[i])].push_back(recovery_[i]);
      }
      for (const std::size_t s : dense_) {
        if (redist_[s].empty()) continue;
        sink_.clear();
        shards_[s].cycle(redist_[s], 0, sink_);
        stats_.putbacks += redist_[s].size();
        telemetry::count(telemetry::Counter::kShardPutbacks, redist_[s].size());
      }
    }
    recovery_.clear();

    // Phase 5: periodic partition-map re-estimation, always between cycles
    // (never while shard pipelines are mid-half-step).
    if (cfg_.rebalance_interval != 0 &&
        stats_.cycles % cfg_.rebalance_interval == 0) {
      rebalance_now();
    }
    update_live(cycle_timer.nanos());
    return taken;
  }

  /// Verifies every shard's structural invariants (drains their pipelines).
  bool check_invariants(std::string* why = nullptr) {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      std::string inner;
      if (!shards_[s].check_invariants(&inner)) {
        if (why) *why = "shard " + std::to_string(s) + ": " + inner;
        return false;
      }
    }
    return true;
  }

  /// All contents ascending (drains; testing/diagnostics).
  std::vector<T> sorted_contents() {
    std::vector<T> all;
    for (Shard& s : shards_) {
      const std::vector<T> part = s.sorted_contents();
      all.insert(all.end(), part.begin(), part.end());
    }
    std::sort(all.begin(), all.end(), cmp_);
    return all;
  }

 private:
  /// Slot (index into shards_) serving value v under the current partition
  /// map: the map spans only ACTIVE shards; dense_ translates its range
  /// index to a physical slot.
  std::size_t slot_for(const T& v) const { return dense_[part_.route(v)]; }

  /// Reactivates every shard and restores the full-width partition map
  /// (no-op unless a quarantine actually happened; ctor bootstrap aside).
  void reset_active() {
    if (!active_.empty() && dense_.size() == shards_.size()) return;
    active_.assign(cfg_.shards, std::uint8_t{1});
    dense_.resize(cfg_.shards);
    for (std::size_t i = 0; i < cfg_.shards; ++i) dense_[i] = i;
    if (part_.shards() != cfg_.shards) {
      part_ = KeyRangePartitioner<T, Compare>(cfg_.shards, cmp_);
      seeded_ = false;
      if (!sample_.empty()) {
        part_.rebalance(std::span<const T>(sample_));
        seeded_ = true;
      }
    }
  }

  /// Retires shard `s`: drains it (plus `extra_`, the caller-supplied
  /// sorted items stranded by the failure) into the cycle's recovery run,
  /// removes it from the routing table, and narrows the partition map to
  /// the survivors — re-estimated from the rolling sample so the dead
  /// shard's key range splits across them instead of piling onto one
  /// neighbor. Conservation: recovery_ gains exactly the shard's committed
  /// items plus extra_; nothing else moves.
  void quarantine_shard(std::size_t s) {
    PH_ASSERT_MSG(active_shards() > 1, "cannot quarantine the last shard");
    PH_ASSERT(active_[s] != 0);
    active_[s] = 0;
    dense_.clear();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      if (active_[i] != 0) dense_.push_back(i);
    }
    part_ = KeyRangePartitioner<T, Compare>(dense_.size(), cmp_);
    seeded_ = false;
    if (!sample_.empty()) {
      part_.rebalance(std::span<const T>(sample_));
      seeded_ = true;
    }
    const std::vector<T> drained = shards_[s].sorted_contents();
    // sorted_contents() copies; actually empty the retired shard so its
    // items *move* into the recovery run — otherwise size()/empty() keep
    // counting the dead shard's stale copy forever.
    shards_[s].build(std::span<const T>{});
    const std::size_t mid = recovery_.size();
    recovery_.insert(recovery_.end(), drained.begin(), drained.end());
    recovery_.insert(recovery_.end(), extra_.begin(), extra_.end());
    extra_.clear();
    // Both pieces are sorted; a repeated quarantine in one cycle appends
    // another pair — sort the whole (cold-path) run once.
    std::sort(recovery_.begin() + static_cast<std::ptrdiff_t>(mid), recovery_.end(),
              cmp_);
    std::inplace_merge(recovery_.begin(),
                       recovery_.begin() + static_cast<std::ptrdiff_t>(mid),
                       recovery_.end(),
                       [this](const T& a, const T& b) { return cmp_(a, b); });
    ++stats_.quarantines;
    telemetry::count(telemetry::Counter::kShardQuarantines);
    obs::flight(obs::FlightKind::kQuarantine, s, drained.size());
  }

  /// Refreshes the lock-free Live mirror from authoritative state. Cycle
  /// boundaries only — the one place shard sizes are consistent.
  void update_live(std::uint64_t cycle_ns) noexcept {
    Live& lv = *live_;
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const std::uint64_t n = shards_[s].size();
      lv.shard_size[s].store(n, std::memory_order_relaxed);
      lv.shard_active[s].store(active_[s] != 0 ? 1 : 0, std::memory_order_relaxed);
      total += n;
    }
    lv.total_size.store(total, std::memory_order_relaxed);
    lv.active_shards.store(dense_.size(), std::memory_order_relaxed);
    lv.cycles.store(stats_.cycles, std::memory_order_relaxed);
    lv.routed.store(stats_.routed, std::memory_order_relaxed);
    lv.putbacks.store(stats_.putbacks, std::memory_order_relaxed);
    lv.rebalances.store(stats_.rebalances, std::memory_order_relaxed);
    lv.quarantines.store(stats_.quarantines, std::memory_order_relaxed);
    if (cycle_ns != 0) lv.last_cycle_ns.store(cycle_ns, std::memory_order_relaxed);
  }

  /// Rolling insert sample backing rebalance (overwrite-oldest ring; cheap,
  /// deterministic, biased to recent batches — which is the point: the map
  /// should track where keys are arriving *now*).
  void observe(std::span<const T> items) {
    // Static maps stop sampling after the seed — unless quarantine (or a
    // cycle deadline) is on, where the sample feeds the post-retirement
    // partition re-estimation.
    if (cfg_.rebalance_interval == 0 && !cfg_.quarantine &&
        cfg_.cycle_deadline_ns == 0 && seeded_) {
      return;
    }
    for (const T& v : items) {
      if (sample_.size() < cfg_.sample_capacity) {
        sample_.push_back(v);
      } else {
        sample_[sample_cursor_ % cfg_.sample_capacity] = v;
      }
      ++sample_cursor_;
    }
  }

  std::size_t r_;
  Config cfg_;
  Compare cmp_;
  KeyRangePartitioner<T, Compare> part_;
  std::vector<Shard> shards_;
  bool seeded_ = false;

  // Quarantine bookkeeping: active_[slot] flags live shards; dense_ maps the
  // partition map's [0, active) range index to a physical slot.
  std::vector<std::uint8_t> active_;
  std::vector<std::size_t> dense_;

  ShardedStats stats_;
  std::vector<T> sample_;
  std::size_t sample_cursor_ = 0;

  // Watchdog-driven retirement (attach_watchdog): one channel per shard.
  robustness::PhaseWatchdog* wd_ = nullptr;
  std::vector<std::size_t> wd_ch_;
  std::uint32_t wd_polls_ = 1;

  // Observability: Live is heap-allocated so the heap stays movable (a
  // vector of atomics is not), and gauge callbacks capture the stable Live*
  // — never `this`.
  std::unique_ptr<Live> live_;
  obs::GaugeSet gauges_;

  // Scratch (reused; allocation-free after warm-up).
  std::vector<std::vector<T>> route_buf_, pulled_, redist_;
  std::vector<std::size_t> take_, cycle_slots_;
  std::vector<T> sink_, recovery_, extra_;
};

}  // namespace ph
