// Sorted-run kernels.
//
// Every maintenance step of a parallel heap is a merge of small sorted runs:
// insert-update merges the carried set with a node; delete-update selects the
// smallest |v| items of v ∪ left ∪ right and redistributes the leftovers.
// These kernels are the entire inner loop of the data structure, so they are
// kept free of allocation (callers supply output storage) and of virtual
// dispatch.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "util/assert.hpp"

namespace ph {

/// True iff `s` is sorted ascending under `cmp` (i.e. no cmp(s[i+1], s[i])).
template <typename T, typename Compare>
bool is_sorted_run(std::span<const T> s, Compare cmp) {
  for (std::size_t i = 1; i < s.size(); ++i) {
    if (cmp(s[i], s[i - 1])) return false;
  }
  return true;
}

/// Stable two-way merge of sorted runs `a` and `b`, appended to `out`.
/// Ties keep `a`'s elements first.
template <typename T, typename Compare>
void merge2(std::span<const T> a, std::span<const T> b, std::vector<T>& out,
            Compare cmp) {
  std::size_t i = 0, j = 0;
  out.reserve(out.size() + a.size() + b.size());
  while (i < a.size() && j < b.size()) {
    if (cmp(b[j], a[i])) {
      out.push_back(b[j++]);
    } else {
      out.push_back(a[i++]);
    }
  }
  out.insert(out.end(), a.begin() + static_cast<std::ptrdiff_t>(i), a.end());
  out.insert(out.end(), b.begin() + static_cast<std::ptrdiff_t>(j), b.end());
}

/// Result of a three-way smallest-k selection: how many items were taken
/// from the prefix of each input run (taken[0] + taken[1] + taken[2] == k).
using Take3 = std::array<std::size_t, 3>;

/// Selects the `k` smallest items of the union of three sorted runs,
/// appending them in sorted order to `out`. Returns the per-run prefix
/// lengths consumed. Ties are resolved in run order (a, then b, then c),
/// which makes the operation deterministic.
template <typename T, typename Compare>
Take3 select_smallest3(std::span<const T> a, std::span<const T> b,
                       std::span<const T> c, std::size_t k, std::vector<T>& out,
                       Compare cmp) {
  PH_ASSERT(k <= a.size() + b.size() + c.size());
  Take3 taken{0, 0, 0};
  out.reserve(out.size() + k);
  for (std::size_t n = 0; n < k; ++n) {
    // Pick the smallest current head among the three runs.
    int best = -1;
    for (int run = 0; run < 3; ++run) {
      const std::span<const T>& s = run == 0 ? a : (run == 1 ? b : c);
      if (taken[static_cast<std::size_t>(run)] >= s.size()) continue;
      if (best < 0) {
        best = run;
        continue;
      }
      const std::span<const T>& bs = best == 0 ? a : (best == 1 ? b : c);
      if (cmp(s[taken[static_cast<std::size_t>(run)]],
              bs[taken[static_cast<std::size_t>(best)]])) {
        best = run;
      }
    }
    PH_ASSERT(best >= 0);
    const std::span<const T>& s = best == 0 ? a : (best == 1 ? b : c);
    out.push_back(s[taken[static_cast<std::size_t>(best)]]);
    ++taken[static_cast<std::size_t>(best)];
  }
  return taken;
}

/// Merge `a` and `b`, writing the `keep` smallest into `kept` and the rest
/// into `rest` (both appended; both outputs sorted). This is the node-local
/// step of insert-update: the node keeps its `r` smallest, the remainder is
/// carried down.
template <typename T, typename Compare>
void merge2_split(std::span<const T> a, std::span<const T> b, std::size_t keep,
                  std::vector<T>& kept, std::vector<T>& rest, Compare cmp) {
  PH_ASSERT(keep <= a.size() + b.size());
  std::size_t i = 0, j = 0;
  auto emit = [&](const T& v, std::size_t n) {
    if (n < keep) {
      kept.push_back(v);
    } else {
      rest.push_back(v);
    }
  };
  std::size_t n = 0;
  while (i < a.size() && j < b.size()) {
    if (cmp(b[j], a[i])) {
      emit(b[j++], n++);
    } else {
      emit(a[i++], n++);
    }
  }
  while (i < a.size()) emit(a[i++], n++);
  while (j < b.size()) emit(b[j++], n++);
}

/// K-way merge of sorted runs into `out` (appended). Used by the workload
/// generators and the multi-way-merge example; runs a simple tournament over
/// the run heads, which is optimal for the small fan-ins used here.
template <typename T, typename Compare>
void merge_k(std::span<const std::span<const T>> runs, std::vector<T>& out,
             Compare cmp) {
  std::vector<std::size_t> pos(runs.size(), 0);
  std::size_t remaining = 0;
  for (const auto& r : runs) remaining += r.size();
  out.reserve(out.size() + remaining);
  while (remaining-- > 0) {
    int best = -1;
    for (std::size_t r = 0; r < runs.size(); ++r) {
      if (pos[r] >= runs[r].size()) continue;
      if (best < 0 || cmp(runs[r][pos[r]],
                          runs[static_cast<std::size_t>(best)]
                              [pos[static_cast<std::size_t>(best)]])) {
        best = static_cast<int>(r);
      }
    }
    PH_ASSERT(best >= 0);
    out.push_back(
        runs[static_cast<std::size_t>(best)][pos[static_cast<std::size_t>(best)]++]);
  }
}

}  // namespace ph
