// ParallelHeap — the data structure of Deo & Prasad, "Parallel Heap: An
// Optimal Parallel Priority Queue" (ICPP 1990), with *synchronous*
// maintenance: every insert-update and delete-update process initiated by an
// operation is run to quiescence before the operation returns.
//
// Structure. A complete d-ary tree of nodes (d = 2, the paper's binary
// shape, unless configured otherwise; node i's children are d·i+1 … d·i+d).
// Each node holds up to r items ("node capacity"), kept sorted ascending
// under Compare. Only the last node may hold fewer than r items.
// The PARALLEL HEAP CONDITION: every item of a node precedes-or-equals every
// item of each child (max(node) ≤ min(child)). Hence the root node holds
// exactly the r smallest items of the whole heap, already sorted — a batch
// delete-min of up to r items is O(1) plus repair.
//
// Maintenance.
//  * insert-update: a sorted carried set travels from the root along the
//    ancestor path of the tail (target) node; each full node on the path
//    keeps the r smallest of (node ∪ carried), the remainder is carried
//    down; the survivors land in the target node. Single path, O(r) work
//    per level.
//  * delete-update: after the root batch is deleted, substitute items taken
//    from the heap's tail refill the root, violating the condition. Repair
//    at node v selects the smallest |v| items of v ∪ left ∪ right; leftover
//    items that originated in a child return to that child; displaced
//    substitute ("dirty") items fill the children's vacancies by count, and
//    the repair recurses exactly into the children that received dirty
//    items. Dirty volume is conserved across a level (≤ r per deletion),
//    which is the property that makes the pipelined variant
//    (pipelined_heap.hpp) schedulable level by level.
//
// This synchronous variant is the semantic reference: it is oracle-tested
// against a sorted multiset, and the pipelined/engine variants are
// differential-tested against it.
//
// Requirements on T: movable and default-constructible (the node arena is a
// contiguous std::vector<T>). Compare must be a strict weak order; the heap
// is a min-heap under Compare. Batch operations are deterministic: ties are
// broken by run order, so two heaps fed identical operation sequences hold
// identical arenas.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/node_fix.hpp"
#include "core/sorted_ops.hpp"
#include "util/assert.hpp"

namespace ph {

/// Operation counters exposed for the hardware-independent scalability
/// analysis (see DESIGN.md §2): `span_*` counters accumulate the critical
/// path, i.e. the deepest chain of node repairs per operation, while the
/// plain counters accumulate total work.
struct HeapStats {
  std::uint64_t cycles = 0;            ///< combined insert+delete cycles run
  std::uint64_t items_deleted = 0;     ///< items handed to callers
  std::uint64_t items_inserted = 0;    ///< items accepted from callers
  std::uint64_t nodes_touched = 0;     ///< node repairs + path merges
  std::uint64_t items_merged = 0;      ///< total merged items across repairs
  std::uint64_t delete_procs = 0;      ///< delete-update node services
  std::uint64_t insert_procs = 0;      ///< insert-update node services
  std::uint64_t substitutes = 0;       ///< items pulled from the tail to refill
  std::uint64_t span_levels = 0;       ///< sum over ops of deepest level repaired
  std::uint64_t span_items = 0;        ///< sum over ops of critical-path items merged
  std::uint64_t proc_splits = 0;       ///< delete-updates that branched into both children
};

template <typename T, typename Compare = std::less<T>>
class ParallelHeap {
 public:
  /// Creates an empty heap whose nodes hold up to `node_capacity` (r ≥ 1)
  /// items. r is the batch width: a delete batch returns up to r items and
  /// maintenance work per level is O(r). `arity` is the node fan-out —
  /// 2 reproduces the paper's binary parallel heap; larger fan-outs
  /// shorten the tree at the cost of wider repair merges (ablated in
  /// bench_arity).
  explicit ParallelHeap(std::size_t node_capacity, Compare cmp = Compare(),
                        std::size_t arity = 2)
      : r_(node_capacity), arity_(arity), cmp_(std::move(cmp)) {
    PH_ASSERT(r_ >= 1);
    PH_ASSERT_MSG(arity_ >= 2 && arity_ <= kMaxArity, "arity must be in [2, 16]");
  }

  std::size_t arity() const noexcept { return arity_; }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t node_capacity() const noexcept { return r_; }

  /// Number of nodes currently holding items.
  std::size_t num_nodes() const noexcept { return (size_ + r_ - 1) / r_; }

  /// Depth of the node tree (levels of nodes; 0 for an empty heap).
  std::size_t levels() const noexcept {
    const std::size_t m = num_nodes();
    return m == 0 ? 0 : level_of(m - 1) + 1;
  }

  /// The global minimum. Precondition: !empty().
  const T& min() const {
    PH_ASSERT(!empty());
    return arena_[0];
  }

  /// The current root batch: the min(size, r) smallest items, sorted.
  std::span<const T> root_batch() const noexcept {
    return {arena_.data(), node_count(0)};
  }

  void clear() noexcept {
    size_ = 0;
    arena_.clear();
  }

  /// Preallocates arena capacity for `items` items.
  void reserve(std::size_t items) { arena_.reserve(round_up_nodes(items) * r_); }

  /// Replaces the content with `items` in one O(n log n) bulk load: after
  /// sorting, a breadth-first layout (node 0 gets the smallest r, node 1 the
  /// next r, …) satisfies the parallel heap condition outright, since every
  /// item of node i precedes every item of any node j > i.
  void build(std::span<const T> items) {
    clear();
    ensure_nodes(round_up_nodes(items.size()));
    std::copy(items.begin(), items.end(), arena_.begin());
    std::sort(arena_.begin(), arena_.begin() + static_cast<std::ptrdiff_t>(items.size()),
              cmp_);
    size_ = items.size();
    stats_.items_inserted += items.size();
  }

  /// Inserts all of `items` (any size, any order). Cost O((|items|/r + 1) ·
  /// r log n) — one root-to-tail path per node-aligned chunk.
  void insert_batch(std::span<const T> items) {
    if (items.empty()) return;
    sort_buf_.assign(items.begin(), items.end());
    std::sort(sort_buf_.begin(), sort_buf_.end(), cmp_);
    insert_sorted_chunks(sort_buf_);
    stats_.items_inserted += items.size();
  }

  /// Removes the k smallest items of the heap, appending them in ascending
  /// order to `out`. k may exceed r (processed in r-sized cycles) and may
  /// exceed size() (stops when empty). Returns the number removed.
  std::size_t delete_min_batch(std::size_t k, std::vector<T>& out) {
    std::size_t removed = 0;
    while (removed < k && size_ > 0) {
      removed += cycle({}, std::min({k - removed, r_, size_}), out);
    }
    return removed;
  }

  /// One combined insert-delete cycle, the paper's primitive: removes the
  /// `k` (≤ r) smallest items of (heap ∪ new_items), appending them sorted
  /// to `out`, and inserts the rest of new_items. This is cheaper than
  /// insert_batch + delete_min_batch because new items are merged at the
  /// root before any of them travel down. Returns the number deleted
  /// (< k only if the heap and new_items together held fewer).
  std::size_t cycle(std::span<const T> new_items, std::size_t k, std::vector<T>& out) {
    PH_ASSERT_MSG(k <= r_, "cycle(): k must not exceed the node capacity r");
    ++stats_.cycles;
    stats_.items_inserted += new_items.size();
    new_buf_.assign(new_items.begin(), new_items.end());
    std::sort(new_buf_.begin(), new_buf_.end(), cmp_);

    const std::size_t span_items_before = stats_.items_merged;

    if (size_ == 0) {
      const std::size_t take = std::min(k, new_buf_.size());
      out.insert(out.end(), new_buf_.begin(),
                 new_buf_.begin() + static_cast<std::ptrdiff_t>(take));
      stats_.items_deleted += take;
      if (take < new_buf_.size()) {
        sort_buf_.assign(new_buf_.begin() + static_cast<std::ptrdiff_t>(take),
                         new_buf_.end());
        insert_sorted_chunks(sort_buf_);
      }
      return take;
    }

    const std::size_t root_cnt = node_count(0);
    const std::size_t below = size_ - root_cnt;

    // Merge the sorted new items with the root. Because the parallel heap
    // condition holds, root ∪ new_items contains the global k smallest.
    merged_.clear();
    merge2(std::span<const T>(arena_.data(), root_cnt),
           std::span<const T>(new_buf_), merged_, cmp_);
    const std::size_t take = std::min(k, merged_.size());
    // take < k is only possible when the whole heap fits in the root.
    PH_ASSERT(take == k || below == 0);
    out.insert(out.end(), merged_.begin(),
               merged_.begin() + static_cast<std::ptrdiff_t>(take));
    stats_.items_deleted += take;

    const std::size_t rest = merged_.size() - take;
    const std::size_t new_total = size_ + new_buf_.size() - take;
    const std::size_t new_root_cnt = std::min(r_, new_total);
    auto rest_span = std::span<const T>(merged_).subspan(take);

    if (rest >= new_root_cnt) {
      // Enough survivors at the root; the overflow travels down as inserts.
      ensure_nodes(1);
      std::copy(rest_span.begin(), rest_span.begin() + static_cast<std::ptrdiff_t>(new_root_cnt),
                arena_.begin());
      size_ = below + new_root_cnt;
      if (rest > new_root_cnt) {
        sort_buf_.assign(rest_span.begin() + static_cast<std::ptrdiff_t>(new_root_cnt),
                         rest_span.end());
        insert_sorted_chunks(sort_buf_);
      }
    } else {
      // Root is short: refill with substitutes from the heap's tail, exactly
      // as the paper's deletion does ("get substitute items from the last
      // node, if needed").
      const std::size_t need = new_root_cnt - rest;
      PH_ASSERT(need <= below);
      subs_.clear();
      take_tail(need, subs_);
      stats_.substitutes += need;
      tmp_.clear();
      merge2(rest_span, std::span<const T>(subs_), tmp_, cmp_);
      ensure_nodes(1);
      std::copy(tmp_.begin(), tmp_.end(), arena_.begin());
      size_ = (below - need) + new_root_cnt;
    }
    // Repair the parallel heap condition at the root (new items and
    // substitutes may exceed the children).
    delete_update(0);

    stats_.span_items += stats_.items_merged - span_items_before;
    return take;
  }

  /// Single-item convenience (maps to a batch of one; for drop-in use where
  /// a scalar priority-queue interface is expected — O(r log n), so prefer
  /// the batch API in performance-sensitive code).
  void push(const T& v) { insert_batch(std::span<const T>(&v, 1)); }

  /// Removes and returns the minimum. Precondition: !empty().
  T pop() {
    PH_ASSERT(!empty());
    one_.clear();
    cycle({}, 1, one_);
    return one_.front();
  }

  /// Verifies every structural invariant: node sortedness, the parallel
  /// heap condition between every parent/child pair, and the "all nodes full
  /// except the last" occupancy rule. O(n). Returns false and fills `why`
  /// on the first violation.
  bool check_invariants(std::string* why = nullptr) const {
    const std::size_t m = num_nodes();
    for (std::size_t i = 0; i < m; ++i) {
      const auto s = node_span_const(i);
      if (i + 1 < m && s.size() != r_) {
        return fail(why, "non-last node " + std::to_string(i) + " is not full");
      }
      if (!is_sorted_run(s, cmp_)) {
        return fail(why, "node " + std::to_string(i) + " is not sorted");
      }
      for (std::size_t c = arity_ * i + 1; c < arity_ * i + 1 + arity_; ++c) {
        if (c >= m || node_count(c) == 0) continue;
        const auto cs = node_span_const(c);
        if (cmp_(cs.front(), s.back())) {
          return fail(why, "heap condition violated between node " +
                               std::to_string(i) + " and child " + std::to_string(c));
        }
      }
    }
    return true;
  }

  /// Copies out the entire content in ascending order without disturbing
  /// the heap (testing/diagnostics; O(n log n)).
  std::vector<T> sorted_contents() const {
    std::vector<T> all(arena_.begin(), arena_.begin() + static_cast<std::ptrdiff_t>(size_));
    std::sort(all.begin(), all.end(), cmp_);
    return all;
  }

  const HeapStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = HeapStats{}; }
  const Compare& comparator() const noexcept { return cmp_; }

 private:
  static bool fail(std::string* why, std::string msg) {
    if (why) *why = std::move(msg);
    return false;
  }

  std::size_t round_up_nodes(std::size_t items) const noexcept {
    return (items + r_ - 1) / r_;
  }

  /// Number of items stored at node i (full-except-last rule).
  std::size_t node_count(std::size_t i) const noexcept {
    const std::size_t lo = i * r_;
    if (lo >= size_) return 0;
    return std::min(r_, size_ - lo);
  }

  std::span<T> node_span(std::size_t i) noexcept {
    const std::size_t n = node_count(i);
    return n == 0 ? std::span<T>{} : std::span<T>{arena_.data() + i * r_, n};
  }
  std::span<const T> node_span_const(std::size_t i) const noexcept {
    const std::size_t n = node_count(i);
    return n == 0 ? std::span<const T>{}
                  : std::span<const T>{arena_.data() + i * r_, n};
  }

  void ensure_nodes(std::size_t m) {
    if (arena_.size() < m * r_) arena_.resize(m * r_);
  }

  /// Level of node i (root = 0), under the configured arity.
  std::size_t level_of(std::size_t i) const noexcept {
    std::size_t level = 0;
    std::size_t last_of_level = 0;  // last node index on `level`
    std::size_t width = 1;
    while (i > last_of_level) {
      width *= arity_;
      last_of_level += width;
      ++level;
    }
    return level;
  }

  /// Smallest item among node i's children (nullptr if i has none): the
  /// threshold below which fills pushed into node i would violate the heap
  /// condition one level further down.
  const T* grandchild_min(std::size_t i) const noexcept {
    const T* best = nullptr;
    const std::size_t first = arity_ * i + 1;
    for (std::size_t c = first; c < first + arity_; ++c) {
      if (node_count(c) == 0) continue;
      const T* m = arena_.data() + c * r_;
      if (best == nullptr || cmp_(*m, *best)) best = m;
    }
    return best;
  }

  /// Removes the last `q` items of the heap (highest arena positions, which
  /// form sorted suffixes of at most two trailing nodes) and appends them,
  /// merged sorted, to `out`. Precondition: q ≤ size_ − node_count(0)
  /// so the root region is never raided.
  void take_tail(std::size_t q, std::vector<T>& out) {
    PH_ASSERT(q + node_count(0) <= size_);
    std::size_t last = (size_ - 1) / r_;
    const std::size_t last_cnt = size_ - last * r_;
    const std::size_t from_last = std::min(q, last_cnt);
    auto suffix_last = std::span<const T>(arena_.data() + last * r_ + (last_cnt - from_last),
                                          from_last);
    if (from_last == q) {
      out.insert(out.end(), suffix_last.begin(), suffix_last.end());
    } else {
      const std::size_t from_prev = q - from_last;
      PH_ASSERT(last >= 1 && from_prev <= r_);
      auto suffix_prev =
          std::span<const T>(arena_.data() + (last - 1) * r_ + (r_ - from_prev), from_prev);
      merge2(suffix_prev, suffix_last, out, cmp_);
    }
    // size_ is adjusted by the caller (it knows the whole-cycle accounting).
  }

  /// Inserts the sorted run `sorted` by splitting it, largest first, into
  /// chunks that exactly fill tail-node free space, and running one
  /// insert-update path per chunk.
  void insert_sorted_chunks(std::vector<T>& sorted) {
    PH_DEBUG_ASSERT(is_sorted_run(std::span<const T>(sorted), cmp_));
    std::size_t remaining = sorted.size();
    while (remaining > 0) {
      const std::size_t tail_used = size_ % r_;
      const std::size_t free_slots = tail_used == 0 ? r_ : r_ - tail_used;
      const std::size_t chunk = std::min(free_slots, remaining);
      insert_path(std::span<const T>(sorted.data() + (remaining - chunk), chunk));
      remaining -= chunk;
    }
  }

  /// One insert-update: the sorted `chunk` travels from the root to the tail
  /// node, each full path node keeping its r smallest; survivors merge into
  /// the tail node. Precondition: chunk fits in the tail node's free space.
  void insert_path(std::span<const T> chunk) {
    PH_ASSERT(!chunk.empty());
    const std::size_t target = size_ / r_;  // node containing the first free slot
    const std::size_t tail_used = size_ - target * r_;
    PH_ASSERT(tail_used + chunk.size() <= r_);
    ensure_nodes(target + 1);
    size_ += chunk.size();

    carried_.assign(chunk.begin(), chunk.end());
    if (target > 0) {
      // Ancestor path root → parent(target), oldest first.
      path_.clear();
      for (std::size_t a = (target - 1) / arity_;; a = (a - 1) / arity_) {
        path_.push_back(a);
        if (a == 0) break;
      }
      for (std::size_t pi = path_.size(); pi-- > 0;) {
        const std::size_t v = path_[pi];
        auto sv = node_span(v);
        PH_ASSERT(sv.size() == r_);
        ++stats_.insert_procs;
        // Early out: nothing in the carried set precedes this node's max.
        if (!cmp_(carried_.front(), sv.back())) continue;
        kept_.clear();
        rest_.clear();
        merge2_split(std::span<const T>(sv.data(), sv.size()),
                     std::span<const T>(carried_), r_, kept_, rest_, cmp_);
        std::copy(kept_.begin(), kept_.end(), sv.begin());
        carried_.swap(rest_);
        ++stats_.nodes_touched;
        stats_.items_merged += r_ + carried_.size();
      }
    }
    // Land at the target node.
    auto tgt = std::span<T>(arena_.data() + target * r_, tail_used + carried_.size());
    tmp_.clear();
    merge2(std::span<const T>(tgt.data(), tail_used), std::span<const T>(carried_),
           tmp_, cmp_);
    std::copy(tmp_.begin(), tmp_.end(), tgt.begin());
    ++stats_.nodes_touched;
    stats_.items_merged += tmp_.size();
    stats_.span_levels += level_of(target);
  }

  /// Delete-update: repairs the parallel heap condition below node `v0`
  /// (v0's items may exceed its children; everything deeper is consistent).
  void delete_update(std::size_t v0) {
    work_.clear();
    work_.push_back(v0);
    std::size_t deepest = level_of(v0);
    while (!work_.empty()) {
      const std::size_t v = work_.back();
      work_.pop_back();
      auto sv = node_span(v);
      if (sv.empty()) continue;
      const std::size_t first = arity_ * v + 1;
      bool any_child = false;
      bool violated = false;
      child_spans_.clear();
      for (std::size_t c = 0; c < arity_; ++c) {
        auto scs = node_span(first + c);
        if (!scs.empty()) {
          any_child = true;
          if (cmp_(scs.front(), sv.back())) violated = true;
        }
        child_spans_.push_back(scs);
      }
      if (!any_child) continue;
      ++stats_.delete_procs;
      if (!violated) continue;
      deepest = std::max(deepest, level_of(first));

      for (std::size_t c = 0; c < arity_; ++c) gm_[c] = grandchild_min(first + c);
      // Node-local repair (see node_fix.hpp). Because the subtree below is
      // quiescent here, a child whose new content does not violate against
      // its own children needs no further visit.
      const std::size_t moved = fix_node_multi(
          sv, std::span<std::span<T>>(child_spans_.data(), arity_),
          std::span<const T* const>(gm_.data(), arity_),
          std::span<std::size_t>(taken_.data(), arity_),
          std::span<bool>(viol_.data(), arity_), fix_, cmp_);
      std::size_t branches = 0;
      for (std::size_t c = 0; c < arity_; ++c) {
        if (taken_[c] == 0) continue;
        ++branches;
        if (viol_[c]) work_.push_back(first + c);
      }
      if (branches > 1) ++stats_.proc_splits;
      ++stats_.nodes_touched;
      stats_.items_merged += moved;
    }
    stats_.span_levels += deepest - level_of(v0);
  }

  static constexpr std::size_t kMaxArity = 16;

  std::size_t r_;
  std::size_t arity_ = 2;
  Compare cmp_;
  std::vector<T> arena_;
  std::size_t size_ = 0;
  HeapStats stats_;

  // Scratch buffers reused across operations to keep the hot path
  // allocation-free after warm-up.
  std::vector<T> sort_buf_, new_buf_, merged_, subs_, tmp_, carried_, kept_, rest_,
      one_;
  FixScratch<T> fix_;
  std::vector<std::size_t> work_, path_;
  std::vector<std::span<T>> child_spans_;
  std::array<const T*, kMaxArity> gm_{};
  std::array<std::size_t, kMaxArity> taken_{};
  std::array<bool, kMaxArity> viol_{};
};

}  // namespace ph
