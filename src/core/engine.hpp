// ParallelHeapEngine — the multithreaded driver around the pipelined heap,
// mirroring the system of Prasad & Sawant (SPDP'95): of the available
// threads, `think_threads` run the application's think phase on each deleted
// batch ("simulation processors") while `maintenance_threads` service the
// heap's update processes ("maintenance processors"). The two teams overlap:
// while the think team processes cycle g's batch, the maintenance team runs
// both half-steps of the pipeline; the serial root work then closes the
// cycle. This reordering (root, even, odd, root, ...) is schedule-equivalent
// to PipelinedParallelHeap::step() — only the position of the cycle boundary
// differs — so all the pipelined heap's differential guarantees carry over.
//
// The think phase sees, per cycle, the k globally smallest items, dealt
// round-robin to the workers exactly as the paper distributes the deleted
// messages across simulation processors.
#pragma once

#include <cstdint>
#include <atomic>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/pipelined_heap.hpp"
#include "telemetry/telemetry.hpp"
#include "util/cacheline.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace ph {

struct EngineConfig {
  std::size_t node_capacity = 1024;  ///< r: batch width and node size
  /// Think workers. 0 runs the think phase inline on the driver thread
  /// (no overlap) — useful as the serial baseline.
  unsigned think_threads = 1;
  /// Maintenance workers. 0 services update processes on the driver thread,
  /// which still overlaps with the think team.
  unsigned maintenance_threads = 0;
  std::size_t batch = 0;  ///< k items deleted per cycle; 0 → node_capacity
  bool pin_threads = false;
};

struct EngineReport {
  std::uint64_t cycles = 0;
  std::uint64_t items_processed = 0;  ///< items handed to the think phase
  double seconds = 0;                 ///< wall time inside run()
  double maint_seconds = 0;           ///< driver time in pipeline half-steps
  double think_stall_seconds = 0;     ///< driver time waiting on the think team
  double root_seconds = 0;            ///< driver time in root work
};

template <typename T, typename Compare = std::less<T>>
class ParallelHeapEngine {
 public:
  using Heap = PipelinedParallelHeap<T, Compare>;
  /// think(tid, mine, batch, out): process `mine` — this worker's
  /// round-robin share of the cycle's deleted batch — appending any newly
  /// produced items to `out`. `batch` is the whole cycle's deleted batch in
  /// ascending order (so batch.front() is the cycle's GVT). Runs
  /// concurrently on all think workers; must not touch the heap.
  using ThinkFn = std::function<void(unsigned, std::span<const T>, std::span<const T>,
                                     std::vector<T>&)>;

  explicit ParallelHeapEngine(EngineConfig cfg, Compare cmp = Compare())
      : cfg_(cfg), heap_(cfg.node_capacity, std::move(cmp)) {
    if (cfg_.batch == 0 || cfg_.batch > cfg_.node_capacity) {
      cfg_.batch = cfg_.node_capacity;
    }
    const unsigned s = cfg_.think_threads;
    if (s > 0) {
      think_team_ = std::make_unique<ThreadTeam>(s, cfg_.pin_threads, "think");
    }
    if (cfg_.maintenance_threads > 0) {
      maint_team_ = std::make_unique<ThreadTeam>(cfg_.maintenance_threads,
                                                 cfg_.pin_threads, "maint");
      maint_ctx_.resize(cfg_.maintenance_threads);
    }
    const unsigned lanes = s == 0 ? 1 : s;
    in_.resize(lanes);
    out_.resize(lanes);
  }

  Heap& heap() noexcept { return heap_; }
  const EngineConfig& config() const noexcept { return cfg_; }

  /// Bulk-loads the initial content (O(n log n)).
  void seed(std::span<const T> initial) { heap_.build(initial); }

  /// Cooperative stop: callable from inside a think function; the current
  /// cycle completes (its new items are inserted) and run() returns.
  void request_stop() noexcept {
    stop_requested_.store(true, std::memory_order_relaxed);
  }

  /// Runs insert-delete cycles until the heap (and all produced work) is
  /// exhausted, `max_items` items have been handed to the think phase
  /// (0 = unlimited), or request_stop() is called. Returns wall-clock and
  /// phase accounting.
  EngineReport run(const ThinkFn& think, std::uint64_t max_items = 0) {
    EngineReport rep;
    Timer wall;
    stop_requested_.store(false, std::memory_order_relaxed);
    PhaseTimer maint, stall, root;
    if constexpr (telemetry::kEnabled) telemetry::name_thread("driver");

    batch_out_.clear();
    root.start();
    heap_.root_work_public({}, cfg_.batch, batch_out_);
    root.stop();

    while (!batch_out_.empty()) {
      ++rep.cycles;
      rep.items_processed += batch_out_.size();

      const unsigned lanes = static_cast<unsigned>(in_.size());
      for (auto& lane : in_) lane->clear();
      for (auto& lane : out_) lane->clear();
      // Round-robin deal, as the paper distributes deleted messages.
      for (std::size_t i = 0; i < batch_out_.size(); ++i) {
        in_[i % lanes]->push_back(batch_out_[i]);
      }

      if (think_team_) {
        think_fn_ = [&](unsigned tid) {
          telemetry::SpanScope span(telemetry::Phase::kThink);
          telemetry::count(telemetry::Counter::kThinkItems, in_[tid]->size());
          think(tid, std::span<const T>(*in_[tid]), std::span<const T>(batch_out_),
                *out_[tid]);
        };
        think_team_->begin(think_fn_);
        maint.start();
        advance_both();
        maint.stop();
        stall.start();
        {
          telemetry::SpanScope span(telemetry::Phase::kThinkStall);
          think_team_->wait();
        }
        stall.stop();
      } else {
        {
          telemetry::SpanScope span(telemetry::Phase::kThink);
          telemetry::count(telemetry::Counter::kThinkItems, in_[0]->size());
          think(0, std::span<const T>(*in_[0]), std::span<const T>(batch_out_),
                *out_[0]);
        }
        maint.start();
        advance_both();
        maint.stop();
      }

      new_items_.clear();
      for (auto& lane : out_) {
        new_items_.insert(new_items_.end(), lane->begin(), lane->end());
      }

      const bool stop = (max_items != 0 && rep.items_processed >= max_items) ||
                        stop_requested_.load(std::memory_order_relaxed);
      batch_out_.clear();
      root.start();
      heap_.root_work_public(new_items_, stop ? 0 : cfg_.batch, batch_out_);
      root.stop();
      if (stop) break;
    }

    rep.seconds = wall.seconds();
    rep.maint_seconds = maint.total_seconds();
    rep.think_stall_seconds = stall.total_seconds();
    rep.root_seconds = root.total_seconds();
    return rep;
  }

 private:
  /// Runs both pipeline half-steps (even, then odd — the schedule-equivalent
  /// rotation of step()'s odd/root/even), on the maintenance team when
  /// configured, else on the driver thread.
  void advance_both() {
    if (!maint_team_) {
      heap_.advance(0);
      heap_.advance(1);
      return;
    }
    auto runner = [this](std::size_t ngroups,
                         const std::function<void(std::size_t,
                                                  typename Heap::ServiceCtx&)>& fn) {
      const unsigned mt = maint_team_->size();
      maint_team_->run([&](unsigned tid) {
        telemetry::SpanScope span(telemetry::Phase::kMaintService);
        for (std::size_t g = tid; g < ngroups; g += mt) fn(g, *maint_ctx_[tid]);
      });
      for (auto& ctx : maint_ctx_) heap_.merge_ctx(*ctx);
    };
    heap_.advance_with(0, runner);
    heap_.advance_with(1, runner);
  }

  EngineConfig cfg_;
  Heap heap_;
  std::unique_ptr<ThreadTeam> think_team_;
  std::unique_ptr<ThreadTeam> maint_team_;
  std::vector<Padded<typename Heap::ServiceCtx>> maint_ctx_;
  std::vector<Padded<std::vector<T>>> in_, out_;
  std::vector<T> batch_out_, new_items_;
  std::function<void(unsigned)> think_fn_;
  std::atomic<bool> stop_requested_{false};
};

}  // namespace ph
