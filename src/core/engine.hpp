// ParallelHeapEngine — the multithreaded driver around the pipelined heap,
// mirroring the system of Prasad & Sawant (SPDP'95): of the available
// threads, `think_threads` run the application's think phase on each deleted
// batch ("simulation processors") while `maintenance_threads` service the
// heap's update processes ("maintenance processors"). The two teams overlap:
// while the think team processes cycle g's batch, the maintenance team runs
// both half-steps of the pipeline; the serial root work then closes the
// cycle. This reordering (root, even, odd, root, ...) is schedule-equivalent
// to PipelinedParallelHeap::step() — only the position of the cycle boundary
// differs — so all the pipelined heap's differential guarantees carry over.
//
// The think phase sees, per cycle, the k globally smallest items, dealt
// round-robin to the workers exactly as the paper distributes the deleted
// messages across simulation processors.
#pragma once

#include <cstdint>
#include <atomic>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/pipelined_heap.hpp"
#include "obs/flight_recorder.hpp"
#include "robustness/failpoint.hpp"
#include "robustness/watchdog.hpp"
#include "telemetry/telemetry.hpp"
#include "util/cacheline.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace ph {

struct EngineConfig {
  std::size_t node_capacity = 1024;  ///< r: batch width and node size
  /// Think workers. 0 runs the think phase inline on the driver thread
  /// (no overlap) — useful as the serial baseline.
  unsigned think_threads = 1;
  /// Maintenance workers. 0 services update processes on the driver thread,
  /// which still overlaps with the think team.
  unsigned maintenance_threads = 0;
  std::size_t batch = 0;  ///< k items deleted per cycle; 0 → node_capacity
  bool pin_threads = false;
  /// Phase-watchdog stall timeout (0 = no watchdog). When set, the driver
  /// and every think worker own a heartbeat channel beaten at their phase
  /// crossings, and a background monitor escalates on stalls (telemetry
  /// counter → stderr dump → optional abort).
  std::uint64_t watchdog_stall_ns = 0;
  bool watchdog_abort = false;  ///< escalate a persistent stall to abort()
  /// Think-lane quarantine: a lane whose think callback fails this many
  /// CONSECUTIVE cycles is retired from the round-robin deal for the rest of
  /// the run (0 = never retire). A retiring lane's batch share is requeued
  /// like any failed lane's, so heap-multiset conservation is exact; the
  /// last alive lane is never retired. Each retirement is recorded in the
  /// flight ring (kLaneQuarantine) and counted by telemetry
  /// kLaneQuarantines / EngineReport::lanes_quarantined.
  std::size_t lane_fault_limit = 0;
};

struct EngineReport {
  std::uint64_t cycles = 0;
  std::uint64_t items_processed = 0;  ///< items handed to the think phase
  double seconds = 0;                 ///< wall time inside run()
  double maint_seconds = 0;           ///< driver time in pipeline half-steps
  double think_stall_seconds = 0;     ///< driver time waiting on the think team
  double root_seconds = 0;            ///< driver time in root work
  std::uint64_t think_faults = 0;     ///< think lanes that threw and were requeued
  std::uint64_t watchdog_stalls = 0;  ///< stalled-channel observations
  std::uint64_t lanes_quarantined = 0;  ///< think lanes retired mid-run
};

/// HeapT is any heap exposing the pipeline-driver surface
/// (root_work_public / advance / advance_with / merge_ctx / ServiceCtx) —
/// the pipelined heap by default, or persist::DurableHeap<...> for a
/// crash-recoverable engine (same call sites, substituted type).
template <typename T, typename Compare = std::less<T>,
          typename HeapT = PipelinedParallelHeap<T, Compare>>
class ParallelHeapEngine {
 public:
  using Heap = HeapT;
  /// think(tid, mine, batch, out): process `mine` — this worker's
  /// round-robin share of the cycle's deleted batch — appending any newly
  /// produced items to `out`. `batch` is the whole cycle's deleted batch in
  /// ascending order (so batch.front() is the cycle's GVT). Runs
  /// concurrently on all think workers; must not touch the heap.
  using ThinkFn = std::function<void(unsigned, std::span<const T>, std::span<const T>,
                                     std::vector<T>&)>;

  explicit ParallelHeapEngine(EngineConfig cfg, Compare cmp = Compare())
      : ParallelHeapEngine(cfg, Heap(cfg.node_capacity, std::move(cmp))) {}

  /// Adopts a pre-built heap (a DurableHeap wired to its directory, a
  /// differently-configured pipelined heap). The heap's node capacity must
  /// match cfg.node_capacity.
  ParallelHeapEngine(EngineConfig cfg, Heap heap)
      : cfg_(cfg), heap_(std::move(heap)) {
    PH_ASSERT(heap_.node_capacity() == cfg_.node_capacity);
    if (cfg_.batch == 0 || cfg_.batch > cfg_.node_capacity) {
      cfg_.batch = cfg_.node_capacity;
    }
    const unsigned s = cfg_.think_threads;
    if (s > 0) {
      think_team_ = std::make_unique<ThreadTeam>(s, cfg_.pin_threads, "think");
    }
    if (cfg_.maintenance_threads > 0) {
      maint_team_ = std::make_unique<ThreadTeam>(cfg_.maintenance_threads,
                                                 cfg_.pin_threads, "maint");
      maint_ctx_.resize(cfg_.maintenance_threads);
    }
    const unsigned lanes = s == 0 ? 1 : s;
    in_.resize(lanes);
    out_.resize(lanes);
  }

  Heap& heap() noexcept { return heap_; }
  const EngineConfig& config() const noexcept { return cfg_; }

  /// Bulk-loads the initial content (O(n log n)).
  void seed(std::span<const T> initial) { heap_.build(initial); }

  /// Cooperative stop: callable from inside a think function; the current
  /// cycle completes (its new items are inserted) and run() returns.
  void request_stop() noexcept {
    stop_requested_.store(true, std::memory_order_relaxed);
  }

  /// Runs insert-delete cycles until the heap (and all produced work) is
  /// exhausted, `max_items` items have been handed to the think phase
  /// (0 = unlimited), or request_stop() is called. Returns wall-clock and
  /// phase accounting.
  EngineReport run(const ThinkFn& think, std::uint64_t max_items = 0) {
    EngineReport rep;
    Timer wall;
    stop_requested_.store(false, std::memory_order_relaxed);
    PhaseTimer maint, stall, root;
    if constexpr (telemetry::kEnabled) telemetry::name_thread("driver");

    // Optional liveness monitoring: one channel per think lane plus the
    // driver, beaten at phase crossings, polled by a background monitor.
    std::unique_ptr<robustness::PhaseWatchdog> wd;
    std::size_t driver_ch = 0;
    if (cfg_.watchdog_stall_ns > 0) {
      robustness::PhaseWatchdog::Config wcfg;
      wcfg.stall_timeout_ns = cfg_.watchdog_stall_ns;
      wcfg.poll_interval_ns = std::max<std::uint64_t>(cfg_.watchdog_stall_ns / 2,
                                                      1'000'000);
      wcfg.abort_on_stall = cfg_.watchdog_abort;
      wd = std::make_unique<robustness::PhaseWatchdog>(wcfg);
      driver_ch = wd->add_channel("driver");
      think_ch_.clear();
      for (std::size_t t = 0; t < in_.size(); ++t) {
        think_ch_.push_back(wd->add_channel("think-" + std::to_string(t)));
      }
      wd->start();
    }

    batch_out_.clear();
    root.start();
    heap_.root_work_public({}, cfg_.batch, batch_out_);
    root.stop();

    const unsigned lanes = static_cast<unsigned>(in_.size());
    lane_dead_.assign(lanes, std::uint8_t{0});
    lane_streak_.assign(lanes, 0);

    while (!batch_out_.empty()) {
      ++rep.cycles;
      rep.items_processed += batch_out_.size();
      if (wd) wd->beat(driver_ch);

      for (auto& lane : in_) lane->clear();
      for (auto& lane : out_) lane->clear();
      lane_failed_.assign(lanes, std::uint8_t{0});
      // Round-robin deal, as the paper distributes deleted messages —
      // over the lanes still alive (quarantined lanes get nothing).
      alive_lanes_.clear();
      for (unsigned t = 0; t < lanes; ++t) {
        if (lane_dead_[t] == 0) alive_lanes_.push_back(t);
      }
      for (std::size_t i = 0; i < batch_out_.size(); ++i) {
        in_[alive_lanes_[i % alive_lanes_.size()]]->push_back(batch_out_[i]);
      }

      // A think lane that throws — injected kThinkThrow or a real user
      // exception — must not wedge the cycle or lose its share of the
      // batch: the lane's partial output is discarded and its INPUT items
      // are requeued as new items, to be re-deleted and re-thought in a
      // later cycle. At-least-once semantics for the failed lane (its
      // produced partials never escape); conservation of the heap multiset
      // is exact.
      auto think_lane = [&](unsigned tid) {
        if (lane_dead_[tid] != 0) {
          // Retired lane: keep its heartbeat alive (an idle channel is not
          // a stalled one) but run nothing.
          if (wd) wd->beat(think_ch_[tid]);
          return;
        }
        telemetry::SpanScope span(telemetry::Phase::kThink);
        if (wd) wd->beat(think_ch_[tid]);
        try {
          robustness::fire_fault(robustness::FailSite::kThinkThrow);
          think(tid, std::span<const T>(*in_[tid]), std::span<const T>(batch_out_),
                *out_[tid]);
          // Counted only on success: a faulting lane's share is requeued and
          // re-dealt, so counting at delivery would tally the same items once
          // per retry and kThinkItems would drift past items_processed.
          telemetry::count(telemetry::Counter::kThinkItems, in_[tid]->size());
        } catch (const robustness::InjectedFailure&) {
          out_[tid]->clear();
          lane_failed_[tid] = 2;  // injected: counts as a verified recovery
        } catch (...) {
          out_[tid]->clear();
          lane_failed_[tid] = 1;
        }
        if (wd) wd->beat(think_ch_[tid]);
      };

      if (think_team_) {
        think_fn_ = think_lane;
        think_team_->begin(think_fn_);
        maint.start();
        advance_both();
        maint.stop();
        stall.start();
        {
          telemetry::SpanScope span(telemetry::Phase::kThinkStall);
          think_team_->wait();
        }
        stall.stop();
      } else {
        think_lane(0);
        maint.start();
        advance_both();
        maint.stop();
      }

      new_items_.clear();
      unsigned alive = static_cast<unsigned>(alive_lanes_.size());
      for (unsigned tid = 0; tid < lanes; ++tid) {
        if (lane_dead_[tid] != 0) continue;
        if (lane_failed_[tid] != 0) {
          ++rep.think_faults;
          telemetry::count(telemetry::Counter::kThinkFaults);
          new_items_.insert(new_items_.end(), in_[tid]->begin(), in_[tid]->end());
          if (lane_failed_[tid] == 2) {
            robustness::note_recovery(robustness::FailSite::kThinkThrow);
          }
          // Burn-down of the flapping-lane bug: a lane that fails
          // lane_fault_limit cycles IN A ROW is retired from the deal (its
          // share above was already requeued to the healthy lanes' next
          // cycle). Never the last alive lane — degraded beats dead.
          ++lane_streak_[tid];
          if (cfg_.lane_fault_limit != 0 && alive > 1 &&
              lane_streak_[tid] >= cfg_.lane_fault_limit) {
            lane_dead_[tid] = 1;
            --alive;
            ++rep.lanes_quarantined;
            telemetry::count(telemetry::Counter::kLaneQuarantines);
            obs::flight(obs::FlightKind::kLaneQuarantine, tid, lane_streak_[tid]);
          }
          continue;
        }
        // A cycle where the lane received no items (fewer batch items than
        // alive lanes) proves nothing about its health — resetting here would
        // let a flapping lane evade quarantine forever whenever requeues
        // shrink the batch below the lane count. Only a *successful think on
        // actual work* clears the streak.
        if (!in_[tid]->empty()) lane_streak_[tid] = 0;
        new_items_.insert(new_items_.end(), out_[tid]->begin(), out_[tid]->end());
      }

      const bool stop = (max_items != 0 && rep.items_processed >= max_items) ||
                        stop_requested_.load(std::memory_order_relaxed);
      batch_out_.clear();
      root.start();
      heap_.root_work_public(new_items_, stop ? 0 : cfg_.batch, batch_out_);
      root.stop();
      if (stop) break;
    }

    rep.seconds = wall.seconds();
    rep.maint_seconds = maint.total_seconds();
    rep.think_stall_seconds = stall.total_seconds();
    rep.root_seconds = root.total_seconds();
    if (wd) {
      wd->stop();
      rep.watchdog_stalls = wd->stalls();
    }
    return rep;
  }

  /// One externally-driven insert-delete cycle with no think phase: root
  /// work on the caller's thread, then both half-steps on the maintenance
  /// team when configured. This is the surface the differential harness
  /// registers ("engine_team"): the engine's own maintenance parallelism,
  /// pinned bit-exact against the serial pipelined heap. Not for use
  /// concurrently with run().
  std::size_t cycle(std::span<const T> fresh, std::size_t k, std::vector<T>& out) {
    const std::size_t got = heap_.root_work_public(fresh, k, out);
    advance_both();
    return got;
  }

 private:
  /// Runs both pipeline half-steps (even, then odd — the schedule-equivalent
  /// rotation of step()'s odd/root/even), on the maintenance team when
  /// configured, else on the driver thread.
  void advance_both() {
    if (!maint_team_) {
      heap_.advance(0);
      heap_.advance(1);
      return;
    }
    auto runner = [this](std::size_t ngroups,
                         const std::function<void(std::size_t,
                                                  typename Heap::ServiceCtx&)>& fn) {
      const unsigned mt = maint_team_->size();
      maint_team_->run([&](unsigned tid) {
        telemetry::SpanScope span(telemetry::Phase::kMaintService);
        for (std::size_t g = tid; g < ngroups; g += mt) fn(g, *maint_ctx_[tid]);
      });
      for (auto& ctx : maint_ctx_) heap_.merge_ctx(*ctx);
    };
    heap_.advance_with(0, runner);
    heap_.advance_with(1, runner);
  }

  EngineConfig cfg_;
  Heap heap_;
  std::unique_ptr<ThreadTeam> think_team_;
  std::unique_ptr<ThreadTeam> maint_team_;
  std::vector<Padded<typename Heap::ServiceCtx>> maint_ctx_;
  std::vector<Padded<std::vector<T>>> in_, out_;
  std::vector<T> batch_out_, new_items_;
  std::vector<std::uint8_t> lane_failed_;  ///< per-lane; read after team join
  std::vector<std::uint8_t> lane_dead_;    ///< quarantined lanes (this run)
  std::vector<std::uint32_t> lane_streak_; ///< consecutive failures per lane
  std::vector<unsigned> alive_lanes_;      ///< deal targets, rebuilt per cycle
  std::vector<std::size_t> think_ch_;      ///< watchdog channel ids per lane
  std::function<void(unsigned)> think_fn_;
  std::atomic<bool> stop_requested_{false};
};

}  // namespace ph
