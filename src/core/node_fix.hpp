// The node-local delete-update kernel, shared by the synchronous and
// pipelined heaps.
//
// Given node v (sorted, possibly violating against its children) and its
// children L, R (each internally consistent with its own subtree), restore
// v ≤ L and v ≤ R by the minimal exchange:
//
//   t  = the largest count such that the t smallest items of L ∪ R precede
//        the t largest items of v (discovered with a two-pointer walk, so
//        the common no-op/small-violation cases cost O(t), not O(r));
//   v  keeps its nv − t smallest plus those t child items (newV is exactly
//        the nv smallest of v ∪ L ∪ R);
//   the displaced t items of v ("fills") return to the children by count —
//        tL to L and tR to R, matching the prefixes taken. Any
//        count-preserving assignment is correct (every fill follows every
//        kept item); to minimize how far violations cascade, the child whose
//        own children start later receives the larger fills.
//
// The caller decides how to continue: the result reports, per child, whether
// it received fills and whether its new content still violates against the
// grandchildren threshold the caller supplied.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "core/sorted_ops.hpp"
#include "util/assert.hpp"

namespace ph {

/// Scratch buffers for fix_node (reuse across calls to stay allocation-free).
template <typename T>
struct FixScratch {
  std::vector<T> kid_prefix, dirty, lsuf, rsuf, tmp;
};

template <typename T>
struct FixOutcome {
  std::size_t taken_l = 0;      ///< items pulled up from L (== fills returned)
  std::size_t taken_r = 0;      ///< items pulled up from R
  bool l_violates = false;      ///< L's new max exceeds the supplied threshold
  bool r_violates = false;
  std::size_t items_moved = 0;  ///< total items written (work accounting)
};

/// Repairs v against its children in place. `gl`/`gr` are the minima of L's
/// and R's own children (nullptr when none) — used both to route the larger
/// fills to the more tolerant child and to report whether each child now
/// violates one level further down. Preconditions: all spans sorted; the
/// caller has already established that a violation exists.
template <typename T, typename Compare>
FixOutcome<T> fix_node(std::span<T> sv, std::span<T> sl, std::span<T> sr,
                       const T* gl, const T* gr, FixScratch<T>& s, Compare cmp) {
  const std::size_t nv = sv.size();
  const std::size_t nl = sl.size();
  const std::size_t nr = sr.size();
  PH_ASSERT(nv > 0);

  // Two-pointer exchange discovery: stream the children's merged prefix
  // against v's suffix (largest first).
  s.kid_prefix.clear();
  std::size_t il = 0, ir = 0, t = 0;
  while (t < nv && (il < nl || ir < nr)) {
    // Tie-consistent: prefer L on ties (matches select_smallest3's order).
    const bool from_l = ir >= nr || (il < nl && !cmp(sr[ir], sl[il]));
    const T& cand = from_l ? sl[il] : sr[ir];
    if (!cmp(cand, sv[nv - 1 - t])) break;  // no longer profitable: done
    s.kid_prefix.push_back(cand);
    if (from_l) {
      ++il;
    } else {
      ++ir;
    }
    ++t;
  }
  FixOutcome<T> out;
  out.taken_l = il;
  out.taken_r = ir;
  if (t == 0) return out;

  // Save the displaced suffix of v, then rebuild v = merge(kept, kid_prefix).
  s.dirty.assign(sv.begin() + static_cast<std::ptrdiff_t>(nv - t), sv.end());
  s.tmp.clear();
  merge2(std::span<const T>(sv.data(), nv - t), std::span<const T>(s.kid_prefix),
         s.tmp, cmp);
  std::copy(s.tmp.begin(), s.tmp.end(), sv.begin());
  out.items_moved += nv;

  // Route the larger fills to the child whose grandchildren start later.
  const bool larger_to_left = gr == nullptr || (gl != nullptr && !cmp(*gl, *gr));
  const std::size_t l_off = larger_to_left ? ir : 0;
  const std::size_t r_off = larger_to_left ? 0 : il;

  if (il > 0) {
    s.lsuf.assign(sl.begin() + static_cast<std::ptrdiff_t>(il), sl.end());
    s.tmp.clear();
    merge2(std::span<const T>(s.lsuf), std::span<const T>(s.dirty.data() + l_off, il),
           s.tmp, cmp);
    PH_ASSERT(s.tmp.size() == nl);
    std::copy(s.tmp.begin(), s.tmp.end(), sl.begin());
    out.items_moved += nl;
    out.l_violates = gl != nullptr && cmp(*gl, s.tmp.back());
  }
  if (ir > 0) {
    s.rsuf.assign(sr.begin() + static_cast<std::ptrdiff_t>(ir), sr.end());
    s.tmp.clear();
    merge2(std::span<const T>(s.rsuf), std::span<const T>(s.dirty.data() + r_off, ir),
           s.tmp, cmp);
    PH_ASSERT(s.tmp.size() == nr);
    std::copy(s.tmp.begin(), s.tmp.end(), sr.begin());
    out.items_moved += nr;
    out.r_violates = gr != nullptr && cmp(*gr, s.tmp.back());
  }
  return out;
}

/// Generalization of fix_node to d ≥ 2 children (the d-ary parallel heap).
/// `children[c]` are the child spans (possibly empty), `grandmins[c]` the
/// minima one level below each child (nullptr when none). Writes per-child
/// taken counts and residual-violation flags; returns items moved.
/// Fill routing: children are ranked by tolerance (their grandmin, with
/// "no grandchildren" most tolerant); less tolerant children take lower
/// slices of the displaced pool.
template <typename T, typename Compare>
std::size_t fix_node_multi(std::span<T> sv, std::span<std::span<T>> children,
                           std::span<const T* const> grandmins,
                           std::span<std::size_t> taken_out,
                           std::span<bool> violates_out, FixScratch<T>& s,
                           Compare cmp) {
  const std::size_t nv = sv.size();
  const std::size_t d = children.size();
  PH_ASSERT(nv > 0 && d >= 2);
  PH_ASSERT(taken_out.size() == d && violates_out.size() == d && grandmins.size() == d);

  // Exchange discovery: d-way tournament over child heads vs v's suffix.
  s.kid_prefix.clear();
  for (std::size_t c = 0; c < d; ++c) {
    taken_out[c] = 0;
    violates_out[c] = false;
  }
  std::size_t t = 0;
  while (t < nv) {
    std::size_t best = d;
    for (std::size_t c = 0; c < d; ++c) {
      if (taken_out[c] >= children[c].size()) continue;
      if (best == d || cmp(children[c][taken_out[c]], children[best][taken_out[best]])) {
        best = c;
      }
    }
    if (best == d) break;  // all children exhausted
    const T& cand = children[best][taken_out[best]];
    if (!cmp(cand, sv[nv - 1 - t])) break;
    s.kid_prefix.push_back(cand);
    ++taken_out[best];
    ++t;
  }
  if (t == 0) return 0;

  std::size_t moved = 0;
  s.dirty.assign(sv.begin() + static_cast<std::ptrdiff_t>(nv - t), sv.end());
  s.tmp.clear();
  merge2(std::span<const T>(sv.data(), nv - t), std::span<const T>(s.kid_prefix),
         s.tmp, cmp);
  std::copy(s.tmp.begin(), s.tmp.end(), sv.begin());
  moved += nv;

  // Rank children by tolerance: ascending grandmin, nullptr (= unbounded)
  // last. Stable order keeps the operation deterministic.
  std::array<std::size_t, 16> order{};
  PH_ASSERT(d <= order.size());
  for (std::size_t c = 0; c < d; ++c) order[c] = c;
  std::stable_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(d),
                   [&](std::size_t a, std::size_t b) {
                     if (grandmins[a] == nullptr) return false;
                     if (grandmins[b] == nullptr) return true;
                     return cmp(*grandmins[a], *grandmins[b]);
                   });

  std::size_t offset = 0;
  for (std::size_t rank = 0; rank < d; ++rank) {
    const std::size_t c = order[rank];
    const std::size_t k = taken_out[c];
    if (k == 0) continue;
    s.lsuf.assign(children[c].begin() + static_cast<std::ptrdiff_t>(k),
                  children[c].end());
    s.tmp.clear();
    merge2(std::span<const T>(s.lsuf), std::span<const T>(s.dirty.data() + offset, k),
           s.tmp, cmp);
    PH_ASSERT(s.tmp.size() == children[c].size());
    std::copy(s.tmp.begin(), s.tmp.end(), children[c].begin());
    moved += s.tmp.size();
    violates_out[c] = grandmins[c] != nullptr && cmp(*grandmins[c], s.tmp.back());
    offset += k;
  }
  PH_ASSERT(offset == t);
  return moved;
}

}  // namespace ph
