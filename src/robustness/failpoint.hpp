// Fail-point registry — seeded, deterministic fault injection at named sites.
//
// Every layer of the library assumes the happy path unless told otherwise: an
// allocation that fails mid-batch, a user comparator that throws, a worker
// that stalls, a shard that trips mid-cycle. This registry gives those
// failure modes *names* and a deterministic firing schedule, so the
// differential harness can drive each one inside a soak and prove the
// documented guarantee (rollback, recovery, or detection — see
// robustness/fault_matrix.hpp and DESIGN.md §9).
//
// Shape of the layer (same contract as telemetry/sched_fuzz):
//   - Compiled out under -DPH_FAILPOINTS=OFF (PH_FAILPOINTS_ENABLED=0):
//     every hook is an empty inline returning "don't fire" — no state, no
//     load, no branch survives optimization.
//   - Compiled in but DISARMED (the default at startup): each site check is
//     one relaxed load of a global armed mask plus a predicted-not-taken
//     branch. Sites sit at per-cycle / per-service frequency, never inside
//     the O(r) merge loops.
//   - ARMED via arm(site, spec): the site counts evaluations and fires
//     deterministically — first at evaluation `nth` (1-based), then every
//     `period` evaluations, up to `max_fires`. No RNG at evaluation time:
//     a firing schedule is fully described by (nth, period, max_fires), so
//     a failure a soak finds is replayable from the arming spec alone.
//     arm_seeded() derives a spec from a seed for sweep diversity.
//
// Firing semantics are site-specific and chosen by the *call shape* at the
// site: fire_oom() throws InjectedOom (allocation failure), fire_fault()
// throws InjectedFault (torn batch / throwing callback), maybe_stall()
// sleeps a bounded injected delay (worker stall), and fire() just returns
// true (wrong-answer faults like the historical skip-reservice bug, where
// the point is that the harness must *detect* the bad output). Both
// exception types derive from InjectedFailure so recovery paths can catch
// the whole family and read which site fired.
//
// Concurrency: evaluation is lock-free (relaxed atomics; sites may sit on
// worker threads). arm()/disarm() are quiescent-point operations: call them
// while no instrumented structure is mid-cycle.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <new>
#include <stdexcept>
#include <string_view>
#include <thread>

#include "obs/flight_recorder.hpp"

#ifndef PH_FAILPOINTS_ENABLED
#define PH_FAILPOINTS_ENABLED 1
#endif

namespace ph::robustness {

/// Named injection sites threaded through the library. Keep names (below)
/// stable: fault-matrix reports and reproduction recipes reference them.
enum class FailSite : std::uint8_t {
  kRootAlloc = 0,   ///< allocation failure at pipelined root-work entry
  kSpawnAlloc,      ///< allocation failure spawning an insert-update's carried set
  kTornInsert,      ///< throw between spawn_inserts chunks: tears an insert batch
  kSkipReservice,   ///< historical delete-update revert-note bug (wrong answer)
  kCompareThrow,    ///< user comparator throws (fired by instrumented comparators)
  kThinkThrow,      ///< engine think-callback throws on a worker
  kWorkerStall,     ///< bounded injected delay in a ThreadTeam worker
  kShardCycle,      ///< shard trips at its cycle boundary (quarantine driver)
  kCkptWrite,       ///< crash/fault between checkpoint frames (persist layer)
  kWalAppend,       ///< crash/fault mid-append: tears a WAL record on disk
  kWalFsync,        ///< crash/fault around the WAL fsync (pre/post durability)
  kRecoverReplay,   ///< crash/fault between replayed WAL records (double crash)
  kIngestFlush,     ///< producer dies mid-flush of the ingest staging buffers
  kShardPutback,    ///< deferred (overlapped) shard putback fails on a worker
  kTransportSend,   ///< dist transport loses/corrupts an outbound frame
  kTransportRecv,   ///< dist transport loses/corrupts an inbound frame
  kShardSpawn,      ///< supervisor fails to spawn/respawn a shard process
  kHeartbeatDrop,   ///< shard server silently skips its liveness beat
  kSvcAccept,       ///< scheduler service fails while accepting a request
  kSvcDispatch,     ///< scheduler service dies mid-dispatch (between the due
                    ///< pop and the transaction-closing requeue record)
  kCount
};
inline constexpr std::size_t kNumFailSites = static_cast<std::size_t>(FailSite::kCount);

inline const char* fail_site_name(FailSite s) noexcept {
  switch (s) {
    case FailSite::kRootAlloc: return "root_alloc";
    case FailSite::kSpawnAlloc: return "spawn_alloc";
    case FailSite::kTornInsert: return "torn_insert";
    case FailSite::kSkipReservice: return "skip_reservice";
    case FailSite::kCompareThrow: return "compare_throw";
    case FailSite::kThinkThrow: return "think_throw";
    case FailSite::kWorkerStall: return "worker_stall";
    case FailSite::kShardCycle: return "shard_cycle";
    case FailSite::kCkptWrite: return "ckpt_write";
    case FailSite::kWalAppend: return "wal_append";
    case FailSite::kWalFsync: return "wal_fsync";
    case FailSite::kRecoverReplay: return "recover_replay";
    case FailSite::kIngestFlush: return "ingest_flush";
    case FailSite::kShardPutback: return "shard_putback";
    case FailSite::kTransportSend: return "transport_send";
    case FailSite::kTransportRecv: return "transport_recv";
    case FailSite::kShardSpawn: return "shard_spawn";
    case FailSite::kHeartbeatDrop: return "heartbeat_drop";
    case FailSite::kSvcAccept: return "svc_accept";
    case FailSite::kSvcDispatch: return "svc_dispatch";
    case FailSite::kCount: break;
  }
  return "unknown";
}

inline bool fail_site_from_name(std::string_view name, FailSite& out) noexcept {
  for (std::size_t i = 0; i < kNumFailSites; ++i) {
    const auto s = static_cast<FailSite>(i);
    if (name == fail_site_name(s)) {
      out = s;
      return true;
    }
  }
  return false;
}

/// Base of every injected exception: recovery paths catch this one type and
/// learn which site fired. Injected failures are the ONLY exceptions the
/// library's recovery machinery claims to fully recover from — they fire at
/// audited points whose rollback story is tested (DESIGN.md §9).
struct InjectedFailure {
  FailSite site;
  explicit InjectedFailure(FailSite s) noexcept : site(s) {}
  virtual ~InjectedFailure() = default;
};

/// Injected allocation failure. Also derives std::bad_alloc so generic
/// OOM-handling paths see the exception type a real allocator would throw.
class InjectedOom : public std::bad_alloc, public InjectedFailure {
 public:
  explicit InjectedOom(FailSite s) noexcept : InjectedFailure(s) {}
  const char* what() const noexcept override { return "ph: injected allocation failure"; }
};

/// Injected logic fault (torn batch, throwing callback).
class InjectedFault : public std::runtime_error, public InjectedFailure {
 public:
  explicit InjectedFault(FailSite s)
      : std::runtime_error(std::string("ph: injected fault at ") + fail_site_name(s)),
        InjectedFailure(s) {}
};

/// Deterministic firing schedule: first fire at evaluation `nth` (1-based),
/// then every `period` evaluations (0 = fire once), capped at `max_fires`
/// (0 = unbounded). `stall_us` bounds the injected delay of stall sites.
struct FireSpec {
  std::uint64_t nth = 1;
  std::uint64_t period = 0;
  std::uint64_t max_fires = 1;
  std::uint32_t stall_us = 200;
};

/// Per-site accounting, readable while disarmed (counts survive disarm()).
struct SiteStats {
  std::uint64_t evaluations = 0;
  std::uint64_t fires = 0;
  std::uint64_t recoveries = 0;  ///< recovery paths that completed for this site
};

#if PH_FAILPOINTS_ENABLED

inline constexpr bool kFailpoints = true;

namespace fp_detail {
struct SiteState {
  std::atomic<std::uint64_t> nth{0};  ///< 0 = disarmed
  std::atomic<std::uint64_t> period{0};
  std::atomic<std::uint64_t> max_fires{0};
  std::atomic<std::uint32_t> stall_us{0};
  std::atomic<std::uint64_t> evals{0};
  std::atomic<std::uint64_t> fires{0};
  std::atomic<std::uint64_t> recoveries{0};
};
inline std::array<SiteState, kNumFailSites>& sites() {
  static std::array<SiteState, kNumFailSites> s;
  return s;
}
inline std::atomic<std::uint32_t> g_armed_mask{0};

inline std::uint64_t splitmix(std::uint64_t& s) noexcept {
  std::uint64_t z = (s += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace fp_detail

/// Arms a site with an explicit schedule; resets its evaluation/fire counts
/// (recoveries persist — they are the fault matrix's cross-run ledger).
/// Quiescent points only.
inline void arm(FailSite site, FireSpec spec) {
  auto& st = fp_detail::sites()[static_cast<std::size_t>(site)];
  st.evals.store(0, std::memory_order_relaxed);
  st.fires.store(0, std::memory_order_relaxed);
  st.period.store(spec.period, std::memory_order_relaxed);
  st.max_fires.store(spec.max_fires, std::memory_order_relaxed);
  st.stall_us.store(spec.stall_us, std::memory_order_relaxed);
  st.nth.store(spec.nth == 0 ? 1 : spec.nth, std::memory_order_relaxed);
  fp_detail::g_armed_mask.fetch_or(1u << static_cast<unsigned>(site),
                                   std::memory_order_release);
}

/// Derives a FireSpec from a seed: nth in [1, 2*mean_period], repeating with
/// period ~mean_period. Deterministic per (site, seed) so a sweep round is
/// reproducible from its seed alone.
inline void arm_seeded(FailSite site, std::uint64_t seed, std::uint64_t mean_period,
                       std::uint64_t max_fires = 0, std::uint32_t stall_us = 200) {
  std::uint64_t s = seed ^ (static_cast<std::uint64_t>(site) * 0xd1342543de82ef95ull);
  const std::uint64_t m = mean_period == 0 ? 1 : mean_period;
  FireSpec spec;
  spec.nth = 1 + fp_detail::splitmix(s) % (2 * m);
  spec.period = 1 + (fp_detail::splitmix(s) % (2 * m));
  spec.max_fires = max_fires;
  spec.stall_us = stall_us;
  arm(site, spec);
}

inline void disarm(FailSite site) {
  fp_detail::g_armed_mask.fetch_and(~(1u << static_cast<unsigned>(site)),
                                    std::memory_order_release);
  fp_detail::sites()[static_cast<std::size_t>(site)].nth.store(
      0, std::memory_order_relaxed);
}

inline void disarm_all() {
  for (std::size_t i = 0; i < kNumFailSites; ++i) disarm(static_cast<FailSite>(i));
}

inline bool armed(FailSite site) noexcept {
  return (fp_detail::g_armed_mask.load(std::memory_order_relaxed) &
          (1u << static_cast<unsigned>(site))) != 0;
}

/// True when ANY site is armed — the one-load gate recovery wrappers use to
/// decide whether a checkpoint is worth taking.
inline bool any_armed() noexcept {
  return fp_detail::g_armed_mask.load(std::memory_order_relaxed) != 0;
}

/// True when any site OUTSIDE `mask` is armed. Structures whose own sites
/// have a concurrency-safe recovery story (the deferred shard putback) use
/// this to stay on their parallel paths while only those sites are armed,
/// instead of falling back to the serial "cold" cycle that would make the
/// site unreachable.
inline bool any_armed_except(std::uint32_t mask) noexcept {
  return (fp_detail::g_armed_mask.load(std::memory_order_relaxed) & ~mask) != 0;
}

/// Bit for any_armed_except() masks.
inline constexpr std::uint32_t site_bit(FailSite s) noexcept {
  return 1u << static_cast<unsigned>(s);
}

/// One evaluation of the site: returns true when the schedule says fire.
/// Lock-free; the disarmed path is a single relaxed load and branch.
inline bool fire(FailSite site) noexcept {
  if (!armed(site)) return false;
  auto& st = fp_detail::sites()[static_cast<std::size_t>(site)];
  const std::uint64_t n = st.evals.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t nth = st.nth.load(std::memory_order_relaxed);
  if (nth == 0 || n < nth) return false;
  if (n != nth) {
    const std::uint64_t period = st.period.load(std::memory_order_relaxed);
    if (period == 0 || (n - nth) % period != 0) return false;
  }
  const std::uint64_t mx = st.max_fires.load(std::memory_order_relaxed);
  if (mx != 0 && st.fires.load(std::memory_order_relaxed) >= mx) return false;
  const std::uint64_t fires = st.fires.fetch_add(1, std::memory_order_relaxed) + 1;
  // Black box: every fire is a causal root for whatever breaks next, so it
  // must appear in post-mortem dumps ahead of the watchdog/quarantine events
  // it provokes.
  obs::flight(obs::FlightKind::kFailpointFire,
              static_cast<std::uint64_t>(site), fires);
  return true;
}

/// Site shapes: allocation failure, logic fault, bounded stall.
inline void fire_oom(FailSite site) {
  if (fire(site)) throw InjectedOom(site);
}
inline void fire_fault(FailSite site) {
  if (fire(site)) throw InjectedFault(site);
}

namespace fp_detail {
using CrashHook = void (*)(FailSite);
inline std::atomic<CrashHook> g_crash_hook{nullptr};
}  // namespace fp_detail

/// Installs the process-kill hook used by fire_crash(). The ph_crash drill's
/// child installs `[](FailSite) { std::_Exit(...); }` so a firing crash site
/// dies with kill -9 semantics — no destructors, no atexit, torn on-disk
/// state preserved exactly as written. nullptr restores the default.
inline void set_crash_hook(void (*hook)(FailSite)) noexcept {
  fp_detail::g_crash_hook.store(hook, std::memory_order_release);
}

/// A *crash* site: with a hook installed the process is killed on the spot
/// (the hook must not return); without one it degrades to fire_fault() so
/// the in-process fault matrix exercises the same sites exception-shaped.
inline void fire_crash(FailSite site) {
  if (!fire(site)) return;
  if (auto hook = fp_detail::g_crash_hook.load(std::memory_order_acquire)) {
    hook(site);
  }
  throw InjectedFault(site);
}
inline void maybe_stall(FailSite site) {
  if (fire(site)) {
    const std::uint32_t us = fp_detail::sites()[static_cast<std::size_t>(site)]
                                 .stall_us.load(std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::microseconds(us == 0 ? 1 : us));
  }
}

/// Recovery paths call this after completing a verified recovery/rollback
/// for a caught injected failure; the fault matrix audits the ledger.
inline void note_recovery(FailSite site) noexcept {
  fp_detail::sites()[static_cast<std::size_t>(site)].recoveries.fetch_add(
      1, std::memory_order_relaxed);
  obs::flight(obs::FlightKind::kFailpointRecovery,
              static_cast<std::uint64_t>(site));
}

inline SiteStats stats(FailSite site) noexcept {
  const auto& st = fp_detail::sites()[static_cast<std::size_t>(site)];
  return SiteStats{st.evals.load(std::memory_order_relaxed),
                   st.fires.load(std::memory_order_relaxed),
                   st.recoveries.load(std::memory_order_relaxed)};
}

#else  // !PH_FAILPOINTS_ENABLED

inline constexpr bool kFailpoints = false;

// Inert stubs so instrumented sites compile identically in both builds.
inline void arm(FailSite, FireSpec) noexcept {}
inline void arm_seeded(FailSite, std::uint64_t, std::uint64_t, std::uint64_t = 0,
                       std::uint32_t = 200) noexcept {}
inline void disarm(FailSite) noexcept {}
inline void disarm_all() noexcept {}
inline bool armed(FailSite) noexcept { return false; }
inline bool any_armed() noexcept { return false; }
inline bool any_armed_except(std::uint32_t) noexcept { return false; }
inline constexpr std::uint32_t site_bit(FailSite s) noexcept {
  return 1u << static_cast<unsigned>(s);
}
inline bool fire(FailSite) noexcept { return false; }
inline void fire_oom(FailSite) noexcept {}
inline void fire_fault(FailSite) noexcept {}
inline void set_crash_hook(void (*)(FailSite)) noexcept {}
inline void fire_crash(FailSite) noexcept {}
inline void maybe_stall(FailSite) noexcept {}
inline void note_recovery(FailSite) noexcept {}
inline SiteStats stats(FailSite) noexcept { return {}; }

#endif  // PH_FAILPOINTS_ENABLED

}  // namespace ph::robustness
