// Fault matrix — one differential drill per registered fail-point site.
//
// The acceptance bar for the robustness layer is not "the fault fires" but
// "the fault fires AND the documented guarantee holds afterwards". This
// header encodes that bar as a sweep: for every FailSite there is a drill
// that arms the site with a deterministic schedule, drives a structure
// through the differential harness (testing/differential.hpp), and verifies
// the site-specific contract:
//
//   root_alloc / spawn_alloc / torn_insert / compare_throw
//       strong guarantee: a guarded retry wrapper checkpoints before each
//       cycle, rolls back on the injected throw, and retries — the deletion
//       stream must match the sorted-multiset oracle EXACTLY, as if no
//       fault ever fired.
//   skip_reservice
//       detection: the historical revert-note bug produces wrong answers
//       without throwing; the drill passes iff the differential harness
//       CATCHES it (a clean run here is the failure).
//   worker_stall
//       liveness: bounded injected delays on ThreadTeam workers must not
//       change the deletion stream (exercises the barrier backoff ladder).
//   think_throw
//       at-least-once: engine think lanes that throw are requeued; every
//       seeded item must still be processed and the heap must drain empty.
//   shard_cycle
//       graceful degradation: a quarantined shard's items fold into the
//       tournament and survivors take over its range — stream stays EXACT.
//   ckpt_write
//       non-fatal checkpoints: an injected failure mid-checkpoint is
//       swallowed by DurableHeap (the .tmp never publishes), the heap keeps
//       serving on the previous checkpoint + live WAL, and the stream stays
//       EXACT.
//   wal_append / wal_fsync
//       strong guarantee at the log: a failed append truncates itself back
//       out of the segment before the op is acknowledged; a caller retry
//       then succeeds and the stream stays EXACT.
//   recover_replay
//       double crash: recovery that dies mid-replay (injected) leaves the
//       directory exactly as recoverable — a second recovery reaches the
//       identical state, verified by draining against a fault-free oracle.
//   ingest_flush
//       conservation under producer death: a flush sweep that dies between
//       slot drains restages the in-flight buffer; no staged item is ever
//       lost or duplicated (admission may lag a cycle, so the drill runs
//       under bounded-lag conservation, not stream equality).
//   shard_putback
//       deferred-path repair: an injected failure on a team putback worker
//       is retried serially at the quiesce handshake — the suffix lands,
//       and the stream stays EXACT.
//   transport_send / transport_recv
//       failover: a lost/corrupted frame mid-RPC kills the backend; the
//       supervisor takes the shard over in-parent (per-shard WAL recovery +
//       journal replay), retries the op, and the stream stays EXACT while
//       survivors keep cycling.
//   shard_spawn
//       bounded respawn: injected spawn failures at construction and at
//       re-admission back off and retry; the shard serves in-parent in the
//       meantime and the stream stays EXACT end to end.
//   heartbeat_drop
//       liveness escalation: a shard that answers requests but silently
//       skips its beats must be detected through the watchdog channel
//       (consecutive stall verdicts -> failover), not through traffic —
//       stream EXACT across the forced takeovers.
//   svc_accept
//       clean refusal: a faulted schedule/cancel accept stages NOTHING (the
//       client gets kTransient and retries); after a full drain the
//       scheduler's delivered set must be exactly the acked-minus-cancelled
//       oracle — no job lost, none fabricated, none duplicated.
//   svc_dispatch
//       transaction abort: a fault between a poll's POP record and its CLOSE
//       requeues every popped job (the same path WAL recovery takes for an
//       unterminated transaction); deliveries stay exactly-once and the
//       ledger conservation law holds through every abort.
//
// (In-process, these crash sites throw InjectedFault — the exception shape
// every drill can roll back from. The ph_crash tool additionally drives the
// same sites with a real process kill; see tools/ph_crash.cpp.)
//
// Everything is derived from one seed; a failing drill is reproducible from
// (site, seed) alone. run_fault_matrix is what `ph_stress --failpoint` and
// the CI fault-matrix job execute.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "core/pipelined_heap.hpp"
#include "core/sharded_heap.hpp"
#include "dist/supervisor.hpp"
#include "persist/recovery.hpp"
#include "robustness/failpoint.hpp"
#include "robustness/watchdog.hpp"
#include "svc/core.hpp"
#include "testing/differential.hpp"
#include "testing/op_trace.hpp"
#include "testing/structures.hpp"

namespace ph::robustness {

/// The drill table IS the registry-coverage contract: every FailSite must
/// appear here exactly once, and run_fault_matrix runs one drill per row.
/// Registering a new site without extending this table (and the matrix)
/// fails the build at this line instead of a count literal drifting
/// silently out of date.
inline constexpr FailSite kDrilledSites[] = {
    FailSite::kRootAlloc,     FailSite::kSpawnAlloc,
    FailSite::kTornInsert,    FailSite::kSkipReservice,
    FailSite::kCompareThrow,  FailSite::kThinkThrow,
    FailSite::kWorkerStall,   FailSite::kShardCycle,
    FailSite::kCkptWrite,     FailSite::kWalAppend,
    FailSite::kWalFsync,      FailSite::kRecoverReplay,
    FailSite::kIngestFlush,   FailSite::kShardPutback,
    FailSite::kTransportSend, FailSite::kTransportRecv,
    FailSite::kShardSpawn,    FailSite::kHeartbeatDrop,
    FailSite::kSvcAccept,     FailSite::kSvcDispatch,
};
static_assert(sizeof(kDrilledSites) / sizeof(kDrilledSites[0]) == kNumFailSites,
              "every registered FailSite needs a fault-matrix drill: add the "
              "site to kDrilledSites AND a drill to run_fault_matrix");

struct FaultMatrixConfig {
  std::uint64_t seed = 1;
  std::size_t r = 8;            ///< node capacity for the heap drills
  std::size_t cycles = 300;     ///< ops per drill trace
  std::uint64_t key_bound = std::uint64_t{1} << 16;
  std::size_t shards = 4;       ///< K for the quarantine drill
};

struct FaultSiteResult {
  FailSite site = FailSite::kCount;
  SiteStats stats;      ///< evaluations/fires/recoveries after the drill
  bool fired = false;   ///< site fired at least once
  bool ok = false;      ///< site-specific contract held
  std::string detail;   ///< failure description (empty when ok)
};

struct FaultMatrixReport {
  std::vector<FaultSiteResult> rows;

  /// Green iff every registered site fired at least once AND every drill's
  /// contract held.
  bool ok() const noexcept {
    if (rows.size() != kNumFailSites) return false;
    for (const FaultSiteResult& r : rows) {
      if (!r.fired || !r.ok) return false;
    }
    return true;
  }
};

namespace fm_detail {

using U64 = std::uint64_t;

/// Comparator that is also a fail-point site: models a user comparator
/// throwing from inside the heap's merge loops.
struct ThrowingLess {
  bool operator()(U64 a, U64 b) const {
    fire_fault(FailSite::kCompareThrow);
    return a < b;
  }
};

/// Strong-guarantee retry wrapper: checkpoint before each cycle, roll back
/// and retry on an injected failure. With a retry cap the drill cannot hang
/// even under a pathological arming spec; the differential oracle then
/// verifies the stream is EXACTLY what a fault-free run would produce.
template <typename Cmp>
class GuardedPipelinedAdapter {
 public:
  explicit GuardedPipelinedAdapter(std::size_t r, FailSite site)
      : q_(r, Cmp{}), site_(site) {}

  std::size_t cycle(std::span<const U64> fresh, std::size_t k,
                    std::vector<U64>& out) {
    for (int attempt = 0; attempt < kMaxRetries; ++attempt) {
      auto snap = take_snapshot();
      const std::size_t entry = out.size();
      try {
        return q_.cycle(fresh, k, out);
      } catch (const InjectedFailure&) {
        out.resize(entry);
        restore_with_retry(snap);
        note_recovery(site_);
      }
    }
    // Surfaced as a stream mismatch by the harness.
    return 0;
  }

  bool check_invariants(std::string* why) {
    // The draining deep check compares too — an injected comparator throw
    // mid-drain would poison the heap outside cycle()'s guard. Checkpoint,
    // and on a fire roll back and report the check clean (it ran partially;
    // the next stride retries it).
    auto snap = take_snapshot();
    try {
      if (!q_.verify_invariants(why)) return false;
      return q_.check_invariants(why);
    } catch (const InjectedFailure&) {
      restore_with_retry(snap);
      note_recovery(site_);
      return true;
    }
  }

 private:
  static constexpr int kMaxRetries = 64;

  typename PipelinedParallelHeap<U64, Cmp>::Snapshot take_snapshot() {
    // snapshot() copies without comparing, but keep the retry discipline
    // anyway: it must never be the thing that sinks the drill.
    return q_.snapshot();
  }

  void restore_with_retry(const typename PipelinedParallelHeap<U64, Cmp>::Snapshot& s) {
    // restore() re-sorts with the (possibly throwing) comparator; restore
    // from the same snapshot until it sticks — restore is idempotent, it
    // only reads the snapshot's items.
    for (int attempt = 0; attempt < kMaxRetries; ++attempt) {
      try {
        q_.restore(s);
        return;
      } catch (const InjectedFailure&) {
      }
    }
  }

  PipelinedParallelHeap<U64, Cmp> q_;
  FailSite site_;
};

inline testing::OpTrace drill_trace(const FaultMatrixConfig& cfg, FailSite site) {
  testing::GenConfig gen;
  gen.r = cfg.r;
  gen.cycles = cfg.cycles;
  gen.key_bound = cfg.key_bound;
  gen.seed = cfg.seed ^ (0x9e3779b97f4a7c15ull * (static_cast<U64>(site) + 1));
  return testing::generate_trace(gen);
}

inline FaultSiteResult finish(FailSite site, bool ok, std::string detail) {
  FaultSiteResult row;
  row.site = site;
  row.stats = stats(site);
  row.fired = row.stats.fires > 0;
  row.ok = ok;
  row.detail = std::move(detail);
  disarm_all();
  return row;
}

/// Rollback drills: injected throw mid-cycle, guarded retry, exact stream.
template <typename Cmp>
FaultSiteResult rollback_drill(const FaultMatrixConfig& cfg, FailSite site,
                               FireSpec spec) {
  disarm_all();
  const testing::OpTrace trace = drill_trace(cfg, site);
  GuardedPipelinedAdapter<Cmp> q(cfg.r, site);
  arm(site, spec);
  testing::DiffOptions opt;
  opt.invariant_stride = 64;
  const testing::DiffFailure f = testing::run_differential(q, trace, opt);
  std::string detail;
  bool ok = !f.failed;
  if (f.failed) detail = "differential failed after rollback: " + f.message;
  return finish(site, ok, std::move(detail));
}

inline FaultSiteResult skip_reservice_drill(const FaultMatrixConfig& cfg) {
  // Detection drill: the harness must CATCH the wrong-answer bug. One
  // (r, seed) combination can pass by luck; sweep a few deterministically
  // and require at least one catch with the site having fired.
  disarm_all();
  bool detected = false;
  std::uint64_t fires = 0;
  for (const std::size_t r : {std::size_t{2}, std::size_t{3}, std::size_t{8}}) {
    for (std::uint64_t round = 0; round < 3 && !detected; ++round) {
      testing::GenConfig gen;
      gen.r = r;
      gen.cycles = cfg.cycles;
      gen.key_bound = cfg.key_bound;
      gen.seed = cfg.seed + 1000 * r + round;
      testing::OpTrace trace = testing::generate_trace(gen);
      trace.structure = "pipelined_heap_faulty";  // arms the site itself
      const testing::DiffFailure f = testing::run_trace(trace);
      fires += stats(FailSite::kSkipReservice).fires;
      if (f.failed) detected = true;
    }
    if (detected) break;
  }
  FaultSiteResult row;
  row.site = FailSite::kSkipReservice;
  row.stats = stats(FailSite::kSkipReservice);
  row.stats.fires = std::max<std::uint64_t>(row.stats.fires, fires);
  row.fired = fires > 0;
  row.ok = detected;
  if (!detected) {
    row.detail = "harness failed to detect the skip-reservice wrong-answer bug";
  } else {
    note_recovery(FailSite::kSkipReservice);  // verified detection
    row.stats.recoveries = stats(FailSite::kSkipReservice).recoveries;
  }
  disarm_all();
  return row;
}

inline FaultSiteResult worker_stall_drill(const FaultMatrixConfig& cfg) {
  disarm_all();
  const testing::OpTrace trace = drill_trace(cfg, FailSite::kWorkerStall);
  testing::MtPipelinedHeapAdapter q(cfg.r);
  arm(FailSite::kWorkerStall,
      FireSpec{/*nth=*/3, /*period=*/7, /*max_fires=*/40, /*stall_us=*/100});
  testing::DiffOptions opt;
  opt.invariant_stride = 64;
  const testing::DiffFailure f = testing::run_differential(q, trace, opt);
  const bool ok = !f.failed;
  if (ok) note_recovery(FailSite::kWorkerStall);  // stalls absorbed, stream exact
  return finish(FailSite::kWorkerStall, ok,
                ok ? "" : "stream diverged under injected worker stalls: " + f.message);
}

inline FaultSiteResult shard_cycle_drill(const FaultMatrixConfig& cfg) {
  disarm_all();
  const testing::OpTrace trace = drill_trace(cfg, FailSite::kShardCycle);
  using SH = ShardedHeap<U64>;
  SH::Config scfg;
  scfg.shards = cfg.shards;
  scfg.rebalance_interval = 16;
  scfg.quarantine = true;
  SH q(cfg.r, scfg);
  // Evaluations advance once per active shard per cycle; fire twice early
  // so the drill covers quarantine-then-keep-running and a repeat
  // quarantine with one fewer survivor.
  arm(FailSite::kShardCycle,
      FireSpec{/*nth=*/cfg.shards + 2, /*period=*/6 * cfg.shards + 1,
               /*max_fires=*/2, /*stall_us=*/0});
  testing::DiffOptions opt;
  opt.invariant_stride = 64;
  const testing::DiffFailure f = testing::run_differential(q, trace, opt);
  std::string detail;
  bool ok = !f.failed;
  if (f.failed) {
    detail = "stream diverged across quarantine: " + f.message;
  } else if (q.sharded_stats().quarantines == 0 &&
             stats(FailSite::kShardCycle).fires > 0) {
    ok = false;
    detail = "shard_cycle fired but no quarantine was recorded";
  }
  return finish(FailSite::kShardCycle, ok, std::move(detail));
}

inline FaultSiteResult think_throw_drill(const FaultMatrixConfig& cfg) {
  disarm_all();
  EngineConfig ecfg;
  ecfg.node_capacity = cfg.r;
  ecfg.think_threads = 2;
  ecfg.batch = cfg.r;
  ParallelHeapEngine<U64> engine(ecfg);
  const std::size_t n = std::min<std::size_t>(cfg.cycles * cfg.r / 4 + 64, 4096);
  std::vector<U64> seedv(n);
  for (std::size_t i = 0; i < n; ++i) seedv[i] = static_cast<U64>(i);
  engine.seed(seedv);

  // Each lane appends into its own slot; merged after run() returns.
  std::vector<std::vector<U64>> processed(2);
  arm(FailSite::kThinkThrow,
      FireSpec{/*nth=*/2, /*period=*/5, /*max_fires=*/4, /*stall_us=*/0});
  const EngineReport rep = engine.run(
      [&](unsigned tid, std::span<const U64> mine, std::span<const U64>,
          std::vector<U64>&) {
        processed[tid].insert(processed[tid].end(), mine.begin(), mine.end());
      });

  std::vector<U64> all;
  for (const auto& p : processed) all.insert(all.end(), p.begin(), p.end());
  std::sort(all.begin(), all.end());
  bool ok = true;
  std::string detail;
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::binary_search(all.begin(), all.end(), static_cast<U64>(i))) {
      ok = false;
      detail = "item " + std::to_string(i) + " was never processed after requeue";
      break;
    }
  }
  if (ok && !engine.heap().empty()) {
    ok = false;
    detail = "heap not drained after run";
  }
  if (ok && stats(FailSite::kThinkThrow).fires > 0 && rep.think_faults == 0) {
    ok = false;
    detail = "think_throw fired but no lane fault was recorded";
  }
  return finish(FailSite::kThinkThrow, ok, std::move(detail));
}

/// Scoped temp directory for the persist drills.
struct TempDir {
  std::string path;
  explicit TempDir(const char* prefix) : path(persist::make_temp_dir(prefix)) {}
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

/// Non-fatal checkpoint drill: injected failures mid-checkpoint-write must
/// be swallowed by the auto-checkpoint path (counted as recoveries) while
/// the stream stays exact against the oracle.
inline FaultSiteResult ckpt_write_drill(const FaultMatrixConfig& cfg) {
  disarm_all();
  const testing::OpTrace trace = drill_trace(cfg, FailSite::kCkptWrite);
  const TempDir dir("ph-fm-ckpt");
  persist::DurableOptions opt;
  opt.dir = dir.path;
  opt.fsync = persist::FsyncPolicy::kNever;  // drill targets the write path
  opt.checkpoint_interval = 4;
  persist::DurableHeap<PipelinedParallelHeap<U64>> q(
      PipelinedParallelHeap<U64>(cfg.r), opt);
  arm(FailSite::kCkptWrite,
      FireSpec{/*nth=*/5, /*period=*/11, /*max_fires=*/16, /*stall_us=*/0});
  testing::DiffOptions dopt;
  dopt.invariant_stride = 64;
  const testing::DiffFailure f = testing::run_differential(q, trace, dopt);
  const bool ok = !f.failed;
  return finish(FailSite::kCkptWrite, ok,
                ok ? "" : "stream diverged across failed checkpoints: " + f.message);
}

/// Retry wrapper for the WAL-site drills: an injected append/fsync failure
/// un-logs itself (WalWriter truncates back) before surfacing, so a plain
/// retry — no snapshot — must succeed with the op applied exactly once.
class RetryingDurableAdapter {
 public:
  RetryingDurableAdapter(std::size_t r, const persist::DurableOptions& opt,
                         FailSite site)
      : q_(PipelinedParallelHeap<U64>(r), opt), site_(site) {}

  std::size_t cycle(std::span<const U64> fresh, std::size_t k,
                    std::vector<U64>& out) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const std::size_t entry = out.size();
      try {
        return q_.cycle(fresh, k, out);
      } catch (const InjectedFailure&) {
        out.resize(entry);
        note_recovery(site_);
      }
    }
    return 0;  // surfaced as a stream mismatch by the harness
  }

  bool check_invariants(std::string* why) { return q_.check_invariants(why); }

 private:
  persist::DurableHeap<PipelinedParallelHeap<U64>> q_;
  FailSite site_;
};

inline FaultSiteResult wal_site_drill(const FaultMatrixConfig& cfg, FailSite site,
                                      FireSpec spec) {
  disarm_all();
  const testing::OpTrace trace = drill_trace(cfg, site);
  const TempDir dir("ph-fm-wal");
  persist::DurableOptions opt;
  opt.dir = dir.path;
  // kEveryRecord so the kWalFsync site evaluates; the kWalAppend drill
  // shares the policy — its firing schedule targets the append site.
  opt.fsync = persist::FsyncPolicy::kEveryRecord;
  opt.checkpoint_interval = 32;
  RetryingDurableAdapter q(cfg.r, opt, site);
  arm(site, spec);
  testing::DiffOptions dopt;
  dopt.invariant_stride = 64;
  const testing::DiffFailure f = testing::run_differential(q, trace, dopt);
  const bool ok = !f.failed;
  return finish(site, ok,
                ok ? "" : "stream diverged after WAL-failure retries: " + f.message);
}

/// Double-crash drill: recovery interrupted mid-replay (injected throw from
/// the kRecoverReplay site) must leave the directory exactly as recoverable;
/// the follow-up recovery's drained stream must match a fault-free oracle.
inline FaultSiteResult recover_replay_drill(const FaultMatrixConfig& cfg) {
  disarm_all();
  const TempDir dir("ph-fm-recover");
  using DH = persist::DurableHeap<PipelinedParallelHeap<U64>>;
  persist::DurableOptions opt;
  opt.dir = dir.path;
  opt.fsync = persist::FsyncPolicy::kNever;
  opt.checkpoint_interval = 0;  // keep every op in the WAL tail

  // Phase 1: run a deterministic op sequence, mirrored into an oracle.
  // (Local splitmix: fp_detail's helper only exists in failpoint builds.)
  const auto splitmix = [](std::uint64_t& st) {
    std::uint64_t z = (st += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  testing::SortedOracle oracle;
  std::uint64_t s = cfg.seed ^ 0xabcdef12345ull;
  std::vector<U64> fresh, sink;
  const std::size_t n_ops = 48;
  {
    DH q(PipelinedParallelHeap<U64>(cfg.r), opt);
    for (std::size_t i = 0; i < n_ops; ++i) {
      fresh.clear();
      for (std::size_t j = 0; j < cfg.r / 2 + 1; ++j) {
        fresh.push_back(splitmix(s) % cfg.key_bound);
      }
      const std::size_t k = i % 3 == 0 ? cfg.r / 2 : 0;
      sink.clear();
      q.cycle(fresh, k, sink);
      std::vector<U64> osink;
      oracle.cycle(fresh, k, osink);
      if (sink != osink) {
        return finish(FailSite::kRecoverReplay, false,
                      "pre-crash stream diverged from oracle");
      }
    }
  }  // clean close; the WAL tail still carries all n_ops records

  // Phase 2: recovery dies mid-replay (the "second crash").
  arm(FailSite::kRecoverReplay,
      FireSpec{/*nth=*/n_ops / 2, /*period=*/0, /*max_fires=*/1, /*stall_us=*/0});
  bool interrupted = false;
  try {
    DH q(PipelinedParallelHeap<U64>(cfg.r), opt);
  } catch (const InjectedFailure&) {
    interrupted = true;
  }
  if (!interrupted) {
    return finish(FailSite::kRecoverReplay, false,
                  "injected mid-replay failure did not surface");
  }

  // Phase 3: recover again (site exhausted its max_fires) and drain both
  // sides — the streams must be identical.
  {
    DH q(PipelinedParallelHeap<U64>(cfg.r), opt);
    for (int guard = 0; guard < 1 << 15; ++guard) {
      sink.clear();
      std::vector<U64> osink;
      const std::size_t nq = q.cycle({}, cfg.r, sink);
      const std::size_t no = oracle.cycle({}, cfg.r, osink);
      if (sink != osink) {
        return finish(FailSite::kRecoverReplay, false,
                      "post-double-crash drain diverged from oracle");
      }
      if (nq == 0 && no == 0) break;
    }
    std::string why;
    if (!q.check_invariants(&why)) {
      return finish(FailSite::kRecoverReplay, false,
                    "invariants failed after double-crash recovery: " + why);
    }
  }
  note_recovery(FailSite::kRecoverReplay);
  return finish(FailSite::kRecoverReplay, true, "");
}

/// Producer-death drill: injected kIngestFlush failures abort the staging
/// sweep mid-flush; the restage path must conserve every item (admission may
/// lag the faulted cycles, so the check is bounded-lag conservation plus
/// final-drain convergence).
inline FaultSiteResult ingest_flush_drill(const FaultMatrixConfig& cfg) {
  disarm_all();
  const testing::OpTrace trace = drill_trace(cfg, FailSite::kIngestFlush);
  ingest::IngestConfig ic;
  ic.producers = 4;
  testing::IngestTierAdapter<PipelinedParallelHeap<U64>> q(
      PipelinedParallelHeap<U64>(cfg.r), ic);
  arm(FailSite::kIngestFlush,
      FireSpec{/*nth=*/3, /*period=*/5, /*max_fires=*/25, /*stall_us=*/0});
  testing::DiffOptions opt;
  opt.invariant_stride = 64;
  opt.relaxed = true;
  opt.bounded_lag = true;  // a faulted flush lawfully defers admission
  const testing::DiffFailure f = testing::run_differential(q, trace, opt);
  const bool ok = !f.failed;
  return finish(FailSite::kIngestFlush, ok,
                ok ? "" : "items lost/duplicated across flush faults: " + f.message);
}

/// Deferred-putback drill: the overlapped team putback faults (injected),
/// the quiesce handshake retries the unfinished shards serially, and the
/// deletion stream must stay EXACT — the fault is fully absorbed.
inline FaultSiteResult shard_putback_drill(const FaultMatrixConfig& cfg) {
  disarm_all();
  const testing::OpTrace trace = drill_trace(cfg, FailSite::kShardPutback);
  using SH = ShardedHeap<U64>;
  SH::Config scfg;
  scfg.shards = 3;
  scfg.rebalance_interval = 16;
  scfg.workers = 2;
  scfg.overlap_putback = true;
  scfg.min_hint = false;  // every shard putback must actually run
  SH q(cfg.r, scfg);
  arm(FailSite::kShardPutback,
      FireSpec{/*nth=*/2, /*period=*/3, /*max_fires=*/20, /*stall_us=*/0});
  testing::DiffOptions opt;
  opt.invariant_stride = 64;
  const testing::DiffFailure f = testing::run_differential(q, trace, opt);
  const bool ok = !f.failed;
  return finish(FailSite::kShardPutback, ok,
                ok ? "" : "stream diverged across putback retries: " + f.message);
}

// ----------------------------------------------------------- dist drills
// All four run the shard supervisor over LOOPBACK backends (no fork, no
// threads — the same protocol/journal/takeover paths as process mode, and
// safe under tsan). ph_crash --mode=shard-proc drives the process carrier
// with real SIGKILLs.

/// Deterministic clock shared by the supervisor and the watchdog in the
/// dist drills (fn-pointer config seams — no state capture allowed).
inline std::atomic<std::uint64_t>& dist_fake_now() {
  static std::atomic<std::uint64_t> now{0};
  return now;
}
inline std::uint64_t dist_fake_clock() {
  return dist_fake_now().load(std::memory_order_relaxed);
}

inline typename dist::ShardSupervisor<U64>::Config dist_drill_config(
    const std::string& dir) {
  typename dist::ShardSupervisor<U64>::Config scfg;
  scfg.shards = 2;
  scfg.node_capacity = 8;
  scfg.dir = dir;
  scfg.fsync = persist::FsyncPolicy::kNever;
  scfg.checkpoint_interval = 16;
  scfg.use_processes = false;
  scfg.clock = &dist_fake_clock;
  return scfg;
}

/// Advances the shared fake clock (and polls the watchdog, when given one)
/// before every cycle, so respawn backoff deadlines and stall verdicts
/// march deterministically through the differential trace.
struct DistClockedAdapter {
  dist::ShardSupervisor<U64>& q;
  PhaseWatchdog* wd = nullptr;
  std::uint64_t tick_ns = 10'000'000;

  std::size_t cycle(std::span<const U64> fresh, std::size_t k,
                    std::vector<U64>& out) {
    dist_fake_now().fetch_add(tick_ns, std::memory_order_relaxed);
    if (wd != nullptr) wd->poll();
    return q.cycle(fresh, k, out);
  }
  bool check_invariants(std::string* why) { return q.check_invariants(why); }
};

/// transport_send / transport_recv: a frame lost mid-RPC must be absorbed
/// by kill + takeover + journal replay + retry, with the stream EXACT and
/// at least one takeover actually exercised.
inline FaultSiteResult dist_transport_drill(const FaultMatrixConfig& cfg,
                                            FailSite site, FireSpec spec) {
  disarm_all();
  const testing::OpTrace trace = drill_trace(cfg, site);
  const TempDir dir("ph-fm-dist");
  dist_fake_now().store(0, std::memory_order_relaxed);
  dist::ShardSupervisor<U64> q(dist_drill_config(dir.path));
  DistClockedAdapter a{q};
  arm(site, spec);
  testing::DiffOptions opt;
  opt.invariant_stride = 64;
  const testing::DiffFailure f = testing::run_differential(a, trace, opt);
  std::string detail;
  bool ok = !f.failed;
  if (f.failed) {
    detail = "stream diverged across transport failovers: " + f.message;
  } else if (q.stats().takeovers == 0 && stats(site).fires > 0) {
    ok = false;
    detail = std::string(fail_site_name(site)) +
             " fired but no takeover was recorded";
  }
  return finish(site, ok, std::move(detail));
}

/// shard_spawn: injected spawn failures (here: from the very first spawn at
/// construction) leave the shard serving in-parent; bounded backoff retries
/// re-admit it mid-trace once the site exhausts its fires — stream EXACT.
inline FaultSiteResult dist_spawn_drill(const FaultMatrixConfig& cfg) {
  disarm_all();
  const testing::OpTrace trace = drill_trace(cfg, FailSite::kShardSpawn);
  const TempDir dir("ph-fm-spawn");
  dist_fake_now().store(0, std::memory_order_relaxed);
  // Armed BEFORE construction: both initial spawns fail, both shards start
  // life taken-over, and respawn succeeds once max_fires is exhausted.
  arm(FailSite::kShardSpawn,
      FireSpec{/*nth=*/1, /*period=*/1, /*max_fires=*/2, /*stall_us=*/0});
  dist::ShardSupervisor<U64> q(dist_drill_config(dir.path));
  DistClockedAdapter a{q};
  testing::DiffOptions opt;
  opt.invariant_stride = 64;
  const testing::DiffFailure f = testing::run_differential(a, trace, opt);
  std::string detail;
  bool ok = !f.failed;
  if (f.failed) {
    detail = "stream diverged across spawn retries: " + f.message;
  } else if (q.stats().spawn_retries == 0) {
    ok = false;
    detail = "shard_spawn fired but no spawn retry was recorded";
  } else if (q.stats().respawns == 0) {
    ok = false;
    detail = "shard was never re-admitted after the spawn faults cleared";
  }
  return finish(FailSite::kShardSpawn, ok, std::move(detail));
}

/// heartbeat_drop: the shard keeps answering requests but its beats vanish;
/// detection must come through the watchdog channel (consecutive stall
/// verdicts -> failover), while the stream stays EXACT across the forced
/// takeovers and re-admissions.
inline FaultSiteResult dist_heartbeat_drill(const FaultMatrixConfig& cfg) {
  disarm_all();
  const testing::OpTrace trace = drill_trace(cfg, FailSite::kHeartbeatDrop);
  const TempDir dir("ph-fm-beat");
  dist_fake_now().store(0, std::memory_order_relaxed);
  dist::ShardSupervisor<U64> q(dist_drill_config(dir.path));
  PhaseWatchdog::Config wcfg;
  wcfg.stall_timeout_ns = 50'000'000;   // ticks are 100 ms: one quiet tick stalls
  wcfg.dump_after_polls = 1u << 30;     // the drill wants verdicts, not dumps
  wcfg.clock = &dist_fake_clock;
  PhaseWatchdog wd(wcfg);
  q.attach_watchdog(wd, /*polls_to_failover=*/2);
  arm(FailSite::kHeartbeatDrop,
      FireSpec{/*nth=*/1, /*period=*/1, /*max_fires=*/40, /*stall_us=*/0});
  DistClockedAdapter a{q, &wd, /*tick_ns=*/100'000'000};
  testing::DiffOptions opt;
  opt.invariant_stride = 64;
  const testing::DiffFailure f = testing::run_differential(a, trace, opt);
  std::string detail;
  bool ok = !f.failed;
  if (f.failed) {
    detail = "stream diverged across heartbeat-loss failovers: " + f.message;
  } else if (q.stats().stall_verdicts == 0) {
    ok = false;
    detail = "dropped heartbeats never escalated to a watchdog stall verdict";
  }
  return finish(FailSite::kHeartbeatDrop, ok, std::move(detail));
}

// ------------------------------------------------------------ svc drills

/// Deterministic clock for the scheduler-service drills (fn-pointer seam).
inline std::atomic<std::uint64_t>& svc_fake_now() {
  static std::atomic<std::uint64_t> now{1};
  return now;
}
inline std::uint64_t svc_fake_clock() {
  return svc_fake_now().load(std::memory_order_relaxed);
}

/// svc_accept / svc_dispatch: drive SchedulerCore through a schedule/cancel/
/// poll workload with the site armed, retrying refusals and aborted polls,
/// then drain completely and audit the client-side oracle — every acked,
/// uncancelled job delivered EXACTLY once, nothing fabricated, ledger
/// conservation intact.
inline FaultSiteResult svc_site_drill(const FaultMatrixConfig& cfg,
                                      FailSite site, FireSpec spec) {
  disarm_all();
  const TempDir dir("ph-fm-svc");
  svc_fake_now().store(1'000'000'000ull, std::memory_order_relaxed);
  svc::SvcConfig sc;
  sc.dir = dir.path;
  sc.shards = 2;
  sc.node_capacity = 8;
  sc.producers = 2;
  sc.clock = &svc_fake_clock;
  svc::SchedulerCore core(sc);
  arm(site, spec);

  U64 rng = cfg.seed ^ (0x9e3779b97f4a7c15ull * (static_cast<U64>(site) + 1));
  auto rnd = [&rng]() {
    U64 z = (rng += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  auto fail = [&](std::string why) { return finish(site, false, std::move(why)); };

  std::map<std::pair<std::uint32_t, U64>, int> acked;      // -> times delivered
  std::map<std::pair<std::uint32_t, U64>, bool> cancelled; // cancel acked
  std::vector<svc::Job> due;
  std::string why;
  const std::size_t jobs = cfg.cycles;
  for (std::size_t i = 0; i < jobs; ++i) {
    const std::uint32_t tenant = static_cast<std::uint32_t>(rnd() % 8);
    const U64 id = i + 1;
    std::uint64_t deadline = 0;
    svc::Admit a = svc::Admit::kTransient;
    for (int tries = 0; tries < 64 && a == svc::Admit::kTransient; ++tries) {
      a = core.schedule(tenant, rnd() % 50'000'000, id, rnd(), 0, &deadline);
    }
    if (a != svc::Admit::kOk) return fail("schedule retries exhausted");
    acked[{tenant, id}] = 0;
    if (rnd() % 7 == 0) {  // durable cancel for a random recent job
      a = svc::Admit::kTransient;
      for (int tries = 0; tries < 64 && a == svc::Admit::kTransient; ++tries) {
        a = core.cancel(tenant, deadline, id);
      }
      if (a != svc::Admit::kOk) return fail("cancel retries exhausted");
      cancelled[{tenant, id}] = true;
    }
    if (i % 8 == 7) {
      svc_fake_now().fetch_add(10'000'000, std::memory_order_relaxed);
      due.clear();
      core.poll_due(16, due);  // aborts are lawful: everything requeues
      for (const svc::Job& j : due) {
        auto it = acked.find({j.tenant, j.id});
        if (it == acked.end()) return fail("delivered a job never acked");
        if (++it->second > 1) return fail("job delivered twice");
      }
      if (!core.check_invariants(&why)) return fail("invariants: " + why);
    }
  }
  // Drain: march the clock past every deadline and poll until empty. The
  // armed site has bounded max_fires, so aborts cannot recur forever.
  svc_fake_now().fetch_add(3'600'000'000'000ull, std::memory_order_relaxed);
  for (int iter = 0; iter < 4000 && core.backlog() > 0; ++iter) {
    due.clear();
    core.poll_due(64, due);
    for (const svc::Job& j : due) {
      auto it = acked.find({j.tenant, j.id});
      if (it == acked.end()) return fail("delivered a job never acked");
      if (++it->second > 1) return fail("job delivered twice");
    }
  }
  if (core.backlog() != 0) return fail("drain left jobs in the tier");
  if (!core.check_invariants(&why)) return fail("post-drain invariants: " + why);
  const svc::SvcStats st = core.stats();
  if (st.acked != st.delivered + st.cancelled) {
    return fail("ledger conservation broken after drain");
  }
  for (const auto& [key, times] : acked) {
    const bool was_cancelled = cancelled.count(key) != 0;
    if (!was_cancelled && times != 1) {
      return fail("uncancelled job not delivered exactly once");
    }
  }
  if (site == FailSite::kSvcDispatch && core.stats().aborted_polls == 0 &&
      stats(site).fires > 0) {
    return fail("svc_dispatch fired but no poll transaction aborted");
  }
  return finish(site, true, "");
}

}  // namespace fm_detail

/// Runs every site's drill; see the file comment for the per-site contracts.
inline FaultMatrixReport run_fault_matrix(const FaultMatrixConfig& cfg = {},
                                          std::ostream* log = nullptr) {
  FaultMatrixReport rep;

  rep.rows.push_back(fm_detail::rollback_drill<std::less<fm_detail::U64>>(
      cfg, FailSite::kRootAlloc,
      FireSpec{/*nth=*/7, /*period=*/23, /*max_fires=*/8, /*stall_us=*/0}));
  rep.rows.push_back(fm_detail::rollback_drill<std::less<fm_detail::U64>>(
      cfg, FailSite::kSpawnAlloc,
      FireSpec{/*nth=*/3, /*period=*/17, /*max_fires=*/8, /*stall_us=*/0}));
  rep.rows.push_back(fm_detail::rollback_drill<std::less<fm_detail::U64>>(
      cfg, FailSite::kTornInsert,
      FireSpec{/*nth=*/2, /*period=*/13, /*max_fires=*/8, /*stall_us=*/0}));
  // Comparator evaluations are the hot path: fire rarely, bounded.
  rep.rows.push_back(fm_detail::rollback_drill<fm_detail::ThrowingLess>(
      cfg, FailSite::kCompareThrow,
      FireSpec{/*nth=*/5000, /*period=*/9973, /*max_fires=*/4, /*stall_us=*/0}));
  rep.rows.push_back(fm_detail::skip_reservice_drill(cfg));
  rep.rows.push_back(fm_detail::think_throw_drill(cfg));
  rep.rows.push_back(fm_detail::worker_stall_drill(cfg));
  rep.rows.push_back(fm_detail::shard_cycle_drill(cfg));
  rep.rows.push_back(fm_detail::ckpt_write_drill(cfg));
  rep.rows.push_back(fm_detail::wal_site_drill(
      cfg, FailSite::kWalAppend,
      FireSpec{/*nth=*/4, /*period=*/19, /*max_fires=*/12, /*stall_us=*/0}));
  rep.rows.push_back(fm_detail::wal_site_drill(
      cfg, FailSite::kWalFsync,
      FireSpec{/*nth=*/6, /*period=*/29, /*max_fires=*/12, /*stall_us=*/0}));
  rep.rows.push_back(fm_detail::recover_replay_drill(cfg));
  rep.rows.push_back(fm_detail::ingest_flush_drill(cfg));
  rep.rows.push_back(fm_detail::shard_putback_drill(cfg));
  rep.rows.push_back(fm_detail::dist_transport_drill(
      cfg, FailSite::kTransportSend,
      FireSpec{/*nth=*/6, /*period=*/23, /*max_fires=*/6, /*stall_us=*/0}));
  rep.rows.push_back(fm_detail::dist_transport_drill(
      cfg, FailSite::kTransportRecv,
      FireSpec{/*nth=*/9, /*period=*/31, /*max_fires=*/6, /*stall_us=*/0}));
  rep.rows.push_back(fm_detail::dist_spawn_drill(cfg));
  rep.rows.push_back(fm_detail::dist_heartbeat_drill(cfg));
  rep.rows.push_back(fm_detail::svc_site_drill(
      cfg, FailSite::kSvcAccept,
      FireSpec{/*nth=*/5, /*period=*/11, /*max_fires=*/20, /*stall_us=*/0}));
  rep.rows.push_back(fm_detail::svc_site_drill(
      cfg, FailSite::kSvcDispatch,
      FireSpec{/*nth=*/2, /*period=*/3, /*max_fires=*/12, /*stall_us=*/0}));

  if (log) {
    for (const FaultSiteResult& r : rep.rows) {
      *log << "fault-matrix: " << fail_site_name(r.site)
           << (r.ok ? "  OK " : "  FAIL ") << "(evals=" << r.stats.evaluations
           << " fires=" << r.stats.fires << " recoveries=" << r.stats.recoveries
           << ")";
      if (!r.detail.empty()) *log << " — " << r.detail;
      *log << "\n";
    }
    *log << "fault-matrix: " << (rep.ok() ? "ALL SITES GREEN" : "RED") << "\n";
  }
  return rep;
}

}  // namespace ph::robustness
