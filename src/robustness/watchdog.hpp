// PhaseWatchdog — liveness monitoring for phase-structured pipelines.
//
// The pipelined heap's drivers advance in strict phases (half-step barriers,
// think/maintenance joins, shard cycles); a stalled worker doesn't crash
// anything, it silently wedges the whole cycle behind a barrier. The
// watchdog makes that visible: each participant owns a *channel* and beats
// it at its phase crossings (one relaxed-ish atomic store of a monotonic
// clock); a poller — the driver between cycles, or the optional background
// monitor thread — compares every channel's last beat against a stall
// timeout and escalates:
//
//   rung 1  every poll that finds a stalled channel bumps the telemetry
//           kWatchdogStalls counter (cheap, machine-readable, soaks watch it)
//   rung 2  after `dump_after_polls` consecutive stalled polls, render the
//           channel table and merged counters as one report block and hand
//           it to the report sink (stderr by default; pluggable via
//           set_report_sink), once per episode — and persist the flight
//           recorder ring to a timestamped file (the black-box dump)
//   rung 3  optionally, after `abort_after_polls` consecutive stalled polls,
//           dump the telemetry trace rings and abort() — for CI jobs where
//           a wedged process would otherwise burn the job timeout. The full
//           trace dump sits on this rung only: reading another thread's
//           ring races with its owner, which is fine when we are already
//           going down but not for a recoverable report.
//
// The clock is injectable so tests drive the ladder deterministically
// without sleeping.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "telemetry/telemetry.hpp"
#include "util/assert.hpp"

namespace ph::robustness {

class PhaseWatchdog {
 public:
  /// Receives each rung-2/3 report as one formatted text block. The default
  /// sink writes to stderr; embedders (tests, a logging layer) replace it.
  /// Reports also always land in the flight recorder regardless of sink.
  using ReportSink = std::function<void(const std::string&)>;

  struct Config {
    std::uint64_t stall_timeout_ns = 500'000'000;  ///< beat age that counts as stalled
    std::uint64_t poll_interval_ns = 100'000'000;  ///< monitor-thread cadence
    std::uint32_t dump_after_polls = 3;   ///< consecutive stalled polls before dump
    bool abort_on_stall = false;          ///< enable rung 3
    std::uint32_t abort_after_polls = 10; ///< consecutive stalled polls before abort
    /// Injectable monotonic clock (ns); nullptr = steady_clock. Tests use
    /// this to walk the escalation ladder without wall-clock sleeps.
    std::uint64_t (*clock)() = nullptr;
  };

  struct PollResult {
    std::size_t stalled = 0;  ///< channels past the stall timeout this poll
    bool dumped = false;      ///< rung 2 fired this poll
  };

  PhaseWatchdog() : PhaseWatchdog(Config()) {}
  explicit PhaseWatchdog(Config cfg) : cfg_(cfg) {
    PH_ASSERT(cfg_.stall_timeout_ns > 0);
    if (cfg_.dump_after_polls == 0) cfg_.dump_after_polls = 1;
    if (cfg_.abort_after_polls < cfg_.dump_after_polls) {
      cfg_.abort_after_polls = cfg_.dump_after_polls;
    }
  }

  PhaseWatchdog(const PhaseWatchdog&) = delete;
  PhaseWatchdog& operator=(const PhaseWatchdog&) = delete;
  ~PhaseWatchdog() { stop(); }

  /// Registers a heartbeat channel (NOT thread-safe against beat()/poll();
  /// add all channels before monitoring starts). Returns the channel id.
  std::size_t add_channel(std::string name) {
    auto ch = std::make_unique<Channel>();
    ch->name = std::move(name);
    ch->last_beat.store(now(), std::memory_order_relaxed);
    channels_.push_back(std::move(ch));
    return channels_.size() - 1;
  }

  std::size_t num_channels() const noexcept { return channels_.size(); }

  /// Heartbeat: the channel's owner calls this at every phase crossing.
  /// One atomic store (plus a flight-recorder append); safe against a
  /// concurrent poller.
  void beat(std::size_t ch) noexcept {
    channels_[ch]->last_beat.store(now(), std::memory_order_release);
    obs::flight(obs::FlightKind::kWatchdogBeat, ch);
  }

  /// Replaces the rung-2/3 report sink (default: stderr). Install before
  /// monitoring starts; not synchronized against a concurrent poller.
  void set_report_sink(ReportSink sink) { sink_ = std::move(sink); }

  /// Rung-2 reports emitted (episodes that reached dump_after_polls).
  std::uint64_t reports() const noexcept {
    return reports_.load(std::memory_order_relaxed);
  }

  /// Path of the most recent stall-verdict flight dump ("" if none yet).
  std::string last_flight_dump() const {
    std::lock_guard lk(dump_path_mu_);
    return last_flight_dump_;
  }

  /// One scan over all channels, advancing the escalation ladder. Exactly
  /// one poller at a time (the monitor thread when started, else the
  /// driver).
  PollResult poll() {
    PollResult res;
    const std::uint64_t t = now();
    for (std::size_t ci = 0; ci < channels_.size(); ++ci) {
      Channel& ch = *channels_[ci];
      const std::uint64_t beat_t = ch.last_beat.load(std::memory_order_acquire);
      const bool stalled = t >= beat_t && t - beat_t > cfg_.stall_timeout_ns;
      if (!stalled) {
        // Recovered: close the episode so the next stall dumps again.
        ch.consecutive.store(0, std::memory_order_relaxed);
        ch.episode_dumped = false;
        continue;
      }
      ++res.stalled;
      const std::uint32_t consec =
          ch.consecutive.fetch_add(1, std::memory_order_relaxed) + 1;
      stalls_.fetch_add(1, std::memory_order_relaxed);
      telemetry::count(telemetry::Counter::kWatchdogStalls);
      obs::flight(obs::FlightKind::kWatchdogStall, ci, consec);
      if (consec >= cfg_.dump_after_polls && !ch.episode_dumped) {
        ch.episode_dumped = true;
        res.dumped = true;
        reports_.fetch_add(1, std::memory_order_relaxed);
        obs::flight(obs::FlightKind::kWatchdogReport, ci);
        dump_report(t);
        // The stall *verdict* also triggers the black box: persist the event
        // ring now, while the wedged state is still observable — the process
        // may be aborted (rung 3, CI timeout) before anything else runs.
        const std::string path =
            obs::FlightRecorder::instance().dump_to_file("watchdog-stall");
        std::lock_guard lk(dump_path_mu_);
        last_flight_dump_ = path;
      }
      if (cfg_.abort_on_stall && consec >= cfg_.abort_after_polls) {
        obs::flight(obs::FlightKind::kWatchdogAbort, ci, consec);
        std::fprintf(stderr,
                     "ph: watchdog: channel '%s' stalled for %u consecutive polls"
                     " — aborting; trace rings follow\n",
                     ch.name.c_str(), consec);
        obs::FlightRecorder::instance().dump_to_file("watchdog-abort");
        telemetry::write_chrome_trace(std::cerr);
        std::cerr << std::endl;
        std::abort();
      }
    }
    return res;
  }

  /// Starts the background monitor thread (sleeps poll_interval_ns between
  /// polls). Idempotent.
  void start() {
    if (monitor_.joinable()) return;
    stop_.store(false, std::memory_order_relaxed);
    monitor_ = std::thread([this] {
      telemetry::name_thread("watchdog");
      while (!stop_.load(std::memory_order_acquire)) {
        poll();
        // Sleep in small slices so stop() never waits a full interval.
        std::uint64_t slept = 0;
        while (slept < cfg_.poll_interval_ns &&
               !stop_.load(std::memory_order_acquire)) {
          const std::uint64_t slice =
              std::min<std::uint64_t>(cfg_.poll_interval_ns - slept, 2'000'000);
          std::this_thread::sleep_for(std::chrono::nanoseconds(slice));
          slept += slice;
        }
      }
    });
  }

  /// Stops and joins the monitor thread (no-op if not started).
  void stop() {
    if (!monitor_.joinable()) return;
    stop_.store(true, std::memory_order_release);
    monitor_.join();
  }

  /// Total stalled-channel observations across all polls.
  std::uint64_t stalls() const noexcept {
    return stalls_.load(std::memory_order_relaxed);
  }

  /// Consecutive stalled polls currently charged to `ch` (0 = healthy as of
  /// the last poll). This is the *verdict* consumers read: ShardedHeap's
  /// watchdog-driven quarantine retires a shard once its channel's verdict
  /// reaches a configured threshold. Safe against a concurrent poller.
  std::uint32_t consecutive_stalls(std::size_t ch) const noexcept {
    return channels_[ch]->consecutive.load(std::memory_order_relaxed);
  }

 private:
  struct Channel {
    std::string name;
    std::atomic<std::uint64_t> last_beat{0};
    // Ladder state: written only by the single poller, but readable from
    // verdict consumers on other threads — hence atomic.
    std::atomic<std::uint32_t> consecutive{0};
    bool episode_dumped = false;
  };

  std::uint64_t now() const {
    if (cfg_.clock != nullptr) return cfg_.clock();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// Renders the rung-2 report and hands it to the sink as one block (a
  /// replacement sink gets a parseable unit, and interleaving with other
  /// stderr writers can't shred the table).
  void dump_report(std::uint64_t t) const {
    char line[256];
    std::string report = "ph: watchdog: stall detected; channel table:\n";
    for (const auto& chp : channels_) {
      const std::uint64_t beat_t = chp->last_beat.load(std::memory_order_acquire);
      const std::uint64_t age = t >= beat_t ? t - beat_t : 0;
      std::snprintf(line, sizeof(line),
                    "ph:   %-24s last beat %8.3f ms ago  (%u stalled polls)\n",
                    chp->name.c_str(), static_cast<double>(age) / 1e6,
                    chp->consecutive.load(std::memory_order_relaxed));
      report += line;
    }
    if (telemetry::kEnabled) {
      const telemetry::MetricsSnapshot snap = telemetry::Registry::instance().collect();
      report += "ph: watchdog: merged counters:\n";
      for (std::size_t c = 0; c < telemetry::kNumCounters; ++c) {
        if (snap.counters[c] == 0) continue;
        std::snprintf(line, sizeof(line), "ph:   %-18s %llu\n",
                      telemetry::counter_name(static_cast<telemetry::Counter>(c)),
                      static_cast<unsigned long long>(snap.counters[c]));
        report += line;
      }
    }
    if (sink_) {
      sink_(report);
    } else {
      std::fwrite(report.data(), 1, report.size(), stderr);
      std::fflush(stderr);
    }
  }

  Config cfg_;
  std::vector<std::unique_ptr<Channel>> channels_;
  ReportSink sink_;  ///< empty = stderr
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<std::uint64_t> reports_{0};
  mutable std::mutex dump_path_mu_;
  std::string last_flight_dump_;
  std::atomic<bool> stop_{false};
  std::thread monitor_;
};

}  // namespace ph::robustness
