// Minimal streaming JSON writer for the telemetry exporters.
//
// The metrics (--json) and Chrome-trace (--trace) exporters need structured
// output that external tools (jq, Perfetto, pandas) parse mechanically; a
// hand-rolled writer keeps the repo dependency-free. The writer tracks the
// container stack so commas and closers are always placed correctly — a
// malformed emission is a PH_ASSERT failure in debug builds, not a silently
// broken file.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace ph::telemetry {

/// Escapes `s` per RFC 8259 (quotes, backslash, control characters).
std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits `"name":` inside an object; the next value call supplies the value.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& kv(std::string_view name, const T& v) {
    key(name);
    return value(v);
  }

  /// Depth of the open container stack (0 when the document is complete).
  std::size_t depth() const noexcept { return stack_.size(); }

 private:
  enum class Ctx : unsigned char { kObject, kArray };
  void separate();  // comma/placement bookkeeping before a value or key

  std::ostream& os_;
  std::vector<Ctx> stack_;
  bool first_in_container_ = true;
  bool have_key_ = false;
};

}  // namespace ph::telemetry
