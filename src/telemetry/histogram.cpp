#include "telemetry/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace ph::telemetry {

using hist_detail::bucket_hi;
using hist_detail::bucket_lo;
using hist_detail::kNumBuckets;

std::uint64_t HistogramSnapshot::percentile(double p) const noexcept {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the target sample, 1-based: ⌈p/100 · count⌉, at least 1.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_))));
  // The rank-1 sample is the recorded minimum; and a bucket's upper edge can
  // undershoot min_ when all samples share the min's bucket, so clamp into
  // the observed [min_, max_] envelope rather than only capping at max_.
  if (rank == 1) return min_;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= rank) return std::clamp(bucket_hi(b), min_, max_);
  }
  return max_;
}

HistogramSnapshot& HistogramSnapshot::operator+=(const HistogramSnapshot& o) noexcept {
  for (std::size_t b = 0; b < kNumBuckets; ++b) buckets_[b] += o.buckets_[b];
  count_ += o.count_;
  sum_ += o.sum_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
  return *this;
}

std::string HistogramSnapshot::to_string() const {
  std::ostringstream os;
  os << "count=" << count();
  if (count() > 0) {
    os << " min=" << min() << " mean=" << mean() << " p50=" << percentile(50)
       << " p90=" << percentile(90) << " p99=" << percentile(99)
       << " max=" << max();
  }
  return os.str();
}

void LogHistogram::merge_into(HistogramSnapshot& out) const noexcept {
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    const std::uint64_t n = buckets_[b].load(std::memory_order_relaxed);
    if (n != 0) out.add_sample_bucket(b, n);
  }
  out.sum_ += static_cast<double>(sum_.load(std::memory_order_relaxed));
  out.min_ = std::min(out.min_, min_.load(std::memory_order_relaxed));
  out.max_ = std::max(out.max_, max_.load(std::memory_order_relaxed));
}

void LogHistogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

}  // namespace ph::telemetry
