// Thread-safe telemetry core: per-thread slots, merged on demand.
//
// StatRegistry (util/stats.hpp) is deliberately not thread-safe — concurrent
// components were expected to keep private counters and merge at phase
// boundaries, which meant nothing could be observed *during* a run and every
// component invented its own merge. This registry closes that gap the way
// the cacheline.hpp comment prescribes: each thread registers once and gets
// a cache-line-aligned slot of relaxed-atomic counters, per-phase latency
// histograms, and a private trace ring. Writers never share a line; readers
// (collect(), write_chrome_trace()) merge every slot on demand without
// stopping the writers.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/histogram.hpp"
#include "telemetry/trace.hpp"
#include "util/cacheline.hpp"

namespace ph::telemetry {

class JsonWriter;

/// Instrumented pipeline phases; each gets a latency histogram per thread
/// and a span name in the Chrome trace.
enum class Phase : unsigned {
  kRootWork = 0,    ///< serial O(r) root merge/refill of a cycle
  kOddHalfStep,     ///< servicing all odd-level update processes
  kEvenHalfStep,    ///< servicing all even-level update processes
  kThink,           ///< one worker's share of the application think phase
  kThinkStall,      ///< driver waiting on the think team after maintenance
  kSteal,           ///< substitute fetch stealing from in-flight carried sets
  kMaintService,    ///< one maintenance worker's share of a half-step
  kShardRoute,      ///< sharded front end splitting a batch by key range
  kShardMerge,      ///< K-way tournament over per-shard prefixes
  kShardPull,       ///< one worker's stint of the concurrent per-shard pulls
  kShardPutback,    ///< returning losing prefix suffixes to their shards
  kCkptWrite,       ///< serializing + publishing one durable checkpoint
  kWalAppend,       ///< appending (and per-policy fsyncing) one WAL record
  kWalFsync,        ///< one fsync(2) issued by the WAL writer (latency source)
  kRecoverReplay,   ///< full recovery pass: load checkpoint + replay WAL tail
  kIngestFlush,     ///< draining staged producer buffers into sorted runs
  kSvcCommit,       ///< service group-commit: one admission record + fsync
  kSvcDispatch,     ///< service due-dispatch: pop, DRR select, requeue record
  kCount
};
inline constexpr std::size_t kNumPhases = static_cast<std::size_t>(Phase::kCount);
const char* phase_name(Phase p) noexcept;

/// Monotone event counters, merged across threads at report time.
enum class Counter : unsigned {
  kCycles = 0,
  kItemsInserted,
  kItemsDeleted,
  kProcsSpawned,
  kProcsServiced,
  kSteals,
  kThinkItems,       ///< items successfully thought (requeued shares recount
                     ///< only when re-thought, never at delivery)
  kHalfSteps,
  kShardRouted,      ///< items routed across shards by the partition map
  kShardPutbacks,    ///< pulled-but-untaken prefix items returned to shards
  kShardRebalances,  ///< partition-map re-estimations applied
  kShardMergeWidth,  ///< shards contributing to a deletion batch, summed
  kWatchdogStalls,   ///< watchdog polls that found a stalled channel
  kShardQuarantines, ///< shards retired by fault or deadline
  kThinkFaults,      ///< engine think-callbacks that threw (lane recovered)
  kCkptWrites,       ///< checkpoints published (atomic rename completed)
  kCkptBytes,        ///< bytes written into published checkpoint files
  kWalAppends,       ///< WAL records appended
  kWalBytes,         ///< bytes appended to WAL segments (frames incl. headers)
  kWalFsyncs,        ///< fsync(2) calls issued by the WAL writer
  kWalReplayed,      ///< WAL records applied during recovery
  kRecoveries,       ///< completed recovery passes (DurableHeap opens)
  kShardHintSkips,   ///< shard pulls skipped by the cross-shard min hint
  kShardParallelCycles, ///< sharded cycles whose pulls ran on the worker team
  kLaneQuarantines,  ///< engine think lanes retired after repeated failures
  kIngestStaged,     ///< items staged into producer buffers (ingest tier)
  kIngestRuns,       ///< sorted runs coalesced out of the staging buffers
  kIngestAdmitted,   ///< staged items admitted into the inner heap's cycle
  kIngestDeferred,   ///< run-cycles spent pending under bounded staleness
  kSvcAcked,         ///< service schedule/cancel ops made durable and acked
  kSvcDelivered,     ///< due jobs delivered to pollers (commit record landed)
  kSvcShed,          ///< requests refused with kOverloaded backpressure
  kSvcPolls,         ///< PollDue transactions executed (incl. empty ones)
  kCount
};
inline constexpr std::size_t kNumCounters = static_cast<std::size_t>(Counter::kCount);
const char* counter_name(Counter c) noexcept;

/// One thread's telemetry state. Aligned so adjacent slots never share a
/// cache line; all mutation is by the owning thread (counters/histograms via
/// relaxed atomics so readers may merge concurrently).
struct alignas(kCacheLine) ThreadSlot {
  std::array<std::atomic<std::uint64_t>, kNumCounters> counters{};
  std::array<LogHistogram, kNumPhases> latency{};
  TraceRing trace;
  unsigned tid = 0;
  std::string name;  ///< guarded by Registry mutex (set/read are rare)

  void add(Counter c, std::uint64_t delta) noexcept {
    counters[static_cast<std::size_t>(c)].fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t get(Counter c) const noexcept {
    return counters[static_cast<std::size_t>(c)].load(std::memory_order_relaxed);
  }
  void record(Phase p, std::uint64_t ns) noexcept {
    latency[static_cast<std::size_t>(p)].record(ns);
  }
};

/// Merged view of every slot, produced by Registry::collect().
struct MetricsSnapshot {
  struct PerThread {
    unsigned tid = 0;
    std::string name;
    std::array<std::uint64_t, kNumCounters> counters{};
  };

  std::array<std::uint64_t, kNumCounters> counters{};        ///< merged
  std::array<HistogramSnapshot, kNumPhases> phases{};        ///< merged
  std::vector<PerThread> threads;
  std::uint64_t dropped_spans = 0;

  std::uint64_t get(Counter c) const noexcept {
    return counters[static_cast<std::size_t>(c)];
  }
  const HistogramSnapshot& phase(Phase p) const noexcept {
    return phases[static_cast<std::size_t>(p)];
  }

  /// Emits the snapshot as one JSON object (counters, per-phase latency
  /// percentiles, per-thread counter breakdown).
  void write_json(JsonWriter& w) const;
};

/// Process-wide slot registry. Threads register lazily on first use; slots
/// outlive their threads (a ThreadTeam's workers die with the team, but
/// their recorded data stays mergeable).
class Registry {
 public:
  static Registry& instance();

  /// The calling thread's slot, registering it on first use.
  ThreadSlot& local();

  /// Names the calling thread's slot (shown in trace viewers).
  void set_thread_name(std::string_view name);

  /// Nanoseconds since the registry was constructed (trace timebase).
  std::uint64_t now_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Merges every slot into one snapshot. Safe while writers are running
  /// (counts are monotone); exact at quiescent points.
  MetricsSnapshot collect();

  /// Zeroes all slots' counters/histograms/traces. Slots stay registered
  /// (thread_local handles must not dangle). Quiescent points only.
  void reset();

  /// All registered slots (stable pointers; used by the trace exporter).
  std::vector<ThreadSlot*> slots();

 private:
  Registry() : epoch_(std::chrono::steady_clock::now()) {}

  std::chrono::steady_clock::time_point epoch_;
  std::mutex mu_;
  std::vector<std::unique_ptr<ThreadSlot>> slots_;
};

}  // namespace ph::telemetry
