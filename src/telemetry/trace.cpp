#include "telemetry/trace.hpp"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "telemetry/counters.hpp"
#include "telemetry/json.hpp"

namespace ph::telemetry {

namespace {

void emit_event(JsonWriter& w, const char* ph, unsigned tid, const TraceSpan& s,
                std::uint64_t ts_ns) {
  w.begin_object();
  w.kv("name", phase_name(static_cast<Phase>(s.phase)));
  w.kv("cat", "ph");
  w.kv("ph", ph);
  w.kv("pid", 0);
  w.kv("tid", tid);
  w.kv("ts", static_cast<double>(ts_ns) / 1000.0);
  if (ph[0] == 'B' && s.ctx != 0) {
    // Causal context: which sharded cycle this span served, and which shard
    // slot (if any). Perfetto surfaces these as slice args.
    w.key("args").begin_object();
    w.kv("trace_id", s.ctx);
    if (s.tag != kNoTraceTag) w.kv("shard", s.tag);
    w.end_object();
  }
  w.end_object();
}

/// One flow-event record ("s" start / "t" step / "f" finish). Flow events
/// with one id draw an arrow chain across the slices enclosing their
/// (tid, ts) anchors — here: the spans of one sharded cycle.
void emit_flow(JsonWriter& w, const char* ph, unsigned tid, std::uint64_t id,
               std::uint64_t ts_ns) {
  w.begin_object();
  w.kv("name", "cycle");
  w.kv("cat", "ph_flow");
  w.kv("ph", ph);
  w.kv("id", id);
  w.kv("pid", 0);
  w.kv("tid", tid);
  w.kv("ts", static_cast<double>(ts_ns) / 1000.0);
  if (ph[0] == 'f') w.kv("bp", "e");
  w.end_object();
}

}  // namespace

void write_chrome_trace(std::ostream& os) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();

  // Anchor spans of each causal context: (ctx) -> [(tid, t0, tag)], filled
  // while walking the per-thread rings and emitted as flow arrows below.
  std::map<std::uint64_t, std::vector<std::pair<unsigned, std::uint64_t>>> flows;

  for (ThreadSlot* slot : Registry::instance().slots()) {
    // Thread metadata record so viewers label the track.
    w.begin_object();
    w.kv("name", "thread_name");
    w.kv("ph", "M");
    w.kv("pid", 0);
    w.kv("tid", slot->tid);
    w.key("args").begin_object().kv("name", slot->name).end_object();
    w.end_object();

    // A thread's spans come from RAII scopes, so they form a laminar family
    // (overlap only by full nesting) — but the ring stores them in *end*
    // order: an inner span (e.g. steal inside root_work) lands before its
    // enclosing span. Re-sort by (begin asc, end desc) so outer spans
    // precede their children, then interleave B/E with a stack so every
    // track is chronological and properly nested.
    std::vector<TraceSpan> spans = slot->trace.ordered();
    std::stable_sort(spans.begin(), spans.end(),
                     [](const TraceSpan& a, const TraceSpan& b) {
                       if (a.t0_ns != b.t0_ns) return a.t0_ns < b.t0_ns;
                       return a.t1_ns > b.t1_ns;
                     });
    std::vector<TraceSpan> open;
    for (const TraceSpan& s : spans) {
      while (!open.empty() && open.back().t1_ns <= s.t0_ns) {
        emit_event(w, "E", slot->tid, open.back(), open.back().t1_ns);
        open.pop_back();
      }
      emit_event(w, "B", slot->tid, s, s.t0_ns);
      open.push_back(s);
      // Flow anchors: only top-level spans of a context (nested children
      // share the id; one anchor per slice stack keeps the arrows legible).
      if (s.ctx != 0 && (open.size() == 1 || open[open.size() - 2].ctx != s.ctx)) {
        flows[s.ctx].emplace_back(slot->tid, s.t0_ns);
      }
    }
    while (!open.empty()) {
      emit_event(w, "E", slot->tid, open.back(), open.back().t1_ns);
      open.pop_back();
    }
  }

  // Stitch each cycle's spans into one flow arrow chain, in time order.
  for (auto& [ctx, anchors] : flows) {
    if (anchors.size() < 2) continue;  // an arrow needs two ends
    std::sort(anchors.begin(), anchors.end(),
              [](const auto& a, const auto& b) { return a.second < b.second; });
    for (std::size_t i = 0; i < anchors.size(); ++i) {
      const char* ph = i == 0 ? "s" : (i + 1 == anchors.size() ? "f" : "t");
      emit_flow(w, ph, anchors[i].first, ctx, anchors[i].second);
    }
  }

  w.end_array();
  w.end_object();
}

}  // namespace ph::telemetry
