#include "telemetry/trace.hpp"

#include <algorithm>
#include <vector>

#include "telemetry/counters.hpp"
#include "telemetry/json.hpp"

namespace ph::telemetry {

namespace {

void emit_event(JsonWriter& w, const char* ph, unsigned tid, const TraceSpan& s,
                std::uint64_t ts_ns) {
  w.begin_object();
  w.kv("name", phase_name(static_cast<Phase>(s.phase)));
  w.kv("cat", "ph");
  w.kv("ph", ph);
  w.kv("pid", 0);
  w.kv("tid", tid);
  w.kv("ts", static_cast<double>(ts_ns) / 1000.0);
  w.end_object();
}

}  // namespace

void write_chrome_trace(std::ostream& os) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();

  for (ThreadSlot* slot : Registry::instance().slots()) {
    // Thread metadata record so viewers label the track.
    w.begin_object();
    w.kv("name", "thread_name");
    w.kv("ph", "M");
    w.kv("pid", 0);
    w.kv("tid", slot->tid);
    w.key("args").begin_object().kv("name", slot->name).end_object();
    w.end_object();

    // A thread's spans come from RAII scopes, so they form a laminar family
    // (overlap only by full nesting) — but the ring stores them in *end*
    // order: an inner span (e.g. steal inside root_work) lands before its
    // enclosing span. Re-sort by (begin asc, end desc) so outer spans
    // precede their children, then interleave B/E with a stack so every
    // track is chronological and properly nested.
    std::vector<TraceSpan> spans = slot->trace.ordered();
    std::stable_sort(spans.begin(), spans.end(),
                     [](const TraceSpan& a, const TraceSpan& b) {
                       if (a.t0_ns != b.t0_ns) return a.t0_ns < b.t0_ns;
                       return a.t1_ns > b.t1_ns;
                     });
    std::vector<TraceSpan> open;
    for (const TraceSpan& s : spans) {
      while (!open.empty() && open.back().t1_ns <= s.t0_ns) {
        emit_event(w, "E", slot->tid, open.back(), open.back().t1_ns);
        open.pop_back();
      }
      emit_event(w, "B", slot->tid, s, s.t0_ns);
      open.push_back(s);
    }
    while (!open.empty()) {
      emit_event(w, "E", slot->tid, open.back(), open.back().t1_ns);
      open.pop_back();
    }
  }

  w.end_array();
  w.end_object();
}

}  // namespace ph::telemetry
