// Telemetry hook API — the only header the instrumented hot paths include.
//
// The heap, engine, and thread pool call these free functions and SpanScope;
// when the build disables telemetry (-DPH_TELEMETRY=OFF → the
// PH_TELEMETRY_ENABLED=0 compile definition) every hook is an empty inline
// and SpanScope is an empty class, so the instrumentation costs nothing —
// not even a branch. The telemetry *classes* (histogram, registry, tracer,
// JSON) stay available in both builds; only the hooks vanish, so an OFF
// build still compiles the exporters and passes the unit tests.
#pragma once

#include <cstdint>
#include <string_view>

#include "telemetry/counters.hpp"
#include "telemetry/histogram.hpp"
#include "telemetry/json.hpp"
#include "telemetry/trace.hpp"

#ifndef PH_TELEMETRY_ENABLED
#define PH_TELEMETRY_ENABLED 1
#endif

namespace ph::telemetry {

#if PH_TELEMETRY_ENABLED
inline constexpr bool kEnabled = true;

inline void count(Counter c, std::uint64_t delta = 1) noexcept {
  Registry::instance().local().add(c, delta);
}

inline void record_latency(Phase p, std::uint64_t ns) noexcept {
  Registry::instance().local().record(p, ns);
}

inline void name_thread(std::string_view name) {
  Registry::instance().set_thread_name(name);
}

/// RAII span: on destruction records the elapsed time into the phase's
/// latency histogram and pushes a begin/end span into the thread's trace
/// ring. Construct it around exactly the region to attribute.
class SpanScope {
 public:
  explicit SpanScope(Phase p) noexcept
      : slot_(&Registry::instance().local()),
        phase_(p),
        t0_(Registry::instance().now_ns()) {}

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  ~SpanScope() {
    const std::uint64_t t1 = Registry::instance().now_ns();
    slot_->record(phase_, t1 - t0_);
    slot_->trace.push(TraceSpan{static_cast<std::uint32_t>(phase_), t0_, t1});
  }

 private:
  ThreadSlot* slot_;
  Phase phase_;
  std::uint64_t t0_;
};

#else  // !PH_TELEMETRY_ENABLED

inline constexpr bool kEnabled = false;

inline void count(Counter, std::uint64_t = 1) noexcept {}
inline void record_latency(Phase, std::uint64_t) noexcept {}
inline void name_thread(std::string_view) noexcept {}

class SpanScope {
 public:
  explicit SpanScope(Phase) noexcept {}
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
};

#endif  // PH_TELEMETRY_ENABLED

}  // namespace ph::telemetry
