// Telemetry hook API — the only header the instrumented hot paths include.
//
// The heap, engine, and thread pool call these free functions and SpanScope;
// when the build disables telemetry (-DPH_TELEMETRY=OFF → the
// PH_TELEMETRY_ENABLED=0 compile definition) every hook is an empty inline
// and SpanScope is an empty class, so the instrumentation costs nothing —
// not even a branch. The telemetry *classes* (histogram, registry, tracer,
// JSON) stay available in both builds; only the hooks vanish, so an OFF
// build still compiles the exporters and passes the unit tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>

#include "telemetry/counters.hpp"
#include "telemetry/histogram.hpp"
#include "telemetry/json.hpp"
#include "telemetry/trace.hpp"

#ifndef PH_TELEMETRY_ENABLED
#define PH_TELEMETRY_ENABLED 1
#endif

namespace ph::telemetry {

#if PH_TELEMETRY_ENABLED
inline constexpr bool kEnabled = true;

inline void count(Counter c, std::uint64_t delta = 1) noexcept {
  Registry::instance().local().add(c, delta);
}

inline void record_latency(Phase p, std::uint64_t ns) noexcept {
  Registry::instance().local().record(p, ns);
}

inline void name_thread(std::string_view name) {
  Registry::instance().set_thread_name(name);
}

// ----------------------------------------------------- causal trace context
//
// A *trace context* is (trace id, shard tag), carried in thread-locals and
// captured by every SpanScope recorded while it is set. ShardedHeap::cycle
// opens one id per cycle; the id then flows route → per-shard pipeline
// levels → merge → putback (ThreadTeam propagates the dispatcher's context
// into its workers), so the Chrome trace exporter can stitch one cycle's
// spans across all K shards and every team thread into one causal family.

namespace ctx_detail {
inline thread_local std::uint64_t t_trace_id = 0;
inline thread_local std::uint32_t t_trace_tag = kNoTraceTag;
}  // namespace ctx_detail

/// Process-unique nonzero trace id (one per sharded cycle).
inline std::uint64_t new_trace_id() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

inline std::uint64_t trace_ctx() noexcept { return ctx_detail::t_trace_id; }
inline std::uint32_t trace_tag() noexcept { return ctx_detail::t_trace_tag; }

inline void set_trace_ctx(std::uint64_t id, std::uint32_t tag = kNoTraceTag) noexcept {
  ctx_detail::t_trace_id = id;
  ctx_detail::t_trace_tag = tag;
}

/// RAII: installs (id, tag) as the calling thread's trace context and
/// restores the previous context on exit. Nests.
class TraceCtxScope {
 public:
  explicit TraceCtxScope(std::uint64_t id, std::uint32_t tag = kNoTraceTag) noexcept
      : prev_id_(ctx_detail::t_trace_id), prev_tag_(ctx_detail::t_trace_tag) {
    set_trace_ctx(id, tag);
  }
  TraceCtxScope(const TraceCtxScope&) = delete;
  TraceCtxScope& operator=(const TraceCtxScope&) = delete;
  ~TraceCtxScope() { set_trace_ctx(prev_id_, prev_tag_); }

 private:
  std::uint64_t prev_id_;
  std::uint32_t prev_tag_;
};

/// RAII: retags the current context (same trace id, new shard tag).
class TraceTagScope {
 public:
  explicit TraceTagScope(std::uint32_t tag) noexcept
      : prev_tag_(ctx_detail::t_trace_tag) {
    ctx_detail::t_trace_tag = tag;
  }
  TraceTagScope(const TraceTagScope&) = delete;
  TraceTagScope& operator=(const TraceTagScope&) = delete;
  ~TraceTagScope() { ctx_detail::t_trace_tag = prev_tag_; }

 private:
  std::uint32_t prev_tag_;
};

/// RAII span: on destruction records the elapsed time into the phase's
/// latency histogram and pushes a begin/end span into the thread's trace
/// ring. Construct it around exactly the region to attribute. Captures the
/// thread's trace context at construction.
class SpanScope {
 public:
  explicit SpanScope(Phase p) noexcept
      : slot_(&Registry::instance().local()),
        phase_(p),
        t0_(Registry::instance().now_ns()),
        ctx_(ctx_detail::t_trace_id),
        tag_(ctx_detail::t_trace_tag) {}

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  ~SpanScope() {
    const std::uint64_t t1 = Registry::instance().now_ns();
    slot_->record(phase_, t1 - t0_);
    slot_->trace.push(
        TraceSpan{static_cast<std::uint32_t>(phase_), t0_, t1, ctx_, tag_});
  }

 private:
  ThreadSlot* slot_;
  Phase phase_;
  std::uint64_t t0_;
  std::uint64_t ctx_;
  std::uint32_t tag_;
};

#else  // !PH_TELEMETRY_ENABLED

inline constexpr bool kEnabled = false;

inline void count(Counter, std::uint64_t = 1) noexcept {}
inline void record_latency(Phase, std::uint64_t) noexcept {}
inline void name_thread(std::string_view) noexcept {}

inline std::uint64_t new_trace_id() noexcept { return 0; }
inline std::uint64_t trace_ctx() noexcept { return 0; }
inline std::uint32_t trace_tag() noexcept { return kNoTraceTag; }
inline void set_trace_ctx(std::uint64_t, std::uint32_t = kNoTraceTag) noexcept {}

class TraceCtxScope {
 public:
  explicit TraceCtxScope(std::uint64_t, std::uint32_t = kNoTraceTag) noexcept {}
  TraceCtxScope(const TraceCtxScope&) = delete;
  TraceCtxScope& operator=(const TraceCtxScope&) = delete;
};

class TraceTagScope {
 public:
  explicit TraceTagScope(std::uint32_t) noexcept {}
  TraceTagScope(const TraceTagScope&) = delete;
  TraceTagScope& operator=(const TraceTagScope&) = delete;
};

class SpanScope {
 public:
  explicit SpanScope(Phase) noexcept {}
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
};

#endif  // PH_TELEMETRY_ENABLED

}  // namespace ph::telemetry
