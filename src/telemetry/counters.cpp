#include "telemetry/counters.hpp"

#include <cstdio>
#include <iostream>

#include "telemetry/json.hpp"
#include "util/assert.hpp"

namespace ph::telemetry {

namespace {

// PH_ASSERT flush hook: a failed assertion dumps the merged counter table
// and the full Chrome-format trace rings (last ~8k spans per thread) to
// stderr before aborting, so a sanitizer/CI failure carries the run's
// recent history instead of one line. collect() is safe while writers run;
// the trace rings may race with still-running owners, but we are already
// aborting — a torn span in the post-mortem beats no post-mortem.
void flush_telemetry_on_assert() {
  std::fprintf(stderr, "ph: telemetry at assertion failure:\n");
  const MetricsSnapshot snap = Registry::instance().collect();
  for (std::size_t c = 0; c < kNumCounters; ++c) {
    if (snap.counters[c] == 0) continue;
    std::fprintf(stderr, "ph:   %-18s %llu\n", counter_name(static_cast<Counter>(c)),
                 static_cast<unsigned long long>(snap.counters[c]));
  }
  std::fprintf(stderr, "ph: trace ring (chrome trace_event JSON):\n");
  write_chrome_trace(std::cerr);
  std::cerr << std::endl;
}

// Registered at static-initialization time from the one translation unit
// every ph_lib consumer links.
[[maybe_unused]] const bool g_assert_hook_registered = [] {
  ph::add_assert_flush_hook(&flush_telemetry_on_assert);
  return true;
}();

}  // namespace

const char* phase_name(Phase p) noexcept {
  switch (p) {
    case Phase::kRootWork: return "root_work";
    case Phase::kOddHalfStep: return "odd_half_step";
    case Phase::kEvenHalfStep: return "even_half_step";
    case Phase::kThink: return "think";
    case Phase::kThinkStall: return "think_stall";
    case Phase::kSteal: return "steal";
    case Phase::kMaintService: return "maint_service";
    case Phase::kShardRoute: return "shard_route";
    case Phase::kShardMerge: return "shard_merge";
    case Phase::kShardPull: return "shard_pull";
    case Phase::kShardPutback: return "shard_putback";
    case Phase::kCkptWrite: return "ckpt_write";
    case Phase::kWalAppend: return "wal_append";
    case Phase::kWalFsync: return "wal_fsync";
    case Phase::kRecoverReplay: return "recover_replay";
    case Phase::kIngestFlush: return "ingest_flush";
    case Phase::kSvcCommit: return "svc_commit";
    case Phase::kSvcDispatch: return "svc_dispatch";
    case Phase::kCount: break;
  }
  return "unknown";
}

const char* counter_name(Counter c) noexcept {
  switch (c) {
    case Counter::kCycles: return "cycles";
    case Counter::kItemsInserted: return "items_inserted";
    case Counter::kItemsDeleted: return "items_deleted";
    case Counter::kProcsSpawned: return "procs_spawned";
    case Counter::kProcsServiced: return "procs_serviced";
    case Counter::kSteals: return "steals";
    case Counter::kThinkItems: return "think_items";
    case Counter::kHalfSteps: return "half_steps";
    case Counter::kShardRouted: return "shard_routed";
    case Counter::kShardPutbacks: return "shard_putbacks";
    case Counter::kShardRebalances: return "shard_rebalances";
    case Counter::kShardMergeWidth: return "shard_merge_width";
    case Counter::kWatchdogStalls: return "watchdog_stalls";
    case Counter::kShardQuarantines: return "shard_quarantines";
    case Counter::kThinkFaults: return "think_faults";
    case Counter::kCkptWrites: return "ckpt_writes";
    case Counter::kCkptBytes: return "ckpt_bytes";
    case Counter::kWalAppends: return "wal_appends";
    case Counter::kWalBytes: return "wal_bytes";
    case Counter::kWalFsyncs: return "wal_fsyncs";
    case Counter::kWalReplayed: return "wal_replayed";
    case Counter::kRecoveries: return "recoveries";
    case Counter::kShardHintSkips: return "shard_hint_skips";
    case Counter::kShardParallelCycles: return "shard_parallel_cycles";
    case Counter::kLaneQuarantines: return "lane_quarantines";
    case Counter::kIngestStaged: return "ingest_staged";
    case Counter::kIngestRuns: return "ingest_runs";
    case Counter::kIngestAdmitted: return "ingest_admitted";
    case Counter::kIngestDeferred: return "ingest_deferred";
    case Counter::kSvcAcked: return "svc_acked";
    case Counter::kSvcDelivered: return "svc_delivered";
    case Counter::kSvcShed: return "svc_shed";
    case Counter::kSvcPolls: return "svc_polls";
    case Counter::kCount: break;
  }
  return "unknown";
}

Registry& Registry::instance() {
  static Registry reg;
  return reg;
}

ThreadSlot& Registry::local() {
  thread_local ThreadSlot* slot = nullptr;
  if (slot == nullptr) {
    std::lock_guard lk(mu_);
    auto s = std::make_unique<ThreadSlot>();
    s->tid = static_cast<unsigned>(slots_.size());
    s->name = "thread-" + std::to_string(s->tid);
    slot = s.get();
    slots_.push_back(std::move(s));
  }
  return *slot;
}

void Registry::set_thread_name(std::string_view name) {
  ThreadSlot& s = local();
  std::lock_guard lk(mu_);
  s.name.assign(name);
}

MetricsSnapshot Registry::collect() {
  MetricsSnapshot out;
  std::lock_guard lk(mu_);
  out.threads.reserve(slots_.size());
  for (const auto& s : slots_) {
    MetricsSnapshot::PerThread pt;
    pt.tid = s->tid;
    pt.name = s->name;
    for (std::size_t c = 0; c < kNumCounters; ++c) {
      const std::uint64_t v = s->counters[c].load(std::memory_order_relaxed);
      pt.counters[c] = v;
      out.counters[c] += v;
    }
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      s->latency[p].merge_into(out.phases[p]);
    }
    out.dropped_spans += s->trace.dropped();
    out.threads.push_back(std::move(pt));
  }
  return out;
}

void Registry::reset() {
  std::lock_guard lk(mu_);
  for (auto& s : slots_) {
    for (auto& c : s->counters) c.store(0, std::memory_order_relaxed);
    for (auto& h : s->latency) h.reset();
    s->trace.reset();
  }
}

std::vector<ThreadSlot*> Registry::slots() {
  std::lock_guard lk(mu_);
  std::vector<ThreadSlot*> out;
  out.reserve(slots_.size());
  for (const auto& s : slots_) out.push_back(s.get());
  return out;
}

void MetricsSnapshot::write_json(JsonWriter& w) const {
  w.begin_object();

  w.key("counters").begin_object();
  for (std::size_t c = 0; c < kNumCounters; ++c) {
    w.kv(counter_name(static_cast<Counter>(c)), counters[c]);
  }
  w.end_object();

  w.key("phases").begin_object();
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    const HistogramSnapshot& h = phases[p];
    w.key(phase_name(static_cast<Phase>(p))).begin_object();
    w.kv("count", h.count());
    w.kv("min_ns", h.min());
    w.kv("max_ns", h.max());
    w.kv("mean_ns", h.mean());
    w.kv("p50_ns", h.percentile(50));
    w.kv("p90_ns", h.percentile(90));
    w.kv("p99_ns", h.percentile(99));
    w.end_object();
  }
  w.end_object();

  w.key("threads").begin_array();
  for (const PerThread& t : threads) {
    w.begin_object();
    w.kv("tid", t.tid);
    w.kv("name", t.name);
    w.key("counters").begin_object();
    for (std::size_t c = 0; c < kNumCounters; ++c) {
      w.kv(counter_name(static_cast<Counter>(c)), t.counters[c]);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();

  w.kv("dropped_spans", dropped_spans);
  w.end_object();
}

}  // namespace ph::telemetry
