// Bounded per-thread span tracer with Chrome trace_event export.
//
// Every instrumented phase (root work, odd/even half-step, think, stall,
// maintenance service) records a begin/end span into the recording thread's
// private ring buffer; when the buffer fills, the oldest spans are
// overwritten and counted as dropped, so a long run's memory stays bounded
// while the tail of the schedule — usually what one is debugging — survives.
// write_chrome_trace() serializes all threads' spans as Chrome trace_event
// JSON (B/E pairs plus thread_name metadata), loadable in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing, which renders the pipeline
// overlap between the think and maintenance teams as a per-thread timeline.
//
// Concurrency contract: push() is owner-thread-only; export/reset happen at
// quiescent points (after ThreadTeam::wait(), whose mutex provides the
// happens-before edge).
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

namespace ph::telemetry {

/// Tag value meaning "no shard attribution" (see telemetry.hpp trace ctx).
inline constexpr std::uint32_t kNoTraceTag = 0xffffffffu;

struct TraceSpan {
  std::uint32_t phase;   ///< Phase enum value (see counters.hpp)
  std::uint64_t t0_ns;   ///< begin, ns since Registry epoch
  std::uint64_t t1_ns;   ///< end
  std::uint64_t ctx = 0; ///< causal trace id (0 = none): one sharded cycle
  std::uint32_t tag = kNoTraceTag;  ///< shard slot the span served, if any
};

class TraceRing {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 13;

  explicit TraceRing(std::size_t capacity = kDefaultCapacity) : cap_(capacity) {}

  /// Owner thread only. Overwrites the oldest span when full.
  void push(const TraceSpan& s) {
    if (spans_.size() < cap_) {
      if (spans_.capacity() == 0) spans_.reserve(cap_);
      spans_.push_back(s);
      return;
    }
    spans_[head_] = s;
    head_ = (head_ + 1) % cap_;
    ++dropped_;
  }

  std::size_t size() const noexcept { return spans_.size(); }
  std::size_t capacity() const noexcept { return cap_; }
  std::uint64_t dropped() const noexcept { return dropped_; }

  /// Spans oldest-first.
  std::vector<TraceSpan> ordered() const {
    std::vector<TraceSpan> out;
    out.reserve(spans_.size());
    for (std::size_t i = 0; i < spans_.size(); ++i) {
      out.push_back(spans_[(head_ + i) % spans_.size()]);
    }
    return out;
  }

  void reset() noexcept {
    spans_.clear();
    head_ = 0;
    dropped_ = 0;
  }

 private:
  std::size_t cap_;
  std::size_t head_ = 0;  ///< index of the oldest span once the ring is full
  std::uint64_t dropped_ = 0;
  std::vector<TraceSpan> spans_;
};

/// Serializes every registered thread's spans (see counters.hpp Registry) as
/// a Chrome trace_event JSON document: one "M" thread_name metadata record
/// per thread followed by that thread's "B"/"E" pairs in chronological
/// order. Timestamps are microseconds since the Registry epoch.
void write_chrome_trace(std::ostream& os);

}  // namespace ph::telemetry
