// HDR-style log-bucketed latency histogram.
//
// Telemetry records one latency sample per phase per cycle from many threads
// at once, so the recording structure must be lock-free and O(1): values are
// binned into buckets with a fixed relative width (16 linear sub-buckets per
// power of two → ≤ 6.25% relative error), and every bucket is a relaxed
// atomic counter. Values below 16 are binned exactly. Recording is a single
// fetch_add; percentile extraction walks the (fixed-size) bucket array and
// happens only at report time, against a plain `HistogramSnapshot` merged
// from any number of per-thread histograms.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>

namespace ph::telemetry {

namespace hist_detail {
inline constexpr unsigned kSubBits = 4;
inline constexpr std::size_t kSub = std::size_t{1} << kSubBits;  // 16
/// 16 exact buckets for [0,16) plus 16 sub-buckets per exponent 4..63.
inline constexpr std::size_t kNumBuckets = kSub + (64 - kSubBits) * kSub;

/// Bucket of `v`: exact below kSub, else exponent e = floor(log2 v) selects a
/// group whose kSub sub-buckets are the next kSubBits bits of v.
constexpr std::size_t bucket_index(std::uint64_t v) noexcept {
  if (v < kSub) return static_cast<std::size_t>(v);
  const unsigned e = static_cast<unsigned>(std::bit_width(v)) - 1;  // e >= 4
  const std::uint64_t sub = (v >> (e - kSubBits)) & (kSub - 1);
  return kSub + static_cast<std::size_t>(e - kSubBits) * kSub +
         static_cast<std::size_t>(sub);
}

/// Smallest value mapping to bucket `b`.
constexpr std::uint64_t bucket_lo(std::size_t b) noexcept {
  if (b < kSub) return b;
  const std::size_t g = (b - kSub) / kSub;      // e - kSubBits
  const std::uint64_t sub = (b - kSub) % kSub;
  return (std::uint64_t{1} << (g + kSubBits)) | (sub << g);
}

/// Largest value mapping to bucket `b`.
constexpr std::uint64_t bucket_hi(std::size_t b) noexcept {
  if (b < kSub) return b;
  const std::size_t g = (b - kSub) / kSub;
  return bucket_lo(b) + (std::uint64_t{1} << g) - 1;
}
}  // namespace hist_detail

/// Plain (non-atomic) aggregate of one or more LogHistograms; all percentile
/// math lives here, at report time.
class HistogramSnapshot {
 public:
  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const noexcept { return max_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Value at percentile p ∈ [0,100]: the upper bound of the bucket holding
  /// the rank-⌈p/100·count⌉ sample. Guaranteed ≥ the true sample and within
  /// one bucket width (≤ 6.25% relative) above it.
  std::uint64_t percentile(double p) const noexcept;

  void add_sample_bucket(std::size_t b, std::uint64_t n) noexcept {
    buckets_[b] += n;
    count_ += n;
  }
  HistogramSnapshot& operator+=(const HistogramSnapshot& o) noexcept;

  std::string to_string() const;

 private:
  friend class LogHistogram;
  std::array<std::uint64_t, hist_detail::kNumBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t min_ = UINT64_MAX;
  std::uint64_t max_ = 0;
  double sum_ = 0.0;
};

/// Lock-free recording side: one owner thread calls record(); any thread may
/// concurrently merge_into() a snapshot (all loads/stores relaxed — counts
/// are monotone, and reports are taken at quiescent points).
class LogHistogram {
 public:
  static constexpr std::size_t num_buckets() noexcept {
    return hist_detail::kNumBuckets;
  }

  void record(std::uint64_t v) noexcept {
    buckets_[hist_detail::bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    update_min(v);
    update_max(v);
  }

  std::uint64_t count() const noexcept {
    std::uint64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }

  /// Accumulates this histogram's contents into `out`.
  void merge_into(HistogramSnapshot& out) const noexcept;

  /// Convenience: a snapshot of just this histogram.
  HistogramSnapshot snapshot() const noexcept {
    HistogramSnapshot s;
    merge_into(s);
    return s;
  }

  void reset() noexcept;

 private:
  void update_min(std::uint64_t v) noexcept {
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  void update_max(std::uint64_t v) noexcept {
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<std::uint64_t>, hist_detail::kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace ph::telemetry
