#include "telemetry/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/assert.hpp"

namespace ph::telemetry {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void JsonWriter::separate() {
  if (have_key_) {
    have_key_ = false;
    return;
  }
  PH_ASSERT_MSG(stack_.empty() || stack_.back() == Ctx::kArray,
                "JsonWriter: value inside an object requires key()");
  if (!first_in_container_) os_ << ',';
  first_in_container_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  os_ << '{';
  stack_.push_back(Ctx::kObject);
  first_in_container_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  PH_ASSERT(!stack_.empty() && stack_.back() == Ctx::kObject);
  stack_.pop_back();
  os_ << '}';
  first_in_container_ = false;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  os_ << '[';
  stack_.push_back(Ctx::kArray);
  first_in_container_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  PH_ASSERT(!stack_.empty() && stack_.back() == Ctx::kArray);
  stack_.pop_back();
  os_ << ']';
  first_in_container_ = false;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  PH_ASSERT_MSG(!stack_.empty() && stack_.back() == Ctx::kObject,
                "JsonWriter: key() outside an object");
  PH_ASSERT(!have_key_);
  if (!first_in_container_) os_ << ',';
  first_in_container_ = false;
  os_ << '"' << json_escape(name) << "\":";
  have_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  separate();
  os_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  separate();
  if (!std::isfinite(v)) {
    os_ << "null";  // JSON has no NaN/Inf
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separate();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separate();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separate();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  separate();
  os_ << "null";
  return *this;
}

}  // namespace ph::telemetry
