// Insert-optimized ingestion tier: per-producer staging buffers feeding the
// batch-cycle heaps (PIPQ-style frontend; see PAPERS.md and DESIGN.md §13).
//
// The paper's pipelined heap serializes every insert through the O(r) root
// merge, which caps write throughput long before the delete pipeline
// saturates. PIPQ shows strict semantics can coexist with an insert-optimized
// frontend: producers append into private buffers, and the consumer absorbs
// whole buffers as sorted runs at its own batch granularity. This tier is
// that frontend for any PQ exposing the cycle(fresh, k, out) surface
// (PipelinedParallelHeap, ShardedHeap, DurableHeap, ...):
//
//   producers --> stage(p, items)   padded per-producer slots, one Spinlock
//                                   each; a stage() touches only its own slot
//   cycle(fresh, k, out)            driver-only. 1) FLUSH: swap every slot's
//                                   buffer out under its lock and sort it
//                                   into a run; 2) ADMIT: pick pending runs
//                                   per the staleness policy and coalesce
//                                   them (merge2 cascade) into one sorted
//                                   batch; 3) run the inner heap's cycle with
//                                   admitted ++ fresh as its fresh items.
//
// Strict mode (staleness == 0) — the exactness argument: every staged item
// is admitted at the very next cycle boundary, so the multiset the inner
// heap receives at cycle c is exactly {direct fresh} ∪ {items staged since
// cycle c-1} — the same multiset a direct-insertion run feeds it, in a
// different order. For uint64 keys the delete-min stream is a function of
// the per-cycle input *multisets* (oracle.hpp), so the deletion stream is
// bit-exact against direct insertion at ANY producer count. The differential
// registry (ingest_pipelined / ingest_sharded_strict) and bench_ingest's
// gate re-prove this on every CI run.
//
// Bounded-staleness mode (staleness = S > 0) — MultiQueues-style relaxation
// for consumers that tolerate lag: a flushed run may sit pending for at most
// S cycle boundaries before it must be admitted (it is admitted sooner once
// pending items reach admit_min_items, which amortizes tiny runs into wider
// batch inserts). An item staged before cycle c is therefore visible to the
// consumer no later than cycle c + S: delete-min may miss a fresher minimum
// by up to S cycles of inserts, but items are never lost, duplicated, or
// reordered within a run (the harness checks this under
// DiffOptions::bounded_lag conservation).
//
// Fault injection: the kIngestFlush fail-point models a producer crashing
// mid-flush. It fires BETWEEN slot drains, before the fired slot's buffer is
// committed as a run; the sweep aborts, the in-flight buffer is restaged,
// and every item remains either staged or pending — nothing is lost (the
// fault matrix drills this; strict admission simply lags one cycle, which is
// why fault drills check conservation rather than stream equality).
//
// Concurrency contract: stage() is thread-safe and lock-light (one TTAS
// spinlock per producer slot, slots cache-line padded so producers never
// share a line). cycle()/stats()/check_invariants() are driver-only, like
// every other structure in this repo. stage() concurrent with cycle() is
// allowed: a flush observes either side of each in-flight stage, never a
// torn buffer.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/sorted_ops.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics_registry.hpp"
#include "robustness/failpoint.hpp"
#include "telemetry/telemetry.hpp"
#include "util/cacheline.hpp"
#include "util/spinlock.hpp"
#include "util/timer.hpp"

namespace ph::ingest {

struct IngestConfig {
  /// Staging slots. Producers hash onto slots modulo this, so any number of
  /// real threads may stage; contention is per-slot only.
  std::size_t producers = 1;
  /// 0 = strict (every staged item admitted at the next cycle boundary,
  /// bit-exact vs direct insertion); S > 0 = a flushed run may lag at most S
  /// cycle boundaries before admission.
  std::size_t staleness = 0;
  /// Bounded-staleness only: admit everything once pending items reach this
  /// many (0 = admit on lag alone). Lets tiny runs pool into wide batches.
  std::size_t admit_min_items = 0;
};

/// Driver-side accounting (monotone; read between cycles).
struct IngestStats {
  std::uint64_t staged = 0;          ///< items drained out of producer slots
  std::uint64_t flushes = 0;         ///< cycle-boundary slot sweeps
  std::uint64_t flush_faults = 0;    ///< injected mid-flush failures absorbed
  std::uint64_t runs = 0;            ///< sorted runs formed
  std::uint64_t max_run = 0;         ///< largest single run
  std::uint64_t admitted_runs = 0;   ///< runs handed to the inner heap
  std::uint64_t admitted_items = 0;  ///< items in those runs
  std::uint64_t deferred_runs = 0;   ///< run-cycles spent pending (relaxed)
  std::uint64_t max_lag = 0;         ///< worst admission lag seen, in cycles
};

template <typename PQ, typename T = typename PQ::value_type,
          typename Compare = std::less<T>>
class IngestTier {
 public:
  using value_type = T;

  IngestTier(PQ inner, IngestConfig cfg, Compare cmp = Compare())
      : inner_(std::move(inner)), cfg_(cfg), cmp_(cmp) {
    if (cfg_.producers == 0) cfg_.producers = 1;
    slots_.reserve(cfg_.producers);
    for (std::size_t p = 0; p < cfg_.producers; ++p) {
      slots_.push_back(std::make_unique<Slot>());
    }
    live_ = std::make_unique<Live>();
  }

  PQ& inner() noexcept { return inner_; }
  const PQ& inner() const noexcept { return inner_; }
  const IngestConfig& config() const noexcept { return cfg_; }
  const IngestStats& ingest_stats() const noexcept { return stats_; }

  /// Producer-side: append items to this producer's staging buffer. Safe
  /// from any thread, concurrent with other producers and with cycle().
  void stage(std::size_t producer, std::span<const T> items) {
    if (items.empty()) return;
    Slot& s = *slots_[producer % slots_.size()];
    {
      std::lock_guard<Spinlock> g(s.mu);
      s.buf.insert(s.buf.end(), items.begin(), items.end());
    }
    live_->staged_depth.fetch_add(items.size(), std::memory_order_relaxed);
    telemetry::count(telemetry::Counter::kIngestStaged, items.size());
  }
  void stage(std::size_t producer, const T& v) { stage(producer, std::span<const T>(&v, 1)); }

  /// Driver-only batch cycle: flush + admit staged work, then run the inner
  /// heap's cycle with (admitted ++ fresh) as its fresh items.
  std::size_t cycle(std::span<const T> fresh, std::size_t k, std::vector<T>& out) {
    ++cycle_no_;
    flush_staged();
    admit();
    batch_.assign(admitted_.begin(), admitted_.end());
    batch_.insert(batch_.end(), fresh.begin(), fresh.end());
    return inner_.cycle(batch_, k, out);
  }

  /// Items anywhere in the tier: inner heap + pending runs + (racy while
  /// producers run, exact at quiescent points) staged buffers.
  std::size_t size() const noexcept {
    return inner_.size() + pending_items_ +
           static_cast<std::size_t>(
               live_->staged_depth.load(std::memory_order_relaxed));
  }
  bool empty() const noexcept { return size() == 0; }

  /// Pending (flushed, not yet admitted) runs/items — 0 in strict mode
  /// between cycles.
  std::size_t pending_runs() const noexcept { return pending_.size(); }
  std::size_t pending_items() const noexcept { return pending_items_; }

  /// Tier invariants: every pending run is a sorted run born no earlier than
  /// staleness allows, the pending-items ledger matches, then the inner
  /// heap's own check (when it has one). Driver-only.
  bool check_invariants(std::string* why = nullptr) {
    std::size_t items = 0;
    for (const Run& r : pending_) {
      if (!is_sorted_run(std::span<const T>(r.items), cmp_)) {
        if (why) *why = "pending ingest run is not sorted";
        return false;
      }
      if (cfg_.staleness != 0 && cycle_no_ - r.born > cfg_.staleness) {
        if (why) {
          *why = "pending ingest run exceeds the staleness bound (lag " +
                 std::to_string(cycle_no_ - r.born) + " > S = " +
                 std::to_string(cfg_.staleness) + ")";
        }
        return false;
      }
      items += r.items.size();
    }
    if (items != pending_items_) {
      if (why) *why = "pending-items ledger out of sync";
      return false;
    }
    if constexpr (requires(PQ& q, std::string* w) { q.check_invariants(w); }) {
      return inner_.check_invariants(why);
    } else {
      return true;
    }
  }

  /// Lock-free mirror for gauge callbacks (same contract as ShardedHeap::
  /// Live): producers bump staged_depth as they stage; the driver refreshes
  /// the rest at each cycle boundary. Scrapers never touch the real buffers.
  struct Live {
    std::atomic<std::uint64_t> staged_depth{0};    ///< items sitting in slots
    std::atomic<std::uint64_t> pending_runs{0};
    std::atomic<std::uint64_t> pending_items{0};
    std::atomic<std::uint64_t> admitted_items{0};  ///< cumulative
    std::atomic<std::uint64_t> flushes{0};
    std::atomic<std::uint64_t> max_run{0};
    std::atomic<std::uint64_t> last_flush_ns{0};   ///< duration of last flush
  };
  const Live& live() const noexcept { return *live_; }

  /// Publishes staged depth, pending backlog, and flush latency as gauges
  /// ("heap" label distinguishes instances). RAII-deregistered.
  void register_gauges(const std::string& heap = "ingest") {
    gauges_.clear();
    Live* lv = live_.get();
    auto lab = [&heap] {
      return std::vector<std::pair<std::string, std::string>>{{"heap", heap}};
    };
    struct Simple { const char* name; const char* help; std::atomic<std::uint64_t> Live::*field; };
    static constexpr Simple kSimple[] = {
        {"ingest_staged_depth", "Items staged in producer buffers, not yet flushed.", &Live::staged_depth},
        {"ingest_pending_runs", "Flushed runs awaiting admission.", &Live::pending_runs},
        {"ingest_pending_items", "Items in flushed runs awaiting admission.", &Live::pending_items},
        {"ingest_admitted_items", "Staged items admitted to the inner heap (cumulative).", &Live::admitted_items},
        {"ingest_flushes", "Cycle-boundary staging sweeps (cumulative).", &Live::flushes},
        {"ingest_max_run", "Largest sorted run coalesced so far.", &Live::max_run},
        {"ingest_last_flush_ns", "Wall-clock duration of the last flush sweep.", &Live::last_flush_ns},
    };
    for (const Simple& g : kSimple) {
      auto field = g.field;
      gauges_.add(obs::GaugeDesc{g.name, lab(), g.help},
                  [lv, field] { return static_cast<double>(
                                    (lv->*field).load(std::memory_order_relaxed)); });
    }
  }

 private:
  struct alignas(kCacheLine) Slot {
    Spinlock mu;
    std::vector<T> buf;
  };

  struct Run {
    std::vector<T> items;       ///< sorted ascending under cmp_
    std::uint64_t born = 0;     ///< cycle_no_ at flush time
  };

  /// Phase 1: drain every slot into a sorted pending run. The kIngestFlush
  /// site fires between slot drains: the drained slots' runs are already
  /// pending, the fired slot's buffer is restaged, the rest stay staged —
  /// nothing is lost on any abort point.
  void flush_staged() {
    telemetry::SpanScope span(telemetry::Phase::kIngestFlush);
    Timer t;
    std::uint64_t runs = 0, items = 0;
    for (auto& slot : slots_) {
      Slot& s = *slot;
      scratch_.clear();
      {
        std::lock_guard<Spinlock> g(s.mu);
        scratch_.swap(s.buf);
      }
      if (scratch_.empty()) continue;
      try {
        robustness::fire_fault(robustness::FailSite::kIngestFlush);
      } catch (const robustness::InjectedFailure&) {
        // Producer died mid-flush: put the un-committed buffer back (order
        // within a slot is irrelevant under multiset semantics) and abort
        // the sweep; the next cycle retries.
        {
          std::lock_guard<Spinlock> g(s.mu);
          s.buf.insert(s.buf.begin(), scratch_.begin(), scratch_.end());
        }
        ++stats_.flush_faults;
        robustness::note_recovery(robustness::FailSite::kIngestFlush);
        break;
      }
      live_->staged_depth.fetch_sub(scratch_.size(), std::memory_order_relaxed);
      std::sort(scratch_.begin(), scratch_.end(), cmp_);
      Run r;
      r.items.swap(scratch_);
      r.born = cycle_no_;
      items += r.items.size();
      ++runs;
      stats_.staged += r.items.size();
      stats_.max_run = std::max<std::uint64_t>(stats_.max_run, r.items.size());
      pending_items_ += r.items.size();
      pending_.push_back(std::move(r));
    }
    ++stats_.flushes;
    stats_.runs += runs;
    telemetry::count(telemetry::Counter::kIngestRuns, runs);
    if (runs > 0) obs::flight(obs::FlightKind::kIngestFlush, runs, items);
    live_->flushes.fetch_add(1, std::memory_order_relaxed);
    live_->max_run.store(stats_.max_run, std::memory_order_relaxed);
    live_->last_flush_ns.store(t.nanos(), std::memory_order_relaxed);
    publish_pending();
  }

  /// Phase 2: choose the admitted prefix of pending_ (runs are appended in
  /// flush order, so pending_ is ordered by born cycle and lag-based
  /// admission is a prefix cut) and coalesce it into one sorted batch.
  void admit() {
    std::size_t cut;
    if (cfg_.staleness == 0) {
      cut = pending_.size();  // strict: everything, every cycle
    } else if (cfg_.admit_min_items != 0 && pending_items_ >= cfg_.admit_min_items) {
      cut = pending_.size();  // backlog wide enough: take it all now
    } else {
      cut = 0;
      while (cut < pending_.size() &&
             cycle_no_ - pending_[cut].born >= cfg_.staleness) {
        ++cut;
      }
    }

    admitted_.clear();
    for (std::size_t i = 0; i < cut; ++i) {
      const Run& r = pending_[i];
      stats_.max_lag = std::max<std::uint64_t>(stats_.max_lag, cycle_no_ - r.born);
      merge_buf_.clear();
      merge2(std::span<const T>(admitted_), std::span<const T>(r.items),
             merge_buf_, cmp_);
      admitted_.swap(merge_buf_);
    }
    if (cut > 0) {
      stats_.admitted_runs += cut;
      stats_.admitted_items += admitted_.size();
      pending_items_ -= admitted_.size();
      pending_.erase(pending_.begin(),
                     pending_.begin() + static_cast<std::ptrdiff_t>(cut));
      telemetry::count(telemetry::Counter::kIngestAdmitted, admitted_.size());
      live_->admitted_items.fetch_add(admitted_.size(), std::memory_order_relaxed);
    }
    stats_.deferred_runs += pending_.size();
    if (!pending_.empty()) {
      telemetry::count(telemetry::Counter::kIngestDeferred, pending_.size());
    }
    publish_pending();
  }

  void publish_pending() noexcept {
    live_->pending_runs.store(pending_.size(), std::memory_order_relaxed);
    live_->pending_items.store(pending_items_, std::memory_order_relaxed);
  }

  PQ inner_;
  IngestConfig cfg_;
  Compare cmp_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<Run> pending_;
  std::size_t pending_items_ = 0;
  std::uint64_t cycle_no_ = 0;
  std::vector<T> scratch_, admitted_, merge_buf_, batch_;
  IngestStats stats_;
  std::unique_ptr<Live> live_;
  obs::GaugeSet gauges_;
};

}  // namespace ph::ingest
