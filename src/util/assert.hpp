// Lightweight assertion macros.
//
// PH_ASSERT is compiled in every build type: data-structure invariants in
// this library are cheap relative to the O(r) merge work they guard, and a
// silent heap-order violation is far more expensive to debug than the check.
// PH_DEBUG_ASSERT compiles away outside debug builds and is used for the
// heavyweight checks (full-tree invariant scans).
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace ph {

/// Called (at most once, best effort) after an assertion failure is printed
/// and before abort(). The telemetry layer registers a hook that flushes the
/// counter table and trace rings to stderr, so a sanitizer/CI assert carries
/// its last ~8k events instead of just one line. The hook must not assume a
/// sane heap — it runs on the failing thread with invariants already broken.
using AssertFlushHook = void (*)();

namespace assert_detail {
inline std::atomic<AssertFlushHook>& flush_hook() {
  static std::atomic<AssertFlushHook> hook{nullptr};
  return hook;
}
inline std::atomic<bool>& flushing() {
  static std::atomic<bool> f{false};
  return f;
}
}  // namespace assert_detail

inline void set_assert_flush_hook(AssertFlushHook hook) noexcept {
  assert_detail::flush_hook().store(hook, std::memory_order_release);
}

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "ph: assertion failed: %s (%s:%d)%s%s\n", expr, file, line,
               msg ? " — " : "", msg ? msg : "");
  // Re-entrancy guard: if the flush hook itself asserts (it runs over a
  // possibly-corrupt process), fall straight through to abort.
  if (!assert_detail::flushing().exchange(true, std::memory_order_acq_rel)) {
    if (AssertFlushHook hook =
            assert_detail::flush_hook().load(std::memory_order_acquire)) {
      hook();
    }
  }
  std::abort();
}

}  // namespace ph

#define PH_ASSERT(expr)                                              \
  do {                                                               \
    if (!(expr)) ::ph::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define PH_ASSERT_MSG(expr, msg)                                  \
  do {                                                            \
    if (!(expr)) ::ph::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifndef NDEBUG
#define PH_DEBUG_ASSERT(expr) PH_ASSERT(expr)
#else
#define PH_DEBUG_ASSERT(expr) \
  do {                        \
  } while (0)
#endif
