// Lightweight assertion macros.
//
// PH_ASSERT is compiled in every build type: data-structure invariants in
// this library are cheap relative to the O(r) merge work they guard, and a
// silent heap-order violation is far more expensive to debug than the check.
// PH_DEBUG_ASSERT compiles away outside debug builds and is used for the
// heavyweight checks (full-tree invariant scans).
#pragma once

#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace ph {

/// Called (at most once, best effort) after an assertion failure is printed
/// and before abort(). Hooks form a small chain: the telemetry layer flushes
/// the counter table and trace rings to stderr, and the observability layer
/// writes the flight-recorder black box to a file — so a sanitizer/CI assert
/// carries the run's recent history instead of one line. Hooks must not
/// assume a sane heap — they run on the failing thread with invariants
/// already broken.
using AssertFlushHook = void (*)();

namespace assert_detail {
inline constexpr std::size_t kMaxFlushHooks = 4;
inline std::array<std::atomic<AssertFlushHook>, kMaxFlushHooks>& flush_hooks() {
  static std::array<std::atomic<AssertFlushHook>, kMaxFlushHooks> hooks{};
  return hooks;
}
inline std::atomic<bool>& flushing() {
  static std::atomic<bool> f{false};
  return f;
}
}  // namespace assert_detail

/// Appends `hook` to the flush chain (idempotent per hook; static-init
/// safe). Returns false if the chain is full.
inline bool add_assert_flush_hook(AssertFlushHook hook) noexcept {
  auto& hooks = assert_detail::flush_hooks();
  for (auto& slot : hooks) {
    AssertFlushHook expected = nullptr;
    if (slot.load(std::memory_order_acquire) == hook) return true;
    if (slot.compare_exchange_strong(expected, hook, std::memory_order_acq_rel)) {
      return true;
    }
  }
  return false;
}

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "ph: assertion failed: %s (%s:%d)%s%s\n", expr, file, line,
               msg ? " — " : "", msg ? msg : "");
  // Re-entrancy guard: if a flush hook itself asserts (it runs over a
  // possibly-corrupt process), fall straight through to abort.
  if (!assert_detail::flushing().exchange(true, std::memory_order_acq_rel)) {
    for (auto& slot : assert_detail::flush_hooks()) {
      if (AssertFlushHook hook = slot.load(std::memory_order_acquire)) hook();
    }
  }
  std::abort();
}

}  // namespace ph

#define PH_ASSERT(expr)                                              \
  do {                                                               \
    if (!(expr)) ::ph::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define PH_ASSERT_MSG(expr, msg)                                  \
  do {                                                            \
    if (!(expr)) ::ph::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifndef NDEBUG
#define PH_DEBUG_ASSERT(expr) PH_ASSERT(expr)
#else
#define PH_DEBUG_ASSERT(expr) \
  do {                        \
  } while (0)
#endif
