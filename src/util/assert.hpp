// Lightweight assertion macros.
//
// PH_ASSERT is compiled in every build type: data-structure invariants in
// this library are cheap relative to the O(r) merge work they guard, and a
// silent heap-order violation is far more expensive to debug than the check.
// PH_DEBUG_ASSERT compiles away outside debug builds and is used for the
// heavyweight checks (full-tree invariant scans).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ph {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "ph: assertion failed: %s (%s:%d)%s%s\n", expr, file, line,
               msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace ph

#define PH_ASSERT(expr)                                              \
  do {                                                               \
    if (!(expr)) ::ph::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define PH_ASSERT_MSG(expr, msg)                                  \
  do {                                                            \
    if (!(expr)) ::ph::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifndef NDEBUG
#define PH_DEBUG_ASSERT(expr) PH_ASSERT(expr)
#else
#define PH_DEBUG_ASSERT(expr) \
  do {                        \
  } while (0)
#endif
