// ThreadTeam: a persistent fork-join worker team.
//
// The parallel heap engine repeatedly runs short phases (service one level's
// update processes, run the think phase on r items) across the same set of
// threads; creating threads per phase would dwarf the O(r log n) useful work.
// ThreadTeam keeps its members parked on a condition variable between phases
// — not spinning — because oversubscribed hosts (like this container) must
// not burn the CPU that the active phase needs.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "robustness/failpoint.hpp"
#include "telemetry/telemetry.hpp"
#include "testing/sched_fuzz.hpp"
#include "util/affinity.hpp"
#include "util/assert.hpp"

namespace ph {

class ThreadTeam {
 public:
  /// Creates `threads` workers (>= 1). With pin=true each worker is pinned
  /// round-robin to a CPU. `name` labels the workers' telemetry slots (and
  /// thus their tracks in a Chrome trace) as "<name>-<tid>".
  explicit ThreadTeam(unsigned threads, bool pin = false,
                      const char* name = "worker")
      : size_(threads) {
    PH_ASSERT(threads >= 1);
    workers_.reserve(threads);
    for (unsigned tid = 0; tid < threads; ++tid) {
      workers_.emplace_back([this, tid, pin, name] {
        if (pin) pin_this_thread(tid);
        if constexpr (telemetry::kEnabled) {
          telemetry::name_thread(std::string(name) + "-" + std::to_string(tid));
        }
        worker_loop(tid);
      });
    }
  }

  ~ThreadTeam() {
    {
      std::lock_guard lk(mu_);
      stop_ = true;
      ++epoch_;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  ThreadTeam(const ThreadTeam&) = delete;
  ThreadTeam& operator=(const ThreadTeam&) = delete;

  unsigned size() const noexcept { return size_; }

  /// Runs fn(tid) on every member thread and blocks until all finish.
  /// fn must not itself call run() on the same team.
  void run(const std::function<void(unsigned)>& fn) {
    begin(fn);
    wait();
  }

  /// Dispatches fn(tid) to every member without blocking; pair with wait().
  /// `fn` must stay alive until wait() returns. The caller can overlap its
  /// own work with the team — this is how the engine overlaps the think
  /// phase with heap maintenance.
  void begin(const std::function<void(unsigned)>& fn) {
    testing::sched_point(testing::SchedPoint::kTeamDispatch);
    std::lock_guard lk(mu_);
    PH_ASSERT_MSG(pending_ == 0, "ThreadTeam::begin while a phase is active");
    task_ = &fn;
    // Causal tracing: workers execute this phase under the dispatcher's
    // trace context, so one sharded cycle's spans stay one family even
    // across the think/maintenance teams.
    task_ctx_ = telemetry::trace_ctx();
    task_tag_ = telemetry::trace_tag();
    pending_ = size_;
    ++epoch_;
    cv_.notify_all();
  }

  /// Blocks until the phase started by begin() has finished on all members.
  void wait() {
    std::unique_lock lk(mu_);
    done_cv_.wait(lk, [this] { return pending_ == 0; });
    task_ = nullptr;
  }

  /// Statically chunked parallel loop over [begin, end); fn(i) per index.
  /// Chunks are contiguous so sequentially-adjacent work stays on one thread.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn) {
    const std::size_t n = end - begin;
    if (n == 0) return;
    run([&, n](unsigned tid) {
      const std::size_t chunk = (n + size_ - 1) / size_;
      const std::size_t lo = begin + std::min(n, tid * chunk);
      const std::size_t hi = begin + std::min(n, (tid + 1) * chunk);
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }

 private:
  void worker_loop(unsigned tid) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(unsigned)>* task;
      std::uint64_t ctx;
      std::uint32_t ctx_tag;
      {
        std::unique_lock lk(mu_);
        cv_.wait(lk, [&] { return epoch_ != seen; });
        seen = epoch_;
        if (stop_) return;
        task = task_;
        ctx = task_ctx_;
        ctx_tag = task_tag_;
      }
      testing::sched_point(testing::SchedPoint::kTeamTaskStart);
      // Worker-stall site: a bounded injected delay before the task body,
      // modeling a descheduled/oversubscribed worker. Exercises the barrier
      // backoff ladder and gives the phase watchdog something to catch.
      robustness::maybe_stall(robustness::FailSite::kWorkerStall);
      telemetry::TraceCtxScope span_ctx(ctx, ctx_tag);
      (*task)(tid);
      testing::sched_point(testing::SchedPoint::kTeamTaskDone);
      {
        std::lock_guard lk(mu_);
        if (--pending_ == 0) done_cv_.notify_all();
      }
    }
  }

  const unsigned size_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  const std::function<void(unsigned)>* task_ = nullptr;
  std::uint64_t task_ctx_ = 0;               ///< dispatcher's trace context
  std::uint32_t task_tag_ = telemetry::kNoTraceTag;
  std::uint64_t epoch_ = 0;
  unsigned pending_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ph
