// Deterministic, splittable pseudo-random number generation.
//
// All workloads and tests in this repository are seeded; any two runs with
// the same seed produce identical operation streams, which is what makes the
// differential tests (parallel heap vs oracle, parallel simulator vs serial
// reference) exact. SplitMix64 is used to derive independent per-thread /
// per-LP streams from one master seed; Xoshiro256** is the workhorse
// generator (fast, 256-bit state, passes BigCrush).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace ph {

/// SplitMix64: tiny generator used to seed/derive other generators.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** by Blackman & Vigna. Satisfies UniformRandomBitGenerator so
/// it can drive <random> distributions where convenient.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derive an independent stream for worker `index` from this generator's
  /// current state (used to hand each thread/LP its own generator).
  Xoshiro256 split(std::uint64_t index) noexcept {
    SplitMix64 sm(operator()() ^ (index * 0xd1342543de82ef95ull + 0x2545f4914f6cdd1dull));
    Xoshiro256 out(sm.next());
    return out;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    __extension__ typedef unsigned __int128 u128;
    u128 m = static_cast<u128>(operator()()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<u128>(operator()()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Exponential variate with the given mean (> 0).
  double next_exponential(double mean) noexcept {
    double u;
    do {
      u = next_double();
    } while (u <= 0.0);
    return -mean * std::log(u);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace ph
