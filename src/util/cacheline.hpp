// Cache-line geometry helpers.
//
// The parallel heap's per-level process lists and per-thread counters are
// written by different threads every cycle; padding them to cache-line
// granularity removes false sharing, which on the paper's Origin-2000 (and on
// any modern SMP) otherwise dominates fine-grained maintenance cost.
#pragma once

#include <cstddef>
#include <new>

namespace ph {

// Fixed at 64 rather than std::hardware_destructive_interference_size: the
// latter is flagged by GCC as ABI-unstable across tuning flags, and 64 bytes
// is correct for every x86-64 and the common AArch64 parts.
inline constexpr std::size_t kCacheLine = 64;

/// A value padded out to occupy at least one full cache line, so that arrays
/// of Padded<T> never share lines between adjacent elements.
template <typename T>
struct alignas(kCacheLine) Padded {
  T value{};

  Padded() = default;
  explicit Padded(const T& v) : value(v) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

/// Round `n` up to the next multiple of `align` (align must be a power of 2).
constexpr std::size_t round_up_pow2(std::size_t n, std::size_t align) noexcept {
  return (n + align - 1) & ~(align - 1);
}

}  // namespace ph
