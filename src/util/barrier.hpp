// Sense-reversing centralized barrier.
//
// The pipelined parallel heap advances in strict level-synchronized phases
// (odd levels → think → root work → even levels); every phase boundary is a
// barrier among the maintenance/worker team. std::barrier would do, but a
// sense-reversing counter barrier is what the paper-era systems used, is
// noticeably cheaper for small thread counts, and lets us count barrier
// crossings for the contention instrumentation.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "testing/sched_fuzz.hpp"
#include "util/assert.hpp"
#include "util/cacheline.hpp"

namespace ph {

class SenseBarrier {
 public:
  explicit SenseBarrier(std::uint32_t parties) : parties_(parties), remaining_(parties) {
    PH_ASSERT(parties > 0);
  }

  SenseBarrier(const SenseBarrier&) = delete;
  SenseBarrier& operator=(const SenseBarrier&) = delete;

  /// Block until all `parties` threads have arrived. Each participating
  /// thread must carry its own `local_sense`, initialized to false, across
  /// calls (ThreadTeam does this for its members).
  void arrive_and_wait(bool& local_sense) noexcept {
    testing::sched_point(testing::SchedPoint::kBarrierArrive);
    local_sense = !local_sense;
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last arriver: reset the count and release everyone.
      testing::sched_point(testing::SchedPoint::kBarrierRelease);
      remaining_.store(parties_, std::memory_order_relaxed);
      crossings_.fetch_add(1, std::memory_order_relaxed);
      sense_.store(local_sense, std::memory_order_release);
    } else {
      testing::sched_point(testing::SchedPoint::kBarrierSpin);
      // Bounded-exponential backoff ladder: pause → yield → sleep. Pure
      // spinning livelocks when parties > cores (the releaser may be
      // descheduled behind the spinners); pure yielding burns a scheduler
      // round-trip per probe. Spin briefly for the common uncontended case,
      // yield a handful of rounds, then sleep with doubling duration capped
      // at ~1ms so a long-stalled releaser costs microseconds of latency,
      // not a core.
      std::uint32_t spins = 0;
      std::uint32_t sleep_us = 1;
      while (sense_.load(std::memory_order_acquire) != local_sense) {
        ++spins;
        if (spins <= kSpinRounds) {
#if defined(__x86_64__) || defined(__i386__)
          __builtin_ia32_pause();
#endif
        } else if (spins <= kSpinRounds + kYieldRounds) {
          std::this_thread::yield();
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
          if (sleep_us < kMaxSleepUs) sleep_us *= 2;
        }
      }
    }
  }

  std::uint32_t parties() const noexcept { return parties_; }

  /// Number of completed barrier episodes (for instrumentation).
  std::uint64_t crossings() const noexcept {
    return crossings_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint32_t kSpinRounds = 1024;
  static constexpr std::uint32_t kYieldRounds = 64;
  static constexpr std::uint32_t kMaxSleepUs = 1024;

  const std::uint32_t parties_;
  alignas(kCacheLine) std::atomic<std::uint32_t> remaining_;
  alignas(kCacheLine) std::atomic<bool> sense_{false};
  alignas(kCacheLine) std::atomic<std::uint64_t> crossings_{0};
};

}  // namespace ph
