#include "util/affinity.hpp"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace ph {

unsigned hardware_cpus() noexcept {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

bool pin_this_thread([[maybe_unused]] unsigned cpu) noexcept {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % hardware_cpus(), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  return false;
#endif
}

}  // namespace ph
