// Wall-clock timing helpers used by benchmarks and the engine's phase
// accounting.
#pragma once

#include <chrono>
#include <cstdint>

namespace ph {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  std::uint64_t nanos() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across start/stop episodes; used to split engine time
/// into think / maintenance / barrier components.
class PhaseTimer {
 public:
  void start() noexcept {
    armed_ = true;
    t_.reset();
  }
  /// Accumulates the episode opened by the matching start(). A stop()
  /// without one (or a second stop()) is a no-op rather than folding in
  /// time measured from an arbitrary earlier origin.
  void stop() noexcept {
    if (!armed_) return;
    armed_ = false;
    total_ += t_.seconds();
  }
  double total_seconds() const noexcept { return total_; }
  void clear() noexcept {
    total_ = 0.0;
    armed_ = false;
  }

 private:
  Timer t_;
  double total_ = 0.0;
  bool armed_ = false;
};

}  // namespace ph
