// Instrumentation: counters and histograms.
//
// Because this reproduction runs on hardware where wall-clock speedup cannot
// be observed (see DESIGN.md), the scalability claims are additionally
// evidenced with hardware-independent counters: items merged per level,
// update processes serviced, critical-path ("span") work per cycle, lock
// acquisitions in the baselines. StatRegistry collects named counters so
// benchmarks can print them next to the timings.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ph {

/// Streaming summary of a sequence of samples (count/min/max/mean/stddev).
/// Mean and variance use Welford's online update for numerical stability;
/// NaN samples are rejected (counted separately) instead of poisoning every
/// aggregate through min/max/sum propagation.
class Summary {
 public:
  void add(double x) noexcept {
    if (std::isnan(x)) {
      ++nan_count_;
      return;
    }
    ++count_;
    sum_ += x;
    if (count_ == 1) {
      min_ = max_ = mean_ = x;
      m2_ = 0.0;
      return;
    }
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t nan_count() const noexcept { return nan_count_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  /// Sample standard deviation (Bessel-corrected); 0 with fewer than 2 samples.
  double stddev() const noexcept {
    return count_ < 2 ? 0.0 : std::sqrt(m2_ / static_cast<double>(count_ - 1));
  }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t nan_count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Power-of-two bucketed histogram for non-negative integer samples
/// (e.g. dirty-set sizes, rollback lengths, batch occupancies).
class Pow2Histogram {
 public:
  void add(std::uint64_t x) noexcept;

  std::uint64_t total() const noexcept { return total_; }
  /// Bucket b counts samples in [2^(b-1), 2^b), bucket 0 counts zeros/ones.
  const std::vector<std::uint64_t>& buckets() const noexcept { return buckets_; }
  std::string to_string() const;

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

/// Named counters for a single benchmark/test run. Not thread-safe by
/// design: concurrent components keep per-thread counters and merge them
/// into a registry at phase boundaries. For live, thread-safe counters and
/// latency histograms use telemetry/counters.hpp instead — this registry
/// remains for single-threaded ad-hoc accounting.
class StatRegistry {
 public:
  void add(const std::string& name, std::uint64_t delta) { counters_[name] += delta; }
  std::uint64_t get(const std::string& name) const;
  void clear() { counters_.clear(); }
  const std::map<std::string, std::uint64_t>& counters() const { return counters_; }
  std::string to_string() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace ph
