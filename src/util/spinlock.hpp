// Test-and-test-and-set spinlock with exponential backoff.
//
// Used by the lock-based baseline priority queues (the "heap with locks"
// comparator from the lineage) and by the fine-grained concurrent heap's
// per-node locks. Meets the Lockable requirements so it composes with
// std::lock_guard / std::scoped_lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace ph {

class Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() noexcept {
    std::uint32_t spins = 1;
    for (;;) {
      // Test-and-set only when the preceding relaxed read saw the lock free:
      // keeps the line in shared state while waiting.
      if (!flag_.load(std::memory_order_relaxed) &&
          !flag_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      backoff(spins);
    }
  }

  bool try_lock() noexcept {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  static void backoff(std::uint32_t& spins) noexcept {
    constexpr std::uint32_t kYieldThreshold = 1u << 10;
    if (spins < kYieldThreshold) {
      for (std::uint32_t i = 0; i < spins; ++i) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      }
      spins <<= 1;
    } else {
      std::this_thread::yield();
    }
  }

  std::atomic<bool> flag_{false};
};

}  // namespace ph
