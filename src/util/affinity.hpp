// Best-effort thread pinning.
//
// The paper's measurements depend on threads staying put on their CPUs (the
// Origin-2000 was NUMA); on Linux we pin with pthread_setaffinity_np. All
// calls are best-effort: on machines with fewer CPUs than threads (including
// this 1-core container) pinning simply maps threads round-robin onto the
// available CPUs.
#pragma once

namespace ph {

/// Pin the calling thread to `cpu % hardware_cpus`. Returns true on success.
bool pin_this_thread(unsigned cpu) noexcept;

/// Number of CPUs available to this process.
unsigned hardware_cpus() noexcept;

}  // namespace ph
