// Minimal recursive-descent JSON parser for validation and consumption of the
// telemetry exporters. Intentionally strict: any deviation from RFC 8259
// grammar throws, so "the file parses" is a meaningful assertion. Numbers
// are held as double (adequate for the counter magnitudes under test).
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace ph::minijson {

struct Value;
using Object = std::map<std::string, Value>;
using Array = std::vector<Value>;

struct Value {
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v =
      nullptr;

  bool is_object() const { return std::holds_alternative<Object>(v); }
  bool is_array() const { return std::holds_alternative<Array>(v); }
  bool is_number() const { return std::holds_alternative<double>(v); }
  bool is_string() const { return std::holds_alternative<std::string>(v); }

  const Object& object() const { return std::get<Object>(v); }
  const Array& array() const { return std::get<Array>(v); }
  double number() const { return std::get<double>(v); }
  const std::string& str() const { return std::get<std::string>(v); }

  /// Object member access; throws if absent or not an object.
  const Value& at(const std::string& key) const {
    const Object& o = object();
    auto it = o.find(key);
    if (it == o.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  bool has(const std::string& key) const {
    return is_object() && object().count(key) > 0;
  }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  Value parse() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value{parse_string()};
      case 't': return parse_lit("true", Value{true});
      case 'f': return parse_lit("false", Value{false});
      case 'n': return parse_lit("null", Value{nullptr});
      default: return parse_number();
    }
  }

  Value parse_lit(std::string_view lit, Value v) {
    if (s_.substr(pos_, lit.size()) != lit) fail("bad literal");
    pos_ += lit.size();
    return v;
  }

  Value parse_object() {
    expect('{');
    Object o;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value{std::move(o)};
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      o[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value{std::move(o)};
    }
  }

  Value parse_array() {
    expect('[');
    Array a;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value{std::move(a)};
    }
    for (;;) {
      a.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value{std::move(a)};
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("bad \\u escape");
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(s_[pos_ + i]))) {
              fail("bad \\u escape");
            }
          }
          const unsigned cp =
              static_cast<unsigned>(std::strtoul(std::string(s_.substr(pos_, 4)).c_str(),
                                                 nullptr, 16));
          pos_ += 4;
          // Tests only emit ASCII control escapes; encode BMP as UTF-8.
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) fail("bad number");
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("bad fraction");
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (digits() == 0) fail("bad exponent");
    }
    return Value{std::strtod(std::string(s_.substr(start, pos_ - start)).c_str(),
                             nullptr)};
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

inline Value parse(std::string_view text) { return Parser(text).parse(); }

}  // namespace ph::minijson
