#include "util/stats.hpp"

#include <bit>
#include <sstream>

namespace ph {

void Pow2Histogram::add(std::uint64_t x) noexcept {
  const std::size_t b = x <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(x - 1));
  if (b >= buckets_.size()) buckets_.resize(b + 1, 0);
  ++buckets_[b];
  ++total_;
}

std::string Pow2Histogram::to_string() const {
  std::ostringstream os;
  os << "total=" << total_;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] == 0) continue;
    const std::uint64_t lo = b == 0 ? 0 : (1ull << (b - 1)) + (b == 1 ? 1 : 0);
    const std::uint64_t hi = b == 0 ? 1 : (1ull << b) - 1;
    os << " [" << lo << ".." << hi << "]=" << buckets_[b];
  }
  return os.str();
}

std::uint64_t StatRegistry::get(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::string StatRegistry::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [k, v] : counters_) {
    if (!first) os << " ";
    first = false;
    os << k << "=" << v;
  }
  return os.str();
}

}  // namespace ph
