// Event-grain spinner: the lineage models event computation cost with an
// empty for-loop of configurable iterations ("medium event grain using an
// empty for-loop with [many] iterations"). spin_work reproduces that in a
// form the optimizer cannot elide.
#pragma once

#include <cstdint>

namespace ph {

/// Burns roughly `iters` dependent ALU operations; returns a value derived
/// from the loop so callers can fold it into a sink.
inline std::uint64_t spin_work(std::uint64_t iters, std::uint64_t seed = 1) noexcept {
  std::uint64_t x = seed | 1;
  for (std::uint64_t i = 0; i < iters; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  return x;
}

}  // namespace ph
