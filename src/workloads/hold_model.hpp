// The hold model — the standard priority-queue benchmark: preload n items,
// then repeatedly delete the minimum and re-insert it with its priority
// advanced by a random increment, keeping the size at n ("hold" operations).
//
// Two drivers:
//  * BatchHold drives any queue exposing the batch interface
//    cycle(new_items, k, out) — the parallel heaps, BatchAdapter-lifted
//    serial heaps, and LockedPQ all do — performing hold in batches of k,
//    which is the parallel heap's natural access pattern (the r earliest
//    items advance together).
//  * scalar_hold drives a scalar push/pop queue one item at a time.
//
// Keys are uint64 fixed-point priorities so every structure under test sees
// bit-identical work.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "workloads/distributions.hpp"
#include "workloads/grain.hpp"

namespace ph {

struct HoldConfig {
  std::size_t n = 1 << 16;       ///< steady-state queue size
  std::uint64_t ops = 1 << 20;   ///< hold operations (delete+insert pairs)
  Dist dist = Dist::kExponential;
  std::uint64_t seed = 1;
  std::uint64_t grain = 0;       ///< spin iterations per processed item
};

struct HoldResult {
  std::uint64_t ops = 0;
  std::uint64_t sink = 0;  ///< fold of spin results; defeats dead-code elim
};

/// Generates the initial queue content for a hold run (priorities in one
/// increment-mean of 0).
inline std::vector<std::uint64_t> hold_initial(const HoldConfig& cfg) {
  Xoshiro256 rng(cfg.seed);
  std::vector<std::uint64_t> init(cfg.n);
  for (auto& x : init) x = to_fixed(draw_increment(rng, cfg.dist));
  return init;
}

/// Batch hold: per cycle, delete `batch` items and re-insert each advanced
/// by an increment. Q needs cycle(span, k, vector&).
template <typename Q>
HoldResult batch_hold(Q& q, const HoldConfig& cfg, std::size_t batch) {
  Xoshiro256 rng(cfg.seed ^ 0x9e3779b97f4a7c15ull);
  HoldResult res;
  std::vector<std::uint64_t> deleted, fresh;
  while (res.ops < cfg.ops) {
    // Truncate the final cycle so the run performs exactly cfg.ops holds —
    // a full batch here would overshoot by up to batch-1 ops, skewing
    // throughput-per-op comparisons across batch sizes.
    const std::size_t k = static_cast<std::size_t>(
        std::min<std::uint64_t>(batch, cfg.ops - res.ops));
    deleted.clear();
    q.cycle(fresh, k, deleted);
    fresh.clear();
    for (std::uint64_t t : deleted) {
      if (cfg.grain != 0) res.sink ^= spin_work(cfg.grain, t);
      fresh.push_back(t + to_fixed(draw_increment(rng, cfg.dist)));
    }
    res.ops += deleted.size();
    if (deleted.empty()) break;
  }
  // Flush the final regenerated batch so steady-state size is preserved.
  std::vector<std::uint64_t> sink;
  q.cycle(fresh, 0, sink);
  return res;
}

/// Scalar hold: one delete+insert per step. Q needs push/pop/empty.
template <typename Q>
HoldResult scalar_hold(Q& q, const HoldConfig& cfg) {
  Xoshiro256 rng(cfg.seed ^ 0x9e3779b97f4a7c15ull);
  HoldResult res;
  for (std::uint64_t i = 0; i < cfg.ops && !q.empty(); ++i) {
    const std::uint64_t t = q.pop();
    if (cfg.grain != 0) res.sink ^= spin_work(cfg.grain, t);
    q.push(t + to_fixed(draw_increment(rng, cfg.dist)));
    ++res.ops;
  }
  return res;
}

}  // namespace ph
