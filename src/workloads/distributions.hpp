// Priority-increment distributions for the hold model, following the
// classic priority-queue evaluation methodology (Jones CACM'86, Brown
// CACM'88, Rönngren & Ayani). The increment is added to the dequeued item's
// priority before re-insertion; its shape controls how clustered the queue's
// near-future region is, which is what separates calendar-queue-friendly
// workloads from heap-friendly ones.
#pragma once

#include <cstdint>
#include <string>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace ph {

enum class Dist : std::uint8_t {
  kExponential,  ///< exp(mean 1) — the M/M/1 classic
  kUniform,      ///< U(0, 2)
  kBimodal,      ///< 90% U(0, 0.95) + 10% U(9.5, 10.5): rare far-future spikes
  kTriangular,   ///< right-triangular on (0, 1.5): density rising toward 1.5
  kCamel,        ///< two humps at 0.1ish and 9ish (Rönngren & Ayani's "camel")
};

inline const char* dist_name(Dist d) {
  switch (d) {
    case Dist::kExponential: return "exponential";
    case Dist::kUniform: return "uniform";
    case Dist::kBimodal: return "bimodal";
    case Dist::kTriangular: return "triangular";
    case Dist::kCamel: return "camel";
  }
  return "?";
}

/// Draws one increment (> 0, mean within a small constant of 1–2).
inline double draw_increment(Xoshiro256& rng, Dist d) {
  switch (d) {
    case Dist::kExponential:
      return rng.next_exponential(1.0);
    case Dist::kUniform:
      return rng.next_double() * 2.0;
    case Dist::kBimodal:
      if (rng.next_below(10) == 0) return 9.5 + rng.next_double();
      return rng.next_double() * 0.95;
    case Dist::kTriangular: {
      // max of two uniforms has a rising triangular density
      const double a = rng.next_double();
      const double b = rng.next_double();
      return 1.5 * (a > b ? a : b);
    }
    case Dist::kCamel:
      if (rng.next_below(2) == 0) return 0.05 + rng.next_double() * 0.1;
      return 8.5 + rng.next_double();
  }
  return 1.0;
}

/// Fixed-point conversion used when driving integer-keyed queues with
/// real-valued priorities (20 fractional bits keeps exactness well beyond
/// any horizon these workloads reach).
inline std::uint64_t to_fixed(double t) {
  PH_ASSERT(t >= 0);
  return static_cast<std::uint64_t>(t * static_cast<double>(1u << 20));
}
inline double from_fixed(std::uint64_t f) {
  return static_cast<double>(f) / static_cast<double>(1u << 20);
}

}  // namespace ph
