// ShardSupervisor — multi-process shard execution with per-shard recovery
// and kill-one-survivors-keep-cycling semantics (DESIGN.md §14).
//
// The supervisor presents the library's standard batch-PQ surface
// (cycle(fresh, k, out), bit-exact against a single-process oracle) while
// running each shard behind a Transport: a forked child process over a Unix
// socketpair (use_processes=true) or an in-process loopback (drills, tsan).
// Every shard backend owns its own durable directory (per-shard WAL +
// per-shard checkpoints via ShardServer), so one shard's death never
// invalidates another's state.
//
// A cycle decomposes into per-shard RPCs chosen so that NO acknowledged
// information exists only in a reply frame (protocol.hpp):
//
//   route    fresh items -> per-shard buckets (stateless value hash or
//            Config::router)
//   insert   one journaled kInsert per non-empty bucket
//   peek     read-only k-smallest prefix from every non-empty shard; the
//            union of prefixes provably contains the global k smallest
//   merge    k-way tournament picks the global winners and the per-shard
//            take counts
//   remove   one journaled kRemove{count} per contributing shard — the
//            removed items are exactly the winners already in hand
//
// Failure handling — detection, takeover, respawn, re-admission:
//
//   detect    a reply deadline, EOF/unframeable stream, send failure,
//             injected transport fault, waitpid() reap, or a PhaseWatchdog
//             stall verdict over the heartbeat channel
//   takeover  SIGKILL + reap what is left of the backend, then recover the
//             shard IN-PARENT from its own directory (ShardServer opening =
//             WAL recovery) and reconcile to the acknowledged op sequence
//             from the supervisor's journal of unpruned mutations; the
//             failed RPC is retried over the loopback — the cycle in
//             progress completes, survivors never notice
//   respawn   bounded retries with exponential backoff (kShardSpawn fail
//             point at each attempt); on success the fresh child recovers
//             from the same directory, its Hello is reconciled against the
//             journal, and the shard is re-admitted to process execution
//
// The journal is the supervisor's half of exactly-once: it holds every
// mutation since the shard's last acknowledged checkpoint (acks carry the
// checkpoint floor, pruning the prefix), so takeover replay plus the
// server-side "ack at-or-below op_seq without applying" rule make every
// retry idempotent. Determinism end to end: routing is a pure function of
// the value, the journal fixes the op stream, and total-order comparators
// make every delete-min multiset unique — hence bit-exact recovery.
#pragma once

#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <deque>
#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dist/protocol.hpp"
#include "dist/shard_server.hpp"
#include "dist/transport.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics_registry.hpp"
#include "persist/checkpoint.hpp"
#include "robustness/failpoint.hpp"
#include "robustness/watchdog.hpp"
#include "util/assert.hpp"

namespace ph::dist {

template <typename T, typename Compare = std::less<T>>
class ShardSupervisor {
 public:
  using value_type = T;

  /// A fail-point armed INSIDE spawned children only (the parent disarms a
  /// child's inherited mask at fork): per-child deterministic fault drills.
  struct ChildFault {
    robustness::FailSite site;
    robustness::FireSpec spec;
  };

  struct Config {
    std::size_t shards = 2;
    std::size_t node_capacity = 8;
    std::string dir;  ///< base durable directory; shards live in shard-<i>/
    persist::FsyncPolicy fsync = persist::FsyncPolicy::kOnCheckpoint;
    std::size_t checkpoint_interval = 16;  ///< per-shard, in applied mutations
    /// Value -> shard index (modulo is applied). Default: stateless byte
    /// hash, so routing is a pure function of the value across restarts.
    std::function<std::size_t(const T&)> router;
    bool use_processes = true;  ///< false: loopback backends (no fork)
    int reply_timeout_ms = 5000;
    int idle_beat_ms = 20;  ///< child heartbeat cadence while idle
    /// Consecutive in-cycle failovers of ONE shard before giving up loudly.
    std::size_t max_failovers_per_op = 3;
    /// Respawn attempts before the shard stays in-parent permanently.
    std::size_t max_spawn_retries = 5;
    std::uint64_t respawn_backoff_ns = 1'000'000;  ///< doubled per failure
    std::vector<ChildFault> child_faults;
    /// Injectable monotonic clock (ns); nullptr = steady_clock. Drives
    /// respawn backoff deadlines deterministically in tests.
    std::uint64_t (*clock)() = nullptr;
    Compare cmp{};
  };

  /// How a shard slot is currently executing.
  enum class BackendState : std::uint8_t {
    kProcess,    ///< child process over a socketpair
    kLoopback,   ///< configured in-process backend (use_processes=false)
    kTakenOver,  ///< recovered in-parent after a failure; respawn pending
    kDead,       ///< killed and not yet detected/taken over
  };

  struct Stats {
    std::uint64_t cycles = 0;
    std::uint64_t spawns = 0;          ///< successful backend spawns (initial + re)
    std::uint64_t respawns = 0;        ///< successful re-admissions after takeover
    std::uint64_t spawn_retries = 0;   ///< failed spawn attempts
    std::uint64_t takeovers = 0;       ///< in-parent recoveries
    std::uint64_t kills = 0;           ///< kill_shard() invocations
    std::uint64_t deaths = 0;          ///< child processes reaped dead
    std::uint64_t stall_verdicts = 0;  ///< watchdog-driven failovers
    std::uint64_t transport_faults = 0;///< injected transport failures absorbed
    std::uint64_t beats = 0;           ///< heartbeats observed
    std::uint64_t journal_replayed = 0;///< journal ops re-applied at takeovers
    std::uint64_t resent = 0;          ///< journal ops resent at re-admission
    std::uint64_t degraded_cycles = 0; ///< cycles completed while degraded
  };

  explicit ShardSupervisor(Config cfg) : cfg_(std::move(cfg)) {
    PH_ASSERT_MSG(cfg_.shards >= 1, "ShardSupervisor: need at least one shard");
    PH_ASSERT_MSG(!cfg_.dir.empty(), "ShardSupervisor: empty durable directory");
    if (cfg_.max_failovers_per_op == 0) cfg_.max_failovers_per_op = 1;
    std::error_code ec;
    std::filesystem::create_directories(cfg_.dir, ec);
    if (ec) {
      throw persist::PersistError("dist: cannot create " + cfg_.dir + ": " +
                                  ec.message());
    }
    slots_.resize(cfg_.shards);
    route_.resize(cfg_.shards);
    peeks_.resize(cfg_.shards);
    take_.resize(cfg_.shards);
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      try {
        spawn_backend(s);
      } catch (const robustness::InjectedFailure& f) {
        // Injected spawn failure at construction: recover the (empty) shard
        // in-parent and let poll() keep retrying the real backend.
        note_spawn_failure(s);
        takeover_shard(s);
        robustness::note_recovery(f.site);
      }
    }
  }

  ShardSupervisor(const ShardSupervisor&) = delete;
  ShardSupervisor& operator=(const ShardSupervisor&) = delete;

  ~ShardSupervisor() {
    for (Slot& sl : slots_) {
      if (sl.tr) {
        // Best-effort clean shutdown; SIGKILL + reap is the backstop (and
        // loses nothing: acknowledged state is on disk/page cache).
        encode_msg(Msg<T>{MsgType::kShutdown, 0, 0, 0, {}}, tx_);
        (void)sl.tr->send_frame(tx_);
        sl.tr->close();
      }
      reap(sl, /*kill_first=*/true);
    }
  }

  // ------------------------------------------------------------- main surface

  /// The standard batch-PQ cycle, distributed. Bit-exact against a
  /// single-process heap fed the same call stream, regardless of kills,
  /// dropped heartbeats, or injected transport faults along the way.
  std::size_t cycle(std::span<const T> fresh, std::size_t k, std::vector<T>& out) {
    poll();
    ++stats_.cycles;
    obs::flight(obs::FlightKind::kCycle, stats_.cycles, fresh.size());

    const std::size_t K = slots_.size();
    for (auto& b : route_) b.clear();
    for (const T& v : fresh) route_[route_of(v)].push_back(v);
    for (std::size_t s = 0; s < K; ++s) {
      if (route_[s].empty()) continue;
      mutate(s, Msg<T>{MsgType::kInsert, slots_[s].acked + 1, 0, 0, route_[s]});
    }

    std::size_t removed = 0;
    if (k > 0) {
      for (std::size_t s = 0; s < K; ++s) {
        peeks_[s].clear();
        take_[s] = 0;
        if (slots_[s].size == 0) continue;
        Msg<T> rep = rpc(s, Msg<T>{MsgType::kPeek, 0, k, 0, {}});
        if (rep.type != MsgType::kPeekReply) {
          throw persist::PersistError("dist: shard " + std::to_string(s) +
                                      " answered peek with " +
                                      msg_type_name(rep.type));
        }
        peeks_[s] = std::move(rep.items);
      }
      removed = merge_winners(k, out);
      for (std::size_t s = 0; s < K; ++s) {
        if (take_[s] == 0) continue;
        mutate(s, Msg<T>{MsgType::kRemove, slots_[s].acked + 1, take_[s], 0, {}});
      }
    }
    // Counted at completion, not entry: a mid-cycle takeover makes THIS the
    // first degraded cycle, independent of how fast poll() respawns later.
    if (degraded()) ++stats_.degraded_cycles;
    update_live();
    return removed;
  }

  /// Replaces all content: routed build via per-shard inserts over empty
  /// shards (callers use it only on a fresh supervisor, mirroring build()).
  void build(std::span<const T> items) {
    std::vector<T> sink;
    cycle(items, 0, sink);
  }

  /// Detection + maintenance pass (also runs at every cycle() entry): reaps
  /// dead children, drains pending heartbeats, converts watchdog stall
  /// verdicts into failovers, and attempts due respawns.
  void poll() {
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      Slot& sl = slots_[s];
      if (sl.state == BackendState::kDead) {
        // A loopback backend killed out-of-band has no fd to go EOF: the
        // maintenance pass is its detector.
        fail_shard(s);
      }
      if (sl.state == BackendState::kProcess && sl.pid > 0) {
        int status = 0;
        const ::pid_t r = ::waitpid(sl.pid, &status, WNOHANG);
        if (r == sl.pid) {
          sl.pid = 0;
          ++stats_.deaths;
          fail_shard(s);
          continue;
        }
        drain_beats(s);
      }
      if (wd_ != nullptr && sl.wd_ch != kNoChannel &&
          sl.state != BackendState::kDead &&
          wd_->consecutive_stalls(sl.wd_ch) >= polls_to_failover_) {
        ++stats_.stall_verdicts;
        fail_shard(s);
        if (robustness::armed(robustness::FailSite::kHeartbeatDrop)) {
          robustness::note_recovery(robustness::FailSite::kHeartbeatDrop);
        }
      }
      maybe_respawn(s);
    }
  }

  /// Simulated external kill: SIGKILLs the shard's child (or, for loopback
  /// backends, destroys the backend outright). Detection is deliberately
  /// NOT synchronous — the next poll()/RPC must notice, exactly as it would
  /// for a `kill -9` from a terminal.
  void kill_shard(std::size_t s) {
    Slot& sl = slots_[s];
    ++stats_.kills;
    if (sl.pid > 0) {
      ::kill(sl.pid, SIGKILL);
      return;
    }
    sl.tr.reset();
    sl.local.reset();
    sl.state = BackendState::kDead;
  }

  /// Forces a checkpoint on every live shard (journal prune follows acks).
  void checkpoint_all() {
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      const Msg<T> rep = rpc(s, Msg<T>{MsgType::kCheckpoint, 0, 0, 0, {}});
      prune_journal(s, rep.b);
    }
  }

  // ------------------------------------------------------------ observability

  std::size_t shards() const noexcept { return slots_.size(); }
  std::size_t size() const noexcept {
    std::size_t n = 0;
    for (const Slot& sl : slots_) n += sl.size;
    return n;
  }
  bool empty() const noexcept { return size() == 0; }
  const Stats& stats() const noexcept { return stats_; }
  BackendState backend_state(std::size_t s) const noexcept {
    return slots_[s].state;
  }
  ::pid_t shard_pid(std::size_t s) const noexcept { return slots_[s].pid; }
  std::uint64_t shard_op_seq(std::size_t s) const noexcept {
    return slots_[s].acked;
  }
  /// True while any shard executes somewhere other than its configured
  /// backend (survivors keep cycling; this flags the window).
  bool degraded() const noexcept {
    for (const Slot& sl : slots_) {
      if (sl.state == BackendState::kTakenOver ||
          sl.state == BackendState::kDead) {
        return true;
      }
    }
    return false;
  }

  bool check_invariants(std::string* why = nullptr) {
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      Slot& sl = slots_[s];
      if (sl.local && !sl.local->check_invariants(why)) return false;
      if (sl.state != BackendState::kDead && sl.local &&
          sl.local->op_seq() != sl.acked) {
        if (why != nullptr) {
          *why = "shard " + std::to_string(s) + " op seq " +
                 std::to_string(sl.local->op_seq()) + " != acked " +
                 std::to_string(sl.acked);
        }
        return false;
      }
    }
    return true;
  }

  /// Heartbeats feed one watchdog channel per shard; `polls_to_failover`
  /// consecutive stalled polls convert into a failover (mirrors
  /// ShardedHeap::attach_watchdog).
  void attach_watchdog(robustness::PhaseWatchdog& wd,
                       std::uint32_t polls_to_failover = 2) {
    wd_ = &wd;
    polls_to_failover_ =
        polls_to_failover == 0 ? 1 : polls_to_failover;
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      slots_[s].wd_ch = wd.add_channel("dist-shard-" + std::to_string(s));
    }
  }

  /// Lock-free mirror for gauge callbacks (ShardedHeap::Live convention).
  struct Live {
    std::atomic<std::uint64_t> total_size{0};
    std::atomic<std::uint64_t> cycles{0};
    std::atomic<std::uint64_t> takeovers{0};
    std::atomic<std::uint64_t> respawns{0};
    std::atomic<std::uint64_t> deaths{0};
    std::atomic<std::uint64_t> stall_verdicts{0};
    std::atomic<std::uint64_t> degraded{0};  ///< 1 while any shard is degraded
    std::atomic<std::uint64_t> process_backends{0};
  };
  const Live& live() const noexcept { return *live_; }

  void register_gauges(const std::string& heap = "dist") {
    gauges_.clear();
    Live* lv = live_.get();
    struct Simple {
      const char* name;
      const char* help;
      std::atomic<std::uint64_t> Live::*field;
    };
    static constexpr Simple kSimple[] = {
        {"dist_total_size", "Items across all supervised shards.", &Live::total_size},
        {"dist_cycles", "Distributed cycles completed.", &Live::cycles},
        {"dist_takeovers", "In-parent shard takeovers after failures.", &Live::takeovers},
        {"dist_respawns", "Shard processes respawned and re-admitted.", &Live::respawns},
        {"dist_deaths", "Shard child processes reaped dead.", &Live::deaths},
        {"dist_stall_verdicts", "Watchdog verdicts converted to failovers.", &Live::stall_verdicts},
        {"dist_degraded", "1 while any shard runs off its configured backend.", &Live::degraded},
        {"dist_process_backends", "Shards currently executing in child processes.", &Live::process_backends},
    };
    for (const Simple& g : kSimple) {
      auto field = g.field;
      gauges_.add(obs::GaugeDesc{g.name, {{"heap", heap}}, g.help},
                  [lv, field] {
                    return static_cast<double>(
                        (lv->*field).load(std::memory_order_relaxed));
                  });
    }
  }

 private:
  static constexpr std::size_t kNoChannel = static_cast<std::size_t>(-1);

  /// One journaled mutation: everything needed to re-apply it at takeover
  /// or resend it at re-admission. Removes carry only the count — their
  /// output is deterministic (the count smallest) and already known.
  struct JournalOp {
    MsgType type;
    std::uint64_t seq;
    std::uint64_t count;  ///< kRemove only
    std::vector<T> items; ///< kInsert only
  };

  struct Slot {
    BackendState state = BackendState::kDead;
    ::pid_t pid = 0;
    std::unique_ptr<Transport> tr;
    std::unique_ptr<ShardServer<T, Compare>> local;  ///< loopback/takeover
    std::uint64_t acked = 0;  ///< highest acknowledged op sequence
    std::size_t size = 0;     ///< from the last ack/hello
    std::deque<JournalOp> journal;
    std::size_t wd_ch = kNoChannel;
    std::size_t spawn_attempts = 0;      ///< consecutive failed (re)spawns
    std::uint64_t next_respawn_at = 0;   ///< clock deadline for the next try
  };

  std::uint64_t clock_now() const noexcept {
    if (cfg_.clock != nullptr) return cfg_.clock();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  std::size_t route_of(const T& v) const {
    if (cfg_.router) return cfg_.router(v) % slots_.size();
    // Stateless FNV-1a over the value bytes: the same value routes to the
    // same shard in every run and after every recovery.
    const auto* p = reinterpret_cast<const unsigned char*>(&v);
    std::uint64_t h = 1469598103934665603ull;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      h = (h ^ p[i]) * 1099511628211ull;
    }
    return static_cast<std::size_t>(h % slots_.size());
  }

  typename ShardServer<T, Compare>::Config server_config(std::size_t s) const {
    return {persist::shard_dir(cfg_.dir, s), cfg_.node_capacity, cfg_.fsync,
            cfg_.checkpoint_interval, cfg_.cmp};
  }

  // ----------------------------------------------------------- spawn / child

  /// Creates the configured backend for slot `s` and completes the
  /// handshake/reconciliation. Throws InjectedFault (kShardSpawn) or
  /// PersistError on failure; the slot is left backend-less.
  void spawn_backend(std::size_t s) {
    Slot& sl = slots_[s];
    robustness::fire_fault(robustness::FailSite::kShardSpawn);
    Msg<T> hello;
    if (cfg_.use_processes) {
      int fds[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
        throw persist::PersistError(std::string("dist: socketpair failed: ") +
                                    std::strerror(errno));
      }
      const ::pid_t pid = ::fork();
      if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        throw persist::PersistError(std::string("dist: fork failed: ") +
                                    std::strerror(errno));
      }
      if (pid == 0) child_main(s, fds[1], fds[0]);  // never returns
      ::close(fds[1]);
      sl.tr = std::make_unique<SocketTransport>(fds[0]);
      sl.pid = pid;
      sl.state = BackendState::kProcess;
      // The Hello deadline is generous: opening IS recovery, and a long WAL
      // replay is legitimate work, not a stall.
      hello = await_hello(s);
    } else {
      sl.local = std::make_unique<ShardServer<T, Compare>>(server_config(s));
      sl.tr = make_loopback(s);
      sl.pid = 0;
      sl.state = BackendState::kLoopback;
      hello = sl.local->hello();
    }
    reconcile(s, hello);
    ++stats_.spawns;
    obs::flight(obs::FlightKind::kShardProcSpawn, s,
                static_cast<std::uint64_t>(sl.pid));
  }

  [[noreturn]] void child_main(std::size_t s, int child_fd, int parent_fd) {
    ::close(parent_fd);
    // Drop inherited peer fds of the OTHER shards: holding a sibling's
    // socket open would mask its EOF when it dies.
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (i != s && slots_[i].tr) slots_[i].tr->close();
    }
    // The forked image inherits the parent's armed mask and crash hook;
    // a child is its OWN fault domain — only child_faults apply here.
    robustness::disarm_all();
    robustness::set_crash_hook([](robustness::FailSite) {
      const char* dir = std::getenv("PH_FLIGHTREC_DIR");
      if (dir != nullptr && dir[0] != '\0') {
        obs::FlightRecorder::instance().dump_to_file("shard-crash");
      }
      std::_Exit(41);
    });
    for (const ChildFault& f : cfg_.child_faults) {
      robustness::arm(f.site, f.spec);
    }
    SocketTransport tr(child_fd);
    try {
      ShardServer<T, Compare> server(server_config(s));
      run_shard_child(server, tr, cfg_.idle_beat_ms);
    } catch (const robustness::InjectedFailure&) {
      std::_Exit(40);
    } catch (...) {
      std::_Exit(3);
    }
  }

  Msg<T> await_hello(std::size_t s) {
    Slot& sl = slots_[s];
    Msg<T> m;
    while (true) {
      const RecvStatus st = sl.tr->recv_frame(rx_, cfg_.reply_timeout_ms);
      if (st != RecvStatus::kOk || !decode_msg(rx_, m)) {
        throw persist::PersistError("dist: shard " + std::to_string(s) +
                                    " failed its hello handshake");
      }
      if (m.type == MsgType::kBeat) {
        note_beat(s);
        continue;
      }
      if (m.type != MsgType::kHello) {
        throw persist::PersistError("dist: shard " + std::to_string(s) +
                                    " sent " + msg_type_name(m.type) +
                                    " instead of hello");
      }
      return m;
    }
  }

  /// Brings a freshly recovered backend level with the acknowledged op
  /// sequence by resending the journal suffix it is missing. A backend that
  /// recovered PAST our journal's reach means acknowledged ops were lost on
  /// disk out from under us — loud failure.
  void reconcile(std::size_t s, const Msg<T>& hello) {
    Slot& sl = slots_[s];
    if (sl.acked == 0 && sl.journal.empty() && hello.a > 0) {
      // A fresh supervisor adopting a pre-existing durable directory: the
      // backend's recovered sequence IS the baseline. (An in-flight first
      // op would have left a journal entry, so this cannot swallow one.)
      sl.acked = hello.a;
    }
    std::uint64_t resent = 0;
    if (hello.a < sl.acked) {
      for (const JournalOp& op : sl.journal) {
        if (op.seq <= hello.a || op.seq > sl.acked) continue;
        const Msg<T> rep = backend_roundtrip(s, to_msg(op));
        if (rep.type != MsgType::kAck) {
          throw persist::PersistError(
              "dist: shard " + std::to_string(s) +
              " rejected journal resend of op " + std::to_string(op.seq));
        }
        ++resent;
      }
      // Every hole below the journal floor would have been skipped silently
      // above; the final sequence check catches exactly that.
    }
    const std::uint64_t now_seq = hello.a < sl.acked
                                      ? probe_op_seq(s)
                                      : hello.a;
    if (now_seq < sl.acked) {
      throw persist::PersistError(
          "dist: shard " + std::to_string(s) + " recovered to op " +
          std::to_string(now_seq) + " < acknowledged " +
          std::to_string(sl.acked) + " — acknowledged ops were lost");
    }
    // now_seq == acked + 1 is legal: an in-flight op was logged before the
    // failure; the retry will be acknowledged-without-applying.
    sl.size = static_cast<std::size_t>(probe_size(s, hello));
    stats_.resent += resent;
    note_beat(s);
  }

  Msg<T> to_msg(const JournalOp& op) const {
    if (op.type == MsgType::kInsert) {
      return Msg<T>{MsgType::kInsert, op.seq, 0, 0, op.items};
    }
    return Msg<T>{MsgType::kRemove, op.seq, op.count, 0, {}};
  }

  /// One framed request/reply against the CURRENT backend, no failover (used
  /// inside handshakes, where a failure fails the spawn attempt itself).
  Msg<T> backend_roundtrip(std::size_t s, const Msg<T>& req) {
    Slot& sl = slots_[s];
    encode_msg(req, tx_);
    if (!sl.tr->send_frame(tx_)) {
      throw persist::PersistError("dist: shard " + std::to_string(s) +
                                  " dropped a handshake frame");
    }
    Msg<T> rep;
    while (true) {
      const RecvStatus st = sl.tr->recv_frame(rx_, cfg_.reply_timeout_ms);
      if (st != RecvStatus::kOk || !decode_msg(rx_, rep)) {
        throw persist::PersistError("dist: shard " + std::to_string(s) +
                                    " went silent mid-handshake");
      }
      if (rep.type == MsgType::kBeat) {
        note_beat(s);
        continue;
      }
      return rep;
    }
  }

  std::uint64_t probe_op_seq(std::size_t s) {
    const Msg<T> rep = backend_roundtrip(s, Msg<T>{MsgType::kPeek, 0, 0, 0, {}});
    return rep.a;
  }
  std::uint64_t probe_size(std::size_t s, const Msg<T>& hello) {
    if (slots_[s].journal.empty() && hello.a == slots_[s].acked) return hello.c;
    const Msg<T> rep = backend_roundtrip(s, Msg<T>{MsgType::kPeek, 0, 0, 0, {}});
    return rep.c;
  }

  std::unique_ptr<Transport> make_loopback(std::size_t s) {
    auto lb = std::make_unique<LoopbackTransport>();
    lb->set_handler([this, s](std::span<const std::uint8_t> payload,
                              std::vector<std::vector<std::uint8_t>>& replies) {
      Slot& sl = slots_[s];
      Msg<T> req;
      if (!sl.local || !decode_msg(payload, req)) return;  // dead backend
      const Msg<T> rep = sl.local->handle(req);
      std::vector<std::uint8_t> buf;
      if (sl.local->want_beat()) {
        encode_msg(Msg<T>{MsgType::kBeat, sl.local->op_seq(), 0, 0, {}}, buf);
        replies.push_back(buf);
      }
      encode_msg(rep, buf);
      replies.push_back(std::move(buf));
    });
    return lb;
  }

  // ------------------------------------------------- failure / takeover path

  void reap(Slot& sl, bool kill_first) {
    if (sl.pid <= 0) return;
    if (kill_first) ::kill(sl.pid, SIGKILL);
    int status = 0;
    while (::waitpid(sl.pid, &status, 0) < 0 && errno == EINTR) {
    }
    sl.pid = 0;
  }

  /// Failure verdict for shard `s`: put the backend down for good, recover
  /// in-parent, reconcile to the acknowledged sequence. Survivors are not
  /// touched; the caller retries whatever RPC was in flight.
  void fail_shard(std::size_t s) {
    Slot& sl = slots_[s];
    obs::flight(obs::FlightKind::kShardProcDeath, s,
                static_cast<std::uint64_t>(sl.pid));
    if (sl.pid > 0) {
      reap(sl, /*kill_first=*/true);
      ++stats_.deaths;
    }
    if (sl.tr) sl.tr->close();
    sl.tr.reset();
    sl.local.reset();
    sl.state = BackendState::kDead;
    takeover_shard(s);
  }

  /// In-parent recovery: open this shard's directory (WAL replay inside),
  /// re-apply the journal suffix the disk is missing, serve via loopback.
  void takeover_shard(std::size_t s) {
    Slot& sl = slots_[s];
    sl.tr.reset();
    sl.local = std::make_unique<ShardServer<T, Compare>>(server_config(s));
    std::uint64_t replayed = 0;
    for (const JournalOp& op : sl.journal) {
      if (op.seq <= sl.local->op_seq() || op.seq > sl.acked) continue;
      const Msg<T> rep = sl.local->handle(to_msg(op));
      if (rep.type != MsgType::kAck) {
        throw persist::PersistError(
            "dist: takeover of shard " + std::to_string(s) +
            " hit a journal hole at op " + std::to_string(op.seq));
      }
      ++replayed;
    }
    if (sl.local->op_seq() < sl.acked) {
      throw persist::PersistError(
          "dist: takeover of shard " + std::to_string(s) + " reached op " +
          std::to_string(sl.local->op_seq()) + " < acknowledged " +
          std::to_string(sl.acked) + " — acknowledged ops were lost");
    }
    sl.size = sl.local->size();
    sl.tr = make_loopback(s);
    sl.state = BackendState::kTakenOver;
    sl.next_respawn_at = clock_now() + backoff_ns(sl.spawn_attempts);
    ++stats_.takeovers;
    stats_.journal_replayed += replayed;
    note_beat(s);
    obs::flight(obs::FlightKind::kShardTakeover, s, replayed);
  }

  std::uint64_t backoff_ns(std::size_t attempts) const noexcept {
    const std::size_t shift = attempts < 20 ? attempts : 20;
    return cfg_.respawn_backoff_ns << shift;
  }

  void note_spawn_failure(std::size_t s) {
    Slot& sl = slots_[s];
    ++stats_.spawn_retries;
    ++sl.spawn_attempts;
    sl.next_respawn_at = clock_now() + backoff_ns(sl.spawn_attempts);
  }

  /// Attempts a due respawn of a degraded shard: close the in-parent
  /// backend (its directory must be free for the child), spawn, handshake,
  /// reconcile. Any failure re-takes the shard over and backs off.
  void maybe_respawn(std::size_t s) {
    Slot& sl = slots_[s];
    if (sl.state != BackendState::kTakenOver) return;
    if (sl.spawn_attempts >= cfg_.max_spawn_retries) return;  // permanent
    if (clock_now() < sl.next_respawn_at) return;
    const bool was_faulted = sl.spawn_attempts > 0;
    sl.tr.reset();
    sl.local.reset();
    try {
      spawn_backend(s);
    } catch (const robustness::InjectedFailure&) {
      note_spawn_failure(s);
      takeover_shard(s);
      return;
    } catch (const persist::PersistError&) {
      note_spawn_failure(s);
      takeover_shard(s);
      return;
    }
    ++stats_.respawns;
    if (was_faulted && robustness::armed(robustness::FailSite::kShardSpawn)) {
      robustness::note_recovery(robustness::FailSite::kShardSpawn);
    }
    sl.spawn_attempts = 0;
    obs::flight(obs::FlightKind::kShardReadmit, s,
                static_cast<std::uint64_t>(slots_[s].pid));
  }

  // ------------------------------------------------------------ RPC machinery

  /// Journaled mutation: append to the journal FIRST (so a takeover during
  /// the RPC can replay/retry it), then push it through rpc() and account
  /// the ack.
  void mutate(std::size_t s, Msg<T> req) {
    Slot& sl = slots_[s];
    PH_ASSERT(req.a == sl.acked + 1);
    if (req.type == MsgType::kInsert) {
      sl.journal.push_back(JournalOp{MsgType::kInsert, req.a, 0, req.items});
    } else {
      sl.journal.push_back(JournalOp{MsgType::kRemove, req.a, req.b, {}});
    }
    const Msg<T> rep = rpc(s, req);
    if (rep.type != MsgType::kAck || rep.a < req.a) {
      throw persist::PersistError("dist: shard " + std::to_string(s) +
                                  " failed to acknowledge op " +
                                  std::to_string(req.a));
    }
    sl.acked = req.a;
    sl.size = static_cast<std::size_t>(rep.c);
    prune_journal(s, rep.b);
  }

  void prune_journal(std::size_t s, std::uint64_t ckpt_seq) {
    auto& j = slots_[s].journal;
    while (!j.empty() && j.front().seq <= ckpt_seq) j.pop_front();
  }

  /// Request/reply with failover: any transport-level failure (deadline,
  /// EOF, bad frame, injected fault) kills + takes over the shard and
  /// retries against the recovered backend, up to max_failovers_per_op.
  Msg<T> rpc(std::size_t s, const Msg<T>& req) {
    for (std::size_t attempt = 0; attempt <= cfg_.max_failovers_per_op;
         ++attempt) {
      Slot& sl = slots_[s];
      if (sl.state == BackendState::kDead || !sl.tr) {
        fail_shard(s);
      }
      std::optional<robustness::FailSite> injected;
      Msg<T> rep;
      bool ok = false;
      try {
        ok = attempt_rpc(s, req, rep);
      } catch (const robustness::InjectedFailure& f) {
        ++stats_.transport_faults;
        injected = f.site;
      }
      if (ok) return rep;
      fail_shard(s);
      if (injected.has_value()) robustness::note_recovery(*injected);
    }
    throw persist::PersistError("dist: shard " + std::to_string(s) +
                                " still failing after " +
                                std::to_string(cfg_.max_failovers_per_op) +
                                " failovers — giving up loudly");
  }

  /// One attempt against the current backend. False = transport-level
  /// failure (failover material). Throws on protocol divergence (kError):
  /// that is corruption, not something a respawn can fix.
  bool attempt_rpc(std::size_t s, const Msg<T>& req, Msg<T>& rep) {
    Slot& sl = slots_[s];
    encode_msg(req, tx_);
    if (!sl.tr->send_frame(tx_)) return false;
    while (true) {
      const RecvStatus st = sl.tr->recv_frame(rx_, cfg_.reply_timeout_ms);
      if (st != RecvStatus::kOk) return false;
      if (!decode_msg(rx_, rep)) return false;
      if (rep.type == MsgType::kBeat) {
        note_beat(s);
        continue;
      }
      if (rep.type == MsgType::kError) {
        throw persist::PersistError(
            "dist: shard " + std::to_string(s) + " protocol divergence: " +
            "expected op " + std::to_string(rep.a) + ", supervisor sent " +
            std::to_string(rep.b));
      }
      // Deliberately NOT a beat: liveness is carried only by kBeat frames
      // (which kHeartbeatDrop suppresses server-side), so a shard whose
      // heartbeat path is broken escalates through the watchdog even while
      // request traffic still flows.
      return true;
    }
  }

  /// Drains heartbeats a child pushed while the supervisor was elsewhere.
  void drain_beats(std::size_t s) {
    Slot& sl = slots_[s];
    while (sl.tr) {
      const RecvStatus st = sl.tr->recv_frame(rx_, 0);
      if (st == RecvStatus::kTimeout) return;
      if (st == RecvStatus::kClosed) {
        fail_shard(s);
        return;
      }
      Msg<T> m;
      if (decode_msg(rx_, m) && m.type == MsgType::kBeat) note_beat(s);
      // Anything else here is a stray reply from a failed-over attempt;
      // sequence-numbered retries already made it harmless.
    }
  }

  void note_beat(std::size_t s) {
    ++stats_.beats;
    Slot& sl = slots_[s];
    if (wd_ != nullptr && sl.wd_ch != kNoChannel) wd_->beat(sl.wd_ch);
  }

  // --------------------------------------------------------- merge machinery

  /// K-way tournament over the per-shard sorted prefixes: appends the k
  /// global winners (ascending) to `out` and fills take_[s]. Ties break by
  /// shard index — any total tie-break yields the same output multiset.
  std::size_t merge_winners(std::size_t k, std::vector<T>& out) {
    const std::size_t K = slots_.size();
    idx_.assign(K, 0);
    std::size_t taken = 0;
    while (taken < k) {
      std::size_t best = K;
      for (std::size_t s = 0; s < K; ++s) {
        if (idx_[s] >= peeks_[s].size()) continue;
        if (best == K || cmp_(peeks_[s][idx_[s]], peeks_[best][idx_[best]])) {
          best = s;
        }
      }
      if (best == K) break;
      out.push_back(peeks_[best][idx_[best]]);
      ++idx_[best];
      ++take_[best];
      ++taken;
    }
    return taken;
  }

  void update_live() noexcept {
    Live& lv = *live_;
    lv.total_size.store(size(), std::memory_order_relaxed);
    lv.cycles.store(stats_.cycles, std::memory_order_relaxed);
    lv.takeovers.store(stats_.takeovers, std::memory_order_relaxed);
    lv.respawns.store(stats_.respawns, std::memory_order_relaxed);
    lv.deaths.store(stats_.deaths, std::memory_order_relaxed);
    lv.stall_verdicts.store(stats_.stall_verdicts, std::memory_order_relaxed);
    lv.degraded.store(degraded() ? 1 : 0, std::memory_order_relaxed);
    std::uint64_t procs = 0;
    for (const Slot& sl : slots_) {
      if (sl.state == BackendState::kProcess) ++procs;
    }
    lv.process_backends.store(procs, std::memory_order_relaxed);
  }

  Config cfg_;
  Compare cmp_{cfg_.cmp};
  std::vector<Slot> slots_;
  std::vector<std::vector<T>> route_;
  std::vector<std::vector<T>> peeks_;
  std::vector<std::uint64_t> take_;
  std::vector<std::size_t> idx_;
  std::vector<std::uint8_t> tx_;
  std::vector<std::uint8_t> rx_;
  Stats stats_;
  robustness::PhaseWatchdog* wd_ = nullptr;
  std::uint32_t polls_to_failover_ = 2;
  std::unique_ptr<Live> live_ = std::make_unique<Live>();
  obs::GaugeSet gauges_;
};

}  // namespace ph::dist
