// Supervisor <-> shard-server message protocol (DESIGN.md §14).
//
// One symmetric message shape rides the transport in both directions:
//
//   payload := [u8 type][u64 a][u64 b][u64 c][u64 nitems][raw items]
//
// where items are the PQ's trivially-copyable value type (same host-order
// raw encoding, and the same "item size in the header would reject a
// foreign file" stance, as the persist layer — the wire and the WAL carry
// the same bytes). The interpretation of a/b/c per type:
//
//   requests (supervisor -> shard)
//     kInsert    a=op seq                     items = routed fresh batch
//     kRemove    a=op seq, b=count            (delete the b smallest)
//     kPeek      b=k                          read-only: k-smallest prefix
//     kCheckpoint                              force a checkpoint now
//     kShutdown                                clean exit request
//   replies (shard -> supervisor)
//     kHello     a=recovered op seq, b=last checkpoint seq, c=size
//     kAck       a=op seq after apply, b=last checkpoint seq, c=size
//     kPeekReply a=op seq, c=size             items = the prefix
//     kBeat      a=op seq                     liveness heartbeat
//     kError     a=expected seq, b=got seq    protocol violation (loud)
//
// Why insert/peek/remove instead of shipping cycle() whole: a cycle's
// delete-side OUTPUT would exist only in a reply frame, and a shard that
// dies after logging the op but before replying would take the output with
// it — per-shard WAL replay reconstructs state, not lost reply frames. The
// split keeps every logged mutation's effect either output-free (insert) or
// already known to the supervisor (remove returns a prefix of the peek the
// supervisor just merged), so a replayed shard plus the supervisor's journal
// is always enough to continue bit-exactly. Peeks are read-only and never
// logged; sequence numbers advance only on mutations, and a shard server
// acknowledges-without-applying any mutation at or below its op seq, making
// post-failover retries idempotent.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "persist/format.hpp"

namespace ph::dist {

enum class MsgType : std::uint8_t {
  kInsert = 1,
  kRemove,
  kPeek,
  kCheckpoint,
  kShutdown,
  kHello,
  kAck,
  kPeekReply,
  kBeat,
  kError,
};

inline const char* msg_type_name(MsgType t) noexcept {
  switch (t) {
    case MsgType::kInsert: return "insert";
    case MsgType::kRemove: return "remove";
    case MsgType::kPeek: return "peek";
    case MsgType::kCheckpoint: return "checkpoint";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kHello: return "hello";
    case MsgType::kAck: return "ack";
    case MsgType::kPeekReply: return "peek_reply";
    case MsgType::kBeat: return "beat";
    case MsgType::kError: return "error";
  }
  return "unknown";
}

template <typename T>
struct Msg {
  static_assert(std::is_trivially_copyable_v<T>,
                "dist protocol items must be trivially copyable");
  MsgType type = MsgType::kBeat;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::vector<T> items;
};

template <typename T>
inline void encode_msg(const Msg<T>& m, std::vector<std::uint8_t>& out) {
  out.clear();
  out.push_back(static_cast<std::uint8_t>(m.type));
  persist::put_u64(out, m.a);
  persist::put_u64(out, m.b);
  persist::put_u64(out, m.c);
  persist::put_u64(out, m.items.size());
  if (!m.items.empty()) {
    persist::put_raw(out, m.items.data(), m.items.size() * sizeof(T));
  }
}

/// Strict decode: trailing bytes, short payloads, unknown types, and
/// implausible item counts all fail (the transport's CRC already caught
/// corruption; this catches protocol drift between the two processes).
template <typename T>
inline bool decode_msg(std::span<const std::uint8_t> payload, Msg<T>& m) {
  if (payload.empty()) return false;
  const auto raw_type = payload[0];
  if (raw_type < static_cast<std::uint8_t>(MsgType::kInsert) ||
      raw_type > static_cast<std::uint8_t>(MsgType::kError)) {
    return false;
  }
  m.type = static_cast<MsgType>(raw_type);
  persist::PayloadReader rd(payload.subspan(1));
  std::uint64_t nitems = 0;
  if (!rd.get_u64(m.a) || !rd.get_u64(m.b) || !rd.get_u64(m.c) ||
      !rd.get_u64(nitems)) {
    return false;
  }
  if (nitems * sizeof(T) != rd.remaining()) return false;
  m.items.resize(static_cast<std::size_t>(nitems));
  if (nitems != 0 && !rd.get_raw(m.items.data(), m.items.size() * sizeof(T))) {
    return false;
  }
  return rd.remaining() == 0;
}

}  // namespace ph::dist
