// Shard server: the backend behind one supervised shard (DESIGN.md §14).
//
// Each shard owns a PipelinedParallelHeap wrapped in DurableHeap on its OWN
// durable directory (`shard_dir(base, i)`): per-shard WAL segments, per-shard
// checkpoints, per-shard recovery — no monolithic image, no cross-shard
// coupling. The server itself is carrier-agnostic: handle() maps one decoded
// request to one reply, and the same object serves a forked child's socket
// loop (run_shard_child) and the supervisor's in-parent takeover loopback.
//
// Sequencing contract (the recovery linchpin): mutations carry an op
// sequence assigned by the supervisor; the server applies seq == op_seq+1,
// acknowledges-WITHOUT-applying seq <= op_seq (a post-failover retry of an
// op the WAL already holds), and answers anything else with kError — a
// sequence the supervisor has no journal for can only mean divergence, and
// divergence must be loud. Peeks are read-only (delete-then-reinsert on the
// inner heap, net-zero multiset change, never logged), so replies lost with
// a dying process never contain unrecoverable state.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/pipelined_heap.hpp"
#include "dist/protocol.hpp"
#include "dist/transport.hpp"
#include "persist/recovery.hpp"
#include "robustness/failpoint.hpp"

namespace ph::dist {

template <typename T, typename Compare = std::less<T>>
class ShardServer {
 public:
  using Heap = ph::PipelinedParallelHeap<T, Compare>;

  struct Config {
    std::string dir;  ///< this shard's own durable directory
    std::size_t node_capacity = 8;
    persist::FsyncPolicy fsync = persist::FsyncPolicy::kOnCheckpoint;
    /// Checkpoint after this many applied mutations (0 = only on request).
    std::size_t checkpoint_interval = 16;
    Compare cmp{};
  };

  /// Opening IS recovery: DurableHeap's SWEEP→LOAD→REPLAY→VERIFY→REBASE runs
  /// over this shard's directory alone.
  explicit ShardServer(const Config& cfg)
      : cfg_(cfg),
        q_(Heap(cfg.node_capacity, cfg.cmp),
           persist::DurableOptions{cfg.dir, cfg.fsync, /*checkpoint_interval=*/0,
                                   /*keep_checkpoints=*/2,
                                   /*checkpoint_on_open=*/true}) {
    last_ckpt_seq_ = q_.op_seq();
  }

  Msg<T> hello() const {
    return Msg<T>{MsgType::kHello, q_.op_seq(), last_ckpt_seq_, q_.size(), {}};
  }

  /// True unless the kHeartbeatDrop fail point eats this beat — the drill
  /// for "shard alive but its liveness signal lost".
  bool want_beat() noexcept {
    return !robustness::fire(robustness::FailSite::kHeartbeatDrop);
  }

  Msg<T> handle(const Msg<T>& req) {
    switch (req.type) {
      case MsgType::kInsert: {
        if (const auto dup = check_seq(req); dup.has_value()) return *dup;
        q_.insert_batch(std::span<const T>(req.items));
        return finish_mutation();
      }
      case MsgType::kRemove: {
        if (const auto dup = check_seq(req); dup.has_value()) return *dup;
        scratch_.clear();
        q_.delete_min_batch(static_cast<std::size_t>(req.b), scratch_);
        return finish_mutation();
      }
      case MsgType::kPeek: {
        scratch_.clear();
        q_.heap().delete_min_batch(static_cast<std::size_t>(req.b), scratch_);
        q_.heap().insert_batch(std::span<const T>(scratch_));
        return Msg<T>{MsgType::kPeekReply, q_.op_seq(), 0, q_.size(), scratch_};
      }
      case MsgType::kCheckpoint: {
        if (q_.checkpoint_now()) last_ckpt_seq_ = q_.op_seq();
        return ack();
      }
      case MsgType::kShutdown:
        return ack();
      default:
        return Msg<T>{MsgType::kError, q_.op_seq() + 1,
                      static_cast<std::uint64_t>(req.type), 0, {}};
    }
  }

  std::uint64_t op_seq() const noexcept { return q_.op_seq(); }
  std::uint64_t last_ckpt_seq() const noexcept { return last_ckpt_seq_; }
  std::size_t size() const noexcept { return q_.size(); }
  const persist::RecoveryInfo& recovery_info() const noexcept {
    return q_.recovery_info();
  }
  bool check_invariants(std::string* why = nullptr) {
    return q_.check_invariants(why);
  }

 private:
  Msg<T> ack() const {
    return Msg<T>{MsgType::kAck, q_.op_seq(), last_ckpt_seq_, q_.size(), {}};
  }

  /// nullopt: apply it. An ack: duplicate, already applied (idempotent
  /// retry). An error: a future/held-back sequence — divergence.
  std::optional<Msg<T>> check_seq(const Msg<T>& req) const {
    if (req.a <= q_.op_seq()) return ack();
    if (req.a == q_.op_seq() + 1) return std::nullopt;
    return Msg<T>{MsgType::kError, q_.op_seq() + 1, req.a, 0, {}};
  }

  Msg<T> finish_mutation() {
    ++ops_since_ckpt_;
    if (cfg_.checkpoint_interval != 0 &&
        ops_since_ckpt_ >= cfg_.checkpoint_interval) {
      ops_since_ckpt_ = 0;
      if (q_.checkpoint_now()) last_ckpt_seq_ = q_.op_seq();
    }
    return ack();
  }

  Config cfg_;
  persist::DurableHeap<Heap> q_;
  std::uint64_t last_ckpt_seq_ = 0;
  std::size_t ops_since_ckpt_ = 0;
  std::vector<T> scratch_;
};

/// Child-process body: everything after fork(). Serves framed requests from
/// `tr` until EOF/shutdown. Never returns — exits the process:
///   0  clean shutdown (kShutdown or supervisor closed the socket)
///   40 an injected failure escaped (child_faults drills: the child "dies")
///   3  a real error escaped (recovery will surface it loudly upstream)
/// The caller must already have reset inherited fail-point arming and
/// installed its crash hook — this function only serves.
template <typename T, typename Compare>
[[noreturn]] inline void run_shard_child(ShardServer<T, Compare>& server,
                                         Transport& tr,
                                         int idle_beat_ms) {
  std::vector<std::uint8_t> in;
  std::vector<std::uint8_t> out;
  try {
    encode_msg(server.hello(), out);
    if (!tr.send_frame(out)) std::_Exit(0);
    Msg<T> req;
    while (true) {
      const RecvStatus st = tr.recv_frame(in, idle_beat_ms);
      if (st == RecvStatus::kClosed) std::_Exit(0);
      if (st == RecvStatus::kTimeout) {
        // Idle: prove liveness anyway, so a supervisor-side watchdog
        // distinguishes "no work routed here" from "wedged".
        if (server.want_beat()) {
          encode_msg(Msg<T>{MsgType::kBeat, server.op_seq(), 0, 0, {}}, out);
          if (!tr.send_frame(out)) std::_Exit(0);
        }
        continue;
      }
      if (!decode_msg(in, req)) std::_Exit(3);
      const bool shutdown = req.type == MsgType::kShutdown;
      const Msg<T> rep = server.handle(req);
      // A beat precedes every reply: request service is itself liveness,
      // and the kHeartbeatDrop site can suppress exactly this signal.
      if (server.want_beat()) {
        encode_msg(Msg<T>{MsgType::kBeat, server.op_seq(), 0, 0, {}}, out);
        if (!tr.send_frame(out)) std::_Exit(0);
      }
      encode_msg(rep, out);
      if (!tr.send_frame(out)) std::_Exit(0);
      if (shutdown) std::_Exit(0);
    }
  } catch (const robustness::InjectedFailure&) {
    std::_Exit(40);
  } catch (...) {
    std::_Exit(3);
  }
}

}  // namespace ph::dist
