// Shared stream framing for every localhost wire in the tree.
//
// The durability layer defined the frame unit — [u32 len][u32 crc32][payload]
// (persist/format.hpp) — and PR 9's SocketTransport re-derived the stream
// side of it inline: accumulate bytes, cut complete frames, treat corruption
// as connection death. The service listener (src/svc/) needs the identical
// logic over many concurrent client fds, so this header is that logic
// factored once:
//
//   FrameParser   an incremental decoder over an unbounded byte stream.
//                 feed() appends raw bytes; next() cuts at most one complete
//                 frame off the front. A CRC mismatch or an oversized length
//                 prefix poisons the parser permanently (kBad): a stream
//                 cannot resynchronize past corruption, so every later call
//                 keeps returning kBad — callers close the carrier. Bounded
//                 memory: buffered bytes never exceed 8 + kMaxFramePayload
//                 plus one read chunk, because an oversized prefix is
//                 rejected BEFORE its body is awaited.
//
//   send_frame_fd an fd write of one framed payload: full-write loop,
//                 MSG_NOSIGNAL so a dead peer is EPIPE (false), never
//                 SIGPIPE.
//
// SocketTransport (transport.hpp) and the svc listener both delegate here;
// tests/test_frame.cpp drills torn frames, oversized prefixes, CRC damage,
// and zero-length payloads against this class directly.
#pragma once

#include <sys/socket.h>

#include <cerrno>
#include <cstdint>
#include <span>
#include <vector>

#include "persist/format.hpp"

namespace ph::dist {

enum class FrameStatus : std::uint8_t {
  kFrame = 0,  ///< one complete frame was cut into `payload`
  kNeedMore,   ///< stream is clean but holds no complete frame yet
  kBad,        ///< corrupt prefix/CRC — the stream is dead, close it
};

class FrameParser {
 public:
  /// Appends raw stream bytes. Cheap when poisoned (bytes are dropped —
  /// nothing past corruption will ever parse).
  void feed(std::span<const std::uint8_t> bytes) {
    if (bad_) return;
    rx_.insert(rx_.end(), bytes.begin(), bytes.end());
  }

  /// Cuts at most one complete frame off the front of the buffered stream.
  /// kBad is sticky: corruption has no recovery on a stream carrier.
  FrameStatus next(std::vector<std::uint8_t>& payload) {
    if (bad_) return FrameStatus::kBad;
    if (rx_.size() - off_ < 8) {
      compact();
      return FrameStatus::kNeedMore;
    }
    persist::PayloadReader hdr(std::span<const std::uint8_t>(rx_.data() + off_, 8));
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    hdr.get_u32(len);
    hdr.get_u32(crc);
    if (len > persist::kMaxFramePayload) {
      poison();
      return FrameStatus::kBad;
    }
    if (rx_.size() - off_ < 8 + static_cast<std::size_t>(len)) {
      return FrameStatus::kNeedMore;
    }
    const std::span<const std::uint8_t> body(rx_.data() + off_ + 8, len);
    if (persist::crc32(body) != crc) {
      poison();
      return FrameStatus::kBad;
    }
    payload.assign(body.begin(), body.end());
    off_ += 8 + static_cast<std::size_t>(len);
    compact();
    return FrameStatus::kFrame;
  }

  /// Buffered-but-unparsed byte count — nonzero at EOF means a torn tail.
  std::size_t buffered() const noexcept { return bad_ ? 0 : rx_.size() - off_; }
  bool poisoned() const noexcept { return bad_; }

 private:
  void poison() noexcept {
    bad_ = true;
    rx_.clear();
    off_ = 0;
  }

  /// Reclaims consumed prefix space once it dominates the buffer, keeping
  /// feed() amortized O(bytes) without erasing on every frame.
  void compact() {
    if (off_ == 0) return;
    if (off_ >= rx_.size()) {
      rx_.clear();
      off_ = 0;
    } else if (off_ >= 4096 && off_ * 2 >= rx_.size()) {
      rx_.erase(rx_.begin(), rx_.begin() + static_cast<std::ptrdiff_t>(off_));
      off_ = 0;
    }
  }

  std::vector<std::uint8_t> rx_;
  std::size_t off_ = 0;  ///< consumed prefix of rx_
  bool bad_ = false;
};

/// Writes one framed payload to a stream socket: full-write loop, EPIPE as a
/// false return (MSG_NOSIGNAL), EINTR retried. `wire` is caller scratch so
/// hot paths reuse one allocation.
inline bool send_frame_fd(int fd, std::span<const std::uint8_t> payload,
                          std::vector<std::uint8_t>& wire) {
  if (fd < 0) return false;
  wire.clear();
  persist::append_frame(wire, payload);
  const std::uint8_t* p = wire.data();
  std::size_t n = wire.size();
  while (n > 0) {
    const ::ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE/ECONNRESET: peer died — caller's failover problem
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace ph::dist
