// Transport seam for multi-process shard execution (DESIGN.md §14).
//
// The supervisor speaks to every shard backend through one tiny interface —
// send a frame, receive a frame with a deadline — so the SAME supervision,
// journaling, and recovery logic runs over two very different carriers:
//
//   SocketTransport    a connected AF_UNIX SOCK_STREAM fd (one end of a
//                      socketpair whose peer lives in a forked shard
//                      process). Frames reuse the durability layer's wire
//                      unit — [u32 len][u32 crc32][payload] (format.hpp) —
//                      so a torn or corrupted frame presents exactly like a
//                      torn WAL tail: a framing failure, reported as kClosed,
//                      never a misparse. Receives are deadline-bounded via
//                      poll(2); sends use MSG_NOSIGNAL so a peer that died
//                      mid-conversation surfaces as EPIPE (a return value the
//                      supervisor turns into a failover), not a SIGPIPE.
//
//   LoopbackTransport  an in-process queue in front of a synchronous handler.
//                      This is the takeover carrier: when a shard process is
//                      dead and its state has been re-adopted in-parent, the
//                      supervisor keeps issuing the SAME framed requests and
//                      the loopback dispatches them to the local ShardServer.
//                      It is also the whole story for use_processes=false
//                      (fault-matrix drills, tsan builds — no fork, no
//                      threads), keeping every protocol path exercisable
//                      in-process.
//
// Fault injection: both carriers evaluate the kTransportSend / kTransportRecv
// fail-point sites on every frame, so one armed spec drives "the network ate
// a frame" through either carrier — and the supervisor's recovery (kill,
// take over, replay, retry) is what the fault matrix audits.
#pragma once

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "dist/frame.hpp"
#include "persist/format.hpp"
#include "robustness/failpoint.hpp"

namespace ph::dist {

enum class RecvStatus : std::uint8_t {
  kOk = 0,
  kTimeout,  ///< deadline passed with no complete frame
  kClosed,   ///< peer gone (EOF, reset) or stream unframeable (CRC mismatch)
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Queues/writes one frame. Returns false when the peer is gone — the
  /// caller treats that exactly like a receive kClosed (failover).
  virtual bool send_frame(std::span<const std::uint8_t> payload) = 0;

  /// Receives the next frame into `payload`. `timeout_ms` bounds the total
  /// wait (0 = only what is already buffered/queued; <0 = block).
  virtual RecvStatus recv_frame(std::vector<std::uint8_t>& payload,
                                int timeout_ms) = 0;

  virtual void close() noexcept = 0;
};

/// Frame stream over a connected stream socket. Owns the fd.
class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(int fd) noexcept : fd_(fd) {}
  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;
  ~SocketTransport() override { close(); }

  bool send_frame(std::span<const std::uint8_t> payload) override {
    robustness::fire_fault(robustness::FailSite::kTransportSend);
    return send_frame_fd(fd_, payload, wire_);
  }

  RecvStatus recv_frame(std::vector<std::uint8_t>& payload, int timeout_ms) override {
    robustness::fire_fault(robustness::FailSite::kTransportRecv);
    if (fd_ < 0) return RecvStatus::kClosed;
    const auto deadline = timeout_ms < 0
                              ? std::chrono::steady_clock::time_point::max()
                              : std::chrono::steady_clock::now() +
                                    std::chrono::milliseconds(timeout_ms);
    while (true) {
      switch (rx_.next(payload)) {
        case FrameStatus::kFrame: return RecvStatus::kOk;
        case FrameStatus::kBad: return RecvStatus::kClosed;
        case FrameStatus::kNeedMore: break;
      }
      int wait_ms = 0;
      if (timeout_ms != 0) {
        const auto left = deadline - std::chrono::steady_clock::now();
        if (left <= std::chrono::nanoseconds::zero() && timeout_ms >= 0) {
          return RecvStatus::kTimeout;
        }
        wait_ms = timeout_ms < 0
                      ? -1
                      : static_cast<int>(
                            std::chrono::duration_cast<std::chrono::milliseconds>(
                                left)
                                .count() +
                            1);
      }
      ::pollfd pfd{fd_, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, wait_ms);
      if (pr < 0) {
        if (errno == EINTR) continue;
        return RecvStatus::kClosed;
      }
      if (pr == 0) return RecvStatus::kTimeout;
      std::uint8_t chunk[4096];
      const ::ssize_t r = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (r < 0) {
        if (errno == EINTR || errno == EAGAIN) continue;
        return RecvStatus::kClosed;
      }
      if (r == 0) {
        // EOF: anything short of a full frame in rx_ is a torn tail.
        return rx_.next(payload) == FrameStatus::kFrame ? RecvStatus::kOk
                                                        : RecvStatus::kClosed;
      }
      rx_.feed(std::span<const std::uint8_t>(chunk, static_cast<std::size_t>(r)));
    }
  }

  void close() noexcept override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  int fd() const noexcept { return fd_; }

 private:
  int fd_ = -1;
  FrameParser rx_;                  ///< incremental stream decoder (frame.hpp)
  std::vector<std::uint8_t> wire_;  ///< send scratch
};

/// In-process carrier: send_frame() dispatches to a synchronous handler,
/// whose reply frames are queued for subsequent recv_frame() calls. The
/// handler is the shard server's serve-one-request entry; a reset handler
/// (empty function) models a dead backend (send fails, recv is kClosed).
class LoopbackTransport final : public Transport {
 public:
  /// Receives one request payload; pushes zero or more reply frames.
  using Handler = std::function<void(std::span<const std::uint8_t>,
                                     std::vector<std::vector<std::uint8_t>>&)>;

  LoopbackTransport() = default;
  explicit LoopbackTransport(Handler h) : handler_(std::move(h)) {}

  void set_handler(Handler h) { handler_ = std::move(h); }

  bool send_frame(std::span<const std::uint8_t> payload) override {
    robustness::fire_fault(robustness::FailSite::kTransportSend);
    if (!handler_) return false;
    replies_.clear();
    handler_(payload, replies_);
    for (auto& r : replies_) rx_.push_back(std::move(r));
    return true;
  }

  RecvStatus recv_frame(std::vector<std::uint8_t>& payload,
                        int /*timeout_ms*/) override {
    robustness::fire_fault(robustness::FailSite::kTransportRecv);
    if (rx_.empty()) {
      // With a synchronous handler there is no "later": an empty queue means
      // the reply will never come, which is a timeout as far as the
      // supervisor's deadline logic is concerned.
      return handler_ ? RecvStatus::kTimeout : RecvStatus::kClosed;
    }
    payload = std::move(rx_.front());
    rx_.pop_front();
    return RecvStatus::kOk;
  }

  void close() noexcept override {
    handler_ = nullptr;
    rx_.clear();
  }

 private:
  Handler handler_;
  std::deque<std::vector<std::uint8_t>> rx_;
  std::vector<std::vector<std::uint8_t>> replies_;
};

}  // namespace ph::dist
