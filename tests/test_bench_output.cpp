// Integration check of the machine-readable bench output: runs the real
// bench_cycle_scaling binary (path injected by CMake) with --json/--trace,
// then parses both files — the JSON metrics must carry per-phase p50/p99
// latencies and merged per-thread counters, and the Chrome trace must parse
// with balanced B/E events. This is the executable contract future PRs rely
// on to produce BENCH_*.json trajectories mechanically.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "util/mini_json.hpp"

#ifndef PH_BENCH_CYCLE_SCALING_BIN
#error "CMake must define PH_BENCH_CYCLE_SCALING_BIN"
#endif

namespace ph {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << "cannot open " << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

class BenchOutput : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // gtest_discover_tests runs each TEST_F in its own process, and ctest may
    // run them concurrently — the output paths must be unique per process.
    const std::string tag = std::to_string(static_cast<long>(::getpid()));
    json_path_ = ::testing::TempDir() + "ph_bench_out." + tag + ".json";
    trace_path_ = ::testing::TempDir() + "ph_bench_out." + tag + ".trace.json";
    // The engine benchmark exercises every phase (root/odd/even on the
    // driver, think on the workers, maint_service on the maintenance
    // thread); a short min_time keeps the test fast.
    const std::string cmd = std::string(PH_BENCH_CYCLE_SCALING_BIN) +
                            " --json " + json_path_ + " --trace " + trace_path_ +
                            " --benchmark_filter=BM_EngineCycle" +
                            " --benchmark_min_time=0.02 > /dev/null 2>&1";
    run_status_ = std::system(cmd.c_str());
  }

  static int run_status_;
  static std::string json_path_;
  static std::string trace_path_;
};

int BenchOutput::run_status_ = -1;
std::string BenchOutput::json_path_;
std::string BenchOutput::trace_path_;

TEST_F(BenchOutput, BinaryExitsCleanly) { EXPECT_EQ(run_status_, 0); }

TEST_F(BenchOutput, MetricsJsonHasPhasePercentilesAndMergedCounters) {
  ASSERT_EQ(run_status_, 0);
  const auto doc = minijson::parse(slurp(json_path_));

  // Merged counters present for every registered counter name.
  const auto& counters = doc.at("telemetry").at("counters").object();
  for (const char* name : {"cycles", "items_inserted", "items_deleted",
                           "procs_spawned", "procs_serviced", "steals",
                           "think_items", "half_steps"}) {
    ASSERT_TRUE(counters.count(name)) << name;
  }

  // Per-phase latency summaries with percentile fields.
  const auto& phases = doc.at("telemetry").at("phases").object();
  for (const char* name : {"root_work", "odd_half_step", "even_half_step",
                           "think", "think_stall", "steal", "maint_service"}) {
    ASSERT_TRUE(phases.count(name)) << name;
    const auto& p = phases.at(name);
    for (const char* field : {"count", "min_ns", "max_ns", "mean_ns", "p50_ns",
                              "p90_ns", "p99_ns"}) {
      ASSERT_TRUE(p.has(field)) << name << "." << field;
    }
  }

  // Per-thread breakdown: at least the driver plus think/maint workers.
  const auto& threads = doc.at("telemetry").at("threads").array();
  EXPECT_GE(threads.size(), 1u);
  for (const auto& t : threads) {
    EXPECT_TRUE(t.has("tid"));
    EXPECT_TRUE(t.has("name"));
    EXPECT_TRUE(t.at("counters").is_object());
  }

#if PH_TELEMETRY_ENABLED
  // With telemetry compiled in, the engine benchmark must have recorded real
  // cycles and nonzero root-work/think latencies.
  EXPECT_GT(doc.at("telemetry").at("counters").at("cycles").number(), 0.0);
  EXPECT_GT(phases.at("root_work").at("count").number(), 0.0);
  EXPECT_GT(phases.at("root_work").at("p99_ns").number(), 0.0);
  EXPECT_GE(phases.at("root_work").at("p99_ns").number(),
            phases.at("root_work").at("p50_ns").number());
  EXPECT_GT(phases.at("think").at("count").number(), 0.0);
  std::set<std::string> names;
  for (const auto& t : threads) names.insert(t.at("name").str());
  EXPECT_TRUE(names.count("driver"));
  EXPECT_TRUE(names.count("think-0"));
  EXPECT_TRUE(names.count("maint-0"));
#endif
}

TEST_F(BenchOutput, ChromeTraceParsesWithBalancedEvents) {
  ASSERT_EQ(run_status_, 0);
  const auto doc = minijson::parse(slurp(trace_path_));
  const auto& events = doc.at("traceEvents").array();
  std::map<double, std::uint64_t> open_per_tid;
  std::uint64_t begins = 0, ends = 0;
  std::set<std::string> span_names;
  for (const auto& e : events) {
    const std::string ph = e.at("ph").str();
    ASSERT_TRUE(ph == "B" || ph == "E" || ph == "M") << ph;
    if (ph == "M") continue;
    const double tid = e.at("tid").number();
    EXPECT_TRUE(e.has("ts"));
    span_names.insert(e.at("name").str());
    if (ph == "B") {
      ++open_per_tid[tid];
      ++begins;
    } else {
      ASSERT_GT(open_per_tid[tid], 0u);
      --open_per_tid[tid];
      ++ends;
    }
  }
  EXPECT_EQ(begins, ends);
  for (const auto& [tid, open] : open_per_tid) {
    EXPECT_EQ(open, 0u) << "tid " << tid;
  }
#if PH_TELEMETRY_ENABLED
  // The engine run must show the pipeline's per-thread spans.
  EXPECT_TRUE(span_names.count("root_work"));
  EXPECT_TRUE(span_names.count("even_half_step") ||
              span_names.count("odd_half_step"));
  EXPECT_TRUE(span_names.count("think"));
#endif
}

TEST(BenchArgs, MalformedMetricsNumbersAreRejected) {
  // Regression: --metrics-port/--metrics-period-ms went through bare atoi,
  // so "--metrics-port=abc" silently became port 0 (ephemeral bind!) and a
  // junk period silently became the 1ms default. Non-numeric, trailing-junk,
  // and out-of-range values must all exit 2, like the empty-path check.
  const std::string bin(PH_BENCH_CYCLE_SCALING_BIN);
  for (const char* args :
       {" --metrics-port=abc", " --metrics-port=12abc", " --metrics-port=-1",
        " --metrics-port=65536", " --metrics-port ''",
        " --metrics-period-ms=abc", " --metrics-period-ms=0",
        " --metrics-period-ms=-5", " --metrics-period-ms=10x"}) {
    const int status = std::system((bin + args + " > /dev/null 2>&1").c_str());
    ASSERT_TRUE(WIFEXITED(status)) << args;
    EXPECT_EQ(WEXITSTATUS(status), 2) << args;
  }
}

TEST(BenchArgs, EmptyOutputPathIsRejected) {
  // Regression: "--json=" / "--trace=" (and an explicit empty argument) used
  // to be accepted and then silently skipped at exit — the caller asked for
  // a file and never got one. parse_args must reject them with exit code 2.
  const std::string bin(PH_BENCH_CYCLE_SCALING_BIN);
  for (const char* args : {" --json=", " --trace=", " --json ''", " --trace ''"}) {
    const int status =
        std::system((bin + args + " > /dev/null 2>&1").c_str());
    ASSERT_TRUE(WIFEXITED(status)) << args;
    EXPECT_EQ(WEXITSTATUS(status), 2) << args;
  }
}

}  // namespace
}  // namespace ph
