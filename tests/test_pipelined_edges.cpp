// Edge-case suite for the pipelined heap: drain idempotence, no-op steps,
// build() discarding in-flight state, total steal of a delivery, and long
// k=0 insert streaks followed by a full drain.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/parallel_heap.hpp"
#include "core/pipelined_heap.hpp"
#include "util/rng.hpp"

namespace ph {
namespace {

using Pipelined = PipelinedParallelHeap<std::uint64_t>;

TEST(PipelinedEdges, DrainIsIdempotent) {
  Pipelined h(8);
  Xoshiro256 rng(1);
  std::vector<std::uint64_t> fresh(64), out;
  for (auto& x : fresh) x = rng.next_below(1u << 20);
  h.step(fresh, 0, out);
  EXPECT_GT(h.inflight(), 0u);
  h.drain();
  EXPECT_EQ(h.inflight(), 0u);
  const auto snapshot = h.sorted_contents();
  h.drain();
  h.drain();
  EXPECT_EQ(h.sorted_contents(), snapshot);
  EXPECT_TRUE(h.check_invariants());
}

TEST(PipelinedEdges, NoOpStepsLeaveHeapIntact) {
  Pipelined h(8);
  Xoshiro256 rng(2);
  std::vector<std::uint64_t> init(500), out;
  for (auto& x : init) x = rng.next_below(1u << 20);
  h.build(init);
  const auto before = h.sorted_contents();
  for (int i = 0; i < 50; ++i) {
    out.clear();
    EXPECT_EQ(h.step({}, 0, out), 0u);
    EXPECT_TRUE(out.empty());
  }
  EXPECT_EQ(h.sorted_contents(), before);
}

TEST(PipelinedEdges, BuildDiscardsInflightState) {
  Pipelined h(8);
  Xoshiro256 rng(3);
  std::vector<std::uint64_t> fresh(100), out;
  for (auto& x : fresh) x = rng.next_below(1u << 20);
  h.step(fresh, 0, out);  // processes in flight
  std::vector<std::uint64_t> replacement{5, 1, 9, 3};
  h.build(replacement);
  EXPECT_EQ(h.inflight(), 0u);
  EXPECT_EQ(h.size(), 4u);
  out.clear();
  h.delete_min_batch(4, out);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{1, 3, 5, 9}));
}

TEST(PipelinedEdges, ShrinkToEmptyWhileDeliveriesInFlight) {
  // Insert a burst (deliveries pending), then drain to zero purely through
  // steps: the substitute stealing must account every committed item.
  Pipelined h(4);
  ParallelHeap<std::uint64_t> ref(4);
  Xoshiro256 rng(4);
  std::vector<std::uint64_t> burst(64), got, want, sink;
  for (auto& x : burst) x = rng.next_below(1u << 16);
  h.step(burst, 0, sink);
  ref.cycle(burst, 0, sink);
  while (h.size() > 0) {
    got.clear();
    want.clear();
    h.step({}, 4, got);
    ref.cycle({}, 4, want);
    ASSERT_EQ(got, want);
  }
  EXPECT_TRUE(ref.empty());
  EXPECT_TRUE(h.empty());
  EXPECT_TRUE(h.check_invariants());
}

TEST(PipelinedEdges, InsertStreakThenFullDrainMatchesSort) {
  Pipelined h(16);
  Xoshiro256 rng(5);
  std::vector<std::uint64_t> all, out;
  for (int s = 0; s < 100; ++s) {
    std::vector<std::uint64_t> fresh(rng.next_below(40));
    for (auto& x : fresh) x = rng.next_below(1u << 28);
    all.insert(all.end(), fresh.begin(), fresh.end());
    out.clear();
    h.step(fresh, 0, out);  // k = 0: pure pipelined insertion
    ASSERT_TRUE(out.empty());
  }
  ASSERT_EQ(h.size(), all.size());
  out.clear();
  h.delete_min_batch(all.size(), out);
  std::sort(all.begin(), all.end());
  EXPECT_EQ(out, all);
}

TEST(PipelinedEdges, AlternatingBuildAndChurn) {
  Pipelined h(8);
  Xoshiro256 rng(6);
  for (int round = 0; round < 10; ++round) {
    std::vector<std::uint64_t> init(rng.next_below(200) + 1);
    for (auto& x : init) x = rng.next_below(1u << 24);
    h.build(init);
    std::vector<std::uint64_t> out;
    for (int s = 0; s < 20; ++s) {
      std::vector<std::uint64_t> fresh(rng.next_below(12));
      for (auto& x : fresh) x = rng.next_below(1u << 24);
      out.clear();
      h.step(fresh, rng.next_below(9), out);
      ASSERT_TRUE(std::is_sorted(out.begin(), out.end()));
    }
    ASSERT_TRUE(h.check_invariants()) << "round " << round;
  }
}

}  // namespace
}  // namespace ph
