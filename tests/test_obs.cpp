// Observability-plane tests (src/obs/): the gauge registry and atomic
// snapshots, Prometheus/JSON exposition grammar, the SnapshotPublisher's
// file and TCP transports, the flight recorder's ring semantics and dump
// format, causal trace context in the Chrome export (valid JSON, per-thread
// chronology, accurate dropped-span accounting on ring wrap), the watchdog's
// pluggable report sink, build provenance, and the acceptance chain: a
// fail-point-induced quarantine plus a watchdog stall verdict must land in
// one flight dump in causal order.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/sharded_heap.hpp"
#include "obs/exposition.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/provenance.hpp"
#include "obs/publisher.hpp"
#include "robustness/failpoint.hpp"
#include "robustness/watchdog.hpp"
#include "telemetry/json.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "util/mini_json.hpp"
#include "util/rng.hpp"

namespace ph {
namespace {

namespace rb = ph::robustness;
using U64 = std::uint64_t;

// Route every flight dump this binary produces (watchdog rung-2 verdicts
// included) into gtest's temp dir instead of the working tree.
const bool g_dump_dir_set = [] {
  obs::FlightRecorder::instance().set_dump_dir(::testing::TempDir());
  return true;
}();

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

struct DisarmGuard {
  ~DisarmGuard() { rb::disarm_all(); }
};

// ------------------------------------------------------ MetricsRegistry

TEST(MetricsRegistry, GaugeRegisterSampleRemove) {
  auto& reg = obs::MetricsRegistry::instance();
  const std::size_t before = reg.gauge_count();
  const std::uint64_t id = reg.add_gauge(
      {"unit_test_gauge", {{"k", "v"}}, "test gauge"}, [] { return 42.5; });
  EXPECT_EQ(reg.gauge_count(), before + 1);

  const obs::ObsSnapshot snap = reg.snapshot();
  const auto it = std::find_if(
      snap.gauges.begin(), snap.gauges.end(),
      [](const obs::GaugeSample& g) { return g.desc.name == "unit_test_gauge"; });
  ASSERT_NE(it, snap.gauges.end());
  EXPECT_DOUBLE_EQ(it->value, 42.5);
  ASSERT_EQ(it->desc.labels.size(), 1u);
  EXPECT_EQ(it->desc.labels[0].first, "k");
  EXPECT_EQ(it->desc.labels[0].second, "v");

  reg.remove_gauge(id);
  EXPECT_EQ(reg.gauge_count(), before);
  reg.remove_gauge(id);  // stale id: no-op
  EXPECT_EQ(reg.gauge_count(), before);
}

TEST(MetricsRegistry, SnapshotSeqMonotoneAndStamped) {
  auto& reg = obs::MetricsRegistry::instance();
  const obs::ObsSnapshot a = reg.snapshot();
  const obs::ObsSnapshot b = reg.snapshot();
  EXPECT_GT(b.seq, a.seq);
  EXPECT_GE(b.t_ns, a.t_ns);
  EXPECT_GT(a.epoch_unix_ms, 0u);
  // Flight totals ride along and are monotone too.
  EXPECT_GE(b.flight_events, a.flight_events);
}

TEST(MetricsRegistry, GaugeSetRaiiDeregisters) {
  auto& reg = obs::MetricsRegistry::instance();
  const std::size_t before = reg.gauge_count();
  {
    obs::GaugeSet set;
    set.add({"raii_a", {}, ""}, [] { return 1.0; });
    set.add({"raii_b", {}, ""}, [] { return 2.0; });
    EXPECT_EQ(reg.gauge_count(), before + 2);
  }
  EXPECT_EQ(reg.gauge_count(), before);
}

TEST(MetricsRegistry, GaugeSetMoveTransfersOwnership) {
  auto& reg = obs::MetricsRegistry::instance();
  const std::size_t before = reg.gauge_count();
  obs::GaugeSet outer;
  {
    obs::GaugeSet inner;
    inner.add({"moved_gauge", {}, ""}, [] { return 3.0; });
    outer = std::move(inner);
  }  // inner dies; the registration must survive in outer
  EXPECT_EQ(reg.gauge_count(), before + 1);
  outer.clear();
  EXPECT_EQ(reg.gauge_count(), before);
}

// ---------------------------------------------------------- exposition

TEST(Exposition, PrometheusGrammarFamiliesAndEscaping) {
  obs::GaugeSet set;
  set.add({"expo_gauge", {{"label", "a\\b\"c\nd"}}, "escaping probe"},
          [] { return 7.0; });
  set.add({"expo_gauge", {{"label", "plain"}}, "escaping probe"},
          [] { return 8.0; });

  std::ostringstream os;
  obs::write_prometheus(obs::MetricsRegistry::instance().snapshot(), os);
  const std::string text = os.str();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');

  // Label escaping per the text format: backslash, quote, newline.
  EXPECT_NE(text.find("ph_expo_gauge{label=\"a\\\\b\\\"c\\nd\"} 7"),
            std::string::npos);

  // Line grammar + family contiguity: every sample line is `name{...} value`
  // or `name value`; all samples of a family sit between its # TYPE header
  // and the next header.
  const std::regex sample_re(
      R"(^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [-+0-9.eEinfa]+$)");
  std::istringstream lines(text);
  std::string line, current_family;
  std::set<std::string> closed_families;
  std::map<std::string, bool> has_type;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0 || line.rfind("# HELP ", 0) == 0) {
      std::istringstream hdr(line);
      std::string hash, kind, fam;
      hdr >> hash >> kind >> fam;
      if (kind == "TYPE") has_type[fam] = true;
      if (fam != current_family) {
        ASSERT_EQ(closed_families.count(fam), 0u)
            << "family " << fam << " reopened (samples must be contiguous)";
        if (!current_family.empty()) closed_families.insert(current_family);
        current_family = fam;
      }
      continue;
    }
    ASSERT_TRUE(std::regex_match(line, sample_re)) << "bad line: " << line;
    const std::string name = line.substr(0, line.find_first_of("{ "));
    EXPECT_EQ(name, current_family) << "sample outside its family: " << line;
    EXPECT_TRUE(has_type[name]) << "sample before # TYPE: " << line;
  }
  // The fixed part of the exposition is always present.
  EXPECT_NE(text.find("# TYPE ph_obs_snapshot_seq counter"), std::string::npos);
  EXPECT_NE(text.find("ph_flightrec_events_total"), std::string::npos);
}

TEST(Exposition, JsonParsesAndCarriesGauges) {
  obs::GaugeSet set;
  set.add({"json_probe", {{"heap", "t"}}, ""}, [] { return 11.0; });
  std::ostringstream os;
  obs::write_json(obs::MetricsRegistry::instance().snapshot(), os);
  const auto doc = minijson::parse(os.str());
  EXPECT_TRUE(doc.at("seq").is_number());
  EXPECT_TRUE(doc.at("t_ns").is_number());
  EXPECT_TRUE(doc.at("flight").at("events").is_number());
  EXPECT_TRUE(doc.at("telemetry").at("counters").is_object());
  bool found = false;
  for (const auto& g : doc.at("gauges").array()) {
    if (g.at("name").str() != "json_probe") continue;
    found = true;
    EXPECT_EQ(g.at("labels").at("heap").str(), "t");
    EXPECT_DOUBLE_EQ(g.at("value").number(), 11.0);
  }
  EXPECT_TRUE(found);
}

// ------------------------------------------------------ flight recorder

TEST(FlightRecorder, RingKeepsTailAndCountsDrops) {
  auto& fr = obs::FlightRecorder::instance();
  const std::uint64_t total0 = fr.total();
  const std::size_t n = obs::FlightRecorder::kCapacity + 257;
  for (std::size_t i = 0; i < n; ++i) {
    fr.record(obs::FlightKind::kNote, /*a=*/i, /*b=*/999);
  }
  EXPECT_EQ(fr.total(), total0 + n);
  EXPECT_EQ(fr.dropped(), fr.total() - obs::FlightRecorder::kCapacity);

  const std::vector<obs::FlightEvent> snap = fr.snapshot();
  ASSERT_EQ(snap.size(), obs::FlightRecorder::kCapacity);
  // Oldest-first: timestamps nondecreasing (single-threaded here) and the
  // most recent event survives the wrap.
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_GE(snap[i].t_ns, snap[i - 1].t_ns);
  }
  EXPECT_EQ(snap.back().a, n - 1);
  EXPECT_EQ(snap.back().b, 999u);
  EXPECT_EQ(snap.back().kind, obs::FlightKind::kNote);
}

TEST(FlightRecorder, DumpIsValidJsonWithAccurateCounts) {
  auto& fr = obs::FlightRecorder::instance();
  fr.record(obs::FlightKind::kNote, 1, 2);
  std::ostringstream os;
  fr.dump(os, "unit");
  const auto doc = minijson::parse(os.str());
  EXPECT_EQ(doc.at("reason").str(), "unit");
  EXPECT_GE(doc.at("total_events").number(), 1.0);
  EXPECT_GE(doc.at("dropped_events").number(), 0.0);
  const auto& events = doc.at("events").array();
  ASSERT_FALSE(events.empty());
  EXPECT_LE(events.size(), obs::FlightRecorder::kCapacity);
  std::map<double, double> last_per_tid;
  for (const auto& e : events) {
    EXPECT_FALSE(e.at("kind").str().empty());
    const double tid = e.at("tid").number();
    const double t = e.at("t_ns").number();
    const auto it = last_per_tid.find(tid);
    if (it != last_per_tid.end()) EXPECT_GE(t, it->second);
    last_per_tid[tid] = t;
  }
}

TEST(FlightRecorder, DumpToFileLandsInConfiguredDir) {
  auto& fr = obs::FlightRecorder::instance();
  fr.record(obs::FlightKind::kNote, 7, 7);
  const std::string path = fr.dump_to_file("obs-unit");
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find(::testing::TempDir()), std::string::npos);
  EXPECT_NE(path.find("obs-unit"), std::string::npos);
  const auto doc = minijson::parse(slurp(path));
  EXPECT_EQ(doc.at("reason").str(), "obs-unit");
}

TEST(FlightRecorder, RapidDumpsNeverClobberEachOther) {
  // Two dumps with the same reason inside one millisecond used to collide
  // on the <reason>-<ms> filename, the second silently overwriting the
  // first — exactly the dumps a cascading failure produces. The per-process
  // sequence (and pid, for forked children) must keep every path unique.
  auto& fr = obs::FlightRecorder::instance();
  fr.record(obs::FlightKind::kNote, 1, 1);
  std::vector<std::string> paths;
  for (int i = 0; i < 8; ++i) paths.push_back(fr.dump_to_file("obs-burst"));
  for (const std::string& p : paths) {
    ASSERT_FALSE(p.empty());
    EXPECT_TRUE(std::filesystem::exists(p)) << p;
  }
  std::vector<std::string> uniq = paths;
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
  EXPECT_EQ(uniq.size(), paths.size()) << "dump filenames collided";
}

// --------------------------------------------------- causal trace export

#if PH_TELEMETRY_ENABLED

TEST(CausalTrace, SpanScopeCapturesContextAndShardTag) {
  telemetry::Registry::instance().reset();
  const std::uint64_t id = telemetry::new_trace_id();
  {
    telemetry::TraceCtxScope ctx(id);
    { telemetry::SpanScope route(telemetry::Phase::kShardRoute); }
    {
      telemetry::TraceTagScope tag(3);
      telemetry::SpanScope merge(telemetry::Phase::kShardMerge);
    }
  }
  std::ostringstream os;
  telemetry::write_chrome_trace(os);
  const auto doc = minijson::parse(os.str());

  bool saw_route = false, saw_merge = false;
  std::size_t flow_starts = 0, flow_finishes = 0;
  for (const auto& e : doc.at("traceEvents").array()) {
    const std::string ph = e.at("ph").str();
    if (ph == "s" && e.at("id").number() == static_cast<double>(id)) ++flow_starts;
    if (ph == "f" && e.at("id").number() == static_cast<double>(id)) ++flow_finishes;
    if (ph != "B" || !e.has("args")) continue;
    const auto& args = e.at("args");
    if (!args.has("trace_id") ||
        args.at("trace_id").number() != static_cast<double>(id)) {
      continue;
    }
    if (e.at("name").str() == "shard_route") {
      saw_route = true;
      EXPECT_FALSE(args.has("shard"));  // untagged span
    }
    if (e.at("name").str() == "shard_merge") {
      saw_merge = true;
      ASSERT_TRUE(args.has("shard"));
      EXPECT_EQ(args.at("shard").number(), 3.0);
    }
  }
  EXPECT_TRUE(saw_route);
  EXPECT_TRUE(saw_merge);
  // Two top-level spans of one context stitch into one flow arrow chain.
  EXPECT_EQ(flow_starts, 1u);
  EXPECT_EQ(flow_finishes, 1u);
  telemetry::Registry::instance().reset();
}

TEST(CausalTrace, ShardedCycleExportsOneCoherentChain) {
  telemetry::Registry::instance().reset();
  ShardedHeap<U64>::Config scfg;
  scfg.shards = 4;
  ShardedHeap<U64> q(8, scfg);
  Xoshiro256 rng(5);
  std::vector<U64> sink;
  for (int c = 0; c < 6; ++c) {
    std::vector<U64> fresh(32);
    for (auto& v : fresh) v = rng.next_below(1u << 20);
    sink.clear();
    q.cycle(fresh, 8, sink);
  }
  std::ostringstream os;
  telemetry::write_chrome_trace(os);
  const auto doc = minijson::parse(os.str());

  // Group route/merge spans by trace id: every cycle must contribute both
  // phases under one id, i.e. the per-cycle context really crosses phases.
  std::map<double, std::set<std::string>> by_trace;
  for (const auto& e : doc.at("traceEvents").array()) {
    if (e.at("ph").str() != "B" || !e.has("args")) continue;
    const auto& args = e.at("args");
    if (!args.has("trace_id")) continue;
    by_trace[args.at("trace_id").number()].insert(e.at("name").str());
  }
  ASSERT_FALSE(by_trace.empty());
  std::size_t complete = 0;
  for (const auto& [id, names] : by_trace) {
    if (names.count("shard_route") && names.count("shard_merge")) ++complete;
  }
  EXPECT_GE(complete, 6u) << "each cycle should span route+merge under one id";
  telemetry::Registry::instance().reset();
}

TEST(TraceExport, RingWrapKeepsJsonValidChronologicalAndCountsDrops) {
  auto& reg = telemetry::Registry::instance();
  reg.reset();
  const std::size_t cap = telemetry::TraceRing::kDefaultCapacity;
  const std::size_t extra = 500;
  for (std::size_t i = 0; i < cap + extra; ++i) {
    telemetry::SpanScope s(telemetry::Phase::kRootWork);
  }
  const telemetry::MetricsSnapshot snap = reg.collect();
  EXPECT_EQ(snap.dropped_spans, extra);

  std::ostringstream os;
  telemetry::write_chrome_trace(os);
  const auto doc = minijson::parse(os.str());  // valid JSON after wrap
  std::map<double, double> last_ts;
  std::size_t begins = 0;
  for (const auto& e : doc.at("traceEvents").array()) {
    const std::string ph = e.at("ph").str();
    if (ph == "M") continue;
    const double tid = e.at("tid").number();
    const double ts = e.at("ts").number();
    const auto it = last_ts.find(tid);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second) << "non-chronological after ring wrap";
    }
    last_ts[tid] = ts;
    if (ph == "B") ++begins;
  }
  // The ring holds exactly its capacity after the wrap; the export carries
  // all surviving spans and only those.
  EXPECT_EQ(begins, cap);
  reg.reset();
}

#endif  // PH_TELEMETRY_ENABLED

// ------------------------------------------------------------ watchdog

std::uint64_t g_fake_now = 0;
std::uint64_t fake_clock() { return g_fake_now; }

TEST(Watchdog, ReportSinkReceivesBlockAndFlightDumpIsWritten) {
  g_fake_now = 1'000'000'000;
  rb::PhaseWatchdog::Config cfg;
  cfg.stall_timeout_ns = 100;
  cfg.dump_after_polls = 2;
  cfg.clock = &fake_clock;
  rb::PhaseWatchdog wd(cfg);
  const std::size_t ch = wd.add_channel("merge-loop");

  std::vector<std::string> reports;
  wd.set_report_sink([&](const std::string& r) { reports.push_back(r); });

  wd.beat(ch);
  g_fake_now += 1'000'000;  // well past the 100ns timeout
  EXPECT_EQ(wd.poll().stalled, 1u);
  ASSERT_TRUE(wd.poll().dumped);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_NE(reports[0].find("channel table"), std::string::npos);
  EXPECT_NE(reports[0].find("merge-loop"), std::string::npos);
  EXPECT_EQ(wd.reports(), 1u);

  const std::string dump_path = wd.last_flight_dump();
  ASSERT_FALSE(dump_path.empty());
  const auto doc = minijson::parse(slurp(dump_path));
  std::set<std::string> kinds;
  for (const auto& e : doc.at("events").array()) kinds.insert(e.at("kind").str());
  EXPECT_TRUE(kinds.count("watchdog_beat"));
  EXPECT_TRUE(kinds.count("watchdog_stall"));
  EXPECT_TRUE(kinds.count("watchdog_report"));
}

// Acceptance chain: fail-point fire → shard quarantine → watchdog stall
// verdict, all visible in ONE flight dump in causal (recorded) order.
TEST(FlightDump, FailpointQuarantineAndStallAppearInCausalOrder) {
  if (!rb::kFailpoints) GTEST_SKIP() << "built with PH_FAILPOINTS=OFF";
  DisarmGuard guard;

  ShardedHeap<U64>::Config scfg;
  scfg.shards = 4;
  scfg.quarantine = true;
  ShardedHeap<U64> q(8, scfg);
  rb::arm(rb::FailSite::kShardCycle, rb::FireSpec{2, 0, 1, 0});
  Xoshiro256 rng(17);
  std::vector<U64> sink;
  for (int c = 0; c < 8 && q.sharded_stats().quarantines == 0; ++c) {
    std::vector<U64> fresh(24);
    for (auto& v : fresh) v = rng.next_below(1u << 20);
    sink.clear();
    q.cycle(fresh, 8, sink);
  }
  ASSERT_GE(q.sharded_stats().quarantines, 1u);

  // Now a stall verdict on a fake clock persists the ring.
  g_fake_now = 2'000'000'000;
  rb::PhaseWatchdog::Config wcfg;
  wcfg.stall_timeout_ns = 100;
  wcfg.dump_after_polls = 1;
  wcfg.clock = &fake_clock;
  rb::PhaseWatchdog wd(wcfg);
  wd.add_channel("shard-0");
  g_fake_now += 1'000'000;
  ASSERT_TRUE(wd.poll().dumped);
  const std::string path = wd.last_flight_dump();
  ASSERT_FALSE(path.empty());

  const auto doc = minijson::parse(slurp(path));
  const auto& events = doc.at("events").array();
  const auto site = static_cast<double>(rb::FailSite::kShardCycle);
  std::ptrdiff_t fire_idx = -1, quar_idx = -1, report_idx = -1;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const std::string kind = events[i].at("kind").str();
    if (kind == "failpoint_fire" && events[i].at("a").number() == site) {
      if (fire_idx < 0) fire_idx = static_cast<std::ptrdiff_t>(i);
    }
    if (kind == "quarantine" && quar_idx < 0) {
      quar_idx = static_cast<std::ptrdiff_t>(i);
    }
    if (kind == "watchdog_report") report_idx = static_cast<std::ptrdiff_t>(i);
  }
  ASSERT_GE(fire_idx, 0) << "fail-point fire missing from flight dump";
  ASSERT_GE(quar_idx, 0) << "quarantine missing from flight dump";
  ASSERT_GE(report_idx, 0) << "watchdog report missing from flight dump";
  EXPECT_LT(fire_idx, quar_idx);
  EXPECT_LT(quar_idx, report_idx);
}

// ------------------------------------------------------------ publisher

TEST(Publisher, FileModePublishesParseableJsonAtomically) {
  const std::string path = ::testing::TempDir() + "obs_pub_snap.json";
  obs::SnapshotPublisher::Config cfg;
  cfg.file_path = path;
  cfg.period_ms = 10;
  obs::SnapshotPublisher pub(cfg);
  ASSERT_TRUE(pub.start());
  EXPECT_LT(pub.port(), 0);  // no TCP requested
  for (int i = 0; i < 500 && pub.file_publishes() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(pub.file_publishes(), 2u);
  pub.stop();
  EXPECT_FALSE(pub.running());
  const auto doc = minijson::parse(slurp(path));
  EXPECT_TRUE(doc.at("seq").is_number());
  EXPECT_TRUE(doc.at("gauges").is_array());
}

/// Raw HTTP/1.0 GET against 127.0.0.1:port; returns the full response.
std::string http_get(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + target + " HTTP/1.0\r\nConnection: close\r\n\r\n";
  (void)::send(fd, req.data(), req.size(), MSG_NOSIGNAL);
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return resp;
}

std::string body_of(const std::string& resp) {
  const std::size_t hdr_end = resp.find("\r\n\r\n");
  return hdr_end == std::string::npos ? "" : resp.substr(hdr_end + 4);
}

TEST(Publisher, TcpServesPrometheusJsonAndHealth) {
  obs::GaugeSet set;
  set.add({"tcp_probe", {}, ""}, [] { return 5.0; });

  obs::SnapshotPublisher::Config cfg;
  cfg.port = 0;  // ephemeral
  obs::SnapshotPublisher pub(cfg);
  ASSERT_TRUE(pub.start());
  ASSERT_GT(pub.port(), 0);

  const std::string health = http_get(pub.port(), "/healthz");
  EXPECT_NE(health.find("200"), std::string::npos);
  EXPECT_EQ(body_of(health), "ok\n");

  const std::string prom = http_get(pub.port(), "/metrics");
  EXPECT_NE(prom.find("200"), std::string::npos);
  EXPECT_NE(prom.find("text/plain"), std::string::npos);
  EXPECT_NE(body_of(prom).find("ph_tcp_probe 5"), std::string::npos);

  const std::string json = http_get(pub.port(), "/metrics.json");
  const auto doc = minijson::parse(body_of(json));
  EXPECT_TRUE(doc.at("seq").is_number());

  EXPECT_NE(http_get(pub.port(), "/nope").find("404"), std::string::npos);
  // Two scrapes of the same endpoint see advancing snapshot sequence.
  const auto doc2 = minijson::parse(body_of(http_get(pub.port(), "/metrics.json")));
  EXPECT_GT(doc2.at("seq").number(), doc.at("seq").number());

  EXPECT_GE(pub.requests(), 5u);
  pub.stop();
}

// ----------------------------------------------------------- provenance

TEST(Provenance, PopulatedAndSerializable) {
  const obs::Provenance& p = obs::provenance();
  EXPECT_FALSE(p.git_sha.empty());
  EXPECT_FALSE(p.compiler.empty());
  EXPECT_FALSE(p.build_type.empty());
  EXPECT_GT(p.cores, 0u);
  EXPECT_EQ(p.telemetry, static_cast<bool>(PH_TELEMETRY_ENABLED));

  std::ostringstream os;
  telemetry::JsonWriter w(os);
  obs::write_provenance_json(w);
  const auto doc = minijson::parse(os.str());
  EXPECT_EQ(doc.at("git_sha").str(), p.git_sha);
  EXPECT_EQ(doc.at("cores").number(), static_cast<double>(p.cores));
  EXPECT_TRUE(doc.has("telemetry"));
  EXPECT_TRUE(doc.has("failpoints"));
}

// ---------------------------------------------- sharded heap live gauges

TEST(LiveGauges, ShardedHeapExportsAdvancingPerShardGauges) {
  ShardedHeap<U64>::Config scfg;
  scfg.shards = 2;
  ShardedHeap<U64> q(8, scfg);
  q.register_gauges("gauge-test");

  auto sample = [&] {
    std::map<std::string, double> out;
    for (const auto& g : obs::MetricsRegistry::instance().snapshot().gauges) {
      std::string key = g.desc.name;
      for (const auto& [k, v] : g.desc.labels) key += "|" + k + "=" + v;
      out[key] = g.value;
    }
    return out;
  };

  std::vector<U64> init(256);
  Xoshiro256 rng(23);
  for (auto& v : init) v = rng.next_below(1u << 16);
  q.build(init);
  const auto s0 = sample();
  ASSERT_TRUE(s0.count("heap_size|heap=gauge-test"));
  EXPECT_DOUBLE_EQ(s0.at("heap_size|heap=gauge-test"), 256.0);
  EXPECT_DOUBLE_EQ(s0.at("active_shards|heap=gauge-test"), 2.0);
  ASSERT_TRUE(s0.count("shard_size|heap=gauge-test|shard=0"));
  ASSERT_TRUE(s0.count("shard_size|heap=gauge-test|shard=1"));
  EXPECT_DOUBLE_EQ(s0.at("shard_size|heap=gauge-test|shard=0") +
                       s0.at("shard_size|heap=gauge-test|shard=1"),
                   256.0);

  std::vector<U64> sink;
  q.cycle({}, 8, sink);  // delete-only cycle shrinks the heap
  const auto s1 = sample();
  EXPECT_DOUBLE_EQ(s1.at("heap_size|heap=gauge-test"), 248.0);
  EXPECT_GT(s1.at("heap_cycles|heap=gauge-test"),
            s0.at("heap_cycles|heap=gauge-test"));
}

}  // namespace
}  // namespace ph
