// Recovery-path tests for the fault-tolerance subsystem (src/robustness/):
// the fail-point registry's deterministic schedules, the strong-guarantee
// batch wrappers under injected OOM / torn batches / throwing comparators,
// snapshot/restore checkpoints, shard quarantine (fault- and deadline-
// driven) with exact deletion streams, the engine's at-least-once think
// recovery, the phase watchdog's escalation ladder on a fake clock, the
// assert-flush hook, and SenseBarrier liveness under oversubscription.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/pipelined_heap.hpp"
#include "core/sharded_heap.hpp"
#include "robustness/fault_matrix.hpp"
#include "robustness/failpoint.hpp"
#include "robustness/watchdog.hpp"
#include "sim/network.hpp"
#include "sim/serial_sim.hpp"
#include "sim/sharded_sim.hpp"
#include "telemetry/telemetry.hpp"
#include "testing/differential.hpp"
#include "testing/op_trace.hpp"
#include "testing/structures.hpp"
#include "testing/oracle.hpp"
#include "util/assert.hpp"
#include "util/barrier.hpp"
#include "util/rng.hpp"

namespace ph {
namespace {

using U64 = std::uint64_t;
namespace rb = ph::robustness;

// The watchdog's rung-2 verdict now persists the flight-recorder ring; keep
// those dumps out of the working tree when this binary walks the ladder.
const bool g_dump_dir_set = [] {
  obs::FlightRecorder::instance().set_dump_dir(::testing::TempDir());
  return true;
}();

/// Every test that arms a site must leave the registry clean even when an
/// EXPECT fails mid-body.
struct DisarmGuard {
  ~DisarmGuard() { rb::disarm_all(); }
};

std::vector<U64> seeded_keys(std::size_t n, U64 stride = 7) {
  std::vector<U64> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = 1 + i * stride;
  return v;
}

// ------------------------------------------------------------ registry

TEST(Failpoints, ScheduleFiresAtNthThenEveryPeriodUpToMax) {
  if (!rb::kFailpoints) GTEST_SKIP() << "built with PH_FAILPOINTS=OFF";
  DisarmGuard guard;
  rb::arm(rb::FailSite::kSkipReservice,
          rb::FireSpec{/*nth=*/3, /*period=*/4, /*max_fires=*/2, /*stall_us=*/0});
  std::vector<int> fired_at;
  for (int i = 1; i <= 16; ++i) {
    if (rb::fire(rb::FailSite::kSkipReservice)) fired_at.push_back(i);
  }
  EXPECT_EQ(fired_at, (std::vector<int>{3, 7}));  // nth=3, then 3+4, capped at 2
  const rb::SiteStats st = rb::stats(rb::FailSite::kSkipReservice);
  EXPECT_EQ(st.evaluations, 16u);
  EXPECT_EQ(st.fires, 2u);
}

TEST(Failpoints, DisarmedSiteNeverFiresAndCountsNothing) {
  if (!rb::kFailpoints) GTEST_SKIP() << "built with PH_FAILPOINTS=OFF";
  DisarmGuard guard;
  rb::disarm_all();
  const std::uint64_t evals_before = rb::stats(rb::FailSite::kTornInsert).evaluations;
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rb::fire(rb::FailSite::kTornInsert));
  }
  EXPECT_EQ(rb::stats(rb::FailSite::kTornInsert).evaluations, evals_before);
  EXPECT_FALSE(rb::any_armed());
}

TEST(Failpoints, SiteNamesRoundTrip) {
  for (std::size_t i = 0; i < rb::kNumFailSites; ++i) {
    const auto s = static_cast<rb::FailSite>(i);
    rb::FailSite back = rb::FailSite::kCount;
    ASSERT_TRUE(rb::fail_site_from_name(rb::fail_site_name(s), back))
        << rb::fail_site_name(s);
    EXPECT_EQ(back, s);
  }
  rb::FailSite out;
  EXPECT_FALSE(rb::fail_site_from_name("no_such_site", out));
}

TEST(Failpoints, ArmSeededIsDeterministicPerSeed) {
  if (!rb::kFailpoints) GTEST_SKIP() << "built with PH_FAILPOINTS=OFF";
  DisarmGuard guard;
  auto schedule = [](std::uint64_t seed) {
    rb::arm_seeded(rb::FailSite::kSkipReservice, seed, /*mean_period=*/10,
                   /*max_fires=*/3, /*stall_us=*/0);
    std::vector<int> fired;
    for (int i = 1; i <= 200; ++i) {
      if (rb::fire(rb::FailSite::kSkipReservice)) fired.push_back(i);
    }
    rb::disarm(rb::FailSite::kSkipReservice);
    return fired;
  };
  const auto a = schedule(42);
  EXPECT_EQ(a, schedule(42));
  EXPECT_EQ(a.size(), 3u);
}

// --------------------------------------- strong-guarantee batch wrappers

TEST(FaultRecovery, InsertBatchRollsBackOnRootAllocOom) {
  if (!rb::kFailpoints) GTEST_SKIP() << "built with PH_FAILPOINTS=OFF";
  DisarmGuard guard;
  PipelinedParallelHeap<U64> q(4);
  const std::vector<U64> base = seeded_keys(40);
  q.build(base);
  const std::vector<U64> fresh = seeded_keys(12, 11);

  rb::arm(rb::FailSite::kRootAlloc, rb::FireSpec{1, 0, 1, 0});
  EXPECT_THROW(q.insert_batch(fresh), rb::InjectedOom);
  rb::disarm_all();

  // Strong guarantee: contents exactly the pre-call multiset.
  std::vector<U64> want = base;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(q.sorted_contents(), want);
  std::string why;
  EXPECT_TRUE(q.verify_invariants(&why)) << why;

  // The retry (injection exhausted) succeeds and lands every item.
  q.insert_batch(fresh);
  want.insert(want.end(), fresh.begin(), fresh.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(q.sorted_contents(), want);
}

TEST(FaultRecovery, InsertBatchRollsBackOnSpawnAllocOom) {
  if (!rb::kFailpoints) GTEST_SKIP() << "built with PH_FAILPOINTS=OFF";
  DisarmGuard guard;
  PipelinedParallelHeap<U64> q(4);
  const std::vector<U64> base = seeded_keys(64);
  q.build(base);
  // A batch larger than r overflows the root and must spawn an
  // insert-update process — the kSpawnAlloc site sits on that allocation.
  const std::vector<U64> fresh = seeded_keys(16, 13);

  rb::arm(rb::FailSite::kSpawnAlloc, rb::FireSpec{1, 0, 1, 0});
  EXPECT_THROW(q.insert_batch(fresh), rb::InjectedOom);
  EXPECT_GE(rb::stats(rb::FailSite::kSpawnAlloc).fires, 1u);
  rb::disarm_all();

  std::vector<U64> want = base;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(q.sorted_contents(), want);

  q.insert_batch(fresh);
  EXPECT_EQ(q.size(), base.size() + fresh.size());
}

TEST(FaultRecovery, TornInsertBatchRestoresPreCallState) {
  if (!rb::kFailpoints) GTEST_SKIP() << "built with PH_FAILPOINTS=OFF";
  DisarmGuard guard;
  PipelinedParallelHeap<U64> q(4);
  const std::vector<U64> base = seeded_keys(32);
  q.build(base);
  // kTornInsert fires between spawn chunks, so the batch must span several
  // chunks of r: some items are already committed when the tear hits.
  const std::vector<U64> fresh = seeded_keys(24, 17);

  rb::arm(rb::FailSite::kTornInsert, rb::FireSpec{1, 0, 1, 0});
  EXPECT_THROW(q.insert_batch(fresh), rb::InjectedFault);
  EXPECT_GE(rb::stats(rb::FailSite::kTornInsert).fires, 1u);
  rb::disarm_all();

  std::vector<U64> want = base;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(q.sorted_contents(), want);
  std::string why;
  EXPECT_TRUE(q.verify_invariants(&why)) << why;
}

TEST(FaultRecovery, DeleteMinBatchRollsBackOnThrowingComparator) {
  if (!rb::kFailpoints) GTEST_SKIP() << "built with PH_FAILPOINTS=OFF";
  DisarmGuard guard;
  struct ThrowLess {
    bool operator()(U64 a, U64 b) const {
      rb::fire_fault(rb::FailSite::kCompareThrow);
      return a < b;
    }
  };
  PipelinedParallelHeap<U64, ThrowLess> q(4);
  const std::vector<U64> base = seeded_keys(48);
  q.build(base);

  rb::arm(rb::FailSite::kCompareThrow, rb::FireSpec{10, 0, 1, 0});
  std::vector<U64> out;
  EXPECT_THROW(q.delete_min_batch(8, out), rb::InjectedFault);
  rb::disarm_all();

  // Strong guarantee: nothing left the heap, nothing reached the output.
  EXPECT_TRUE(out.empty());
  std::vector<U64> want = base;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(q.sorted_contents(), want);

  // Injection off: the same call removes exactly the 8 smallest.
  const std::size_t n = q.delete_min_batch(8, out);
  EXPECT_EQ(n, 8u);
  EXPECT_EQ(out, std::vector<U64>(want.begin(), want.begin() + 8));
}

TEST(FaultRecovery, SnapshotRestoreRoundTripsAcrossMutation) {
  PipelinedParallelHeap<U64> q(8);
  const std::vector<U64> base = seeded_keys(100);
  q.build(base);
  const auto snap = q.snapshot();

  std::vector<U64> sink;
  q.cycle(seeded_keys(30, 19), 8, sink);
  q.cycle({}, 8, sink);
  ASSERT_NE(q.size(), base.size());

  q.restore(snap);
  EXPECT_EQ(q.size(), base.size());
  std::vector<U64> want = base;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(q.sorted_contents(), want);
}

TEST(FaultRecovery, VerifyInvariantsSeesMidPipelineState) {
  PipelinedParallelHeap<U64> q(4);
  q.build(seeded_keys(64));
  std::vector<U64> sink;
  // Leave processes in flight (no drain) and verify without disturbing them.
  q.cycle(seeded_keys(12, 23), 4, sink);
  std::string why;
  EXPECT_TRUE(q.verify_invariants(&why)) << why;
  EXPECT_GT(q.inflight(), 0u);  // the check must not have drained
}

// -------------------------------------------------- shard quarantine

TEST(Quarantine, InjectedShardFaultPreservesExactStream) {
  if (!rb::kFailpoints) GTEST_SKIP() << "built with PH_FAILPOINTS=OFF";
  DisarmGuard guard;
  testing::GenConfig gen;
  gen.r = 8;
  gen.cycles = 300;
  gen.seed = 77;
  const testing::OpTrace trace = testing::generate_trace(gen);

  ShardedHeap<U64>::Config scfg;
  scfg.shards = 4;
  scfg.rebalance_interval = 16;
  scfg.quarantine = true;
  ShardedHeap<U64> q(8, scfg);
  // Evaluations advance once per active shard per cycle: fire in cycle 2
  // (second active shard), then once more ~6 cycles later.
  rb::arm(rb::FailSite::kShardCycle, rb::FireSpec{6, 25, 2, 0});

  testing::DiffOptions opt;
  opt.invariant_stride = 64;
  const testing::DiffFailure f = testing::run_differential(q, trace, opt);
  EXPECT_FALSE(f.failed) << f.message;
  EXPECT_GE(q.sharded_stats().quarantines, 1u);
  EXPECT_LT(q.active_shards(), 4u);
}

TEST(Quarantine, QuarantineWithInflightPipelinesLosesNoItems) {
  if (!rb::kFailpoints) GTEST_SKIP() << "built with PH_FAILPOINTS=OFF";
  DisarmGuard guard;
  ShardedHeap<U64>::Config scfg;
  scfg.shards = 4;
  scfg.quarantine = true;
  ShardedHeap<U64> q(8, scfg);

  // Feed several insert-heavy cycles so every shard has parked processes,
  // then trip a shard while those pipelines are mid-flight.
  testing::SortedOracle oracle;
  std::vector<U64> got, want;
  Xoshiro256 rng(3);
  for (int c = 0; c < 40; ++c) {
    std::vector<U64> fresh(24);
    for (auto& v : fresh) v = rng.next_below(1u << 20);
    if (c == 10) rb::arm(rb::FailSite::kShardCycle, rb::FireSpec{2, 0, 1, 0});
    got.clear();
    want.clear();
    q.cycle(fresh, 8, got);
    oracle.cycle(fresh, 8, want);
    ASSERT_EQ(got, want) << "cycle " << c;
  }
  EXPECT_GE(q.sharded_stats().quarantines, 1u);
  // Drain both sides completely: exact same tail.
  while (oracle.size() > 0) {
    got.clear();
    want.clear();
    q.cycle({}, 8, got);
    oracle.cycle({}, 8, want);
    ASSERT_EQ(got, want);
  }
  EXPECT_TRUE(q.empty());
}

TEST(Quarantine, DeadlineRetiresSlowShardsDownToOne) {
  // Deadline-driven degradation needs no fail-point build: a 1ns deadline
  // trips every shard that completes a cycle until one survivor holds the
  // whole key range. The stream must stay exact throughout.
  testing::GenConfig gen;
  gen.r = 8;
  gen.cycles = 200;
  gen.seed = 9;
  const testing::OpTrace trace = testing::generate_trace(gen);

  ShardedHeap<U64>::Config scfg;
  scfg.shards = 4;
  scfg.quarantine = false;  // deadline path is independent of fail-points
  scfg.cycle_deadline_ns = 1;
  ShardedHeap<U64> q(8, scfg);

  const testing::DiffFailure f =
      testing::run_differential(q, trace, testing::DiffOptions{});
  EXPECT_FALSE(f.failed) << f.message;
  EXPECT_EQ(q.active_shards(), 1u);
  EXPECT_EQ(q.sharded_stats().quarantines, 3u);
}

TEST(Quarantine, BuildReactivatesQuarantinedShards) {
  ShardedHeap<U64>::Config scfg;
  scfg.shards = 4;
  scfg.cycle_deadline_ns = 1;
  ShardedHeap<U64> q(8, scfg);
  std::vector<U64> sink;
  q.cycle(seeded_keys(64), 8, sink);
  ASSERT_LT(q.active_shards(), 4u);

  q.build(seeded_keys(32));
  EXPECT_EQ(q.active_shards(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_TRUE(q.shard_active(i));
}

std::uint64_t g_fake_now = 0;
std::uint64_t fake_clock() { return g_fake_now; }

TEST(Quarantine, WatchdogStallVerdictRetiresShardOnFakeClock) {
  // Satellite of the durability PR: PhaseWatchdog verdicts feed ShardedHeap
  // retirement. Shard 2's heartbeat goes silent on a fake clock; after the
  // configured consecutive stalled polls its shard is quarantined at the
  // next cycle boundary, and the deletion stream stays exact throughout.
  rb::PhaseWatchdog::Config wcfg;
  wcfg.stall_timeout_ns = 1000;
  wcfg.clock = &fake_clock;
  g_fake_now = 0;
  rb::PhaseWatchdog wd(wcfg);

  ShardedHeap<U64>::Config scfg;
  scfg.shards = 4;
  ShardedHeap<U64> q(8, scfg);
  q.attach_watchdog(wd, /*polls_to_quarantine=*/2);

  testing::SortedOracle oracle;
  std::vector<U64> got, want;
  Xoshiro256 rng(13);
  const std::size_t victim = 2;
  for (int c = 0; c < 40; ++c) {
    std::vector<U64> fresh(20);
    for (auto& v : fresh) v = rng.next_below(1u << 20);
    got.clear();
    want.clear();
    q.cycle(fresh, 8, got);
    oracle.cycle(fresh, 8, want);
    ASSERT_EQ(got, want) << "cycle " << c;
    if (c >= 10 && c < 12) {
      // Between cycles: time passes, every shard but the victim beats, and
      // the poller runs. Two such polls reach the verdict threshold.
      g_fake_now += 5000;
      for (std::size_t s = 0; s < 4; ++s) {
        if (s != victim && q.shard_active(s)) wd.beat(q.watchdog_channel(s));
      }
      wd.poll();
    }
  }
  EXPECT_FALSE(q.shard_active(victim));
  EXPECT_EQ(q.active_shards(), 3u);
  EXPECT_GE(q.sharded_stats().quarantines, 1u);
  // Exact tail: the retired shard's items were redistributed, not lost.
  while (!oracle.empty() || !q.empty()) {
    got.clear();
    want.clear();
    q.cycle({}, 8, got);
    oracle.cycle({}, 8, want);
    ASSERT_EQ(got, want);
  }
}

TEST(Quarantine, WatchdogNeverRetiresTheLastShard) {
  rb::PhaseWatchdog::Config wcfg;
  wcfg.stall_timeout_ns = 1000;
  wcfg.clock = &fake_clock;
  g_fake_now = 0;
  rb::PhaseWatchdog wd(wcfg);
  ShardedHeap<U64>::Config scfg;
  scfg.shards = 3;
  ShardedHeap<U64> q(4, scfg);
  q.attach_watchdog(wd, 1);

  std::vector<U64> sink;
  q.cycle(seeded_keys(40), 4, sink);
  // Every channel stalls; polls accumulate verdicts against all shards.
  g_fake_now += 1u << 20;
  wd.poll();
  wd.poll();
  testing::SortedOracle oracle;
  std::vector<U64> rest(sink.begin(), sink.end());  // already deleted
  sink.clear();
  q.cycle({}, 4, sink);  // quarantine sweep happens here
  EXPECT_EQ(q.active_shards(), 1u);  // degraded to one survivor, never zero
  // The heap still answers exactly: drain and check global sortedness.
  std::vector<U64> drained(sink.begin(), sink.end());
  while (true) {
    sink.clear();
    q.cycle({}, 4, sink);
    if (sink.empty()) break;
    drained.insert(drained.end(), sink.begin(), sink.end());
  }
  EXPECT_TRUE(std::is_sorted(drained.begin(), drained.end()));
  EXPECT_EQ(drained.size() + rest.size(), 40u);
}

TEST(Quarantine, DesOutcomeExactWithShardKilledMidRun) {
  if (!rb::kFailpoints) GTEST_SKIP() << "built with PH_FAILPOINTS=OFF";
  DisarmGuard guard;
  const sim::Topology topo = sim::make_torus(8, 8);
  sim::ModelConfig mc;
  mc.seed = 5;
  const sim::Model model(topo, mc);
  const double end_time = 60.0;
  const sim::SimResult want = sim::run_serial_sim(model, end_time);
  ASSERT_GT(want.processed, 0u);

  sim::ShardedSimConfig cfg;
  cfg.shards = 4;
  cfg.node_capacity = 32;
  cfg.batch = 32;
  cfg.quarantine = true;
  // Kill one shard mid-run (evals advance once per active shard per cycle).
  rb::arm(rb::FailSite::kShardCycle, rb::FireSpec{4 * 10 + 2, 0, 1, 0});
  const sim::ShardedSimResult got = sim::run_sharded_sim(model, end_time, cfg);
  rb::disarm_all();

  EXPECT_EQ(got.shard.quarantines, 1u);
  EXPECT_TRUE(got.sim.same_outcome(want))
      << "processed " << got.sim.processed << " vs " << want.processed
      << ", fingerprint " << got.sim.fingerprint << " vs " << want.fingerprint;
}

// ------------------------------------------- overlapped putback recovery

TEST(DeferredPutback, InjectedPutbackFaultIsRetriedAtHandshake) {
  if (!rb::kFailpoints) GTEST_SKIP() << "built with PH_FAILPOINTS=OFF";
  DisarmGuard guard;
  testing::GenConfig gen;
  gen.r = 8;
  gen.cycles = 300;
  gen.seed = 91;
  const testing::OpTrace trace = testing::generate_trace(gen);

  ShardedHeap<U64>::Config scfg;
  scfg.shards = 3;
  scfg.rebalance_interval = 16;
  scfg.workers = 2;
  scfg.overlap_putback = true;
  scfg.min_hint = false;  // hint skips would starve the putback path
  ShardedHeap<U64> q(8, scfg);
  // kShardPutback fires on the worker team BEFORE the shard's insert-only
  // cycle, so the suffix is still intact when the next handshake retries
  // the slot serially. Bounded fires so the retries eventually land.
  rb::arm(rb::FailSite::kShardPutback, rb::FireSpec{2, 3, 20, 0});

  testing::DiffOptions opt;
  opt.invariant_stride = 64;
  const testing::DiffFailure f = testing::run_differential(q, trace, opt);
  EXPECT_FALSE(f.failed) << f.message;
  q.quiesce();
  const rb::SiteStats st = rb::stats(rb::FailSite::kShardPutback);
  EXPECT_GT(st.fires, 0u);
  EXPECT_GT(st.recoveries, 0u);
  EXPECT_LE(st.recoveries, st.fires);
}

TEST(DeferredPutback, TeardownSwallowsDeferredFailureAndRecordsFlight) {
  if (!rb::kFailpoints) GTEST_SKIP() << "built with PH_FAILPOINTS=OFF";
  DisarmGuard guard;
  const auto teardown_flights = [] {
    std::size_t n = 0;
    for (const auto& e : obs::FlightRecorder::instance().snapshot()) {
      if (e.kind == obs::FlightKind::kTeardownError) ++n;
    }
    return n;
  };
  const std::size_t before = teardown_flights();
  {
    ShardedHeap<U64>::Config scfg;
    scfg.shards = 3;
    scfg.workers = 2;
    scfg.overlap_putback = true;
    scfg.min_hint = false;
    ShardedHeap<U64> q(8, scfg);
    q.build(seeded_keys(64));
    // Unbounded schedule: every putback attempt faults, including all 64
    // serial retries at the handshake, so the destructor's quiesce() is
    // left holding an injected failure. It must swallow it (no terminate)
    // and leave a kTeardownError breadcrumb in the flight ring.
    rb::arm(rb::FailSite::kShardPutback, rb::FireSpec{1, 1, 0, 0});
    std::vector<U64> out;
    q.cycle({}, 4, out);  // leaves losing suffixes for the async putback
    EXPECT_EQ(out.size(), 4u);
  }
  rb::disarm_all();
  EXPECT_GT(teardown_flights(), before);
}

// ------------------------------------------------ engine think recovery

TEST(EngineFaults, ThrowingThinkLaneIsRequeuedAtLeastOnce) {
  if (!rb::kFailpoints) GTEST_SKIP() << "built with PH_FAILPOINTS=OFF";
  DisarmGuard guard;
  EngineConfig ecfg;
  ecfg.node_capacity = 8;
  ecfg.think_threads = 2;
  ecfg.batch = 8;
  ParallelHeapEngine<U64> engine(ecfg);
  const std::size_t n = 600;
  std::vector<U64> seedv(n);
  for (std::size_t i = 0; i < n; ++i) seedv[i] = static_cast<U64>(i);
  engine.seed(seedv);

  rb::arm(rb::FailSite::kThinkThrow, rb::FireSpec{2, 7, 3, 0});
  std::vector<std::vector<U64>> processed(2);
  const EngineReport rep = engine.run(
      [&](unsigned tid, std::span<const U64> mine, std::span<const U64>,
          std::vector<U64>&) {
        processed[tid].insert(processed[tid].end(), mine.begin(), mine.end());
      });
  rb::disarm_all();

  EXPECT_GE(rep.think_faults, 1u);
  EXPECT_TRUE(engine.heap().empty());
  std::vector<U64> all;
  for (const auto& p : processed) all.insert(all.end(), p.begin(), p.end());
  std::sort(all.begin(), all.end());
  // At-least-once: every seeded item was processed (requeue may duplicate).
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(std::binary_search(all.begin(), all.end(), static_cast<U64>(i)))
        << "item " << i << " lost after think-lane requeue";
  }
  EXPECT_GE(all.size(), n);
}

TEST(EngineFaults, UserExceptionIsAlsoContained) {
  // Non-injected throws take the same requeue path (code 1): the run
  // completes and conserves items even when the user callback throws.
  EngineConfig ecfg;
  ecfg.node_capacity = 8;
  ecfg.think_threads = 2;
  ecfg.batch = 8;
  ParallelHeapEngine<U64> engine(ecfg);
  std::vector<U64> seedv(200);
  for (std::size_t i = 0; i < seedv.size(); ++i) seedv[i] = static_cast<U64>(i);
  engine.seed(seedv);

  std::atomic<int> boom{3};
  std::atomic<std::size_t> handled{0};
  const EngineReport rep = engine.run(
      [&](unsigned, std::span<const U64> mine, std::span<const U64>,
          std::vector<U64>&) {
        if (boom.fetch_sub(1) > 0) throw std::runtime_error("user think fault");
        handled.fetch_add(mine.size());
      });
  EXPECT_GE(rep.think_faults, 1u);
  EXPECT_TRUE(engine.heap().empty());
  EXPECT_GE(handled.load(), seedv.size());
}

// --------------------------------------------------------- watchdog

TEST(Watchdog, LadderEscalatesOnFakeClock) {
  rb::PhaseWatchdog::Config cfg;
  cfg.stall_timeout_ns = 1000;
  cfg.dump_after_polls = 3;
  cfg.clock = &fake_clock;
  g_fake_now = 0;
  rb::PhaseWatchdog wd(cfg);
  const std::size_t ch = wd.add_channel("driver");

  wd.beat(ch);
  g_fake_now += 500;
  auto res = wd.poll();
  EXPECT_EQ(res.stalled, 0u);

  // Stall past the timeout: rung 1 counts every poll, rung 2 dumps once on
  // the third consecutive stalled poll.
  g_fake_now += 2000;
  EXPECT_EQ(wd.poll().stalled, 1u);
  EXPECT_FALSE(wd.poll().dumped);
  res = wd.poll();
  EXPECT_EQ(res.stalled, 1u);
  EXPECT_TRUE(res.dumped);
  EXPECT_FALSE(wd.poll().dumped);  // once per episode
  EXPECT_EQ(wd.stalls(), 4u);

  // A beat closes the episode; the next stall dumps again.
  wd.beat(ch);
  EXPECT_EQ(wd.poll().stalled, 0u);
  g_fake_now += 2000;
  wd.poll();
  wd.poll();
  EXPECT_TRUE(wd.poll().dumped);
}

TEST(Watchdog, PerChannelEpisodesAreIndependent) {
  rb::PhaseWatchdog::Config cfg;
  cfg.stall_timeout_ns = 1000;
  cfg.dump_after_polls = 2;
  cfg.clock = &fake_clock;
  g_fake_now = 0;
  rb::PhaseWatchdog wd(cfg);
  const std::size_t a = wd.add_channel("think-0");
  const std::size_t b = wd.add_channel("think-1");
  wd.beat(a);
  wd.beat(b);
  g_fake_now += 5000;
  wd.beat(b);  // only a is stalled
  EXPECT_EQ(wd.poll().stalled, 1u);
  wd.beat(a);
  wd.beat(b);
  EXPECT_EQ(wd.poll().stalled, 0u);
}

TEST(Watchdog, EngineRunBeatsAndReportsNoStallsWhenHealthy) {
  EngineConfig ecfg;
  ecfg.node_capacity = 8;
  ecfg.think_threads = 2;
  ecfg.batch = 8;
  ecfg.watchdog_stall_ns = 60ull * 1000 * 1000 * 1000;  // 60s: never trips
  ParallelHeapEngine<U64> engine(ecfg);
  std::vector<U64> seedv(300);
  for (std::size_t i = 0; i < seedv.size(); ++i) seedv[i] = static_cast<U64>(i);
  engine.seed(seedv);
  const EngineReport rep = engine.run(
      [](unsigned, std::span<const U64>, std::span<const U64>,
         std::vector<U64>&) {});
  EXPECT_TRUE(engine.heap().empty());
  EXPECT_EQ(rep.watchdog_stalls, 0u);
}

using WatchdogDeathTest = ::testing::Test;

TEST(WatchdogDeathTest, AbortRungKillsTheProcess) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        rb::PhaseWatchdog::Config cfg;
        cfg.stall_timeout_ns = 1000;
        cfg.dump_after_polls = 1;
        cfg.abort_on_stall = true;
        cfg.abort_after_polls = 2;
        cfg.clock = &fake_clock;
        g_fake_now = 0;
        rb::PhaseWatchdog wd(cfg);
        wd.add_channel("wedged");
        g_fake_now = 1u << 20;
        wd.poll();
        wd.poll();  // rung 3: dumps trace rings and aborts
      },
      "watchdog");
}

// ------------------------------------------------- assert flush hook

using AssertFlushDeathTest = ::testing::Test;

TEST(AssertFlushDeathTest, AssertFailureFlushesTelemetryBeforeAbort) {
  if (!telemetry::kEnabled) GTEST_SKIP() << "built with PH_TELEMETRY=OFF";
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        telemetry::count(telemetry::Counter::kCycles, 123);
        PH_ASSERT_MSG(false, "fault-test induced failure");
      },
      "telemetry at assertion failure");
}

// ------------------------------------------- barrier backoff liveness

TEST(BarrierBackoff, OversubscribedBarrierStaysLive) {
  // 8 threads on however few cores the runner has: the spin->yield->sleep
  // ladder must keep every round completing (a pure spin-wait here can
  // livelock a 1-core container for minutes). Regression for the backoff
  // satellite; the sched-fuzz CI lane perturbs the same crossings.
  constexpr unsigned kThreads = 8;
  constexpr int kRounds = 200;
  SenseBarrier bar(kThreads);
  std::atomic<std::uint64_t> sum{0};
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      bool sense = false;
      for (int r = 0; r < kRounds; ++r) {
        sum.fetch_add(t + 1, std::memory_order_relaxed);
        bar.arrive_and_wait(sense);
      }
    });
  }
  for (auto& th : ts) th.join();
  // Every thread contributed every round — no lost wakeups, no deadlock.
  EXPECT_EQ(sum.load(), static_cast<std::uint64_t>(kRounds) * kThreads *
                            (kThreads + 1) / 2);
}

// ------------------------------------------------- fault-matrix smoke

TEST(FaultMatrix, SmokeAllSitesFireAndRecover) {
  if (!rb::kFailpoints) GTEST_SKIP() << "built with PH_FAILPOINTS=OFF";
  DisarmGuard guard;
  rb::FaultMatrixConfig cfg;
  cfg.seed = 3;
  cfg.cycles = 120;  // small but enough for every site to fire
  const rb::FaultMatrixReport rep = rb::run_fault_matrix(cfg, nullptr);
  ASSERT_EQ(rep.rows.size(), rb::kNumFailSites);
  for (const auto& row : rep.rows) {
    EXPECT_TRUE(row.fired) << rb::fail_site_name(row.site) << " never fired";
    EXPECT_TRUE(row.ok) << rb::fail_site_name(row.site) << ": " << row.detail;
  }
  EXPECT_TRUE(rep.ok());
}

TEST(FaultMatrix, FaultyStructureIsDetectedByHarness) {
  if (!rb::kFailpoints) GTEST_SKIP() << "built with PH_FAILPOINTS=OFF";
  DisarmGuard guard;
  // The registry-backed replacement for the old ad-hoc InjectedFault enum:
  // "pipelined_heap_faulty" arms kSkipReservice {1,1,0} itself and must
  // still be caught by the differential harness (the CI must-fail proof).
  bool detected = false;
  for (std::uint64_t seed = 1; seed <= 6 && !detected; ++seed) {
    testing::GenConfig gen;
    gen.r = 2;
    gen.cycles = 300;
    gen.seed = seed;
    testing::OpTrace t = testing::generate_trace(gen);
    t.structure = "pipelined_heap_faulty";
    detected = testing::run_trace(t).failed;
  }
  EXPECT_TRUE(detected);
}

}  // namespace
}  // namespace ph
