// Unit tests for the sorted-run kernels that underlie all heap maintenance.
#include "core/sorted_ops.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "util/rng.hpp"

namespace ph {
namespace {

using Less = std::less<int>;

std::vector<int> random_sorted(Xoshiro256& rng, std::size_t n, int bound) {
  std::vector<int> v(n);
  for (auto& x : v) x = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(bound)));
  std::sort(v.begin(), v.end());
  return v;
}

TEST(SortedOps, IsSortedRun) {
  std::vector<int> empty;
  EXPECT_TRUE(is_sorted_run(std::span<const int>(empty), Less{}));
  std::vector<int> one{42};
  EXPECT_TRUE(is_sorted_run(std::span<const int>(one), Less{}));
  std::vector<int> asc{1, 2, 2, 3};
  EXPECT_TRUE(is_sorted_run(std::span<const int>(asc), Less{}));
  std::vector<int> desc{3, 2};
  EXPECT_FALSE(is_sorted_run(std::span<const int>(desc), Less{}));
}

TEST(SortedOps, Merge2Basic) {
  std::vector<int> a{1, 3, 5}, b{2, 4, 6}, out;
  merge2(std::span<const int>(a), std::span<const int>(b), out, Less{});
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5, 6}));
}

TEST(SortedOps, Merge2EmptySides) {
  std::vector<int> a{1, 2}, empty, out;
  merge2(std::span<const int>(a), std::span<const int>(empty), out, Less{});
  EXPECT_EQ(out, a);
  out.clear();
  merge2(std::span<const int>(empty), std::span<const int>(a), out, Less{});
  EXPECT_EQ(out, a);
  out.clear();
  merge2(std::span<const int>(empty), std::span<const int>(empty), out, Less{});
  EXPECT_TRUE(out.empty());
}

TEST(SortedOps, Merge2StabilityPrefersFirstRun) {
  // Equal keys: run `a`'s copies must precede run `b`'s. Verified via a
  // keyed struct.
  struct Tagged {
    int key;
    char tag;
  };
  auto cmp = [](const Tagged& x, const Tagged& y) { return x.key < y.key; };
  std::vector<Tagged> a{{1, 'a'}, {2, 'a'}}, b{{1, 'b'}, {2, 'b'}}, out;
  merge2(std::span<const Tagged>(a), std::span<const Tagged>(b), out, cmp);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].tag, 'a');
  EXPECT_EQ(out[1].tag, 'b');
  EXPECT_EQ(out[2].tag, 'a');
  EXPECT_EQ(out[3].tag, 'b');
}

TEST(SortedOps, Merge2Appends) {
  std::vector<int> a{5}, b{6}, out{0};
  merge2(std::span<const int>(a), std::span<const int>(b), out, Less{});
  EXPECT_EQ(out, (std::vector<int>{0, 5, 6}));
}

TEST(SortedOps, Merge2Randomized) {
  Xoshiro256 rng(7);
  for (int iter = 0; iter < 200; ++iter) {
    auto a = random_sorted(rng, rng.next_below(64), 100);
    auto b = random_sorted(rng, rng.next_below(64), 100);
    std::vector<int> out;
    merge2(std::span<const int>(a), std::span<const int>(b), out, Less{});
    std::vector<int> want = a;
    want.insert(want.end(), b.begin(), b.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(out, want);
  }
}

TEST(SortedOps, SelectSmallest3Basic) {
  std::vector<int> a{10, 20}, b{1, 30}, c{5, 6, 7}, out;
  const Take3 t = select_smallest3(std::span<const int>(a), std::span<const int>(b),
                                   std::span<const int>(c), 4, out, Less{});
  EXPECT_EQ(out, (std::vector<int>{1, 5, 6, 7}));
  EXPECT_EQ(t[0], 0u);
  EXPECT_EQ(t[1], 1u);
  EXPECT_EQ(t[2], 3u);
}

TEST(SortedOps, SelectSmallest3TakesWholeUnion) {
  std::vector<int> a{2}, b{1}, c{3}, out;
  const Take3 t = select_smallest3(std::span<const int>(a), std::span<const int>(b),
                                   std::span<const int>(c), 3, out, Less{});
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(t[0] + t[1] + t[2], 3u);
}

TEST(SortedOps, SelectSmallest3ZeroK) {
  std::vector<int> a{2}, b{1}, c{3}, out;
  const Take3 t = select_smallest3(std::span<const int>(a), std::span<const int>(b),
                                   std::span<const int>(c), 0, out, Less{});
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(t, (Take3{0, 0, 0}));
}

TEST(SortedOps, SelectSmallest3TieBreaksByRunOrder) {
  std::vector<int> a{5}, b{5}, c{5}, out;
  const Take3 t = select_smallest3(std::span<const int>(a), std::span<const int>(b),
                                   std::span<const int>(c), 2, out, Less{});
  // Ties resolve a-then-b-then-c.
  EXPECT_EQ(t, (Take3{1, 1, 0}));
}

TEST(SortedOps, SelectSmallest3Randomized) {
  Xoshiro256 rng(11);
  for (int iter = 0; iter < 200; ++iter) {
    auto a = random_sorted(rng, rng.next_below(32), 50);
    auto b = random_sorted(rng, rng.next_below(32), 50);
    auto c = random_sorted(rng, rng.next_below(32), 50);
    const std::size_t total = a.size() + b.size() + c.size();
    const std::size_t k = rng.next_below(total + 1);
    std::vector<int> out;
    const Take3 t = select_smallest3(std::span<const int>(a), std::span<const int>(b),
                                     std::span<const int>(c), k, out, Less{});
    ASSERT_EQ(out.size(), k);
    ASSERT_EQ(t[0] + t[1] + t[2], k);
    EXPECT_TRUE(is_sorted_run(std::span<const int>(out), Less{}));
    std::vector<int> want = a;
    want.insert(want.end(), b.begin(), b.end());
    want.insert(want.end(), c.begin(), c.end());
    std::sort(want.begin(), want.end());
    want.resize(k);
    EXPECT_EQ(out, want);
    // The taken counts must be prefixes whose union is the selection.
    EXPECT_LE(t[0], a.size());
    EXPECT_LE(t[1], b.size());
    EXPECT_LE(t[2], c.size());
  }
}

TEST(SortedOps, Merge2SplitBasic) {
  std::vector<int> a{1, 4, 9}, b{2, 3, 10}, kept, rest;
  merge2_split(std::span<const int>(a), std::span<const int>(b), 3, kept, rest, Less{});
  EXPECT_EQ(kept, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(rest, (std::vector<int>{4, 9, 10}));
}

TEST(SortedOps, Merge2SplitKeepAll) {
  std::vector<int> a{1}, b{2}, kept, rest;
  merge2_split(std::span<const int>(a), std::span<const int>(b), 2, kept, rest, Less{});
  EXPECT_EQ(kept, (std::vector<int>{1, 2}));
  EXPECT_TRUE(rest.empty());
}

TEST(SortedOps, Merge2SplitKeepNone) {
  std::vector<int> a{1}, b{2}, kept, rest;
  merge2_split(std::span<const int>(a), std::span<const int>(b), 0, kept, rest, Less{});
  EXPECT_TRUE(kept.empty());
  EXPECT_EQ(rest, (std::vector<int>{1, 2}));
}

TEST(SortedOps, Merge2SplitRandomized) {
  Xoshiro256 rng(13);
  for (int iter = 0; iter < 200; ++iter) {
    auto a = random_sorted(rng, rng.next_below(48), 64);
    auto b = random_sorted(rng, rng.next_below(48), 64);
    const std::size_t keep = rng.next_below(a.size() + b.size() + 1);
    std::vector<int> kept, rest;
    merge2_split(std::span<const int>(a), std::span<const int>(b), keep, kept, rest,
                 Less{});
    EXPECT_EQ(kept.size(), keep);
    EXPECT_EQ(kept.size() + rest.size(), a.size() + b.size());
    EXPECT_TRUE(is_sorted_run(std::span<const int>(kept), Less{}));
    EXPECT_TRUE(is_sorted_run(std::span<const int>(rest), Less{}));
    if (!kept.empty() && !rest.empty()) {
      EXPECT_LE(kept.back(), rest.front());
    }
  }
}

TEST(SortedOps, MergeKBasic) {
  std::vector<int> r1{1, 5}, r2{2, 6}, r3{0, 9}, out;
  std::vector<std::span<const int>> runs{std::span<const int>(r1),
                                         std::span<const int>(r2),
                                         std::span<const int>(r3)};
  merge_k(std::span<const std::span<const int>>(runs), out, Less{});
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 5, 6, 9}));
}

TEST(SortedOps, MergeKSingleAndEmptyRuns) {
  std::vector<int> r1{3, 4}, r2, out;
  std::vector<std::span<const int>> runs{std::span<const int>(r1),
                                         std::span<const int>(r2)};
  merge_k(std::span<const std::span<const int>>(runs), out, Less{});
  EXPECT_EQ(out, (std::vector<int>{3, 4}));
}

}  // namespace
}  // namespace ph
