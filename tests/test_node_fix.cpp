// Property tests for the node-repair kernels (node_fix.hpp) against a
// brute-force reference: the repaired parent must hold exactly the nv
// smallest of parent ∪ children, per-child counts must be preserved, the
// overall multiset must be conserved, and the residual-violation flags must
// be exact.
#include "core/node_fix.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/rng.hpp"

namespace ph {
namespace {

using Less = std::less<std::uint64_t>;
constexpr const std::uint64_t* kNoGrand = nullptr;

std::vector<std::uint64_t> sorted_random(Xoshiro256& rng, std::size_t n,
                                         std::uint64_t bound) {
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.next_below(bound);
  std::sort(v.begin(), v.end());
  return v;
}

TEST(FixNode, SimpleExchange) {
  std::vector<std::uint64_t> v{10, 20}, l{1, 30}, r{5, 40};
  FixScratch<std::uint64_t> s;
  const auto out = fix_node(std::span<std::uint64_t>(v), std::span<std::uint64_t>(l),
                            std::span<std::uint64_t>(r), kNoGrand, kNoGrand, s, Less{});
  // Smallest 2 of {10,20,1,30,5,40} = {1,5}.
  EXPECT_EQ(v, (std::vector<std::uint64_t>{1, 5}));
  EXPECT_EQ(out.taken_l + out.taken_r, 2u);
  // Children keep their counts; union conserved.
  std::vector<std::uint64_t> rest = l;
  rest.insert(rest.end(), r.begin(), r.end());
  std::sort(rest.begin(), rest.end());
  EXPECT_EQ(rest, (std::vector<std::uint64_t>{10, 20, 30, 40}));
}

TEST(FixNode, NoExchangeWhenOrdered) {
  std::vector<std::uint64_t> v{1, 2}, l{3, 4}, r{5, 6};
  FixScratch<std::uint64_t> s;
  const auto out = fix_node(std::span<std::uint64_t>(v), std::span<std::uint64_t>(l),
                            std::span<std::uint64_t>(r), kNoGrand, kNoGrand, s, Less{});
  EXPECT_EQ(out.taken_l, 0u);
  EXPECT_EQ(out.taken_r, 0u);
  EXPECT_EQ(v, (std::vector<std::uint64_t>{1, 2}));
}

TEST(FixNode, RandomizedAgainstBruteForce) {
  Xoshiro256 rng(71);
  FixScratch<std::uint64_t> s;
  for (int iter = 0; iter < 500; ++iter) {
    const std::size_t nv = 1 + rng.next_below(12);
    auto v = sorted_random(rng, nv, 100);
    auto l = sorted_random(rng, rng.next_below(13), 100);
    auto r = sorted_random(rng, rng.next_below(13), 100);
    if (l.empty() && r.empty()) continue;

    std::vector<std::uint64_t> all = v;
    all.insert(all.end(), l.begin(), l.end());
    all.insert(all.end(), r.begin(), r.end());
    std::sort(all.begin(), all.end());

    const std::size_t nl = l.size(), nr = r.size();
    const auto out =
        fix_node(std::span<std::uint64_t>(v), std::span<std::uint64_t>(l),
                 std::span<std::uint64_t>(r), kNoGrand, kNoGrand, s, Less{});

    // Parent: exactly the nv smallest of the union.
    EXPECT_TRUE(std::equal(v.begin(), v.end(), all.begin())) << "iter " << iter;
    // Counts preserved.
    EXPECT_EQ(l.size(), nl);
    EXPECT_EQ(r.size(), nr);
    EXPECT_LE(out.taken_l, nl);
    EXPECT_LE(out.taken_r, nr);
    // Sortedness.
    EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
    EXPECT_TRUE(std::is_sorted(l.begin(), l.end()));
    EXPECT_TRUE(std::is_sorted(r.begin(), r.end()));
    // Heap condition restored at this level.
    if (!l.empty()) {
      EXPECT_LE(v.back(), l.front());
    }
    if (!r.empty()) {
      EXPECT_LE(v.back(), r.front());
    }
    // Multiset conserved.
    std::vector<std::uint64_t> now = v;
    now.insert(now.end(), l.begin(), l.end());
    now.insert(now.end(), r.begin(), r.end());
    std::sort(now.begin(), now.end());
    EXPECT_EQ(now, all);
  }
}

TEST(FixNode, ViolationFlagsExact) {
  Xoshiro256 rng(73);
  FixScratch<std::uint64_t> s;
  for (int iter = 0; iter < 300; ++iter) {
    auto v = sorted_random(rng, 1 + rng.next_below(6), 50);
    auto l = sorted_random(rng, 1 + rng.next_below(6), 50);
    auto r = sorted_random(rng, 1 + rng.next_below(6), 50);
    const std::uint64_t gl = rng.next_below(50);
    const std::uint64_t gr = rng.next_below(50);
    const auto out = fix_node(std::span<std::uint64_t>(v), std::span<std::uint64_t>(l),
                              std::span<std::uint64_t>(r), &gl, &gr, s, Less{});
    if (out.taken_l > 0) {
      EXPECT_EQ(out.l_violates, gl < l.back()) << "iter " << iter;
    }
    if (out.taken_r > 0) {
      EXPECT_EQ(out.r_violates, gr < r.back()) << "iter " << iter;
    }
  }
}

TEST(FixNodeMulti, MatchesBinaryKernel) {
  // With d = 2 the multi kernel must produce the same parent content and
  // the same per-child multisets partitioning (same taken counts).
  Xoshiro256 rng(79);
  FixScratch<std::uint64_t> s1, s2;
  for (int iter = 0; iter < 300; ++iter) {
    auto v1 = sorted_random(rng, 1 + rng.next_below(8), 60);
    auto l1 = sorted_random(rng, rng.next_below(9), 60);
    auto r1 = sorted_random(rng, rng.next_below(9), 60);
    if (l1.empty() && r1.empty()) continue;
    auto v2 = v1;
    auto l2 = l1;
    auto r2 = r1;

    const auto out1 =
        fix_node(std::span<std::uint64_t>(v1), std::span<std::uint64_t>(l1),
                 std::span<std::uint64_t>(r1), kNoGrand, kNoGrand, s1, Less{});

    std::array<std::span<std::uint64_t>, 2> kids{std::span<std::uint64_t>(l2),
                                                 std::span<std::uint64_t>(r2)};
    std::array<const std::uint64_t*, 2> gms{nullptr, nullptr};
    std::array<std::size_t, 2> taken{};
    std::array<bool, 2> viol{};
    fix_node_multi(std::span<std::uint64_t>(v2),
                   std::span<std::span<std::uint64_t>>(kids),
                   std::span<const std::uint64_t* const>(gms.data(), 2),
                   std::span<std::size_t>(taken), std::span<bool>(viol), s2, Less{});

    EXPECT_EQ(v1, v2) << "iter " << iter;
    EXPECT_EQ(out1.taken_l, taken[0]);
    EXPECT_EQ(out1.taken_r, taken[1]);
  }
}

TEST(FixNodeMulti, FourChildrenBruteForce) {
  Xoshiro256 rng(83);
  FixScratch<std::uint64_t> s;
  for (int iter = 0; iter < 300; ++iter) {
    const std::size_t d = 2 + rng.next_below(5);  // 2..6 children
    const std::size_t nv = 1 + rng.next_below(8);
    auto v = sorted_random(rng, nv, 80);
    std::vector<std::vector<std::uint64_t>> kids(d);
    std::vector<std::uint64_t> all = v;
    bool any = false;
    for (auto& kid : kids) {
      kid = sorted_random(rng, rng.next_below(9), 80);
      any = any || !kid.empty();
      all.insert(all.end(), kid.begin(), kid.end());
    }
    if (!any) continue;
    std::sort(all.begin(), all.end());

    std::vector<std::span<std::uint64_t>> spans;
    for (auto& kid : kids) spans.emplace_back(kid);
    std::vector<const std::uint64_t*> gms(d, nullptr);
    std::vector<std::size_t> taken(d, 0);
    // std::vector<bool> cannot form a span<bool>; use a flat array.
    std::array<bool, 16> viol{};
    fix_node_multi(std::span<std::uint64_t>(v),
                   std::span<std::span<std::uint64_t>>(spans),
                   std::span<const std::uint64_t* const>(gms.data(), d),
                   std::span<std::size_t>(taken.data(), d),
                   std::span<bool>(viol.data(), d), s, Less{});

    EXPECT_TRUE(std::equal(v.begin(), v.end(), all.begin())) << "iter " << iter;
    std::vector<std::uint64_t> now = v;
    for (std::size_t c = 0; c < d; ++c) {
      EXPECT_TRUE(std::is_sorted(kids[c].begin(), kids[c].end()));
      if (!kids[c].empty()) {
        EXPECT_LE(v.back(), kids[c].front());
      }
      now.insert(now.end(), kids[c].begin(), kids[c].end());
    }
    std::sort(now.begin(), now.end());
    EXPECT_EQ(now, all);
  }
}

}  // namespace
}  // namespace ph
