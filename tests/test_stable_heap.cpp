// Tests for the payload-indirection heap: address stability across heavy
// reorganization, pool recycling, and ordering equivalence with the plain
// pipelined heap.
#include "core/stable_heap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace ph {
namespace {

struct Msg {
  std::uint64_t id;
  Msg* parent;  // the lineage's use case: messages pointing at relatives
};

using Heap = StableParallelHeap<std::uint64_t, Msg>;

TEST(SlabPool, AllocateReleaseRecycles) {
  SlabPool<int> pool(4);
  int* a = pool.allocate(1);
  int* b = pool.allocate(2);
  EXPECT_EQ(*a, 1);
  EXPECT_EQ(*b, 2);
  EXPECT_EQ(pool.live(), 2u);
  pool.release(a);
  EXPECT_EQ(pool.live(), 1u);
  int* c = pool.allocate(3);
  EXPECT_EQ(c, a);  // LIFO recycling reuses the freed slot
  EXPECT_EQ(*c, 3);
}

TEST(SlabPool, GrowsWithoutRelocating) {
  SlabPool<std::uint64_t> pool(2);
  std::vector<std::uint64_t*> ptrs;
  for (std::uint64_t i = 0; i < 100; ++i) ptrs.push_back(pool.allocate(i));
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(*ptrs[i], i);
  EXPECT_GE(pool.capacity(), 100u);
  for (auto* p : ptrs) pool.release(p);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(SlabPool, NonDefaultConstructiblePayload) {
  struct NoDefault {
    explicit NoDefault(std::string v) : s(std::move(v)) {}
    std::string s;
  };
  SlabPool<NoDefault> pool(2);
  NoDefault* p = pool.allocate("hello");
  EXPECT_EQ(p->s, "hello");
  pool.release(p);
}

TEST(StableHeap, PayloadAddressesSurviveReorganization) {
  Heap heap(8);
  Xoshiro256 rng(5);
  std::vector<std::pair<Msg*, std::uint64_t>> live;
  for (std::uint64_t i = 0; i < 500; ++i) {
    Msg* m = heap.emplace(rng.next_below(1u << 20), Msg{i, nullptr});
    live.emplace_back(m, i);
  }
  // Heavy churn: cycles that delete and re-insert under new keys.
  std::vector<Heap::Entry> out, fresh;
  for (int c = 0; c < 100; ++c) {
    out.clear();
    heap.cycle(fresh, 8, out);
    fresh.clear();
    for (const auto& e : out) {
      fresh.push_back({e.key + 1000, e.payload});
    }
  }
  std::vector<Heap::Entry> sink;
  heap.cycle(fresh, 0, sink);
  // Every payload pointer still reads back its original id.
  for (const auto& [p, id] : live) EXPECT_EQ(p->id, id);
  EXPECT_EQ(heap.size(), 500u);
  EXPECT_EQ(heap.pool_live(), 500u);
}

TEST(StableHeap, DeletionOrderMatchesKeys) {
  Heap heap(16);
  Xoshiro256 rng(9);
  std::vector<std::uint64_t> keys(300);
  for (auto& k : keys) k = rng.next_below(1u << 16);
  for (auto k : keys) heap.emplace(k, Msg{k, nullptr});

  std::vector<Heap::Entry> out;
  std::vector<std::uint64_t> got;
  while (heap.size() > 0) {
    out.clear();
    heap.cycle({}, 16, out);
    for (const auto& e : out) {
      EXPECT_EQ(e.payload->id, e.key);  // entries stay bound to payloads
      got.push_back(e.key);
      heap.release(e.payload);
    }
  }
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(got, keys);
  EXPECT_EQ(heap.pool_live(), 0u);
}

TEST(StableHeap, ParentPointersRemainValidAfterChildDeleted) {
  // The lineage keeps executed messages allocated so parents can void
  // children: deleting an entry must not free the payload until release().
  Heap heap(4);
  Msg* parent = heap.emplace(10, Msg{1, nullptr});
  Msg* child = heap.emplace(20, Msg{2, parent});
  std::vector<Heap::Entry> out;
  heap.cycle({}, 2, out);  // both entries leave the heap
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(child->parent, parent);
  EXPECT_EQ(parent->id, 1u);
  heap.release(parent);
  heap.release(child);
}

TEST(StableHeap, ReinsertKeepsSamePayload) {
  Heap heap(4);
  Msg* m = heap.emplace(50, Msg{7, nullptr});
  std::vector<Heap::Entry> out;
  heap.cycle({}, 1, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].payload, m);
  heap.reinsert(5, m);  // back in with a smaller key
  out.clear();
  heap.cycle({}, 1, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].key, 5u);
  EXPECT_EQ(out[0].payload, m);
  heap.release(m);
}

TEST(StableHeap, UnderlyingHeapInvariantsHold) {
  Heap heap(8);
  Xoshiro256 rng(11);
  for (int i = 0; i < 200; ++i) {
    heap.emplace(rng.next_below(1000), Msg{static_cast<std::uint64_t>(i), nullptr});
  }
  std::string why;
  EXPECT_TRUE(heap.heap().check_invariants(&why)) << why;
}

}  // namespace
}  // namespace ph
