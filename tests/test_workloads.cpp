// Tests for the workload generators: distribution sanity, fixed-point
// conversion, the grain spinner, and hold-model drivers across structures.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "baselines/binary_heap.hpp"
#include "baselines/pairing_heap.hpp"
#include "baselines/pq_concepts.hpp"
#include "core/parallel_heap.hpp"
#include "core/pipelined_heap.hpp"
#include "util/rng.hpp"
#include "workloads/distributions.hpp"
#include "workloads/grain.hpp"
#include "workloads/hold_model.hpp"

namespace ph {
namespace {

class DistTest : public ::testing::TestWithParam<Dist> {};

TEST_P(DistTest, IncrementsPositiveAndBoundedMean) {
  Xoshiro256 rng(1);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double d = draw_increment(rng, GetParam());
    ASSERT_GT(d, 0.0);
    ASSERT_LT(d, 50.0);
    sum += d;
  }
  const double mean = sum / kN;
  EXPECT_GT(mean, 0.05);
  EXPECT_LT(mean, 6.0);
}

INSTANTIATE_TEST_SUITE_P(AllDists, DistTest,
                         ::testing::Values(Dist::kExponential, Dist::kUniform,
                                           Dist::kBimodal, Dist::kTriangular,
                                           Dist::kCamel),
                         [](const ::testing::TestParamInfo<Dist>& info) {
                           return dist_name(info.param);
                         });

TEST(Distributions, NamesAreDistinct) {
  EXPECT_STREQ(dist_name(Dist::kExponential), "exponential");
  EXPECT_STREQ(dist_name(Dist::kCamel), "camel");
}

TEST(Distributions, FixedPointRoundTrip) {
  for (double t : {0.0, 0.5, 1.0, 123.456, 100000.25}) {
    EXPECT_NEAR(from_fixed(to_fixed(t)), t, 1e-5);
  }
  EXPECT_EQ(to_fixed(0.0), 0u);
  EXPECT_LT(to_fixed(1.0), to_fixed(1.0000011));
}

TEST(Grain, SpinWorkDependsOnItersAndSeed) {
  EXPECT_NE(spin_work(10, 1), spin_work(11, 1));
  EXPECT_NE(spin_work(10, 1), spin_work(10, 2));
  EXPECT_EQ(spin_work(10, 1), spin_work(10, 1));
}

TEST(HoldModel, InitialContentSizedAndSeeded) {
  HoldConfig cfg;
  cfg.n = 100;
  const auto a = hold_initial(cfg);
  const auto b = hold_initial(cfg);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(a, b);
}

TEST(HoldModel, BatchHoldPreservesSizeOnParallelHeap) {
  HoldConfig cfg;
  cfg.n = 512;
  cfg.ops = 4096;
  ParallelHeap<std::uint64_t> q(64);
  q.build(hold_initial(cfg));
  const HoldResult res = batch_hold(q, cfg, 64);
  EXPECT_GE(res.ops, cfg.ops);
  EXPECT_EQ(q.size(), cfg.n);
}

TEST(HoldModel, BatchHoldOnPipelinedHeap) {
  HoldConfig cfg;
  cfg.n = 512;
  cfg.ops = 4096;
  PipelinedParallelHeap<std::uint64_t> q(64);
  q.build(hold_initial(cfg));
  const HoldResult res = batch_hold(q, cfg, 64);
  EXPECT_GE(res.ops, cfg.ops);
  EXPECT_EQ(q.size(), cfg.n);
}

TEST(HoldModel, BatchHoldMatchesAcrossStructures) {
  // Identical seeds → identical op counts and (with grain) identical sinks,
  // because every structure sees the same priorities.
  HoldConfig cfg;
  cfg.n = 256;
  cfg.ops = 2048;
  cfg.grain = 8;
  ParallelHeap<std::uint64_t> a(32);
  a.build(hold_initial(cfg));
  BatchAdapter<BinaryHeap<std::uint64_t>, std::uint64_t> b;
  b.insert_batch(hold_initial(cfg));
  const HoldResult ra = batch_hold(a, cfg, 32);
  const HoldResult rb = batch_hold(b, cfg, 32);
  EXPECT_EQ(ra.ops, rb.ops);
  EXPECT_EQ(ra.sink, rb.sink);
}

TEST(HoldModel, BatchHoldPerformsExactlyConfiguredOps) {
  // Regression: when cfg.ops is not a multiple of the batch size, the final
  // cycle used to run (and count) a full batch, overshooting by up to
  // batch-1 ops and skewing per-op throughput across batch sizes.
  HoldConfig cfg;
  cfg.n = 512;
  cfg.ops = 1000;  // 1000 = 15*64 + 40: the last cycle must truncate to 40
  cfg.grain = 4;
  BatchAdapter<BinaryHeap<std::uint64_t>, std::uint64_t> q;
  q.insert_batch(hold_initial(cfg));
  const HoldResult res = batch_hold(q, cfg, 64);
  EXPECT_EQ(res.ops, cfg.ops);
  EXPECT_EQ(q.size(), cfg.n);

  // Equal op counts even when the batch sizes divide cfg.ops differently.
  BatchAdapter<BinaryHeap<std::uint64_t>, std::uint64_t> p;
  p.insert_batch(hold_initial(cfg));
  const HoldResult res48 = batch_hold(p, cfg, 48);
  EXPECT_EQ(res48.ops, cfg.ops);
}

TEST(HoldModel, ScalarHoldRunsOnPairingHeap) {
  HoldConfig cfg;
  cfg.n = 256;
  cfg.ops = 2048;
  PairingHeap<std::uint64_t> q;
  for (auto v : hold_initial(cfg)) q.push(v);
  const HoldResult res = scalar_hold(q, cfg);
  EXPECT_EQ(res.ops, cfg.ops);
  EXPECT_EQ(q.size(), cfg.n);
}

TEST(HoldModel, GrainChangesSink) {
  HoldConfig cfg;
  cfg.n = 64;
  cfg.ops = 256;
  cfg.grain = 16;
  BatchAdapter<BinaryHeap<std::uint64_t>, std::uint64_t> q;
  q.insert_batch(hold_initial(cfg));
  const HoldResult res = batch_hold(q, cfg, 16);
  EXPECT_NE(res.sink, 0u);
}

}  // namespace
}  // namespace ph
