// Shard supervisor tests (src/dist/): protocol and transport plumbing, the
// distributed cycle's bit-exactness against the sorted-multiset oracle over
// both carriers (in-process loopback and real forked child processes), and
// the failure drills the subsystem exists for — SIGKILL one shard mid-run,
// drop its heartbeats, or eat its frames, and the run must complete
// bit-exact against a fault-free single-process reference while the
// surviving shards keep cycling. Everything is seeded and deterministic.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "dist/protocol.hpp"
#include "dist/shard_server.hpp"
#include "dist/supervisor.hpp"
#include "dist/transport.hpp"
#include "persist/format.hpp"
#include "robustness/failpoint.hpp"
#include "robustness/watchdog.hpp"
#include "sim/dist_sim.hpp"
#include "sim/network.hpp"
#include "sim/serial_sim.hpp"
#include "testing/oracle.hpp"
#include "util/rng.hpp"

namespace ph {
namespace {

using U64 = std::uint64_t;
namespace ps = ph::persist;
namespace rb = ph::robustness;
namespace fs = std::filesystem;
using Sup = dist::ShardSupervisor<U64>;

struct TempDir {
  std::string path;
  explicit TempDir(const char* tag = "ph-test-dist")
      : path(ps::make_temp_dir(tag)) {}
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

struct DisarmGuard {
  ~DisarmGuard() { rb::disarm_all(); }
};

Sup::Config base_config(const std::string& dir, std::size_t shards,
                        bool use_processes) {
  Sup::Config cfg;
  cfg.shards = shards;
  cfg.node_capacity = 8;
  cfg.dir = dir;
  cfg.fsync = ps::FsyncPolicy::kNever;
  cfg.checkpoint_interval = 8;
  cfg.use_processes = use_processes;
  return cfg;
}

/// Deterministic op i (1-based) as a pure function of (seed, i).
struct Op {
  std::vector<U64> fresh;
  std::size_t k = 0;
};

Op gen_op(std::uint64_t seed, std::size_t i) {
  SplitMix64 rng(seed * 0x9e3779b97f4a7c15ull + i);
  Op op;
  const std::size_t n = rng.next() % 13;
  for (std::size_t j = 0; j < n; ++j) op.fresh.push_back(rng.next() % 5000);
  if (i % 3 != 0) op.k = rng.next() % 11;
  return op;
}

/// Drives `sup` and a sorted oracle through the same seeded op stream,
/// requiring bit-exact agreement at every cycle, then drains both dry.
/// `hook(i)` runs before op i — the fault-injection seam.
template <typename Hook>
void run_exact(Sup& sup, std::uint64_t seed, std::size_t ops, Hook hook) {
  testing::SortedOracle oracle;
  std::vector<U64> got, want;
  for (std::size_t i = 1; i <= ops; ++i) {
    hook(i);
    const Op op = gen_op(seed, i);
    got.clear();
    want.clear();
    sup.cycle(std::span<const U64>(op.fresh), op.k, got);
    oracle.cycle(std::span<const U64>(op.fresh), op.k, want);
    ASSERT_EQ(got, want) << "diverged at op " << i;
  }
  for (int guard = 0; guard < 1 << 14; ++guard) {
    got.clear();
    want.clear();
    const std::size_t ng = sup.cycle({}, 16, got);
    const std::size_t nw = oracle.cycle({}, 16, want);
    ASSERT_EQ(got, want) << "diverged during drain";
    if (ng == 0 && nw == 0) break;
  }
  EXPECT_TRUE(sup.empty());
  std::string why;
  EXPECT_TRUE(sup.check_invariants(&why)) << why;
}

void run_exact(Sup& sup, std::uint64_t seed, std::size_t ops) {
  run_exact(sup, seed, ops, [](std::size_t) {});
}

// ------------------------------------------------------------------ protocol

TEST(DistProtocol, EncodeDecodeRoundTrip) {
  dist::Msg<U64> m{dist::MsgType::kInsert, 41, 7, 3, {10, 20, 30}};
  std::vector<std::uint8_t> buf;
  dist::encode_msg(m, buf);
  dist::Msg<U64> out;
  ASSERT_TRUE(dist::decode_msg(buf, out));
  EXPECT_EQ(out.type, dist::MsgType::kInsert);
  EXPECT_EQ(out.a, 41u);
  EXPECT_EQ(out.b, 7u);
  EXPECT_EQ(out.c, 3u);
  EXPECT_EQ(out.items, (std::vector<U64>{10, 20, 30}));
}

TEST(DistProtocol, StrictDecodeRejectsDamage) {
  dist::Msg<U64> m{dist::MsgType::kPeekReply, 1, 2, 3, {4, 5}};
  std::vector<std::uint8_t> buf;
  dist::encode_msg(m, buf);
  dist::Msg<U64> out;

  std::vector<std::uint8_t> truncated(buf.begin(), buf.end() - 3);
  EXPECT_FALSE(dist::decode_msg(truncated, out));

  std::vector<std::uint8_t> trailing = buf;
  trailing.push_back(0);
  EXPECT_FALSE(dist::decode_msg(trailing, out));

  std::vector<std::uint8_t> bad_type = buf;
  bad_type[0] = 0;  // below kInsert
  EXPECT_FALSE(dist::decode_msg(bad_type, out));
  bad_type[0] = 200;  // above kError
  EXPECT_FALSE(dist::decode_msg(bad_type, out));

  EXPECT_FALSE(dist::decode_msg(std::span<const std::uint8_t>{}, out));
}

// ----------------------------------------------------------------- transport

TEST(DistTransport, SocketPairFrameRoundTrip) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  dist::SocketTransport a(fds[0]);
  dist::SocketTransport b(fds[1]);
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  ASSERT_TRUE(a.send_frame(payload));
  std::vector<std::uint8_t> got;
  ASSERT_EQ(b.recv_frame(got, 1000), dist::RecvStatus::kOk);
  EXPECT_EQ(got, payload);
  // Deadline with nothing in flight.
  EXPECT_EQ(b.recv_frame(got, 0), dist::RecvStatus::kTimeout);
  // Peer closes: EOF is kClosed, and sends start failing.
  a.close();
  EXPECT_EQ(b.recv_frame(got, 100), dist::RecvStatus::kClosed);
  EXPECT_FALSE(b.send_frame(payload));
}

TEST(DistTransport, CorruptFrameIsClosedNotMisparsed) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  dist::SocketTransport b(fds[1]);
  // Hand-build a frame with a wrong CRC.
  std::vector<std::uint8_t> wire;
  const std::vector<std::uint8_t> payload = {9, 9, 9};
  ps::append_frame(wire, payload);
  wire[4] ^= 0xff;  // flip a CRC byte
  ASSERT_EQ(::send(fds[0], wire.data(), wire.size(), 0),
            static_cast<::ssize_t>(wire.size()));
  std::vector<std::uint8_t> got;
  EXPECT_EQ(b.recv_frame(got, 1000), dist::RecvStatus::kClosed);
  ::close(fds[0]);
}

// ------------------------------------------------------- fault-free exactness

TEST(DistSupervisor, LoopbackMatchesOracle) {
  TempDir dir;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    Sup sup(base_config(dir.path + "/k" + std::to_string(shards), shards,
                        /*use_processes=*/false));
    run_exact(sup, 100 + shards, 120);
    EXPECT_EQ(sup.stats().takeovers, 0u);
  }
}

TEST(DistSupervisor, ProcessBackendsMatchOracle) {
  TempDir dir;
  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    Sup sup(base_config(dir.path + "/k" + std::to_string(shards), shards,
                        /*use_processes=*/true));
    for (std::size_t s = 0; s < shards; ++s) {
      EXPECT_EQ(sup.backend_state(s), Sup::BackendState::kProcess);
      EXPECT_GT(sup.shard_pid(s), 0);
    }
    run_exact(sup, 200 + shards, 90);
    EXPECT_EQ(sup.stats().deaths, 0u);
  }
}

// ------------------------------------------------------------- failure drills

TEST(DistSupervisor, KillLoopbackShardRecoversExactly) {
  TempDir dir;
  Sup sup(base_config(dir.path, 2, /*use_processes=*/false));
  run_exact(sup, 7, 120, [&](std::size_t i) {
    if (i == 40) sup.kill_shard(0);
    if (i == 80) sup.kill_shard(1);
  });
  EXPECT_EQ(sup.stats().kills, 2u);
  EXPECT_GE(sup.stats().takeovers, 2u);
}

TEST(DistSupervisor, SigkillChildMidRunRecoversExactly) {
  TempDir dir;
  Sup sup(base_config(dir.path, 2, /*use_processes=*/true));
  run_exact(sup, 11, 120, [&](std::size_t i) {
    if (i == 50) sup.kill_shard(1);
  });
  EXPECT_GE(sup.stats().deaths, 1u);
  EXPECT_GE(sup.stats().takeovers, 1u);
  EXPECT_GE(sup.stats().degraded_cycles, 1u);
  // The shard must be re-admitted to a fresh child process. Respawn timing
  // rides the real clock (backoff then a successful fork), so pump poll()
  // with a bounded budget instead of asserting an instant.
  for (int spin = 0; spin < 2000 && (sup.stats().respawns < 1 ||
                                     sup.backend_state(1) !=
                                         Sup::BackendState::kProcess);
       ++spin) {
    sup.poll();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(sup.stats().respawns, 1u);
  EXPECT_EQ(sup.backend_state(1), Sup::BackendState::kProcess);
  EXPECT_GT(sup.shard_pid(1), 0);
}

TEST(DistSupervisor, SigkillBothChildrenSequentiallyStillExact) {
  TempDir dir;
  Sup sup(base_config(dir.path, 4, /*use_processes=*/true));
  run_exact(sup, 13, 100, [&](std::size_t i) {
    if (i == 30) sup.kill_shard(0);
    if (i == 60) sup.kill_shard(2);
  });
  EXPECT_GE(sup.stats().deaths, 2u);
  EXPECT_GE(sup.stats().respawns, 2u);
}

std::atomic<std::uint64_t> g_fake_now{0};
std::uint64_t fake_clock() { return g_fake_now.load(std::memory_order_relaxed); }

TEST(DistSupervisor, DroppedHeartbeatsEscalateThroughWatchdog) {
  const DisarmGuard guard;
  TempDir dir;
  g_fake_now.store(0);
  Sup::Config cfg = base_config(dir.path, 2, /*use_processes=*/false);
  cfg.clock = &fake_clock;
  Sup sup(std::move(cfg));

  rb::PhaseWatchdog::Config wcfg;
  wcfg.stall_timeout_ns = 50'000'000;
  wcfg.dump_after_polls = 1u << 30;  // verdicts, not report dumps
  wcfg.clock = &fake_clock;
  rb::PhaseWatchdog wd(wcfg);
  sup.attach_watchdog(wd, /*polls_to_failover=*/2);

  // Every beat vanishes for a while; request traffic keeps flowing, so the
  // ONLY detection path is the watchdog channel.
  rb::arm(rb::FailSite::kHeartbeatDrop,
          rb::FireSpec{/*nth=*/1, /*period=*/1, /*max_fires=*/30, /*stall_us=*/0});
  run_exact(sup, 17, 100, [&](std::size_t) {
    g_fake_now.fetch_add(100'000'000);  // one quiet tick exceeds the timeout
    wd.poll();
  });
  EXPECT_GT(sup.stats().stall_verdicts, 0u);
  EXPECT_GT(sup.stats().takeovers, 0u);
  EXPECT_GT(rb::stats(rb::FailSite::kHeartbeatDrop).fires, 0u);
}

TEST(DistSupervisor, InjectedTransportFaultsAreAbsorbed) {
  const DisarmGuard guard;
  TempDir dir;
  Sup sup(base_config(dir.path, 2, /*use_processes=*/false));
  rb::arm(rb::FailSite::kTransportSend,
          rb::FireSpec{/*nth=*/5, /*period=*/19, /*max_fires=*/8, /*stall_us=*/0});
  run_exact(sup, 19, 120);
  EXPECT_GT(sup.stats().transport_faults, 0u);
  EXPECT_GT(sup.stats().takeovers, 0u);
  EXPECT_GT(rb::stats(rb::FailSite::kTransportSend).recoveries, 0u);
}

TEST(DistSupervisor, SpawnFaultsBackOffThenReadmit) {
  const DisarmGuard guard;
  TempDir dir;
  g_fake_now.store(0);
  Sup::Config cfg = base_config(dir.path, 2, /*use_processes=*/false);
  cfg.clock = &fake_clock;
  // Both initial spawns fail: the supervisor must come up anyway (both
  // shards taken over), then re-admit once the site exhausts its fires.
  rb::arm(rb::FailSite::kShardSpawn,
          rb::FireSpec{/*nth=*/1, /*period=*/1, /*max_fires=*/3, /*stall_us=*/0});
  Sup sup(std::move(cfg));
  EXPECT_EQ(sup.backend_state(0), Sup::BackendState::kTakenOver);
  EXPECT_EQ(sup.backend_state(1), Sup::BackendState::kTakenOver);
  run_exact(sup, 23, 80, [&](std::size_t) {
    g_fake_now.fetch_add(10'000'000);  // march past the backoff deadlines
  });
  EXPECT_GT(sup.stats().spawn_retries, 0u);
  EXPECT_GT(sup.stats().respawns, 0u);
  EXPECT_NE(sup.backend_state(0), Sup::BackendState::kTakenOver);
  EXPECT_NE(sup.backend_state(1), Sup::BackendState::kTakenOver);
}

TEST(DistSupervisor, ChildFaultCrashesChildAndSupervisorRecovers) {
  TempDir dir;
  Sup::Config cfg = base_config(dir.path, 2, /*use_processes=*/true);
  // The child's own fail point kills it from the inside mid-conversation —
  // a different death than SIGKILL (exit 40 after an InjectedFailure).
  cfg.child_faults.push_back(
      {rb::FailSite::kTransportRecv,
       rb::FireSpec{/*nth=*/25, /*period=*/0, /*max_fires=*/1, /*stall_us=*/0}});
  Sup sup(std::move(cfg));
  run_exact(sup, 29, 100);
  EXPECT_GE(sup.stats().takeovers, 1u);
}

// --------------------------------------------------------------- DES consumer

TEST(DistSim, FaultFreeMatchesSerialReference) {
  TempDir dir;
  const sim::Topology t = sim::make_torus(6, 6);
  sim::ModelConfig mc;
  mc.seed = 5;
  const sim::Model m(t, mc);
  const sim::SimResult want = sim::run_serial_sim(m, 20.0);

  sim::DistSimConfig cfg;
  cfg.shards = 2;
  cfg.dir = dir.path;
  cfg.use_processes = true;
  const sim::DistSimResult got = sim::run_dist_sim(m, 20.0, cfg);
  EXPECT_TRUE(got.sim.same_outcome(want))
      << "processed " << got.sim.processed << " vs " << want.processed;
  EXPECT_EQ(got.sup.deaths, 0u);
}

TEST(DistSim, SigkillOneShardMidSimulationIsBitExact) {
  TempDir dir;
  const sim::Topology t = sim::make_torus(6, 6);
  sim::ModelConfig mc;
  mc.seed = 6;
  const sim::Model m(t, mc);
  const sim::SimResult want = sim::run_serial_sim(m, 20.0);

  sim::DistSimConfig cfg;
  cfg.shards = 2;
  cfg.dir = dir.path;
  cfg.use_processes = true;
  cfg.kill_at_cycle = 25;
  cfg.kill_shard = 0;
  const sim::DistSimResult got = sim::run_dist_sim(m, 20.0, cfg);
  EXPECT_TRUE(got.sim.same_outcome(want))
      << "processed " << got.sim.processed << " vs " << want.processed;
  EXPECT_GE(got.sup.kills, 1u);
  EXPECT_GE(got.sup.takeovers, 1u);
}

// ----------------------------------------------------- durability across runs

TEST(DistSupervisor, StateSurvivesSupervisorRestart) {
  TempDir dir;
  std::vector<U64> got;
  {
    Sup sup(base_config(dir.path, 2, /*use_processes=*/false));
    std::vector<U64> items;
    for (U64 v = 0; v < 64; ++v) items.push_back((v * 37) % 101);
    sup.build(std::span<const U64>(items));
    sup.checkpoint_all();
  }
  // A brand-new supervisor over the same directories must see the exact
  // multiset: per-shard recovery is the only carrier of state between runs.
  Sup sup(base_config(dir.path, 2, /*use_processes=*/false));
  EXPECT_EQ(sup.size(), 64u);
  std::vector<U64> want;
  for (U64 v = 0; v < 64; ++v) want.push_back((v * 37) % 101);
  std::sort(want.begin(), want.end());
  for (int guard = 0; guard < 64 && got.size() < 64; ++guard) {
    sup.cycle({}, 8, got);
  }
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace ph
