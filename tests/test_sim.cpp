// Tests for the DES substrate: topology generation, the deterministic model,
// and — most importantly — differential validation of every parallel
// scheduler against the serial reference simulator (identical processed
// counts and order-insensitive fingerprints).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "baselines/binary_heap.hpp"
#include "baselines/locked_pq.hpp"
#include "baselines/pq_concepts.hpp"
#include "core/parallel_heap.hpp"
#include "core/pipelined_heap.hpp"
#include "sim/engine_sim.hpp"
#include "sim/local_sim.hpp"
#include "sim/model.hpp"
#include "sim/network.hpp"
#include "sim/serial_sim.hpp"
#include "sim/sync_sim.hpp"

namespace ph::sim {
namespace {

TEST(Topology, TorusShape) {
  const Topology t = make_torus(3, 4);
  EXPECT_EQ(t.num_lps, 12u);
  EXPECT_EQ(t.out_degree, 2u);
  // LP (0,0)=0 sends right to (0,1)=1 and up to (1,0)=4.
  EXPECT_EQ(t.out(0)[0], 1u);
  EXPECT_EQ(t.out(0)[1], 4u);
  // Wrap-around: LP (2,3)=11 sends right to (2,0)=8 and up to (0,3)=3.
  EXPECT_EQ(t.out(11)[0], 8u);
  EXPECT_EQ(t.out(11)[1], 3u);
}

TEST(Topology, TorusEveryLpHasTwoInEdges) {
  const Topology t = make_torus(8, 8);
  std::vector<int> indeg(t.num_lps, 0);
  for (std::size_t lp = 0; lp < t.num_lps; ++lp) {
    for (auto d : t.out(lp)) ++indeg[d];
  }
  for (int d : indeg) EXPECT_EQ(d, 2);
}

TEST(Topology, RandomNetworkValid) {
  const Topology t = make_random_network(100, 4, 7);
  EXPECT_EQ(t.num_lps, 100u);
  EXPECT_EQ(t.out_degree, 4u);
  for (std::size_t lp = 0; lp < t.num_lps; ++lp) {
    for (auto d : t.out(lp)) {
      EXPECT_LT(d, 100u);
      EXPECT_NE(d, lp);  // no self-loops
    }
  }
}

TEST(Topology, RandomNetworkDeterministicInSeed) {
  const Topology a = make_random_network(50, 2, 9);
  const Topology b = make_random_network(50, 2, 9);
  const Topology c = make_random_network(50, 2, 10);
  EXPECT_EQ(a.out_edges, b.out_edges);
  EXPECT_NE(a.out_edges, c.out_edges);
}

ModelConfig small_model_cfg(std::uint64_t seed = 3) {
  ModelConfig mc;
  mc.seed = seed;
  mc.min_service = 0.05;
  mc.max_service = 5.0;
  mc.hot_fraction = 0.1;
  return mc;
}

TEST(Model, ServiceTimesInRangeAndHotFractionRoughlyRight) {
  const Topology t = make_torus(32, 32);
  const Model m(t, small_model_cfg());
  int hot = 0;
  for (std::uint32_t lp = 0; lp < t.num_lps; ++lp) {
    const double s = m.service_of(lp);
    EXPECT_GE(s, m.config().min_service);
    EXPECT_LE(s, m.config().max_service);
    if (s == m.config().min_service) ++hot;
  }
  EXPECT_GT(hot, 50);   // ~102 expected of 1024
  EXPECT_LT(hot, 160);
  EXPECT_DOUBLE_EQ(m.lookahead(), 0.05);
}

TEST(Model, HandleIsPureAndAdvancesTime) {
  const Topology t = make_torus(4, 4);
  const Model m(t, small_model_cfg());
  const Event e{1.5, 3, 0, 12345};
  const Event c1 = m.handle(e);
  const Event c2 = m.handle(e);
  EXPECT_EQ(c1.ts, c2.ts);
  EXPECT_EQ(c1.lp, c2.lp);
  EXPECT_EQ(c1.tag, c2.tag);
  EXPECT_GE(c1.ts, e.ts + m.lookahead());
  EXPECT_EQ(c1.hop, 1u);
  // Destination is one of e.lp's out-neighbours.
  const auto out = t.out(e.lp);
  EXPECT_TRUE(c1.lp == out[0] || c1.lp == out[1]);
}

TEST(Model, InitialEventsOnePerLpBeforeOneService) {
  const Topology t = make_torus(4, 4);
  const Model m(t, small_model_cfg());
  const auto init = m.initial_events();
  ASSERT_EQ(init.size(), 16u);
  std::set<std::uint32_t> lps;
  for (const Event& e : init) {
    lps.insert(e.lp);
    EXPECT_LT(e.ts, m.config().max_service);
  }
  EXPECT_EQ(lps.size(), 16u);
}

TEST(SerialSim, DeterministicAndProgresses) {
  const Topology t = make_torus(8, 8);
  const Model m(t, small_model_cfg());
  const SimResult a = run_serial_sim(m, 50.0);
  const SimResult b = run_serial_sim(m, 50.0);
  EXPECT_GT(a.processed, t.num_lps);  // many generations fit in the horizon
  EXPECT_TRUE(a.same_outcome(b));
  EXPECT_LT(a.max_clock, 50.0);
}

// --- differential suite: every scheduler must match the serial reference ---

struct SchedulerCase {
  const char* name;
  std::size_t batch;
};

class SyncSimVsSerial : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SyncSimVsSerial, ParallelHeapGlobalQueue) {
  const std::size_t batch = GetParam();
  const Topology t = make_torus(8, 8);
  const Model m(t, small_model_cfg());
  const SimResult want = run_serial_sim(m, 40.0);
  ParallelHeap<Event, EventOrder> q(batch);
  const SimResult got = run_sync_sim(q, m, 40.0, batch);
  EXPECT_TRUE(got.same_outcome(want))
      << "processed " << got.processed << " vs " << want.processed;
  EXPECT_EQ(got.max_clock, want.max_clock);
}

TEST_P(SyncSimVsSerial, PipelinedParallelHeapGlobalQueue) {
  const std::size_t batch = GetParam();
  const Topology t = make_torus(8, 8);
  const Model m(t, small_model_cfg());
  const SimResult want = run_serial_sim(m, 40.0);
  PipelinedParallelHeap<Event, EventOrder> q(batch);
  const SimResult got = run_sync_sim(q, m, 40.0, batch);
  EXPECT_TRUE(got.same_outcome(want));
}

TEST_P(SyncSimVsSerial, LockedBinaryHeapGlobalQueue) {
  const std::size_t batch = GetParam();
  const Topology t = make_torus(8, 8);
  const Model m(t, small_model_cfg());
  const SimResult want = run_serial_sim(m, 40.0);
  LockedPQ<BinaryHeap<Event, EventOrder>, Event> q;
  const SimResult got = run_sync_sim(q, m, 40.0, batch);
  EXPECT_TRUE(got.same_outcome(want));
}

INSTANTIATE_TEST_SUITE_P(BatchSweep, SyncSimVsSerial,
                         ::testing::Values(1, 2, 4, 16, 64, 256),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return "batch" + std::to_string(info.param);
                         });

TEST(SyncSim, WindowDefersFutureEvents) {
  // With a large batch, most deleted events fall outside GVT+lookahead and
  // must be deferred, not dropped or mis-handled.
  const Topology t = make_torus(8, 8);
  const Model m(t, small_model_cfg());
  ParallelHeap<Event, EventOrder> q(256);
  const SimResult got = run_sync_sim(q, m, 30.0, 256);
  EXPECT_GT(got.deferred, 0u);
  const SimResult want = run_serial_sim(m, 30.0);
  EXPECT_TRUE(got.same_outcome(want));
}

TEST(SyncSim, RandomNetworkMatchesSerial) {
  const Topology t = make_random_network(128, 2, 21);
  const Model m(t, small_model_cfg(5));
  const SimResult want = run_serial_sim(m, 30.0);
  ParallelHeap<Event, EventOrder> q(64);
  const SimResult got = run_sync_sim(q, m, 30.0, 64);
  EXPECT_TRUE(got.same_outcome(want));
}

class EngineSimVsSerial : public ::testing::TestWithParam<unsigned> {};

TEST_P(EngineSimVsSerial, TorusMatchesSerial) {
  const unsigned threads = GetParam();
  const Topology t = make_torus(8, 8);
  const Model m(t, small_model_cfg());
  const SimResult want = run_serial_sim(m, 30.0);
  EngineSimConfig cfg;
  cfg.node_capacity = 64;
  cfg.think_threads = threads;
  const EngineSimResult got = run_engine_sim(m, 30.0, cfg);
  EXPECT_TRUE(got.sim.same_outcome(want))
      << "processed " << got.sim.processed << " vs " << want.processed;
}

TEST_P(EngineSimVsSerial, RandomNetworkWithMaintenanceTeam) {
  const unsigned threads = GetParam();
  const Topology t = make_random_network(100, 3, 33);
  const Model m(t, small_model_cfg(8));
  const SimResult want = run_serial_sim(m, 25.0);
  EngineSimConfig cfg;
  cfg.node_capacity = 32;
  cfg.think_threads = threads;
  cfg.maintenance_threads = 2;
  const EngineSimResult got = run_engine_sim(m, 25.0, cfg);
  EXPECT_TRUE(got.sim.same_outcome(want));
}

INSTANTIATE_TEST_SUITE_P(ThreadSweep, EngineSimVsSerial,
                         ::testing::Values(0u, 1u, 2u, 4u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "threads" + std::to_string(info.param);
                         });

class LocalSimVsSerial
    : public ::testing::TestWithParam<std::pair<unsigned, LocalSimMode>> {};

TEST_P(LocalSimVsSerial, OutcomeExactViolationsCounted) {
  const auto [threads, mode] = GetParam();
  const Topology t = make_torus(8, 8);
  const Model m(t, small_model_cfg());
  const SimResult want = run_serial_sim(m, 25.0);
  LocalSimConfig cfg;
  cfg.threads = threads;
  cfg.mode = mode;
  const SimResult got = run_local_sim(m, 25.0, cfg);
  // Handlers are order-independent, so even the relaxed schedule produces
  // the same outcome; only the causality-violation count differs.
  EXPECT_TRUE(got.same_outcome(want))
      << "processed " << got.processed << " vs " << want.processed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LocalSimVsSerial,
    ::testing::Values(std::pair<unsigned, LocalSimMode>{1, LocalSimMode::kAffinity},
                      std::pair<unsigned, LocalSimMode>{2, LocalSimMode::kAffinity},
                      std::pair<unsigned, LocalSimMode>{4, LocalSimMode::kAffinity},
                      std::pair<unsigned, LocalSimMode>{2, LocalSimMode::kDistributed},
                      std::pair<unsigned, LocalSimMode>{4, LocalSimMode::kDistributed}),
    [](const ::testing::TestParamInfo<std::pair<unsigned, LocalSimMode>>& info) {
      return std::string(info.param.second == LocalSimMode::kAffinity ? "affinity"
                                                                      : "distributed") +
             std::to_string(info.param.first);
    });

TEST(LocalSim, SingleThreadAffinityHasNoViolations) {
  // One worker popping a single global-order queue cannot regress LP clocks.
  const Topology t = make_torus(6, 6);
  const Model m(t, small_model_cfg());
  LocalSimConfig cfg;
  cfg.threads = 1;
  const SimResult got = run_local_sim(m, 25.0, cfg);
  EXPECT_EQ(got.violations, 0u);
}

TEST(EngineSim, ConservativeWindowNeverViolates) {
  // By construction the window simulator has no causality violations; check
  // the invariant the window guarantees: every processed event's timestamp
  // is within lookahead of its cycle's GVT — indirectly, deferrals happen
  // but outcome matches serial (covered above); here check deferral stats
  // exist for a large batch.
  const Topology t = make_torus(8, 8);
  const Model m(t, small_model_cfg());
  EngineSimConfig cfg;
  cfg.node_capacity = 256;
  cfg.think_threads = 2;
  const EngineSimResult got = run_engine_sim(m, 25.0, cfg);
  EXPECT_GT(got.sim.deferred, 0u);
  EXPECT_EQ(got.sim.violations, 0u);
}

}  // namespace
}  // namespace ph::sim
