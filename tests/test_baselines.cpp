// Tests for the baseline priority queues. The scalar heaps share one typed
// suite (they must all behave as exact min-queues); the calendar queue and
// the concurrent wrappers get targeted suites.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "baselines/binary_heap.hpp"
#include "baselines/calendar_queue.hpp"
#include "baselines/dary_heap.hpp"
#include "baselines/leftist_heap.hpp"
#include "baselines/local_heaps.hpp"
#include "baselines/locked_pq.hpp"
#include "baselines/pairing_heap.hpp"
#include "baselines/pq_concepts.hpp"
#include "baselines/skew_heap.hpp"
#include "util/rng.hpp"

namespace ph {
namespace {

template <typename Q>
class ScalarPQTest : public ::testing::Test {
 public:
  Q q;
};

using ScalarPQs =
    ::testing::Types<BinaryHeap<std::uint64_t>, DaryHeap<std::uint64_t, 2>,
                     DaryHeap<std::uint64_t, 4>, DaryHeap<std::uint64_t, 8>,
                     SkewHeap<std::uint64_t>, PairingHeap<std::uint64_t>,
                     LeftistHeap<std::uint64_t>>;
TYPED_TEST_SUITE(ScalarPQTest, ScalarPQs);

TYPED_TEST(ScalarPQTest, StartsEmpty) {
  EXPECT_TRUE(this->q.empty());
  EXPECT_EQ(this->q.size(), 0u);
}

TYPED_TEST(ScalarPQTest, PushPopSingle) {
  this->q.push(42);
  EXPECT_EQ(this->q.size(), 1u);
  EXPECT_EQ(this->q.top(), 42u);
  EXPECT_EQ(this->q.pop(), 42u);
  EXPECT_TRUE(this->q.empty());
}

TYPED_TEST(ScalarPQTest, SortsRandomInput) {
  Xoshiro256 rng(11);
  std::vector<std::uint64_t> in(2000);
  for (auto& x : in) x = rng.next_below(1u << 20);
  for (auto x : in) this->q.push(x);
  EXPECT_TRUE(this->q.check_invariants());
  std::sort(in.begin(), in.end());
  for (auto want : in) EXPECT_EQ(this->q.pop(), want);
  EXPECT_TRUE(this->q.empty());
}

TYPED_TEST(ScalarPQTest, HandlesDuplicates) {
  for (int rep = 0; rep < 50; ++rep) {
    this->q.push(7);
    this->q.push(3);
  }
  for (int rep = 0; rep < 50; ++rep) EXPECT_EQ(this->q.pop(), 3u);
  for (int rep = 0; rep < 50; ++rep) EXPECT_EQ(this->q.pop(), 7u);
}

TYPED_TEST(ScalarPQTest, DescendingInsertions) {
  for (std::uint64_t i = 500; i > 0; --i) this->q.push(i);
  EXPECT_TRUE(this->q.check_invariants());
  for (std::uint64_t i = 1; i <= 500; ++i) EXPECT_EQ(this->q.pop(), i);
}

TYPED_TEST(ScalarPQTest, InterleavedPushPop) {
  Xoshiro256 rng(13);
  std::vector<std::uint64_t> oracle;
  for (int step = 0; step < 3000; ++step) {
    if (oracle.empty() || rng.next_below(5) < 3) {
      const std::uint64_t v = rng.next_below(1000);
      this->q.push(v);
      oracle.insert(std::upper_bound(oracle.begin(), oracle.end(), v), v);
    } else {
      ASSERT_EQ(this->q.pop(), oracle.front());
      oracle.erase(oracle.begin());
    }
    ASSERT_EQ(this->q.size(), oracle.size());
  }
  ASSERT_TRUE(this->q.check_invariants());
}

TYPED_TEST(ScalarPQTest, TopDoesNotRemove) {
  this->q.push(9);
  this->q.push(4);
  EXPECT_EQ(this->q.top(), 4u);
  EXPECT_EQ(this->q.top(), 4u);
  EXPECT_EQ(this->q.size(), 2u);
}

TEST(BinaryHeap, FloydBuildIsValid) {
  BinaryHeap<int> h;
  Xoshiro256 rng(17);
  std::vector<int> in(1000);
  for (auto& x : in) x = static_cast<int>(rng.next_below(5000));
  h.build(in);
  EXPECT_TRUE(h.check_invariants());
  std::sort(in.begin(), in.end());
  for (int want : in) EXPECT_EQ(h.pop(), want);
}

TEST(SkewHeap, MergeAbsorbs) {
  SkewHeap<int> a, b;
  for (int i : {5, 1, 9}) a.push(i);
  for (int i : {2, 8}) b.push(i);
  a.merge(b);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(a.size(), 5u);
  std::vector<int> got;
  while (!a.empty()) got.push_back(a.pop());
  EXPECT_EQ(got, (std::vector<int>{1, 2, 5, 8, 9}));
}

TEST(LeftistHeap, MergeAndNplInvariant) {
  LeftistHeap<int> a, b;
  Xoshiro256 rng(19);
  for (int i = 0; i < 300; ++i) a.push(static_cast<int>(rng.next_below(1000)));
  for (int i = 0; i < 500; ++i) b.push(static_cast<int>(rng.next_below(1000)));
  a.merge(b);
  EXPECT_TRUE(a.check_invariants());
  EXPECT_EQ(a.size(), 800u);
  int prev = -1;
  while (!a.empty()) {
    const int v = a.pop();
    EXPECT_LE(prev, v);
    prev = v;
  }
}

TEST(BatchAdapter, LiftsScalarQueue) {
  BatchAdapter<BinaryHeap<std::uint64_t>, std::uint64_t> q;
  std::vector<std::uint64_t> in{9, 1, 7, 3};
  q.insert_batch(in);
  std::vector<std::uint64_t> out;
  EXPECT_EQ(q.delete_min_batch(3, out), 3u);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{1, 3, 7}));
  EXPECT_EQ(q.cycle(std::vector<std::uint64_t>{0, 5}, 3, out), 3u);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{1, 3, 7, 0, 5, 9}));
  EXPECT_TRUE(q.empty());
}

// ---------------------------------------------------------------- calendar

struct Ev {
  double t;
  int id;
};
struct EvKey {
  double operator()(const Ev& e) const { return e.t; }
};

TEST(CalendarQueue, SortsRandomPriorities) {
  CalendarQueue<Ev, EvKey> q;
  Xoshiro256 rng(23);
  std::vector<double> in(3000);
  for (auto& t : in) t = rng.next_double() * 1000.0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    q.push(Ev{in[i], static_cast<int>(i)});
  }
  EXPECT_TRUE(q.check_invariants());
  std::sort(in.begin(), in.end());
  for (double want : in) {
    ASSERT_FALSE(q.empty());
    EXPECT_DOUBLE_EQ(q.pop().t, want);
  }
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, HoldModelNonDecreasing) {
  // The access pattern the structure was designed for: pop the earliest,
  // re-insert at a future time.
  CalendarQueue<Ev, EvKey> q;
  Xoshiro256 rng(29);
  for (int i = 0; i < 512; ++i) q.push(Ev{rng.next_double() * 10, i});
  double clock = 0;
  for (int step = 0; step < 20000; ++step) {
    Ev e = q.pop();
    ASSERT_GE(e.t, clock) << "step " << step;
    clock = e.t;
    e.t = clock + rng.next_exponential(1.0);
    q.push(e);
  }
  EXPECT_EQ(q.size(), 512u);
}

TEST(CalendarQueue, SkewedPrioritiesStillExact) {
  // Bimodal gaps stress the width heuristic; exactness must not depend on it.
  CalendarQueue<Ev, EvKey> q;
  Xoshiro256 rng(31);
  std::vector<double> in;
  for (int i = 0; i < 1000; ++i) {
    const double base = rng.next_below(2) == 0 ? 0.0 : 10000.0;
    in.push_back(base + rng.next_double());
  }
  for (std::size_t i = 0; i < in.size(); ++i) q.push(Ev{in[i], static_cast<int>(i)});
  std::sort(in.begin(), in.end());
  for (double want : in) EXPECT_DOUBLE_EQ(q.pop().t, want);
}

TEST(CalendarQueue, GrowShrinkResizes) {
  // Repeated fill/drain cycles exercise both resize directions. Each
  // round's events start at the running clock, per the event-set contract
  // (insertions never precede the last dequeue).
  CalendarQueue<Ev, EvKey> q;
  Xoshiro256 rng(37);
  double clock = 0;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 2000; ++i) q.push(Ev{clock + rng.next_double() * 100, i});
    double prev = clock;
    for (int i = 0; i < 2000; ++i) {
      const Ev e = q.pop();
      ASSERT_GE(e.t, prev);
      prev = e.t;
    }
    clock = prev;
    EXPECT_TRUE(q.empty());
  }
}

TEST(CalendarQueue, DayBoundarySeamStaysOrdered) {
  // Regression (found by the differential stress harness, minimized by its
  // shrinker): with width 4.8, key 72 enqueues into day floor(72/4.8) =
  // floor(14.999…) = 14, but the dequeue scan used to derive day windows by
  // accumulating `top += width_`, whose rounding of the same boundary landed
  // at exactly 72.0 — so 72 sat in the seam between two windows, was skipped
  // without arming any guard, and popped after 75 and 77. Scan test and
  // bucket placement must use the bit-identical floor(p / width_).
  CalendarQueue<Ev, EvKey> q;
  const double keys[] = {78, 86, 94, 75, 77, 60, 89, 66, 72, 84, 86, 0, 0,
                         0,  0,  0,  0,  0,  0,  0,  0,  0,  0,  0, 0, 0,
                         0,  63, 61, 0,  58, 0,  58};
  int id = 0;
  for (double k : keys) q.push(Ev{k, id++});
  double prev = 0;
  while (!q.empty()) {
    ASSERT_TRUE(q.check_invariants());
    const double t = q.pop().t;
    ASSERT_GE(t, prev);
    prev = t;
  }
}

TEST(CalendarQueue, FarPastInsertionStillExact) {
  // An insertion more than one day behind the clock must be recovered by
  // the direct-search fallback.
  CalendarQueue<Ev, EvKey> q;
  Xoshiro256 rng(41);
  for (int i = 0; i < 256; ++i) q.push(Ev{1000.0 + rng.next_double() * 100, i});
  for (int i = 0; i < 100; ++i) q.pop();  // clock ≈ 1030
  q.push(Ev{3.0, 999});
  EXPECT_EQ(q.pop().id, 999);
}

TEST(CalendarQueue, StationarySizeDriftingGapsReestimatesWidth) {
  // Regression: width used to be re-estimated only inside resize(), and
  // resizes only trigger on size changes — so a hold-model queue (size
  // constant forever) whose inter-event gaps drift kept the width estimated
  // at fill time forever. With tiny fill-time gaps and a 10^4× wider gap
  // distribution later, every event lands within one stale-width day of the
  // clock and dequeue degrades to scanning ~all buckets. Brown's periodic
  // re-estimation (every ~2·size pops, rebuilding only on >2× drift) must
  // notice and widen the days; exactness must hold throughout.
  CalendarQueue<Ev, EvKey> q;
  Xoshiro256 rng(43);
  for (int i = 0; i < 512; ++i) q.push(Ev{i * 0.01, i});  // gaps ≈ 0.01

  double clock = 0;
  auto hold = [&](int steps, double gap_scale) {
    for (int s = 0; s < steps; ++s) {
      Ev e = q.pop();
      ASSERT_GE(e.t, clock) << "hold step " << s << " scale " << gap_scale;
      clock = e.t;
      e.t = clock + rng.next_double() * gap_scale;
      q.push(e);
    }
  };

  hold(4000, 0.01);  // stationary gaps: width stays right, no forced churn
  const double width_before = q.current_width();
  hold(20000, 100.0);  // gap distribution drifts 10^4× wider, size constant
  EXPECT_GE(q.width_reestimates(), 1u);
  EXPECT_GT(q.current_width(), 2.0 * width_before);
  EXPECT_EQ(q.size(), 512u);
  EXPECT_TRUE(q.check_invariants());
}

// -------------------------------------------------------------- concurrent

TEST(LockedPQ, SerialSemantics) {
  LockedPQ<BinaryHeap<std::uint64_t>, std::uint64_t> q;
  q.push(5);
  q.push(2);
  std::uint64_t v = 0;
  EXPECT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 2u);
  EXPECT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 5u);
  EXPECT_FALSE(q.try_pop(v));
  EXPECT_GE(q.lock_acquisitions(), 5u);
}

TEST(LockedPQ, ConcurrentMixedOpsPreserveMultiset) {
  LockedPQ<BinaryHeap<std::uint64_t>, std::uint64_t> q;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::vector<std::uint64_t>> popped(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      Xoshiro256 rng(1000 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        q.push(rng.next_below(1u << 20));
        if (i % 2 == 1) {
          std::uint64_t v;
          if (q.try_pop(v)) popped[static_cast<std::size_t>(t)].push_back(v);
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  std::size_t total_popped = 0;
  for (const auto& p : popped) total_popped += p.size();
  EXPECT_EQ(q.size() + total_popped, static_cast<std::size_t>(kThreads) * kPerThread);

  // Recover the full multiset and compare with what was pushed.
  std::vector<std::uint64_t> all;
  for (const auto& p : popped) all.insert(all.end(), p.begin(), p.end());
  std::uint64_t v;
  while (q.try_pop(v)) all.push_back(v);
  std::vector<std::uint64_t> want;
  for (int t = 0; t < kThreads; ++t) {
    Xoshiro256 rng(1000 + static_cast<std::uint64_t>(t));
    for (int i = 0; i < kPerThread; ++i) want.push_back(rng.next_below(1u << 20));
  }
  std::sort(all.begin(), all.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(all, want);
}

TEST(LocalHeaps, PartitionedPopsAreLocalMins) {
  LocalHeaps<std::uint64_t> q(4);
  for (std::uint64_t i = 0; i < 16; ++i) q.push(i, i % 4);
  // Partition p holds {p, p+4, p+8, p+12}; popping from home p yields p.
  std::uint64_t v = 0;
  for (std::size_t p = 0; p < 4; ++p) {
    ASSERT_TRUE(q.try_pop(p, v));
    EXPECT_EQ(v, p);
  }
  EXPECT_EQ(q.size(), 12u);
}

TEST(LocalHeaps, StealsWhenHomeEmpty) {
  LocalHeaps<std::uint64_t> q(3);
  q.push(42, 2);
  std::uint64_t v = 0;
  ASSERT_TRUE(q.try_pop(0, v));  // home 0 empty → steal from 2
  EXPECT_EQ(v, 42u);
  EXPECT_EQ(q.steals(), 1u);
  EXPECT_FALSE(q.try_pop(0, v));
}

TEST(LocalHeaps, ConcurrentChurnPreservesMultiset) {
  LocalHeaps<std::uint64_t> q(4);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 4000;
  std::vector<std::vector<std::uint64_t>> popped(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      Xoshiro256 rng(2000 + static_cast<std::uint64_t>(t));
      const auto tid = static_cast<std::size_t>(t);
      for (int i = 0; i < kPerThread; ++i) {
        q.push(rng.next_below(1u << 16), tid + static_cast<std::size_t>(i));
        if (i % 3 == 2) {
          std::uint64_t v;
          if (q.try_pop(tid, v)) popped[tid].push_back(v);
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  std::size_t total_popped = 0;
  for (const auto& p : popped) total_popped += p.size();
  EXPECT_EQ(q.size() + total_popped, static_cast<std::size_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace ph
